// Tables 2 and 3 reproduction: aggregate bitrates of the audio/video
// combinations used by HLS manifests H_all (all 18) and H_sub (curated 6),
// plus a SweepRunner-driven session sweep contrasting the two manifests
// end to end.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <vector>

#include "experiments/scenarios.h"
#include "experiments/sweep.h"
#include "experiments/tables.h"
#include "manifest/builder.h"
#include "media/combination.h"
#include "media/content.h"
#include "players/exoplayer.h"
#include "players/shaka.h"

namespace {

using namespace demuxabr;

void print_tables_once() {
  static bool printed = false;
  if (printed) return;
  printed = true;
  const BitrateLadder ladder = youtube_drama_ladder();
  std::printf("%s\n", experiments::render_combination_table(
                          "=== Table 2: all combinations (manifest H_all) ===",
                          all_combinations(ladder))
                          .c_str());
  std::printf("%s\n", experiments::render_combination_table(
                          "=== Table 3: curated subset (manifest H_sub) ===",
                          curated_subset(ladder))
                          .c_str());
}

void BM_Table2_EnumerateAllCombinations(benchmark::State& state) {
  print_tables_once();
  const BitrateLadder ladder = youtube_drama_ladder();
  for (auto _ : state) {
    benchmark::DoNotOptimize(all_combinations(ladder).size());
  }
  state.counters["combos"] = static_cast<double>(all_combinations(ladder).size());
}
BENCHMARK(BM_Table2_EnumerateAllCombinations);

void BM_Table3_CuratedSubset(benchmark::State& state) {
  const BitrateLadder ladder = youtube_drama_ladder();
  for (auto _ : state) {
    benchmark::DoNotOptimize(curated_subset(ladder).size());
  }
  state.counters["combos"] = static_cast<double>(curated_subset(ladder).size());
}
BENCHMARK(BM_Table3_CuratedSubset);

void BM_Table2_BuildAndParseHallMaster(benchmark::State& state) {
  const Content content = make_drama_content();
  for (auto _ : state) {
    const std::string text = serialize_master(build_hall_master(content));
    auto parsed = parse_master(text);
    benchmark::DoNotOptimize(parsed.ok());
  }
}
BENCHMARK(BM_Table2_BuildAndParseHallMaster);

void BM_Table3_BuildAndParseHsubMaster(benchmark::State& state) {
  const Content content = make_drama_content();
  for (auto _ : state) {
    const std::string text = serialize_master(build_hsub_master(content));
    auto parsed = parse_master(text);
    benchmark::DoNotOptimize(parsed.ok());
  }
}
BENCHMARK(BM_Table3_BuildAndParseHsubMaster);

// The Table 2/3 manifests exercised end to end: Shaka on H_all (all 18
// combinations) and ExoPlayer on H_sub (the curated 6), each across the two
// varying traces, fanned out by the sweep runner.
void BM_Table2_3_ManifestSessionSweep(benchmark::State& state) {
  namespace ex = demuxabr::experiments;
  std::vector<ex::SweepJob> jobs;
  const std::vector<ex::NamedTrace> traces = {
      {"varying-600k", ex::varying_600_trace()},
      {"varying-600k-bursty", ex::shaka_varying_600_trace()},
  };
  for (const ex::NamedTrace& named : traces) {
    {
      ex::ExperimentSetup hall = ex::fig4a_shaka_hall_1mbps();
      hall.trace = named.trace;
      ex::SweepJob job;
      job.id = "shaka-hall/" + named.name;
      job.player = "shaka";
      job.trace = named.name;
      job.setup = std::make_shared<const ex::ExperimentSetup>(std::move(hall));
      job.make_player = []() -> std::unique_ptr<PlayerAdapter> {
        return std::make_unique<ShakaPlayerModel>();
      };
      jobs.push_back(std::move(job));
    }
    {
      ex::ExperimentSetup hsub = ex::fig3_exo_hls_a3_first();
      hsub.trace = named.trace;
      ex::SweepJob job;
      job.id = "exo-hsub/" + named.name;
      job.player = "exoplayer";
      job.trace = named.name;
      job.setup = std::make_shared<const ex::ExperimentSetup>(std::move(hsub));
      job.make_player = []() -> std::unique_ptr<PlayerAdapter> {
        return std::make_unique<ExoPlayerModel>();
      };
      jobs.push_back(std::move(job));
    }
  }
  ex::SweepOptions options;
  options.threads = static_cast<int>(state.range(0));
  const ex::SweepRunner runner(options);
  double sessions_per_s = 0.0;
  for (auto _ : state) {
    const ex::SweepResult result = runner.run(jobs);
    sessions_per_s = result.summary.sessions_per_s;
    benchmark::DoNotOptimize(result.jobs.size());
  }
  state.counters["sessions_per_s"] = sessions_per_s;
}
BENCHMARK(BM_Table2_3_ManifestSessionSweep)
    ->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
