// Tables 2 and 3 reproduction: aggregate bitrates of the audio/video
// combinations used by HLS manifests H_all (all 18) and H_sub (curated 6).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "experiments/tables.h"
#include "manifest/builder.h"
#include "media/combination.h"
#include "media/content.h"

namespace {

using namespace demuxabr;

void print_tables_once() {
  static bool printed = false;
  if (printed) return;
  printed = true;
  const BitrateLadder ladder = youtube_drama_ladder();
  std::printf("%s\n", experiments::render_combination_table(
                          "=== Table 2: all combinations (manifest H_all) ===",
                          all_combinations(ladder))
                          .c_str());
  std::printf("%s\n", experiments::render_combination_table(
                          "=== Table 3: curated subset (manifest H_sub) ===",
                          curated_subset(ladder))
                          .c_str());
}

void BM_Table2_EnumerateAllCombinations(benchmark::State& state) {
  print_tables_once();
  const BitrateLadder ladder = youtube_drama_ladder();
  for (auto _ : state) {
    benchmark::DoNotOptimize(all_combinations(ladder).size());
  }
  state.counters["combos"] = static_cast<double>(all_combinations(ladder).size());
}
BENCHMARK(BM_Table2_EnumerateAllCombinations);

void BM_Table3_CuratedSubset(benchmark::State& state) {
  const BitrateLadder ladder = youtube_drama_ladder();
  for (auto _ : state) {
    benchmark::DoNotOptimize(curated_subset(ladder).size());
  }
  state.counters["combos"] = static_cast<double>(curated_subset(ladder).size());
}
BENCHMARK(BM_Table3_CuratedSubset);

void BM_Table2_BuildAndParseHallMaster(benchmark::State& state) {
  const Content content = make_drama_content();
  for (auto _ : state) {
    const std::string text = serialize_master(build_hall_master(content));
    auto parsed = parse_master(text);
    benchmark::DoNotOptimize(parsed.ok());
  }
}
BENCHMARK(BM_Table2_BuildAndParseHallMaster);

void BM_Table3_BuildAndParseHsubMaster(benchmark::State& state) {
  const Content content = make_drama_content();
  for (auto _ : state) {
    const std::string text = serialize_master(build_hsub_master(content));
    auto parsed = parse_master(text);
    benchmark::DoNotOptimize(parsed.ok());
  }
}
BENCHMARK(BM_Table3_BuildAndParseHsubMaster);

}  // namespace
