// Table 1 reproduction: the YouTube drama show's track ladder.
//
// Regenerates the synthetic content and reports, per track, the measured
// average/peak bitrate against the paper's declared values (they must agree —
// that is the content-substitution contract of DESIGN.md). The benchmark
// itself measures content generation cost at several chunk durations.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "experiments/tables.h"
#include "media/content.h"

namespace {

using namespace demuxabr;

void print_table_once() {
  static bool printed = false;
  if (printed) return;
  printed = true;
  const Content content = make_drama_content();
  std::printf("=== Table 1: video and audio of a YouTube drama show ===\n%s\n",
              experiments::render_table1(content).c_str());
}

void BM_Table1_GenerateContent(benchmark::State& state) {
  print_table_once();
  const double chunk_duration_s = static_cast<double>(state.range(0)) / 10.0;
  double worst_avg_error = 0.0;
  for (auto _ : state) {
    const Content content = make_drama_content(chunk_duration_s);
    benchmark::DoNotOptimize(content.total_bytes());
    // Track the worst relative deviation of measured vs. declared average.
    for (const TrackInfo& track : content.ladder().video()) {
      const ChunkStats stats = content.track_stats(track.id);
      worst_avg_error = std::max(
          worst_avg_error, std::abs(stats.avg_kbps - track.avg_kbps) / track.avg_kbps);
    }
  }
  state.counters["chunk_s"] = chunk_duration_s;
  state.counters["worst_avg_error_pct"] = worst_avg_error * 100.0;
}
BENCHMARK(BM_Table1_GenerateContent)->Arg(10)->Arg(20)->Arg(40)->Arg(60);

void BM_Table1_MeasureTrackStats(benchmark::State& state) {
  const Content content = make_drama_content();
  for (auto _ : state) {
    for (const TrackInfo& track : content.ladder().video()) {
      benchmark::DoNotOptimize(content.track_stats(track.id).peak_kbps);
    }
  }
}
BENCHMARK(BM_Table1_MeasureTrackStats);

}  // namespace
