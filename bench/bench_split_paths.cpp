// §4.1 different-servers evaluation: audio and video on separate network
// paths. Compares the per-path-aware coordinated player against the
// aggregate-only configuration and the MPC variant across asymmetric
// topologies.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/coordinated_player.h"
#include "experiments/scenarios.h"
#include "experiments/tables.h"

namespace {

using namespace demuxabr;
namespace ex = demuxabr::experiments;

struct Topology {
  const char* name;
  double video_kbps;
  double audio_kbps;
};

constexpr Topology kTopologies[] = {
    {"wide-video/narrow-audio", 1500.0, 180.0},
    {"narrow-video/wide-audio", 300.0, 800.0},
    {"symmetric-2m", 2000.0, 2000.0},
    {"both-narrow", 400.0, 200.0},
};

void print_table_once() {
  static bool printed = false;
  if (printed) return;
  printed = true;
  std::printf("=== §4.1 split-path evaluation ===\n");
  std::printf("%-24s | %-12s | vid kbps | aud kbps | stalls | rebuf s\n", "topology",
              "player");
  std::printf("-------------------------+--------------+----------+----------+--------+--------\n");
  for (const Topology& topo : kTopologies) {
    for (int mode = 0; mode < 3; ++mode) {
      auto setup = ex::split_path_dash(BandwidthTrace::constant(topo.video_kbps),
                                       BandwidthTrace::constant(topo.audio_kbps),
                                       topo.name);
      CoordinatedConfig config;
      const char* label = "aggregate";
      if (mode == 1) {
        config.per_path_estimation = true;
        label = "per-path";
      } else if (mode == 2) {
        config.per_path_estimation = true;
        config.algorithm = AbrAlgorithm::kMpc;
        label = "per-path-mpc";
      }
      CoordinatedPlayer player(config);
      const SessionLog log = ex::run(setup, player);
      const QoeReport qoe = compute_qoe(log, setup.content.ladder());
      std::printf("%-24s | %-12s | %8.0f | %8.0f | %6d | %6.1f\n", topo.name, label,
                  qoe.avg_video_kbps, qoe.avg_audio_kbps, qoe.stall_count,
                  qoe.total_stall_s);
    }
  }
  std::printf("\n");
}

void BM_SplitPaths(benchmark::State& state) {
  print_table_once();
  const Topology& topo = kTopologies[static_cast<std::size_t>(state.range(0))];
  const bool per_path = state.range(1) != 0;
  auto setup = ex::split_path_dash(BandwidthTrace::constant(topo.video_kbps),
                                   BandwidthTrace::constant(topo.audio_kbps), topo.name);
  double avg_video = 0.0;
  double avg_audio = 0.0;
  double rebuffer = 0.0;
  for (auto _ : state) {
    CoordinatedConfig config;
    config.per_path_estimation = per_path;
    CoordinatedPlayer player(config);
    const SessionLog log = ex::run(setup, player);
    const QoeReport qoe = compute_qoe(log, setup.content.ladder());
    avg_video = qoe.avg_video_kbps;
    avg_audio = qoe.avg_audio_kbps;
    rebuffer = qoe.total_stall_s;
    benchmark::DoNotOptimize(log.end_time_s);
  }
  state.counters["avg_video_kbps"] = avg_video;
  state.counters["avg_audio_kbps"] = avg_audio;
  state.counters["rebuffer_s"] = rebuffer;
  state.SetLabel(std::string(topo.name) + (per_path ? " per-path" : " aggregate"));
}
BENCHMARK(BM_SplitPaths)
    ->Args({0, 0})->Args({0, 1})
    ->Args({1, 0})->Args({1, 1})
    ->Args({2, 1})->Args({3, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace
