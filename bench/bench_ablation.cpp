// Ablations of the §4 best-practice design, one knob at a time:
//   1. curated combination list  -> all 18 combinations (free pairing)
//   2. switch hysteresis         -> memoryless rate selection
//   3. balanced chunk prefetch   -> greedy video-first scheduling
//   4. aggregate A/V estimation  -> (covered by bench_fig4's Shaka runs)
// Each ablation is the full coordinated player with exactly one
// recommendation removed, run on the traces where that recommendation bites.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/coordinated_player.h"
#include "experiments/scenarios.h"
#include "experiments/tables.h"

namespace {

using namespace demuxabr;
namespace ex = demuxabr::experiments;

CoordinatedConfig baseline_config() {
  CoordinatedConfig config;
  config.fallback_policy.device.screen = DeviceProfile::Screen::kTv;
  config.fallback_policy.device.sound = DeviceProfile::Sound::kSurround;
  return config;
}

CoordinatedConfig no_hysteresis_config() {
  CoordinatedConfig config = baseline_config();
  config.abr.min_hold_s = 0.0;
  config.abr.up_switch_margin = 1.0;
  config.abr.min_buffer_for_up_s = 0.0;
  config.abr.hold_buffer_s = 0.0;
  return config;
}

CoordinatedConfig unbalanced_config() {
  CoordinatedConfig config = baseline_config();
  config.prefetch_mode = PrefetchMode::kIndependent;
  return config;
}

struct AblationResult {
  QoeReport qoe;
  double max_imbalance_s = 0.0;
};

AblationResult run_one(const CoordinatedConfig& config, const BandwidthTrace& trace,
                       bool all_combinations_manifest) {
  // "All combinations" ablation: hand the player an H_all manifest so its
  // allowed list is the full 18-combination grid.
  ex::ExperimentSetup setup = all_combinations_manifest
                                  ? ex::fig4a_shaka_hall_1mbps()
                                  : ex::bestpractice_dash(trace, "ablation");
  if (all_combinations_manifest) setup.trace = trace;
  CoordinatedPlayer player(config);
  const SessionLog log = ex::run(setup, player);
  AblationResult result;
  result.qoe = compute_qoe(log, setup.content.ladder());
  for (const auto& point : log.video_buffer_s.points()) {
    result.max_imbalance_s =
        std::max(result.max_imbalance_s,
                 std::abs(point.value - log.audio_buffer_s.value_at(point.t)));
  }
  return result;
}

void print_ablation_table_once() {
  static bool printed = false;
  if (printed) return;
  printed = true;
  struct Row {
    const char* name;
    CoordinatedConfig config;
    bool all_combos;
  };
  const Row rows[] = {
      {"baseline (all practices)", baseline_config(), false},
      {"- curated list (H_all)", baseline_config(), true},
      {"- hysteresis", no_hysteresis_config(), false},
      {"- balanced prefetch", unbalanced_config(), false},
  };
  std::printf("=== §4 ablations (300/900 kbps square wave, 8 s phases) ===\n");
  std::printf("%-26s | vid kbps | aud kbps | stalls | rebuf s | switches | max imbal s\n",
              "variant");
  std::printf("---------------------------+----------+----------+--------+---------+----------+------------\n");
  const BandwidthTrace trace = ex::varying_600_trace();
  for (const Row& row : rows) {
    const AblationResult result = run_one(row.config, trace, row.all_combos);
    std::printf("%-26s | %8.0f | %8.0f | %6d | %7.1f | %8d | %10.1f\n", row.name,
                result.qoe.avg_video_kbps, result.qoe.avg_audio_kbps,
                result.qoe.stall_count, result.qoe.total_stall_s,
                result.qoe.combo_switches, result.max_imbalance_s);
  }
  std::printf("\n");
}

void run_ablation_bench(benchmark::State& state, const CoordinatedConfig& config,
                        bool all_combos) {
  print_ablation_table_once();
  const BandwidthTrace trace = ex::varying_600_trace();
  for (auto _ : state) {
    const AblationResult timed = run_one(config, trace, all_combos);
    benchmark::DoNotOptimize(&timed);
  }
  // Deterministic simulation: one untimed run yields the reported metrics.
  const AblationResult result = run_one(config, trace, all_combos);
  state.counters["qoe"] = result.qoe.qoe_score;
  state.counters["combo_switches"] = result.qoe.combo_switches;
  state.counters["rebuffer_s"] = result.qoe.total_stall_s;
  state.counters["max_imbalance_s"] = result.max_imbalance_s;
}

void BM_Ablation_Baseline(benchmark::State& state) {
  run_ablation_bench(state, baseline_config(), false);
}
BENCHMARK(BM_Ablation_Baseline)->Unit(benchmark::kMillisecond);

void BM_Ablation_NoCuratedList(benchmark::State& state) {
  run_ablation_bench(state, baseline_config(), true);
}
BENCHMARK(BM_Ablation_NoCuratedList)->Unit(benchmark::kMillisecond);

void BM_Ablation_NoHysteresis(benchmark::State& state) {
  run_ablation_bench(state, no_hysteresis_config(), false);
}
BENCHMARK(BM_Ablation_NoHysteresis)->Unit(benchmark::kMillisecond);

void BM_Ablation_NoBalancedPrefetch(benchmark::State& state) {
  run_ablation_bench(state, unbalanced_config(), false);
}
BENCHMARK(BM_Ablation_NoBalancedPrefetch)->Unit(benchmark::kMillisecond);

}  // namespace
