// Fleet-scale benchmark: N demuxed-ABR clients contending on one shared
// bottleneck, swept over fleet sizes {1, 2, 10, 50, 100, 500, 1000} on the
// Table-2 drama content with per-capita-scaled paper traces (fixed 800
// kbps/client and the Fig-3 varying 600 kbps/client square wave), under both
// fleet engines side by side: the O(N)-per-step barrier reference and the
// O(log N)-per-event heap engine (the default). Reports wall time, engine
// steps/s, aggregate simulated-seconds per wall-second and fleet
// QoE/fairness, and emits the same numbers machine-readably to
// BENCH_fleet.json (cwd).
//
// Besides the google-benchmark harness, the binary doubles as a CLI perf
// probe for CI smoke jobs:
//
//   bench_fleet --clients 200 --engine event_heap [--trace fixed]
//               [--min-steps-per-s 40000] [--profile] [--trace-out PATH]
//               [--topology | --disjoint | --cdn] [--threads N] [--streaming]
//               [--max-rss-mib F] [--min-cdn-hit F]
//
// CLI mode runs exactly the requested fleet, prints one row per engine, and
// exits non-zero when a --min-steps-per-s floor is not met, peak RSS
// exceeds --max-rss-mib, or (under --cdn) the demuxed edge hit ratio falls
// below --min-cdn-hit. --profile turns on the engine self-profiler and
// the metrics registry and prints both; --trace-out captures the run with a
// Tracer and writes Chrome trace-event JSON (open in chrome://tracing or
// Perfetto) to PATH. --disjoint swaps the shared-core layout for causally
// independent per-edge chains, which partition into parallel shards
// (fleet/shard.h) driven by --threads; --streaming drops per-session logs
// for O(shards + sketch) memory (fleet/metrics.h StreamingFleetStats).
// --cdn puts an LRU edge cache on every chain's access link
// (fleet/cdn_fleet.h) and runs the same seeds under demuxed and muxed
// origin storage back to back — the paper's §1 storage axis as a cache
// hit-ratio gap.
// Every row reports two memory numbers: rss_mib, the point-in-time resident
// set sampled right after the run (/proc/self/statm — per-row, comparable
// across rows), and peak_rss_mib, the getrusage high-water mark (cumulative
// within the process, so it reflects the largest run so far).
//
// Rows are noisy on shared hosts; each row runs --repeat times (default 3)
// and reports the run with the median steps/s, keeping that run's wall_s
// and metrics so the row stays internally consistent.
#include <benchmark/benchmark.h>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/coordinated_player.h"
#include "core/muxed_player.h"
#include "experiments/scenarios.h"
#include "fleet/cdn_fleet.h"
#include "fleet/scheduler.h"
#include "fleet/topology.h"
#include "obs/incidents.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "players/dashjs.h"
#include "players/exoplayer.h"
#include "util/csv.h"
#include "util/strings.h"

namespace {

using namespace demuxabr;
namespace ex = demuxabr::experiments;

constexpr const char* kReportPath = "BENCH_fleet.json";

/// The barrier reference engine costs O(N) per step; above this fleet size
/// its sweep rows are skipped (with a JSON note) rather than dominating the
/// report's wall time.
constexpr int kBarrierMaxClients = 100;

const char* engine_name(fleet::Engine engine) {
  return engine == fleet::Engine::kBarrier ? "barrier" : "event_heap";
}

/// How many times each report/CLI row runs; the row with the median steps/s
/// is the one reported. Overridden by --repeat in CLI mode.
int g_repeat = 3;

/// Process peak resident set in MiB (getrusage high-water mark; 0.0 where
/// unavailable). Cumulative per process: a row's value reflects the largest
/// allocation footprint of any run up to and including it. Pair with
/// current_rss_mib() for a per-row point-in-time sample.
double peak_rss_mib() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);  // bytes
#else
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // KiB on Linux
#endif
#else
  return 0.0;
#endif
}

/// Current resident set in MiB sampled from /proc/self/statm (Linux-only;
/// 0.0 elsewhere). Unlike the getrusage peak this is a point-in-time value,
/// so per-row samples are comparable across rows regardless of what ran
/// earlier in the process.
double current_rss_mib() {
#if defined(__linux__)
  std::FILE* statm = std::fopen("/proc/self/statm", "r");
  if (statm == nullptr) return 0.0;
  long long size_pages = 0;
  long long resident_pages = 0;
  const int got = std::fscanf(statm, "%lld %lld", &size_pages, &resident_pages);
  std::fclose(statm);
  if (got != 2) return 0.0;
  const long page_bytes = sysconf(_SC_PAGESIZE);
  if (page_bytes <= 0) return 0.0;
  return static_cast<double>(resident_pages) * static_cast<double>(page_bytes) /
         (1024.0 * 1024.0);
#else
  return 0.0;
#endif
}

/// 60% ExoPlayer, 25% dash.js, 15% coordinated — a plausible demuxed-ABR
/// population on a plain DASH manifest.
std::vector<fleet::PlayerShare> population_mix() {
  std::vector<fleet::PlayerShare> mix;
  mix.push_back({"exoplayer",
                 [] { return std::make_unique<ExoPlayerModel>(); },
                 0.60});
  mix.push_back({"dashjs",
                 [] { return std::make_unique<DashJsPlayerModel>(); },
                 0.25});
  mix.push_back({"coordinated",
                 [] { return std::make_unique<CoordinatedPlayer>(); },
                 0.15});
  return mix;
}

fleet::FleetConfig fleet_config(int clients, fleet::Engine engine) {
  fleet::FleetConfig config;
  config.client_count = clients;
  config.seed = 42;
  config.engine = engine;
  config.arrivals = fleet::ArrivalProcess::kPoisson;
  config.arrival_rate_per_s = 1.0;
  config.players = population_mix();
  config.churn.leave_probability = 0.1;
  config.churn.min_watch_s = 30.0;
  config.churn.max_watch_s = 120.0;
  config.session.max_sim_time_s = 1800.0;  // per-client budget under starvation
  return config;
}

struct TraceCase {
  std::string name;
  BandwidthTrace trace;
};

/// Paper traces scaled per capita so the fair share per client stays at the
/// single-session operating point while contention dynamics still play out.
std::vector<TraceCase> trace_cases(int clients) {
  const double n = static_cast<double>(clients);
  return {
      {"fixed-800k-per-client", BandwidthTrace::constant(800.0 * n)},
      {"varying-600k-per-client",
       BandwidthTrace::square_wave(300.0 * n, 900.0 * n, 8.0, 8.0, true)},
  };
}

BandwidthTrace trace_by_label(const std::string& label, int clients) {
  for (TraceCase& tc : trace_cases(clients)) {
    if (tc.name.rfind(label, 0) == 0) return std::move(tc.trace);
  }
  std::fprintf(stderr, "unknown trace '%s' (want fixed|varying)\n", label.c_str());
  std::exit(2);
}

/// Sharded client → edge → core layout for the topology rows. All three
/// layers are per-capita-scaled like trace_cases(): access ample (2500
/// kbps/client), edge at the single-session operating point (900
/// kbps/client per shard) and the core undersized (700 kbps/client) so the
/// binding constraint moves between edge and core as shards fill.
fleet::TopologySpec sharded_spec(int edges, int clients_per_edge) {
  const double per_edge = static_cast<double>(clients_per_edge);
  const double total = per_edge * edges;
  fleet::TopologySpec spec = fleet::TopologySpec::sharded(
      edges, BandwidthTrace::constant(2500.0 * per_edge),
      BandwidthTrace::constant(900.0 * per_edge),
      BandwidthTrace::constant(700.0 * total));
  spec.video_assignment = fleet::TopologySpec::block_assignment(
      static_cast<std::size_t>(edges), static_cast<std::size_t>(clients_per_edge));
  return spec;
}

/// Causally disjoint per-edge chains: one edge → core pair per shard, no
/// shared links, so partition_fleet() splits the fleet into `edges`
/// independent shards that run concurrently under --threads != 1 with a
/// byte-identical merged fingerprint (tests/test_fleet_shard.cpp). Same
/// per-capita scaling as sharded_spec, minus the shared core.
fleet::TopologySpec disjoint_spec(int edges, int clients_per_edge) {
  const double per_edge = static_cast<double>(clients_per_edge);
  fleet::TopologySpec spec;
  for (int e = 0; e < edges; ++e) {
    const std::size_t edge = spec.add_link(
        format("edge-%d", e), BandwidthTrace::constant(900.0 * per_edge));
    const std::size_t core = spec.add_link(
        format("core-%d", e), BandwidthTrace::constant(700.0 * per_edge));
    spec.add_path(format("chain-%d", e), {edge, core});
  }
  spec.video_assignment = fleet::TopologySpec::block_assignment(
      static_cast<std::size_t>(edges), static_cast<std::size_t>(clients_per_edge));
  return spec;
}

/// Disjoint chains with an LRU edge cache on every access link (the
/// client-side hop, so edge hits skip the per-chain core entirely). The
/// layout partitions into `edges` shards like disjoint_spec.
fleet::TopologySpec cdn_spec(int edges, int clients_per_edge,
                             std::int64_t cache_bytes) {
  fleet::TopologySpec spec = disjoint_spec(edges, clients_per_edge);
  for (std::size_t l = 0; l < spec.links.size(); l += 2) {
    spec.links[l].cache = fleet::CacheSpec{cache_bytes, -1};
  }
  return spec;
}

struct FleetRunRecord {
  std::string trace;
  std::string engine;
  std::string topology = "single";  ///< "single", "sharded-10x10", "disjoint-10x50"
  std::string storage = "none";     ///< origin storage of cache-aware rows
  int clients = 0;
  int threads = 1;
  bool streaming = false;
  // CDN plane aggregates, summed over every cache node (zero when the run
  // has no caches).
  std::int64_t cdn_requests = 0;
  double cdn_hit_ratio = 0.0;
  double cdn_byte_hit_ratio = 0.0;
  double cdn_origin_mb = 0.0;
  std::size_t cdn_evictions = 0;
  double rss_mib = 0.0;       ///< current resident set right after the run
  double peak_rss_mib = 0.0;  ///< process high-water mark after the run
  double wall_s = 0.0;
  std::size_t steps = 0;
  double simulated_s = 0.0;
  fleet::FleetMetrics metrics;
  double link_utilization = 0.0;
  int peak_flows = 0;
  obs::EngineProfile profile;
  /// Telemetry-enabled rows: bins emitted (0 = telemetry off) plus the
  /// timeline itself for the CLI exporters.
  std::size_t telemetry_bins = 0;
  std::optional<obs::FleetTimeline> timeline;

  [[nodiscard]] double steps_per_s() const {
    return wall_s > 0.0 ? static_cast<double>(steps) / wall_s : 0.0;
  }
  [[nodiscard]] double sim_per_wall() const {
    return wall_s > 0.0 ? simulated_s / wall_s : 0.0;
  }
};

FleetRunRecord run_configured(const ex::ExperimentSetup& setup,
                              const TraceCase& tc,
                              const fleet::FleetConfig& config) {
  const auto t0 = std::chrono::steady_clock::now();
  const fleet::FleetResult result =
      fleet::run_fleet(setup.content, setup.view, tc.trace, config);
  FleetRunRecord record;
  record.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                      .count();
  record.trace = tc.name;
  record.engine = engine_name(config.engine);
  record.clients = config.client_count;
  record.threads = config.threads;
  record.streaming = result.streaming.has_value();
  record.rss_mib = current_rss_mib();
  record.peak_rss_mib = peak_rss_mib();
  record.steps = result.steps;
  if (result.streaming.has_value()) {
    record.simulated_s = result.streaming->active_s_sum;
  } else {
    for (const fleet::ClientResult& client : result.clients) {
      record.simulated_s += client.log.end_time_s - client.arrival_s;
    }
  }
  record.metrics = compute_fleet_metrics(result);
  record.link_utilization = result.video_link.utilization();
  record.peak_flows = result.video_link.peak_flows;
  record.profile = result.profile;
  if (!result.cdns.empty()) {
    std::int64_t edge_hits = 0;
    std::int64_t edge_bytes = 0;
    std::int64_t total_bytes = 0;
    std::int64_t origin_bytes = 0;
    for (const fleet::CdnStats& cdn : result.cdns) {
      record.cdn_requests += cdn.requests;
      edge_hits += cdn.edge_hits;
      edge_bytes += cdn.edge_hit_bytes;
      total_bytes += cdn.edge_hit_bytes + cdn.regional_hit_bytes + cdn.origin_bytes;
      origin_bytes += cdn.origin_bytes;
      record.cdn_evictions += cdn.edge_evictions;
    }
    if (record.cdn_requests > 0) {
      record.cdn_hit_ratio = static_cast<double>(edge_hits) /
                             static_cast<double>(record.cdn_requests);
    }
    if (total_bytes > 0) {
      record.cdn_byte_hit_ratio =
          static_cast<double>(edge_bytes) / static_cast<double>(total_bytes);
    }
    record.cdn_origin_mb = static_cast<double>(origin_bytes) / (1024.0 * 1024.0);
    record.storage = storage_mode_name(config.cdn.storage);
  }
  if (result.timeline.has_value()) {
    record.telemetry_bins = result.timeline->bin_count();
    record.timeline = result.timeline;
  }
  return record;
}

FleetRunRecord run_case(const ex::ExperimentSetup& setup, const TraceCase& tc,
                        int clients, fleet::Engine engine,
                        bool profile = false, bool telemetry = false) {
  fleet::FleetConfig config = fleet_config(clients, engine);
  config.profile = profile;
  config.telemetry.enabled = telemetry;
  return run_configured(setup, tc, config);
}

/// Topology row: `edges` shards x `clients_per_edge` clients funnelling
/// into one core. The shared trace argument is ignored by the scheduler
/// once a topology is set; row utilization/peak report the core link
/// (link 0 of TopologySpec::sharded, aliased by FleetResult::video_link).
FleetRunRecord run_topology_case(const ex::ExperimentSetup& setup, int edges,
                                 int clients_per_edge, fleet::Engine engine,
                                 bool profile = false, int threads = 1,
                                 bool streaming = false, bool disjoint = false,
                                 bool telemetry = false) {
  const int clients = edges * clients_per_edge;
  fleet::FleetConfig config = fleet_config(clients, engine);
  config.profile = profile;
  config.threads = threads;
  config.telemetry.enabled = telemetry;
  if (streaming) config.streaming.client_threshold = 0;
  config.topology = disjoint ? disjoint_spec(edges, clients_per_edge)
                             : sharded_spec(edges, clients_per_edge);
  const TraceCase tc{disjoint ? "disjoint-chains-700k-per-client"
                              : "sharded-core-700k-per-client",
                     BandwidthTrace::constant(1000.0)};
  FleetRunRecord record = run_configured(setup, tc, config);
  record.topology = format(disjoint ? "disjoint-%dx%d" : "sharded-%dx%d", edges,
                           clients_per_edge);
  return record;
}

std::vector<fleet::PlayerShare> muxed_population() {
  std::vector<fleet::PlayerShare> mix;
  mix.push_back({"muxed", [] { return std::make_unique<MuxedPlayer>(); }, 1.0});
  return mix;
}

/// Cache-aware row: disjoint chains with an LRU edge cache on every access
/// link, sized to a quarter of the demuxed catalog, same seeds and ladder
/// in both storage modes. Demuxed rows keep the usual demuxed-ABR
/// population; muxed rows run the MuxedPlayer against A×V combination
/// objects, so the §1 storage axis shows up as a cache hit-ratio gap.
FleetRunRecord run_cdn_case(const ex::ExperimentSetup& setup, int edges,
                            int clients_per_edge, StorageMode storage,
                            int threads = 1) {
  const int clients = edges * clients_per_edge;
  fleet::FleetConfig config = fleet_config(clients, fleet::Engine::kEventHeap);
  config.threads = threads;
  config.cdn.storage = storage;
  if (storage == StorageMode::kMuxed) config.players = muxed_population();
  const auto demuxed_catalog =
      fleet::make_fleet_catalog(setup.content, StorageMode::kDemuxed);
  config.topology =
      cdn_spec(edges, clients_per_edge, demuxed_catalog->total_bytes() / 4);
  const TraceCase tc{"disjoint-chains-700k-per-client",
                     BandwidthTrace::constant(1000.0)};
  FleetRunRecord record = run_configured(setup, tc, config);
  record.topology = format("cdn-%dx%d", edges, clients_per_edge);
  return record;
}

/// The million-client row: a flash crowd of 1000 causally independent
/// shards x 1000 concurrent clients each, streaming metrics on (per-session
/// logs would be ~10^6 × O(chunks) of memory; the sketches are O(shards)).
/// ~2.4 G engine steps — minutes of wall time, so opt-in via
/// BENCH_FLEET_MILLION=1.
FleetRunRecord run_million_case(const ex::ExperimentSetup& setup) {
  const int edges = 1000;
  const int per_edge = 1000;
  fleet::FleetConfig config = fleet_config(edges * per_edge,
                                           fleet::Engine::kEventHeap);
  config.arrivals = fleet::ArrivalProcess::kSimultaneous;  // 1M concurrent
  config.threads = 0;  // hardware default
  config.streaming.client_threshold = 0;
  config.topology = disjoint_spec(edges, per_edge);
  const TraceCase tc{"disjoint-chains-700k-per-client",
                     BandwidthTrace::constant(1000.0)};
  FleetRunRecord record = run_configured(setup, tc, config);
  record.topology = format("disjoint-%dx%d", edges, per_edge);
  return record;
}

/// Run one row `repeat` times and keep the run with the median steps/s.
/// wall_s, RSS and metrics all come from that same run, so the reported row
/// is an actual run, not a blend. Shared benchmark hosts swing single
/// samples by tens of percent; the median is what report history and CI
/// floors can rely on.
template <typename RunRow>
FleetRunRecord run_median(int repeat, const RunRow& run_row) {
  std::vector<FleetRunRecord> runs;
  runs.reserve(static_cast<std::size_t>(std::max(repeat, 1)));
  for (int i = 0; i < std::max(repeat, 1); ++i) runs.push_back(run_row());
  std::sort(runs.begin(), runs.end(),
            [](const FleetRunRecord& a, const FleetRunRecord& b) {
              return a.steps_per_s() < b.steps_per_s();
            });
  return runs[runs.size() / 2];
}

void print_record(const FleetRunRecord& r) {
  std::printf(
      "  %-28s %-10s %-16s clients=%-7d threads=%d%s wall=%7.2fs "
      "steps/s=%9.0f sim-s/wall-s=%8.1f qoe=%7.1f jain=%.3f util=%.3f "
      "peak_flows=%d rss=%.0fMiB peak_rss=%.0fMiB\n",
      r.trace.c_str(), r.engine.c_str(), r.topology.c_str(), r.clients,
      r.threads, r.streaming ? " streaming" : "", r.wall_s, r.steps_per_s(),
      r.sim_per_wall(), r.metrics.mean_qoe, r.metrics.jain_fairness_video,
      r.link_utilization, r.peak_flows, r.rss_mib, r.peak_rss_mib);
  if (r.storage != "none") {
    std::printf(
        "    cdn: storage=%s requests=%lld hit=%.3f byte_hit=%.3f "
        "origin_mb=%.1f evictions=%zu\n",
        r.storage.c_str(), static_cast<long long>(r.cdn_requests),
        r.cdn_hit_ratio, r.cdn_byte_hit_ratio, r.cdn_origin_mb,
        r.cdn_evictions);
  }
}

std::string fleet_report_json(const std::vector<FleetRunRecord>& records,
                              const std::string& profile_json,
                              const std::string& telemetry_json,
                              const std::vector<std::string>& notes) {
  std::string out;
  out += "{\n  \"bench\": \"fleet\",\n  \"content\": \"drama-300s\",\n  \"runs\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const FleetRunRecord& r = records[i];
    out += format(
        "    {\"trace\": \"%s\", \"engine\": \"%s\", \"topology\": \"%s\", "
        "\"storage\": \"%s\", \"clients\": %d, \"threads\": %d, "
        "\"streaming\": %s, "
        "\"wall_s\": %.6f, \"steps\": %zu, \"steps_per_s\": %.0f, "
        "\"sim_s\": %.1f, \"sim_s_per_wall_s\": %.1f, \"mean_qoe\": %.1f, "
        "\"jain_video\": %.4f, \"stall_ratio_p90\": %.4f, "
        "\"video_kbps_p50\": %.0f, \"link_utilization\": %.4f, "
        "\"peak_flows\": %d, \"rss_mib\": %.1f, \"peak_rss_mib\": %.1f, "
        "\"cdn_requests\": %lld, \"cdn_hit_ratio\": %.4f, "
        "\"cdn_byte_hit_ratio\": %.4f, \"cdn_origin_mb\": %.1f, "
        "\"cdn_evictions\": %zu, \"telemetry_bins\": %zu}%s\n",
        r.trace.c_str(), r.engine.c_str(), r.topology.c_str(),
        r.storage.c_str(), r.clients, r.threads,
        r.streaming ? "true" : "false", r.wall_s, r.steps, r.steps_per_s(),
        r.simulated_s, r.sim_per_wall(), r.metrics.mean_qoe,
        r.metrics.jain_fairness_video, r.metrics.stall_ratio.p90,
        r.metrics.video_kbps.p50, r.link_utilization, r.peak_flows,
        r.rss_mib, r.peak_rss_mib, static_cast<long long>(r.cdn_requests),
        r.cdn_hit_ratio, r.cdn_byte_hit_ratio, r.cdn_origin_mb,
        r.cdn_evictions, r.telemetry_bins, i + 1 < records.size() ? "," : "");
  }
  out += "  ],\n";
  if (!profile_json.empty()) {
    out += "  \"engine_profile\": " + profile_json + ",\n";
  }
  if (!telemetry_json.empty()) {
    out += "  \"telemetry\": " + telemetry_json + ",\n";
  }
  out += "  \"notes\": [\n";
  for (std::size_t i = 0; i < notes.size(); ++i) {
    out += "    \"" + notes[i] + "\"";
    out += i + 1 < notes.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

/// One full sweep per process, before google-benchmark timing: fleet sizes
/// {1, 2, 10, 50, 100, 500, 1000} on both traces and both engines, printed
/// and written to the report.
void emit_report_once() {
  static bool emitted = false;
  if (emitted) return;
  emitted = true;
  const ex::ExperimentSetup setup =
      ex::plain_dash(BandwidthTrace::constant(1000.0), "fleet-bench");
  std::vector<FleetRunRecord> records;
  std::vector<std::string> notes;
  std::printf("=== fleet: shared-bottleneck sweep, drama content, both engines ===\n");
  for (const int clients : {1, 2, 10, 50, 100, 500, 1000}) {
    for (const TraceCase& tc : trace_cases(clients)) {
      for (const fleet::Engine engine :
           {fleet::Engine::kEventHeap, fleet::Engine::kBarrier}) {
        if (engine == fleet::Engine::kBarrier && clients > kBarrierMaxClients) {
          continue;  // noted once below
        }
        const FleetRunRecord r = run_median(
            g_repeat, [&] { return run_case(setup, tc, clients, engine); });
        print_record(r);
        records.push_back(r);
      }
    }
  }
  notes.push_back(format(
      "barrier rows above %d clients skipped: the reference engine costs "
      "O(N) per step and exists for cross-validation, not scale",
      kBarrierMaxClients));
  // Sharded client → edge → core topology rows: 10 shards with a
  // per-capita-scaled core, event-heap at growing per-edge density plus one
  // barrier point for cross-engine sanity at matched scale.
  std::printf("=== fleet: sharded 10-edge topology (client -> edge -> core) ===\n");
  for (const int per_edge : {1, 10, 50}) {
    const FleetRunRecord r = run_median(g_repeat, [&] {
      return run_topology_case(setup, 10, per_edge, fleet::Engine::kEventHeap);
    });
    print_record(r);
    records.push_back(r);
  }
  {
    const FleetRunRecord r = run_median(g_repeat, [&] {
      return run_topology_case(setup, 10, 10, fleet::Engine::kBarrier);
    });
    print_record(r);
    records.push_back(r);
  }
  // Parallel disjoint-shard rows: 10 causally independent chains whose
  // engines run concurrently on the ThreadPool. Fingerprints are
  // byte-identical across thread counts (tests/test_fleet_shard.cpp), so
  // the threads column measures speed and overhead, never drift.
  std::printf("=== fleet: disjoint 10-chain topology, parallel shards ===\n");
  for (const int threads : {1, 2}) {
    const FleetRunRecord r = run_median(g_repeat, [&] {
      return run_topology_case(setup, 10, 50, fleet::Engine::kEventHeap,
                               /*profile=*/false, threads, /*streaming=*/false,
                               /*disjoint=*/true);
    });
    print_record(r);
    records.push_back(r);
  }
  // Streaming-metrics rows: per-session logs off, memory O(shards + sketch
  // buckets) instead of O(clients × log length); peak_rss_mib is the
  // memory-bound witness.
  std::printf("=== fleet: streaming-metrics mode (no per-session logs) ===\n");
  for (const int per_edge : {50, 100}) {
    const FleetRunRecord r = run_median(g_repeat, [&] {
      return run_topology_case(setup, 10, per_edge, fleet::Engine::kEventHeap,
                               false, 2, true, true);
    });
    print_record(r);
    records.push_back(r);
  }
  // Cache-aware rows: the same seeds and ladder under demuxed vs muxed
  // origin storage — the §1 storage axis as an edge hit-ratio gap (cache
  // sized to a quarter of the demuxed catalog on every chain).
  std::printf("=== fleet: cache-aware 10-chain topology, demuxed vs muxed ===\n");
  for (const StorageMode storage : {StorageMode::kDemuxed, StorageMode::kMuxed}) {
    const FleetRunRecord r = run_median(
        g_repeat, [&] { return run_cdn_case(setup, 10, 20, storage, 2); });
    print_record(r);
    records.push_back(r);
  }
  notes.push_back(
      "cdn-10x20 row pair: identical seeds/ladder, only origin storage "
      "differs; muxed A\\u00d7V combination objects inflate the working set, "
      "so the same edge capacity yields a lower hit ratio");
  notes.push_back(
      "threads>1 rows on single-core hosts measure shard-merge overhead, not "
      "speedup; steps/s scales with physical cores (shards are causally "
      "independent)");
  notes.push_back(
      "rss_mib is the point-in-time resident set sampled right after the "
      "row's run (/proc/self/statm), comparable across rows; peak_rss_mib "
      "is the process getrusage high-water mark, cumulative within the "
      "report run, so it reflects the largest fleet executed up to that "
      "point");
  notes.push_back(format(
      "each row is the median-steps/s run of %d repeats (wall_s and metrics "
      "come from that same run); the million-client and profiled rows run "
      "once",
      g_repeat));
  // The million-client row costs minutes of wall time: opt-in.
  if (const char* million = std::getenv("BENCH_FLEET_MILLION");
      million != nullptr && million[0] == '1') {
    std::printf(
        "=== fleet: 1M concurrent clients, 1000 disjoint shards, streaming "
        "===\n");
    const FleetRunRecord r = run_million_case(setup);
    print_record(r);
    records.push_back(r);
  } else {
    notes.push_back(
        "set BENCH_FLEET_MILLION=1 to append the 1M-client streaming row "
        "(1000 disjoint shards x 1000 concurrent clients; ~2.4G engine "
        "steps, minutes of wall time)");
  }
  // One dedicated self-profiled event-heap run: phase wall-clock + heap
  // counters land in the report so a steps/s regression localises to a
  // phase across report history.
  const FleetRunRecord profiled = run_case(
      setup, trace_cases(200)[0], 200, fleet::Engine::kEventHeap, true);
  const std::string profile_json = format(
      "{\"clients\": 200, \"engine\": \"event_heap\", \"trace\": \"%s\", "
      "\"data\": %s}",
      profiled.trace.c_str(), profiled.profile.to_json().c_str());
  notes.push_back(
      "engine_profile.data schema documented in EXPERIMENTS.md "
      "(Engine profile)");
  // Telemetry overhead on the same 200-client operating point: the fleet
  // with the timeline accumulator on vs off; the overhead_ratio column is
  // the per-hook cost (1.0 = free, telemetry is a handful of integer adds
  // behind one null-check per hook).
  std::printf("=== fleet: telemetry overhead, 200 clients, event_heap ===\n");
  const FleetRunRecord tele_off = run_median(g_repeat, [&] {
    return run_case(setup, trace_cases(200)[0], 200, fleet::Engine::kEventHeap);
  });
  print_record(tele_off);
  records.push_back(tele_off);
  const FleetRunRecord tele_on = run_median(g_repeat, [&] {
    return run_case(setup, trace_cases(200)[0], 200, fleet::Engine::kEventHeap,
                    /*profile=*/false, /*telemetry=*/true);
  });
  print_record(tele_on);
  records.push_back(tele_on);
  const std::string telemetry_json = format(
      "{\"clients\": 200, \"engine\": \"event_heap\", \"bins\": %zu, "
      "\"steps_per_s_disabled\": %.0f, \"steps_per_s_enabled\": %.0f, "
      "\"overhead_ratio\": %.4f}",
      tele_on.telemetry_bins, tele_off.steps_per_s(), tele_on.steps_per_s(),
      tele_off.steps_per_s() > 0.0
          ? tele_on.steps_per_s() / tele_off.steps_per_s()
          : 0.0);
  notes.push_back(
      "telemetry.overhead_ratio = steps_per_s with the 1s-bin timeline "
      "accumulator enabled / disabled, both medians on the 200-client "
      "fixed-trace event_heap row; telemetry_bins > 0 marks the enabled row");
  const Status written = write_file(
      kReportPath, fleet_report_json(records, profile_json, telemetry_json, notes));
  if (written.ok()) {
    std::printf("  report written to %s\n\n", kReportPath);
  } else {
    std::fprintf(stderr, "  could not write %s: %s\n\n", kReportPath,
                 written.error().c_str());
  }
}

void BM_Fleet_SharedBottleneck(benchmark::State& state) {
  emit_report_once();
  const int clients = static_cast<int>(state.range(0));
  const fleet::Engine engine =
      state.range(1) != 0 ? fleet::Engine::kEventHeap : fleet::Engine::kBarrier;
  const ex::ExperimentSetup setup =
      ex::plain_dash(BandwidthTrace::constant(1000.0), "fleet-bench");
  const TraceCase tc = trace_cases(clients)[0];
  std::size_t steps = 0;
  double simulated_s = 0.0;
  for (auto _ : state) {
    const fleet::FleetResult result = fleet::run_fleet(
        setup.content, setup.view, tc.trace, fleet_config(clients, engine));
    steps = result.steps;
    simulated_s = 0.0;
    for (const fleet::ClientResult& client : result.clients) {
      simulated_s += client.log.end_time_s - client.arrival_s;
    }
    benchmark::DoNotOptimize(result.clients.size());
  }
  state.SetLabel(engine_name(engine));
  state.counters["clients"] = clients;
  state.counters["steps"] = static_cast<double>(steps);
  state.counters["sim_s"] = simulated_s;
}
BENCHMARK(BM_Fleet_SharedBottleneck)
    ->Args({1, 1})->Args({2, 1})->Args({10, 1})->Args({10, 0})
    ->Unit(benchmark::kMillisecond)->UseRealTime();

/// Replication fan-out: the ThreadPool path (independent seeds).
void BM_Fleet_Replications(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const ex::ExperimentSetup setup =
      ex::plain_dash(BandwidthTrace::constant(1000.0), "fleet-bench");
  fleet::ReplicationOptions options;
  options.replications = 4;
  options.threads = threads;
  const fleet::FleetConfig config = fleet_config(2, fleet::Engine::kEventHeap);
  const TraceCase tc = trace_cases(2)[0];
  for (auto _ : state) {
    const auto reps = fleet::run_replications(setup.content, setup.view, tc.trace,
                                              config, options);
    benchmark::DoNotOptimize(reps.size());
  }
  state.counters["threads"] = threads;
}
BENCHMARK(BM_Fleet_Replications)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// --- CLI perf-probe mode -------------------------------------------------

struct CliOptions {
  bool cli_mode = false;
  int clients = 100;
  std::string engine = "event_heap";  ///< barrier | event_heap | both
  std::string trace = "fixed";        ///< fixed | varying
  double min_steps_per_s = 0.0;       ///< 0 = no floor check
  double max_rss_mib = 0.0;           ///< 0 = no RSS ceiling check
  int threads = 1;                    ///< shard workers (0 = hardware)
  bool streaming = false;             ///< streaming-metrics mode (no logs)
  bool profile = false;               ///< engine self-profile + metrics dump
  bool topology = false;              ///< sharded 10-edge multi-link fleet
  bool disjoint = false;              ///< disjoint per-edge chains (parallel)
  bool cdn = false;                   ///< cache-aware chains, demuxed vs muxed
  double min_cdn_hit = 0.0;           ///< demuxed hit-ratio floor (0 = off)
  int repeat = 3;                     ///< runs per row; median steps/s kept
  std::string trace_out;              ///< Chrome trace JSON path ("" = off)
  std::string telemetry_out;          ///< timeline NDJSON path ("" = off)
  std::string report_out;             ///< telemetry HTML report path ("" = off)
};

[[noreturn]] void cli_usage_and_exit() {
  std::fprintf(stderr,
               "usage: bench_fleet [--clients N] [--engine barrier|event_heap|both]\n"
               "                   [--trace fixed|varying] [--min-steps-per-s F]\n"
               "                   [--max-rss-mib F] [--threads N] [--streaming]\n"
               "                   [--topology | --disjoint | --cdn] [--profile]\n"
               "                   [--min-cdn-hit F] [--repeat N] [--trace-out trace.json]\n"
               "                   [--telemetry-out timeline.ndjson] [--report-out report.html]\n"
               "       bench_fleet [google-benchmark flags]\n");
  std::exit(2);
}

/// Accepts `--flag value` and `--flag=value`. Any recognised flag switches
/// the binary into CLI mode (no google-benchmark harness).
CliOptions parse_cli(int argc, char** argv) {
  CliOptions cli;
  const auto value_of = [&](const char* flag, int& i) -> const char* {
    const std::size_t flag_len = std::strlen(flag);
    if (std::strncmp(argv[i], flag, flag_len) != 0) return nullptr;
    if (argv[i][flag_len] == '=') return argv[i] + flag_len + 1;
    if (argv[i][flag_len] == '\0') {
      if (i + 1 >= argc) cli_usage_and_exit();
      return argv[++i];
    }
    return nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    if (const char* v = value_of("--clients", i)) {
      cli.clients = std::atoi(v);
      cli.cli_mode = true;
    } else if (const char* v2 = value_of("--engine", i)) {
      cli.engine = v2;
      cli.cli_mode = true;
    } else if (const char* v3 = value_of("--trace", i)) {
      cli.trace = v3;
      cli.cli_mode = true;
    } else if (const char* v4 = value_of("--min-steps-per-s", i)) {
      cli.min_steps_per_s = std::atof(v4);
      cli.cli_mode = true;
    } else if (const char* v5 = value_of("--trace-out", i)) {
      cli.trace_out = v5;
      cli.cli_mode = true;
    } else if (const char* v6 = value_of("--max-rss-mib", i)) {
      cli.max_rss_mib = std::atof(v6);
      cli.cli_mode = true;
    } else if (const char* v7 = value_of("--threads", i)) {
      cli.threads = std::atoi(v7);
      cli.cli_mode = true;
    } else if (std::strcmp(argv[i], "--streaming") == 0) {
      cli.streaming = true;
      cli.cli_mode = true;
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      cli.profile = true;
      cli.cli_mode = true;
    } else if (std::strcmp(argv[i], "--topology") == 0) {
      cli.topology = true;
      cli.cli_mode = true;
    } else if (std::strcmp(argv[i], "--disjoint") == 0) {
      cli.disjoint = true;
      cli.cli_mode = true;
    } else if (std::strcmp(argv[i], "--cdn") == 0) {
      cli.cdn = true;
      cli.cli_mode = true;
    } else if (const char* v8 = value_of("--min-cdn-hit", i)) {
      cli.min_cdn_hit = std::atof(v8);
      cli.cli_mode = true;
    } else if (const char* v9 = value_of("--repeat", i)) {
      cli.repeat = std::atoi(v9);
      if (cli.repeat < 1) cli_usage_and_exit();
      cli.cli_mode = true;
    } else if (const char* v10 = value_of("--telemetry-out", i)) {
      cli.telemetry_out = v10;
      cli.cli_mode = true;
    } else if (const char* v11 = value_of("--report-out", i)) {
      cli.report_out = v11;
      cli.cli_mode = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      cli_usage_and_exit();
    }
    // Anything else is left for google-benchmark (non-CLI mode).
  }
  return cli;
}

int run_cli(const CliOptions& cli) {
  if (cli.clients <= 0) cli_usage_and_exit();
  std::vector<fleet::Engine> engines;
  if (cli.engine == "both") {
    engines = {fleet::Engine::kEventHeap, fleet::Engine::kBarrier};
  } else if (cli.engine == "barrier") {
    engines = {fleet::Engine::kBarrier};
  } else if (cli.engine == "event_heap") {
    engines = {fleet::Engine::kEventHeap};
  } else {
    cli_usage_and_exit();
  }
  const ex::ExperimentSetup setup =
      ex::plain_dash(BandwidthTrace::constant(1000.0), "fleet-bench");
  TraceCase tc{cli.trace, trace_by_label(cli.trace, cli.clients)};

  // --trace-out / --profile capture one run, not a comparison: the first
  // requested engine is the one traced and profiled.
  std::unique_ptr<obs::ScopedTracer> scoped_tracer;
  if (!cli.trace_out.empty()) {
    scoped_tracer = std::make_unique<obs::ScopedTracer>(obs::kCatAll);
  }
  std::unique_ptr<obs::ScopedMetrics> scoped_metrics;
  if (cli.profile) scoped_metrics = std::make_unique<obs::ScopedMetrics>();

  // --topology / --disjoint / --cdn distribute the requested fleet over 10
  // equal shards (block assignment), rounding --clients down to a multiple
  // of 10.
  const bool multi_link = cli.topology || cli.disjoint || cli.cdn;
  const int edges = 10;
  const int per_edge = multi_link ? std::max(1, cli.clients / edges) : 0;
  if (multi_link && cli.clients != edges * per_edge) {
    std::fprintf(stderr, "note: --topology rounds %d clients to %d (10 shards)\n",
                 cli.clients, edges * per_edge);
  }

  bool floor_met = true;

  // --cdn mode: the demuxed-vs-muxed storage pair on cache-aware chains
  // (always event-heap; the cross-engine identity is covered by tests).
  if (cli.cdn) {
    std::printf("=== fleet CLI: %d clients, cache-aware 10-chain topology, "
                "demuxed vs muxed%s ===\n",
                edges * per_edge,
                cli.threads != 1 ? format(", threads=%d", cli.threads).c_str()
                                 : "");
    for (const StorageMode storage : {StorageMode::kDemuxed, StorageMode::kMuxed}) {
      const FleetRunRecord r = run_median(cli.repeat, [&] {
        return run_cdn_case(setup, edges, per_edge, storage, cli.threads);
      });
      print_record(r);
      // Machine-greppable line for CI floors and trend tracking.
      std::printf(
          "engine=%s topology=%s storage=%s clients=%d threads=%d "
          "steps_per_s=%.0f wall_s=%.3f rss_mib=%.1f peak_rss_mib=%.1f "
          "cdn_hit=%.4f cdn_byte_hit=%.4f cdn_origin_mb=%.1f "
          "cdn_evictions=%zu\n",
          r.engine.c_str(), r.topology.c_str(), r.storage.c_str(), r.clients,
          r.threads, r.steps_per_s(), r.wall_s, r.rss_mib, r.peak_rss_mib,
          r.cdn_hit_ratio, r.cdn_byte_hit_ratio, r.cdn_origin_mb,
          r.cdn_evictions);
      if (cli.min_steps_per_s > 0.0 && r.steps_per_s() < cli.min_steps_per_s) {
        std::fprintf(stderr, "FAIL: %s steps_per_s %.0f below floor %.0f\n",
                     r.storage.c_str(), r.steps_per_s(), cli.min_steps_per_s);
        floor_met = false;
      }
      if (cli.max_rss_mib > 0.0 && r.peak_rss_mib > cli.max_rss_mib) {
        std::fprintf(stderr,
                     "FAIL: %s peak RSS %.1f MiB above ceiling %.1f MiB\n",
                     r.storage.c_str(), r.peak_rss_mib, cli.max_rss_mib);
        floor_met = false;
      }
      if (cli.min_cdn_hit > 0.0 && storage == StorageMode::kDemuxed &&
          r.cdn_hit_ratio < cli.min_cdn_hit) {
        std::fprintf(stderr, "FAIL: demuxed cdn hit ratio %.4f below floor %.4f\n",
                     r.cdn_hit_ratio, cli.min_cdn_hit);
        floor_met = false;
      }
    }
    return floor_met ? 0 : 1;
  }
  std::printf("=== fleet CLI: %d clients, trace=%s%s%s%s ===\n", cli.clients,
              cli.trace.c_str(),
              cli.disjoint ? ", disjoint 10-chain topology"
                           : (cli.topology ? ", sharded 10-edge topology" : ""),
              cli.threads != 1 ? format(", threads=%d", cli.threads).c_str() : "",
              cli.streaming ? ", streaming metrics" : "");
  // A traced run stays single-shot: the tracer is process-global, so
  // repeats would interleave their events in one trace file.
  const int repeat = cli.trace_out.empty() ? cli.repeat : 1;
  // Telemetry exporters capture the first requested engine's run (the
  // timeline is byte-identical across engines, so the choice is cosmetic).
  bool telemetry_pending = !cli.telemetry_out.empty() || !cli.report_out.empty();
  for (const fleet::Engine engine : engines) {
    const bool telemetry = telemetry_pending;
    const FleetRunRecord r = run_median(repeat, [&] {
      if (multi_link) {
        return run_topology_case(setup, edges, per_edge, engine, cli.profile,
                                 cli.threads, cli.streaming, cli.disjoint,
                                 telemetry);
      }
      fleet::FleetConfig config = fleet_config(cli.clients, engine);
      config.profile = cli.profile;
      config.threads = cli.threads;
      config.telemetry.enabled = telemetry;
      if (cli.streaming) config.streaming.client_threshold = 0;
      return run_configured(setup, tc, config);
    });
    print_record(r);
    // Machine-greppable line for CI floors and trend tracking.
    std::printf(
        "engine=%s topology=%s clients=%d threads=%d streaming=%d "
        "steps_per_s=%.0f wall_s=%.3f rss_mib=%.1f peak_rss_mib=%.1f\n",
        r.engine.c_str(), r.topology.c_str(), r.clients, r.threads,
        r.streaming ? 1 : 0, r.steps_per_s(), r.wall_s, r.rss_mib,
        r.peak_rss_mib);
    if (cli.profile) {
      std::printf("%s", r.profile.to_table().c_str());
    }
    if (cli.min_steps_per_s > 0.0 && r.steps_per_s() < cli.min_steps_per_s) {
      std::fprintf(stderr,
                   "FAIL: %s steps_per_s %.0f below floor %.0f\n",
                   r.engine.c_str(), r.steps_per_s(), cli.min_steps_per_s);
      floor_met = false;
    }
    if (cli.max_rss_mib > 0.0 && r.peak_rss_mib > cli.max_rss_mib) {
      std::fprintf(stderr, "FAIL: %s peak RSS %.1f MiB above ceiling %.1f MiB\n",
                   r.engine.c_str(), r.peak_rss_mib, cli.max_rss_mib);
      floor_met = false;
    }
    if (telemetry_pending && r.timeline.has_value()) {
      // detect_incidents also emits one engine-lane trace instant per
      // incident begin/end when a tracer is installed, so the episodes are
      // visible inside the Chrome trace written below.
      const std::vector<obs::Incident> incidents =
          obs::detect_incidents(*r.timeline);
      if (!cli.telemetry_out.empty()) {
        const Status st = write_file(cli.telemetry_out, r.timeline->to_ndjson());
        if (!st.ok()) {
          std::fprintf(stderr, "FAIL: cannot write %s: %s\n",
                       cli.telemetry_out.c_str(), st.error().c_str());
          return 1;
        }
      }
      if (!cli.report_out.empty()) {
        const Status st = write_file(
            cli.report_out,
            obs::telemetry_report(*r.timeline, incidents,
                                  format("bench_fleet: %d clients, %s",
                                         r.clients, r.trace.c_str())));
        if (!st.ok()) {
          std::fprintf(stderr, "FAIL: cannot write %s: %s\n",
                       cli.report_out.c_str(), st.error().c_str());
          return 1;
        }
      }
      std::printf("telemetry: %zu bins, %zu incidents%s%s%s%s\n",
                  r.timeline->bin_count(), incidents.size(),
                  cli.telemetry_out.empty() ? "" : ", ndjson ",
                  cli.telemetry_out.c_str(),
                  cli.report_out.empty() ? "" : ", report ",
                  cli.report_out.c_str());
      telemetry_pending = false;  // only the first engine's run is exported
    }
    if (scoped_tracer != nullptr) {
      std::ofstream out(cli.trace_out);
      if (!out) {
        std::fprintf(stderr, "FAIL: cannot open %s for writing\n",
                     cli.trace_out.c_str());
        return 1;
      }
      obs::ChromeTraceSink sink(out);
      scoped_tracer->get().drain_to(sink);
      std::printf("trace: %zu events written to %s (open in chrome://tracing)\n",
                  scoped_tracer->get().event_count(), cli.trace_out.c_str());
      scoped_tracer.reset();  // only the first engine's run is captured
    }
  }
  if (cli.profile) {
    std::printf("--- metrics registry ---\n%s",
                obs::MetricsRegistry::global().to_text().c_str());
  }
  return floor_met ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions cli = parse_cli(argc, argv);
  if (cli.cli_mode) return run_cli(cli);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
