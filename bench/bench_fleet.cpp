// Fleet-scale benchmark: N demuxed-ABR clients contending on one shared
// bottleneck, swept over fleet sizes {1, 2, 10, 50, 100} on the Table-2
// drama content with per-capita-scaled paper traces (fixed 800 kbps/client
// and the Fig-3 varying 600 kbps/client square wave). Reports wall time,
// scheduler steps/s, aggregate simulated-seconds per wall-second and fleet
// QoE/fairness, and emits the same numbers machine-readably to
// BENCH_fleet.json (cwd) — extending the perf trajectory BENCH_sweep.json
// started.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/coordinated_player.h"
#include "experiments/scenarios.h"
#include "fleet/scheduler.h"
#include "players/dashjs.h"
#include "players/exoplayer.h"
#include "util/csv.h"
#include "util/strings.h"

namespace {

using namespace demuxabr;
namespace ex = demuxabr::experiments;

constexpr const char* kReportPath = "BENCH_fleet.json";

/// 60% ExoPlayer, 25% dash.js, 15% coordinated — a plausible demuxed-ABR
/// population on a plain DASH manifest.
std::vector<fleet::PlayerShare> population_mix() {
  std::vector<fleet::PlayerShare> mix;
  mix.push_back({"exoplayer",
                 [] { return std::make_unique<ExoPlayerModel>(); },
                 0.60});
  mix.push_back({"dashjs",
                 [] { return std::make_unique<DashJsPlayerModel>(); },
                 0.25});
  mix.push_back({"coordinated",
                 [] { return std::make_unique<CoordinatedPlayer>(); },
                 0.15});
  return mix;
}

fleet::FleetConfig fleet_config(int clients) {
  fleet::FleetConfig config;
  config.client_count = clients;
  config.seed = 42;
  config.arrivals = fleet::ArrivalProcess::kPoisson;
  config.arrival_rate_per_s = 1.0;
  config.players = population_mix();
  config.churn.leave_probability = 0.1;
  config.churn.min_watch_s = 30.0;
  config.churn.max_watch_s = 120.0;
  config.session.max_sim_time_s = 1800.0;  // per-client budget under starvation
  return config;
}

struct TraceCase {
  std::string name;
  BandwidthTrace trace;
};

/// Paper traces scaled per capita so the fair share per client stays at the
/// single-session operating point while contention dynamics still play out.
std::vector<TraceCase> trace_cases(int clients) {
  const double n = static_cast<double>(clients);
  return {
      {"fixed-800k-per-client", BandwidthTrace::constant(800.0 * n)},
      {"varying-600k-per-client",
       BandwidthTrace::square_wave(300.0 * n, 900.0 * n, 8.0, 8.0, true)},
  };
}

struct FleetRunRecord {
  std::string trace;
  int clients = 0;
  double wall_s = 0.0;
  std::size_t steps = 0;
  double simulated_s = 0.0;
  fleet::FleetMetrics metrics;
  double link_utilization = 0.0;
  int peak_flows = 0;
};

FleetRunRecord run_case(const ex::ExperimentSetup& setup, const TraceCase& tc,
                        int clients) {
  const auto t0 = std::chrono::steady_clock::now();
  const fleet::FleetResult result =
      fleet::run_fleet(setup.content, setup.view, tc.trace, fleet_config(clients));
  FleetRunRecord record;
  record.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                      .count();
  record.trace = tc.name;
  record.clients = clients;
  record.steps = result.steps;
  for (const fleet::ClientResult& client : result.clients) {
    record.simulated_s += client.log.end_time_s - client.arrival_s;
  }
  record.metrics = compute_fleet_metrics(result);
  record.link_utilization = result.video_link.utilization();
  record.peak_flows = result.video_link.peak_flows;
  return record;
}

std::string fleet_report_json(const std::vector<FleetRunRecord>& records) {
  std::string out;
  out += "{\n  \"bench\": \"fleet\",\n  \"content\": \"drama-300s\",\n  \"runs\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const FleetRunRecord& r = records[i];
    out += format(
        "    {\"trace\": \"%s\", \"clients\": %d, \"wall_s\": %.6f, "
        "\"steps\": %zu, \"steps_per_s\": %.0f, \"sim_s\": %.1f, "
        "\"sim_s_per_wall_s\": %.1f, \"mean_qoe\": %.1f, "
        "\"jain_video\": %.4f, \"stall_ratio_p90\": %.4f, "
        "\"video_kbps_p50\": %.0f, \"link_utilization\": %.4f, "
        "\"peak_flows\": %d}%s\n",
        r.trace.c_str(), r.clients, r.wall_s, r.steps,
        r.wall_s > 0.0 ? static_cast<double>(r.steps) / r.wall_s : 0.0,
        r.simulated_s, r.wall_s > 0.0 ? r.simulated_s / r.wall_s : 0.0,
        r.metrics.mean_qoe, r.metrics.jain_fairness_video,
        r.metrics.stall_ratio.p90, r.metrics.video_kbps.p50, r.link_utilization,
        r.peak_flows, i + 1 < records.size() ? "," : "");
  }
  out += "  ]\n}\n";
  return out;
}

/// One full sweep per process, before google-benchmark timing: fleet sizes
/// {1, 2, 10, 50, 100} on both traces, printed and written to the report.
void emit_report_once() {
  static bool emitted = false;
  if (emitted) return;
  emitted = true;
  const ex::ExperimentSetup setup =
      ex::plain_dash(BandwidthTrace::constant(1000.0), "fleet-bench");
  std::vector<FleetRunRecord> records;
  std::printf("=== fleet: shared-bottleneck sweep, drama content ===\n");
  for (const int clients : {1, 2, 10, 50, 100}) {
    for (const TraceCase& tc : trace_cases(clients)) {
      const FleetRunRecord r = run_case(setup, tc, clients);
      std::printf(
          "  %-24s clients=%-3d wall=%6.2fs steps/s=%8.0f sim-s/wall-s=%7.1f "
          "qoe=%7.1f jain=%.3f util=%.3f peak_flows=%d\n",
          r.trace.c_str(), r.clients, r.wall_s,
          r.wall_s > 0.0 ? static_cast<double>(r.steps) / r.wall_s : 0.0,
          r.wall_s > 0.0 ? r.simulated_s / r.wall_s : 0.0, r.metrics.mean_qoe,
          r.metrics.jain_fairness_video, r.link_utilization, r.peak_flows);
      records.push_back(r);
    }
  }
  const Status written = write_file(kReportPath, fleet_report_json(records));
  if (written.ok()) {
    std::printf("  report written to %s\n\n", kReportPath);
  } else {
    std::fprintf(stderr, "  could not write %s: %s\n\n", kReportPath,
                 written.error().c_str());
  }
}

void BM_Fleet_SharedBottleneck(benchmark::State& state) {
  emit_report_once();
  const int clients = static_cast<int>(state.range(0));
  const ex::ExperimentSetup setup =
      ex::plain_dash(BandwidthTrace::constant(1000.0), "fleet-bench");
  const TraceCase tc = trace_cases(clients)[0];
  std::size_t steps = 0;
  double simulated_s = 0.0;
  for (auto _ : state) {
    const fleet::FleetResult result =
        fleet::run_fleet(setup.content, setup.view, tc.trace, fleet_config(clients));
    steps = result.steps;
    simulated_s = 0.0;
    for (const fleet::ClientResult& client : result.clients) {
      simulated_s += client.log.end_time_s - client.arrival_s;
    }
    benchmark::DoNotOptimize(result.clients.size());
  }
  state.counters["clients"] = clients;
  state.counters["steps"] = static_cast<double>(steps);
  state.counters["sim_s"] = simulated_s;
}
BENCHMARK(BM_Fleet_SharedBottleneck)
    ->Arg(1)->Arg(2)->Arg(10)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

/// Replication fan-out: the ThreadPool path (independent seeds).
void BM_Fleet_Replications(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const ex::ExperimentSetup setup =
      ex::plain_dash(BandwidthTrace::constant(1000.0), "fleet-bench");
  fleet::ReplicationOptions options;
  options.replications = 4;
  options.threads = threads;
  const fleet::FleetConfig config = fleet_config(2);
  const TraceCase tc = trace_cases(2)[0];
  for (auto _ : state) {
    const auto reps = fleet::run_replications(setup.content, setup.view, tc.trace,
                                              config, options);
    benchmark::DoNotOptimize(reps.size());
  }
  state.counters["threads"] = threads;
}
BENCHMARK(BM_Fleet_Replications)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
