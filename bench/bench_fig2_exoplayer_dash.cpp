// Figure 2 reproduction: ExoPlayer over DASH at a fixed 900 kbps link.
//   (a) audio set B (32/64/128 kbps):   steady state must be V3+B2, while
//       the better V3+B3 (declared 601 kbps) is excluded by construction;
//   (b) audio set C (196/384/768 kbps): steady state must be V2+C2 (low
//       video + high audio), while V3+C1 (declared 669) is excluded.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "experiments/scenarios.h"
#include "experiments/tables.h"
#include "players/exoplayer.h"

namespace {

using namespace demuxabr;
namespace ex = demuxabr::experiments;

void print_once(const char* tag, const ex::ExperimentSetup& setup, const SessionLog& log) {
  static bool printed[2] = {false, false};
  const int slot = tag[4] == 'a' ? 0 : 1;
  if (printed[slot]) return;
  printed[slot] = true;
  const QoeReport qoe = compute_qoe(log, setup.content.ladder());
  std::printf("=== %s: %s ===\n%s  timeline: %s\n\n", tag, setup.description.c_str(),
              summarize(log, qoe).c_str(),
              ex::render_selection_timeline(log).c_str());
}

void run_fig2(benchmark::State& state, ex::ExperimentSetup (*make_setup)(),
              const char* tag, const char* expected_video, const char* expected_audio) {
  const ex::ExperimentSetup setup = make_setup();
  double steady_chunks = 0.0;
  double stall_s = 0.0;
  for (auto _ : state) {
    ExoPlayerModel player;
    const SessionLog log = ex::run(setup, player);
    print_once(tag, setup, log);
    steady_chunks = 0.0;
    for (std::size_t i = 0; i < log.video_selection.size(); ++i) {
      if (log.video_selection[i] == expected_video &&
          log.audio_selection[i] == expected_audio) {
        steady_chunks += 1.0;
      }
    }
    stall_s = log.total_stall_s();
    benchmark::DoNotOptimize(log.end_time_s);
  }
  state.counters["steady_combo_chunks"] = steady_chunks;  // of 75
  state.counters["rebuffer_s"] = stall_s;
}

void BM_Fig2a_AudioSetB(benchmark::State& state) {
  run_fig2(state, &ex::fig2a_exo_dash_audio_b, "fig2a", "V3", "B2");
}
BENCHMARK(BM_Fig2a_AudioSetB)->Unit(benchmark::kMillisecond);

void BM_Fig2b_AudioSetC(benchmark::State& state) {
  run_fig2(state, &ex::fig2b_exo_dash_audio_c, "fig2b", "V2", "C2");
}
BENCHMARK(BM_Fig2b_AudioSetC)->Unit(benchmark::kMillisecond);

// The predetermination step itself (manifest parse -> combination ladder).
void BM_Fig2_PredeterminedCombinations(benchmark::State& state) {
  const ex::ExperimentSetup setup = ex::fig2a_exo_dash_audio_b();
  for (auto _ : state) {
    ExoPlayerModel player;
    player.start(setup.view);
    benchmark::DoNotOptimize(player.combinations().size());
  }
}
BENCHMARK(BM_Fig2_PredeterminedCombinations);

}  // namespace
