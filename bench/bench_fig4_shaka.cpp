// Figure 4 reproduction: Shaka Player over HLS H_all (and DASH).
//   (a) fixed 1 Mbps: every 0.125 s interval moves < 16 KB, so every sample
//       is filtered and the estimate stays pinned at the 500 kbps default ->
//       V2+A2 despite 1 Mbps of capacity.
//   (b) varying 600 kbps average: only high-phase (1.2 Mbps) solo samples
//       pass the filter -> the estimate under- then over-shoots -> V3+A3 and
//       heavy rebuffering.
//   (c) DASH: all combinations recreated from the MPD; same pinned-estimate
//       root cause.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "experiments/scenarios.h"
#include "experiments/tables.h"
#include "players/shaka.h"

namespace {

using namespace demuxabr;
namespace ex = demuxabr::experiments;

void print_once(int slot, const ex::ExperimentSetup& setup, const SessionLog& log) {
  static bool printed[3] = {false, false, false};
  if (printed[slot]) return;
  printed[slot] = true;
  const QoeReport qoe = compute_qoe(log, setup.content.ladder());
  std::printf("=== %s ===\n%s  timeline: %s\n", setup.description.c_str(),
              summarize(log, qoe).c_str(), ex::render_selection_timeline(log).c_str());
  std::printf("  estimate: t=20s %.0f kbps, t=60s %.0f kbps, min %.0f, max %.0f\n\n",
              log.bandwidth_estimate_kbps.value_at(20.0),
              log.bandwidth_estimate_kbps.value_at(60.0),
              log.bandwidth_estimate_kbps.min_value(),
              log.bandwidth_estimate_kbps.max_value());
}

void run_fig4(benchmark::State& state, ex::ExperimentSetup (*make_setup)(), int slot) {
  const ex::ExperimentSetup setup = make_setup();
  double estimate_min = 0.0;
  double estimate_max = 0.0;
  double rebuffer = 0.0;
  double stalls = 0.0;
  for (auto _ : state) {
    ShakaPlayerModel player;
    const SessionLog log = ex::run(setup, player);
    print_once(slot, setup, log);
    estimate_min = log.bandwidth_estimate_kbps.min_value();
    estimate_max = log.bandwidth_estimate_kbps.max_value();
    rebuffer = log.total_stall_s();
    stalls = static_cast<double>(log.stall_count());
    benchmark::DoNotOptimize(log.end_time_s);
  }
  state.counters["estimate_min_kbps"] = estimate_min;
  state.counters["estimate_max_kbps"] = estimate_max;
  state.counters["rebuffer_s"] = rebuffer;
  state.counters["stalls"] = stalls;
}

void BM_Fig4a_Fixed1Mbps(benchmark::State& state) {
  run_fig4(state, &ex::fig4a_shaka_hall_1mbps, 0);
}
BENCHMARK(BM_Fig4a_Fixed1Mbps)->Unit(benchmark::kMillisecond);

void BM_Fig4b_Varying600(benchmark::State& state) {
  run_fig4(state, &ex::fig4b_shaka_hall_varying, 1);
}
BENCHMARK(BM_Fig4b_Varying600)->Unit(benchmark::kMillisecond);

void BM_Fig4c_Dash1Mbps(benchmark::State& state) {
  run_fig4(state, &ex::fig4c_shaka_dash_1mbps, 2);
}
BENCHMARK(BM_Fig4c_Dash1Mbps)->Unit(benchmark::kMillisecond);

// Estimator microcosm: how the 16 KB filter reacts to link rate.
void BM_Fig4_FilterAcceptanceByRate(benchmark::State& state) {
  const double kbps = static_cast<double>(state.range(0));
  double accepted_fraction = 0.0;
  for (auto _ : state) {
    ShakaBandwidthEstimator estimator;
    const auto bytes_per_interval =
        static_cast<std::int64_t>(kbps * 1000.0 / 8.0 * 0.125);
    for (int i = 0; i < 800; ++i) {
      ProgressSample sample;
      sample.t0 = i * 0.125;
      sample.t1 = sample.t0 + 0.125;
      sample.bytes = bytes_per_interval;
      estimator.on_progress(sample);
    }
    accepted_fraction =
        static_cast<double>(estimator.accepted_samples()) /
        static_cast<double>(estimator.accepted_samples() + estimator.rejected_samples());
    benchmark::DoNotOptimize(estimator.estimate_kbps());
  }
  state.counters["link_kbps"] = kbps;
  state.counters["accepted_fraction"] = accepted_fraction;
}
BENCHMARK(BM_Fig4_FilterAcceptanceByRate)->Arg(500)->Arg(1000)->Arg(1048)->Arg(1100)->Arg(2000);

}  // namespace
