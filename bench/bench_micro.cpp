// Microbenchmarks of the framework's hot paths: manifest serialize/parse,
// estimator updates, BOLA decisions, and end-to-end session throughput
// (simulated seconds per wall second).
#include <benchmark/benchmark.h>

#include "core/coordinated_player.h"
#include "experiments/scenarios.h"
#include "manifest/builder.h"
#include "players/bola.h"
#include "players/estimators.h"
#include "sim/session.h"

namespace {

using namespace demuxabr;
namespace ex = demuxabr::experiments;

void BM_Micro_SerializeMpd(benchmark::State& state) {
  const Content content = make_drama_content();
  const MpdDocument mpd = build_dash_mpd(content);
  for (auto _ : state) {
    benchmark::DoNotOptimize(serialize_mpd(mpd).size());
  }
}
BENCHMARK(BM_Micro_SerializeMpd);

void BM_Micro_ParseMpd(benchmark::State& state) {
  const Content content = make_drama_content();
  const std::string xml_text = serialize_mpd(build_dash_mpd(content));
  for (auto _ : state) {
    auto parsed = parse_mpd(xml_text);
    benchmark::DoNotOptimize(parsed.ok());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(xml_text.size()));
}
BENCHMARK(BM_Micro_ParseMpd);

void BM_Micro_ParseHlsMaster(benchmark::State& state) {
  const Content content = make_drama_content();
  const std::string text = serialize_master(build_hall_master(content));
  for (auto _ : state) {
    auto parsed = parse_master(text);
    benchmark::DoNotOptimize(parsed.ok());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_Micro_ParseHlsMaster);

void BM_Micro_ParseHlsMedia(benchmark::State& state) {
  const Content content = make_drama_content();
  HlsMediaOptions options;
  options.include_bitrate_tag = true;
  const std::string text = serialize_media(build_hls_media(content, "V5", options));
  for (auto _ : state) {
    auto parsed = parse_media(text);
    benchmark::DoNotOptimize(parsed.ok());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_Micro_ParseHlsMedia);

void BM_Micro_ShakaEstimatorUpdate(benchmark::State& state) {
  ShakaBandwidthEstimator estimator;
  ProgressSample sample;
  sample.bytes = 20000;
  double t = 0.0;
  for (auto _ : state) {
    sample.t0 = t;
    sample.t1 = t + 0.125;
    t += 0.125;
    estimator.on_progress(sample);
    benchmark::DoNotOptimize(estimator.estimate_kbps());
  }
}
BENCHMARK(BM_Micro_ShakaEstimatorUpdate);

void BM_Micro_ExoMeterUpdate(benchmark::State& state) {
  ExoBandwidthMeter meter;
  for (auto _ : state) {
    meter.on_transfer_end(300000, 3.0);
    benchmark::DoNotOptimize(meter.estimate_kbps());
  }
}
BENCHMARK(BM_Micro_ExoMeterUpdate);

void BM_Micro_BolaChoose(benchmark::State& state) {
  Bola bola({111, 246, 473, 914, 1852, 3746}, 20.0);
  double buffer = 0.0;
  for (auto _ : state) {
    buffer = buffer >= 22.0 ? 0.0 : buffer + 0.37;
    benchmark::DoNotOptimize(bola.choose(buffer));
  }
}
BENCHMARK(BM_Micro_BolaChoose);

// Before/after of the SessionLog preallocation: the sample_series() pattern
// (four TimeSeries gaining one point per delta tick) against cold vectors
// (Arg 0, the pre-reserve behaviour) vs. vectors reserved from the expected
// sample count (Arg 1, what StreamingSession now does via
// SessionLog::reserve_for). The delta is the allocation churn removed from
// the session hot path.
void BM_Micro_SessionLogReserve(benchmark::State& state) {
  const bool reserve = state.range(0) != 0;
  // A 300 s session sampled at the Shaka delta: 2400 ticks.
  constexpr int kTicks = 2400;
  constexpr double kDelta = 0.125;
  for (auto _ : state) {
    SessionLog log;
    if (reserve) {
      log.reserve_for(/*chunks=*/75, /*expected_duration_s=*/300.0, kDelta);
    }
    double t = 0.0;
    for (int i = 0; i < kTicks; ++i) {
      log.audio_buffer_s.add(t, 12.0);
      log.video_buffer_s.add(t, 9.5);
      log.bandwidth_estimate_kbps.add(t, 1432.0);
      log.achieved_throughput_kbps.add(t, 880.0);
      t += kDelta;
    }
    benchmark::DoNotOptimize(log.audio_buffer_s.size());
  }
  state.SetLabel(reserve ? "reserved" : "unreserved");
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kTicks * 4);
}
BENCHMARK(BM_Micro_SessionLogReserve)->Arg(0)->Arg(1);

void BM_Micro_FullSession(benchmark::State& state) {
  const ex::ExperimentSetup setup =
      ex::bestpractice_dash(ex::varying_600_trace(), "micro");
  double simulated_s = 0.0;
  for (auto _ : state) {
    CoordinatedPlayer player;
    const SessionLog log = ex::run(setup, player);
    simulated_s = log.end_time_s;
    benchmark::DoNotOptimize(log.downloads.size());
  }
  state.counters["sim_seconds_per_run"] = simulated_s;
}
BENCHMARK(BM_Micro_FullSession)->Unit(benchmark::kMillisecond);

void BM_Micro_SessionScalesWithDuration(benchmark::State& state) {
  const double minutes = static_cast<double>(state.range(0));
  Content content = ContentBuilder(youtube_drama_ladder())
                        .duration_s(minutes * 60.0)
                        .chunk_duration_s(4.0)
                        .build();
  const auto mpd = parse_mpd(serialize_mpd(build_dash_mpd(content)));
  const ManifestView view = view_from_mpd(*mpd);
  for (auto _ : state) {
    CoordinatedPlayer player;
    const Network network = Network::shared(BandwidthTrace::constant(1500.0));
    const SessionLog log = run_session(content, view, network, player);
    benchmark::DoNotOptimize(log.end_time_s);
  }
  state.counters["content_minutes"] = minutes;
}
BENCHMARK(BM_Micro_SessionScalesWithDuration)->Arg(1)->Arg(5)->Arg(15)->Arg(60)
    ->Unit(benchmark::kMillisecond);

}  // namespace
