// Robustness leaderboard driver: every comparison player × every corpus
// trace class × seed replications, scored per metric with 95% bootstrap
// CIs (experiments/leaderboard.h), emitted to BENCH_leaderboard.json plus
// CSV and markdown tables — the fleet-scale generalization of the paper's
// Tables 2/3.
//
// Own main (no google-benchmark): the leaderboard is a deterministic
// artifact generator, not a timing harness. Wall time goes to stdout only;
// the JSON bytes are a pure function of the grid, which is what the
// determinism tests and CI's schema check rely on.
//
// CLI:
//   bench_leaderboard [--classes=a,b] [--players=a,b] [--replications=N]
//     [--duration=S] [--threads=N] [--fleet-clients=N] [--fleet-reps=N]
//     [--out=PATH] [--csv=PATH] [--md=PATH]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "experiments/leaderboard.h"
#include "util/csv.h"
#include "util/strings.h"

namespace {

using namespace demuxabr;
namespace ex = demuxabr::experiments;

struct Cli {
  ex::LeaderboardConfig config;
  std::string out = "BENCH_leaderboard.json";
  std::string csv = "BENCH_leaderboard.csv";
  std::string md = "BENCH_leaderboard.md";
};

[[noreturn]] void usage_and_exit(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--classes=a,b] [--players=a,b] [--replications=N] "
               "[--duration=S] [--threads=N] [--fleet-clients=N] "
               "[--fleet-reps=N] [--seed=N] [--out=PATH] [--csv=PATH] "
               "[--md=PATH]\n",
               argv0);
  std::exit(2);
}

Cli parse_cli(int argc, char** argv) {
  Cli cli;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (arg.rfind("--", 0) != 0 || eq == std::string::npos) usage_and_exit(argv[0]);
    const std::string key = arg.substr(0, eq);
    const std::string value = arg.substr(eq + 1);
    if (key == "--classes") {
      cli.config.classes = split(value, ',');
    } else if (key == "--players") {
      cli.config.players = split(value, ',');
    } else if (key == "--replications") {
      cli.config.replications = std::atoi(value.c_str());
    } else if (key == "--duration") {
      cli.config.trace_duration_s = std::atof(value.c_str());
    } else if (key == "--threads") {
      cli.config.threads = std::atoi(value.c_str());
    } else if (key == "--fleet-clients") {
      cli.config.fleet_clients = std::atoi(value.c_str());
    } else if (key == "--fleet-reps") {
      cli.config.fleet_replications = std::atoi(value.c_str());
    } else if (key == "--seed") {
      cli.config.base_seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "--out") {
      cli.out = value;
    } else if (key == "--csv") {
      cli.csv = value;
    } else if (key == "--md") {
      cli.md = value;
    } else {
      usage_and_exit(argv[0]);
    }
  }
  return cli;
}

void write_or_die(const std::string& path, const std::string& content) {
  const Status written = write_file(path, content);
  if (!written.ok()) {
    std::fprintf(stderr, "could not write %s: %s\n", path.c_str(),
                 written.error().c_str());
    std::exit(1);
  }
  std::printf("  wrote %s (%zu bytes)\n", path.c_str(), content.size());
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli = parse_cli(argc, argv);
  const auto t0 = std::chrono::steady_clock::now();
  ex::Leaderboard board;
  try {
    board = ex::run_leaderboard(cli.config);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "leaderboard failed: %s\n", e.what());
    return 1;
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  std::printf("=== leaderboard: %zu classes x %zu players, %d session reps, "
              "%d fleet reps x %d clients (%.2fs wall, threads=%d) ===\n",
              board.classes.size(), board.players.size(),
              board.config.replications, board.config.fleet_replications,
              board.config.fleet_clients, wall_s, board.config.threads);
  for (const ex::LeaderboardRanking& r : board.rankings) {
    if (r.metric != "qoe") continue;
    std::printf("  %-12s best-by-qoe:", r.trace_class.c_str());
    for (std::size_t j = 0; j < r.players.size() && j < 3; ++j) {
      std::printf(" %s%s", r.players[j].c_str(),
                  j + 1 < r.players.size() && j + 1 < 3 ? " >" : "");
    }
    std::printf("\n");
  }
  write_or_die(cli.out, ex::leaderboard_json(board));
  write_or_die(cli.csv, ex::leaderboard_csv(board));
  write_or_die(cli.md, ex::leaderboard_markdown(board));
  return 0;
}
