// Parallel sweep engine benchmark: the §4 comparison matrix (every player
// model x every standard trace) executed by experiments::SweepRunner at
// 1/2/4/8 threads. Reports sessions/sec, aggregate simulated-seconds per
// wall-second, and the serial-relative speedup, and emits the same numbers
// machine-readably to BENCH_sweep.json (cwd) so the perf trajectory is
// tracked across PRs.
//
// Speedup scales with physical cores: on a single-core host every thread
// count measures ~1.0x (the engine is still exercised — determinism under
// interleaving is covered by tests/test_sweep.cpp).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "experiments/sweep.h"
#include "util/csv.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace {

using namespace demuxabr;
namespace ex = demuxabr::experiments;

constexpr const char* kReportPath = "BENCH_sweep.json";

/// One timed pass of the whole matrix per thread count, reported to
/// stdout + BENCH_sweep.json. Runs once, before google-benchmark timing.
void emit_report_once() {
  static bool emitted = false;
  if (emitted) return;
  emitted = true;
  const std::vector<ex::SweepJob> jobs = ex::comparison_matrix();
  std::vector<ex::SweepSummary> summaries;
  std::vector<std::string> notes;
  const unsigned hardware = ThreadPool::default_thread_count();
  std::printf(
      "=== sweep: §4 comparison matrix (%zu jobs), serial vs threads "
      "(host: %u hardware thread%s) ===\n",
      jobs.size(), hardware, hardware == 1 ? "" : "s");
  for (const int threads : {1, 2, 4, 8}) {
    // Honesty over coverage: on a single-core host a "4-thread speedup" row
    // is noise that reads like data. Skip it and say so in the report.
    if (threads > 1 && hardware == 1) {
      std::printf("  threads=%d  skipped (host has 1 hardware thread)\n", threads);
      notes.push_back(format(
          "threads=%d skipped: host has 1 hardware thread, a multi-thread "
          "speedup row would be scheduler noise",
          threads));
      continue;
    }
    ex::SweepOptions options;
    options.threads = threads;
    const ex::SweepResult result = ex::SweepRunner(options).run(jobs);
    summaries.push_back(result.summary);
    const double speedup = summaries.front().wall_s > 0.0
                               ? summaries.front().wall_s / result.summary.wall_s
                               : 0.0;
    std::printf(
        "  threads=%d  wall=%.3fs  sessions/s=%.1f  sim-s/wall-s=%.0f  "
        "speedup=%.2fx\n",
        threads, result.summary.wall_s, result.summary.sessions_per_s,
        result.summary.simulated_per_wall, speedup);
  }
  const std::string json =
      ex::sweep_report_json("best-practice-comparison", summaries, notes);
  const Status written = write_file(kReportPath, json);
  if (written.ok()) {
    std::printf("  report written to %s\n\n", kReportPath);
  } else {
    std::fprintf(stderr, "  could not write %s: %s\n\n", kReportPath,
                 written.error().c_str());
  }
}

void BM_Sweep_ComparisonMatrix(benchmark::State& state) {
  emit_report_once();
  const int threads = static_cast<int>(state.range(0));
  const std::vector<ex::SweepJob> jobs = ex::comparison_matrix();
  ex::SweepOptions options;
  options.threads = threads;
  const ex::SweepRunner runner(options);
  double sessions_per_s = 0.0;
  double simulated_per_wall = 0.0;
  for (auto _ : state) {
    const ex::SweepResult result = runner.run(jobs);
    sessions_per_s = result.summary.sessions_per_s;
    simulated_per_wall = result.summary.simulated_per_wall;
    benchmark::DoNotOptimize(result.jobs.size());
  }
  state.counters["threads"] = threads;
  state.counters["sessions_per_s"] = sessions_per_s;
  state.counters["sim_s_per_wall_s"] = simulated_per_wall;
}
BENCHMARK(BM_Sweep_ComparisonMatrix)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

/// Pool overhead floor: submit trivial tasks and wait for the results.
void BM_Sweep_PoolSubmitDrain(benchmark::State& state) {
  const auto tasks = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    ThreadPool pool(4);
    std::vector<std::future<std::size_t>> futures;
    futures.reserve(tasks);
    for (std::size_t i = 0; i < tasks; ++i) {
      futures.push_back(pool.submit([i] { return i; }));
    }
    std::size_t total = 0;
    for (auto& future : futures) total += future.get();
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tasks));
}
BENCHMARK(BM_Sweep_PoolSubmitDrain)->Arg(64)->Arg(1024);

}  // namespace
