// §1 motivation reproduction: storage footprint (M x N muxed vs M + N
// demuxed tracks) and CDN cache effectiveness for a viewer population.
// Besides the console table, emits the two-tier CdnChain sweep (storage
// mode x fill policy, with tier eviction counts) machine-readably to
// BENCH_cdn.json (cwd).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "httpsim/cdn_chain.h"
#include "httpsim/workload.h"
#include "media/content.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/strings.h"

namespace {

using namespace demuxabr;

/// One two-tier chain run: Zipf-popular (video, audio) picks per user, every
/// chunk fetched once per user — the same demand shape as run_cdn_workload,
/// but served through the edge -> regional -> origin hierarchy.
CdnChain::Stats run_chain_workload(const Content& content,
                                   const ObjectCatalog& catalog,
                                   StorageMode mode, FillPolicy fill,
                                   std::int64_t edge_cap,
                                   std::int64_t regional_cap, int users) {
  CdnChain chain(&catalog, edge_cap, regional_cap, fill);
  Rng rng(11);
  ZipfDistribution video_dist(content.ladder().video_count(), 0.8);
  ZipfDistribution audio_dist(content.ladder().audio_count(), 0.8);
  for (int user = 0; user < users; ++user) {
    const std::string video =
        content.ladder().video()[video_dist.sample(rng)].id;
    const std::string audio =
        content.ladder().audio()[audio_dist.sample(rng)].id;
    for (int chunk = 0; chunk < content.num_chunks(); ++chunk) {
      if (mode == StorageMode::kMuxed) {
        (void)chain.fetch(chunk_object_key(video + "+" + audio, chunk));
      } else {
        (void)chain.fetch(chunk_object_key(video, chunk));
        (void)chain.fetch(chunk_object_key(audio, chunk));
      }
    }
  }
  return chain.stats();
}

void print_once() {
  static bool printed = false;
  if (printed) return;
  printed = true;
  const Content content = make_drama_content();
  const StorageReport storage = compare_storage(content);
  std::printf("=== §1 motivation: storage and CDN caching ===\n");
  std::printf("storage: demuxed %.1f MB (%zu objects) vs muxed %.1f MB (%zu objects), "
              "ratio %.2fx\n",
              static_cast<double>(storage.demuxed_bytes) / 1e6, storage.demuxed_objects,
              static_cast<double>(storage.muxed_bytes) / 1e6, storage.muxed_objects,
              storage.muxed_to_demuxed_ratio());
  WorkloadConfig config;
  config.num_users = 200;
  for (double fraction : {0.0, 0.5, 0.25}) {
    config.cache_fraction = fraction;
    const auto results = run_cdn_comparison(content, config);
    const std::string cache_label =
        fraction == 0.0
            ? "unbounded"
            : std::to_string(static_cast<int>(fraction * 100)) + "% of demuxed catalog";
    std::printf("cache=%s:\n", cache_label.c_str());
    for (const WorkloadResult& result : results) {
      std::printf("  %-7s hit=%.3f byte-hit=%.3f origin-egress=%.1f MB\n",
                  storage_mode_name(result.mode), result.cdn.hit_ratio(),
                  result.cdn.byte_hit_ratio(),
                  static_cast<double>(result.cdn.bytes_from_origin) / 1e6);
    }
  }

  // Two-tier chain sweep -> BENCH_cdn.json: storage mode x fill policy at a
  // quarter-catalog edge and a full-catalog regional, eviction churn
  // included per tier.
  const ObjectCatalog demuxed = build_demuxed_catalog(content);
  const ObjectCatalog muxed = build_muxed_catalog(content);
  const std::int64_t edge_cap = demuxed.total_bytes() / 4;
  const std::int64_t regional_cap = demuxed.total_bytes();
  std::printf("two-tier chain (edge=25%% of demuxed catalog, regional=100%%):\n");
  std::string json = "{\n  \"bench\": \"cdn_cache\",\n  \"content\": \"drama-300s\",\n";
  json += format(
      "  \"storage\": {\"demuxed_mb\": %.1f, \"muxed_mb\": %.1f, "
      "\"ratio\": %.2f},\n  \"chain_runs\": [\n",
      static_cast<double>(storage.demuxed_bytes) / 1e6,
      static_cast<double>(storage.muxed_bytes) / 1e6,
      storage.muxed_to_demuxed_ratio());
  bool first = true;
  for (const StorageMode mode : {StorageMode::kDemuxed, StorageMode::kMuxed}) {
    for (const FillPolicy fill : {FillPolicy::kBothTiers, FillPolicy::kEdgeOnly}) {
      const ObjectCatalog& catalog =
          mode == StorageMode::kMuxed ? muxed : demuxed;
      const CdnChain::Stats stats = run_chain_workload(
          content, catalog, mode, fill, edge_cap, regional_cap, 200);
      std::printf(
          "  %-7s fill=%-10s hit=%.3f regional=%lld origin-egress=%.1f MB "
          "evictions=%zu+%zu\n",
          storage_mode_name(mode), fill_policy_name(fill),
          stats.edge_hit_ratio(), static_cast<long long>(stats.regional_hits),
          static_cast<double>(stats.bytes_from_origin) / 1e6,
          stats.edge_evictions, stats.regional_evictions);
      json += first ? "" : ",\n";
      json += format(
          "    {\"mode\": \"%s\", \"fill_policy\": \"%s\", \"users\": 200, "
          "\"requests\": %lld, \"edge_hit_ratio\": %.4f, "
          "\"regional_hits\": %lld, \"origin_fetches\": %lld, "
          "\"origin_egress_mb\": %.1f, \"edge_evictions\": %zu, "
          "\"regional_evictions\": %zu}",
          storage_mode_name(mode), fill_policy_name(fill),
          static_cast<long long>(stats.requests), stats.edge_hit_ratio(),
          static_cast<long long>(stats.regional_hits),
          static_cast<long long>(stats.origin_fetches),
          static_cast<double>(stats.bytes_from_origin) / 1e6,
          stats.edge_evictions, stats.regional_evictions);
      first = false;
    }
  }
  json += "\n  ]\n}\n";
  const Status written = write_file("BENCH_cdn.json", json);
  if (written.ok()) {
    std::printf("report written to BENCH_cdn.json\n");
  } else {
    std::fprintf(stderr, "could not write BENCH_cdn.json: %s\n",
                 written.error().c_str());
  }
  std::printf("\n");
}

void BM_Cdn_Workload(benchmark::State& state) {
  print_once();
  const Content content = make_drama_content();
  const auto mode = state.range(0) == 0 ? StorageMode::kDemuxed : StorageMode::kMuxed;
  WorkloadConfig config;
  config.num_users = static_cast<int>(state.range(1));
  double hit_ratio = 0.0;
  double origin_mb = 0.0;
  for (auto _ : state) {
    const WorkloadResult result = run_cdn_workload(content, mode, config);
    hit_ratio = result.cdn.hit_ratio();
    origin_mb = static_cast<double>(result.cdn.bytes_from_origin) / 1e6;
    benchmark::DoNotOptimize(result.cdn.requests);
  }
  state.counters["hit_ratio"] = hit_ratio;
  state.counters["origin_egress_mb"] = origin_mb;
  state.counters["users"] = static_cast<double>(config.num_users);
  state.SetLabel(storage_mode_name(mode));
}
BENCHMARK(BM_Cdn_Workload)
    ->Args({0, 50})->Args({1, 50})
    ->Args({0, 200})->Args({1, 200})
    ->Args({0, 1000})->Args({1, 1000})
    ->Unit(benchmark::kMillisecond);

void BM_Cdn_LruCacheOps(benchmark::State& state) {
  const Content content = make_drama_content();
  const ObjectCatalog catalog = build_demuxed_catalog(content);
  CdnNode cdn(&catalog, catalog.total_bytes() / 2);
  Rng rng(5);
  const BitrateLadder& ladder = content.ladder();
  for (auto _ : state) {
    const auto& track =
        ladder.video()[static_cast<std::size_t>(rng.uniform_int(0, 5))];
    const int chunk = static_cast<int>(rng.uniform_int(0, content.num_chunks() - 1));
    benchmark::DoNotOptimize(cdn.fetch(chunk_object_key(track.id, chunk)).bytes);
  }
}
BENCHMARK(BM_Cdn_LruCacheOps);

}  // namespace
