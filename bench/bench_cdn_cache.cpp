// §1 motivation reproduction: storage footprint (M x N muxed vs M + N
// demuxed tracks) and CDN cache effectiveness for a viewer population.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "httpsim/workload.h"
#include "media/content.h"
#include "util/rng.h"

namespace {

using namespace demuxabr;

void print_once() {
  static bool printed = false;
  if (printed) return;
  printed = true;
  const Content content = make_drama_content();
  const StorageReport storage = compare_storage(content);
  std::printf("=== §1 motivation: storage and CDN caching ===\n");
  std::printf("storage: demuxed %.1f MB (%zu objects) vs muxed %.1f MB (%zu objects), "
              "ratio %.2fx\n",
              static_cast<double>(storage.demuxed_bytes) / 1e6, storage.demuxed_objects,
              static_cast<double>(storage.muxed_bytes) / 1e6, storage.muxed_objects,
              storage.muxed_to_demuxed_ratio());
  WorkloadConfig config;
  config.num_users = 200;
  for (double fraction : {0.0, 0.5, 0.25}) {
    config.cache_fraction = fraction;
    const auto results = run_cdn_comparison(content, config);
    const std::string cache_label =
        fraction == 0.0
            ? "unbounded"
            : std::to_string(static_cast<int>(fraction * 100)) + "% of demuxed catalog";
    std::printf("cache=%s:\n", cache_label.c_str());
    for (const WorkloadResult& result : results) {
      std::printf("  %-7s hit=%.3f byte-hit=%.3f origin-egress=%.1f MB\n",
                  storage_mode_name(result.mode), result.cdn.hit_ratio(),
                  result.cdn.byte_hit_ratio(),
                  static_cast<double>(result.cdn.bytes_from_origin) / 1e6);
    }
  }
  std::printf("\n");
}

void BM_Cdn_Workload(benchmark::State& state) {
  print_once();
  const Content content = make_drama_content();
  const auto mode = state.range(0) == 0 ? StorageMode::kDemuxed : StorageMode::kMuxed;
  WorkloadConfig config;
  config.num_users = static_cast<int>(state.range(1));
  double hit_ratio = 0.0;
  double origin_mb = 0.0;
  for (auto _ : state) {
    const WorkloadResult result = run_cdn_workload(content, mode, config);
    hit_ratio = result.cdn.hit_ratio();
    origin_mb = static_cast<double>(result.cdn.bytes_from_origin) / 1e6;
    benchmark::DoNotOptimize(result.cdn.requests);
  }
  state.counters["hit_ratio"] = hit_ratio;
  state.counters["origin_egress_mb"] = origin_mb;
  state.counters["users"] = static_cast<double>(config.num_users);
  state.SetLabel(storage_mode_name(mode));
}
BENCHMARK(BM_Cdn_Workload)
    ->Args({0, 50})->Args({1, 50})
    ->Args({0, 200})->Args({1, 200})
    ->Args({0, 1000})->Args({1, 1000})
    ->Unit(benchmark::kMillisecond);

void BM_Cdn_LruCacheOps(benchmark::State& state) {
  const Content content = make_drama_content();
  const ObjectCatalog catalog = build_demuxed_catalog(content);
  CdnNode cdn(&catalog, catalog.total_bytes() / 2);
  Rng rng(5);
  const BitrateLadder& ladder = content.ladder();
  for (auto _ : state) {
    const auto& track =
        ladder.video()[static_cast<std::size_t>(rng.uniform_int(0, 5))];
    const int chunk = static_cast<int>(rng.uniform_int(0, content.num_chunks() - 1));
    benchmark::DoNotOptimize(cdn.fetch(chunk_object_key(track.id, chunk)).bytes);
  }
}
BENCHMARK(BM_Cdn_LruCacheOps);

}  // namespace
