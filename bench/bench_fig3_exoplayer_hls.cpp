// Figure 3 reproduction: ExoPlayer over HLS H_sub.
//   Experiment 1 (Fig 3a/3b): A3 listed first, time-varying 600 kbps avg.
//     The model pins audio to A3, stalls repeatedly, and selects
//     combinations (V1+A3, V2+A3) that are not in the manifest.
//   Experiment 2 (§3.2): A1 listed first, fixed 5 Mbps. Audio stays A1
//     despite ample bandwidth.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <set>

#include "core/compliance.h"
#include "experiments/scenarios.h"
#include "experiments/tables.h"
#include "players/exoplayer.h"

namespace {

using namespace demuxabr;
namespace ex = demuxabr::experiments;

void print_once(int slot, const ex::ExperimentSetup& setup, const SessionLog& log) {
  static bool printed[2] = {false, false};
  if (printed[slot]) return;
  printed[slot] = true;
  const QoeReport qoe = compute_qoe(log, setup.content.ladder(), &setup.allowed);
  std::printf("=== %s ===\n%s  timeline: %s\n", setup.description.c_str(),
              summarize(log, qoe).c_str(), ex::render_selection_timeline(log).c_str());
  const ComplianceReport compliance = check_compliance(log, setup.allowed);
  std::printf("  manifest compliance: %d/%d chunks off-manifest (labels:",
              compliance.violating_chunks, compliance.total_chunks);
  for (const std::string& label : compliance.violating_labels) {
    std::printf(" %s", label.c_str());
  }
  std::printf(")\n\n");
}

void BM_Fig3_A3First_Varying600(benchmark::State& state) {
  const ex::ExperimentSetup setup = ex::fig3_exo_hls_a3_first();
  double stalls = 0.0;
  double rebuffer = 0.0;
  double off_manifest = 0.0;
  double pinned_a3 = 0.0;
  for (auto _ : state) {
    ExoPlayerModel player;
    const SessionLog log = ex::run(setup, player);
    print_once(0, setup, log);
    stalls = static_cast<double>(log.stall_count());
    rebuffer = log.total_stall_s();
    off_manifest =
        static_cast<double>(check_compliance(log, setup.allowed).violating_chunks);
    std::set<std::string> audio(log.audio_selection.begin(), log.audio_selection.end());
    pinned_a3 = (audio.size() == 1 && audio.count("A3")) ? 1.0 : 0.0;
    benchmark::DoNotOptimize(log.end_time_s);
  }
  state.counters["stalls"] = stalls;
  state.counters["rebuffer_s"] = rebuffer;
  state.counters["off_manifest_chunks"] = off_manifest;
  state.counters["audio_pinned_A3"] = pinned_a3;
}
BENCHMARK(BM_Fig3_A3First_Varying600)->Unit(benchmark::kMillisecond);

void BM_Fig3x_A1First_5Mbps(benchmark::State& state) {
  const ex::ExperimentSetup setup = ex::fig3x_exo_hls_a1_first_5mbps();
  double pinned_a1 = 0.0;
  double avg_video = 0.0;
  for (auto _ : state) {
    ExoPlayerModel player;
    const SessionLog log = ex::run(setup, player);
    print_once(1, setup, log);
    std::set<std::string> audio(log.audio_selection.begin(), log.audio_selection.end());
    pinned_a1 = (audio.size() == 1 && audio.count("A1")) ? 1.0 : 0.0;
    avg_video = compute_qoe(log, setup.content.ladder()).avg_video_kbps;
    benchmark::DoNotOptimize(log.end_time_s);
  }
  state.counters["audio_pinned_A1"] = pinned_a1;
  state.counters["avg_video_kbps"] = avg_video;
}
BENCHMARK(BM_Fig3x_A1First_5Mbps)->Unit(benchmark::kMillisecond);

}  // namespace
