// §4 evaluation: every player model against every standard trace, reporting
// the QoE dimensions the paper's findings are phrased in — average quality,
// stalls, switches, and manifest compliance. The coordinated player should
// be the only one with zero stalls, zero violations and low switch counts
// across the board.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <vector>

#include "core/coordinated_player.h"
#include "core/muxed_player.h"
#include "experiments/scenarios.h"
#include "experiments/tables.h"
#include "players/dashjs.h"
#include "players/exo_legacy.h"
#include "players/exoplayer.h"
#include "players/shaka.h"

namespace {

using namespace demuxabr;
namespace ex = demuxabr::experiments;

enum class Kind { kExoLegacy, kExo, kShaka, kDashJs, kMuxed, kCoordinated, kMpc, kBba };

const char* kind_label(Kind kind) {
  switch (kind) {
    case Kind::kExoLegacy: return "exo-legacy";
    case Kind::kExo: return "exoplayer";
    case Kind::kShaka: return "shaka";
    case Kind::kDashJs: return "dashjs";
    case Kind::kMuxed: return "muxed";
    case Kind::kCoordinated: return "coordinated";
    case Kind::kMpc: return "coordinated-mpc";
    case Kind::kBba: return "coordinated-bba";
  }
  return "?";
}

ex::ExperimentSetup setup_for(Kind kind, const BandwidthTrace& trace,
                              const std::string& name) {
  switch (kind) {
    case Kind::kExoLegacy:
    case Kind::kExo:
    case Kind::kDashJs:
    case Kind::kMuxed:
      return ex::plain_dash(trace, name);
    case Kind::kShaka: {
      auto setup = ex::fig4a_shaka_hall_1mbps();
      setup.trace = trace;
      return setup;
    }
    case Kind::kCoordinated:
    case Kind::kMpc:
    case Kind::kBba:
      return ex::bestpractice_dash(trace, name);
  }
  return ex::plain_dash(trace, name);
}

std::unique_ptr<PlayerAdapter> player_for(Kind kind) {
  switch (kind) {
    case Kind::kExoLegacy: return std::make_unique<ExoLegacyPlayerModel>();
    case Kind::kExo: return std::make_unique<ExoPlayerModel>();
    case Kind::kShaka: return std::make_unique<ShakaPlayerModel>();
    case Kind::kDashJs: return std::make_unique<DashJsPlayerModel>();
    case Kind::kMuxed: return std::make_unique<MuxedPlayer>();
    case Kind::kCoordinated: return std::make_unique<CoordinatedPlayer>();
    case Kind::kMpc: {
      CoordinatedConfig config;
      config.algorithm = AbrAlgorithm::kMpc;
      return std::make_unique<CoordinatedPlayer>(config);
    }
    case Kind::kBba: {
      CoordinatedConfig config;
      config.algorithm = AbrAlgorithm::kBufferBased;
      return std::make_unique<CoordinatedPlayer>(config);
    }
  }
  return nullptr;
}

void print_comparison_once() {
  static bool printed = false;
  if (printed) return;
  printed = true;
  std::vector<ex::ComparisonRow> rows;
  for (const auto& named : ex::comparison_traces()) {
    for (Kind kind : {Kind::kExoLegacy, Kind::kExo, Kind::kShaka, Kind::kDashJs,
                      Kind::kMuxed, Kind::kCoordinated, Kind::kMpc, Kind::kBba}) {
      auto setup = setup_for(kind, named.trace, named.name);
      auto player = player_for(kind);
      const SessionLog log = ex::run(setup, *player);
      ex::ComparisonRow row;
      row.player = log.player_name;
      row.trace = named.name;
      row.qoe = compute_qoe(log, setup.content.ladder(),
                            setup.allowed.empty() ? nullptr : &setup.allowed);
      row.completed = log.completed;
      rows.push_back(row);
    }
  }
  std::printf("=== §4 best-practice comparison (all players x all traces) ===\n%s\n",
              ex::render_comparison_table(rows).c_str());
}

void BM_BestPractices_Session(benchmark::State& state) {
  print_comparison_once();
  const Kind kind = static_cast<Kind>(state.range(0));
  const auto traces = ex::comparison_traces();
  const auto& named = traces[static_cast<std::size_t>(state.range(1))];
  auto setup = setup_for(kind, named.trace, named.name);
  double qoe_score = 0.0;
  double rebuffer = 0.0;
  double switches = 0.0;
  double off_manifest = 0.0;
  for (auto _ : state) {
    auto player = player_for(kind);
    const SessionLog log = ex::run(setup, *player);
    const QoeReport report = compute_qoe(log, setup.content.ladder(),
                                         setup.allowed.empty() ? nullptr : &setup.allowed);
    qoe_score = report.qoe_score;
    rebuffer = report.total_stall_s;
    switches = report.combo_switches;
    off_manifest = report.off_manifest_chunks;
    benchmark::DoNotOptimize(log.end_time_s);
  }
  state.counters["qoe"] = qoe_score;
  state.counters["rebuffer_s"] = rebuffer;
  state.counters["combo_switches"] = switches;
  state.counters["off_manifest_chunks"] = off_manifest;
  state.SetLabel(std::string(kind_label(kind)) + " on " + named.name);
}
BENCHMARK(BM_BestPractices_Session)
    // {player kind, trace index}: the headline subset — the full grid is
    // printed as the comparison table above. Kinds: 0 exo-legacy, 1 exo,
    // 2 shaka, 3 dashjs, 4 muxed, 5 coordinated, 6 coordinated-mpc.
    ->Args({1, 4})->Args({2, 4})->Args({3, 4})->Args({5, 4})->Args({6, 4})  // varying-600k
    ->Args({1, 5})->Args({2, 5})->Args({3, 5})->Args({5, 5})->Args({6, 5})  // bursty
    ->Args({0, 0})->Args({1, 0})->Args({3, 0})->Args({4, 0})->Args({5, 0})  // fixed-700k
    ->Unit(benchmark::kMillisecond);

}  // namespace
