// §4 evaluation: every player model against every standard trace, reporting
// the QoE dimensions the paper's findings are phrased in — average quality,
// stalls, switches, and manifest compliance. The coordinated player should
// be the only one with zero stalls, zero violations and low switch counts
// across the board.
//
// The full grid runs through experiments::SweepRunner (the matrix and the
// player list live in experiments/sweep.*, shared with bench_sweep and
// examples/player_comparison); the per-cell benchmarks below time single
// sessions.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <vector>

#include "experiments/sweep.h"
#include "experiments/tables.h"

namespace {

using namespace demuxabr;
namespace ex = demuxabr::experiments;

void print_comparison_once() {
  static bool printed = false;
  if (printed) return;
  printed = true;
  // Default thread count: the table is identical at any thread count (the
  // sweep determinism contract); parallelism only changes wall time.
  const ex::SweepResult result = ex::SweepRunner().run(ex::comparison_matrix());
  std::printf("=== §4 best-practice comparison (all players x all traces) ===\n%s\n",
              ex::render_comparison_table(ex::comparison_rows(result)).c_str());
}

void BM_BestPractices_Session(benchmark::State& state) {
  print_comparison_once();
  const auto player_index = static_cast<std::size_t>(state.range(0));
  const auto traces = ex::comparison_traces();
  const auto& named = traces[static_cast<std::size_t>(state.range(1))];
  const ex::ComparisonPlayer& spec = ex::comparison_players()[player_index];
  const ex::ExperimentSetup setup =
      ex::comparison_setup(player_index, named.trace, named.name);
  double qoe_score = 0.0;
  double rebuffer = 0.0;
  double switches = 0.0;
  double off_manifest = 0.0;
  for (auto _ : state) {
    auto player = spec.factory();
    const SessionLog log = ex::run(setup, *player);
    const QoeReport report = compute_qoe(log, setup.content.ladder(),
                                         setup.allowed.empty() ? nullptr : &setup.allowed);
    qoe_score = report.qoe_score;
    rebuffer = report.total_stall_s;
    switches = report.combo_switches;
    off_manifest = report.off_manifest_chunks;
    benchmark::DoNotOptimize(log.end_time_s);
  }
  state.counters["qoe"] = qoe_score;
  state.counters["rebuffer_s"] = rebuffer;
  state.counters["combo_switches"] = switches;
  state.counters["off_manifest_chunks"] = off_manifest;
  state.SetLabel(spec.label + " on " + named.name);
}
BENCHMARK(BM_BestPractices_Session)
    // {player index, trace index}: the headline subset — the full grid is
    // printed as the comparison table above. Players follow
    // ex::comparison_players() order: 0 exo-legacy, 1 exoplayer, 2 shaka,
    // 3 dashjs, 4 muxed, 5 coordinated, 6 coordinated-mpc, 7 coordinated-bba.
    ->Args({1, 4})->Args({2, 4})->Args({3, 4})->Args({5, 4})->Args({6, 4})  // varying-600k
    ->Args({1, 5})->Args({2, 5})->Args({3, 5})->Args({5, 5})->Args({6, 5})  // bursty
    ->Args({0, 0})->Args({1, 0})->Args({3, 0})->Args({4, 0})->Args({5, 0})  // fixed-700k
    ->Unit(benchmark::kMillisecond);

}  // namespace
