// §3.3 fluctuation analysis: with H_all, many combinations sit within a
// narrow bandwidth band (318/395/460/510/652 kbps), so Shaka's memoryless
// rate rule flips among five combinations as the estimate wanders between
// 300 and 700 kbps. The coordinated player's hysteresis suppresses this.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <set>

#include "core/coordinated_player.h"
#include "experiments/scenarios.h"
#include "experiments/tables.h"
#include "players/shaka.h"
#include "util/rng.h"

namespace {

using namespace demuxabr;
namespace ex = demuxabr::experiments;

// Pure selection-rule comparison on a synthetic estimate walk in [300, 700].
void BM_Fluctuation_ShakaSelectionRule(benchmark::State& state) {
  const ex::ExperimentSetup setup = ex::fig4a_shaka_hall_1mbps();
  ShakaPlayerModel player;
  player.start(setup.view);
  double switches = 0.0;
  double distinct = 0.0;
  for (auto _ : state) {
    Rng rng(17);
    double estimate = 500.0;
    std::size_t previous = player.select_for_estimate(estimate);
    std::set<std::size_t> seen{previous};
    switches = 0.0;
    for (int i = 0; i < 300; ++i) {
      estimate = std::clamp(estimate + rng.normal(0.0, 60.0), 300.0, 700.0);
      const std::size_t choice = player.select_for_estimate(estimate);
      if (choice != previous) switches += 1.0;
      previous = choice;
      seen.insert(choice);
    }
    distinct = static_cast<double>(seen.size());
    benchmark::DoNotOptimize(previous);
  }
  static bool printed = false;
  if (!printed) {
    printed = true;
    std::printf("=== §3.3 fluctuation: combinations within [300, 700] kbps ===\n");
    for (const ComboView& combo : player.combinations()) {
      if (combo.bandwidth_kbps >= 300.0 && combo.bandwidth_kbps <= 700.0) {
        std::printf("  %s: %.0f kbps\n", combo.label().c_str(), combo.bandwidth_kbps);
      }
    }
    std::printf("\n");
  }
  state.counters["switches_per_300_decisions"] = switches;
  state.counters["distinct_combos"] = distinct;
}
BENCHMARK(BM_Fluctuation_ShakaSelectionRule);

// Full-session comparison on a random-walk link in the same band. The paper
// notes the fluctuation happens "even if the bandwidth estimation is
// accurate" — so the Shaka variant here disables the 16 KB filter (which
// would otherwise pin the estimate at the default on this slow link) to give
// its memoryless rate rule an accurate estimate to flap on.
void run_session_fluctuation(benchmark::State& state, bool coordinated) {
  const BandwidthTrace trace =
      BandwidthTrace::random_walk(300.0, 700.0, 2.0, 300.0, 80.0, 23);
  double switches = 0.0;
  double rebuffer = 0.0;
  for (auto _ : state) {
    SessionLog log;
    ex::ExperimentSetup setup =
        coordinated ? ex::bestpractice_dash(trace, "fluct") : ex::fig4a_shaka_hall_1mbps();
    if (!coordinated) setup.trace = trace;
    if (coordinated) {
      CoordinatedPlayer player;
      log = ex::run(setup, player);
    } else {
      ShakaConfig config;
      config.estimator.min_bytes = 0;  // accurate estimation
      ShakaPlayerModel player(config);
      log = ex::run(setup, player);
    }
    const QoeReport qoe = compute_qoe(log, setup.content.ladder());
    switches = qoe.combo_switches;
    rebuffer = qoe.total_stall_s;
    benchmark::DoNotOptimize(log.end_time_s);
  }
  state.counters["combo_switches"] = switches;
  state.counters["rebuffer_s"] = rebuffer;
}

void BM_Fluctuation_ShakaSession(benchmark::State& state) {
  run_session_fluctuation(state, /*coordinated=*/false);
}
BENCHMARK(BM_Fluctuation_ShakaSession)->Unit(benchmark::kMillisecond);

void BM_Fluctuation_CoordinatedSession(benchmark::State& state) {
  run_session_fluctuation(state, /*coordinated=*/true);
}
BENCHMARK(BM_Fluctuation_CoordinatedSession)->Unit(benchmark::kMillisecond);

}  // namespace
