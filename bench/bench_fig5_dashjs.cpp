// Figure 5 reproduction: dash.js over DASH at a fixed 700 kbps link.
// Independent per-type DYNAMIC adaptation produces (a) fluctuating and
// sometimes undesirable combinations (V2+A3 while V3+A2 fits the same
// budget) and (b) unbalanced audio/video buffers.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>

#include "experiments/scenarios.h"
#include "experiments/tables.h"
#include "players/dashjs.h"

namespace {

using namespace demuxabr;
namespace ex = demuxabr::experiments;

double max_buffer_imbalance(const SessionLog& log) {
  double max_imbalance = 0.0;
  for (const auto& point : log.video_buffer_s.points()) {
    const double audio = log.audio_buffer_s.value_at(point.t);
    max_imbalance = std::max(max_imbalance, std::abs(point.value - audio));
  }
  return max_imbalance;
}

void print_once(const ex::ExperimentSetup& setup, const SessionLog& log) {
  static bool printed = false;
  if (printed) return;
  printed = true;
  const QoeReport qoe = compute_qoe(log, setup.content.ladder());
  std::printf("=== %s ===\n%s  timeline: %s\n", setup.description.c_str(),
              summarize(log, qoe).c_str(), ex::render_selection_timeline(log).c_str());
  std::printf("  max |video buffer - audio buffer| = %.1f s\n\n",
              max_buffer_imbalance(log));
}

void BM_Fig5_DashJs700(benchmark::State& state) {
  const ex::ExperimentSetup setup = ex::fig5_dashjs_700();
  double combo_switches = 0.0;
  double distinct_combos = 0.0;
  double imbalance = 0.0;
  double undesirable_v2a3 = 0.0;
  for (auto _ : state) {
    DashJsPlayerModel player;
    const SessionLog log = ex::run(setup, player);
    print_once(setup, log);
    const QoeReport qoe = compute_qoe(log, setup.content.ladder());
    combo_switches = qoe.combo_switches;
    distinct_combos = static_cast<double>(log.selected_combination_labels().size());
    imbalance = max_buffer_imbalance(log);
    undesirable_v2a3 = 0.0;
    for (std::size_t i = 0; i < log.video_selection.size(); ++i) {
      if (log.video_selection[i] == "V2" && log.audio_selection[i] == "A3") {
        undesirable_v2a3 += 1.0;
      }
    }
    benchmark::DoNotOptimize(log.end_time_s);
  }
  state.counters["combo_switches"] = combo_switches;
  state.counters["distinct_combos"] = distinct_combos;
  state.counters["max_buffer_imbalance_s"] = imbalance;
  state.counters["v2_a3_chunks"] = undesirable_v2a3;
}
BENCHMARK(BM_Fig5_DashJs700)->Unit(benchmark::kMillisecond);

// Bandwidth sweep around the figure's operating point: the independent
// pipelines misbehave across a range, not just at exactly 700 kbps.
void BM_Fig5_Sweep(benchmark::State& state) {
  const double kbps = static_cast<double>(state.range(0));
  ex::ExperimentSetup setup = ex::fig5_dashjs_700();
  setup.trace = BandwidthTrace::constant(kbps);
  double switches = 0.0;
  double imbalance = 0.0;
  for (auto _ : state) {
    DashJsPlayerModel player;
    const SessionLog log = ex::run(setup, player);
    switches = compute_qoe(log, setup.content.ladder()).combo_switches;
    imbalance = max_buffer_imbalance(log);
    benchmark::DoNotOptimize(log.end_time_s);
  }
  state.counters["link_kbps"] = kbps;
  state.counters["combo_switches"] = switches;
  state.counters["max_buffer_imbalance_s"] = imbalance;
}
BENCHMARK(BM_Fig5_Sweep)->Arg(500)->Arg(700)->Arg(900)->Arg(1200)
    ->Unit(benchmark::kMillisecond);

}  // namespace
