#include "players/bola.h"

#include <gtest/gtest.h>

#include <vector>

namespace demuxabr {
namespace {

const std::vector<double> kVideoLadder{111, 246, 473, 914, 1852, 3746};

TEST(Bola, UtilitiesNormalizedToOneAtLowest) {
  Bola bola(kVideoLadder, 12.0);
  EXPECT_DOUBLE_EQ(bola.utilities().front(), 1.0);
  for (std::size_t i = 1; i < bola.utilities().size(); ++i) {
    EXPECT_GT(bola.utilities()[i], bola.utilities()[i - 1]);
  }
}

TEST(Bola, BufferTargetIncludesPerLevelMargin) {
  Bola bola(kVideoLadder, 12.0);
  // max(12, 10 + 2*6) = 22 for six levels.
  EXPECT_DOUBLE_EQ(bola.buffer_target_s(), 22.0);
  Bola audio({128, 196, 384}, 12.0);
  EXPECT_DOUBLE_EQ(audio.buffer_target_s(), 16.0);
  Bola wide(kVideoLadder, 40.0);
  EXPECT_DOUBLE_EQ(wide.buffer_target_s(), 40.0);
}

TEST(Bola, EmptyBufferChoosesLowest) {
  Bola bola(kVideoLadder, 12.0);
  EXPECT_EQ(bola.choose(0.0), 0u);
}

TEST(Bola, DesignInvariant_LowestAtMinimumBuffer) {
  // dash.js derives Vp/gp so the lowest track is preferred at 10 s...
  Bola bola(kVideoLadder, 12.0);
  EXPECT_EQ(bola.choose(10.0), 0u);
}

TEST(Bola, DesignInvariant_HighestAtBufferTarget) {
  // ...and the highest at the buffer target.
  Bola bola(kVideoLadder, 12.0);
  EXPECT_EQ(bola.choose(bola.buffer_target_s()), kVideoLadder.size() - 1);
}

TEST(Bola, ChoiceIsMonotoneInBuffer) {
  Bola bola(kVideoLadder, 12.0);
  std::size_t previous = 0;
  for (double buffer = 0.0; buffer <= 25.0; buffer += 0.25) {
    const std::size_t choice = bola.choose(buffer);
    EXPECT_GE(choice, previous) << "buffer " << buffer;
    previous = choice;
  }
}

TEST(Bola, PrefersWaitingBeyondPivot) {
  Bola bola(kVideoLadder, 12.0);
  EXPECT_FALSE(bola.prefers_waiting(5.0));
  // Far beyond the target every score is negative.
  EXPECT_TRUE(bola.prefers_waiting(200.0));
}

TEST(Bola, SingleTrackAlwaysChoosesIt) {
  Bola bola({500.0}, 12.0);
  EXPECT_EQ(bola.choose(0.0), 0u);
  EXPECT_EQ(bola.choose(50.0), 0u);
}

TEST(Bola, AudioLadderCrossoverNearSixteenSeconds) {
  // For the Table 1 audio ladder, BOLA's A2 -> A3 crossover sits around
  // 16.6 s of buffer (the analysis behind dash.js's Fig 5 audio behaviour).
  Bola bola({128, 196, 384}, 20.0);
  EXPECT_LT(bola.choose(15.0), 2u);
  EXPECT_EQ(bola.choose(18.0), 2u);
}

class BolaLadderSweep : public ::testing::TestWithParam<double> {};

TEST_P(BolaLadderSweep, ChoiceAlwaysValidAndMonotone) {
  const double stable = GetParam();
  Bola bola(kVideoLadder, stable);
  std::size_t previous = 0;
  for (double buffer = 0.0; buffer <= bola.buffer_target_s() + 10.0; buffer += 0.5) {
    const std::size_t choice = bola.choose(buffer);
    ASSERT_LT(choice, kVideoLadder.size());
    EXPECT_GE(choice, previous);
    previous = choice;
  }
  EXPECT_EQ(previous, kVideoLadder.size() - 1);
}

INSTANTIATE_TEST_SUITE_P(StableBuffers, BolaLadderSweep,
                         ::testing::Values(12.0, 20.0, 30.0, 60.0));

}  // namespace
}  // namespace demuxabr
