#include "net/link.h"

#include <gtest/gtest.h>

#include <limits>

#include "util/logging.h"

namespace demuxabr {
namespace {

TEST(Link, ProcessorSharingSplitsCapacity) {
  Link link(BandwidthTrace::constant(1000.0));
  EXPECT_DOUBLE_EQ(link.per_flow_kbps(0.0), 1000.0);  // idle: quoted full rate
  link.add_flow(0.0);
  EXPECT_DOUBLE_EQ(link.per_flow_kbps(0.0), 1000.0);
  link.add_flow(0.0);
  EXPECT_DOUBLE_EQ(link.per_flow_kbps(0.0), 500.0);
  link.remove_flow(0.0);
  EXPECT_DOUBLE_EQ(link.per_flow_kbps(0.0), 1000.0);
}

TEST(Link, DoubleRemoveIsDetected) {
  Link link(BandwidthTrace::constant(1000.0));
  link.add_flow(0.0);
  link.remove_flow(1.0);
#ifdef NDEBUG
  // Release: clamp at zero and log an error rather than corrupting the
  // processor-sharing count for every other flow on the link.
  CaptureLogSink capture;
  ScopedLogSink sink_guard(&capture);
  link.remove_flow(2.0);
  EXPECT_EQ(link.active_flows(), 0);
  EXPECT_TRUE(capture.contains("double remove"));
  // The link stays functional after the clamp: accounting is not corrupt.
  const double v0 = link.add_flow(3.0);
  EXPECT_DOUBLE_EQ(link.service_at(4.0) - v0, 1000.0);
  EXPECT_EQ(link.active_flows(), 1);
#else
  // Debug: a double remove is a caller bug and asserts.
  EXPECT_DEATH(link.remove_flow(2.0), "remove_flow");
#endif
}

TEST(Link, PeakFlowsTracksHighWaterMark) {
  Link link(BandwidthTrace::constant(1000.0));
  EXPECT_EQ(link.peak_flows(), 0);
  link.add_flow(0.0);
  link.add_flow(0.0);
  link.add_flow(0.0);
  link.remove_flow(0.0);
  link.remove_flow(0.0);
  EXPECT_EQ(link.active_flows(), 1);
  EXPECT_EQ(link.peak_flows(), 3);
  link.add_flow(0.0);
  EXPECT_EQ(link.peak_flows(), 3);  // below the high-water mark
}

TEST(Link, PeakFlowsSurvivesFinalize) {
  Link link(BandwidthTrace::constant(1000.0));
  link.add_flow(0.0);
  link.add_flow(0.0);
  link.remove_flow(1.0);
  link.remove_flow(2.0);  // drained to zero
  EXPECT_EQ(link.peak_flows(), 2);
  // Closing the books must not reset the cross-run high-water mark — the
  // fleet scheduler reads peak_flows *after* finalize().
  link.finalize(10.0);
  EXPECT_EQ(link.peak_flows(), 2);
  EXPECT_EQ(link.active_flows(), 0);
  EXPECT_DOUBLE_EQ(link.observed_s(), 10.0);
}

TEST(Link, CapacityFollowsTrace) {
  Link link(BandwidthTrace::square_wave(300.0, 900.0, 10.0, 10.0));
  EXPECT_DOUBLE_EQ(link.capacity_kbps(5.0), 300.0);
  EXPECT_DOUBLE_EQ(link.capacity_kbps(15.0), 900.0);
  EXPECT_DOUBLE_EQ(link.next_change_after(5.0), 10.0);
}

TEST(Link, ServiceIntegralAccruesPerFlow) {
  Link link(BandwidthTrace::constant(1000.0));
  // A lone flow receives the full 1000 kbps: after 2 s it has 2000 kbit.
  const double v0 = link.add_flow(0.0);
  EXPECT_DOUBLE_EQ(v0, 0.0);
  EXPECT_DOUBLE_EQ(link.service_at(2.0) - v0, 2000.0);
  // A second flow joins at t=2: service now accrues at 500 kbit/s per flow.
  const double v1 = link.add_flow(2.0);
  EXPECT_DOUBLE_EQ(v1, 2000.0);
  EXPECT_DOUBLE_EQ(link.service_at(4.0) - v1, 1000.0);
  // The first flow's total = shared prefix + shared suffix.
  EXPECT_DOUBLE_EQ(link.service_at(4.0) - v0, 3000.0);
}

TEST(Link, ServiceIntegralWalksTraceSegments) {
  // 300 kbps for 10 s, then 900 kbps for 10 s.
  Link link(BandwidthTrace::square_wave(300.0, 900.0, 10.0, 10.0));
  link.add_flow(0.0);
  EXPECT_DOUBLE_EQ(link.service_at(10.0), 3000.0);
  EXPECT_DOUBLE_EQ(link.service_at(12.0), 3000.0 + 1800.0);
}

TEST(Link, TimeWhenServiceReachesInvertsTheIntegral) {
  Link link(BandwidthTrace::square_wave(300.0, 900.0, 10.0, 10.0));
  link.add_flow(0.0);
  // 1500 kbit at 300 kbps -> t = 5.
  EXPECT_DOUBLE_EQ(link.time_when_service_reaches(1500.0), 5.0);
  // 3900 kbit: 3000 in the first segment + 900 at 900 kbps -> t = 11.
  EXPECT_DOUBLE_EQ(link.time_when_service_reaches(3900.0), 11.0);
  // Already-served targets report the link clock (last mutation time).
  EXPECT_DOUBLE_EQ(link.time_when_service_reaches(-1.0), 0.0);
}

TEST(Link, TimeWhenServiceReachesOnIdleLinkIsNever) {
  Link link(BandwidthTrace::constant(1000.0));
  EXPECT_EQ(link.time_when_service_reaches(1.0),
            std::numeric_limits<double>::infinity());
}

TEST(Link, CompletionRegistryOrdersByTargetThenToken) {
  Link link(BandwidthTrace::constant(1000.0));
  link.add_flow(0.0);
  link.register_completion(7, 2000.0);
  link.register_completion(3, 1000.0);
  EXPECT_TRUE(link.has_completions());
  EXPECT_EQ(link.earliest_completion_token(), 3u);
  EXPECT_DOUBLE_EQ(link.earliest_completion_time(), 1.0);
  link.unregister_completion(3);
  EXPECT_EQ(link.earliest_completion_token(), 7u);
  EXPECT_DOUBLE_EQ(link.earliest_completion_time(), 2.0);
  link.unregister_completion(7);
  EXPECT_FALSE(link.has_completions());
  EXPECT_EQ(link.earliest_completion_time(),
            std::numeric_limits<double>::infinity());
}

TEST(Link, EpochBumpsOnEveryPopulationChange) {
  Link link(BandwidthTrace::constant(1000.0));
  const std::uint64_t e0 = link.epoch();
  link.add_flow(0.0);
  EXPECT_GT(link.epoch(), e0);
  const std::uint64_t e1 = link.epoch();
  link.remove_flow(1.0);
  EXPECT_GT(link.epoch(), e1);
}

TEST(Link, UtilizationIntegralsCoverIdleTime) {
  Link link(BandwidthTrace::constant(1000.0));
  link.add_flow(1.0);     // idle for [0, 1)
  link.remove_flow(3.0);  // busy for [1, 3)
  link.finalize(4.0);     // idle tail [3, 4)
  EXPECT_DOUBLE_EQ(link.observed_s(), 4.0);
  EXPECT_DOUBLE_EQ(link.busy_s(), 2.0);
  EXPECT_DOUBLE_EQ(link.flow_seconds(), 2.0);
  EXPECT_DOUBLE_EQ(link.offered_kbit(), 4000.0);
  EXPECT_DOUBLE_EQ(link.delivered_kbit(), 2000.0);
}

TEST(Network, SharedLinkIsSameObject) {
  const Network net = Network::shared(BandwidthTrace::constant(700.0));
  EXPECT_TRUE(net.is_shared());
  EXPECT_EQ(&net.link_for(true), &net.link_for(false));
  net.link_for(true).add_flow(0.0);
  EXPECT_EQ(net.link_for(false).active_flows(), 1);
}

TEST(Network, SplitLinksAreIndependent) {
  const Network net = Network::split(BandwidthTrace::constant(700.0),
                                     BandwidthTrace::constant(200.0));
  EXPECT_FALSE(net.is_shared());
  net.link_for(true).add_flow(0.0);
  EXPECT_EQ(net.link_for(false).active_flows(), 0);
  EXPECT_DOUBLE_EQ(net.link_for(true).capacity_kbps(0.0), 700.0);
  EXPECT_DOUBLE_EQ(net.link_for(false).capacity_kbps(0.0), 200.0);
}

TEST(Network, DefaultRtt) {
  const Network net = Network::shared(BandwidthTrace::constant(700.0));
  EXPECT_DOUBLE_EQ(net.rtt_s, 0.05);
  const Network custom = Network::shared(BandwidthTrace::constant(700.0), 0.2);
  EXPECT_DOUBLE_EQ(custom.rtt_s, 0.2);
}

}  // namespace
}  // namespace demuxabr
