#include "net/link.h"

#include <gtest/gtest.h>

namespace demuxabr {
namespace {

TEST(Link, ProcessorSharingSplitsCapacity) {
  Link link(BandwidthTrace::constant(1000.0));
  EXPECT_DOUBLE_EQ(link.per_flow_kbps(0.0), 1000.0);  // idle: quoted full rate
  link.add_flow();
  EXPECT_DOUBLE_EQ(link.per_flow_kbps(0.0), 1000.0);
  link.add_flow();
  EXPECT_DOUBLE_EQ(link.per_flow_kbps(0.0), 500.0);
  link.remove_flow();
  EXPECT_DOUBLE_EQ(link.per_flow_kbps(0.0), 1000.0);
}

TEST(Link, DoubleRemoveIsDetected) {
  Link link(BandwidthTrace::constant(1000.0));
  link.add_flow();
  link.remove_flow();
#ifdef NDEBUG
  // Release: clamp at zero and log an error rather than corrupting the
  // processor-sharing count for every other flow on the link.
  link.remove_flow();
  EXPECT_EQ(link.active_flows(), 0);
#else
  // Debug: a double remove is a caller bug and asserts.
  EXPECT_DEATH(link.remove_flow(), "remove_flow");
#endif
}

TEST(Link, PeakFlowsTracksHighWaterMark) {
  Link link(BandwidthTrace::constant(1000.0));
  EXPECT_EQ(link.peak_flows(), 0);
  link.add_flow();
  link.add_flow();
  link.add_flow();
  link.remove_flow();
  link.remove_flow();
  EXPECT_EQ(link.active_flows(), 1);
  EXPECT_EQ(link.peak_flows(), 3);
  link.add_flow();
  EXPECT_EQ(link.peak_flows(), 3);  // below the high-water mark
}

TEST(Link, CapacityFollowsTrace) {
  Link link(BandwidthTrace::square_wave(300.0, 900.0, 10.0, 10.0));
  EXPECT_DOUBLE_EQ(link.capacity_kbps(5.0), 300.0);
  EXPECT_DOUBLE_EQ(link.capacity_kbps(15.0), 900.0);
  EXPECT_DOUBLE_EQ(link.next_change_after(5.0), 10.0);
}

TEST(Network, SharedLinkIsSameObject) {
  const Network net = Network::shared(BandwidthTrace::constant(700.0));
  EXPECT_TRUE(net.is_shared());
  EXPECT_EQ(&net.link_for(true), &net.link_for(false));
  net.link_for(true).add_flow();
  EXPECT_EQ(net.link_for(false).active_flows(), 1);
}

TEST(Network, SplitLinksAreIndependent) {
  const Network net = Network::split(BandwidthTrace::constant(700.0),
                                     BandwidthTrace::constant(200.0));
  EXPECT_FALSE(net.is_shared());
  net.link_for(true).add_flow();
  EXPECT_EQ(net.link_for(false).active_flows(), 0);
  EXPECT_DOUBLE_EQ(net.link_for(true).capacity_kbps(0.0), 700.0);
  EXPECT_DOUBLE_EQ(net.link_for(false).capacity_kbps(0.0), 200.0);
}

TEST(Network, DefaultRtt) {
  const Network net = Network::shared(BandwidthTrace::constant(700.0));
  EXPECT_DOUBLE_EQ(net.rtt_s, 0.05);
  const Network custom = Network::shared(BandwidthTrace::constant(700.0), 0.2);
  EXPECT_DOUBLE_EQ(custom.rtt_s, 0.2);
}

}  // namespace
}  // namespace demuxabr
