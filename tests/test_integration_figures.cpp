// End-to-end reproduction checks: every figure/claim of §3 as an assertion,
// plus the §4 best-practice comparisons. These are the repository's
// regression net for EXPERIMENTS.md.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/compliance.h"
#include "core/coordinated_player.h"
#include "experiments/scenarios.h"
#include "httpsim/workload.h"
#include "players/dashjs.h"
#include "players/exoplayer.h"
#include "players/shaka.h"

namespace demuxabr {
namespace {

namespace ex = demuxabr::experiments;

std::set<std::string> combos_used(const SessionLog& log) {
  const auto labels = log.selected_combination_labels();
  return {labels.begin(), labels.end()};
}

// --- Fig 2(a): ExoPlayer DASH, audio set B, fixed 900 kbps ---
TEST(Fig2a, SelectsV3B2SteadyState) {
  auto setup = ex::fig2a_exo_dash_audio_b();
  ExoPlayerModel player;
  const SessionLog log = ex::run(setup, player);
  ASSERT_TRUE(log.completed);
  // Steady state is V3+B2 (the paper's observation)...
  EXPECT_EQ(log.video_selection.back(), "V3");
  EXPECT_EQ(log.audio_selection.back(), "B2");
  // ...for the vast majority of chunks.
  int v3b2 = 0;
  for (std::size_t i = 0; i < log.video_selection.size(); ++i) {
    if (log.video_selection[i] == "V3" && log.audio_selection[i] == "B2") ++v3b2;
  }
  EXPECT_GT(v3b2, 65);
}

TEST(Fig2a, BetterComboV3B3WasFeasibleButExcluded) {
  // V3+B3 (declared 601 kbps) fits within 900 kbps but is not in the
  // predetermined combinations, so it can never be selected.
  auto setup = ex::fig2a_exo_dash_audio_b();
  ExoPlayerModel player;
  player.start(setup.view);
  bool v3b3_available = false;
  for (const ComboView& combo : player.combinations()) {
    if (combo.video_id == "V3" && combo.audio_id == "B3") v3b3_available = true;
  }
  EXPECT_FALSE(v3b3_available);
  EXPECT_LE(473.0 + 128.0, 900.0);  // the paper's feasibility argument
}

// --- Fig 2(b): ExoPlayer DASH, audio set C, fixed 900 kbps ---
TEST(Fig2b, SelectsLowVideoHighAudioV2C2) {
  auto setup = ex::fig2b_exo_dash_audio_c();
  ExoPlayerModel player;
  const SessionLog log = ex::run(setup, player);
  ASSERT_TRUE(log.completed);
  EXPECT_EQ(log.video_selection.back(), "V2");
  EXPECT_EQ(log.audio_selection.back(), "C2");
  // The better V3+C1 (declared 669) was feasible but not predetermined.
  ExoPlayerModel fresh;
  fresh.start(setup.view);
  for (const ComboView& combo : fresh.combinations()) {
    EXPECT_FALSE(combo.video_id == "V3" && combo.audio_id == "C1");
  }
}

// --- Fig 3: ExoPlayer HLS H_sub, A3 first, varying 600 kbps ---
TEST(Fig3, AudioPinnedToFirstListedRendition) {
  auto setup = ex::fig3_exo_hls_a3_first();
  ExoPlayerModel player;
  const SessionLog log = ex::run(setup, player);
  ASSERT_TRUE(log.completed);
  for (const std::string& id : log.audio_selection) EXPECT_EQ(id, "A3");
}

TEST(Fig3, StallsOccurDespiteModerateBandwidth) {
  auto setup = ex::fig3_exo_hls_a3_first();
  ExoPlayerModel player;
  const SessionLog log = ex::run(setup, player);
  EXPECT_GE(log.stall_count(), 1u);
  EXPECT_GT(log.total_stall_s(), 1.0);
}

TEST(Fig3, SelectsCombinationsOutsideTheManifest) {
  auto setup = ex::fig3_exo_hls_a3_first();
  ExoPlayerModel player;
  const SessionLog log = ex::run(setup, player);
  const ComplianceReport report = check_compliance(log, setup.allowed);
  EXPECT_FALSE(report.compliant());
  // e.g. V1+A3 / V2+A3, neither of which is in H_sub.
  EXPECT_TRUE(std::find(report.violating_labels.begin(), report.violating_labels.end(),
                        "V1+A3") != report.violating_labels.end() ||
              std::find(report.violating_labels.begin(), report.violating_labels.end(),
                        "V2+A3") != report.violating_labels.end());
}

// --- §3.2 second HLS experiment: A1 first, 5 Mbps ---
TEST(Fig3x, AudioStaysLowDespiteAmpleBandwidth) {
  auto setup = ex::fig3x_exo_hls_a1_first_5mbps();
  ExoPlayerModel player;
  const SessionLog log = ex::run(setup, player);
  ASSERT_TRUE(log.completed);
  for (const std::string& id : log.audio_selection) EXPECT_EQ(id, "A1");
  // Video reaches the high rungs, so the bandwidth was clearly there.
  const QoeReport report = compute_qoe(log, setup.content.ladder());
  EXPECT_GT(report.avg_video_kbps, 1000.0);
}

// --- Fig 4(a): Shaka HLS H_all, fixed 1 Mbps ---
TEST(Fig4a, EstimatePinnedAtDefault500) {
  auto setup = ex::fig4a_shaka_hall_1mbps();
  ShakaPlayerModel player;
  const SessionLog log = ex::run(setup, player);
  ASSERT_TRUE(log.completed);
  // The logged estimate stays at the 500 kbps default throughout: every
  // 0.125 s interval at <= 1 Mbps moves < 16 KB.
  EXPECT_DOUBLE_EQ(log.bandwidth_estimate_kbps.min_value(), 500.0);
  EXPECT_DOUBLE_EQ(log.bandwidth_estimate_kbps.max_value(), 500.0);
}

TEST(Fig4a, SelectsV2A2Throughout) {
  auto setup = ex::fig4a_shaka_hall_1mbps();
  ShakaPlayerModel player;
  const SessionLog log = ex::run(setup, player);
  const auto used = combos_used(log);
  EXPECT_EQ(used.size(), 1u);
  EXPECT_TRUE(used.count("V2+A2"));
}

// --- Fig 4(b): Shaka HLS H_all, varying 600 kbps average ---
TEST(Fig4b, UnderThenOverEstimates) {
  auto setup = ex::fig4b_shaka_hall_varying();
  ShakaPlayerModel player;
  const SessionLog log = ex::run(setup, player);
  // Early (low phase): pinned at the 500 default although the average is 600.
  EXPECT_NEAR(log.bandwidth_estimate_kbps.value_at(20.0), 500.0, 1.0);
  // After the first high phase: estimate well above the 600 kbps average.
  EXPECT_GT(log.bandwidth_estimate_kbps.max_value(), 1000.0);
}

TEST(Fig4b, LowThenHighSelectionWithHeavyRebuffering) {
  auto setup = ex::fig4b_shaka_hall_varying();
  ShakaPlayerModel player;
  const SessionLog log = ex::run(setup, player);
  const auto used = combos_used(log);
  EXPECT_TRUE(used.count("V2+A2"));  // initial underestimate
  EXPECT_TRUE(used.count("V3+A3"));  // later overestimate
  EXPECT_GT(log.total_stall_s(), 20.0);
  EXPECT_GE(log.stall_count(), 3u);
}

// --- §3.3 DASH: same outcome as H_all ---
TEST(Fig4c, DashRecreatesAllCombinationsSameRootCause) {
  auto setup = ex::fig4c_shaka_dash_1mbps();
  ShakaPlayerModel player;
  const SessionLog log = ex::run(setup, player);
  ASSERT_TRUE(log.completed);
  // Same root cause as Fig 4(a): the estimate never leaves the 500 kbps
  // default. (The selected combination is V1+A3 rather than V2+A2 because
  // DASH combinations are priced by declared-bitrate sums, 495 vs 442,
  // instead of Table 2's peak sums.)
  EXPECT_DOUBLE_EQ(log.bandwidth_estimate_kbps.max_value(), 500.0);
  const auto used = combos_used(log);
  EXPECT_EQ(used.size(), 1u);
  EXPECT_TRUE(used.count("V1+A3"));
}

// --- Fig 5: dash.js, fixed 700 kbps ---
TEST(Fig5, CombinationsFluctuate) {
  auto setup = ex::fig5_dashjs_700();
  DashJsPlayerModel player;
  const SessionLog log = ex::run(setup, player);
  ASSERT_TRUE(log.completed);
  const QoeReport report = compute_qoe(log, setup.content.ladder());
  EXPECT_GE(report.combo_switches, 10);
  EXPECT_GE(combos_used(log).size(), 3u);
}

TEST(Fig5, SelectsUndesirableV2A3) {
  auto setup = ex::fig5_dashjs_700();
  DashJsPlayerModel player;
  const SessionLog log = ex::run(setup, player);
  // The paper's headline undesirable pair: lowish video + highest audio,
  // although V3+A2 fits the same budget with better video.
  EXPECT_TRUE(combos_used(log).count("V2+A3"));
}

TEST(Fig5, AudioAndVideoBuffersUnbalanced) {
  auto setup = ex::fig5_dashjs_700();
  DashJsPlayerModel player;
  const SessionLog log = ex::run(setup, player);
  double max_imbalance = 0.0;
  for (const auto& point : log.video_buffer_s.points()) {
    const double audio = log.audio_buffer_s.value_at(point.t);
    max_imbalance = std::max(max_imbalance, std::abs(point.value - audio));
  }
  EXPECT_GT(max_imbalance, 6.0);  // well beyond one chunk duration
}

// --- §4: the coordinated player fixes all of the above ---
TEST(BestPractice, FixesFig3PinnedAudio) {
  auto setup = ex::bestpractice_hls(ex::varying_600_trace(), "bp");
  CoordinatedPlayer player;
  const SessionLog log = ex::run(setup, player);
  ASSERT_TRUE(log.completed);
  std::set<std::string> audio(log.audio_selection.begin(), log.audio_selection.end());
  EXPECT_GE(audio.size(), 2u);  // audio adapts
  EXPECT_TRUE(check_compliance(log, setup.allowed).compliant());
}

TEST(BestPractice, BeatsShakaOnBurstyTrace) {
  auto shaka_setup = ex::fig4b_shaka_hall_varying();
  ShakaPlayerModel shaka;
  const SessionLog shaka_log = ex::run(shaka_setup, shaka);

  auto coordinated_setup =
      ex::bestpractice_dash(ex::shaka_varying_600_trace(), "bp");
  CoordinatedPlayer coordinated;
  const SessionLog coordinated_log = ex::run(coordinated_setup, coordinated);

  EXPECT_LT(coordinated_log.total_stall_s(), shaka_log.total_stall_s() / 2.0);
}

TEST(BestPractice, FewerSwitchesThanDashJs) {
  auto dashjs_setup = ex::fig5_dashjs_700();
  DashJsPlayerModel dashjs;
  const SessionLog dashjs_log = ex::run(dashjs_setup, dashjs);
  const QoeReport dashjs_report = compute_qoe(dashjs_log, dashjs_setup.content.ladder());

  auto coordinated_setup = ex::bestpractice_dash(BandwidthTrace::constant(700.0), "bp");
  CoordinatedPlayer coordinated;
  const SessionLog coordinated_log = ex::run(coordinated_setup, coordinated);
  const QoeReport coordinated_report =
      compute_qoe(coordinated_log, coordinated_setup.content.ladder());

  EXPECT_LT(coordinated_report.combo_switches, dashjs_report.combo_switches / 4);
  EXPECT_EQ(coordinated_report.stall_count, 0);
}

// --- §1 motivation ---
TEST(Motivation, DemuxedStorageAndCacheAdvantage) {
  const Content content = make_drama_content();
  const StorageReport storage = compare_storage(content);
  EXPECT_GT(storage.muxed_to_demuxed_ratio(), 1.5);
  WorkloadConfig config;
  config.num_users = 100;
  const auto results = run_cdn_comparison(content, config);
  EXPECT_GT(results[0].cdn.hit_ratio(), results[1].cdn.hit_ratio());
}

}  // namespace
}  // namespace demuxabr
