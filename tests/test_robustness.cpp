// Failure injection and boundary conditions: outages, degenerate ladders,
// extreme RTTs, minimal content. Every player must survive (no crashes, no
// invariant violations) even when QoE is necessarily terrible.
#include <gtest/gtest.h>

#include <memory>

#include "core/coordinated_player.h"
#include "experiments/scenarios.h"
#include "manifest/builder.h"
#include "players/dashjs.h"
#include "players/exoplayer.h"
#include "players/shaka.h"

namespace demuxabr {
namespace {

namespace ex = demuxabr::experiments;

BandwidthTrace outage_trace() {
  // Healthy, then a 40 s near-outage (5 kbps), then recovery.
  return BandwidthTrace::steps({{60.0, 1200.0}, {40.0, 5.0}, {600.0, 1200.0}},
                               /*repeat=*/false);
}

TEST(Robustness, PlayersSurviveMidSessionOutage) {
  for (int which = 0; which < 3; ++which) {
    std::unique_ptr<PlayerAdapter> player;
    ex::ExperimentSetup setup;
    switch (which) {
      case 0:
        setup = ex::plain_dash(outage_trace(), "outage");
        player = std::make_unique<ExoPlayerModel>();
        break;
      case 1:
        setup = ex::plain_dash(outage_trace(), "outage");
        player = std::make_unique<DashJsPlayerModel>();
        break;
      case 2:
        setup = ex::bestpractice_dash(outage_trace(), "outage");
        player = std::make_unique<CoordinatedPlayer>();
        break;
    }
    setup.session.max_sim_time_s = 2000.0;
    const SessionLog log = ex::run(setup, *player);
    EXPECT_TRUE(log.completed) << which;
    // Playback accounting stays consistent through the outage.
    EXPECT_NEAR(log.end_time_s,
                log.startup_delay_s + log.content_duration_s + log.total_stall_s(),
                0.1)
        << which;
  }
}

TEST(Robustness, OutageCausesStallsNotCorruption) {
  auto setup = ex::bestpractice_dash(outage_trace(), "outage");
  setup.session.max_sim_time_s = 2000.0;
  CoordinatedPlayer player;
  const SessionLog log = ex::run(setup, player);
  // A 40 s hole in a 300 s stream must stall (the buffer holds at most 30 s).
  EXPECT_GE(log.total_stall_s(), 5.0);
  for (const auto& point : log.video_buffer_s.points()) EXPECT_GE(point.value, -1e-9);
}

TEST(Robustness, SingleTrackLadder) {
  const Content content = ContentBuilder(make_ladder({96}, {400}))
                              .duration_s(60.0)
                              .chunk_duration_s(4.0)
                              .build();
  const ManifestView view = view_from_mpd(build_dash_mpd(content));
  for (int which = 0; which < 3; ++which) {
    std::unique_ptr<PlayerAdapter> player;
    switch (which) {
      case 0: player = std::make_unique<ExoPlayerModel>(); break;
      case 1: player = std::make_unique<DashJsPlayerModel>(); break;
      case 2: player = std::make_unique<CoordinatedPlayer>(); break;
    }
    const Network network = Network::shared(BandwidthTrace::constant(1000.0));
    const SessionLog log = run_session(content, view, network, *player);
    EXPECT_TRUE(log.completed) << which;
    for (const std::string& id : log.video_selection) EXPECT_EQ(id, "V1") << which;
    for (const std::string& id : log.audio_selection) EXPECT_EQ(id, "A1") << which;
  }
}

TEST(Robustness, SingleChunkContent) {
  const Content content = ContentBuilder(youtube_drama_ladder())
                              .duration_s(4.0)
                              .chunk_duration_s(4.0)
                              .build();
  ASSERT_EQ(content.num_chunks(), 1);
  const ManifestView view = view_from_mpd(build_dash_mpd(content));
  CoordinatedPlayer player;
  const Network network = Network::shared(BandwidthTrace::constant(800.0));
  const SessionLog log = run_session(content, view, network, player);
  EXPECT_TRUE(log.completed);
  EXPECT_EQ(log.downloads.size(), 2u);  // one audio + one video chunk
}

TEST(Robustness, RttLongerThanChunkDuration) {
  const Content content = ContentBuilder(make_ladder({64}, {200}))
                              .duration_s(40.0)
                              .chunk_duration_s(2.0)
                              .build();
  const ManifestView view = view_from_mpd(build_dash_mpd(content));
  CoordinatedPlayer player;
  // 3 s RTT on 2 s chunks: serial fetching cannot keep up -> stalls, but the
  // session must still complete.
  const Network network = Network::shared(BandwidthTrace::constant(10000.0), 3.0);
  const SessionLog log = run_session(content, view, network, player);
  EXPECT_TRUE(log.completed);
  EXPECT_GT(log.total_stall_s(), 10.0);
}

TEST(Robustness, ShakaSurvivesOutageDespitePinnedEstimate) {
  auto setup = ex::fig4a_shaka_hall_1mbps();
  setup.trace = outage_trace();
  setup.session.max_sim_time_s = 2000.0;
  ShakaPlayerModel player;
  const SessionLog log = ex::run(setup, player);
  EXPECT_TRUE(log.completed);
}

TEST(Robustness, TinyChunksLargeCount) {
  const Content content = ContentBuilder(make_ladder({64, 128}, {200, 600}))
                              .duration_s(120.0)
                              .chunk_duration_s(0.5)
                              .build();
  ASSERT_EQ(content.num_chunks(), 240);
  const ManifestView view = view_from_mpd(build_dash_mpd(content));
  CoordinatedPlayer player;
  const Network network = Network::shared(BandwidthTrace::constant(2000.0));
  const SessionLog log = run_session(content, view, network, player);
  EXPECT_TRUE(log.completed);
  EXPECT_EQ(log.downloads.size(), 480u);
}

TEST(Robustness, VeryHighBandwidthNoOverflow) {
  auto setup = ex::bestpractice_dash(BandwidthTrace::constant(1e7), "10gbps");
  CoordinatedPlayer player;
  const SessionLog log = ex::run(setup, player);
  EXPECT_TRUE(log.completed);
  EXPECT_EQ(log.stall_count(), 0u);
  EXPECT_EQ(log.video_selection.back(), "V6");
  EXPECT_EQ(log.audio_selection.back(), "A3");
}

TEST(Robustness, TraceFromCsvDrivesSession) {
  // End-to-end: trace -> CSV -> parsed trace -> session.
  const std::string csv = ex::varying_600_trace().to_csv();
  auto trace = BandwidthTrace::from_csv(csv);
  ASSERT_TRUE(trace.ok()) << trace.error();
  // CSV loses periodicity (aperiodic last-rate-holds): still valid input.
  auto setup = ex::bestpractice_dash(*trace, "csv");
  CoordinatedPlayer player;
  const SessionLog log = ex::run(setup, player);
  EXPECT_TRUE(log.completed);
}

}  // namespace
}  // namespace demuxabr
