// Multi-link topology battery (fleet/topology.h), in three tiers:
//
//  1. Differential: kBarrier and kEventHeap produce byte-identical fleet
//     fingerprints on >=3-link client→edge→core topologies, heterogeneous
//     edges, a shared-core-only variant and a split audio path — and the
//     degenerate single-link topology reproduces the plain fleet's
//     fingerprint bit for bit.
//  2. Property: a seeded random-topology generator (depth <= 3, fan-in
//     <= 8, 200+ cases) drives random flow schedules straight against the
//     Topology oracle and checks conservation (flow bytes partition each
//     link's delivered integral), residual_flows == 0, the min-share
//     bound (a path's rate/integral never exceeds any hop's fair share),
//     and bit-exact agreement of a 1-hop path with a plain net/link.h Link.
//  3. Regression: finalize on never-used links (idle tail, 0/0 utilization
//     guard) and completion re-keying when the binding constraint moves
//     mid-flow (epoch-lazy sync counters must reconcile).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "experiments/scenarios.h"
#include "experiments/sweep.h"
#include "fleet/event_heap.h"
#include "fleet/metrics.h"
#include "fleet/scheduler.h"
#include "fleet/topology.h"
#include "net/link.h"
#include "players/dashjs.h"
#include "players/exoplayer.h"
#include "util/rng.h"
#include "util/strings.h"

namespace demuxabr::fleet {
namespace {

namespace ex = demuxabr::experiments;

std::unique_ptr<PlayerAdapter> make_exo() {
  return std::make_unique<ExoPlayerModel>();
}

std::unique_ptr<PlayerAdapter> make_dashjs() {
  return std::make_unique<DashJsPlayerModel>();
}

FleetConfig base_config(int clients, std::uint64_t seed = 7) {
  FleetConfig config;
  config.client_count = clients;
  config.seed = seed;
  config.players.push_back({"exoplayer", &make_exo, 1.0});
  config.session.max_sim_time_s = 1800.0;
  return config;
}

/// Runs `config` under both engines and asserts byte-identical per-client
/// logs and fleet fingerprints. Returns the event-heap result for further
/// assertions.
FleetResult expect_engines_identical(const ex::ExperimentSetup& setup,
                                     FleetConfig config) {
  const BandwidthTrace unused = BandwidthTrace::constant(1000.0);
  config.engine = Engine::kBarrier;
  const FleetResult barrier = run_fleet(setup.content, setup.view, unused, config);
  config.engine = Engine::kEventHeap;
  FleetResult heap = run_fleet(setup.content, setup.view, unused, config);

  EXPECT_EQ(barrier.clients.size(), heap.clients.size());
  for (std::size_t i = 0;
       i < std::min(barrier.clients.size(), heap.clients.size()); ++i) {
    EXPECT_EQ(ex::log_fingerprint(barrier.clients[i].log),
              ex::log_fingerprint(heap.clients[i].log))
        << "client " << barrier.clients[i].id;
  }
  EXPECT_EQ(fleet_fingerprint(barrier), fleet_fingerprint(heap));
  return heap;
}

// --- 1. Differential: cross-engine identity on multi-link topologies. ---

TEST(TopologyCrossEngine, ThreeLinkShardsAcrossFleetSizes) {
  const ex::ExperimentSetup setup = ex::plain_dash(ex::varying_600_trace(), "shards");
  for (const int clients : {1, 2, 10}) {
    FleetConfig config = base_config(clients, 11);
    config.arrivals = ArrivalProcess::kDeterministic;
    config.arrival_interval_s = 4.0;
    // Two client→edge→core shards; the core tightens as the fleet grows so
    // the binding constraint actually lives there under contention.
    config.topology = TopologySpec::sharded(
        2, BandwidthTrace::constant(4000.0), BandwidthTrace::constant(1800.0),
        BandwidthTrace::constant(400.0 * clients + 1200.0));
    const FleetResult result = expect_engines_identical(setup, config);
    EXPECT_EQ(result.links.size(), 5u);
    for (const LinkStats& link : result.links) {
      EXPECT_EQ(link.residual_flows, 0) << link.name;
    }
    for (const PathSummary& path : result.paths) {
      EXPECT_EQ(path.residual_flows, 0) << path.name;
    }
  }
}

TEST(TopologyCrossEngine, HeterogeneousEdgeCapacitiesWithChurn) {
  const ex::ExperimentSetup setup = ex::plain_dash(ex::varying_600_trace(), "hetero");
  FleetConfig config = base_config(10, 23);
  config.players.push_back({"dashjs", &make_dashjs, 0.5});
  config.arrivals = ArrivalProcess::kPoisson;
  config.arrival_rate_per_s = 0.3;
  config.churn.leave_probability = 0.4;
  config.churn.min_watch_s = 15.0;
  config.churn.max_watch_s = 80.0;

  // Three shards with very different edge pipes — one generous, one
  // mid-tier on a square wave (binding flips with the wave), one starved.
  TopologySpec spec;
  const std::size_t core = spec.add_link("core", BandwidthTrace::constant(5200.0));
  const std::size_t fast = spec.add_link("edge-fast", BandwidthTrace::constant(4000.0));
  const std::size_t wavy = spec.add_link(
      "edge-wavy", BandwidthTrace::square_wave(700.0, 2600.0, 12.0, 9.0));
  const std::size_t slow = spec.add_link("edge-slow", BandwidthTrace::constant(750.0));
  spec.add_path("fast", {fast, core});
  spec.add_path("wavy", {wavy, core});
  spec.add_path("slow", {slow, core});
  config.topology = std::move(spec);

  const FleetResult result = expect_engines_identical(setup, config);
  EXPECT_EQ(result.links.size(), 4u);
  // Every client must be attributed to a path in the result.
  for (const ClientResult& client : result.clients) {
    EXPECT_GE(client.video_path, 0);
    EXPECT_EQ(client.audio_path, client.video_path);
  }
  const FleetMetrics metrics = compute_fleet_metrics(result);
  ASSERT_EQ(metrics.path_groups.size(), 3u);
  int grouped = 0;
  for (const auto& group : metrics.path_groups) grouped += group.clients;
  EXPECT_EQ(grouped, static_cast<int>(result.clients.size()));
}

TEST(TopologyCrossEngine, SharedCoreOnlyVariant) {
  // Every path is the bare shared core — several 1-hop paths over one link
  // (the plain fleet expressed as a topology, with per-path accounting).
  const ex::ExperimentSetup setup = ex::plain_dash(ex::varying_600_trace(), "core-only");
  FleetConfig config = base_config(6, 5);
  config.arrivals = ArrivalProcess::kDeterministic;
  config.arrival_interval_s = 6.0;

  TopologySpec spec;
  const std::size_t core = spec.add_link("core", BandwidthTrace::constant(4800.0));
  spec.add_path("tenant-a", {core});
  spec.add_path("tenant-b", {core});
  config.topology = std::move(spec);

  const FleetResult result = expect_engines_identical(setup, config);
  ASSERT_EQ(result.links.size(), 1u);
  // All traversing paths are 1-hop, so the core saturates while busy:
  // delivered == offered over every busy interval.
  EXPECT_GT(result.links[0].busy_s, 0.0);
  EXPECT_EQ(result.links[0].residual_flows, 0);
}

TEST(TopologyCrossEngine, SplitAudioPath) {
  // Audio rides its own access+core chain while video crosses the shared
  // edge — the §4.1 different-servers scenario over a real topology.
  const ex::ExperimentSetup setup = ex::plain_dash(ex::varying_600_trace(), "split");
  FleetConfig config = base_config(4, 3);
  config.arrivals = ArrivalProcess::kDeterministic;
  config.arrival_interval_s = 7.0;

  TopologySpec spec;
  const std::size_t core = spec.add_link("core", BandwidthTrace::constant(4000.0));
  const std::size_t edge = spec.add_link("edge", BandwidthTrace::constant(2200.0));
  const std::size_t audio_pipe =
      spec.add_link("audio-pipe", BandwidthTrace::constant(320.0));
  const std::size_t video_path = spec.add_path("video", {edge, core});
  const std::size_t audio_path = spec.add_path("audio", {audio_pipe, core});
  spec.video_assignment = {video_path};
  spec.audio_assignment = {audio_path};
  config.topology = std::move(spec);

  const FleetResult result = expect_engines_identical(setup, config);
  EXPECT_TRUE(result.split_audio);
  for (const ClientResult& client : result.clients) {
    EXPECT_NE(client.video_path, client.audio_path);
  }
  // The audio pipe saw traffic on every client.
  ASSERT_EQ(result.links.size(), 3u);
  EXPECT_GT(result.links[2].busy_s, 0.0);
}

TEST(TopologyDegenerate, SingleLinkTopologyMatchesPlainFleetBitForBit) {
  const ex::ExperimentSetup setup = ex::plain_dash(ex::varying_600_trace(), "degen");
  const BandwidthTrace trace = BandwidthTrace::constant(2500.0);
  FleetConfig config = base_config(4, 21);
  config.arrivals = ArrivalProcess::kPoisson;
  config.arrival_rate_per_s = 0.2;
  config.churn.leave_probability = 0.5;
  config.churn.min_watch_s = 20.0;
  config.churn.max_watch_s = 90.0;

  for (const Engine engine : {Engine::kBarrier, Engine::kEventHeap}) {
    FleetConfig plain = config;
    plain.engine = engine;
    const FleetResult plain_result =
        run_fleet(setup.content, setup.view, trace, plain);

    FleetConfig degenerate = plain;
    degenerate.topology = TopologySpec::single(trace);
    const FleetResult topo_result =
        run_fleet(setup.content, setup.view, trace, degenerate);

    EXPECT_EQ(fleet_fingerprint(plain_result), fleet_fingerprint(topo_result));
  }
}

// --- 2. Property suite over a seeded random-topology generator. ---

BandwidthTrace random_trace(Rng& rng) {
  const double base = rng.uniform(600.0, 5000.0);
  if (rng.bernoulli(0.35)) {
    return BandwidthTrace::square_wave(base * rng.uniform(0.2, 0.7), base,
                                       rng.uniform(2.0, 15.0),
                                       rng.uniform(2.0, 15.0));
  }
  return BandwidthTrace::constant(base);
}

/// Random tiered topology: depth <= 3 (access → edge → core), fan-in <= 8
/// shards into one core.
TopologySpec random_spec(Rng& rng) {
  TopologySpec spec;
  const auto depth = static_cast<int>(rng.uniform_int(1, 3));
  const auto fan_in = static_cast<int>(rng.uniform_int(1, 8));
  const std::size_t core = spec.add_link("core", random_trace(rng));
  for (int e = 0; e < fan_in; ++e) {
    std::vector<std::size_t> hops;
    if (depth >= 3) hops.push_back(spec.add_link(format("access-%d", e), random_trace(rng)));
    if (depth >= 2) hops.push_back(spec.add_link(format("edge-%d", e), random_trace(rng)));
    hops.push_back(core);
    spec.add_path(format("path-%d", e), std::move(hops));
  }
  return spec;
}

struct OracleFlow {
  std::size_t path = 0;
  double v_start_kbit = 0.0;
};

/// Drives one random flow schedule against a Topology and checks the
/// invariants. Returns the number of flow-add events (for sanity).
int run_oracle_case(std::uint64_t seed) {
  Rng rng(seed);
  TopologySpec spec = random_spec(rng);
  EXPECT_EQ(spec.validate(), "");
  const std::size_t path_count = spec.paths.size();
  Topology topo(std::move(spec));

  std::vector<std::shared_ptr<Channel>> channels;
  for (std::size_t p = 0; p < topo.path_count(); ++p) {
    channels.push_back(topo.path_channel(p));
  }
  // Per-link sum of flow service deltas (conservation ledger).
  std::vector<double> ledger_kbit(topo.link_count(), 0.0);
  std::vector<std::vector<std::size_t>> path_hops(topo.path_count());
  // Recover hop sets from the summaries (names are unique by construction).
  {
    const std::vector<PathSummary> summaries = topo.path_stats();
    for (std::size_t p = 0; p < summaries.size(); ++p) {
      for (const std::string& hop_name : summaries[p].hop_names) {
        for (std::size_t l = 0; l < topo.link_count(); ++l) {
          if (topo.link_name(l) == hop_name) path_hops[p].push_back(l);
        }
      }
    }
  }

  std::vector<OracleFlow> flows;
  double now = 0.0;
  int adds = 0;
  const int events = 30 + static_cast<int>(rng.uniform_int(0, 40));
  for (int e = 0; e < events; ++e) {
    now += rng.exponential(0.5);  // mean 2 s between population changes
    const bool add = flows.empty() || rng.bernoulli(0.55);
    if (add) {
      const auto p = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(path_count) - 1));
      OracleFlow flow;
      flow.path = p;
      flow.v_start_kbit = channels[p]->add_flow(now);
      flows.push_back(flow);
      ++adds;
    } else {
      const auto i = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(flows.size()) - 1));
      const OracleFlow flow = flows[i];
      channels[flow.path]->remove_flow(now);
      const double delta = topo.path_service_kbit(flow.path) - flow.v_start_kbit;
      EXPECT_GE(delta, 0.0);
      for (const std::size_t l : path_hops[flow.path]) ledger_kbit[l] += delta;
      flows[i] = flows.back();
      flows.pop_back();
    }
    // Min-share invariant at the event time: no path rate above any of its
    // hops' fair shares.
    for (std::size_t p = 0; p < topo.path_count(); ++p) {
      const double rate = topo.path_rate_at(p, now);
      for (const std::size_t l : path_hops[p]) {
        EXPECT_LE(rate, topo.link_fair_share_at(l, now) * (1.0 + 1e-12));
      }
    }
  }
  // Drain every remaining flow, then close the books with an idle tail.
  now += rng.exponential(0.5);
  for (const OracleFlow& flow : flows) {
    channels[flow.path]->remove_flow(now);
  }
  // Deltas must be read against the post-drain integrals (all removals
  // happened at `now`, so every path's V is already advanced there).
  for (const OracleFlow& flow : flows) {
    const double delta = topo.path_service_kbit(flow.path) - flow.v_start_kbit;
    EXPECT_GE(delta, 0.0);
    for (const std::size_t l : path_hops[flow.path]) ledger_kbit[l] += delta;
  }
  topo.finalize(now + 5.0);

  const std::vector<LinkStats> links = topo.link_stats();
  for (std::size_t l = 0; l < links.size(); ++l) {
    // residual_flows == 0 on every link after a clean drain.
    EXPECT_EQ(links[l].residual_flows, 0) << links[l].name;
    // Conservation: the link's delivered integral is partitioned exactly by
    // the flow service deltas of the paths through it.
    const double tolerance = 1e-6 * std::max(1.0, links[l].delivered_kbit);
    EXPECT_NEAR(ledger_kbit[l], links[l].delivered_kbit, tolerance) << links[l].name;
    // A busy link never delivers more than it offers.
    EXPECT_LE(links[l].delivered_kbit, links[l].offered_kbit * (1.0 + 1e-12));
  }
  // Integral form of the min-share bound: V_P(end) <= V_l(end) per hop.
  for (std::size_t p = 0; p < topo.path_count(); ++p) {
    EXPECT_EQ(topo.path_stats()[p].residual_flows, 0);
    for (const std::size_t l : path_hops[p]) {
      EXPECT_LE(topo.path_service_kbit(p),
                topo.link_service_kbit(l) * (1.0 + 1e-12) + 1e-9);
    }
  }
  return adds;
}

TEST(TopologyProperty, RandomTopologiesHoldInvariantsOver200Cases) {
  int total_adds = 0;
  for (std::uint64_t seed = 1; seed <= 220; ++seed) {
    SCOPED_TRACE(testing::Message() << "case seed " << seed);
    total_adds += run_oracle_case(seed);
    if (testing::Test::HasFatalFailure()) return;
  }
  // The generator actually exercised flows (not a vacuous pass).
  EXPECT_GT(total_adds, 220 * 10);
}

TEST(TopologyProperty, OneHopPathIsBitIdenticalToPlainLink) {
  // The degenerate arithmetic claim at the oracle level: a 1-link topology
  // and a bare Link driven through the same schedule agree to the last bit
  // on every service value, completion prediction and accounting integral.
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    SCOPED_TRACE(testing::Message() << "case seed " << seed);
    Rng rng(seed * 977);
    const BandwidthTrace trace = random_trace(rng);
    Link link(trace);
    Topology topo(TopologySpec::single(trace));
    const std::shared_ptr<Channel> path = topo.path_channel(0);

    double now = 0.0;
    int active = 0;
    for (int e = 0; e < 60; ++e) {
      now += rng.exponential(0.7);
      const bool add = active == 0 || rng.bernoulli(0.5);
      if (add) {
        const double link_v = link.add_flow(now);
        const double path_v = path->add_flow(now);
        EXPECT_EQ(link_v, path_v);
        ++active;
      } else {
        link.remove_flow(now);
        path->remove_flow(now);
        --active;
      }
      const double probe = now + rng.uniform(0.0, 30.0);
      EXPECT_EQ(link.service_at(probe), path->service_at(probe));
      const double target = link.service_at(now) + rng.uniform(1.0, 50000.0);
      EXPECT_EQ(link.time_when_service_reaches(target),
                path->time_when_service_reaches(target));
      EXPECT_EQ(link.active_flows(), path->active_flows());
      EXPECT_EQ(link.epoch(), path->epoch());
    }
    while (active-- > 0) {
      now += 0.25;
      link.remove_flow(now);
      path->remove_flow(now);
    }
    link.finalize(now + 3.0);
    topo.finalize(now + 3.0);
    const LinkStats stats = topo.link_stats()[0];
    EXPECT_EQ(link.busy_s(), stats.busy_s);
    EXPECT_EQ(link.flow_seconds(), stats.flow_seconds);
    EXPECT_EQ(link.offered_kbit(), stats.offered_kbit);
    EXPECT_EQ(link.delivered_kbit(), stats.delivered_kbit);
    EXPECT_EQ(link.peak_flows(), stats.peak_flows);
  }
}

// --- 3. Regression tests. ---

TEST(TopologyRegression, SharedLinkFinalizeOnNeverUsedLink) {
  // Idle-tail accounting: a link nobody ever rode still closes its books.
  SharedLink idle(BandwidthTrace::constant(1000.0), "idle");
  idle.finalize(120.0);
  const LinkStats stats = idle.stats();
  EXPECT_DOUBLE_EQ(stats.observed_s, 120.0);
  EXPECT_DOUBLE_EQ(stats.busy_s, 0.0);
  EXPECT_DOUBLE_EQ(stats.delivered_kbit, 0.0);
  EXPECT_DOUBLE_EQ(stats.offered_kbit, 120.0 * 1000.0);
  EXPECT_DOUBLE_EQ(stats.utilization(), 0.0);
  EXPECT_DOUBLE_EQ(stats.avg_flows(), 0.0);
  EXPECT_EQ(stats.residual_flows, 0);

  // 0/0 guard: a zero-capacity link offers nothing; utilization must come
  // back 0, not NaN.
  SharedLink dead(BandwidthTrace::constant(0.0), "dead");
  dead.finalize(60.0);
  const LinkStats dead_stats = dead.stats();
  EXPECT_DOUBLE_EQ(dead_stats.offered_kbit, 0.0);
  EXPECT_DOUBLE_EQ(dead_stats.utilization(), 0.0);
  EXPECT_FALSE(std::isnan(dead_stats.utilization()));
}

TEST(TopologyRegression, NeverUsedTopologyLinkFinalizesClean) {
  // A declared link that no path traverses (a provisioned-but-dark pipe)
  // must finalize with pure idle books and not disturb its neighbours.
  TopologySpec spec;
  const std::size_t used = spec.add_link("used", BandwidthTrace::constant(2000.0));
  spec.add_link("dark", BandwidthTrace::constant(0.0));
  spec.add_path("only", {used});
  Topology topo(std::move(spec));

  const std::shared_ptr<Channel> path = topo.path_channel(0);
  path->add_flow(1.0);
  path->remove_flow(11.0);
  topo.finalize(20.0);

  const std::vector<LinkStats> stats = topo.link_stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_DOUBLE_EQ(stats[0].busy_s, 10.0);
  EXPECT_DOUBLE_EQ(stats[1].observed_s, 20.0);
  EXPECT_DOUBLE_EQ(stats[1].busy_s, 0.0);
  EXPECT_DOUBLE_EQ(stats[1].utilization(), 0.0);
  EXPECT_FALSE(std::isnan(stats[1].utilization()));
  EXPECT_EQ(stats[1].peak_flows, 0);
  EXPECT_EQ(stats[1].residual_flows, 0);
}

TEST(TopologyRegression, CompletionRekeyedWhenBindingConstraintMoves) {
  // Path A rides edge(1000) → core(3000): binding starts at the edge. Five
  // flows then pile onto the core via path B, dropping the core's fair
  // share to 500 < 1000 — the binding constraint moves mid-flow, A's epoch
  // bumps, and the (lazily re-keyed) completion prediction shifts later.
  TopologySpec spec;
  const std::size_t core = spec.add_link("core", BandwidthTrace::constant(3000.0));
  const std::size_t edge = spec.add_link("edge", BandwidthTrace::constant(1000.0));
  const std::size_t path_a = spec.add_path("a", {edge, core});
  const std::size_t path_b = spec.add_path("b", {core});
  Topology topo(std::move(spec));

  const std::shared_ptr<Channel> a = topo.path_channel(path_a);
  const std::shared_ptr<Channel> b = topo.path_channel(path_b);

  const double v_start = a->add_flow(0.0);
  const double target = v_start + 10000.0;  // 10 Mbit at 1000 kbps -> t=10
  a->register_completion(0, target);
  EXPECT_DOUBLE_EQ(a->earliest_completion_time(), 10.0);

  EventHeap heap(/*session_count=*/1, /*link_count=*/2);
  heap.sync_link(0, *a);
  heap.sync_link(1, *b);
  const std::uint64_t checks_before = heap.stats().sync_checks;
  const std::uint64_t refreshes_before = heap.stats().sync_refreshes;

  // Re-sync without any population change: the epoch cache must swallow it.
  heap.sync_link(0, *a);
  EXPECT_EQ(heap.stats().sync_checks, checks_before + 1);
  EXPECT_EQ(heap.stats().sync_refreshes, refreshes_before);

  const std::uint64_t epoch_before = a->epoch();
  for (int i = 0; i < 5; ++i) b->add_flow(2.0);
  // A population change on a sibling path sharing the core bumps A's epoch…
  EXPECT_GT(a->epoch(), epoch_before);
  // …and the re-derived completion lands later: 2 Mbit done in the first
  // 2 s at 1000 kbps, the remaining 8 Mbit now trickles at core/6 = 500.
  EXPECT_DOUBLE_EQ(a->earliest_completion_time(), 2.0 + 8000.0 / 500.0);

  // The lazy sync notices exactly one stale entry and re-keys it.
  const std::uint64_t refreshes_mid = heap.stats().sync_refreshes;
  heap.sync_link(0, *a);
  heap.sync_link(1, *b);
  EXPECT_EQ(heap.stats().sync_refreshes, refreshes_mid + 2);  // both paths moved
  EXPECT_TRUE(heap.stats().sync_checks >= heap.stats().sync_refreshes);

  a->unregister_completion(0);
  a->remove_flow(4.0);
  for (int i = 0; i < 5; ++i) b->remove_flow(4.0);
  topo.finalize(5.0);
  for (const LinkStats& link : topo.link_stats()) {
    EXPECT_EQ(link.residual_flows, 0) << link.name;
  }
}

TEST(TopologyRegression, EventHeapSyncCountersReconcileOnTopologyFleet) {
  // Fleet-level: the sync counters surface through the profile and must
  // reconcile (every refresh was a check). On a topology fleet the engine
  // syncs only the dirty set — channels whose epochs moved since the last
  // phase — so every check refreshes: wasted checks would mean the dirty
  // list over-approximates the stale set.
  const ex::ExperimentSetup setup = ex::plain_dash(ex::varying_600_trace(), "sync");
  FleetConfig config = base_config(8, 17);
  config.arrivals = ArrivalProcess::kDeterministic;
  config.arrival_interval_s = 3.0;
  config.topology = TopologySpec::sharded(
      2, BandwidthTrace::constant(4000.0), BandwidthTrace::constant(1500.0),
      BandwidthTrace::constant(3600.0));
  config.engine = Engine::kEventHeap;
  const FleetResult result = run_fleet(
      setup.content, setup.view, BandwidthTrace::constant(1000.0), config);

  EXPECT_GT(result.profile.link_sync_checks, 0u);
  EXPECT_GT(result.profile.link_sync_refreshes, 0u);
  EXPECT_EQ(result.profile.link_sync_checks, result.profile.link_sync_refreshes);
}

TEST(TopologySpecValidate, RejectsMalformedSpecs) {
  TopologySpec empty;
  EXPECT_NE(empty.validate(), "");

  TopologySpec no_paths;
  no_paths.add_link("l", BandwidthTrace::constant(1.0));
  EXPECT_NE(no_paths.validate(), "");

  TopologySpec bad_hop;
  bad_hop.add_link("l", BandwidthTrace::constant(1.0));
  bad_hop.add_path("p", {3});
  EXPECT_NE(bad_hop.validate(), "");

  TopologySpec dup_hop;
  const std::size_t l = dup_hop.add_link("l", BandwidthTrace::constant(1.0));
  dup_hop.add_path("p", {l, l});
  EXPECT_NE(dup_hop.validate(), "");

  TopologySpec bad_assignment = TopologySpec::single(BandwidthTrace::constant(1.0));
  bad_assignment.video_assignment = {4};
  EXPECT_NE(bad_assignment.validate(), "");

  EXPECT_EQ(TopologySpec::single(BandwidthTrace::constant(1.0)).validate(), "");
  EXPECT_EQ(TopologySpec::sharded(3, BandwidthTrace::constant(1.0),
                                  BandwidthTrace::constant(1.0),
                                  BandwidthTrace::constant(1.0))
                .validate(),
            "");
  const std::vector<std::size_t> blocks = TopologySpec::block_assignment(3, 2);
  EXPECT_EQ(blocks, (std::vector<std::size_t>{0, 0, 1, 1, 2, 2}));
}

}  // namespace
}  // namespace demuxabr::fleet
