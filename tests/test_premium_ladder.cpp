// Generality checks on a ladder wider than Table 1: 4K video rungs and a
// 16-channel object-audio track. Device caps, curation, the ExoPlayer
// predetermination algorithm and full sessions must all hold.
#include <gtest/gtest.h>

#include "core/compliance.h"
#include "core/coordinated_player.h"
#include "manifest/builder.h"
#include "media/content.h"
#include "players/exo_combinations.h"
#include "players/exoplayer.h"
#include "sim/session.h"

namespace demuxabr {
namespace {

Content sports_content() {
  return ContentBuilder(premium_sports_ladder())
      .duration_s(120.0)
      .chunk_duration_s(4.0)
      .build();
}

TEST(PremiumLadder, IsValid) {
  std::string why;
  EXPECT_TRUE(premium_sports_ladder().valid(&why)) << why;
  EXPECT_EQ(premium_sports_ladder().video_count(), 7u);
  EXPECT_EQ(premium_sports_ladder().find("V7")->height, 2160);
  EXPECT_EQ(premium_sports_ladder().find("A3")->channels, 16);
}

TEST(PremiumLadder, DeviceCapsFilterTopRungs) {
  CurationPolicy phone;  // defaults: phone screen, stereo sound
  phone.genre = ContentGenre::kSports;
  const auto phone_combos = curate_combinations(premium_sports_ladder(), phone);
  for (const AvCombination& combo : phone_combos) {
    // Phone: nothing above 720p; stereo: no 16-channel Atmos track.
    EXPECT_LE(premium_sports_ladder().find(combo.video_id)->height, 720);
    EXPECT_NE(combo.audio_id, "A3");
  }

  CurationPolicy tv;
  tv.genre = ContentGenre::kSports;
  tv.device.screen = DeviceProfile::Screen::kTv;
  tv.device.sound = DeviceProfile::Sound::kSurround;
  const auto tv_combos = curate_combinations(premium_sports_ladder(), tv);
  EXPECT_EQ(tv_combos.back().video_id, "V7");
  EXPECT_EQ(tv_combos.back().audio_id, "A3");
}

TEST(PremiumLadder, ExoPredeterminationScales) {
  const auto combos = exo_predetermined_combinations(premium_sports_ladder());
  EXPECT_EQ(combos.size(), 7u + 3u - 1u);
  for (std::size_t i = 1; i < combos.size(); ++i) {
    EXPECT_GT(combos[i].declared_kbps, combos[i - 1].declared_kbps);
  }
  EXPECT_EQ(combos.front().label(), "V1+A1");
  EXPECT_EQ(combos.back().label(), "V7+A3");
}

TEST(PremiumLadder, ContentGenerationHonorsBitrates) {
  const Content content = sports_content();
  for (const TrackInfo& track : content.ladder().video()) {
    const ChunkStats stats = content.track_stats(track.id);
    EXPECT_NEAR(stats.avg_kbps, track.avg_kbps, track.avg_kbps * 0.01) << track.id;
    EXPECT_NEAR(stats.peak_kbps, track.peak_kbps, track.peak_kbps * 0.01) << track.id;
  }
}

TEST(PremiumLadder, CoordinatedSessionAt25Mbps) {
  const Content content = sports_content();
  CurationPolicy policy;
  policy.genre = ContentGenre::kSports;
  policy.device.screen = DeviceProfile::Screen::kTv;
  policy.device.sound = DeviceProfile::Sound::kSurround;
  DashBuildOptions options;
  options.allowed_combinations = curate_staircase(content.ladder(), policy);
  const auto mpd = parse_mpd(serialize_mpd(build_dash_mpd(content, options)));
  ASSERT_TRUE(mpd.ok());
  CoordinatedPlayer player;
  const Network network = Network::shared(BandwidthTrace::constant(25000.0));
  const SessionLog log = run_session(content, view_from_mpd(*mpd), network, player);
  EXPECT_TRUE(log.completed);
  EXPECT_EQ(log.stall_count(), 0u);
  // Reaches the 4K rung.
  EXPECT_EQ(log.video_selection.back(), "V7");
}

TEST(PremiumLadder, ExoPlayerSessionAt5Mbps) {
  const Content content = sports_content();
  const auto mpd = parse_mpd(serialize_mpd(build_dash_mpd(content)));
  ASSERT_TRUE(mpd.ok());
  ExoPlayerModel player;
  const Network network = Network::shared(BandwidthTrace::constant(5000.0));
  const SessionLog log = run_session(content, view_from_mpd(*mpd), network, player);
  EXPECT_TRUE(log.completed);
  // 0.75 * 5000 = 3750 -> the V4-class combos; never the 4K rungs.
  for (const std::string& id : log.video_selection) {
    EXPECT_NE(id, "V7");
    EXPECT_NE(id, "V6");
  }
}

TEST(PremiumLadder, AchievedThroughputSeriesIsBounded) {
  const Content content = sports_content();
  const auto mpd = parse_mpd(serialize_mpd(build_dash_mpd(content)));
  CoordinatedPlayer player;
  const Network network = Network::shared(BandwidthTrace::constant(8000.0));
  const SessionLog log = run_session(content, view_from_mpd(*mpd), network, player);
  ASSERT_FALSE(log.achieved_throughput_kbps.empty());
  for (const auto& point : log.achieved_throughput_kbps.points()) {
    EXPECT_GE(point.value, 0.0);
    EXPECT_LE(point.value, 8000.0 * 1.01) << point.t;
  }
  // Delivered bytes match the series integral.
  double integral_bits = 0.0;
  const auto& points = log.achieved_throughput_kbps.points();
  for (std::size_t i = 1; i < points.size(); ++i) {
    integral_bits += points[i].value * 1000.0 * (points[i].t - points[i - 1].t);
  }
  const double downloaded_bits =
      static_cast<double>(log.total_downloaded_bytes() + log.wasted_bytes()) * 8.0;
  EXPECT_NEAR(integral_bits, downloaded_bits, downloaded_bits * 0.02);
}

}  // namespace
}  // namespace demuxabr
