// Seek support: buffer flush, aligned restart of both media types, stall
// accounting, and interaction with each player model.
#include <gtest/gtest.h>

#include "core/coordinated_player.h"
#include "core/muxed_player.h"
#include "experiments/scenarios.h"
#include "players/dashjs.h"
#include "players/exoplayer.h"

namespace demuxabr {
namespace {

namespace ex = demuxabr::experiments;

SessionLog run_with_seeks(PlayerAdapter& player, std::vector<SeekEvent> seeks,
                          double kbps = 1200.0) {
  auto setup = ex::bestpractice_dash(BandwidthTrace::constant(kbps), "seek");
  setup.session.seeks = std::move(seeks);
  return ex::run(setup, player);
}

TEST(Seek, ForwardSeekJumpsPlayheadAndCompletes) {
  CoordinatedPlayer player;
  const SessionLog log = run_with_seeks(player, {{30.0, 200.0}});
  ASSERT_TRUE(log.completed);
  ASSERT_EQ(log.seeks.size(), 1u);
  EXPECT_NEAR(log.seeks[0].at_t, 30.0, 0.01);
  EXPECT_DOUBLE_EQ(log.seeks[0].to_position_s, 200.0);  // chunk-aligned
  // The session ends much earlier than 300 s of playback would take: the
  // seek skipped ~170 s of content.
  EXPECT_LT(log.end_time_s, 180.0);
}

TEST(Seek, TargetSnapsToChunkBoundary) {
  CoordinatedPlayer player;
  const SessionLog log = run_with_seeks(player, {{30.0, 201.7}});
  ASSERT_EQ(log.seeks.size(), 1u);
  EXPECT_DOUBLE_EQ(log.seeks[0].to_position_s, 200.0);  // floor to 4 s grid
}

TEST(Seek, BackwardSeekRedownloadsChunks) {
  CoordinatedPlayer player;
  const SessionLog log = run_with_seeks(player, {{60.0, 8.0}});
  ASSERT_TRUE(log.completed);
  // Chunks at and after position 8 s (index 2) were downloaded twice.
  int downloads_of_chunk2_video = 0;
  for (const DownloadRecord& d : log.downloads) {
    if (d.type == MediaType::kVideo && d.chunk_index == 2) ++downloads_of_chunk2_video;
  }
  EXPECT_EQ(downloads_of_chunk2_video, 2);
}

TEST(Seek, CancelsInFlightDownloads) {
  // Very slow link: a download is guaranteed to be in flight at seek time.
  CoordinatedPlayer player;
  const SessionLog log = run_with_seeks(player, {{10.0, 100.0}}, /*kbps=*/300.0);
  EXPECT_GE(log.abandoned.size(), 1u);
  EXPECT_GT(log.wasted_bytes(), 0);
}

TEST(Seek, RebufferCountsAsStallWhilePlaying) {
  CoordinatedPlayer player;
  const SessionLog log = run_with_seeks(player, {{30.0, 200.0}});
  // The seek interrupted active playback -> at least one stall beginning at
  // the seek instant.
  bool found = false;
  for (const StallEvent& stall : log.stalls) {
    if (std::abs(stall.start_t - 30.0) < 0.01) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Seek, BothMediaTypesRestartAligned) {
  CoordinatedPlayer player;
  const SessionLog log = run_with_seeks(player, {{30.0, 200.0}});
  // First post-seek downloads are chunk 50 for BOTH types.
  int first_audio = -1;
  int first_video = -1;
  for (const DownloadRecord& d : log.downloads) {
    if (d.start_t < 30.0) continue;
    if (d.type == MediaType::kAudio && first_audio < 0) first_audio = d.chunk_index;
    if (d.type == MediaType::kVideo && first_video < 0) first_video = d.chunk_index;
  }
  EXPECT_EQ(first_audio, 50);
  EXPECT_EQ(first_video, 50);
}

TEST(Seek, MultipleSeeksInOneSession) {
  CoordinatedPlayer player;
  const SessionLog log =
      run_with_seeks(player, {{20.0, 120.0}, {40.0, 240.0}, {60.0, 280.0}});
  ASSERT_TRUE(log.completed);
  EXPECT_EQ(log.seeks.size(), 3u);
  EXPECT_LT(log.end_time_s, 120.0);
}

TEST(Seek, WorksWithEveryPlayerModel) {
  for (int which = 0; which < 3; ++which) {
    SessionLog log;
    if (which == 0) {
      ExoPlayerModel player;
      auto setup = ex::plain_dash(BandwidthTrace::constant(1200.0), "seek");
      setup.session.seeks = {{30.0, 200.0}};
      log = ex::run(setup, player);
    } else if (which == 1) {
      DashJsPlayerModel player;
      auto setup = ex::plain_dash(BandwidthTrace::constant(1200.0), "seek");
      setup.session.seeks = {{30.0, 200.0}};
      log = ex::run(setup, player);
    } else {
      MuxedPlayer player;
      auto setup = ex::plain_dash(BandwidthTrace::constant(1200.0), "seek");
      setup.session.seeks = {{30.0, 200.0}};
      log = ex::run(setup, player);
    }
    EXPECT_TRUE(log.completed) << which;
    EXPECT_EQ(log.seeks.size(), 1u) << which;
  }
}

TEST(Seek, SeekToNearEndFinishesQuickly) {
  CoordinatedPlayer player;
  const SessionLog log = run_with_seeks(player, {{10.0, 296.0}});
  ASSERT_TRUE(log.completed);
  EXPECT_LT(log.end_time_s, 30.0);
}

}  // namespace
}  // namespace demuxabr
