#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace demuxabr {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-3.0, 5.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all four values hit
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(17);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double z = rng.normal();
    sum += z;
    sum_sq += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, LognormalIsPositive) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(0.0, 0.5), 0.0);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(29);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng(31);
  std::vector<double> weights{1.0, 3.0};
  int ones = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.weighted_index(weights) == 1) ++ones;
  }
  EXPECT_NEAR(ones / 10000.0, 0.75, 0.02);
}

TEST(Rng, WeightedIndexIgnoresNegativeWeights) {
  Rng rng(37);
  std::vector<double> weights{-5.0, 1.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.weighted_index(weights), 1u);
}

TEST(Zipf, PmfSumsToOne) {
  ZipfDistribution zipf(10, 1.0);
  double total = 0.0;
  for (std::size_t k = 0; k < zipf.size(); ++k) total += zipf.pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Zipf, RankZeroMostPopular) {
  ZipfDistribution zipf(10, 1.0);
  for (std::size_t k = 1; k < zipf.size(); ++k) EXPECT_GT(zipf.pmf(0), zipf.pmf(k));
}

TEST(Zipf, UniformWhenExponentZero) {
  ZipfDistribution zipf(4, 0.0);
  for (std::size_t k = 0; k < 4; ++k) EXPECT_NEAR(zipf.pmf(k), 0.25, 1e-12);
}

TEST(Zipf, SampleFrequenciesFollowPmf) {
  ZipfDistribution zipf(5, 0.8);
  Rng rng(41);
  std::vector<int> counts(5, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[zipf.sample(rng)];
  for (std::size_t k = 0; k < 5; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, zipf.pmf(k), 0.01);
  }
}

class ZipfSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ZipfSizeSweep, SamplesAlwaysInRange) {
  ZipfDistribution zipf(GetParam(), 1.2);
  Rng rng(43);
  for (int i = 0; i < 2000; ++i) EXPECT_LT(zipf.sample(rng), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Sizes, ZipfSizeSweep, ::testing::Values(1u, 2u, 7u, 100u));

}  // namespace
}  // namespace demuxabr
