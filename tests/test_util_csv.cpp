#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace demuxabr {
namespace {

TEST(CsvWriter, HeaderAndRows) {
  CsvWriter writer({"t", "kbps"});
  writer.cell(0.0).cell(500.0).end_row();
  writer.cell(std::int64_t{1}).cell("800").end_row();
  const std::string text = writer.to_string();
  EXPECT_EQ(text, "t,kbps\n0,500\n1,800\n");
  EXPECT_EQ(writer.row_count(), 2u);
}

TEST(CsvWriter, QuotesCellsWithCommasAndQuotes) {
  CsvWriter writer({"a"});
  writer.cell("x,y").end_row();
  writer.cell("say \"hi\"").end_row();
  EXPECT_EQ(writer.to_string(), "a\n\"x,y\"\n\"say \"\"hi\"\"\"\n");
}

TEST(CsvWriter, TrimsTrailingZerosOnDoubles) {
  CsvWriter writer({"v"});
  writer.cell(1.5).end_row();
  writer.cell(2.0).end_row();
  EXPECT_EQ(writer.to_string(), "v\n1.5\n2\n");
}

TEST(ParseCsv, RoundTripsWriterOutput) {
  CsvWriter writer({"name", "value"});
  writer.cell("plain").cell(1.0).end_row();
  writer.cell("with,comma").cell(2.0).end_row();
  writer.cell("with \"quote\"").cell(3.0).end_row();
  const auto doc = parse_csv(writer.to_string());
  ASSERT_TRUE(doc.ok()) << doc.error();
  ASSERT_EQ(doc->rows.size(), 3u);
  EXPECT_EQ(doc->rows[1][0], "with,comma");
  EXPECT_EQ(doc->rows[2][0], "with \"quote\"");
}

TEST(ParseCsv, HandlesCrLf) {
  const auto doc = parse_csv("a,b\r\n1,2\r\n");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 1u);
  EXPECT_EQ(doc->rows[0][1], "2");
}

TEST(ParseCsv, RejectsRaggedRows) {
  const auto doc = parse_csv("a,b\n1,2,3\n");
  EXPECT_FALSE(doc.ok());
}

TEST(ParseCsv, RejectsUnterminatedQuote) {
  const auto doc = parse_csv("a\n\"oops\n");
  EXPECT_FALSE(doc.ok());
}

TEST(ParseCsv, RejectsEmptyInput) {
  EXPECT_FALSE(parse_csv("").ok());
}

TEST(ParseCsv, MissingTrailingNewlineStillParses) {
  const auto doc = parse_csv("a,b\n1,2");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 1u);
}

TEST(FileIo, WriteThenReadBack) {
  const std::string path = ::testing::TempDir() + "/demuxabr_csv_test.txt";
  ASSERT_TRUE(write_file(path, "hello\nworld\n").ok());
  const auto content = read_file(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "hello\nworld\n");
  std::remove(path.c_str());
}

TEST(FileIo, ReadMissingFileFails) {
  const auto content = read_file("/nonexistent/definitely/missing.csv");
  EXPECT_FALSE(content.ok());
  EXPECT_NE(content.error().find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace demuxabr
