// EngineProfile serialization: BENCH_fleet.json embeds to_json() verbatim as
// `engine_profile.data`, and external tooling greps those keys — so the
// schema is pinned here. Adding a key is fine (extend the list); renaming or
// dropping one is a breaking change to the bench report.
#include "obs/profile.h"

#include <gtest/gtest.h>

#include <string>

namespace demuxabr::obs {
namespace {

EngineProfile sample_profile() {
  EngineProfile profile;
  profile.enabled = true;
  profile.drain = {1.5, 300};
  profile.register_phase = {0.25, 300};
  profile.admit = {0.125, 301};
  profile.heap_pops = 1000;
  profile.link_sync_checks = 400;
  profile.link_sync_refreshes = 100;
  return profile;
}

TEST(EngineProfileJson, SchemaKeysAreStable) {
  const std::string json = sample_profile().to_json();
  for (const char* key :
       {"\"enabled\"", "\"drain\"", "\"register\"", "\"admit\"", "\"wall_s\"",
        "\"calls\"", "\"heap_pops\"", "\"link_sync_checks\"",
        "\"link_sync_refreshes\"", "\"epoch_lazy_hit_rate\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing key " << key;
  }
}

TEST(EngineProfileJson, ValuesRoundTrip) {
  const std::string json = sample_profile().to_json();
  EXPECT_NE(json.find("\"enabled\":true"), std::string::npos);
  EXPECT_NE(json.find("\"heap_pops\":1000"), std::string::npos);
  EXPECT_NE(json.find("\"drain\":{\"wall_s\":1.500000,\"calls\":300}"),
            std::string::npos);
  // 1 - 100/400
  EXPECT_NE(json.find("\"epoch_lazy_hit_rate\":0.7500"), std::string::npos);
}

TEST(EngineProfile, DerivedQuantities) {
  const EngineProfile profile = sample_profile();
  EXPECT_DOUBLE_EQ(profile.total_wall_s(), 1.875);
  EXPECT_DOUBLE_EQ(profile.epoch_lazy_hit_rate(), 0.75);
  // Empty profile: no division by zero.
  EXPECT_DOUBLE_EQ(EngineProfile{}.epoch_lazy_hit_rate(), 0.0);
}

}  // namespace
}  // namespace demuxabr::obs
