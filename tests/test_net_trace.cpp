#include "net/bandwidth_trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "net/trace_corpus.h"

namespace demuxabr {
namespace {

TEST(ConstantTrace, RateEverywhere) {
  const auto trace = BandwidthTrace::constant(900.0);
  EXPECT_DOUBLE_EQ(trace.rate_kbps(0.0), 900.0);
  EXPECT_DOUBLE_EQ(trace.rate_kbps(1e6), 900.0);
  EXPECT_TRUE(std::isinf(trace.next_change_after(0.0)));
  EXPECT_DOUBLE_EQ(trace.average_kbps(0.0, 100.0), 900.0);
}

TEST(SquareWave, PhasesAndPeriodicity) {
  const auto trace = BandwidthTrace::square_wave(300.0, 900.0, 30.0, 30.0);
  EXPECT_DOUBLE_EQ(trace.rate_kbps(0.0), 300.0);
  EXPECT_DOUBLE_EQ(trace.rate_kbps(29.999), 300.0);
  EXPECT_DOUBLE_EQ(trace.rate_kbps(30.0), 900.0);
  EXPECT_DOUBLE_EQ(trace.rate_kbps(60.0), 300.0);   // wraps
  EXPECT_DOUBLE_EQ(trace.rate_kbps(125.0), 300.0);  // 125 mod 60 = 5 -> low phase
  EXPECT_DOUBLE_EQ(trace.rate_kbps(95.0), 900.0);   // 95 mod 60 = 35 -> high phase
}

TEST(SquareWave, StartHigh) {
  const auto trace = BandwidthTrace::square_wave(300.0, 900.0, 30.0, 30.0, true);
  EXPECT_DOUBLE_EQ(trace.rate_kbps(0.0), 900.0);
  EXPECT_DOUBLE_EQ(trace.rate_kbps(30.0), 300.0);
}

TEST(SquareWave, AverageMatchesDutyCycle) {
  const auto trace = BandwidthTrace::square_wave(300.0, 900.0, 30.0, 30.0);
  EXPECT_NEAR(trace.average_kbps(0.0, 60.0), 600.0, 1e-9);
  EXPECT_NEAR(trace.average_kbps(0.0, 600.0), 600.0, 1e-9);
  const auto uneven = BandwidthTrace::square_wave(350.0, 1200.0, 42.0, 18.0);
  EXPECT_NEAR(uneven.average_kbps(0.0, 60.0), (350.0 * 42 + 1200.0 * 18) / 60.0, 1e-9);
}

TEST(SquareWave, NextChangeAfterWrapsAcrossPeriods) {
  const auto trace = BandwidthTrace::square_wave(300.0, 900.0, 30.0, 30.0);
  EXPECT_DOUBLE_EQ(trace.next_change_after(0.0), 30.0);
  EXPECT_DOUBLE_EQ(trace.next_change_after(30.0), 60.0);
  EXPECT_DOUBLE_EQ(trace.next_change_after(59.0), 60.0);
  EXPECT_DOUBLE_EQ(trace.next_change_after(60.0), 90.0);
  EXPECT_DOUBLE_EQ(trace.next_change_after(100.0), 120.0);
}

TEST(SquareWave, NextChangeAfterIsStrictlyIncreasingOnAwkwardPeriods) {
  // Regression: with a period whose multiples round awkwardly, a boundary-
  // to-boundary walk used to stall — floor(t/period)*period could land a
  // full period below t at an exact FP wrap multiple, so next_change_after
  // returned t itself and every lazy-integration loop silently truncated
  // there. Walk several thousand boundaries and require strict progress.
  const auto trace = BandwidthTrace::square_wave(
      676.7267339026979, 1025.0480340390654, 4.1034567891234567,
      5.3036690469870599);
  double at = 0.0;
  for (int i = 0; i < 5000; ++i) {
    const double next = trace.next_change_after(at);
    ASSERT_GT(next, at) << "stalled at boundary " << i;
    at = next;
  }
  // And the walk covered real time (~period/2 per boundary).
  EXPECT_GT(at, 5000.0);
}

TEST(Steps, NonRepeatingHoldsLastRate) {
  const auto trace =
      BandwidthTrace::steps({{10.0, 500.0}, {10.0, 1000.0}}, /*repeat=*/false);
  EXPECT_DOUBLE_EQ(trace.rate_kbps(5.0), 500.0);
  EXPECT_DOUBLE_EQ(trace.rate_kbps(15.0), 1000.0);
  EXPECT_DOUBLE_EQ(trace.rate_kbps(1000.0), 1000.0);
  EXPECT_DOUBLE_EQ(trace.next_change_after(5.0), 10.0);
  EXPECT_TRUE(std::isinf(trace.next_change_after(10.0)));
}

TEST(Steps, RepeatingWraps) {
  const auto trace =
      BandwidthTrace::steps({{10.0, 500.0}, {10.0, 1000.0}}, /*repeat=*/true);
  EXPECT_DOUBLE_EQ(trace.rate_kbps(25.0), 500.0);
  EXPECT_DOUBLE_EQ(trace.period_s(), 20.0);
}

TEST(RandomWalk, StaysWithinBounds) {
  const auto trace = BandwidthTrace::random_walk(300.0, 1500.0, 2.0, 300.0, 200.0, 7);
  for (double t = 0.0; t < 600.0; t += 1.7) {
    const double rate = trace.rate_kbps(t);
    EXPECT_GE(rate, 300.0);
    EXPECT_LE(rate, 1500.0);
  }
}

TEST(RandomWalk, DeterministicPerSeed) {
  const auto a = BandwidthTrace::random_walk(300.0, 1500.0, 2.0, 100.0, 200.0, 7);
  const auto b = BandwidthTrace::random_walk(300.0, 1500.0, 2.0, 100.0, 200.0, 7);
  const auto c = BandwidthTrace::random_walk(300.0, 1500.0, 2.0, 100.0, 200.0, 8);
  EXPECT_DOUBLE_EQ(a.rate_kbps(50.0), b.rate_kbps(50.0));
  bool any_different = false;
  for (double t = 0.0; t < 100.0; t += 2.0) {
    if (a.rate_kbps(t) != c.rate_kbps(t)) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(TraceCsv, RoundTrip) {
  const auto original = BandwidthTrace::steps({{10.0, 500.0}, {20.0, 800.0}}, false);
  const auto reloaded = BandwidthTrace::from_csv(original.to_csv());
  ASSERT_TRUE(reloaded.ok()) << reloaded.error();
  EXPECT_DOUBLE_EQ(reloaded->rate_kbps(5.0), 500.0);
  EXPECT_DOUBLE_EQ(reloaded->rate_kbps(15.0), 800.0);
}

TEST(TraceCsv, RejectsBadInput) {
  EXPECT_FALSE(BandwidthTrace::from_csv("").ok());
  EXPECT_FALSE(BandwidthTrace::from_csv("t,kbps\n1,500\n").ok());      // not at 0
  EXPECT_FALSE(BandwidthTrace::from_csv("t,kbps\n0,500\n0,600\n").ok());  // dup time
  EXPECT_FALSE(BandwidthTrace::from_csv("t,kbps\n0,-5\n").ok());       // negative
  EXPECT_FALSE(BandwidthTrace::from_csv("t,kbps\n0,abc\n").ok());      // non-numeric
}

TEST(Trace, NegativeTimeClampsToZero) {
  const auto trace = BandwidthTrace::square_wave(300.0, 900.0, 30.0, 30.0);
  EXPECT_DOUBLE_EQ(trace.rate_kbps(-5.0), 300.0);
}

TEST(Markov, RatesStayWithinJitteredStateBand) {
  const std::vector<BandwidthTrace::MarkovState> states = {{500.0, 5.0}, {2000.0, 5.0}};
  const std::vector<std::vector<double>> transitions = {{0.5, 0.5}, {0.5, 0.5}};
  const auto trace = BandwidthTrace::markov(states, transitions, 300.0, 0.1, 3);
  for (const auto& segment : trace.segments()) {
    EXPECT_GT(segment.kbps, 0.0);
    EXPECT_LT(segment.kbps, 2000.0 * 4.1);  // jitter clamp upper bound
  }
  EXPECT_DOUBLE_EQ(trace.period_s(), 300.0);
}

TEST(Markov, DeterministicPerSeed) {
  const auto a = BandwidthTrace::cellular(300.0, 5);
  const auto b = BandwidthTrace::cellular(300.0, 5);
  const auto c = BandwidthTrace::cellular(300.0, 6);
  ASSERT_EQ(a.segments().size(), b.segments().size());
  for (std::size_t i = 0; i < a.segments().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.segments()[i].kbps, b.segments()[i].kbps);
  }
  bool differs = a.segments().size() != c.segments().size();
  for (std::size_t i = 0; !differs && i < a.segments().size(); ++i) {
    differs = a.segments()[i].kbps != c.segments()[i].kbps;
  }
  EXPECT_TRUE(differs);
}

TEST(Markov, CellularAverageIsPlausible) {
  for (std::uint64_t seed : {1u, 7u, 21u}) {
    const auto trace = BandwidthTrace::cellular(600.0, seed);
    const double avg = trace.average_kbps(0.0, 600.0);
    EXPECT_GT(avg, 300.0) << seed;
    EXPECT_LT(avg, 9000.0) << seed;
  }
}

TEST(Markov, StatesChangeOverTime) {
  const auto trace = BandwidthTrace::cellular(300.0, 9);
  EXPECT_GT(trace.segments().size(), 10u);
  double min_rate = 1e18;
  double max_rate = 0.0;
  for (const auto& segment : trace.segments()) {
    min_rate = std::min(min_rate, segment.kbps);
    max_rate = std::max(max_rate, segment.kbps);
  }
  EXPECT_GT(max_rate / min_rate, 3.0);  // genuinely multi-state
}

class AverageWindowSweep : public ::testing::TestWithParam<double> {};

TEST_P(AverageWindowSweep, WholePeriodAverageIsInvariant) {
  const auto trace = BandwidthTrace::square_wave(300.0, 900.0, 8.0, 8.0);
  const double t0 = GetParam();
  EXPECT_NEAR(trace.average_kbps(t0, t0 + 16.0), 600.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Offsets, AverageWindowSweep,
                         ::testing::Values(0.0, 3.0, 8.0, 12.5, 100.0));

// --- Periodic-wrap regressions for the corpus generators
// --- (net/trace_corpus.h). The corpus samples *irrational-looking*
// --- boundary times (exponential/uniform dwells), so its traces probe the
// --- renormalized-reduction slack far harder than the hand-built shapes
// --- above; these walks pin the PR-5 invariants on that input family.

TEST(CorpusWrap, NextChangeAfterIsStrictlyIncreasingOnSampledBoundaries) {
  for (const TraceClass& tc : trace_class_registry()) {
    // 247.3: an awkward non-integer period, like the original regression.
    const BandwidthTrace trace = tc.generate(247.3, 13);
    double t = 0.0;
    for (int i = 0; i < 5000; ++i) {
      const double next = trace.next_change_after(t);
      ASSERT_GT(next, t) << tc.name << " stalled at t=" << t;
      t = next;
    }
    EXPECT_GT(t, 3.0 * 247.3) << tc.name;  // genuine multi-period progress
  }
}

TEST(CorpusWrap, RateAtExactWrapMultiplesReturnsFirstSegment) {
  for (const TraceClass& tc : trace_class_registry()) {
    const BandwidthTrace trace = tc.generate(301.7, 4);
    const double first = trace.segments().front().kbps;
    for (const double k : {1.0, 2.0, 5.0, 113.0}) {
      EXPECT_EQ(trace.rate_kbps(k * trace.period_s()), first)
          << tc.name << " k=" << k;
    }
  }
}

TEST(CorpusWrap, WholePeriodAverageIsOffsetInvariant) {
  for (const TraceClass& tc : trace_class_registry()) {
    const BandwidthTrace trace = tc.generate(240.0, 6);
    const double period = trace.period_s();
    const double base = trace.average_kbps(0.0, period);
    for (const double t0 : {17.3, 120.0, 239.9, 1000.25}) {
      EXPECT_NEAR(trace.average_kbps(t0, t0 + period), base, 1e-6 * base)
          << tc.name << " t0=" << t0;
    }
  }
}

}  // namespace
}  // namespace demuxabr
