// Muxed-mode streaming (Fig 1 baseline): engine muxed-request mechanics and
// the MuxedPlayer's QoE characteristics vs. the demuxed coordinated player.
#include <gtest/gtest.h>

#include <cmath>

#include "core/coordinated_player.h"
#include "core/muxed_player.h"
#include "experiments/scenarios.h"
#include "manifest/builder.h"
#include "sim/session.h"

namespace demuxabr {
namespace {

namespace ex = demuxabr::experiments;

SessionLog run_muxed(const BandwidthTrace& trace) {
  const Content content = make_drama_content();
  const ManifestView view = view_from_mpd(build_dash_mpd(content));
  MuxedPlayer player;
  const Network network = Network::shared(trace);
  return run_session(content, view, network, player);
}

TEST(MuxedPlayer, CompletesAndFillsBothSelections) {
  const SessionLog log = run_muxed(BandwidthTrace::constant(900.0));
  ASSERT_TRUE(log.completed);
  EXPECT_EQ(log.player_name, "muxed");
  for (std::size_t i = 0; i < log.video_selection.size(); ++i) {
    EXPECT_FALSE(log.video_selection[i].empty()) << i;
    EXPECT_FALSE(log.audio_selection[i].empty()) << i;
  }
}

TEST(MuxedPlayer, EveryChunkRecordedForBothTypes) {
  const SessionLog log = run_muxed(BandwidthTrace::constant(900.0));
  int audio = 0;
  int video = 0;
  for (const DownloadRecord& d : log.downloads) {
    (d.type == MediaType::kAudio ? audio : video) += 1;
  }
  EXPECT_EQ(audio, log.total_chunks);
  EXPECT_EQ(video, log.total_chunks);
  // Component records of one muxed fetch share the same interval.
  for (std::size_t i = 0; i + 1 < log.downloads.size(); i += 2) {
    EXPECT_DOUBLE_EQ(log.downloads[i].start_t, log.downloads[i + 1].start_t);
    EXPECT_DOUBLE_EQ(log.downloads[i].end_t, log.downloads[i + 1].end_t);
    EXPECT_EQ(log.downloads[i].chunk_index, log.downloads[i + 1].chunk_index);
  }
}

TEST(MuxedPlayer, BuffersNeverDiverge) {
  const SessionLog log = run_muxed(ex::varying_600_trace());
  ASSERT_TRUE(log.completed);
  for (const auto& point : log.video_buffer_s.points()) {
    const double audio = log.audio_buffer_s.value_at(point.t);
    EXPECT_NEAR(point.value, audio, 1e-6) << "t=" << point.t;
  }
}

TEST(MuxedPlayer, SelectionsAreAlwaysValidPairs) {
  const SessionLog log = run_muxed(BandwidthTrace::constant(700.0));
  const Content content = make_drama_content();
  // Muxed fetches are pairs by construction: chunk k's audio and video were
  // requested together.
  for (std::size_t i = 0; i < log.video_selection.size(); ++i) {
    EXPECT_NE(content.ladder().find(log.video_selection[i]), nullptr);
    EXPECT_NE(content.ladder().find(log.audio_selection[i]), nullptr);
  }
}

TEST(MuxedPlayer, RecreatesAllVariantsFromDash) {
  const Content content = make_drama_content();
  MuxedPlayer player;
  player.start(view_from_mpd(build_dash_mpd(content)));
  EXPECT_EQ(player.variants().size(), 18u);  // the M x N muxed catalog
}

TEST(MuxedPlayer, UsesManifestVariantsWhenListed) {
  const Content content = make_drama_content();
  MuxedPlayer player;
  player.start(view_from_hls(build_hsub_master(content), nullptr));
  EXPECT_EQ(player.variants().size(), 6u);
}

TEST(MuxedPlayer, NoStallsOnSteadyLink) {
  const SessionLog log = run_muxed(BandwidthTrace::constant(900.0));
  EXPECT_EQ(log.stall_count(), 0u);
  const QoeReport qoe = compute_qoe(log, make_drama_content().ladder());
  EXPECT_GT(qoe.avg_video_kbps, 150.0);
}

TEST(MuxedPlayer, ComparableQoeToDemuxedCoordinated) {
  // Same ABR core, same trace: muxed and demuxed-coordinated should land in
  // the same QoE region (the paper's point is that demuxed mode saves
  // storage/caching *without* a client QoE penalty when handled right).
  const BandwidthTrace trace = BandwidthTrace::constant(900.0);
  const SessionLog muxed_log = run_muxed(trace);
  const QoeReport muxed_qoe = compute_qoe(muxed_log, make_drama_content().ladder());

  auto setup = ex::bestpractice_dash(trace, "cmp");
  CoordinatedPlayer coordinated;
  const SessionLog demuxed_log = ex::run(setup, coordinated);
  const QoeReport demuxed_qoe = compute_qoe(demuxed_log, setup.content.ladder());

  EXPECT_EQ(muxed_qoe.stall_count, 0);
  EXPECT_EQ(demuxed_qoe.stall_count, 0);
  EXPECT_NEAR(muxed_qoe.avg_video_kbps + muxed_qoe.avg_audio_kbps,
              demuxed_qoe.avg_video_kbps + demuxed_qoe.avg_audio_kbps, 250.0);
}

TEST(MuxedPlayer, ProgressSamplesCoverCombinedBytes) {
  const Content content = make_drama_content();
  const ManifestView view = view_from_mpd(build_dash_mpd(content));
  MuxedPlayer player;
  const Network network = Network::shared(BandwidthTrace::constant(1200.0));
  const SessionLog log = run_session(content, view, network, player);
  // Sum of per-component download record bytes equals total content fetched.
  std::int64_t expected = 0;
  for (std::size_t i = 0; i < log.video_selection.size(); ++i) {
    expected += content.chunk(log.video_selection[i], static_cast<int>(i)).size_bytes;
    expected += content.chunk(log.audio_selection[i], static_cast<int>(i)).size_bytes;
  }
  EXPECT_EQ(log.total_downloaded_bytes(), expected);
}

}  // namespace
}  // namespace demuxabr
