#include "sim/buffer.h"

#include <gtest/gtest.h>

namespace demuxabr {
namespace {

TEST(MediaBuffer, StartsEmpty) {
  MediaBuffer buffer;
  EXPECT_TRUE(buffer.empty());
  EXPECT_DOUBLE_EQ(buffer.level_s(), 0.0);
  EXPECT_EQ(buffer.chunk_count(), 0u);
  EXPECT_EQ(buffer.end_index(), 0);
}

TEST(MediaBuffer, PushAccumulatesLevel) {
  MediaBuffer buffer;
  buffer.push(0, 4.0);
  buffer.push(1, 4.0);
  EXPECT_DOUBLE_EQ(buffer.level_s(), 8.0);
  EXPECT_EQ(buffer.chunk_count(), 2u);
  EXPECT_EQ(buffer.end_index(), 2);
  EXPECT_FALSE(buffer.empty());
}

TEST(MediaBuffer, ConsumeWithinFrontChunk) {
  MediaBuffer buffer;
  buffer.push(0, 4.0);
  EXPECT_DOUBLE_EQ(buffer.consume(1.5), 1.5);
  EXPECT_DOUBLE_EQ(buffer.level_s(), 2.5);
  EXPECT_EQ(buffer.chunk_count(), 1u);
}

TEST(MediaBuffer, ConsumeAcrossChunkBoundary) {
  MediaBuffer buffer;
  buffer.push(0, 4.0);
  buffer.push(1, 4.0);
  EXPECT_DOUBLE_EQ(buffer.consume(5.0), 5.0);
  EXPECT_DOUBLE_EQ(buffer.level_s(), 3.0);
  EXPECT_EQ(buffer.chunk_count(), 1u);
}

TEST(MediaBuffer, ConsumeMoreThanAvailable) {
  MediaBuffer buffer;
  buffer.push(0, 4.0);
  EXPECT_DOUBLE_EQ(buffer.consume(10.0), 4.0);
  EXPECT_TRUE(buffer.empty());
  EXPECT_DOUBLE_EQ(buffer.consume(1.0), 0.0);
}

TEST(MediaBuffer, ExactDrainLeavesCleanState) {
  MediaBuffer buffer;
  buffer.push(0, 4.0);
  EXPECT_DOUBLE_EQ(buffer.consume(4.0), 4.0);
  EXPECT_TRUE(buffer.empty());
  EXPECT_EQ(buffer.chunk_count(), 0u);
  buffer.push(1, 4.0);  // can refill after drain
  EXPECT_DOUBLE_EQ(buffer.level_s(), 4.0);
}

TEST(MediaBuffer, ManySmallConsumesSumExactly) {
  MediaBuffer buffer;
  for (int i = 0; i < 10; ++i) buffer.push(i, 4.0);
  double consumed = 0.0;
  while (!buffer.empty()) consumed += buffer.consume(0.125);
  EXPECT_NEAR(consumed, 40.0, 1e-9);
}

TEST(MediaBuffer, ZeroConsumeIsNoop) {
  MediaBuffer buffer;
  buffer.push(0, 4.0);
  EXPECT_DOUBLE_EQ(buffer.consume(0.0), 0.0);
  EXPECT_DOUBLE_EQ(buffer.level_s(), 4.0);
}

TEST(MediaBuffer, ClearResetsEverything) {
  MediaBuffer buffer;
  buffer.push(0, 4.0);
  buffer.consume(1.0);
  buffer.clear();
  EXPECT_TRUE(buffer.empty());
  EXPECT_EQ(buffer.end_index(), 0);
}

TEST(MediaBuffer, MixedDurations) {
  MediaBuffer buffer;
  buffer.push(0, 2.0);
  buffer.push(1, 6.0);
  EXPECT_DOUBLE_EQ(buffer.level_s(), 8.0);
  buffer.consume(3.0);  // consumes chunk 0 entirely + 1s of chunk 1
  EXPECT_DOUBLE_EQ(buffer.level_s(), 5.0);
  EXPECT_EQ(buffer.chunk_count(), 1u);
}

}  // namespace
}  // namespace demuxabr
