// QuantileSketch (util/sketch.h): the mergeable percentile sketch behind
// streaming fleet metrics. Two property suites:
//
//  1. Accuracy: on random log-uniform streams spanning several decades, the
//     quantile answer is within the configured relative error of the exact
//     order statistic at rank q * (n - 1) — the bucket containing that
//     sample answers, and its representative value is within alpha of every
//     sample it can hold.
//  2. Mergeability: K per-shard sketches pooled in ANY order answer every
//     quantile query exactly like the sketch of the undivided stream
//     (integer bucket counts make the merge associative + commutative) —
//     the property the parallel shard runner's metric merge leans on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/rng.h"
#include "util/sketch.h"

namespace demuxabr {
namespace {

/// Exact order statistic at the sketch's rank convention q * (n - 1): the
/// sample at floor(rank) of the sorted stream (no interpolation — a sketch
/// cannot see gaps between neighbouring samples).
double exact_rank_value(const std::vector<double>& sorted, double fraction) {
  const double rank = fraction * static_cast<double>(sorted.size() - 1);
  return sorted[static_cast<std::size_t>(rank)];
}

void expect_within_alpha(const QuantileSketch& sketch,
                         const std::vector<double>& sorted, double fraction) {
  const double exact = exact_rank_value(sorted, fraction);
  const double est = sketch.quantile(fraction);
  EXPECT_NEAR(est, exact, sketch.relative_error() * exact + 1e-12)
      << "q=" << fraction << " n=" << sorted.size();
}

TEST(QuantileSketch, RelativeErrorBoundOverRandomStreams) {
  for (const double alpha : {0.01, 0.05}) {
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      Rng rng(seed * 131);
      QuantileSketch sketch(alpha);
      std::vector<double> values;
      values.reserve(4000);
      // Log-uniform over 6 decades: stall ratios (~1e-3) through
      // throughputs (~1e3) in one stream.
      for (int i = 0; i < 4000; ++i) {
        const double x = std::pow(10.0, rng.uniform(-3.0, 3.0));
        values.push_back(x);
        sketch.add(x);
      }
      std::sort(values.begin(), values.end());
      ASSERT_EQ(sketch.count(), values.size());
      // count / min / max are tracked exactly, not sketched.
      EXPECT_DOUBLE_EQ(sketch.min(), values.front());
      EXPECT_DOUBLE_EQ(sketch.max(), values.back());
      for (const double q : {0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
        expect_within_alpha(sketch, values, q);
      }
      // ~1400 buckets cover 9 decades at alpha = 0.01; 6 decades must fit
      // comfortably (the memory claim of streaming mode).
      EXPECT_LT(sketch.bucket_count(), 2000u);
    }
  }
}

TEST(QuantileSketch, MergedShardSketchesEqualPooledStreamExactly) {
  const double alpha = 0.02;
  const std::size_t kShards = 7;
  Rng rng(977);
  QuantileSketch pooled(alpha);
  std::vector<QuantileSketch> shards(kShards, QuantileSketch(alpha));
  std::vector<double> values;
  for (int i = 0; i < 3000; ++i) {
    // ~10% exact zeros: the zero bucket must merge too (healthy fleets have
    // mostly-zero stall ratios).
    const double x = rng.bernoulli(0.1) ? 0.0 : std::pow(10.0, rng.uniform(-2.0, 4.0));
    values.push_back(x);
    pooled.add(x);
    shards[static_cast<std::size_t>(i) % kShards].add(x);
  }

  QuantileSketch forward(alpha);
  QuantileSketch backward(alpha);
  for (std::size_t s = 0; s < kShards; ++s) forward.merge(shards[s]);
  for (std::size_t s = kShards; s-- > 0;) backward.merge(shards[s]);

  ASSERT_EQ(forward.count(), pooled.count());
  ASSERT_EQ(backward.count(), pooled.count());
  EXPECT_DOUBLE_EQ(forward.min(), pooled.min());
  EXPECT_DOUBLE_EQ(forward.max(), pooled.max());
  // sum is a float accumulation whose order differs between the pooled
  // stream and the per-shard partials — near, not bit-equal.
  EXPECT_NEAR(forward.sum(), pooled.sum(), 1e-9 * std::abs(pooled.sum()));
  for (const double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    // Bucket counts are integers: merge order is bit-irrelevant.
    EXPECT_DOUBLE_EQ(forward.quantile(q), pooled.quantile(q)) << "q=" << q;
    EXPECT_DOUBLE_EQ(backward.quantile(q), pooled.quantile(q)) << "q=" << q;
  }

  // The merged estimates still honour the accuracy bound vs the exact
  // order statistics of the pooled stream.
  std::sort(values.begin(), values.end());
  for (const double q : {0.1, 0.5, 0.9, 0.99}) {
    expect_within_alpha(forward, values, q);
  }
}

TEST(QuantileSketch, ZeroAndDegenerateInputs) {
  QuantileSketch empty(0.01);
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.min(), 0.0);
  EXPECT_DOUBLE_EQ(empty.max(), 0.0);
  EXPECT_EQ(empty.summary().count, 0u);

  QuantileSketch zeros(0.01);
  for (int i = 0; i < 100; ++i) zeros.add(0.0);
  EXPECT_EQ(zeros.count(), 100u);
  EXPECT_DOUBLE_EQ(zeros.quantile(0.99), 0.0);
  EXPECT_EQ(zeros.bucket_count(), 0u);  // all in the exact zero bucket

  // Negative and non-finite samples clamp to 0 rather than poisoning the
  // log-spaced grid.
  QuantileSketch dirty(0.01);
  dirty.add(-5.0);
  dirty.add(std::numeric_limits<double>::quiet_NaN());
  dirty.add(std::numeric_limits<double>::infinity());
  dirty.add(2.0);
  EXPECT_EQ(dirty.count(), 4u);
  EXPECT_DOUBLE_EQ(dirty.min(), 0.0);
  EXPECT_NEAR(dirty.max(), 2.0, 0.01 * 2.0);
  EXPECT_DOUBLE_EQ(dirty.quantile(0.0), 0.0);
}

TEST(QuantileSketch, SummaryMatchesDirectQuantiles) {
  QuantileSketch sketch(0.01);
  std::vector<double> values;
  Rng rng(42);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(10.0, 5000.0);
    values.push_back(x);
    sketch.add(x);
  }
  const PercentileSummary s = sketch.summary();
  EXPECT_EQ(s.count, 500u);
  EXPECT_DOUBLE_EQ(s.p50, sketch.quantile(0.50));
  EXPECT_DOUBLE_EQ(s.p90, sketch.quantile(0.90));
  EXPECT_DOUBLE_EQ(s.p99, sketch.quantile(0.99));
  EXPECT_DOUBLE_EQ(s.mean, sketch.mean());
  EXPECT_DOUBLE_EQ(s.min, sketch.min());
  EXPECT_DOUBLE_EQ(s.max, sketch.max());
  std::sort(values.begin(), values.end());
  for (const double q : {0.25, 0.5, 0.75, 0.9, 0.99}) {
    expect_within_alpha(sketch, values, q);
  }
}

}  // namespace
}  // namespace demuxabr
