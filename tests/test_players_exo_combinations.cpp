// The §3.2 crown-jewel check: the switch-point reconstruction of ExoPlayer's
// getAllocationCheckpoints must reproduce, exactly, all three predetermined
// combination sequences the paper reports (Table-1 audio, set B, set C).
#include "players/exo_combinations.h"

#include <gtest/gtest.h>

#include <cmath>

#include "manifest/builder.h"
#include "media/content.h"

namespace demuxabr {
namespace {

std::vector<std::string> labels(const std::vector<AvCombination>& combos) {
  std::vector<std::string> out;
  for (const AvCombination& c : combos) out.push_back(c.label());
  return out;
}

TEST(ExoCombinations, Table1AudioSequenceMatchesPaper) {
  const auto combos = exo_predetermined_combinations(youtube_drama_ladder());
  const std::vector<std::string> expected = {"V1+A1", "V2+A1", "V2+A2", "V3+A2",
                                             "V4+A2", "V4+A3", "V5+A3", "V6+A3"};
  EXPECT_EQ(labels(combos), expected);
}

TEST(ExoCombinations, AudioSetBSequenceMatchesPaper) {
  const auto combos = exo_predetermined_combinations(drama_with_audio_set_b());
  const std::vector<std::string> expected = {"V1+B1", "V2+B1", "V2+B2", "V3+B2",
                                             "V4+B2", "V5+B2", "V5+B3", "V6+B3"};
  EXPECT_EQ(labels(combos), expected);
}

TEST(ExoCombinations, AudioSetCSequenceMatchesPaper) {
  const auto combos = exo_predetermined_combinations(drama_with_audio_set_c());
  const std::vector<std::string> expected = {"V1+C1", "V2+C1", "V2+C2", "V3+C2",
                                             "V4+C2", "V5+C2", "V5+C3", "V6+C3"};
  EXPECT_EQ(labels(combos), expected);
}

TEST(ExoCombinations, PathHasExpectedLength) {
  // |V| + |A| - 1 combinations for any ladder.
  const auto path = exo_allocation_path({100, 200, 400}, {32, 64});
  EXPECT_EQ(path.size(), 4u);
  EXPECT_EQ(path.front(), (std::pair<std::size_t, std::size_t>{0, 0}));
  EXPECT_EQ(path.back(), (std::pair<std::size_t, std::size_t>{2, 1}));
}

TEST(ExoCombinations, AdjacentCombosDifferInExactlyOneComponent) {
  const auto combos = exo_predetermined_combinations(youtube_drama_ladder());
  const BitrateLadder ladder = youtube_drama_ladder();
  for (std::size_t i = 1; i < combos.size(); ++i) {
    const bool video_changed = combos[i].video_id != combos[i - 1].video_id;
    const bool audio_changed = combos[i].audio_id != combos[i - 1].audio_id;
    EXPECT_TRUE(video_changed != audio_changed) << i;
  }
}

TEST(ExoCombinations, BandwidthMonotone) {
  const auto combos = exo_predetermined_combinations(youtube_drama_ladder());
  for (std::size_t i = 1; i < combos.size(); ++i) {
    EXPECT_GT(combos[i].declared_kbps, combos[i - 1].declared_kbps);
  }
}

TEST(ExoCombinations, SingleTrackPerRendererDegenerates) {
  const auto path = exo_allocation_path({500}, {64});
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], (std::pair<std::size_t, std::size_t>{0, 0}));
  const auto video_only = exo_allocation_path({100, 200}, {64});
  EXPECT_EQ(video_only.size(), 2u);
}

TEST(ExoCombinations, ViewOverloadUsesDeclaredBitrates) {
  const Content content = make_drama_content();
  const ManifestView view = view_from_mpd(build_dash_mpd(content));
  const auto combos = exo_predetermined_combinations(view);
  ASSERT_EQ(combos.size(), 8u);
  EXPECT_EQ(combos[0].video_id, "V1");
  EXPECT_EQ(combos[0].audio_id, "A1");
  EXPECT_DOUBLE_EQ(combos[0].bandwidth_kbps, 111.0 + 128.0);
  EXPECT_EQ(combos[3].video_id, "V3");
  EXPECT_EQ(combos[3].audio_id, "A2");
}

TEST(ExoCombinations, ViewOverloadSortsUnorderedTracks) {
  // Manifest order is not bitrate order: the algorithm must sort first.
  const Content content = make_drama_content();
  ManifestView view = view_from_mpd(build_dash_mpd(content));
  std::swap(view.video_tracks[0], view.video_tracks[5]);
  std::swap(view.audio_tracks[0], view.audio_tracks[2]);
  const auto combos = exo_predetermined_combinations(view);
  EXPECT_EQ(combos.front().video_id, "V1");
  EXPECT_EQ(combos.front().audio_id, "A1");
  EXPECT_EQ(combos.back().video_id, "V6");
  EXPECT_EQ(combos.back().audio_id, "A3");
}

class ExoPathProperties
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(ExoPathProperties, PathIsMonotoneStaircase) {
  const auto [num_video, num_audio] = GetParam();
  std::vector<double> video_kbps;
  std::vector<double> audio_kbps;
  for (std::size_t i = 0; i < num_video; ++i) {
    video_kbps.push_back(100.0 * std::pow(1.9, static_cast<double>(i)));
  }
  for (std::size_t i = 0; i < num_audio; ++i) {
    audio_kbps.push_back(32.0 * std::pow(2.0, static_cast<double>(i)));
  }
  const auto path = exo_allocation_path(video_kbps, audio_kbps);
  ASSERT_EQ(path.size(), num_video + num_audio - 1);
  for (std::size_t i = 1; i < path.size(); ++i) {
    const auto step_video = path[i].first - path[i - 1].first;
    const auto step_audio = path[i].second - path[i - 1].second;
    EXPECT_EQ(step_video + step_audio, 1u);  // exactly one upgrade per step
  }
  EXPECT_EQ(path.back().first, num_video - 1);
  EXPECT_EQ(path.back().second, num_audio - 1);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ExoPathProperties,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},
                      std::pair<std::size_t, std::size_t>{6, 3},
                      std::pair<std::size_t, std::size_t>{3, 6},
                      std::pair<std::size_t, std::size_t>{2, 2},
                      std::pair<std::size_t, std::size_t>{10, 4}));

}  // namespace
}  // namespace demuxabr
