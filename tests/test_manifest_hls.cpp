#include "manifest/hls_playlist.h"

#include <gtest/gtest.h>

#include "manifest/builder.h"
#include "media/content.h"
#include "util/strings.h"

namespace demuxabr {
namespace {

class HlsTest : public ::testing::Test {
 protected:
  Content content_ = make_drama_content();
};

TEST_F(HlsTest, HallListsAll18Variants) {
  const HlsMasterPlaylist master = build_hall_master(content_);
  EXPECT_EQ(master.variants.size(), 18u);
  EXPECT_EQ(master.audio_renditions.size(), 3u);
}

TEST_F(HlsTest, HsubListsCuratedSixVariants) {
  const HlsMasterPlaylist master = build_hsub_master(content_);
  ASSERT_EQ(master.variants.size(), 6u);
  // Table 3 aggregate peak bitrates, in bps.
  EXPECT_EQ(master.variants[0].bandwidth_bps, 253000);
  EXPECT_EQ(master.variants[2].bandwidth_bps, 840000);
  EXPECT_EQ(master.variants[5].bandwidth_bps, 4838000);
  // And aggregate averages.
  EXPECT_EQ(master.variants[2].average_bandwidth_bps, 558000);
}

TEST_F(HlsTest, VariantReferencesAudioGroup) {
  const HlsMasterPlaylist master = build_hsub_master(content_);
  EXPECT_EQ(master.variants[0].audio_group, "audio-A1");
  EXPECT_EQ(master.variants[2].audio_group, "audio-A2");
  EXPECT_EQ(master.variants[5].audio_group, "audio-A3");
  EXPECT_EQ(master.variants[0].uri, "video/V1.m3u8");
}

TEST_F(HlsTest, AudioOrderControlsRenditionList) {
  const HlsMasterPlaylist master = build_hsub_master(content_, {"A3", "A2", "A1"});
  ASSERT_EQ(master.audio_renditions.size(), 3u);
  EXPECT_EQ(master.audio_renditions[0].name, "A3");
  EXPECT_TRUE(master.audio_renditions[0].is_default);
  EXPECT_EQ(master.audio_renditions[2].name, "A1");
}

TEST_F(HlsTest, MasterSerializeParseRoundTrip) {
  const HlsMasterPlaylist original = build_hall_master(content_);
  const auto reparsed = parse_master(serialize_master(original));
  ASSERT_TRUE(reparsed.ok()) << reparsed.error();
  ASSERT_EQ(reparsed->variants.size(), 18u);
  ASSERT_EQ(reparsed->audio_renditions.size(), 3u);
  EXPECT_EQ(reparsed->variants[0].bandwidth_bps, original.variants[0].bandwidth_bps);
  EXPECT_EQ(reparsed->variants[7].audio_group, original.variants[7].audio_group);
  EXPECT_EQ(reparsed->variants[7].uri, original.variants[7].uri);
  EXPECT_EQ(reparsed->audio_renditions[1].group_id, "audio-A2");
}

TEST_F(HlsTest, CodecsAttributeQuotedCommaSurvives) {
  const std::string text = serialize_master(build_hsub_master(content_));
  const auto reparsed = parse_master(text);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->variants[0].codecs, "avc1.4d401f,mp4a.40.2");
}

TEST_F(HlsTest, MediaPlaylistSeparateFiles) {
  const HlsMediaPlaylist playlist = build_hls_media(content_, "V2");
  ASSERT_EQ(playlist.segments.size(), 75u);
  EXPECT_FALSE(playlist.segments[0].has_byterange());
  EXPECT_EQ(playlist.segments[0].uri, "seg/V2/00000.m4s");
  EXPECT_TRUE(playlist.ended);
  EXPECT_NEAR(playlist.total_duration_s(), 300.0, 1e-9);
}

TEST_F(HlsTest, MediaPlaylistByteRangePackaging) {
  HlsMediaOptions options;
  options.packaging = PackagingMode::kSingleFileByteRange;
  const HlsMediaPlaylist playlist = build_hls_media(content_, "V2", options);
  EXPECT_TRUE(playlist.segments[0].has_byterange());
  EXPECT_EQ(playlist.segments[0].byterange_offset, 0);
  // Offsets are cumulative and contiguous.
  for (std::size_t i = 1; i < playlist.segments.size(); ++i) {
    EXPECT_EQ(playlist.segments[i].byterange_offset,
              playlist.segments[i - 1].byterange_offset +
                  playlist.segments[i - 1].byterange_length);
  }
  EXPECT_EQ(playlist.segments[0].uri, "V2.mp4");
}

TEST_F(HlsTest, ByteRangesRecoverTrackBitrate) {
  // §4.1 case (i): byte ranges let a client compute per-track bitrates.
  HlsMediaOptions options;
  options.packaging = PackagingMode::kSingleFileByteRange;
  const HlsMediaPlaylist playlist = build_hls_media(content_, "V3", options);
  const double avg = playlist.average_bitrate_from_byteranges_kbps();
  EXPECT_NEAR(avg, 362.0, 362.0 * 0.02);
  EXPECT_NEAR(playlist.peak_bitrate_kbps(), 641.0, 641.0 * 0.02);
}

TEST_F(HlsTest, BitrateTagsRecoverTrackBitrate) {
  // §4.1 case (ii): EXT-X-BITRATE tags in separate-file packaging.
  HlsMediaOptions options;
  options.include_bitrate_tag = true;
  const HlsMediaPlaylist playlist = build_hls_media(content_, "A3", options);
  EXPECT_NEAR(playlist.average_bitrate_from_tags_kbps(), 384.0, 384.0 * 0.02);
}

TEST_F(HlsTest, MediaPlaylistRoundTripSeparateFiles) {
  HlsMediaOptions options;
  options.include_bitrate_tag = true;
  const HlsMediaPlaylist original = build_hls_media(content_, "V4", options);
  const auto reparsed = parse_media(serialize_media(original));
  ASSERT_TRUE(reparsed.ok()) << reparsed.error();
  ASSERT_EQ(reparsed->segments.size(), original.segments.size());
  EXPECT_TRUE(reparsed->ended);
  EXPECT_NEAR(reparsed->segments[10].duration_s, 4.0, 1e-9);
  EXPECT_NEAR(reparsed->segments[10].bitrate_kbps, original.segments[10].bitrate_kbps,
              1.0);
}

TEST_F(HlsTest, MediaPlaylistRoundTripByteRanges) {
  HlsMediaOptions options;
  options.packaging = PackagingMode::kSingleFileByteRange;
  const HlsMediaPlaylist original = build_hls_media(content_, "A1", options);
  const auto reparsed = parse_media(serialize_media(original));
  ASSERT_TRUE(reparsed.ok()) << reparsed.error();
  for (std::size_t i = 0; i < original.segments.size(); ++i) {
    EXPECT_EQ(reparsed->segments[i].byterange_length,
              original.segments[i].byterange_length);
    EXPECT_EQ(reparsed->segments[i].byterange_offset,
              original.segments[i].byterange_offset);
  }
}

TEST(HlsParser, RejectsMissingHeader) {
  EXPECT_FALSE(parse_master("#EXT-X-VERSION:6\n").ok());
  EXPECT_FALSE(parse_media("not a playlist").ok());
}

TEST(HlsParser, RejectsStreamInfWithoutUri) {
  EXPECT_FALSE(parse_master("#EXTM3U\n#EXT-X-STREAM-INF:BANDWIDTH=1000\n").ok());
}

TEST(HlsParser, RejectsUriWithoutStreamInf) {
  EXPECT_FALSE(parse_master("#EXTM3U\nvideo/V1.m3u8\n").ok());
}

TEST(HlsParser, RejectsMissingBandwidth) {
  EXPECT_FALSE(
      parse_master("#EXTM3U\n#EXT-X-STREAM-INF:CODECS=\"x\"\nvideo/V1.m3u8\n").ok());
}

TEST(HlsParser, RejectsInvalidExtInf) {
  EXPECT_FALSE(parse_media("#EXTM3U\n#EXTINF:bad,\nseg0.ts\n").ok());
}

TEST(HlsParser, RejectsByteRangeWithoutOffset) {
  const char* text =
      "#EXTM3U\n#EXTINF:4.0,\n#EXT-X-BYTERANGE:1000\nfile.mp4\n#EXT-X-ENDLIST\n";
  EXPECT_FALSE(parse_media(text).ok());
}

TEST(HlsParser, BitrateTagAppliesUntilChanged) {
  // Per RFC 8216bis, EXT-X-BITRATE applies to subsequent segments.
  const char* text =
      "#EXTM3U\n#EXT-X-TARGETDURATION:4\n"
      "#EXT-X-BITRATE:100\n#EXTINF:4.0,\ns0.ts\n"
      "#EXTINF:4.0,\ns1.ts\n"
      "#EXT-X-BITRATE:200\n#EXTINF:4.0,\ns2.ts\n#EXT-X-ENDLIST\n";
  const auto playlist = parse_media(text);
  ASSERT_TRUE(playlist.ok()) << playlist.error();
  EXPECT_DOUBLE_EQ(playlist->segments[0].bitrate_kbps, 100.0);
  EXPECT_DOUBLE_EQ(playlist->segments[1].bitrate_kbps, 100.0);
  EXPECT_DOUBLE_EQ(playlist->segments[2].bitrate_kbps, 200.0);
}

TEST(HlsParser, MissingEndlistMeansLive) {
  const char* text = "#EXTM3U\n#EXTINF:4.0,\ns0.ts\n";
  const auto playlist = parse_media(text);
  ASSERT_TRUE(playlist.ok());
  EXPECT_FALSE(playlist->ended);
}

TEST(HlsMaster, FirstVariantWithUri) {
  HlsMasterPlaylist master;
  HlsVariant v1;
  v1.bandwidth_bps = 100;
  v1.uri = "a.m3u8";
  HlsVariant v2;
  v2.bandwidth_bps = 200;
  v2.uri = "a.m3u8";
  master.variants = {v1, v2};
  EXPECT_EQ(master.first_variant_with_uri("a.m3u8")->bandwidth_bps, 100);
  EXPECT_EQ(master.first_variant_with_uri("b.m3u8"), nullptr);
  EXPECT_EQ(master.video_uris().size(), 1u);
}

TEST(TrackIdFromUri, HandlesConventions) {
  EXPECT_EQ(track_id_from_uri("video/V3.m3u8"), "V3");
  EXPECT_EQ(track_id_from_uri("audio/A1.m3u8"), "A1");
  EXPECT_EQ(track_id_from_uri("seg/A1/00042.m4s"), "A1");
  EXPECT_EQ(track_id_from_uri("V2.mp4"), "V2");
  EXPECT_EQ(track_id_from_uri("video/V3.m3u8?token=x"), "V3");
}

}  // namespace
}  // namespace demuxabr
