#include "httpsim/cdn_chain.h"

#include <gtest/gtest.h>

#include "media/content.h"
#include "util/rng.h"

namespace demuxabr {
namespace {

class CdnChainTest : public ::testing::Test {
 protected:
  Content content_ = make_drama_content();
  ObjectCatalog catalog_ = build_demuxed_catalog(content_);
};

TEST_F(CdnChainTest, ColdFetchComesFromOriginAndFillsBothTiers) {
  CdnChain chain(&catalog_, 0, 0);
  const std::string key = chunk_object_key("V1", 0);
  const auto first = chain.fetch(key);
  EXPECT_EQ(first.served_by, CdnChain::ServedBy::kOrigin);
  EXPECT_TRUE(chain.edge().contains(key));
  EXPECT_TRUE(chain.regional().contains(key));
  const auto second = chain.fetch(key);
  EXPECT_EQ(second.served_by, CdnChain::ServedBy::kEdge);
}

TEST_F(CdnChainTest, RegionalServesEdgeEvictions) {
  // Tiny edge, unbounded regional: after the edge evicts, the regional
  // still has the object.
  const std::int64_t one_chunk = catalog_.size_of(chunk_object_key("V1", 0));
  CdnChain chain(&catalog_, one_chunk + 1, 0);
  const std::string a = chunk_object_key("V1", 0);
  const std::string b = chunk_object_key("V1", 1);
  (void)chain.fetch(a);  // origin, fills edge+regional
  (void)chain.fetch(b);  // origin, evicts `a` from the tiny edge
  const auto again = chain.fetch(a);
  EXPECT_EQ(again.served_by, CdnChain::ServedBy::kRegional);
  EXPECT_EQ(chain.stats().regional_hits, 1);
}

TEST_F(CdnChainTest, StatsSurfaceEvictionsAndFillPolicy) {
  const std::int64_t one_chunk = catalog_.size_of(chunk_object_key("V1", 0));
  CdnChain chain(&catalog_, one_chunk + 1, 0);
  (void)chain.fetch(chunk_object_key("V1", 0));
  (void)chain.fetch(chunk_object_key("V1", 1));  // evicts chunk 0 from edge
  const CdnChain::Stats stats = chain.stats();
  EXPECT_EQ(stats.edge_evictions, 1u);
  EXPECT_EQ(stats.regional_evictions, 0u);
  EXPECT_EQ(stats.fill, FillPolicy::kBothTiers);
  EXPECT_STREQ(fill_policy_name(stats.fill), "both_tiers");
}

TEST_F(CdnChainTest, EdgeOnlyFillLeavesRegionalCold) {
  CdnChain chain(&catalog_, 0, 0, FillPolicy::kEdgeOnly);
  const std::string key = chunk_object_key("V2", 3);
  (void)chain.fetch(key);
  EXPECT_TRUE(chain.edge().contains(key));
  EXPECT_FALSE(chain.regional().contains(key));
  EXPECT_EQ(chain.stats().fill, FillPolicy::kEdgeOnly);
  EXPECT_STREQ(fill_policy_name(FillPolicy::kEdgeOnly), "edge_only");
  // Re-fetch after an edge eviction must go back to the origin: nothing
  // was staged in the regional tier.
  const std::int64_t one_chunk = catalog_.size_of(key);
  CdnChain tiny(&catalog_, one_chunk + 1, 0, FillPolicy::kEdgeOnly);
  (void)tiny.fetch(key);
  (void)tiny.fetch(chunk_object_key("V2", 4));  // evicts `key` from edge
  EXPECT_EQ(tiny.fetch(key).served_by, CdnChain::ServedBy::kOrigin);
  EXPECT_EQ(tiny.stats().regional_hits, 0);
}

TEST_F(CdnChainTest, UnknownKeyNotCounted) {
  CdnChain chain(&catalog_, 0, 0);
  const auto result = chain.fetch("nope");
  EXPECT_EQ(result.served_by, CdnChain::ServedBy::kNotFound);
  EXPECT_EQ(chain.stats().requests, 0);
}

TEST_F(CdnChainTest, StatsAddUp) {
  CdnChain chain(&catalog_, 0, 0);
  Rng rng(3);
  const auto& video = content_.ladder().video();
  for (int i = 0; i < 500; ++i) {
    const auto& track = video[static_cast<std::size_t>(rng.uniform_int(0, 5))];
    const int chunk = static_cast<int>(rng.uniform_int(0, 9));
    (void)chain.fetch(chunk_object_key(track.id, chunk));
  }
  const auto& stats = chain.stats();
  EXPECT_EQ(stats.requests, 500);
  EXPECT_EQ(stats.edge_hits + stats.regional_hits + stats.origin_fetches, 500);
  // With unbounded caches the regional tier never gets hit (the edge holds
  // everything it ever saw).
  EXPECT_EQ(stats.regional_hits, 0);
  EXPECT_NEAR(stats.edge_hit_ratio() + stats.origin_fetch_ratio(), 1.0, 1e-12);
}

TEST_F(CdnChainTest, DemuxedBeatsMuxedAcrossTheChain) {
  // Same viewer demand against demuxed and muxed catalogs with a bounded
  // edge: the demuxed chain pulls fewer bytes from the origin.
  const ObjectCatalog muxed = build_muxed_catalog(content_);
  const std::int64_t edge_cap = catalog_.total_bytes() / 4;
  const std::int64_t regional_cap = catalog_.total_bytes();
  CdnChain demuxed_chain(&catalog_, edge_cap, regional_cap);
  CdnChain muxed_chain(&muxed, edge_cap, regional_cap);

  Rng rng(7);
  ZipfDistribution video_dist(content_.ladder().video_count(), 0.8);
  ZipfDistribution audio_dist(content_.ladder().audio_count(), 0.8);
  for (int user = 0; user < 60; ++user) {
    const std::string video = content_.ladder().video()[video_dist.sample(rng)].id;
    const std::string audio = content_.ladder().audio()[audio_dist.sample(rng)].id;
    for (int chunk = 0; chunk < content_.num_chunks(); ++chunk) {
      (void)demuxed_chain.fetch(chunk_object_key(video, chunk));
      (void)demuxed_chain.fetch(chunk_object_key(audio, chunk));
      (void)muxed_chain.fetch(chunk_object_key(video + "+" + audio, chunk));
    }
  }
  EXPECT_LT(demuxed_chain.stats().bytes_from_origin,
            muxed_chain.stats().bytes_from_origin);
}

}  // namespace
}  // namespace demuxabr
