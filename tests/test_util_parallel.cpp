// fan_out_ordered (util/parallel.h): the deterministic fan-out / ordered-
// merge helper behind run_replications and the fleet shard runner. Results
// must come back indexed by submission order regardless of completion order
// or thread count, and threads <= 1 must degenerate to the plain serial
// loop bit for bit.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <thread>
#include <vector>

#include "util/parallel.h"

namespace demuxabr {
namespace {

TEST(FanOutOrdered, ResultsIndexedBySubmissionOrder) {
  // Later jobs finish earlier (reverse sleep): completion order is the
  // reverse of submission order, results must still line up by index.
  const auto job = [](std::size_t i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2 * (8 - i)));
    return static_cast<int>(i * i);
  };
  for (const int threads : {1, 2, 8}) {
    const std::vector<int> results = fan_out_ordered(8, threads, job);
    ASSERT_EQ(results.size(), 8u) << "threads=" << threads;
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i], static_cast<int>(i * i)) << "threads=" << threads;
    }
  }
}

TEST(FanOutOrdered, SerialParallelAndDefaultThreadCountAgree) {
  const auto job = [](std::size_t i) { return static_cast<double>(i) * 1.5 + 1.0; };
  const std::vector<double> serial = fan_out_ordered(16, 1, job);
  const std::vector<double> parallel = fan_out_ordered(16, 4, job);
  const std::vector<double> defaulted = fan_out_ordered(16, 0, job);
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(serial, defaulted);
}

TEST(FanOutOrdered, DegenerateCounts) {
  const auto job = [](std::size_t i) { return static_cast<int>(i) + 41; };
  EXPECT_TRUE(fan_out_ordered(0, 4, job).empty());
  const std::vector<int> one = fan_out_ordered(1, 4, job);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 41);
}

TEST(FanOutOrdered, JobsRunConcurrentlyWhenAsked) {
  // Four jobs that each wait until all four have started can only finish if
  // four workers actually run them at once.
  std::atomic<int> arrived{0};
  const auto job = [&arrived](std::size_t) {
    arrived.fetch_add(1);
    while (arrived.load() < 4) std::this_thread::yield();
    return 1;
  };
  const std::vector<int> results = fan_out_ordered(4, 4, job);
  ASSERT_EQ(results.size(), 4u);
  for (const int r : results) EXPECT_EQ(r, 1);
}

}  // namespace
}  // namespace demuxabr
