// Drain-loop allocation audit (own binary: the operator new/delete override
// below is process-wide). The tentpole claim of the arena work is that the
// event-heap engine's steady-state drain performs ZERO heap allocations —
// everything it touches (completion registries, the event heap, drain
// scratch, pending-delivery queues) lives in the scheduler's per-shard
// MonotonicArena, and per-session state reaches its high-water mark during
// the start-up transient.
//
// Proof shape: run the same no-churn minimal-log fleet twice, identical
// except for the absolute sim-time cap. Both runs admit the same clients,
// reach the same steady state, and retire everyone at their cap; the longer
// run just executes ~2x the drain iterations. If (and only if) the
// steady-state drain loop allocates nothing, the two global allocation
// counts are EQUAL — any per-event malloc shows up as a count difference
// proportional to the extra events. A warmup run at the LONG cap first
// touches lazy global state (metrics-registry histogram buckets, locale,
// gtest internals): the runs are deterministic, so the short run's event
// stream is a prefix of the warmup's and can surface no new global bucket.
//
// minimal_log (rather than streaming-metrics) mode on purpose: the
// streaming sketches bucket by VALUE, so a 240s watch can touch quantile
// buckets a 120s watch never does — legitimate retire-time work that would
// show up as a tiny count difference and mask what this audit is pinning,
// the per-event drain-loop behavior.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "experiments/scenarios.h"
#include "fleet/metrics.h"
#include "fleet/population.h"
#include "fleet/scheduler.h"
#include "players/exoplayer.h"

namespace {

std::atomic<std::uint64_t> g_alloc_count{0};

}  // namespace

// Count every allocation path. Deallocation stays pass-through: the audit
// compares allocation counts, and operator delete must accept pointers from
// any of the forms below.
void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace demuxabr::fleet {
namespace {

namespace ex = demuxabr::experiments;

std::unique_ptr<PlayerAdapter> make_exo() {
  return std::make_unique<ExoPlayerModel>();
}

/// No-churn, flash-crowd, minimal-log fleet capped at `cap_s` of sim time:
/// after the start-up transient every drain iteration is steady-state work
/// (downloads completing, ticks firing, buffers draining).
FleetResult run_capped_fleet(const ex::ExperimentSetup& setup, double cap_s) {
  FleetConfig config;
  config.client_count = 20;
  config.seed = 11;
  config.players.push_back({"exoplayer", &make_exo, 1.0});
  config.arrivals = ArrivalProcess::kSimultaneous;
  config.session.max_sim_time_s = cap_s;
  // Aggregates only — the configuration fleets run at scale, where an
  // allocation-free drain matters. Retire-time work is then fixed-shape
  // (SessionTotals into a reserved ClientResult slot), so the only thing
  // that can differ between the two caps is the drain loop itself.
  config.session.minimal_log = true;
  config.session.record_series = false;
  return run_fleet(setup.content, setup.view,
                   BandwidthTrace::constant(3000.0), config);
}

std::uint64_t count_allocations(const ex::ExperimentSetup& setup, double cap_s,
                                double* end_time = nullptr) {
  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  const FleetResult result = run_capped_fleet(setup, cap_s);
  const std::uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
  if (end_time != nullptr) *end_time = result.end_time_s;
  return after - before;
}

TEST(DrainAllocationAudit, SteadyStateDrainAllocatesNothing) {
  const ex::ExperimentSetup setup =
      ex::plain_dash(BandwidthTrace::constant(3000.0), "alloc-audit");

  // Warmup at the long cap (see file comment).
  run_capped_fleet(setup, 240.0);

  double short_end = 0.0;
  double long_end = 0.0;
  const std::uint64_t short_allocs = count_allocations(setup, 120.0, &short_end);
  const std::uint64_t long_allocs = count_allocations(setup, 240.0, &long_end);

  // The caps must actually bite (nobody finished early) or the comparison
  // proves nothing.
  ASSERT_DOUBLE_EQ(short_end, 120.0);
  ASSERT_DOUBLE_EQ(long_end, 240.0);
  ASSERT_GT(short_allocs, 0u);  // setup/admission/finalize do allocate

  // Twice the drain work, identical allocation count: the drain loop itself
  // allocated nothing in either run.
  EXPECT_EQ(long_allocs, short_allocs)
      << "steady-state drain performed "
      << (long_allocs > short_allocs ? long_allocs - short_allocs : 0u)
      << " extra allocations over ~120s of additional sim time";
}

TEST(DrainAllocationAudit, CountsAreStableAcrossIdenticalRuns) {
  // Same cap twice: identical work must allocate identically (guards the
  // audit itself against nondeterministic allocation noise that would mask
  // or fake a drain-loop regression).
  const ex::ExperimentSetup setup =
      ex::plain_dash(BandwidthTrace::constant(3000.0), "alloc-repeat");
  run_capped_fleet(setup, 120.0);
  const std::uint64_t first = count_allocations(setup, 120.0);
  const std::uint64_t second = count_allocations(setup, 120.0);
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace demuxabr::fleet
