// Fleet simulator contract tests: stepping-API equivalence with the solo
// run() loop, determinism of whole-fleet runs (same seed => identical
// aggregate fingerprint, at any replication thread count), processor-sharing
// fairness across identical clients, churn slot accounting, and the
// population model.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>

#include "core/coordinated_player.h"
#include "experiments/scenarios.h"
#include "experiments/sweep.h"
#include "fleet/metrics.h"
#include "fleet/population.h"
#include "fleet/scheduler.h"
#include "players/dashjs.h"
#include "players/exoplayer.h"

namespace demuxabr::fleet {
namespace {

namespace ex = demuxabr::experiments;

std::unique_ptr<PlayerAdapter> make_exo() {
  return std::make_unique<ExoPlayerModel>();
}

PlayerShare exo_share(double weight = 1.0) {
  return {"exoplayer", &make_exo, weight};
}

/// Small fleet config used throughout: short per-client budget keeps the
/// tests fast even when contention starves a client.
FleetConfig base_config(int clients, std::uint64_t seed = 7) {
  FleetConfig config;
  config.client_count = clients;
  config.seed = seed;
  config.players.push_back(exo_share());
  config.session.max_sim_time_s = 1800.0;
  return config;
}

TEST(SessionStepping, ManualLoopMatchesRun) {
  const ex::ExperimentSetup setup =
      ex::plain_dash(BandwidthTrace::constant(900.0), "stepping");

  ExoPlayerModel via_run;
  const SessionLog run_log = ex::run(setup, via_run);

  ExoPlayerModel via_steps;
  const Network network = Network::shared(setup.trace, setup.rtt_s);
  StreamingSession session(setup.content, setup.view, network, via_steps,
                           setup.session);
  session.start();
  while (!session.done()) {
    session.begin_step();
    session.advance_to(session.next_event_time());
  }
  const SessionLog step_log = session.finish();

  EXPECT_EQ(ex::log_fingerprint(run_log), ex::log_fingerprint(step_log));
}

TEST(SessionStepping, StartTimeOffsetsClockButNotStartupDelay) {
  const ex::ExperimentSetup setup =
      ex::plain_dash(BandwidthTrace::constant(900.0), "offset");

  ExoPlayerModel at_zero;
  const SessionLog base = ex::run(setup, at_zero);

  SessionConfig shifted_config = setup.session;
  shifted_config.start_time_s = 100.0;
  shifted_config.max_sim_time_s = 100.0 + setup.session.max_sim_time_s;
  ExoPlayerModel shifted_player;
  const Network network = Network::shared(setup.trace, setup.rtt_s);
  StreamingSession shifted(setup.content, setup.view, network, shifted_player,
                           shifted_config);
  const SessionLog log = shifted.run();

  EXPECT_TRUE(log.completed);
  // The clock is absolute; startup delay stays relative to the arrival.
  EXPECT_GE(log.end_time_s, 100.0);
  EXPECT_NEAR(log.startup_delay_s, base.startup_delay_s, 1e-6);
  ASSERT_FALSE(log.downloads.empty());
  EXPECT_GE(log.downloads.front().start_t, 100.0);
}

TEST(Fleet, SingleClientMatchesSoloSession) {
  // A fleet of one on a shared link is exactly the solo engine.
  const ex::ExperimentSetup setup =
      ex::plain_dash(BandwidthTrace::constant(900.0), "solo");
  ExoPlayerModel solo;
  const SessionLog solo_log = ex::run(setup, solo);

  const FleetConfig config = base_config(1);
  const FleetResult result =
      run_fleet(setup.content, setup.view, setup.trace, config);
  ASSERT_EQ(result.clients.size(), 1u);
  EXPECT_EQ(ex::log_fingerprint(solo_log),
            ex::log_fingerprint(result.clients[0].log));
}

TEST(Fleet, SameSeedSameFingerprint) {
  const ex::ExperimentSetup setup =
      ex::plain_dash(ex::varying_600_trace(), "determinism");
  FleetConfig config = base_config(4, 21);
  config.arrivals = ArrivalProcess::kPoisson;
  config.arrival_rate_per_s = 0.2;
  config.churn.leave_probability = 0.5;
  config.churn.min_watch_s = 20.0;
  config.churn.max_watch_s = 90.0;

  const BandwidthTrace bottleneck = BandwidthTrace::constant(2500.0);
  const FleetResult first = run_fleet(setup.content, setup.view, bottleneck, config);
  const FleetResult second = run_fleet(setup.content, setup.view, bottleneck, config);
  EXPECT_EQ(fleet_fingerprint(first), fleet_fingerprint(second));

  FleetConfig other_seed = config;
  other_seed.seed = 22;
  const FleetResult third =
      run_fleet(setup.content, setup.view, bottleneck, other_seed);
  EXPECT_NE(fleet_fingerprint(first), fleet_fingerprint(third));
}

TEST(Fleet, ReplicationsIdenticalAcrossThreadCounts) {
  const ex::ExperimentSetup setup =
      ex::plain_dash(BandwidthTrace::constant(2000.0), "replications");
  FleetConfig config = base_config(2, 5);
  // Stochastic arrivals and churn: the seed must change the outcome, so the
  // different-seed sanity check below has teeth.
  config.arrivals = ArrivalProcess::kPoisson;
  config.arrival_rate_per_s = 0.3;
  config.churn.leave_probability = 0.5;

  ReplicationOptions serial;
  serial.replications = 3;
  serial.threads = 1;
  const auto serial_reps =
      run_replications(setup.content, setup.view, setup.trace, config, serial);

  ReplicationOptions pooled = serial;
  pooled.threads = 4;
  const auto pooled_reps =
      run_replications(setup.content, setup.view, setup.trace, config, pooled);

  ASSERT_EQ(serial_reps.size(), 3u);
  ASSERT_EQ(pooled_reps.size(), 3u);
  for (std::size_t r = 0; r < serial_reps.size(); ++r) {
    EXPECT_EQ(serial_reps[r].seed, pooled_reps[r].seed);
    EXPECT_EQ(fleet_fingerprint(serial_reps[r].result),
              fleet_fingerprint(pooled_reps[r].result));
  }
  // Different seeds produce different fleets.
  EXPECT_NE(fleet_fingerprint(serial_reps[0].result),
            fleet_fingerprint(serial_reps[1].result));
}

TEST(Fleet, IdenticalClientsOnFlatLinkAreFair) {
  const ex::ExperimentSetup setup =
      ex::plain_dash(BandwidthTrace::constant(900.0), "fairness");
  const FleetConfig config = base_config(2);
  // Twice the solo capacity: the fair share per client is the solo link.
  const BandwidthTrace bottleneck = BandwidthTrace::constant(1800.0);
  const FleetResult result =
      run_fleet(setup.content, setup.view, bottleneck, config);

  ASSERT_EQ(result.clients.size(), 2u);
  const FleetMetrics metrics = compute_fleet_metrics(result);
  EXPECT_EQ(metrics.clients, 2);
  // Identical deterministic clients arriving together make identical
  // decisions: equal average bitrate (within a generous epsilon) and a Jain
  // index of ~1.
  EXPECT_NEAR(result.clients[0].qoe.avg_video_kbps,
              result.clients[1].qoe.avg_video_kbps, 10.0);
  EXPECT_GT(metrics.jain_fairness_video, 0.999);
  EXPECT_GT(metrics.jain_fairness_throughput, 0.999);
  EXPECT_GT(result.video_link.peak_flows, 1);  // they really contended
  EXPECT_EQ(result.video_link.residual_flows, 0);
}

TEST(Fleet, ContentionDegradesSelectedBitrate) {
  const ex::ExperimentSetup setup =
      ex::plain_dash(BandwidthTrace::constant(1200.0), "contention");
  const BandwidthTrace bottleneck = BandwidthTrace::constant(1200.0);

  const FleetResult alone =
      run_fleet(setup.content, setup.view, bottleneck, base_config(1));
  const FleetResult crowd =
      run_fleet(setup.content, setup.view, bottleneck, base_config(4));

  const FleetMetrics alone_metrics = compute_fleet_metrics(alone);
  const FleetMetrics crowd_metrics = compute_fleet_metrics(crowd);
  // Four clients on the same pipe cannot all sustain the solo bitrate.
  EXPECT_LT(crowd_metrics.video_kbps.mean, alone_metrics.video_kbps.mean);
  EXPECT_GE(crowd.video_link.peak_flows, alone.video_link.peak_flows);
}

TEST(Fleet, ChurnReleasesSharedLinkSlots) {
  const ex::ExperimentSetup setup =
      ex::plain_dash(BandwidthTrace::constant(600.0), "churn");
  FleetConfig config = base_config(3, 11);
  config.churn.leave_probability = 1.0;  // everyone abandons
  config.churn.min_watch_s = 10.0;
  config.churn.max_watch_s = 30.0;

  const FleetResult result = run_fleet(setup.content, setup.view,
                                       BandwidthTrace::constant(1500.0), config);

  ASSERT_EQ(result.clients.size(), 3u);
  const FleetMetrics metrics = compute_fleet_metrics(result);
  EXPECT_EQ(metrics.departed_early, 3);
  for (const ClientResult& client : result.clients) {
    EXPECT_TRUE(client.departed_early);
    EXPECT_FALSE(client.log.completed);
    // Departure happens at the planned watch horizon, not at the cap.
    EXPECT_LE(client.log.end_time_s, client.arrival_s + 30.0 + 1.0);
  }
  // Every abandoned flow released its processor-sharing slot.
  EXPECT_GT(result.video_link.peak_flows, 0);
  EXPECT_EQ(result.video_link.residual_flows, 0);
}

TEST(Fleet, SplitAudioPathTracksBothLinks) {
  const ex::ExperimentSetup setup =
      ex::plain_dash(BandwidthTrace::constant(1000.0), "split");
  const FleetConfig config = base_config(2, 3);
  FleetScheduler scheduler(setup.content, setup.view,
                           BandwidthTrace::constant(2000.0), config,
                           BandwidthTrace::constant(256.0));
  const FleetResult result = scheduler.run();

  EXPECT_TRUE(result.split_audio);
  EXPECT_GT(result.video_link.busy_s, 0.0);
  EXPECT_GT(result.audio_link.busy_s, 0.0);
  EXPECT_EQ(result.video_link.name, "video-bottleneck");
  EXPECT_EQ(result.audio_link.name, "audio-bottleneck");
  // Utilization is a fraction of offered capacity.
  EXPECT_GE(result.video_link.utilization(), 0.0);
  EXPECT_LE(result.video_link.utilization(), 1.0 + 1e-9);
  EXPECT_LE(result.audio_link.utilization(), 1.0 + 1e-9);
}

/// Run one config under both engines and require byte-identical outcomes:
/// every per-client chunk log and the whole-fleet fingerprint.
void expect_engines_identical(const ex::ExperimentSetup& setup,
                              const BandwidthTrace& bottleneck,
                              FleetConfig config) {
  config.engine = Engine::kBarrier;
  const FleetResult barrier =
      run_fleet(setup.content, setup.view, bottleneck, config);
  config.engine = Engine::kEventHeap;
  const FleetResult heap =
      run_fleet(setup.content, setup.view, bottleneck, config);

  ASSERT_EQ(barrier.clients.size(), heap.clients.size());
  for (std::size_t i = 0; i < barrier.clients.size(); ++i) {
    EXPECT_EQ(ex::log_fingerprint(barrier.clients[i].log),
              ex::log_fingerprint(heap.clients[i].log))
        << "client " << barrier.clients[i].id;
  }
  EXPECT_EQ(fleet_fingerprint(barrier), fleet_fingerprint(heap));
}

TEST(CrossEngine, IdenticalOnPaperTraceAcrossFleetSizes) {
  const ex::ExperimentSetup setup =
      ex::plain_dash(ex::varying_600_trace(), "cross-engine");
  for (const int n : {1, 2, 10, 50}) {
    SCOPED_TRACE("clients=" + std::to_string(n));
    FleetConfig config = base_config(n, 21);
    config.arrivals = ArrivalProcess::kPoisson;
    config.arrival_rate_per_s = 0.2;
    config.churn.leave_probability = 0.5;
    config.churn.min_watch_s = 20.0;
    config.churn.max_watch_s = 90.0;
    // Capacity scales with the fleet so large-N runs stay contended but
    // finite; the comparison is engine-vs-engine, not across N.
    const BandwidthTrace bottleneck =
        BandwidthTrace::constant(600.0 * static_cast<double>(n) + 1300.0);
    expect_engines_identical(setup, bottleneck, config);
  }
}

TEST(CrossEngine, AutoEngineMatchesBothExplicitEngines) {
  // kAuto is pure dispatch policy: at every fleet size — and in particular
  // on both sides of the barrier/heap switch at kAutoBarrierMaxClients — it
  // must produce the exact fingerprint both explicit engines produce.
  EXPECT_EQ(resolve_engine(Engine::kAuto, 1), Engine::kBarrier);
  EXPECT_EQ(resolve_engine(Engine::kAuto, kAutoBarrierMaxClients),
            Engine::kBarrier);
  EXPECT_EQ(resolve_engine(Engine::kAuto, kAutoBarrierMaxClients + 1),
            Engine::kEventHeap);
  EXPECT_EQ(resolve_engine(Engine::kBarrier, 1000), Engine::kBarrier);
  EXPECT_EQ(resolve_engine(Engine::kEventHeap, 1), Engine::kEventHeap);

  const ex::ExperimentSetup setup =
      ex::plain_dash(ex::varying_600_trace(), "auto-engine");
  for (const std::size_t n : {std::size_t{1}, kAutoBarrierMaxClients,
                              kAutoBarrierMaxClients + 1, std::size_t{10}}) {
    SCOPED_TRACE("clients=" + std::to_string(n));
    FleetConfig config = base_config(static_cast<int>(n), 29);
    config.arrivals = ArrivalProcess::kDeterministic;
    config.arrival_interval_s = 5.0;
    const BandwidthTrace bottleneck =
        BandwidthTrace::constant(600.0 * static_cast<double>(n) + 900.0);

    std::string fingerprints[3];
    int i = 0;
    for (const Engine engine :
         {Engine::kAuto, Engine::kBarrier, Engine::kEventHeap}) {
      config.engine = engine;
      fingerprints[i++] =
          fleet_fingerprint(run_fleet(setup.content, setup.view, bottleneck, config));
    }
    EXPECT_EQ(fingerprints[0], fingerprints[1]);
    EXPECT_EQ(fingerprints[0], fingerprints[2]);
  }
}

TEST(CrossEngine, IdenticalOnSplitAudioPath) {
  const ex::ExperimentSetup setup =
      ex::plain_dash(BandwidthTrace::constant(1000.0), "cross-split");
  FleetConfig config = base_config(4, 3);
  config.arrivals = ArrivalProcess::kDeterministic;
  config.arrival_interval_s = 7.0;

  config.engine = Engine::kBarrier;
  FleetScheduler barrier_sched(setup.content, setup.view,
                               BandwidthTrace::constant(2000.0), config,
                               BandwidthTrace::constant(256.0));
  const FleetResult barrier = barrier_sched.run();

  config.engine = Engine::kEventHeap;
  FleetScheduler heap_sched(setup.content, setup.view,
                            BandwidthTrace::constant(2000.0), config,
                            BandwidthTrace::constant(256.0));
  const FleetResult heap = heap_sched.run();

  EXPECT_EQ(fleet_fingerprint(barrier), fleet_fingerprint(heap));
}

TEST(CrossEngine, ZeroWatchChurnDepartsAtArrival) {
  // leave_at == arrival exactly: every client churns out before streaming a
  // single chunk. Both engines must agree and leave no residual flows.
  const ex::ExperimentSetup setup =
      ex::plain_dash(BandwidthTrace::constant(900.0), "zero-watch");
  FleetConfig config = base_config(6, 13);
  config.arrivals = ArrivalProcess::kPoisson;
  config.arrival_rate_per_s = 0.5;
  config.churn.leave_probability = 1.0;
  config.churn.min_watch_s = 0.0;
  config.churn.max_watch_s = 0.0;

  for (const ClientPlan& plan : plan_population(config)) {
    EXPECT_EQ(plan.leave_at_s, plan.arrival_s);
  }

  for (const Engine engine : {Engine::kBarrier, Engine::kEventHeap}) {
    SCOPED_TRACE(engine == Engine::kBarrier ? "barrier" : "event_heap");
    config.engine = engine;
    const FleetResult result = run_fleet(
        setup.content, setup.view, BandwidthTrace::constant(1500.0), config);
    ASSERT_EQ(result.clients.size(), 6u);
    for (const ClientResult& client : result.clients) {
      EXPECT_TRUE(client.departed_early);
      EXPECT_FALSE(client.log.completed);
    }
    EXPECT_EQ(result.video_link.residual_flows, 0);
  }
  expect_engines_identical(setup, BandwidthTrace::constant(1500.0), config);
}

TEST(CrossEngine, ZeroSessionBudgetRetiresClientsAtArrival) {
  // The per-client sim cap equals the arrival time: every session is born at
  // its cap. Neither engine may hang, and no client streams anything.
  const ex::ExperimentSetup setup =
      ex::plain_dash(BandwidthTrace::constant(900.0), "zero-budget");
  FleetConfig config = base_config(5, 29);
  config.session.max_sim_time_s = 0.0;
  config.arrivals = ArrivalProcess::kPoisson;
  config.arrival_rate_per_s = 1.0;

  for (const Engine engine : {Engine::kBarrier, Engine::kEventHeap}) {
    SCOPED_TRACE(engine == Engine::kBarrier ? "barrier" : "event_heap");
    config.engine = engine;
    const FleetResult result = run_fleet(
        setup.content, setup.view, BandwidthTrace::constant(1500.0), config);
    ASSERT_EQ(result.clients.size(), 5u);
    for (const ClientResult& client : result.clients) {
      EXPECT_FALSE(client.log.completed);
      EXPECT_EQ(client.log.downloads.size(), 0u);
      EXPECT_DOUBLE_EQ(client.log.end_time_s, client.arrival_s);
    }
    EXPECT_EQ(result.video_link.residual_flows, 0);
  }
  expect_engines_identical(setup, BandwidthTrace::constant(1500.0), config);
}

TEST(Population, DeterministicPlansAndOrderedArrivals) {
  FleetConfig config;
  config.client_count = 50;
  config.seed = 99;
  config.arrivals = ArrivalProcess::kPoisson;
  config.arrival_rate_per_s = 1.0;
  config.players.push_back(exo_share(0.7));
  config.players.push_back(
      {"dashjs",
       [] { return std::make_unique<DashJsPlayerModel>(); },
       0.3});
  config.churn.leave_probability = 0.25;

  const auto first = plan_population(config);
  const auto second = plan_population(config);
  ASSERT_EQ(first.size(), 50u);
  bool saw_both_players = false;
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].arrival_s, second[i].arrival_s);
    EXPECT_EQ(first[i].player_index, second[i].player_index);
    EXPECT_EQ(first[i].leave_at_s, second[i].leave_at_s);
    if (i > 0) {
      EXPECT_GE(first[i].arrival_s, first[i - 1].arrival_s);
      if (first[i].player_index != first[i - 1].player_index) saw_both_players = true;
    }
    if (first[i].leave_at_s < first[i].arrival_s) {
      ADD_FAILURE() << "client " << i << " leaves before arriving";
    }
  }
  EXPECT_TRUE(saw_both_players);
}

TEST(Population, SimultaneousArrivalsAllZero) {
  FleetConfig config;
  config.client_count = 5;
  config.players.push_back(exo_share());
  for (const ClientPlan& plan : plan_population(config)) {
    EXPECT_EQ(plan.arrival_s, 0.0);
    EXPECT_TRUE(std::isinf(plan.leave_at_s));
  }
}

TEST(Fleet, MixedPlayerPopulationRuns) {
  const ex::ExperimentSetup setup =
      ex::plain_dash(ex::varying_600_trace(), "mixed");
  FleetConfig config = base_config(4, 17);
  config.players.clear();
  config.players.push_back(exo_share(0.5));
  config.players.push_back(
      {"coordinated",
       [] { return std::make_unique<CoordinatedPlayer>(); },
       0.5});
  config.arrivals = ArrivalProcess::kDeterministic;
  config.arrival_interval_s = 5.0;

  const FleetResult result = run_fleet(setup.content, setup.view,
                                       BandwidthTrace::constant(3000.0), config);
  ASSERT_EQ(result.clients.size(), 4u);
  for (const ClientResult& client : result.clients) {
    EXPECT_TRUE(client.log.completed) << "client " << client.id;
  }
  const FleetMetrics metrics = compute_fleet_metrics(result);
  EXPECT_EQ(metrics.completed, 4);
  EXPECT_GT(metrics.video_kbps.mean, 0.0);
  EXPECT_GT(result.steps, 0u);
}

}  // namespace
}  // namespace demuxabr::fleet
