#include "media/content.h"

#include <gtest/gtest.h>

namespace demuxabr {
namespace {

TEST(Content, DramaContentDimensions) {
  const Content content = make_drama_content();
  EXPECT_EQ(content.num_chunks(), 75);  // 300 s / 4 s
  EXPECT_DOUBLE_EQ(content.chunk_duration_s(), 4.0);
  EXPECT_DOUBLE_EQ(content.duration_s(), 300.0);
}

TEST(Content, EveryTrackHasChunks) {
  const Content content = make_drama_content();
  for (const auto* list : {&content.ladder().audio(), &content.ladder().video()}) {
    for (const TrackInfo& track : *list) {
      EXPECT_EQ(content.chunks(track.id).size(), 75u) << track.id;
    }
  }
}

TEST(Content, ChunkLookupByIndex) {
  const Content content = make_drama_content();
  const ChunkInfo& chunk = content.chunk("V3", 10);
  EXPECT_EQ(chunk.index, 10);
  EXPECT_DOUBLE_EQ(chunk.duration_s, 4.0);
  EXPECT_GT(chunk.size_bytes, 0);
}

TEST(Content, TrackStatsMatchDeclared) {
  const Content content = make_drama_content();
  for (const TrackInfo& track : content.ladder().video()) {
    const ChunkStats stats = content.track_stats(track.id);
    EXPECT_NEAR(stats.avg_kbps, track.avg_kbps, track.avg_kbps * 0.01) << track.id;
    EXPECT_NEAR(stats.peak_kbps, track.peak_kbps, track.peak_kbps * 0.01) << track.id;
  }
}

TEST(Content, TotalBytesIsSumOfTracks) {
  const Content content = make_drama_content();
  std::int64_t expected = 0;
  for (const auto* list : {&content.ladder().audio(), &content.ladder().video()}) {
    for (const TrackInfo& track : *list) {
      expected += content.track_stats(track.id).total_bytes;
    }
  }
  EXPECT_EQ(content.total_bytes(), expected);
  EXPECT_GT(content.total_bytes(), 0);
}

TEST(ContentBuilder, RoundsChunkCount) {
  const Content content =
      ContentBuilder(youtube_drama_ladder()).duration_s(10.0).chunk_duration_s(4.0).build();
  EXPECT_EQ(content.num_chunks(), 3);  // round(10/4) = 3
}

TEST(ContentBuilder, CustomChunkDuration) {
  const Content content =
      ContentBuilder(youtube_drama_ladder()).duration_s(60.0).chunk_duration_s(2.0).build();
  EXPECT_EQ(content.num_chunks(), 30);
  EXPECT_DOUBLE_EQ(content.chunk("A1", 0).duration_s, 2.0);
}

TEST(ContentBuilder, SeedChangesChunkSizes) {
  VbrModelParams p1;
  p1.seed = 1;
  VbrModelParams p2;
  p2.seed = 2;
  const Content a = ContentBuilder(youtube_drama_ladder()).vbr_params(p1).build();
  const Content b = ContentBuilder(youtube_drama_ladder()).vbr_params(p2).build();
  EXPECT_NE(a.chunk("V4", 0).size_bytes, b.chunk("V4", 0).size_bytes);
}

TEST(ContentBuilder, DeterministicForSameInputs) {
  const Content a = make_drama_content(4.0, 42);
  const Content b = make_drama_content(4.0, 42);
  for (int i = 0; i < a.num_chunks(); ++i) {
    EXPECT_EQ(a.chunk("V5", i).size_bytes, b.chunk("V5", i).size_bytes);
  }
}

}  // namespace
}  // namespace demuxabr
