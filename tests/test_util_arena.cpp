// MonotonicArena / ArenaAllocator unit tests: bump allocation and alignment,
// chunk growth, reset-and-reuse, and the allocator's container contract
// (null-arena heap fallback, rebinding, equality semantics).
#include "util/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <vector>

namespace demuxabr {
namespace {

TEST(MonotonicArena, BumpsWithinFirstChunk) {
  MonotonicArena arena(256);
  void* a = arena.allocate(16, 8);
  void* b = arena.allocate(16, 8);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(static_cast<std::byte*>(b) - static_cast<std::byte*>(a), 16);
  EXPECT_EQ(arena.bytes_allocated(), 32u);
  EXPECT_GE(arena.bytes_reserved(), 256u);
}

TEST(MonotonicArena, RespectsAlignment) {
  MonotonicArena arena(256);
  for (const std::size_t align : {1u, 2u, 4u, 8u, 16u}) {
    arena.allocate(1, 1);  // skew the offset
    void* p = arena.allocate(align, align);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
        << "align=" << align;
  }
}

TEST(MonotonicArena, GrowsNewChunksAndServesOversizeRequests) {
  MonotonicArena arena(64);
  // Overflow the first chunk: a fresh chunk is appended and reserved bytes
  // grow; already-handed-out memory is never moved or reused.
  void* first = arena.allocate(48, 8);
  *static_cast<std::uint64_t*>(first) = 0xDEADBEEFu;
  const std::size_t reserved_before = arena.bytes_reserved();
  void* second = arena.allocate(48, 8);
  EXPECT_NE(second, nullptr);
  EXPECT_GT(arena.bytes_reserved(), reserved_before);
  // A request larger than the next planned chunk gets a chunk of its own.
  void* big = arena.allocate(4096, 8);
  EXPECT_NE(big, nullptr);
  EXPECT_EQ(*static_cast<std::uint64_t*>(first), 0xDEADBEEFu);
}

TEST(MonotonicArena, ResetRewindsButKeepsReservation) {
  MonotonicArena arena(64);
  for (int i = 0; i < 8; ++i) arena.allocate(64, 8);
  const std::size_t reserved = arena.bytes_reserved();
  arena.reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
  // Post-reset allocation reuses the retained chunks: reservation is stable.
  for (int i = 0; i < 8; ++i) arena.allocate(64, 8);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(ArenaAllocator, NullArenaFallsBackToHeap) {
  // Default-constructed allocator (the state every default-constructed
  // container gets) must work standalone — solo sessions and tests never
  // see an arena.
  std::vector<int, ArenaAllocator<int>> v;
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 1000u);
  EXPECT_EQ(v[999], 999);
}

TEST(ArenaAllocator, ArenaBackedVectorDrawsFromArena) {
  MonotonicArena arena(1024);
  std::vector<int, ArenaAllocator<int>> v{ArenaAllocator<int>(&arena)};
  const std::size_t before = arena.bytes_allocated();
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_GT(arena.bytes_allocated(), before);
  EXPECT_EQ(v[99], 99);
}

TEST(ArenaAllocator, EqualityComparesArenaPointers) {
  MonotonicArena a(64);
  MonotonicArena b(64);
  EXPECT_EQ(ArenaAllocator<int>(&a), ArenaAllocator<int>(&a));
  EXPECT_NE(ArenaAllocator<int>(&a), ArenaAllocator<int>(&b));
  EXPECT_NE(ArenaAllocator<int>(&a), ArenaAllocator<int>());
  // Rebound allocators keep the arena: a container's internal rebinds stay
  // on the same memory source.
  const ArenaAllocator<double> rebound{ArenaAllocator<int>(&a)};
  EXPECT_EQ(rebound.arena(), &a);
}

TEST(ArenaAllocator, ContainerCopyAndMovePropagateTheArena) {
  MonotonicArena arena(1024);
  std::vector<int, ArenaAllocator<int>> v{ArenaAllocator<int>(&arena)};
  v.assign({1, 2, 3});
  std::vector<int, ArenaAllocator<int>> copy;  // heap-backed until assigned
  copy = v;                                    // POCCA: adopts the arena
  EXPECT_EQ(copy.get_allocator().arena(), &arena);
  std::vector<int, ArenaAllocator<int>> moved;
  moved = std::move(v);  // POCMA: steals buffer + allocator, no element copy
  EXPECT_EQ(moved.get_allocator().arena(), &arena);
  EXPECT_EQ(moved.size(), 3u);
}

TEST(ArenaAllocator, NodeContainersWork) {
  // deque exercises rebind + many small node allocations.
  MonotonicArena arena(256);
  std::deque<int, ArenaAllocator<int>> d{ArenaAllocator<int>(&arena)};
  for (int i = 0; i < 500; ++i) d.push_back(i);
  EXPECT_EQ(d.front(), 0);
  EXPECT_EQ(d.back(), 499);
  EXPECT_GT(arena.bytes_allocated(), 0u);
}

}  // namespace
}  // namespace demuxabr
