#include "players/estimators.h"

#include <gtest/gtest.h>

namespace demuxabr {
namespace {

ProgressSample sample(double t0, double t1, std::int64_t bytes,
                      MediaType type = MediaType::kVideo) {
  ProgressSample s;
  s.type = type;
  s.t0 = t0;
  s.t1 = t1;
  s.bytes = bytes;
  return s;
}

// --- Shaka estimator: the §3.3 behaviours ---

TEST(ShakaEstimator, DefaultEstimateUntilSamplesAccepted) {
  ShakaBandwidthEstimator estimator;
  EXPECT_DOUBLE_EQ(estimator.estimate_kbps(), 500.0);
  EXPECT_FALSE(estimator.has_good_estimate());
}

TEST(ShakaEstimator, FilterRejectsSmallIntervals) {
  // 1 Mbps solo flow: 15625 B per 0.125 s < 16 KB -> every sample rejected,
  // estimate pinned at the 500 kbps default (Fig 4(a)).
  ShakaBandwidthEstimator estimator;
  for (int i = 0; i < 400; ++i) {
    estimator.on_progress(sample(i * 0.125, (i + 1) * 0.125, 15625));
  }
  EXPECT_EQ(estimator.accepted_samples(), 0u);
  EXPECT_EQ(estimator.rejected_samples(), 400u);
  EXPECT_DOUBLE_EQ(estimator.estimate_kbps(), 500.0);
}

TEST(ShakaEstimator, AcceptsLargeIntervals) {
  // 1.2 Mbps solo flow: 18750 B per 0.125 s >= 16 KB -> accepted.
  ShakaBandwidthEstimator estimator;
  for (int i = 0; i < 40; ++i) {
    estimator.on_progress(sample(i * 0.125, (i + 1) * 0.125, 18750));
  }
  EXPECT_GT(estimator.accepted_samples(), 0u);
  EXPECT_TRUE(estimator.has_good_estimate());
  EXPECT_NEAR(estimator.estimate_kbps(), 1200.0, 30.0);
}

TEST(ShakaEstimator, SharedBottleneckHalvesPerFlowSamples) {
  // Two flows at 2.4 Mbps total: each flow's samples say 1.2 Mbps -> the
  // estimator underestimates a shared bottleneck by ~2x (§3.3).
  ShakaBandwidthEstimator estimator;
  for (int i = 0; i < 40; ++i) {
    estimator.on_progress(sample(i * 0.125, (i + 1) * 0.125, 18750, MediaType::kVideo));
    estimator.on_progress(sample(i * 0.125, (i + 1) * 0.125, 18750, MediaType::kAudio));
  }
  EXPECT_NEAR(estimator.estimate_kbps(), 1200.0, 30.0);  // not 2400
}

TEST(ShakaEstimator, SelectiveFilteringOverestimatesVaryingLinks) {
  // Low phase (400 kbps: 6250 B -> rejected), high phase (1.2 Mbps ->
  // accepted): estimate tracks the high phase only (Fig 4(b)).
  ShakaBandwidthEstimator estimator;
  double t = 0.0;
  for (int cycle = 0; cycle < 5; ++cycle) {
    for (int i = 0; i < 160; ++i, t += 0.125) {
      estimator.on_progress(sample(t, t + 0.125, 6250));
    }
    for (int i = 0; i < 80; ++i, t += 0.125) {
      estimator.on_progress(sample(t, t + 0.125, 18750));
    }
  }
  EXPECT_GT(estimator.estimate_kbps(), 1000.0);  // true average is ~667
}

TEST(ShakaEstimator, MinOfFastAndSlowIsConservative) {
  ShakaBandwidthEstimator estimator;
  // Saturate at high rate, then drop: fast EWMA falls quicker, min() takes it.
  for (int i = 0; i < 200; ++i) {
    estimator.on_progress(sample(i * 0.125, (i + 1) * 0.125, 40000));  // 2.56 Mbps
  }
  const double high = estimator.estimate_kbps();
  for (int i = 200; i < 230; ++i) {
    estimator.on_progress(sample(i * 0.125, (i + 1) * 0.125, 17000));  // 1.09 Mbps
  }
  EXPECT_LT(estimator.estimate_kbps(), high * 0.8);
}

TEST(ShakaEstimator, IgnoresZeroDurationSamples) {
  ShakaBandwidthEstimator estimator;
  estimator.on_progress(sample(1.0, 1.0, 50000));
  EXPECT_EQ(estimator.accepted_samples() + estimator.rejected_samples(), 0u);
}

// --- ExoPlayer sliding-percentile meter ---

TEST(ExoMeter, InitialEstimate) {
  ExoBandwidthMeter meter;
  EXPECT_DOUBLE_EQ(meter.estimate_kbps(), 1000.0);
}

TEST(ExoMeter, ConvergesToTransferRate) {
  ExoBandwidthMeter meter;
  for (int i = 0; i < 20; ++i) {
    meter.on_transfer_end(450000, 4.0);  // 900 kbps chunks
  }
  EXPECT_NEAR(meter.estimate_kbps(), 900.0, 10.0);
}

TEST(ExoMeter, MedianResistsOutliers) {
  ExoBandwidthMeter meter;
  for (int i = 0; i < 9; ++i) meter.on_transfer_end(450000, 4.0);  // 900 kbps
  meter.on_transfer_end(450000, 0.4);                              // one 9 Mbps burst
  EXPECT_NEAR(meter.estimate_kbps(), 900.0, 50.0);
}

TEST(ExoMeter, IgnoresDegenerateTransfers) {
  ExoBandwidthMeter meter;
  meter.on_transfer_end(0, 1.0);
  meter.on_transfer_end(1000, 0.0);
  EXPECT_DOUBLE_EQ(meter.estimate_kbps(), 1000.0);
}

// --- dash.js per-type window ---

TEST(WindowEstimator, DefaultUntilSamples) {
  WindowThroughputEstimator estimator(4, 123.0);
  EXPECT_DOUBLE_EQ(estimator.estimate_kbps(), 123.0);
  EXPECT_FALSE(estimator.has_samples());
}

TEST(WindowEstimator, MeanOfLastFour) {
  WindowThroughputEstimator estimator(4, 0.0);
  for (double kbps : {100.0, 200.0, 300.0, 400.0, 500.0}) {
    estimator.add_chunk_throughput(kbps);
  }
  EXPECT_DOUBLE_EQ(estimator.estimate_kbps(), (200.0 + 300.0 + 400.0 + 500.0) / 4.0);
}

TEST(WindowEstimator, IgnoresNonPositiveSamples) {
  WindowThroughputEstimator estimator(4, 0.0);
  estimator.add_chunk_throughput(-5.0);
  estimator.add_chunk_throughput(0.0);
  EXPECT_FALSE(estimator.has_samples());
}

// --- Aggregate (best-practice) estimator ---

TEST(AggregateEstimator, SumsConcurrentFlows) {
  // Two flows, each 600 kbps over the same intervals -> the estimator must
  // report ~1200 kbps, fixing Shaka's halving problem.
  AggregateThroughputEstimator estimator;
  for (int i = 0; i < 100; ++i) {
    const double t0 = i * 0.125;
    const double t1 = t0 + 0.125;
    estimator.on_progress(sample(t0, t1, 9375, MediaType::kVideo));
    estimator.on_progress(sample(t0, t1, 9375, MediaType::kAudio));
  }
  EXPECT_NEAR(estimator.estimate_kbps(), 1200.0, 40.0);
}

TEST(AggregateEstimator, SingleFlowMatchesRate) {
  AggregateThroughputEstimator estimator;
  for (int i = 0; i < 100; ++i) {
    estimator.on_progress(sample(i * 0.125, (i + 1) * 0.125, 9375));
  }
  EXPECT_NEAR(estimator.estimate_kbps(), 600.0, 20.0);
}

TEST(AggregateEstimator, NoSamplesMeansZero) {
  AggregateThroughputEstimator estimator;
  EXPECT_DOUBLE_EQ(estimator.estimate_kbps(), 0.0);
  EXPECT_FALSE(estimator.has_estimate());
}

TEST(AggregateEstimator, PartialFirstIntervalReportsRawThroughput) {
  AggregateThroughputEstimator estimator;
  estimator.on_progress(sample(0.0, 0.125, 12500));  // 800 kbps, not yet flushed
  EXPECT_TRUE(estimator.has_estimate());
  EXPECT_NEAR(estimator.estimate_kbps(), 800.0, 1.0);
}

TEST(AggregateEstimator, TracksRateChanges) {
  AggregateThroughputEstimator estimator;
  double t = 0.0;
  for (int i = 0; i < 200; ++i, t += 0.125) {
    estimator.on_progress(sample(t, t + 0.125, 18750));  // 1.2 Mbps
  }
  for (int i = 0; i < 200; ++i, t += 0.125) {
    estimator.on_progress(sample(t, t + 0.125, 4688));  // 300 kbps
  }
  EXPECT_NEAR(estimator.estimate_kbps(), 300.0, 60.0);
}

}  // namespace
}  // namespace demuxabr
