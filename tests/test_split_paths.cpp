// §4.1 different-servers scenario: audio and video ride separate network
// paths. Per-track bandwidth declarations let a per-path-aware client avoid
// over-committing the weaker path; an aggregate-only client cannot.
#include <gtest/gtest.h>

#include <set>

#include "core/coordinated_player.h"
#include "experiments/scenarios.h"

namespace demuxabr {
namespace {

namespace ex = demuxabr::experiments;

ex::ExperimentSetup narrow_audio_path_setup() {
  // Wide video path (1.5 Mbps), narrow audio path (180 kbps): only A1
  // (128 kbps) is sustainable on the audio side.
  return ex::split_path_dash(BandwidthTrace::constant(1500.0),
                             BandwidthTrace::constant(180.0), "split");
}

TEST(SplitPaths, PerPathPlayerRespectsWeakAudioPath) {
  auto setup = narrow_audio_path_setup();
  CoordinatedConfig config;
  config.per_path_estimation = true;
  CoordinatedPlayer player(config);
  const SessionLog log = ex::run(setup, player);
  ASSERT_TRUE(log.completed);
  EXPECT_EQ(log.stall_count(), 0u);
  // Audio never exceeds A1 — the only rendition the 180 kbps path carries.
  std::set<std::string> audio(log.audio_selection.begin(), log.audio_selection.end());
  EXPECT_EQ(audio.size(), 1u);
  EXPECT_TRUE(audio.count("A1"));
}

TEST(SplitPaths, AggregateOnlyPlayerUnderperformsOnAsymmetricPaths) {
  // The aggregate (serial, single-pipe) player survives the asymmetric
  // topology only because its duration-weighted estimate collapses toward
  // the slow audio path — leaving the wide video path mostly idle. The
  // per-path player extracts the video path's capacity.
  auto setup = narrow_audio_path_setup();
  CoordinatedPlayer aggregate_player;  // aggregate estimation (default)
  const QoeReport aggregate_qoe =
      compute_qoe(ex::run(setup, aggregate_player), setup.content.ladder());
  // Aggregate estimate is far below the 1.68 Mbps sum of the paths.
  EXPECT_LT(aggregate_player.bandwidth_estimate_kbps(), 0.7 * (1500.0 + 180.0));

  CoordinatedConfig config;
  config.per_path_estimation = true;
  CoordinatedPlayer per_path_player(config);
  const QoeReport per_path_qoe =
      compute_qoe(ex::run(setup, per_path_player), setup.content.ladder());
  EXPECT_GT(per_path_qoe.avg_video_kbps, aggregate_qoe.avg_video_kbps);
}

TEST(SplitPaths, PerPathEstimatesConverge) {
  auto setup = narrow_audio_path_setup();
  CoordinatedConfig config;
  config.per_path_estimation = true;
  CoordinatedPlayer player(config);
  (void)ex::run(setup, player);
  EXPECT_NEAR(player.path_estimate_kbps(MediaType::kVideo), 1500.0, 300.0);
  EXPECT_NEAR(player.path_estimate_kbps(MediaType::kAudio), 180.0, 60.0);
}

TEST(SplitPaths, SymmetricPathsBehaveLikeShared) {
  // Both paths ample: per-path mode should reach the same quality region as
  // the shared-path configuration.
  auto setup = ex::split_path_dash(BandwidthTrace::constant(2000.0),
                                   BandwidthTrace::constant(2000.0), "sym");
  CoordinatedConfig config;
  config.per_path_estimation = true;
  CoordinatedPlayer player(config);
  const SessionLog log = ex::run(setup, player);
  ASSERT_TRUE(log.completed);
  EXPECT_EQ(log.stall_count(), 0u);
  const QoeReport qoe = compute_qoe(log, setup.content.ladder());
  // Ramps through the staircase (hold time between up-switches), settling
  // at V4+A3: a healthy high-quality region.
  EXPECT_GT(qoe.avg_video_kbps, 550.0);
  EXPECT_GT(qoe.avg_audio_kbps, 190.0);
  EXPECT_EQ(log.video_selection.back(), "V4");
}

TEST(SplitPaths, PerPathModeHarmlessOnSharedBottleneck) {
  // On a genuinely shared link, per-path mode still works (each estimator
  // sees its own flows' share; the sum approximates the pipe).
  auto setup = ex::bestpractice_dash(BandwidthTrace::constant(900.0), "shared");
  CoordinatedConfig config;
  config.per_path_estimation = true;
  CoordinatedPlayer player(config);
  const SessionLog log = ex::run(setup, player);
  EXPECT_TRUE(log.completed);
  EXPECT_EQ(log.stall_count(), 0u);
}

TEST(SplitPaths, VideoPathIsTheBottleneck) {
  // Narrow video path: video must stay low while audio can be rich.
  auto setup = ex::split_path_dash(BandwidthTrace::constant(300.0),
                                   BandwidthTrace::constant(800.0), "narrow-video");
  CoordinatedConfig config;
  config.per_path_estimation = true;
  CoordinatedPlayer player(config);
  const SessionLog log = ex::run(setup, player);
  ASSERT_TRUE(log.completed);
  EXPECT_EQ(log.stall_count(), 0u);
  const QoeReport qoe = compute_qoe(log, setup.content.ladder());
  EXPECT_LE(qoe.avg_video_kbps, 260.0);  // V1/V2 territory
}

}  // namespace
}  // namespace demuxabr
