// Request-abandonment support: engine mechanics (cancel mid-flight, wasted
// bytes accounting, re-request) and the dash.js AbandonRequestsRule under a
// bandwidth cliff.
#include <gtest/gtest.h>

#include "experiments/scenarios.h"
#include "manifest/builder.h"
#include "players/dashjs.h"
#include "sim/session.h"

namespace demuxabr {
namespace {

namespace ex = demuxabr::experiments;

/// Scripted player that abandons the first video chunk once N samples
/// arrived, then downloads the lowest track for everything.
class AbandoningPlayer : public PlayerAdapter {
 public:
  explicit AbandoningPlayer(int abandon_after_samples)
      : abandon_after_samples_(abandon_after_samples) {}

  [[nodiscard]] std::string name() const override { return "abandoner"; }
  void start(const ManifestView& view) override { view_ = view; }

  std::optional<DownloadRequest> next_request(const PlayerContext& ctx) override {
    for (MediaType type : {MediaType::kVideo, MediaType::kAudio}) {
      if (ctx.downloading(type)) continue;
      if (ctx.next_chunk(type) >= ctx.total_chunks) continue;
      if (ctx.buffer_s(type) >= 30.0) continue;
      DownloadRequest request;
      request.type = type;
      // First video attempt goes for the top track; after abandoning we
      // retry on the bottom one.
      const auto& tracks = view_.tracks(type);
      request.track_id = (type == MediaType::kVideo && !abandoned_)
                             ? tracks.back().id
                             : tracks.front().id;
      request.chunk_index = ctx.next_chunk(type);
      return request;
    }
    return std::nullopt;
  }

  bool should_abandon(const ProgressSample& sample, const PlayerContext& ctx) override {
    (void)ctx;
    if (abandoned_ || sample.type != MediaType::kVideo) return false;
    if (++video_samples_ >= abandon_after_samples_) {
      abandoned_ = true;
      return true;
    }
    return false;
  }

  bool abandoned_ = false;

 private:
  int abandon_after_samples_;
  int video_samples_ = 0;
  ManifestView view_;
};

TEST(Abandonment, EngineCancelsAndReRequests) {
  const Content content = make_drama_content();
  const ManifestView view = view_from_mpd(build_dash_mpd(content));
  AbandoningPlayer player(4);
  const Network network = Network::shared(BandwidthTrace::constant(1500.0));
  const SessionLog log = run_session(content, view, network, player);

  ASSERT_TRUE(log.completed);
  EXPECT_TRUE(player.abandoned_);
  ASSERT_EQ(log.abandoned.size(), 1u);
  EXPECT_EQ(log.abandoned[0].type, MediaType::kVideo);
  EXPECT_EQ(log.abandoned[0].chunk_index, 0);
  EXPECT_EQ(log.abandoned[0].track_id, "V6");
  EXPECT_GT(log.wasted_bytes(), 0);
  // The chunk was re-downloaded on the lowest track.
  EXPECT_EQ(log.video_selection[0], "V1");
  // Every chunk position still downloaded exactly once (completions).
  int video_chunks = 0;
  for (const DownloadRecord& d : log.downloads) {
    if (d.type == MediaType::kVideo) ++video_chunks;
  }
  EXPECT_EQ(video_chunks, content.num_chunks());
}

TEST(Abandonment, WastedBytesBoundedByAbandonTime) {
  const Content content = make_drama_content();
  const ManifestView view = view_from_mpd(build_dash_mpd(content));
  AbandoningPlayer player(2);  // abandon after ~0.25 s of transfer
  const Network network = Network::shared(BandwidthTrace::constant(1000.0));
  const SessionLog log = run_session(content, view, network, player);
  // <= ~0.3 s at 1 Mbps = ~37.5 KB.
  EXPECT_LE(log.wasted_bytes(), 50000);
}

TEST(Abandonment, DashJsAbandonsOnBandwidthCliff) {
  // 2 Mbps for 60 s (drives selection up), then a 150 kbps cliff: the
  // in-flight high-bitrate chunk's projected time explodes -> abandon.
  auto setup = ex::fig5_dashjs_700();
  setup.trace = BandwidthTrace::steps({{60.0, 2000.0}, {600.0, 150.0}}, false);
  setup.session.max_sim_time_s = 4000.0;
  DashJsPlayerModel player;
  const SessionLog log = ex::run(setup, player);
  EXPECT_GE(log.abandoned.size(), 1u);
  // Every abandoned request was for a non-bottom video/audio track.
  for (const DownloadRecord& d : log.abandoned) {
    EXPECT_NE(d.track_id, "V1");
    EXPECT_NE(d.track_id, "A1");
  }
}

TEST(Abandonment, DashJsRuleFeedsEstimatorAndDropsQuality) {
  auto setup = ex::fig5_dashjs_700();
  setup.trace = BandwidthTrace::steps({{60.0, 2000.0}, {600.0, 150.0}}, false);
  setup.session.max_sim_time_s = 4000.0;
  DashJsPlayerModel player;
  const SessionLog log = ex::run(setup, player);
  // After the cliff the selection must fall to the bottom rungs.
  ASSERT_TRUE(log.completed);
  EXPECT_EQ(log.video_selection.back(), "V1");
}

TEST(Abandonment, DisabledRuleNeverAbandons) {
  auto setup = ex::fig5_dashjs_700();
  setup.trace = BandwidthTrace::steps({{60.0, 2000.0}, {600.0, 150.0}}, false);
  setup.session.max_sim_time_s = 4000.0;
  DashJsConfig config;
  config.enable_abandonment = false;
  DashJsPlayerModel player(config);
  const SessionLog log = ex::run(setup, player);
  EXPECT_TRUE(log.abandoned.empty());
}

TEST(Abandonment, SteadyStateRemainsHealthy) {
  // At the Fig 5 operating point the rule may occasionally cancel an
  // over-ambitious chunk (dash.js's BOLA does pick V4 at 700 kbps), but the
  // session must stay healthy and the waste must be marginal.
  auto setup = ex::fig5_dashjs_700();
  DashJsPlayerModel player;
  const SessionLog log = ex::run(setup, player);
  ASSERT_TRUE(log.completed);
  EXPECT_LE(static_cast<double>(log.wasted_bytes()),
            0.05 * static_cast<double>(log.total_downloaded_bytes()));
}

}  // namespace
}  // namespace demuxabr
