// Parallel shard execution (fleet/shard.h) + streaming metrics mode, in
// three tiers:
//
//  1. Partition unit tests: union-find components come back ordered by
//     smallest link index, sub-specs validate, dark links fold into shard
//     0, client ids renumber monotonically and audio paths stay coupled
//     with their video paths.
//  2. Determinism: fleet fingerprints are byte-identical between threads=1
//     (the serial whole-topology path) and sharded runs at threads {2, 8,
//     0=hardware}, in both full-log and streaming-metrics mode. These runs
//     execute shard engines concurrently on the ThreadPool, so the fleet
//     binary doubles as the TSan coverage of the shard runner (CI runs
//     ctest -LE fleet_large under -fsanitize=thread).
//  3. Streaming-vs-full equivalence: identical seeds, one run retaining
//     every log and one aggregating O(1)-per-client — exact fields (counts,
//     digest, fairness, means) agree to float noise, percentiles agree
//     within the sketch's relative-error bound against the exact order
//     statistics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "experiments/scenarios.h"
#include "fleet/metrics.h"
#include "fleet/population.h"
#include "fleet/scheduler.h"
#include "fleet/shard.h"
#include "fleet/topology.h"
#include "players/dashjs.h"
#include "players/exoplayer.h"
#include "util/strings.h"

namespace demuxabr::fleet {
namespace {

namespace ex = demuxabr::experiments;

std::unique_ptr<PlayerAdapter> make_exo() {
  return std::make_unique<ExoPlayerModel>();
}

std::unique_ptr<PlayerAdapter> make_dashjs() {
  return std::make_unique<DashJsPlayerModel>();
}

FleetConfig base_config(int clients, std::uint64_t seed = 7) {
  FleetConfig config;
  config.client_count = clients;
  config.seed = seed;
  config.players.push_back({"exoplayer", &make_exo, 1.0});
  config.session.max_sim_time_s = 1800.0;
  return config;
}

/// K causally independent edge→core chains (no shared links), one path per
/// chain; clients round-robin across them (default modulo assignment).
TopologySpec disjoint_chains(int k, double edge_kbps, double core_kbps) {
  TopologySpec spec;
  for (int i = 0; i < k; ++i) {
    const std::size_t edge =
        spec.add_link(format("edge-%d", i),
                      BandwidthTrace::constant(edge_kbps + 300.0 * i));
    const std::size_t core =
        spec.add_link(format("core-%d", i), BandwidthTrace::constant(core_kbps));
    spec.add_path(format("chain-%d", i), {edge, core});
  }
  return spec;
}

// --- 1. Partition unit tests. ---

TEST(PartitionFleet, ComponentsOrderedDarkLinkFoldsAndIdsRenumber) {
  TopologySpec spec = disjoint_chains(3, 2000.0, 4000.0);
  spec.add_link("dark", BandwidthTrace::constant(0.0));  // no path rides it
  FleetConfig config = base_config(10);
  config.topology = spec;
  const std::vector<ClientPlan> plans = plan_population(config);
  const ShardPartition partition = partition_fleet(spec, plans);

  ASSERT_EQ(partition.shards.size(), 3u);
  // Shards ordered by smallest global link index; the dark link (index 6)
  // is causally inert and rides along in shard 0.
  EXPECT_EQ(partition.shards[0].link_ids, (std::vector<std::size_t>{0, 1, 6}));
  EXPECT_EQ(partition.shards[1].link_ids, (std::vector<std::size_t>{2, 3}));
  EXPECT_EQ(partition.shards[2].link_ids, (std::vector<std::size_t>{4, 5}));
  EXPECT_EQ(partition.shards[0].path_ids, (std::vector<std::size_t>{0}));
  EXPECT_EQ(partition.shards[1].path_ids, (std::vector<std::size_t>{1}));
  EXPECT_EQ(partition.shards[2].path_ids, (std::vector<std::size_t>{2}));

  // 10 clients round-robin over 3 chains: ids {0,3,6,9} / {1,4,7} / {2,5,8}.
  EXPECT_EQ(partition.shards[0].client_ids, (std::vector<int>{0, 3, 6, 9}));
  EXPECT_EQ(partition.shards[1].client_ids, (std::vector<int>{1, 4, 7}));
  EXPECT_EQ(partition.shards[2].client_ids, (std::vector<int>{2, 5, 8}));

  std::size_t total_clients = 0;
  for (const FleetShard& shard : partition.shards) {
    EXPECT_EQ(shard.spec.validate(), "");
    total_clients += shard.plans.size();
    // Local ids are the rank of the global id: dense, monotone in plan
    // order (simultaneous arrivals keep id order).
    for (std::size_t c = 0; c < shard.plans.size(); ++c) {
      EXPECT_EQ(shard.plans[c].id, static_cast<int>(c));
    }
    // Explicit per-local-client assignment, one entry per client.
    EXPECT_EQ(shard.spec.video_assignment.size(), shard.plans.size());
  }
  EXPECT_EQ(total_clients, plans.size());
}

TEST(PartitionFleet, SplitAudioCouplesBothPathsIntoOneShard) {
  // Two components, each carrying a video chain and a separate audio pipe
  // into the same per-component core: a client's audio path must land in
  // the same shard as its video path.
  TopologySpec spec;
  std::vector<std::size_t> video_paths;
  std::vector<std::size_t> audio_paths;
  for (int i = 0; i < 2; ++i) {
    const std::size_t core =
        spec.add_link(format("core-%d", i), BandwidthTrace::constant(4000.0));
    const std::size_t vedge =
        spec.add_link(format("vedge-%d", i), BandwidthTrace::constant(2200.0));
    const std::size_t apipe =
        spec.add_link(format("apipe-%d", i), BandwidthTrace::constant(320.0));
    video_paths.push_back(spec.add_path(format("video-%d", i), {vedge, core}));
    audio_paths.push_back(spec.add_path(format("audio-%d", i), {apipe, core}));
  }
  spec.video_assignment = video_paths;
  spec.audio_assignment = audio_paths;

  FleetConfig config = base_config(8);
  config.topology = spec;
  const std::vector<ClientPlan> plans = plan_population(config);
  const ShardPartition partition = partition_fleet(spec, plans);

  ASSERT_EQ(partition.shards.size(), 2u);
  for (std::size_t s = 0; s < 2; ++s) {
    const FleetShard& shard = partition.shards[s];
    EXPECT_EQ(shard.spec.validate(), "");
    EXPECT_EQ(shard.spec.paths.size(), 2u);
    EXPECT_EQ(shard.plans.size(), 4u);
    EXPECT_EQ(shard.spec.audio_assignment.size(), shard.plans.size());
    // Both of each client's paths resolve inside the shard.
    for (std::size_t c = 0; c < shard.plans.size(); ++c) {
      EXPECT_LT(shard.spec.video_assignment[c], shard.spec.paths.size());
      EXPECT_LT(shard.spec.audio_assignment[c], shard.spec.paths.size());
      EXPECT_NE(shard.spec.video_assignment[c], shard.spec.audio_assignment[c]);
    }
  }
}

TEST(PartitionFleet, SingleComponentYieldsOneShard) {
  // A shared core joins every chain into one component — nothing to split.
  TopologySpec spec;
  const std::size_t core = spec.add_link("core", BandwidthTrace::constant(5000.0));
  for (int i = 0; i < 3; ++i) {
    const std::size_t edge =
        spec.add_link(format("edge-%d", i), BandwidthTrace::constant(2000.0));
    spec.add_path(format("path-%d", i), {edge, core});
  }
  FleetConfig config = base_config(6);
  config.topology = spec;
  const ShardPartition partition =
      partition_fleet(spec, plan_population(config));
  ASSERT_EQ(partition.shards.size(), 1u);
  EXPECT_EQ(partition.shards[0].plans.size(), 6u);
}

// --- 2. Determinism: byte-identical fingerprints across thread counts. ---

TEST(ShardedFleet, FullLogFingerprintByteIdenticalAcrossThreadCounts) {
  const ex::ExperimentSetup setup =
      ex::plain_dash(ex::varying_600_trace(), "shard-threads");
  const BandwidthTrace unused = BandwidthTrace::constant(1000.0);
  FleetConfig config = base_config(12, 19);
  config.players.push_back({"dashjs", &make_dashjs, 0.5});
  config.arrivals = ArrivalProcess::kPoisson;
  config.arrival_rate_per_s = 0.4;
  config.churn.leave_probability = 0.3;
  config.churn.min_watch_s = 20.0;
  config.churn.max_watch_s = 90.0;
  config.topology = disjoint_chains(4, 1800.0, 3600.0);

  config.threads = 1;  // the serial whole-topology reference path
  const FleetResult serial =
      run_fleet(setup.content, setup.view, unused, config);
  const std::string expected = fleet_fingerprint(serial);
  ASSERT_EQ(serial.clients.size(), 12u);

  for (const int threads : {2, 8, 0}) {
    config.threads = threads;
    const FleetResult sharded =
        run_fleet(setup.content, setup.view, unused, config);
    EXPECT_EQ(fleet_fingerprint(sharded), expected) << "threads=" << threads;
    EXPECT_EQ(sharded.client_digest, serial.client_digest)
        << "threads=" << threads;
    EXPECT_EQ(sharded.steps, serial.steps) << "threads=" << threads;
  }
}

TEST(ShardedFleet, StreamingFingerprintByteIdenticalAcrossThreadCounts) {
  const ex::ExperimentSetup setup =
      ex::plain_dash(ex::varying_600_trace(), "shard-streaming");
  const BandwidthTrace unused = BandwidthTrace::constant(1000.0);
  FleetConfig config = base_config(12, 29);
  config.arrivals = ArrivalProcess::kDeterministic;
  config.arrival_interval_s = 3.0;
  config.topology = disjoint_chains(3, 2000.0, 4200.0);
  config.streaming.client_threshold = 1;  // streaming mode always on

  config.threads = 1;
  const FleetResult serial =
      run_fleet(setup.content, setup.view, unused, config);
  ASSERT_TRUE(serial.streaming.has_value());
  EXPECT_TRUE(serial.clients.empty());
  const std::string expected = fleet_fingerprint(serial);

  for (const int threads : {2, 8}) {
    config.threads = threads;
    const FleetResult sharded =
        run_fleet(setup.content, setup.view, unused, config);
    ASSERT_TRUE(sharded.streaming.has_value()) << "threads=" << threads;
    EXPECT_EQ(fleet_fingerprint(sharded), expected) << "threads=" << threads;
    EXPECT_EQ(sharded.streaming->clients, serial.streaming->clients);
    // Sketch bucket counts are integers: every percentile matches exactly,
    // not just within tolerance.
    for (const double q : {0.25, 0.5, 0.9, 0.99}) {
      EXPECT_DOUBLE_EQ(sharded.streaming->video_kbps.quantile(q),
                       serial.streaming->video_kbps.quantile(q))
          << "threads=" << threads << " q=" << q;
    }
  }
}

TEST(ShardedFleet, SplitAudioShardedMatchesSerial) {
  const ex::ExperimentSetup setup =
      ex::plain_dash(ex::varying_600_trace(), "shard-split");
  const BandwidthTrace unused = BandwidthTrace::constant(1000.0);
  TopologySpec spec;
  std::vector<std::size_t> video_paths;
  std::vector<std::size_t> audio_paths;
  for (int i = 0; i < 2; ++i) {
    const std::size_t core =
        spec.add_link(format("core-%d", i), BandwidthTrace::constant(4000.0));
    const std::size_t vedge =
        spec.add_link(format("vedge-%d", i), BandwidthTrace::constant(2200.0));
    const std::size_t apipe =
        spec.add_link(format("apipe-%d", i), BandwidthTrace::constant(320.0));
    video_paths.push_back(spec.add_path(format("video-%d", i), {vedge, core}));
    audio_paths.push_back(spec.add_path(format("audio-%d", i), {apipe, core}));
  }
  spec.video_assignment = video_paths;
  spec.audio_assignment = audio_paths;

  FleetConfig config = base_config(6, 3);
  config.arrivals = ArrivalProcess::kDeterministic;
  config.arrival_interval_s = 5.0;
  config.topology = std::move(spec);

  config.threads = 1;
  const FleetResult serial =
      run_fleet(setup.content, setup.view, unused, config);
  EXPECT_TRUE(serial.split_audio);
  config.threads = 4;
  const FleetResult sharded =
      run_fleet(setup.content, setup.view, unused, config);
  EXPECT_TRUE(sharded.split_audio);
  EXPECT_EQ(fleet_fingerprint(sharded), fleet_fingerprint(serial));
  // Path attribution survives the local→global renumbering.
  for (const ClientResult& client : sharded.clients) {
    EXPECT_NE(client.video_path, client.audio_path);
  }
}

TEST(ShardedFleet, ThreadsWithoutTopologyStaysSerialPath) {
  // threads != 1 with no topology has nothing to shard: same result object
  // through the plain serial path.
  const ex::ExperimentSetup setup =
      ex::plain_dash(ex::varying_600_trace(), "shard-notopo");
  const BandwidthTrace trace = BandwidthTrace::constant(2500.0);
  FleetConfig config = base_config(4, 21);
  config.threads = 1;
  const FleetResult serial = run_fleet(setup.content, setup.view, trace, config);
  config.threads = 8;
  const FleetResult threaded = run_fleet(setup.content, setup.view, trace, config);
  EXPECT_EQ(fleet_fingerprint(threaded), fleet_fingerprint(serial));
}

// --- 3. Streaming-vs-full equivalence on identical seeds. ---

TEST(StreamingMetrics, MatchesFullLogModeWithinSketchTolerance) {
  const ex::ExperimentSetup setup =
      ex::plain_dash(ex::varying_600_trace(), "streaming-vs-full");
  const BandwidthTrace unused = BandwidthTrace::constant(1000.0);
  FleetConfig config = base_config(24, 31);
  config.players.push_back({"dashjs", &make_dashjs, 0.5});
  config.arrivals = ArrivalProcess::kDeterministic;
  config.arrival_interval_s = 2.0;
  config.churn.leave_probability = 0.25;
  config.churn.min_watch_s = 30.0;
  config.churn.max_watch_s = 120.0;
  config.topology = disjoint_chains(3, 1900.0, 3800.0);
  config.threads = 1;

  const FleetResult full = run_fleet(setup.content, setup.view, unused, config);
  FleetConfig streaming_config = config;
  streaming_config.streaming.client_threshold = 1;
  const FleetResult streamed =
      run_fleet(setup.content, setup.view, unused, streaming_config);

  ASSERT_TRUE(streamed.streaming.has_value());
  EXPECT_TRUE(streamed.clients.empty());
  ASSERT_EQ(full.clients.size(), 24u);
  // The order-invariant digest hashes only mode-independent fields: it must
  // agree bit for bit between a run that kept every log and one that kept
  // none — the strongest cheap witness that minimal-log sessions behaved
  // identically.
  EXPECT_EQ(streamed.client_digest, full.client_digest);
  EXPECT_DOUBLE_EQ(streamed.end_time_s, full.end_time_s);

  const FleetMetrics fm = compute_fleet_metrics(full);
  const FleetMetrics sm = compute_fleet_metrics(streamed);
  EXPECT_EQ(sm.clients, fm.clients);
  EXPECT_EQ(sm.completed, fm.completed);
  EXPECT_EQ(sm.departed_early, fm.departed_early);
  // Exact accumulations — only float summation order differs (retirement
  // order vs client-id order).
  const auto near_rel = [](double a, double b) {
    return std::abs(a - b) <= 1e-9 * std::max({std::abs(a), std::abs(b), 1.0});
  };
  EXPECT_TRUE(near_rel(sm.mean_qoe, fm.mean_qoe)) << sm.mean_qoe << " vs " << fm.mean_qoe;
  EXPECT_TRUE(near_rel(sm.jain_fairness_video, fm.jain_fairness_video));
  EXPECT_TRUE(near_rel(sm.jain_fairness_throughput, fm.jain_fairness_throughput));
  EXPECT_TRUE(near_rel(sm.video_kbps.mean, fm.video_kbps.mean));
  EXPECT_DOUBLE_EQ(sm.video_kbps.min, fm.video_kbps.min);
  EXPECT_DOUBLE_EQ(sm.video_kbps.max, fm.video_kbps.max);

  // Percentiles: sketch-approximate, within alpha of the exact order
  // statistic at rank q * (n - 1) derived from the retained full logs.
  std::vector<double> exact_kbps;
  for (const ClientResult& client : full.clients) {
    exact_kbps.push_back(client.qoe.avg_video_kbps);
  }
  std::sort(exact_kbps.begin(), exact_kbps.end());
  const double alpha = streamed.streaming->video_kbps.relative_error();
  for (const double q : {0.25, 0.5, 0.75, 0.9}) {
    const double rank = q * static_cast<double>(exact_kbps.size() - 1);
    const double exact = exact_kbps[static_cast<std::size_t>(rank)];
    EXPECT_NEAR(streamed.streaming->video_kbps.quantile(q), exact,
                alpha * exact + 1e-9)
        << "q=" << q;
  }

  // Per-path groups agree on membership and means.
  ASSERT_EQ(sm.path_groups.size(), fm.path_groups.size());
  for (std::size_t p = 0; p < fm.path_groups.size(); ++p) {
    EXPECT_EQ(sm.path_groups[p].clients, fm.path_groups[p].clients);
    EXPECT_EQ(sm.path_groups[p].name, fm.path_groups[p].name);
    EXPECT_TRUE(near_rel(sm.path_groups[p].mean_video_kbps,
                         fm.path_groups[p].mean_video_kbps));
    EXPECT_TRUE(near_rel(sm.path_groups[p].jain_fairness_video,
                         fm.path_groups[p].jain_fairness_video));
  }
}

TEST(StreamingMetrics, ThresholdGatesTheMode) {
  const ex::ExperimentSetup setup =
      ex::plain_dash(ex::varying_600_trace(), "streaming-threshold");
  const BandwidthTrace trace = BandwidthTrace::constant(2500.0);
  FleetConfig config = base_config(4, 5);
  config.streaming.client_threshold = 5;  // fleet of 4 stays below
  const FleetResult below = run_fleet(setup.content, setup.view, trace, config);
  EXPECT_FALSE(below.streaming.has_value());
  EXPECT_EQ(below.clients.size(), 4u);

  config.streaming.client_threshold = 4;  // exactly at the threshold: on
  const FleetResult at = run_fleet(setup.content, setup.view, trace, config);
  ASSERT_TRUE(at.streaming.has_value());
  EXPECT_TRUE(at.clients.empty());
  EXPECT_EQ(at.streaming->clients, 4u);
  EXPECT_EQ(at.client_digest, below.client_digest);
}

}  // namespace
}  // namespace demuxabr::fleet
