// Assorted edge-case coverage across modules: Result/Status semantics,
// PlayerContext helpers, session config variants, estimator boundaries,
// controller interplay cases.
#include <gtest/gtest.h>

#include "core/coordinated_player.h"
#include "experiments/scenarios.h"
#include "manifest/builder.h"
#include "players/estimators.h"
#include "sim/session.h"
#include "util/result.h"

namespace demuxabr {
namespace {

namespace ex = demuxabr::experiments;

TEST(Result, ValueAndErrorPaths) {
  Result<int> ok_result = 42;
  EXPECT_TRUE(ok_result.ok());
  EXPECT_EQ(*ok_result, 42);
  Result<int> err_result = Error{"boom"};
  EXPECT_FALSE(err_result.ok());
  EXPECT_EQ(err_result.error(), "boom");
}

TEST(Result, TakeMovesValue) {
  Result<std::string> result = std::string("payload");
  const std::string taken = std::move(result).take();
  EXPECT_EQ(taken, "payload");
}

TEST(Status, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  Status failed = Error{"nope"};
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.error(), "nope");
}

TEST(PlayerContext, TypedAccessors) {
  PlayerContext ctx;
  ctx.audio_buffer_s = 3.0;
  ctx.video_buffer_s = 7.0;
  ctx.next_audio_chunk = 2;
  ctx.next_video_chunk = 5;
  ctx.audio_downloading = true;
  EXPECT_DOUBLE_EQ(ctx.buffer_s(MediaType::kAudio), 3.0);
  EXPECT_DOUBLE_EQ(ctx.buffer_s(MediaType::kVideo), 7.0);
  EXPECT_EQ(ctx.next_chunk(MediaType::kAudio), 2);
  EXPECT_EQ(ctx.next_chunk(MediaType::kVideo), 5);
  EXPECT_TRUE(ctx.downloading(MediaType::kAudio));
  EXPECT_FALSE(ctx.downloading(MediaType::kVideo));
}

TEST(ProgressSample, ThroughputMath) {
  ProgressSample sample;
  sample.t0 = 1.0;
  sample.t1 = 1.125;
  sample.bytes = 12500;  // 100000 bits over 0.125 s = 800 kbps
  EXPECT_NEAR(sample.throughput_kbps(), 800.0, 1e-9);
  EXPECT_DOUBLE_EQ(sample.duration_s(), 0.125);
}

TEST(Session, RecordSeriesOffKeepsLogLean) {
  auto setup = ex::bestpractice_dash(BandwidthTrace::constant(900.0), "lean");
  setup.session.record_series = false;
  CoordinatedPlayer player;
  const SessionLog log = ex::run(setup, player);
  EXPECT_TRUE(log.completed);
  EXPECT_TRUE(log.video_buffer_s.empty());
  EXPECT_TRUE(log.bandwidth_estimate_kbps.empty());
  EXPECT_TRUE(log.achieved_throughput_kbps.empty());
  // Selections and downloads are always recorded.
  EXPECT_FALSE(log.video_selection.empty());
  EXPECT_FALSE(log.downloads.empty());
}

TEST(Session, CustomDeltaChangesSamplingGranularity) {
  auto fine = ex::bestpractice_dash(BandwidthTrace::constant(900.0), "fine");
  fine.session.delta_s = 0.0625;
  CoordinatedPlayer p1;
  const SessionLog fine_log = ex::run(fine, p1);

  auto coarse = ex::bestpractice_dash(BandwidthTrace::constant(900.0), "coarse");
  coarse.session.delta_s = 0.5;
  CoordinatedPlayer p2;
  const SessionLog coarse_log = ex::run(coarse, p2);

  EXPECT_GT(fine_log.video_buffer_s.size(), coarse_log.video_buffer_s.size() * 4);
  EXPECT_TRUE(fine_log.completed);
  EXPECT_TRUE(coarse_log.completed);
}

TEST(ShakaEstimator, ExactFilterBoundary) {
  ShakaBandwidthEstimator estimator;
  ProgressSample sample;
  sample.t0 = 0.0;
  sample.t1 = 0.125;
  sample.bytes = 16 * 1024 - 1;  // one byte under the threshold
  estimator.on_progress(sample);
  EXPECT_EQ(estimator.accepted_samples(), 0u);
  sample.bytes = 16 * 1024;  // exactly at the threshold
  estimator.on_progress(sample);
  EXPECT_EQ(estimator.accepted_samples(), 1u);
}

TEST(ShakaEstimator, MinWeightGateUsesDefaultUntilMet) {
  ShakaEstimatorConfig config;
  config.min_total_weight_s = 1.0;
  ShakaBandwidthEstimator estimator(config);
  ProgressSample sample;
  sample.bytes = 50000;
  for (int i = 0; i < 7; ++i) {  // 7 * 0.125 = 0.875 < 1.0
    sample.t0 = i * 0.125;
    sample.t1 = sample.t0 + 0.125;
    estimator.on_progress(sample);
  }
  EXPECT_FALSE(estimator.has_good_estimate());
  EXPECT_DOUBLE_EQ(estimator.estimate_kbps(), 500.0);
  sample.t0 = 0.875;
  sample.t1 = 1.0;
  estimator.on_progress(sample);
  EXPECT_TRUE(estimator.has_good_estimate());
  EXPECT_GT(estimator.estimate_kbps(), 1000.0);
}

TEST(JointAbr, PanicIgnoresHoldTimer) {
  const Content content = make_drama_content();
  CurationPolicy policy;
  policy.device.screen = DeviceProfile::Screen::kTv;
  DashBuildOptions options;
  options.allowed_combinations = curate_staircase(content.ladder(), policy);
  JointAbrController abr(
      view_from_mpd(*parse_mpd(serialize_mpd(build_dash_mpd(content, options))))
          .combos_sorted());
  (void)abr.decide(0.0, 2000.0, 15.0);
  const std::size_t high = abr.current_index();
  ASSERT_GT(high, 0u);
  // 0.5 s later (hold active) but the buffer collapsed: drop anyway.
  EXPECT_LT(abr.decide(0.5, 300.0, 1.0), high);
}

TEST(Curation, SingleAudioTrackLadder) {
  const BitrateLadder ladder = make_ladder({96}, {200, 600, 1500});
  CurationPolicy policy;
  policy.device.screen = DeviceProfile::Screen::kTv;
  const auto combos = curate_combinations(ladder, policy);
  ASSERT_EQ(combos.size(), 3u);
  for (const AvCombination& combo : combos) EXPECT_EQ(combo.audio_id, "A1");
  // The staircase degenerates to the pairing (no audio steps to insert).
  EXPECT_EQ(curate_staircase(ladder, policy).size(), 3u);
}

TEST(Curation, MoreAudioThanVideo) {
  const BitrateLadder ladder = make_ladder({32, 64, 96, 128, 256}, {300, 900});
  CurationPolicy policy;
  policy.genre = ContentGenre::kMusic;
  policy.device.screen = DeviceProfile::Screen::kTv;
  const auto stairs = curate_staircase(ladder, policy);
  EXPECT_EQ(validate_combinations(ladder, stairs), "");
  EXPECT_GE(stairs.size(), 2u);
}

TEST(Network, SplitPathsWithDifferentTraceShapes) {
  // Square-wave video path + constant audio path: the engine must handle
  // per-link breakpoints independently.
  auto setup = ex::split_path_dash(BandwidthTrace::square_wave(500, 1500, 10, 10),
                                   BandwidthTrace::constant(300.0), "mixed");
  CoordinatedConfig config;
  config.per_path_estimation = true;
  CoordinatedPlayer player(config);
  const SessionLog log = ex::run(setup, player);
  EXPECT_TRUE(log.completed);
}

TEST(Summarize, IncompleteSessionFlagged) {
  SessionLog log;
  log.player_name = "x";
  log.completed = false;
  const std::string text = summarize(log, QoeReport{});
  EXPECT_NE(text.find("completed=NO"), std::string::npos);
}

}  // namespace
}  // namespace demuxabr
