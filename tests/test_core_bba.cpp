#include "core/bba_abr.h"

#include <gtest/gtest.h>

#include "core/compliance.h"
#include "core/coordinated_player.h"
#include "experiments/scenarios.h"
#include "manifest/builder.h"
#include "media/content.h"

namespace demuxabr {
namespace {

namespace ex = demuxabr::experiments;

std::vector<ComboView> drama_staircase() {
  const Content content = make_drama_content();
  CurationPolicy policy;
  policy.device.screen = DeviceProfile::Screen::kTv;
  DashBuildOptions options;
  options.allowed_combinations = curate_staircase(content.ladder(), policy);
  return view_from_mpd(build_dash_mpd(content, options)).combos_sorted();
}

TEST(BbaAbr, ReservoirForcesLowest) {
  BufferBasedJointAbr bba(drama_staircase());
  EXPECT_EQ(bba.decide(0.0), 0u);
  EXPECT_EQ(bba.decide(8.0), 0u);  // at the reservoir edge
}

TEST(BbaAbr, FullCushionReachesHighest) {
  BufferBasedJointAbr bba(drama_staircase());
  const std::size_t top = bba.allowed().size() - 1;
  EXPECT_EQ(bba.decide(24.0), top);   // reservoir + cushion
  EXPECT_EQ(bba.decide(100.0), top);  // beyond
}

TEST(BbaAbr, RateMapIsLinearInsideCushion) {
  BufferBasedJointAbr bba(drama_staircase());
  const double r_min = bba.requirement_kbps(0);
  const double r_max = bba.requirement_kbps(bba.allowed().size() - 1);
  EXPECT_DOUBLE_EQ(bba.rate_map_kbps(8.0), r_min);
  EXPECT_DOUBLE_EQ(bba.rate_map_kbps(24.0), r_max);
  EXPECT_NEAR(bba.rate_map_kbps(16.0), (r_min + r_max) / 2.0, 1e-9);
}

TEST(BbaAbr, DecisionMonotoneInBuffer) {
  BufferBasedJointAbr bba(drama_staircase());
  std::size_t previous = 0;
  for (double buffer = 0.0; buffer <= 30.0; buffer += 0.5) {
    const std::size_t index = bba.decide(buffer);
    EXPECT_GE(index, previous) << buffer;
    previous = index;
  }
}

TEST(BbaAbr, HysteresisAvoidsChatterAtRungBoundary) {
  BufferBasedJointAbr bba(drama_staircase());
  // Park the buffer right where the map sits between rung k's and rung
  // k+1's requirement: small oscillations must not flip the decision.
  (void)bba.decide(15.0);
  const std::size_t index = bba.current_index();
  for (double wiggle : {14.9, 15.1, 14.8, 15.2, 15.0}) {
    EXPECT_EQ(bba.decide(wiggle), index) << wiggle;
  }
}

TEST(BbaAbr, NeedsNoBandwidthEstimate) {
  // The whole point: decisions depend on buffer alone.
  BufferBasedJointAbr a(drama_staircase());
  BufferBasedJointAbr b(drama_staircase());
  for (double buffer : {2.0, 9.0, 14.0, 21.0, 26.0}) {
    EXPECT_EQ(a.decide(buffer), b.decide(buffer));
  }
}

TEST(BbaCoordinated, SessionCompletesWithoutStalls) {
  auto setup = ex::bestpractice_dash(BandwidthTrace::constant(900.0), "bba");
  CoordinatedConfig config;
  config.algorithm = AbrAlgorithm::kBufferBased;
  CoordinatedPlayer player(config);
  EXPECT_EQ(player.name(), "coordinated-bba");
  const SessionLog log = ex::run(setup, player);
  EXPECT_TRUE(log.completed);
  EXPECT_EQ(log.stall_count(), 0u);
}

TEST(BbaCoordinated, StaysOnManifestEverywhere) {
  for (const auto& named : ex::comparison_traces()) {
    auto setup = ex::bestpractice_dash(named.trace, named.name);
    CoordinatedConfig config;
    config.algorithm = AbrAlgorithm::kBufferBased;
    CoordinatedPlayer player(config);
    const SessionLog log = ex::run(setup, player);
    EXPECT_TRUE(log.completed) << named.name;
    EXPECT_TRUE(check_compliance(log, setup.allowed).compliant()) << named.name;
  }
}

TEST(BbaCoordinated, SurvivesBurstyTrace) {
  auto setup = ex::bestpractice_dash(ex::shaka_varying_600_trace(), "bba");
  CoordinatedConfig config;
  config.algorithm = AbrAlgorithm::kBufferBased;
  CoordinatedPlayer player(config);
  const SessionLog log = ex::run(setup, player);
  EXPECT_TRUE(log.completed);
  EXPECT_LT(log.total_stall_s(), 30.0);
}

}  // namespace
}  // namespace demuxabr
