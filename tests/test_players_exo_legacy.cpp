#include "players/exo_legacy.h"

#include "players/exoplayer.h"

#include <gtest/gtest.h>

#include <set>

#include "experiments/scenarios.h"
#include "manifest/builder.h"
#include "media/content.h"

namespace demuxabr {
namespace {

namespace ex = demuxabr::experiments;

TEST(ExoLegacy, PinsFirstAudioTrackUnderDash) {
  const Content content = make_drama_content();
  ExoLegacyPlayerModel player;
  player.start(view_from_mpd(build_dash_mpd(content)));
  EXPECT_EQ(player.fixed_audio_id(), "A1");
}

TEST(ExoLegacy, FixedAudioIndexIsConfigurable) {
  const Content content = make_drama_content();
  ExoLegacyConfig config;
  config.fixed_audio_index = 2;
  ExoLegacyPlayerModel player(config);
  player.start(view_from_mpd(build_dash_mpd(content)));
  EXPECT_EQ(player.fixed_audio_id(), "A3");
}

TEST(ExoLegacy, NeverAdaptsAudioInASession) {
  // §3.2: "selected a fixed audio track and used it throughout the session
  // without any audio rate adaptation" — on any trace.
  for (const auto& named : ex::comparison_traces()) {
    auto setup = ex::plain_dash(named.trace, named.name);
    ExoLegacyPlayerModel player;
    const SessionLog log = ex::run(setup, player);
    ASSERT_TRUE(log.completed) << named.name;
    std::set<std::string> audio(log.audio_selection.begin(), log.audio_selection.end());
    EXPECT_EQ(audio.size(), 1u) << named.name;
    EXPECT_TRUE(audio.count("A1")) << named.name;
  }
}

TEST(ExoLegacy, StillAdaptsVideo) {
  auto setup = ex::plain_dash(ex::varying_600_trace(), "legacy");
  ExoLegacyPlayerModel player;
  const SessionLog log = ex::run(setup, player);
  std::set<std::string> video(log.video_selection.begin(), log.video_selection.end());
  EXPECT_GE(video.size(), 2u);
}

TEST(ExoLegacy, HighAudioPinWastesBandwidthOnPoorLinks) {
  // Pinned A3 (384 kbps) on a 600 kbps-average link: the v2.10 joint model
  // with the same manifest reaches better video (it can drop audio).
  auto setup = ex::plain_dash(ex::varying_600_trace(), "legacy-a3");
  ExoLegacyConfig config;
  config.fixed_audio_index = 2;  // pin A3
  ExoLegacyPlayerModel legacy(config);
  const QoeReport legacy_qoe =
      compute_qoe(ex::run(setup, legacy), setup.content.ladder());

  ExoPlayerModel modern;
  const QoeReport modern_qoe =
      compute_qoe(ex::run(setup, modern), setup.content.ladder());

  // Legacy burns 384 kbps on audio unconditionally; the joint model spends
  // the link where it helps and ends up with the better overall QoE.
  EXPECT_DOUBLE_EQ(legacy_qoe.avg_audio_kbps, 384.0);
  EXPECT_GE(modern_qoe.qoe_score, legacy_qoe.qoe_score);
}

TEST(ExoLegacy, HlsVideoPricedByVariantAggregates) {
  const Content content = make_drama_content();
  ExoLegacyPlayerModel player;
  player.start(view_from_hls(build_hsub_master(content), nullptr));
  // At an estimate of ~600 kbps (0.75 -> 450 budget), the overestimated V2
  // (395 kbps aggregate) is the ceiling, like the v2.10 model.
  PlayerContext ctx;
  ctx.total_chunks = 75;
  const auto request = player.next_request(ctx);
  ASSERT_TRUE(request.has_value());
}

TEST(ExoLegacy, ChunkLevelSyncHolds) {
  auto setup = ex::plain_dash(BandwidthTrace::constant(1000.0), "legacy-sync");
  ExoLegacyPlayerModel player;
  const SessionLog log = ex::run(setup, player);
  // Downloads alternate: positions never drift more than one chunk apart.
  int next_audio = 0;
  int next_video = 0;
  for (const DownloadRecord& d : log.downloads) {
    (d.type == MediaType::kAudio ? next_audio : next_video) += 1;
    EXPECT_LE(std::abs(next_audio - next_video), 1);
  }
}

}  // namespace
}  // namespace demuxabr
