#include "core/joint_abr.h"

#include <gtest/gtest.h>

#include "core/allowed_combinations.h"
#include "manifest/builder.h"
#include "media/content.h"

namespace demuxabr {
namespace {

std::vector<ComboView> drama_combos() {
  const Content content = make_drama_content();
  DashBuildOptions options;
  CurationPolicy policy;
  options.allowed_combinations = curate_staircase(content.ladder(), policy);
  return view_from_mpd(build_dash_mpd(content, options)).combos_sorted();
}

TEST(JointAbr, StartsAtLowestWithoutEstimate) {
  JointAbrController abr(drama_combos());
  EXPECT_EQ(abr.decide(0.0, 0.0, 0.0), 0u);
  EXPECT_EQ(abr.current().label(), "V1+A1");
}

TEST(JointAbr, FirstEstimatePicksSustainable) {
  JointAbrController abr(drama_combos());
  // 0.85 * 900 = 765 -> V3+A2 (669) sustainable.
  const std::size_t index = abr.decide(0.0, 900.0, 0.0);
  EXPECT_EQ(abr.allowed()[index].label(), "V3+A2");
}

TEST(JointAbr, UpSwitchNeedsBufferMarginAndHold) {
  JointAbrConfig config;
  JointAbrController abr(drama_combos(), config);
  (void)abr.decide(0.0, 400.0, 0.0);  // start low
  const std::size_t low = abr.current_index();
  // Estimate now high, but buffer thin: no up-switch.
  EXPECT_EQ(abr.decide(20.0, 2000.0, 5.0), low);
  // Buffer fine but hold not expired since last switch at t=0... hold is
  // 8 s, so by t=20 it expired; the remaining gate is the buffer:
  EXPECT_GT(abr.decide(21.0, 2000.0, 15.0), low);
}

TEST(JointAbr, HoldTimeSuppressesRapidUpSwitches) {
  JointAbrConfig config;
  config.min_hold_s = 8.0;
  JointAbrController abr(drama_combos(), config);
  (void)abr.decide(0.0, 400.0, 0.0);
  const std::size_t low = abr.current_index();
  // 2 s after the initial decision: hold still active.
  EXPECT_EQ(abr.decide(2.0, 2000.0, 15.0), low);
  EXPECT_GT(abr.decide(9.0, 2000.0, 15.0), low);
}

TEST(JointAbr, UpSwitchMarginIsRespected) {
  JointAbrConfig config;
  config.up_switch_margin = 1.15;
  JointAbrController abr(drama_combos(), config);
  (void)abr.decide(0.0, 500.0, 0.0);
  // V3+A2 needs 669; the margin demands 0.85*est >= 769 -> est >= 905.
  (void)abr.decide(10.0, 890.0, 15.0);
  EXPECT_NE(abr.current().label(), "V3+A2");
  (void)abr.decide(20.0, 920.0, 15.0);
  EXPECT_EQ(abr.current().label(), "V3+A2");
}

TEST(JointAbr, PanicDropsImmediately) {
  JointAbrController abr(drama_combos());
  (void)abr.decide(0.0, 2000.0, 0.0);
  const std::size_t high = abr.current_index();
  ASSERT_GT(high, 0u);
  // Buffer nearly dry 1 s later: drop at once, ignoring hold time.
  const std::size_t dropped = abr.decide(1.0, 300.0, 2.0);
  EXPECT_LT(dropped, high);
}

TEST(JointAbr, ComfortableBufferRidesOutDips) {
  JointAbrConfig config;
  config.hold_buffer_s = 20.0;
  JointAbrController abr(drama_combos(), config);
  (void)abr.decide(0.0, 2000.0, 0.0);
  const std::size_t high = abr.current_index();
  // Estimate dips but 25 s of buffer: hold quality.
  EXPECT_EQ(abr.decide(10.0, 400.0, 25.0), high);
  // Buffer shrinks below the hold threshold: follow the estimate down.
  EXPECT_LT(abr.decide(20.0, 400.0, 12.0), high);
}

TEST(JointAbr, UsesAverageBandwidthWhenDeclared) {
  std::vector<ComboView> combos;
  ComboView low;
  low.video_id = "V1";
  low.audio_id = "A1";
  low.bandwidth_kbps = 500.0;
  low.avg_bandwidth_kbps = 300.0;
  ComboView high;
  high.video_id = "V2";
  high.audio_id = "A1";
  high.bandwidth_kbps = 900.0;
  high.avg_bandwidth_kbps = 600.0;
  combos = {low, high};

  JointAbrConfig with_avg;
  with_avg.use_average_bandwidth = true;
  JointAbrController abr_avg(combos, with_avg);
  // 0.85 * 800 = 680 >= 600 (avg) although < 900 (peak).
  EXPECT_EQ(abr_avg.decide(0.0, 800.0, 0.0), 1u);

  JointAbrConfig peak_only;
  peak_only.use_average_bandwidth = false;
  JointAbrController abr_peak(combos, peak_only);
  EXPECT_EQ(abr_peak.decide(0.0, 800.0, 0.0), 0u);
  EXPECT_DOUBLE_EQ(abr_peak.requirement_kbps(1), 900.0);
}

TEST(JointAbr, DecisionIsStableUnderConstantInputs) {
  JointAbrController abr(drama_combos());
  (void)abr.decide(0.0, 700.0, 10.0);
  const std::size_t index = abr.current_index();
  for (double t = 4.0; t < 100.0; t += 4.0) {
    EXPECT_EQ(abr.decide(t, 700.0, 15.0), index) << t;
  }
}

class JointAbrEstimateSweep : public ::testing::TestWithParam<double> {};

TEST_P(JointAbrEstimateSweep, ChoiceFitsBudgetOrIsLowest) {
  JointAbrController abr(drama_combos());
  const double estimate = GetParam();
  const std::size_t index = abr.decide(0.0, estimate, 15.0);
  if (index > 0) {
    EXPECT_LE(abr.requirement_kbps(index), 0.85 * estimate + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Estimates, JointAbrEstimateSweep,
                         ::testing::Values(100.0, 300.0, 500.0, 700.0, 1000.0, 2000.0,
                                           5000.0));

}  // namespace
}  // namespace demuxabr
