#include <gtest/gtest.h>

#include <cstdint>
#include <list>
#include <map>
#include <random>
#include <string>

#include "httpsim/catalog.h"
#include "httpsim/cdn.h"
#include "httpsim/lru_cache.h"
#include "httpsim/workload.h"
#include "media/content.h"

namespace demuxabr {
namespace {

TEST(LruCache, BasicHitMiss) {
  LruCache cache(100);
  EXPECT_FALSE(cache.get("a"));
  cache.put("a", 10);
  EXPECT_TRUE(cache.get("a"));
  EXPECT_TRUE(cache.contains("a"));
  EXPECT_EQ(cache.used_bytes(), 10);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache cache(30);
  cache.put("a", 10);
  cache.put("b", 10);
  cache.put("c", 10);
  cache.get("a");       // touch a: b becomes LRU
  cache.put("d", 10);   // evicts b
  EXPECT_TRUE(cache.contains("a"));
  EXPECT_FALSE(cache.contains("b"));
  EXPECT_TRUE(cache.contains("c"));
  EXPECT_TRUE(cache.contains("d"));
  EXPECT_EQ(cache.eviction_count(), 1u);
}

TEST(LruCache, UnboundedNeverEvicts) {
  LruCache cache(0);
  for (int i = 0; i < 1000; ++i) cache.put("k" + std::to_string(i), 1000);
  EXPECT_EQ(cache.object_count(), 1000u);
  EXPECT_EQ(cache.eviction_count(), 0u);
}

TEST(LruCache, ObjectLargerThanCapacityIgnored) {
  LruCache cache(10);
  cache.put("big", 100);
  EXPECT_FALSE(cache.contains("big"));
  EXPECT_EQ(cache.used_bytes(), 0);
}

TEST(LruCache, DuplicatePutTouchesWithoutDoubleCount) {
  LruCache cache(100);
  cache.put("a", 10);
  cache.put("a", 10);
  EXPECT_EQ(cache.used_bytes(), 10);
  EXPECT_EQ(cache.object_count(), 1u);
}

TEST(LruCache, ClearResets) {
  LruCache cache(100);
  cache.put("a", 10);
  cache.clear();
  EXPECT_EQ(cache.used_bytes(), 0);
  EXPECT_FALSE(cache.contains("a"));
}

TEST(LruCache, ResizingPutUpdatesUsedBytes) {
  LruCache cache(100);
  cache.put("a", 10);
  cache.put("b", 20);
  cache.put("a", 50);  // same key, new size: used = 50 + 20, no eviction
  EXPECT_EQ(cache.used_bytes(), 70);
  EXPECT_EQ(cache.object_count(), 2u);
  EXPECT_EQ(cache.eviction_count(), 0u);
}

TEST(LruCache, ResizingPutRunsEviction) {
  LruCache cache(100);
  cache.put("a", 10);
  cache.put("b", 20);
  cache.put("a", 90);  // growing a past capacity evicts LRU entry b
  EXPECT_TRUE(cache.contains("a"));
  EXPECT_FALSE(cache.contains("b"));
  EXPECT_EQ(cache.used_bytes(), 90);
  EXPECT_EQ(cache.eviction_count(), 1u);
}

TEST(LruCache, GrowingEntryPastCapacityEvictsItself) {
  LruCache cache(100);
  cache.put("a", 10);
  cache.put("a", 150);  // no resident set can hold it: cache ends empty
  EXPECT_FALSE(cache.contains("a"));
  EXPECT_EQ(cache.used_bytes(), 0);
  EXPECT_EQ(cache.object_count(), 0u);
}

// Randomized differential test: drive the cache and a transparent oracle
// (recency list + key->iterator map, exact same admit/touch/evict rules)
// with the same seeded op stream and compare every observable after every
// step. Catches bookkeeping drift (the stale-used_bytes resize bug) that
// targeted cases miss.
TEST(LruCache, RandomizedOpsMatchRecencyListOracle) {
  constexpr std::int64_t kCapacity = 100;
  constexpr int kKeys = 20;
  LruCache cache(kCapacity);

  struct OracleEntry {
    std::string key;
    std::int64_t bytes = 0;
  };
  std::list<OracleEntry> recency;  // front = MRU
  std::map<std::string, std::list<OracleEntry>::iterator> index;
  std::int64_t oracle_used = 0;
  std::size_t oracle_evictions = 0;
  const auto oracle_evict_until_fits = [&](std::int64_t incoming) {
    while (!recency.empty() && oracle_used + incoming > kCapacity) {
      oracle_used -= recency.back().bytes;
      index.erase(recency.back().key);
      recency.pop_back();
      ++oracle_evictions;
    }
  };

  std::mt19937_64 rng(20260808);
  std::uniform_int_distribution<int> key_dist(0, kKeys - 1);
  std::uniform_int_distribution<std::int64_t> size_dist(1, 30);
  std::uniform_int_distribution<int> op_dist(0, 2);
  for (int step = 0; step < 5000; ++step) {
    const std::string key = "obj" + std::to_string(key_dist(rng));
    if (op_dist(rng) == 0) {  // get: touch on hit
      const bool hit = cache.get(key);
      const auto it = index.find(key);
      EXPECT_EQ(hit, it != index.end()) << "step " << step;
      if (it != index.end()) recency.splice(recency.begin(), recency, it->second);
    } else {  // put: admit / touch-and-resize
      const std::int64_t bytes = size_dist(rng);
      cache.put(key, bytes);
      const auto it = index.find(key);
      if (it != index.end()) {
        recency.splice(recency.begin(), recency, it->second);
        oracle_used += bytes - it->second->bytes;
        it->second->bytes = bytes;
        oracle_evict_until_fits(0);
      } else if (bytes <= kCapacity) {
        oracle_evict_until_fits(bytes);
        recency.push_front({key, bytes});
        index[key] = recency.begin();
        oracle_used += bytes;
      }
    }

    // Invariants + full observable state, every step.
    std::int64_t sum = 0;
    for (const OracleEntry& entry : recency) sum += entry.bytes;
    ASSERT_EQ(oracle_used, sum) << "oracle drift at step " << step;
    ASSERT_LE(cache.used_bytes(), kCapacity) << "step " << step;
    ASSERT_EQ(cache.used_bytes(), oracle_used) << "step " << step;
    ASSERT_EQ(cache.object_count(), index.size()) << "step " << step;
    ASSERT_EQ(cache.eviction_count(), oracle_evictions) << "step " << step;
    for (int k = 0; k < kKeys; ++k) {
      const std::string probe = "obj" + std::to_string(k);
      ASSERT_EQ(cache.contains(probe), index.count(probe) == 1)
          << "step " << step << " key " << probe;
    }
  }
}

class CatalogTest : public ::testing::Test {
 protected:
  Content content_ = make_drama_content();
};

TEST_F(CatalogTest, DemuxedObjectCount) {
  const ObjectCatalog catalog = build_demuxed_catalog(content_);
  // (6 video + 3 audio) tracks x 75 chunks.
  EXPECT_EQ(catalog.object_count(), 9u * 75u);
  EXPECT_EQ(catalog.total_bytes(), content_.total_bytes());
}

TEST_F(CatalogTest, MuxedObjectCount) {
  const ObjectCatalog catalog = build_muxed_catalog(content_);
  // 6 x 3 combinations x 75 chunks.
  EXPECT_EQ(catalog.object_count(), 18u * 75u);
}

TEST_F(CatalogTest, MuxedObjectIsSumOfComponents) {
  const ObjectCatalog muxed = build_muxed_catalog(content_);
  const std::int64_t expected =
      content_.chunk("V2", 5).size_bytes + content_.chunk("A3", 5).size_bytes;
  EXPECT_EQ(muxed.size_of(chunk_object_key("V2+A3", 5)), expected);
}

TEST_F(CatalogTest, StorageComparisonFavorsDemuxed) {
  // §1: M x N muxed tracks vs M + N demuxed tracks.
  const StorageReport report = compare_storage(content_);
  EXPECT_GT(report.muxed_bytes, report.demuxed_bytes);
  EXPECT_GT(report.muxed_to_demuxed_ratio(), 1.5);
  EXPECT_EQ(report.demuxed_objects, 675u);
  EXPECT_EQ(report.muxed_objects, 1350u);
}

TEST_F(CatalogTest, UnknownKeyReportsNegative) {
  const ObjectCatalog catalog = build_demuxed_catalog(content_);
  EXPECT_EQ(catalog.size_of("nope/00000"), -1);
  EXPECT_FALSE(catalog.contains("nope/00000"));
}

TEST_F(CatalogTest, CdnServesHitsFromCacheAfterFirstFetch) {
  const ObjectCatalog catalog = build_demuxed_catalog(content_);
  CdnNode cdn(&catalog, 0);
  const std::string key = chunk_object_key("V1", 0);
  const auto first = cdn.fetch(key);
  EXPECT_TRUE(first.found);
  EXPECT_FALSE(first.from_cache);
  const auto second = cdn.fetch(key);
  EXPECT_TRUE(second.from_cache);
  EXPECT_EQ(cdn.stats().hits, 1);
  EXPECT_EQ(cdn.stats().misses, 1);
  EXPECT_EQ(cdn.stats().bytes_from_origin, first.bytes);
}

TEST_F(CatalogTest, CdnUnknownObject) {
  const ObjectCatalog catalog = build_demuxed_catalog(content_);
  CdnNode cdn(&catalog, 0);
  const auto result = cdn.fetch("missing/object");
  EXPECT_FALSE(result.found);
  EXPECT_EQ(cdn.stats().requests, 0);
}

// The paper's CDN argument (§1): with users differing only in the *other*
// component, demuxed storage turns those requests into cache hits.
TEST_F(CatalogTest, DemuxedModeImprovesCacheHitRatio) {
  WorkloadConfig config;
  config.num_users = 100;
  const auto results = run_cdn_comparison(content_, config);
  ASSERT_EQ(results.size(), 2u);
  const WorkloadResult& demuxed = results[0];
  const WorkloadResult& muxed = results[1];
  EXPECT_EQ(demuxed.mode, StorageMode::kDemuxed);
  EXPECT_GT(demuxed.cdn.hit_ratio(), muxed.cdn.hit_ratio());
  EXPECT_LT(demuxed.origin_storage_bytes, muxed.origin_storage_bytes);
}

TEST_F(CatalogTest, DemuxedModeReducesOriginEgressWithBoundedCache) {
  WorkloadConfig config;
  config.num_users = 150;
  config.cache_fraction = 0.5;
  const auto results = run_cdn_comparison(content_, config);
  EXPECT_LT(results[0].cdn.bytes_from_origin, results[1].cdn.bytes_from_origin);
}

TEST_F(CatalogTest, WorkloadDeterministicPerSeed) {
  WorkloadConfig config;
  config.num_users = 50;
  const auto a = run_cdn_workload(content_, StorageMode::kDemuxed, config);
  const auto b = run_cdn_workload(content_, StorageMode::kDemuxed, config);
  EXPECT_EQ(a.cdn.hits, b.cdn.hits);
  EXPECT_EQ(a.cdn.bytes_from_origin, b.cdn.bytes_from_origin);
}

TEST(CdnStats, RatiosHandleZeroRequests) {
  CdnStats stats;
  EXPECT_DOUBLE_EQ(stats.hit_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(stats.byte_hit_ratio(), 0.0);
}

TEST(ChunkObjectKey, Format) {
  EXPECT_EQ(chunk_object_key("V3", 42), "V3/00042");
  EXPECT_EQ(chunk_object_key("V3+A1", 0), "V3+A1/00000");
}

}  // namespace
}  // namespace demuxabr
