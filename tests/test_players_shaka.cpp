#include "players/shaka.h"

#include <gtest/gtest.h>

#include <set>

#include "manifest/builder.h"
#include "media/content.h"

namespace demuxabr {
namespace {

PlayerContext context(double audio_buffer, double video_buffer, int next_audio = 0,
                      int next_video = 0, int total = 75) {
  PlayerContext ctx;
  ctx.audio_buffer_s = audio_buffer;
  ctx.video_buffer_s = video_buffer;
  ctx.next_audio_chunk = next_audio;
  ctx.next_video_chunk = next_video;
  ctx.total_chunks = total;
  return ctx;
}

class ShakaHlsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    content_ = make_drama_content();
    player_.start(view_from_hls(build_hall_master(content_), nullptr));
  }
  Content content_;
  ShakaPlayerModel player_;
};

TEST_F(ShakaHlsTest, UsesAllListedCombinationsSorted) {
  ASSERT_EQ(player_.combinations().size(), 18u);
  for (std::size_t i = 1; i < player_.combinations().size(); ++i) {
    EXPECT_LE(player_.combinations()[i - 1].bandwidth_kbps,
              player_.combinations()[i].bandwidth_kbps);
  }
  EXPECT_EQ(player_.name(), "shaka-hls");
}

TEST_F(ShakaHlsTest, DefaultEstimateSelectsV2A2) {
  // The Fig 4(a) selection: 500 kbps default -> V2+A2 (460) is the highest
  // fitting combination (V1+A3 is 510).
  const std::size_t index = player_.select_for_estimate(500.0);
  EXPECT_EQ(player_.combinations()[index].label(), "V2+A2");
  EXPECT_DOUBLE_EQ(player_.bandwidth_estimate_kbps(), 500.0);
}

TEST_F(ShakaHlsTest, SelectionBoundaries) {
  EXPECT_EQ(player_.combinations()[player_.select_for_estimate(100.0)].label(),
            "V1+A1");  // nothing fits -> lowest
  EXPECT_EQ(player_.combinations()[player_.select_for_estimate(253.0)].label(),
            "V1+A1");
  EXPECT_EQ(player_.combinations()[player_.select_for_estimate(1100.0)].label(),
            "V3+A3");
  EXPECT_EQ(player_.combinations()[player_.select_for_estimate(1e6)].label(), "V6+A3");
}

TEST_F(ShakaHlsTest, MemorylessSelectionFluctuates) {
  // §3.3: estimates wandering in [300, 700] flip among five combinations.
  std::set<std::string> selected;
  for (double estimate : {320.0, 400.0, 470.0, 520.0, 660.0, 390.0, 510.0}) {
    selected.insert(player_.combinations()[player_.select_for_estimate(estimate)].label());
  }
  EXPECT_GE(selected.size(), 4u);
  EXPECT_TRUE(selected.count("V1+A2"));
  EXPECT_TRUE(selected.count("V2+A1"));
  EXPECT_TRUE(selected.count("V2+A2"));
  EXPECT_TRUE(selected.count("V1+A3"));
}

TEST_F(ShakaHlsTest, FetchesUpToBufferingGoal) {
  EXPECT_TRUE(player_.next_request(context(0.0, 0.0)).has_value());
  EXPECT_FALSE(player_.next_request(context(10.5, 10.5)).has_value());
}

TEST_F(ShakaHlsTest, PrefersEmptierBuffer) {
  const auto request = player_.next_request(context(2.0, 8.0));
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->type, MediaType::kAudio);
}

TEST_F(ShakaHlsTest, RequestsTracksOfSelectedCombination) {
  // With the default 500 kbps estimate, downloads come from V2+A2.
  const auto video_request = player_.next_request(context(8.0, 0.0));
  ASSERT_TRUE(video_request.has_value());
  EXPECT_EQ(video_request->track_id, "V2");
  const auto audio_request = player_.next_request(context(0.0, 8.0));
  ASSERT_TRUE(audio_request.has_value());
  EXPECT_EQ(audio_request->track_id, "A2");
}

TEST_F(ShakaHlsTest, EstimatorFiltersSmallProgressSamples) {
  // 0.125 s intervals at 1 Mbps (15625 B) are all rejected: the estimate
  // remains the 500 kbps default no matter how long this continues.
  for (int i = 0; i < 1000; ++i) {
    ProgressSample sample;
    sample.t0 = i * 0.125;
    sample.t1 = sample.t0 + 0.125;
    sample.bytes = 15625;
    player_.on_progress(sample);
  }
  EXPECT_DOUBLE_EQ(player_.bandwidth_estimate_kbps(), 500.0);
}

TEST_F(ShakaHlsTest, EstimatorAcceptsFastSamples) {
  for (int i = 0; i < 100; ++i) {
    ProgressSample sample;
    sample.t0 = i * 0.125;
    sample.t1 = sample.t0 + 0.125;
    sample.bytes = 18750;  // 1.2 Mbps
    player_.on_progress(sample);
  }
  EXPECT_NEAR(player_.bandwidth_estimate_kbps(), 1200.0, 40.0);
}

TEST_F(ShakaHlsTest, ConcurrencyIsTwo) {
  EXPECT_EQ(player_.max_concurrent_downloads(), 2);
}

TEST(ShakaDashTest, RecreatesAllCombinationsFromMpd) {
  // §3.3 DASH: no combination list -> the player builds all 18 pairs from
  // per-track declared bitrates.
  const Content content = make_drama_content();
  ShakaPlayerModel player;
  player.start(view_from_mpd(build_dash_mpd(content)));
  EXPECT_EQ(player.name(), "shaka-dash");
  ASSERT_EQ(player.combinations().size(), 18u);
  // DASH prices combinations by declared-bitrate sums (not the peak sums of
  // Table 2): V1+A3 = 111+384 = 495 is the highest <= 500.
  EXPECT_EQ(player.combinations()[player.select_for_estimate(500.0)].label(), "V1+A3");
}

TEST(ShakaConfigTest, CustomDefaultEstimate) {
  ShakaConfig config;
  config.estimator.default_estimate_kbps = 900.0;
  ShakaPlayerModel player(config);
  const Content content = make_drama_content();
  player.start(view_from_hls(build_hall_master(content), nullptr));
  EXPECT_DOUBLE_EQ(player.bandwidth_estimate_kbps(), 900.0);
  EXPECT_EQ(player.combinations()[player.select_for_estimate(900.0)].label(), "V3+A2");
}

}  // namespace
}  // namespace demuxabr
