#include "players/dashjs.h"

#include <gtest/gtest.h>

#include "manifest/builder.h"
#include "media/content.h"

namespace demuxabr {
namespace {

PlayerContext context(double audio_buffer, double video_buffer, int next_audio = 0,
                      int next_video = 0, int total = 75) {
  PlayerContext ctx;
  ctx.audio_buffer_s = audio_buffer;
  ctx.video_buffer_s = video_buffer;
  ctx.next_audio_chunk = next_audio;
  ctx.next_video_chunk = next_video;
  ctx.total_chunks = total;
  return ctx;
}

ChunkCompletion completion(MediaType type, double kbps, double seconds = 4.0) {
  ChunkCompletion c;
  c.type = type;
  c.bytes = static_cast<std::int64_t>(kbps * 1000.0 / 8.0 * seconds);
  c.start_t = 0.0;
  c.end_t = seconds;
  return c;
}

class DashJsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    content_ = make_drama_content();
    player_.start(view_from_mpd(build_dash_mpd(content_)));
  }
  Content content_;
  DashJsPlayerModel player_;
};

TEST_F(DashJsTest, StartsAtLowestQualityInThroughputMode) {
  EXPECT_EQ(player_.current_index(MediaType::kVideo), 0u);
  EXPECT_EQ(player_.current_index(MediaType::kAudio), 0u);
  EXPECT_EQ(player_.rule_state(MediaType::kVideo),
            DashJsPlayerModel::RuleState::kThroughput);
  const auto request = player_.next_request(context(0, 0));
  ASSERT_TRUE(request.has_value());
  EXPECT_TRUE(request->track_id == "V1" || request->track_id == "A1");
}

TEST_F(DashJsTest, EstimatorsAreIndependentPerType) {
  // Only video samples: the audio estimate must stay at zero (§3.4).
  for (int i = 0; i < 5; ++i) {
    player_.on_chunk_complete(completion(MediaType::kVideo, 800.0), context(0, 0));
  }
  EXPECT_NEAR(player_.estimate_kbps(MediaType::kVideo), 800.0, 1.0);
  EXPECT_DOUBLE_EQ(player_.estimate_kbps(MediaType::kAudio), 0.0);
}

TEST_F(DashJsTest, ThroughputRulePicksHighestUnderSafetyFactor) {
  for (int i = 0; i < 5; ++i) {
    player_.on_chunk_complete(completion(MediaType::kVideo, 700.0), context(0, 0));
  }
  // 0.9 * 700 = 630 -> V3 (473) fits, V4 (914) does not. Low buffer keeps
  // the THROUGHPUT rule active.
  const auto request = player_.next_request(context(20.0, 2.0, 5, 5));
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->type, MediaType::kVideo);
  EXPECT_EQ(request->track_id, "V3");
  EXPECT_EQ(player_.rule_state(MediaType::kVideo),
            DashJsPlayerModel::RuleState::kThroughput);
}

TEST_F(DashJsTest, SwitchesToBolaWithComfortableBuffer) {
  for (int i = 0; i < 5; ++i) {
    player_.on_chunk_complete(completion(MediaType::kVideo, 400.0), context(0, 0));
  }
  // Buffer 18 s: BOLA chooses at least as high as THROUGHPUT (V2 at 0.9*400)
  // -> DYNAMIC hands control to BOLA.
  const auto request = player_.next_request(context(30.0, 18.0, 5, 5));
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(player_.rule_state(MediaType::kVideo), DashJsPlayerModel::RuleState::kBola);
}

TEST_F(DashJsTest, FallsBackToThroughputWhenBufferDrains) {
  for (int i = 0; i < 5; ++i) {
    player_.on_chunk_complete(completion(MediaType::kVideo, 800.0), context(0, 0));
  }
  (void)player_.next_request(context(30.0, 18.0, 5, 5));  // into BOLA
  ASSERT_EQ(player_.rule_state(MediaType::kVideo), DashJsPlayerModel::RuleState::kBola);
  // Buffer collapses below 6 s and BOLA's choice (lowest) undercuts
  // THROUGHPUT's (V4 at 0.9*800=720 -> V3): back to THROUGHPUT.
  (void)player_.next_request(context(30.0, 2.0, 6, 6));
  EXPECT_EQ(player_.rule_state(MediaType::kVideo),
            DashJsPlayerModel::RuleState::kThroughput);
}

TEST_F(DashJsTest, IndependentSchedulingPrefersEmptierBuffer) {
  const auto request = player_.next_request(context(10.0, 2.0));
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->type, MediaType::kVideo);
  const auto request2 = player_.next_request(context(2.0, 10.0));
  ASSERT_TRUE(request2.has_value());
  EXPECT_EQ(request2->type, MediaType::kAudio);
}

TEST_F(DashJsTest, StopsFetchingAtStableBufferTarget) {
  // Below top quality the target is 20 s (fast-switch default).
  EXPECT_FALSE(player_.next_request(context(21.0, 21.0)).has_value());
  EXPECT_TRUE(player_.next_request(context(21.0, 19.0)).has_value());
}

TEST_F(DashJsTest, TopQualityRaisesBufferTarget) {
  // Drive the audio pipeline to its top track (A3).
  for (int i = 0; i < 6; ++i) {
    player_.on_chunk_complete(completion(MediaType::kAudio, 5000.0), context(0, 0));
  }
  (void)player_.next_request(context(2.0, 30.0, 1, 1));
  ASSERT_EQ(player_.current_index(MediaType::kAudio), 2u);
  // At top quality audio keeps fetching up to 30 s even though video stopped.
  const auto request = player_.next_request(context(25.0, 30.0, 2, 2));
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->type, MediaType::kAudio);
}

TEST_F(DashJsTest, UsesTwoConcurrentPipelines) {
  EXPECT_EQ(player_.max_concurrent_downloads(), 2);
}

TEST_F(DashJsTest, RespectsInFlightDownloads) {
  PlayerContext ctx = context(2.0, 2.0);
  ctx.video_downloading = true;
  const auto request = player_.next_request(ctx);
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->type, MediaType::kAudio);
  ctx.audio_downloading = true;
  EXPECT_FALSE(player_.next_request(ctx).has_value());
}

TEST_F(DashJsTest, AudioCanOutrankVideoIndependently) {
  // The §3.4 pathology: audio estimator sees solo downloads at 700 kbps and
  // picks A3 (384 <= 630) while video sits at V2 — the undesirable V2+A3.
  for (int i = 0; i < 4; ++i) {
    player_.on_chunk_complete(completion(MediaType::kAudio, 700.0), context(0, 0));
    player_.on_chunk_complete(completion(MediaType::kVideo, 350.0), context(0, 0));
  }
  const auto audio_request = player_.next_request(context(1.0, 30.0, 4, 4));
  ASSERT_TRUE(audio_request.has_value());
  EXPECT_EQ(audio_request->track_id, "A3");
  const auto video_request = player_.next_request(context(30.0, 1.0, 5, 5));
  ASSERT_TRUE(video_request.has_value());
  EXPECT_EQ(video_request->track_id, "V2");
}

}  // namespace
}  // namespace demuxabr
