#include "media/combination.h"

#include <gtest/gtest.h>

#include <map>

namespace demuxabr {
namespace {

TEST(Combinations, MakeCombinationSumsBitrates) {
  const BitrateLadder ladder = youtube_drama_ladder();
  const AvCombination combo = make_combination(ladder, "V3", "A2");
  EXPECT_DOUBLE_EQ(combo.avg_kbps, 362 + 196);
  EXPECT_DOUBLE_EQ(combo.peak_kbps, 641 + 199);
  EXPECT_DOUBLE_EQ(combo.declared_kbps, 473 + 196);
  EXPECT_EQ(combo.label(), "V3+A2");
}

TEST(Combinations, AllCombinationsCount) {
  const auto combos = all_combinations(youtube_drama_ladder());
  EXPECT_EQ(combos.size(), 18u);  // 6 video x 3 audio
}

// Table 2 of the paper, verbatim: all 18 combinations with their aggregate
// average and peak bitrates, in increasing peak order.
TEST(Combinations, Table2ValuesExact) {
  const auto combos = all_combinations(youtube_drama_ladder());
  struct Row {
    const char* label;
    double avg, peak;
  };
  const Row table2[] = {
      {"V1+A1", 239, 253},   {"V1+A2", 307, 318},   {"V2+A1", 374, 395},
      {"V2+A2", 442, 460},   {"V1+A3", 495, 510},   {"V2+A3", 630, 652},
      {"V3+A1", 490, 775},   {"V3+A2", 558, 840},   {"V3+A3", 746, 1032},
      {"V4+A1", 862, 1324},  {"V4+A2", 930, 1389},  {"V4+A3", 1118, 1581},
      {"V5+A1", 1549, 2516}, {"V5+A2", 1617, 2581}, {"V5+A3", 1805, 2773},
      {"V6+A1", 2856, 4581}, {"V6+A2", 2924, 4646}, {"V6+A3", 3112, 4838},
  };
  ASSERT_EQ(combos.size(), 18u);
  for (std::size_t i = 0; i < 18; ++i) {
    EXPECT_EQ(combos[i].label(), table2[i].label) << "row " << i;
    EXPECT_DOUBLE_EQ(combos[i].avg_kbps, table2[i].avg) << table2[i].label;
    EXPECT_DOUBLE_EQ(combos[i].peak_kbps, table2[i].peak) << table2[i].label;
  }
}

// Table 3: the curated H_sub subset.
TEST(Combinations, Table3ValuesExact) {
  const auto combos = curated_subset(youtube_drama_ladder());
  struct Row {
    const char* label;
    double avg, peak;
  };
  const Row table3[] = {
      {"V1+A1", 239, 253},  {"V2+A1", 374, 395},   {"V3+A2", 558, 840},
      {"V4+A2", 930, 1389}, {"V5+A3", 1805, 2773}, {"V6+A3", 3112, 4838},
  };
  ASSERT_EQ(combos.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(combos[i].label(), table3[i].label);
    EXPECT_DOUBLE_EQ(combos[i].avg_kbps, table3[i].avg);
    EXPECT_DOUBLE_EQ(combos[i].peak_kbps, table3[i].peak);
  }
}

TEST(Combinations, AllCombinationsSortedByPeak) {
  const auto combos = all_combinations(youtube_drama_ladder());
  for (std::size_t i = 1; i < combos.size(); ++i) {
    EXPECT_LE(combos[i - 1].peak_kbps, combos[i].peak_kbps);
  }
}

TEST(Combinations, ProportionalPairingCoversEveryVideoOnce) {
  const auto combos = proportional_pairing(youtube_drama_ladder());
  std::map<std::string, int> video_uses;
  for (const AvCombination& c : combos) ++video_uses[c.video_id];
  EXPECT_EQ(video_uses.size(), 6u);
  for (const auto& [id, uses] : video_uses) EXPECT_EQ(uses, 1) << id;
}

TEST(Combinations, ProportionalPairingAudioMonotone) {
  const BitrateLadder ladder = youtube_drama_ladder();
  const auto combos = proportional_pairing(ladder);
  std::size_t previous = 0;
  for (const AvCombination& c : combos) {
    const std::size_t rung = ladder.index_of(c.audio_id).value();
    EXPECT_GE(rung, previous);
    previous = rung;
  }
}

TEST(Combinations, ProportionalPairingMoreAudioThanVideo) {
  // 2 video tracks, 5 audio tracks: indices must stay in range.
  const BitrateLadder ladder = make_ladder({32, 64, 96, 128, 192}, {300, 900});
  const auto combos = proportional_pairing(ladder);
  ASSERT_EQ(combos.size(), 2u);
  EXPECT_EQ(combos[0].audio_id, "A1");
  EXPECT_EQ(combos[1].audio_id, "A3");  // floor(1*5/2)=2 -> third track
}

TEST(Combinations, FindAndContains) {
  const auto combos = curated_subset(youtube_drama_ladder());
  EXPECT_TRUE(contains_combination(combos, "V3", "A2"));
  EXPECT_FALSE(contains_combination(combos, "V3", "A3"));
  const auto found = find_combination(combos, "V5", "A3");
  ASSERT_TRUE(found.has_value());
  EXPECT_DOUBLE_EQ(found->peak_kbps, 2773);
  EXPECT_FALSE(find_combination(combos, "V1", "A3").has_value());
}

TEST(Combinations, SortByDeclared) {
  auto combos = all_combinations(youtube_drama_ladder());
  sort_by_declared(combos);
  for (std::size_t i = 1; i < combos.size(); ++i) {
    EXPECT_LE(combos[i - 1].declared_kbps, combos[i].declared_kbps);
  }
}

TEST(Combinations, EqualityIsByTrackIds) {
  const BitrateLadder ladder = youtube_drama_ladder();
  EXPECT_TRUE(make_combination(ladder, "V1", "A1") == make_combination(ladder, "V1", "A1"));
  EXPECT_FALSE(make_combination(ladder, "V1", "A1") == make_combination(ladder, "V1", "A2"));
}

class PairingShapeSweep
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(PairingShapeSweep, PairingIsTotalAndMonotone) {
  const auto [num_audio, num_video] = GetParam();
  std::vector<double> audio_kbps;
  std::vector<double> video_kbps;
  for (std::size_t i = 0; i < num_audio; ++i) {
    audio_kbps.push_back(32.0 * static_cast<double>(i + 1));
  }
  for (std::size_t i = 0; i < num_video; ++i) {
    video_kbps.push_back(200.0 * static_cast<double>(i + 1));
  }
  const BitrateLadder ladder = make_ladder(audio_kbps, video_kbps);
  const auto combos = proportional_pairing(ladder);
  ASSERT_EQ(combos.size(), num_video);
  std::size_t previous = 0;
  for (const AvCombination& c : combos) {
    const auto rung = ladder.index_of(c.audio_id);
    ASSERT_TRUE(rung.has_value());
    EXPECT_GE(*rung, previous);
    previous = *rung;
  }
  // Highest video pairs with the highest audio when counts divide evenly.
  if (num_video % num_audio == 0) {
    EXPECT_EQ(ladder.index_of(combos.back().audio_id).value(), num_audio - 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PairingShapeSweep,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},
                      std::pair<std::size_t, std::size_t>{1, 6},
                      std::pair<std::size_t, std::size_t>{3, 6},
                      std::pair<std::size_t, std::size_t>{2, 8},
                      std::pair<std::size_t, std::size_t>{4, 4},
                      std::pair<std::size_t, std::size_t>{6, 3}));

}  // namespace
}  // namespace demuxabr
