#include "sim/session.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "manifest/builder.h"

namespace demuxabr {
namespace {

Content small_content(double duration_s = 40.0, double chunk_s = 4.0,
                      double audio_kbps = 64.0, double video_kbps = 200.0) {
  return ContentBuilder(make_ladder({audio_kbps}, {video_kbps}, /*video_peak=*/1.2))
      .duration_s(duration_s)
      .chunk_duration_s(chunk_s)
      .build();
}

ManifestView view_of(const Content& content) {
  return view_from_mpd(build_dash_mpd(content));
}

/// Deterministic scripted player: always downloads the single available
/// track per type, fills whichever eligible buffer is lower, and records
/// every event it observes for assertions.
class ScriptedPlayer : public PlayerAdapter {
 public:
  ScriptedPlayer(int max_concurrent, double buffer_target)
      : max_concurrent_(max_concurrent), buffer_target_(buffer_target) {}

  [[nodiscard]] std::string name() const override { return "scripted"; }
  void start(const ManifestView& view) override { view_ = view; }
  [[nodiscard]] int max_concurrent_downloads() const override { return max_concurrent_; }

  std::optional<DownloadRequest> next_request(const PlayerContext& ctx) override {
    std::optional<MediaType> chosen;
    for (MediaType type : {MediaType::kAudio, MediaType::kVideo}) {
      if (ctx.downloading(type)) continue;
      if (ctx.next_chunk(type) >= ctx.total_chunks) continue;
      if (ctx.buffer_s(type) >= buffer_target_) continue;
      if (!chosen.has_value() || ctx.buffer_s(type) < ctx.buffer_s(*chosen)) {
        chosen = type;
      }
    }
    if (!chosen.has_value()) return std::nullopt;
    DownloadRequest request;
    request.type = *chosen;
    request.track_id = view_.tracks(*chosen).front().id;
    request.chunk_index = ctx.next_chunk(*chosen);
    return request;
  }

  void on_progress(const ProgressSample& sample) override {
    samples.push_back(sample);
  }
  void on_chunk_complete(const ChunkCompletion& completion,
                         const PlayerContext& ctx) override {
    (void)ctx;
    completions.push_back(completion);
  }

  std::vector<ProgressSample> samples;
  std::vector<ChunkCompletion> completions;

 private:
  int max_concurrent_;
  double buffer_target_;
  ManifestView view_;
};

TEST(Session, CompletesOnAmpleBandwidth) {
  const Content content = small_content();
  ScriptedPlayer player(1, 20.0);
  const SessionLog log = run_session(content, view_of(content),
                                     Network::shared(BandwidthTrace::constant(2000.0)),
                                     player);
  EXPECT_TRUE(log.completed);
  EXPECT_TRUE(log.stalls.empty());
  EXPECT_GE(log.end_time_s, content.duration_s());
  EXPECT_LT(log.end_time_s, content.duration_s() + 10.0);
}

TEST(Session, DownloadsEveryChunkOfBothTypes) {
  const Content content = small_content();
  ScriptedPlayer player(1, 60.0);
  const SessionLog log = run_session(content, view_of(content),
                                     Network::shared(BandwidthTrace::constant(2000.0)),
                                     player);
  int audio_chunks = 0;
  int video_chunks = 0;
  for (const DownloadRecord& d : log.downloads) {
    (d.type == MediaType::kAudio ? audio_chunks : video_chunks) += 1;
  }
  EXPECT_EQ(audio_chunks, content.num_chunks());
  EXPECT_EQ(video_chunks, content.num_chunks());
  for (const std::string& id : log.video_selection) EXPECT_EQ(id, "V1");
  for (const std::string& id : log.audio_selection) EXPECT_EQ(id, "A1");
}

TEST(Session, ChunksDownloadInOrderPerType) {
  const Content content = small_content();
  ScriptedPlayer player(2, 60.0);
  const SessionLog log = run_session(content, view_of(content),
                                     Network::shared(BandwidthTrace::constant(2000.0)),
                                     player);
  int next_audio = 0;
  int next_video = 0;
  for (const DownloadRecord& d : log.downloads) {
    int& next = d.type == MediaType::kAudio ? next_audio : next_video;
    EXPECT_EQ(d.chunk_index, next);
    ++next;
  }
}

TEST(Session, StartupDelayMatchesThreshold) {
  const Content content = small_content();
  ScriptedPlayer player(1, 60.0);
  SessionConfig config;
  config.startup_buffer_s = 2.0;
  const SessionLog log = run_session(content, view_of(content),
                                     Network::shared(BandwidthTrace::constant(1000.0)),
                                     player, config);
  // One audio (32 KB) + one video (100 KB) chunk at 1 Mbps + 2 RTTs.
  EXPECT_GT(log.startup_delay_s, 0.5);
  EXPECT_LT(log.startup_delay_s, 3.0);
}

TEST(Session, StallsWhenBandwidthBelowConsumption) {
  // 264 kbps needed, 150 kbps available: must stall and must not complete
  // earlier than bytes/bandwidth allows.
  const Content content = small_content();
  ScriptedPlayer player(1, 60.0);
  const SessionLog log = run_session(content, view_of(content),
                                     Network::shared(BandwidthTrace::constant(150.0)),
                                     player);
  EXPECT_TRUE(log.completed);
  EXPECT_GT(log.stalls.size(), 0u);
  EXPECT_GT(log.total_stall_s(), 10.0);
  const double min_transfer_time =
      static_cast<double>(log.total_downloaded_bytes()) * 8.0 / 1000.0 / 150.0;
  EXPECT_GE(log.end_time_s, min_transfer_time - 1e-6);
}

TEST(Session, StallIntervalsAreOrderedAndDisjoint) {
  const Content content = small_content();
  ScriptedPlayer player(1, 60.0);
  const SessionLog log = run_session(content, view_of(content),
                                     Network::shared(BandwidthTrace::constant(150.0)),
                                     player);
  double previous_end = 0.0;
  for (const StallEvent& stall : log.stalls) {
    EXPECT_GT(stall.end_t, stall.start_t);
    EXPECT_GE(stall.start_t, previous_end);
    previous_end = stall.end_t;
  }
}

TEST(Session, SerialDownloadSeesFullLinkRate) {
  const Content content = small_content();
  ScriptedPlayer player(1, 60.0);
  const SessionLog log = run_session(content, view_of(content),
                                     Network::shared(BandwidthTrace::constant(1000.0)),
                                     player);
  // Every download is solo: throughput (net of RTT) approaches 1000 kbps
  // and can never exceed it.
  for (const DownloadRecord& d : log.downloads) {
    EXPECT_LE(d.throughput_kbps(), 1000.0 + 1e-6);
    EXPECT_GT(d.throughput_kbps(), 300.0);  // RTT drag bounded
  }
}

TEST(Session, ConcurrentFlowsShareTheBottleneck) {
  // With concurrency 2 and identical audio/video tracks, concurrent
  // downloads each see roughly half the link.
  const Content content = small_content(40.0, 4.0, 200.0, 200.0);
  ScriptedPlayer player(2, 60.0);
  const SessionLog log = run_session(content, view_of(content),
                                     Network::shared(BandwidthTrace::constant(1000.0)),
                                     player);
  // The first two downloads start together and overlap fully.
  ASSERT_GE(log.downloads.size(), 2u);
  const DownloadRecord& first = log.downloads[0];
  EXPECT_LT(first.throughput_kbps(), 750.0);
  EXPECT_GT(first.throughput_kbps(), 300.0);
}

TEST(Session, SplitNetworkIsolatesMediaTypes) {
  const Content content = small_content(40.0, 4.0, 200.0, 200.0);
  ScriptedPlayer player(2, 60.0);
  const Network network = Network::split(BandwidthTrace::constant(1000.0),
                                         BandwidthTrace::constant(1000.0));
  const SessionLog log =
      run_session(content, view_of(content), network, player);
  // No sharing: every download runs near full rate.
  for (const DownloadRecord& d : log.downloads) {
    EXPECT_GT(d.throughput_kbps(), 700.0);
  }
}

TEST(Session, RttDelaysEveryDownload) {
  const Content content = small_content();
  ScriptedPlayer player(1, 60.0);
  const Network network = Network::shared(BandwidthTrace::constant(10000.0), 0.2);
  const SessionLog log = run_session(content, view_of(content), network, player);
  for (const DownloadRecord& d : log.downloads) {
    EXPECT_GE(d.end_t - d.start_t, 0.2 - 1e-9);
  }
}

TEST(Session, ProgressSamplesSumToChunkBytes) {
  const Content content = small_content();
  ScriptedPlayer player(1, 60.0);
  const SessionLog log = run_session(content, view_of(content),
                                     Network::shared(BandwidthTrace::constant(800.0)),
                                     player);
  std::int64_t sampled = 0;
  for (const ProgressSample& s : player.samples) {
    EXPECT_LE(s.duration_s(), 0.125 + 1e-9);
    EXPECT_GE(s.bytes, 0);
    sampled += s.bytes;
  }
  EXPECT_EQ(sampled, log.total_downloaded_bytes());
}

TEST(Session, CompletionEventsMatchLog) {
  const Content content = small_content();
  ScriptedPlayer player(1, 60.0);
  const SessionLog log = run_session(content, view_of(content),
                                     Network::shared(BandwidthTrace::constant(800.0)),
                                     player);
  ASSERT_EQ(player.completions.size(), log.downloads.size());
  for (std::size_t i = 0; i < log.downloads.size(); ++i) {
    EXPECT_EQ(player.completions[i].bytes, log.downloads[i].bytes);
    EXPECT_EQ(player.completions[i].chunk_index, log.downloads[i].chunk_index);
    EXPECT_DOUBLE_EQ(player.completions[i].end_t, log.downloads[i].end_t);
  }
}

TEST(Session, BufferSeriesNonNegativeAndBounded) {
  const Content content = small_content();
  ScriptedPlayer player(1, 12.0);
  const SessionLog log = run_session(content, view_of(content),
                                     Network::shared(BandwidthTrace::constant(1000.0)),
                                     player);
  for (const auto& point : log.video_buffer_s.points()) {
    EXPECT_GE(point.value, 0.0);
    EXPECT_LE(point.value, 12.0 + 4.0 + 1e-6);  // target + one chunk
  }
}

TEST(Session, HitsSimTimeCapWhenStarved) {
  // 1 kbps cannot deliver the content; the engine must bail at the cap.
  const Content content = small_content(8.0);
  ScriptedPlayer player(1, 60.0);
  SessionConfig config;
  config.max_sim_time_s = 30.0;
  const SessionLog log = run_session(content, view_of(content),
                                     Network::shared(BandwidthTrace::constant(1.0)),
                                     player, config);
  EXPECT_FALSE(log.completed);
  EXPECT_GE(log.end_time_s, 30.0);
}

TEST(Session, DeterministicAcrossRuns) {
  const Content content = small_content();
  ScriptedPlayer p1(2, 20.0);
  ScriptedPlayer p2(2, 20.0);
  const Network n1 = Network::shared(BandwidthTrace::square_wave(300, 900, 8, 8));
  const Network n2 = Network::shared(BandwidthTrace::square_wave(300, 900, 8, 8));
  const SessionLog a = run_session(content, view_of(content), n1, p1);
  const SessionLog b = run_session(content, view_of(content), n2, p2);
  ASSERT_EQ(a.downloads.size(), b.downloads.size());
  for (std::size_t i = 0; i < a.downloads.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.downloads[i].end_t, b.downloads[i].end_t);
  }
  EXPECT_DOUBLE_EQ(a.end_time_s, b.end_time_s);
}

TEST(Session, PlaybackTimeEqualsContentPlusStallsPlusStartup) {
  const Content content = small_content();
  ScriptedPlayer player(1, 60.0);
  const SessionLog log = run_session(content, view_of(content),
                                     Network::shared(BandwidthTrace::constant(400.0)),
                                     player);
  ASSERT_TRUE(log.completed);
  EXPECT_NEAR(log.end_time_s,
              log.startup_delay_s + content.duration_s() + log.total_stall_s(), 0.01);
}

}  // namespace
}  // namespace demuxabr
