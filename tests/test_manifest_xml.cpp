#include "manifest/xml.h"

#include <gtest/gtest.h>

namespace demuxabr::xml {
namespace {

TEST(XmlWriter, SelfClosingElement) {
  Element el("Empty");
  el.set_attribute("a", "1");
  EXPECT_EQ(el.to_string(), "<Empty a=\"1\"/>\n");
}

TEST(XmlWriter, NestedChildrenIndented) {
  Element root("Root");
  root.add_child("Child").set_attribute("k", std::int64_t{5});
  const std::string text = root.to_string();
  EXPECT_NE(text.find("<Root>"), std::string::npos);
  EXPECT_NE(text.find("  <Child k=\"5\"/>"), std::string::npos);
  EXPECT_NE(text.find("</Root>"), std::string::npos);
}

TEST(XmlWriter, EscapesAttributeValues) {
  Element el("E");
  el.set_attribute("v", "a<b&\"c\"");
  EXPECT_NE(el.to_string().find("a&lt;b&amp;&quot;c&quot;"), std::string::npos);
}

TEST(XmlWriter, DoubleAttributeTrimsZeros) {
  Element el("E");
  el.set_attribute("x", 2.5);
  el.set_attribute("y", 3.0);
  const std::string text = el.to_string();
  EXPECT_NE(text.find("x=\"2.5\""), std::string::npos);
  EXPECT_NE(text.find("y=\"3\""), std::string::npos);
}

TEST(XmlWriter, SetAttributeOverwrites) {
  Element el("E");
  el.set_attribute("k", "1");
  el.set_attribute("k", "2");
  EXPECT_EQ(*el.attribute("k"), "2");
  EXPECT_EQ(el.attributes().size(), 1u);
}

TEST(XmlParser, SimpleDocument) {
  const auto doc = parse("<?xml version=\"1.0\"?><Root a=\"x\"><Child/></Root>");
  ASSERT_TRUE(doc.ok()) << doc.error();
  EXPECT_EQ((*doc)->name(), "Root");
  EXPECT_EQ(*(*doc)->attribute("a"), "x");
  ASSERT_NE((*doc)->first_child("Child"), nullptr);
}

TEST(XmlParser, TextContent) {
  const auto doc = parse("<T>hello &amp; goodbye</T>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ((*doc)->text(), "hello & goodbye");
}

TEST(XmlParser, SkipsComments) {
  const auto doc = parse("<R><!-- a comment --><C/></R>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ((*doc)->children().size(), 1u);
}

TEST(XmlParser, SingleQuotedAttributes) {
  const auto doc = parse("<R k='v'/>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(*(*doc)->attribute("k"), "v");
}

TEST(XmlParser, RejectsMismatchedTags) {
  const auto doc = parse("<A><B></A></B>");
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.error().find("mismatched"), std::string::npos);
}

TEST(XmlParser, RejectsTrailingContent) {
  EXPECT_FALSE(parse("<A/><B/>").ok());
}

TEST(XmlParser, RejectsUnterminatedAttribute) {
  EXPECT_FALSE(parse("<A k=\"v>").ok());
}

TEST(XmlParser, RejectsUnterminatedElement) {
  EXPECT_FALSE(parse("<A><B>").ok());
}

TEST(XmlParser, ErrorsCarryLineNumbers) {
  const auto doc = parse("<A>\n<B>\n</C>\n</A>");
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.error().find("line 3"), std::string::npos);
}

TEST(XmlRoundTrip, NestedStructureSurvives) {
  Element root("MPD");
  root.set_attribute("profiles", "urn:x");
  Element& period = root.add_child("Period");
  period.add_child("AdaptationSet").set_attribute("contentType", "video");
  period.add_child("AdaptationSet").set_attribute("contentType", "audio");

  const auto reparsed = parse(serialize_document(root));
  ASSERT_TRUE(reparsed.ok()) << reparsed.error();
  const Element* p = (*reparsed)->first_child("Period");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->children_named("AdaptationSet").size(), 2u);
}

TEST(XmlRoundTrip, EscapedCharactersSurvive) {
  Element root("R");
  root.set_attribute("v", "<&>\"'");
  const auto reparsed = parse(serialize_document(root));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(*(*reparsed)->attribute("v"), "<&>\"'");
}

TEST(ChildrenNamed, FiltersCorrectly) {
  Element root("R");
  root.add_child("A");
  root.add_child("B");
  root.add_child("A");
  EXPECT_EQ(root.children_named("A").size(), 2u);
  EXPECT_EQ(root.children_named("C").size(), 0u);
  EXPECT_EQ(root.first_child("B")->name(), "B");
  EXPECT_EQ(root.first_child("C"), nullptr);
}

}  // namespace
}  // namespace demuxabr::xml
