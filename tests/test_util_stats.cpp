#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace demuxabr {
namespace {

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  stats.add(3.5);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.5);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 3.5);
}

TEST(RunningStats, ClearResets) {
  RunningStats stats;
  stats.add(1.0);
  stats.clear();
  EXPECT_EQ(stats.count(), 0u);
}

TEST(Ewma, FirstSampleInitializes) {
  Ewma ewma(0.5);
  EXPECT_TRUE(ewma.empty());
  ewma.add(10.0);
  EXPECT_DOUBLE_EQ(ewma.value(), 10.0);
}

TEST(Ewma, ConvergesTowardConstant) {
  Ewma ewma(0.3);
  ewma.add(0.0);
  for (int i = 0; i < 60; ++i) ewma.add(100.0);
  EXPECT_NEAR(ewma.value(), 100.0, 1e-6);
}

TEST(HalfLifeEwma, BiasCorrectedEstimateMatchesConstantInput) {
  HalfLifeEwma ewma(2.0);
  ewma.add(0.125, 500.0);
  // With bias correction, a single constant-valued sample already reports
  // that value (this is how Shaka's estimator behaves).
  EXPECT_NEAR(ewma.estimate(), 500.0, 1e-9);
  for (int i = 0; i < 100; ++i) ewma.add(0.125, 500.0);
  EXPECT_NEAR(ewma.estimate(), 500.0, 1e-9);
}

TEST(HalfLifeEwma, HalfLifeSemantics) {
  HalfLifeEwma ewma(2.0);
  // Saturate at 1000, then feed 0 for exactly one half-life of weight:
  // the *uncorrected* mass halves; the estimate lands between.
  for (int i = 0; i < 400; ++i) ewma.add(0.125, 1000.0);
  ewma.add(2.0, 0.0);
  EXPECT_LT(ewma.estimate(), 600.0);
  EXPECT_GT(ewma.estimate(), 300.0);
}

TEST(HalfLifeEwma, IgnoresNonPositiveWeight) {
  HalfLifeEwma ewma(2.0);
  ewma.add(0.0, 1000.0);
  ewma.add(-1.0, 1000.0);
  EXPECT_DOUBLE_EQ(ewma.total_weight(), 0.0);
}

TEST(HalfLifeEwma, RecencyWeighting) {
  HalfLifeEwma ewma(1.0);
  for (int i = 0; i < 10; ++i) ewma.add(1.0, 100.0);
  for (int i = 0; i < 10; ++i) ewma.add(1.0, 900.0);
  // Recent 900s dominate a 1 s half-life.
  EXPECT_GT(ewma.estimate(), 850.0);
}

TEST(SlidingPercentile, MedianOfEqualWeights) {
  SlidingPercentile sp(100.0);
  for (double v : {10.0, 20.0, 30.0, 40.0, 50.0}) sp.add(1.0, v);
  EXPECT_DOUBLE_EQ(sp.percentile(0.5, -1.0), 30.0);
  EXPECT_DOUBLE_EQ(sp.percentile(0.0, -1.0), 10.0);
  EXPECT_DOUBLE_EQ(sp.percentile(1.0, -1.0), 50.0);
}

TEST(SlidingPercentile, FallbackWhenEmpty) {
  SlidingPercentile sp(10.0);
  EXPECT_DOUBLE_EQ(sp.percentile(0.5, 1234.0), 1234.0);
}

TEST(SlidingPercentile, EvictsOldestWhenOverWeight) {
  SlidingPercentile sp(2.0);
  sp.add(1.0, 100.0);
  sp.add(1.0, 200.0);
  sp.add(1.0, 300.0);  // evicts the 100 sample
  EXPECT_DOUBLE_EQ(sp.percentile(0.0, -1.0), 200.0);
}

TEST(SlidingPercentile, WeightSkewsPercentile) {
  SlidingPercentile sp(100.0);
  sp.add(9.0, 100.0);
  sp.add(1.0, 1000.0);
  // 90% of the weight sits at 100.
  EXPECT_DOUBLE_EQ(sp.percentile(0.5, -1.0), 100.0);
  EXPECT_DOUBLE_EQ(sp.percentile(0.99, -1.0), 1000.0);
}

TEST(SlidingWindow, MeanAndHarmonicMean) {
  SlidingWindow window(4);
  window.add(100.0);
  window.add(400.0);
  EXPECT_DOUBLE_EQ(window.mean(), 250.0);
  EXPECT_DOUBLE_EQ(window.harmonic_mean(), 2.0 / (1.0 / 100.0 + 1.0 / 400.0));
}

TEST(SlidingWindow, EvictsBeyondCapacity) {
  SlidingWindow window(2);
  window.add(1.0);
  window.add(2.0);
  window.add(3.0);
  EXPECT_EQ(window.size(), 2u);
  EXPECT_DOUBLE_EQ(window.mean(), 2.5);
  EXPECT_DOUBLE_EQ(window.last(), 3.0);
}

TEST(SlidingWindow, EmptyReturnsZero) {
  SlidingWindow window(4);
  EXPECT_DOUBLE_EQ(window.mean(), 0.0);
  EXPECT_DOUBLE_EQ(window.harmonic_mean(), 0.0);
  EXPECT_FALSE(window.full());
}

TEST(PercentileOf, InterpolatesBetweenValues) {
  EXPECT_DOUBLE_EQ(percentile_of({1.0, 2.0, 3.0, 4.0}, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(percentile_of({4.0, 1.0, 3.0, 2.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile_of({4.0, 1.0, 3.0, 2.0}, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile_of({}, 0.5), 0.0);
}

class EwmaAlphaSweep : public ::testing::TestWithParam<double> {};

TEST_P(EwmaAlphaSweep, StaysWithinInputRange) {
  Ewma ewma(GetParam());
  for (int i = 0; i < 100; ++i) ewma.add(i % 2 == 0 ? 10.0 : 20.0);
  EXPECT_GE(ewma.value(), 10.0);
  EXPECT_LE(ewma.value(), 20.0);
}

INSTANTIATE_TEST_SUITE_P(Alphas, EwmaAlphaSweep,
                         ::testing::Values(0.01, 0.1, 0.3, 0.5, 0.9, 1.0));

class HalfLifeSweep : public ::testing::TestWithParam<double> {};

TEST_P(HalfLifeSweep, ConstantInputIsFixedPoint) {
  HalfLifeEwma ewma(GetParam());
  for (int i = 0; i < 50; ++i) ewma.add(0.5, 777.0);
  EXPECT_NEAR(ewma.estimate(), 777.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(HalfLives, HalfLifeSweep,
                         ::testing::Values(0.5, 1.0, 2.0, 5.0, 10.0));

}  // namespace
}  // namespace demuxabr
