#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace demuxabr {
namespace {

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  stats.add(3.5);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.5);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 3.5);
}

TEST(RunningStats, ClearResets) {
  RunningStats stats;
  stats.add(1.0);
  stats.clear();
  EXPECT_EQ(stats.count(), 0u);
}

TEST(Ewma, FirstSampleInitializes) {
  Ewma ewma(0.5);
  EXPECT_TRUE(ewma.empty());
  ewma.add(10.0);
  EXPECT_DOUBLE_EQ(ewma.value(), 10.0);
}

TEST(Ewma, ConvergesTowardConstant) {
  Ewma ewma(0.3);
  ewma.add(0.0);
  for (int i = 0; i < 60; ++i) ewma.add(100.0);
  EXPECT_NEAR(ewma.value(), 100.0, 1e-6);
}

TEST(HalfLifeEwma, BiasCorrectedEstimateMatchesConstantInput) {
  HalfLifeEwma ewma(2.0);
  ewma.add(0.125, 500.0);
  // With bias correction, a single constant-valued sample already reports
  // that value (this is how Shaka's estimator behaves).
  EXPECT_NEAR(ewma.estimate(), 500.0, 1e-9);
  for (int i = 0; i < 100; ++i) ewma.add(0.125, 500.0);
  EXPECT_NEAR(ewma.estimate(), 500.0, 1e-9);
}

TEST(HalfLifeEwma, HalfLifeSemantics) {
  HalfLifeEwma ewma(2.0);
  // Saturate at 1000, then feed 0 for exactly one half-life of weight:
  // the *uncorrected* mass halves; the estimate lands between.
  for (int i = 0; i < 400; ++i) ewma.add(0.125, 1000.0);
  ewma.add(2.0, 0.0);
  EXPECT_LT(ewma.estimate(), 600.0);
  EXPECT_GT(ewma.estimate(), 300.0);
}

TEST(HalfLifeEwma, IgnoresNonPositiveWeight) {
  HalfLifeEwma ewma(2.0);
  ewma.add(0.0, 1000.0);
  ewma.add(-1.0, 1000.0);
  EXPECT_DOUBLE_EQ(ewma.total_weight(), 0.0);
}

TEST(HalfLifeEwma, RecencyWeighting) {
  HalfLifeEwma ewma(1.0);
  for (int i = 0; i < 10; ++i) ewma.add(1.0, 100.0);
  for (int i = 0; i < 10; ++i) ewma.add(1.0, 900.0);
  // Recent 900s dominate a 1 s half-life.
  EXPECT_GT(ewma.estimate(), 850.0);
}

TEST(SlidingPercentile, MedianOfEqualWeights) {
  SlidingPercentile sp(100.0);
  for (double v : {10.0, 20.0, 30.0, 40.0, 50.0}) sp.add(1.0, v);
  EXPECT_DOUBLE_EQ(sp.percentile(0.5, -1.0), 30.0);
  EXPECT_DOUBLE_EQ(sp.percentile(0.0, -1.0), 10.0);
  EXPECT_DOUBLE_EQ(sp.percentile(1.0, -1.0), 50.0);
}

TEST(SlidingPercentile, FallbackWhenEmpty) {
  SlidingPercentile sp(10.0);
  EXPECT_DOUBLE_EQ(sp.percentile(0.5, 1234.0), 1234.0);
}

TEST(SlidingPercentile, EvictsOldestWhenOverWeight) {
  SlidingPercentile sp(2.0);
  sp.add(1.0, 100.0);
  sp.add(1.0, 200.0);
  sp.add(1.0, 300.0);  // evicts the 100 sample
  EXPECT_DOUBLE_EQ(sp.percentile(0.0, -1.0), 200.0);
}

TEST(SlidingPercentile, WeightSkewsPercentile) {
  SlidingPercentile sp(100.0);
  sp.add(9.0, 100.0);
  sp.add(1.0, 1000.0);
  // 90% of the weight sits at 100.
  EXPECT_DOUBLE_EQ(sp.percentile(0.5, -1.0), 100.0);
  EXPECT_DOUBLE_EQ(sp.percentile(0.99, -1.0), 1000.0);
}

TEST(SlidingWindow, MeanAndHarmonicMean) {
  SlidingWindow window(4);
  window.add(100.0);
  window.add(400.0);
  EXPECT_DOUBLE_EQ(window.mean(), 250.0);
  EXPECT_DOUBLE_EQ(window.harmonic_mean(), 2.0 / (1.0 / 100.0 + 1.0 / 400.0));
}

TEST(SlidingWindow, EvictsBeyondCapacity) {
  SlidingWindow window(2);
  window.add(1.0);
  window.add(2.0);
  window.add(3.0);
  EXPECT_EQ(window.size(), 2u);
  EXPECT_DOUBLE_EQ(window.mean(), 2.5);
  EXPECT_DOUBLE_EQ(window.last(), 3.0);
}

TEST(SlidingWindow, EmptyReturnsZero) {
  SlidingWindow window(4);
  EXPECT_DOUBLE_EQ(window.mean(), 0.0);
  EXPECT_DOUBLE_EQ(window.harmonic_mean(), 0.0);
  EXPECT_FALSE(window.full());
}

TEST(PercentileOf, InterpolatesBetweenValues) {
  EXPECT_DOUBLE_EQ(percentile_of({1.0, 2.0, 3.0, 4.0}, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(percentile_of({4.0, 1.0, 3.0, 2.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile_of({4.0, 1.0, 3.0, 2.0}, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile_of({}, 0.5), 0.0);
}

TEST(JainFairness, PerfectFairnessIsOne) {
  EXPECT_DOUBLE_EQ(jain_fairness({500.0, 500.0, 500.0, 500.0}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness({1.0}), 1.0);
  // All-zero allocations are equal allocations.
  EXPECT_DOUBLE_EQ(jain_fairness({0.0, 0.0, 0.0}), 1.0);
}

TEST(JainFairness, SingleHogIsOneOverN) {
  EXPECT_DOUBLE_EQ(jain_fairness({1000.0, 0.0, 0.0, 0.0}), 0.25);
  EXPECT_DOUBLE_EQ(jain_fairness({7.0, 0.0}), 0.5);
}

TEST(JainFairness, KnownIntermediateValue) {
  // (1+2+3)^2 / (3 * (1+4+9)) = 36/42
  EXPECT_NEAR(jain_fairness({1.0, 2.0, 3.0}), 36.0 / 42.0, 1e-12);
}

TEST(JainFairness, EmptyIsZero) { EXPECT_DOUBLE_EQ(jain_fairness({}), 0.0); }

TEST(JainFairness, ScaleInvariant) {
  const std::vector<double> base = {100.0, 250.0, 400.0, 800.0};
  std::vector<double> scaled = base;
  for (double& x : scaled) x *= 37.5;
  EXPECT_NEAR(jain_fairness(base), jain_fairness(scaled), 1e-12);
}

TEST(PercentileSummary, EmptyIsAllZero) {
  const PercentileSummary s = summarize_percentiles({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.p50, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(PercentileSummary, MatchesPercentileOf) {
  const std::vector<double> values = {9.0, 1.0, 7.0, 3.0, 5.0, 2.0, 8.0, 4.0, 6.0};
  const PercentileSummary s = summarize_percentiles(values);
  EXPECT_EQ(s.count, values.size());
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.p25, percentile_of(values, 0.25));
  EXPECT_DOUBLE_EQ(s.p50, 5.0);
  EXPECT_DOUBLE_EQ(s.p75, percentile_of(values, 0.75));
  EXPECT_DOUBLE_EQ(s.p90, percentile_of(values, 0.90));
  EXPECT_DOUBLE_EQ(s.p99, percentile_of(values, 0.99));
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
}

TEST(PercentileSummary, SingleSample) {
  const PercentileSummary s = summarize_percentiles({42.0});
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.min, 42.0);
  EXPECT_DOUBLE_EQ(s.p25, 42.0);
  EXPECT_DOUBLE_EQ(s.p50, 42.0);
  EXPECT_DOUBLE_EQ(s.p99, 42.0);
  EXPECT_DOUBLE_EQ(s.max, 42.0);
  EXPECT_DOUBLE_EQ(s.mean, 42.0);
}

class EwmaAlphaSweep : public ::testing::TestWithParam<double> {};

TEST_P(EwmaAlphaSweep, StaysWithinInputRange) {
  Ewma ewma(GetParam());
  for (int i = 0; i < 100; ++i) ewma.add(i % 2 == 0 ? 10.0 : 20.0);
  EXPECT_GE(ewma.value(), 10.0);
  EXPECT_LE(ewma.value(), 20.0);
}

INSTANTIATE_TEST_SUITE_P(Alphas, EwmaAlphaSweep,
                         ::testing::Values(0.01, 0.1, 0.3, 0.5, 0.9, 1.0));

class HalfLifeSweep : public ::testing::TestWithParam<double> {};

TEST_P(HalfLifeSweep, ConstantInputIsFixedPoint) {
  HalfLifeEwma ewma(GetParam());
  for (int i = 0; i < 50; ++i) ewma.add(0.5, 777.0);
  EXPECT_NEAR(ewma.estimate(), 777.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(HalfLives, HalfLifeSweep,
                         ::testing::Values(0.5, 1.0, 2.0, 5.0, 10.0));

}  // namespace
}  // namespace demuxabr
