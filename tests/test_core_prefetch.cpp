#include "core/balanced_prefetch.h"

#include <gtest/gtest.h>

namespace demuxabr {
namespace {

PlayerContext context(double audio_buffer, double video_buffer, int next_audio = 0,
                      int next_video = 0, int total = 75, bool audio_busy = false,
                      bool video_busy = false) {
  PlayerContext ctx;
  ctx.audio_buffer_s = audio_buffer;
  ctx.video_buffer_s = video_buffer;
  ctx.next_audio_chunk = next_audio;
  ctx.next_video_chunk = next_video;
  ctx.total_chunks = total;
  ctx.audio_downloading = audio_busy;
  ctx.video_downloading = video_busy;
  return ctx;
}

TEST(BalancedPrefetch, PicksLaggingType) {
  BalancedPrefetcher prefetcher;
  EXPECT_EQ(prefetcher.next_type(context(2.0, 8.0)).value(), MediaType::kAudio);
  EXPECT_EQ(prefetcher.next_type(context(8.0, 2.0)).value(), MediaType::kVideo);
}

TEST(BalancedPrefetch, TiePrefersVideo) {
  BalancedPrefetcher prefetcher;
  EXPECT_EQ(prefetcher.next_type(context(4.0, 4.0)).value(), MediaType::kVideo);
}

TEST(BalancedPrefetch, IdlesWhenBothAtTarget) {
  BalancedPrefetchConfig config;
  config.buffer_target_s = 30.0;
  BalancedPrefetcher prefetcher(config);
  EXPECT_FALSE(prefetcher.next_type(context(30.0, 30.0)).has_value());
  EXPECT_TRUE(prefetcher.next_type(context(29.0, 30.0)).has_value());
}

TEST(BalancedPrefetch, SkipsBusyType) {
  // Audio is busy and video is only 2 s ahead (within the imbalance cap):
  // the free slot goes to video.
  BalancedPrefetcher prefetcher;
  const auto type = prefetcher.next_type(
      context(6.0, 8.0, 0, 0, 75, /*audio_busy=*/true, /*video_busy=*/false));
  ASSERT_TRUE(type.has_value());
  EXPECT_EQ(*type, MediaType::kVideo);
}

TEST(BalancedPrefetch, SkipsFinishedType) {
  BalancedPrefetcher prefetcher;
  // Audio fully downloaded: only video remains even though audio lags.
  const auto type = prefetcher.next_type(context(0.0, 10.0, 75, 50));
  ASSERT_TRUE(type.has_value());
  EXPECT_EQ(*type, MediaType::kVideo);
}

TEST(BalancedPrefetch, RefusesToWorsenExcessiveImbalance) {
  BalancedPrefetchConfig config;
  config.max_imbalance_s = 4.0;
  BalancedPrefetcher prefetcher(config);
  // Audio busy, video already 6 s ahead of audio: wait instead of widening.
  const auto type = prefetcher.next_type(
      context(2.0, 8.0, 10, 12, 75, /*audio_busy=*/true, /*video_busy=*/false));
  EXPECT_FALSE(type.has_value());
}

TEST(BalancedPrefetch, AllowsSoloFetchWithinImbalanceCap) {
  BalancedPrefetchConfig config;
  config.max_imbalance_s = 4.0;
  BalancedPrefetcher prefetcher(config);
  // Video only 2 s ahead: fine to continue video while audio is busy.
  const auto type = prefetcher.next_type(
      context(4.0, 6.0, 10, 12, 75, /*audio_busy=*/true, /*video_busy=*/false));
  ASSERT_TRUE(type.has_value());
  EXPECT_EQ(*type, MediaType::kVideo);
}

TEST(BalancedPrefetch, AllowsRunaheadWhenOtherTypeIsFinished) {
  BalancedPrefetchConfig config;
  config.max_imbalance_s = 4.0;
  BalancedPrefetcher prefetcher(config);
  // Audio done downloading entirely: video may run ahead without limit.
  const auto type = prefetcher.next_type(context(0.0, 20.0, 75, 40));
  ASSERT_TRUE(type.has_value());
  EXPECT_EQ(*type, MediaType::kVideo);
}

TEST(BalancedPrefetch, NothingLeftToFetch) {
  BalancedPrefetcher prefetcher;
  EXPECT_FALSE(prefetcher.next_type(context(1.0, 1.0, 75, 75)).has_value());
}

TEST(BalancedPrefetch, ConfigurableImbalance) {
  BalancedPrefetcher prefetcher;
  prefetcher.set_max_imbalance_s(10.0);
  EXPECT_DOUBLE_EQ(prefetcher.config().max_imbalance_s, 10.0);
  // 8 s imbalance now tolerated.
  const auto type = prefetcher.next_type(
      context(2.0, 10.0, 10, 12, 75, /*audio_busy=*/true, /*video_busy=*/false));
  EXPECT_TRUE(type.has_value());
}

}  // namespace
}  // namespace demuxabr
