// Statistical/property battery for the bandwidth-trace corpus
// (net/trace_corpus.h), in four tiers:
//
//  1. Registry sanity: canonical class order, lookup, distinct generators.
//  2. Per-class properties over many seeds: the declared statistical
//     envelope holds (rate floor/ceiling, mean band, CV band, boundary
//     density, max dwell), generation is seed-deterministic (same seed →
//     byte-identical segments; different seeds → different traces),
//     period == requested duration, and the `next_change_after` /
//     `rate_kbps` boundary walk obeys the renormalized-reduction
//     invariants pinned in PR 5 (strictly increasing boundaries, rate
//     constant between boundaries, periodic wrap agreement).
//  3. Differential: every corpus trace behaves bit-identically through a
//     plain net/link.h Link and a degenerate one-hop fleet PathChannel.
//  4. CSV: to_csv ↔ from_csv round-trips corpus traces exactly (%.17g),
//     the new period_s parameter restores periodicity, and a seeded
//     mutation fuzzer over corpus CSVs always returns Result errors —
//     never crashes — on malformed input.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "fleet/topology.h"
#include "net/link.h"
#include "net/trace_corpus.h"
#include "util/rng.h"
#include "util/strings.h"

namespace demuxabr {
namespace {

constexpr double kDuration = 300.0;

std::string trace_bytes(const BandwidthTrace& trace) {
  std::string out = format("period=%.17g;", trace.period_s());
  for (const auto& s : trace.segments()) {
    out += format("%.17g:%.17g;", s.start_s, s.kbps);
  }
  return out;
}

// --- 1. Registry sanity. ---

TEST(TraceCorpus, RegistryHasCanonicalOrder) {
  const auto& registry = trace_class_registry();
  ASSERT_EQ(registry.size(), 4u);
  EXPECT_EQ(registry[0].name, "lte-handoff");
  EXPECT_EQ(registry[1].name, "flaky-wifi");
  EXPECT_EQ(registry[2].name, "long-fat");
  EXPECT_EQ(registry[3].name, "oscillating");
  for (const TraceClass& tc : registry) {
    EXPECT_FALSE(tc.description.empty());
    ASSERT_NE(tc.generate, nullptr);
    EXPECT_EQ(find_trace_class(tc.name), &tc);
  }
  EXPECT_EQ(find_trace_class("no-such-class"), nullptr);
}

TEST(TraceCorpus, GeneratorsAreDistinct) {
  std::set<std::string> fingerprints;
  for (const TraceClass& tc : trace_class_registry()) {
    fingerprints.insert(trace_bytes(tc.generate(kDuration, 7)));
  }
  EXPECT_EQ(fingerprints.size(), trace_class_registry().size());
}

// --- 2. Per-class statistical properties. ---

class TraceCorpusClass : public testing::TestWithParam<std::size_t> {
 protected:
  const TraceClass& cls() const { return trace_class_registry()[GetParam()]; }
};

TEST_P(TraceCorpusClass, EnvelopeHoldsAcrossSeedsAndDurations) {
  for (const double duration : {180.0, 300.0, 480.0}) {
    for (std::uint64_t seed = 0; seed < 16; ++seed) {
      const BandwidthTrace trace = cls().generate(duration, seed);
      EXPECT_EQ(check_envelope(trace, cls().envelope), "")
          << cls().name << " seed " << seed << " duration " << duration;
      EXPECT_DOUBLE_EQ(trace.period_s(), duration);
    }
  }
}

TEST_P(TraceCorpusClass, SameSeedIsByteIdenticalDifferentSeedIsNot) {
  std::set<std::string> distinct;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const std::string a = trace_bytes(cls().generate(kDuration, seed));
    const std::string b = trace_bytes(cls().generate(kDuration, seed));
    EXPECT_EQ(a, b) << cls().name << " seed " << seed;
    distinct.insert(a);
  }
  EXPECT_EQ(distinct.size(), 12u) << cls().name;
}

TEST_P(TraceCorpusClass, MomentsMatchEnvelopeGate) {
  // trace_moments is the envelope's measurement instrument: sanity-pin the
  // two against each other on one concrete trace.
  const BandwidthTrace trace = cls().generate(kDuration, 3);
  const TraceMoments m = trace_moments(trace);
  const TraceEnvelope& e = cls().envelope;
  EXPECT_GE(m.min_kbps, e.floor_kbps);
  EXPECT_LE(m.max_kbps, e.ceil_kbps);
  EXPECT_GE(m.mean_kbps, e.mean_lo_kbps);
  EXPECT_LE(m.mean_kbps, e.mean_hi_kbps);
  EXPECT_GE(m.cv, e.cv_lo);
  EXPECT_LE(m.cv, e.cv_hi);
  EXPECT_GE(m.changes_per_min, e.min_changes_per_min);
  EXPECT_LE(m.max_dwell_s, e.max_dwell_s);
  EXPECT_GT(m.segments, 4u);
  EXPECT_GT(m.variance, 0.0);
}

TEST_P(TraceCorpusClass, BoundaryWalkObeysReductionInvariants) {
  // The PR-5 contract: next_change_after is strictly increasing along a
  // boundary walk, the rate is constant on the open interval between
  // consecutive boundaries, and the walk makes real progress across many
  // periods without stalling.
  const BandwidthTrace trace = cls().generate(kDuration, 11);
  double t = 0.0;
  for (int i = 0; i < 4000; ++i) {
    const double next = trace.next_change_after(t);
    ASSERT_GT(next, t) << cls().name << " stalled at t=" << t;
    ASSERT_LT(next, std::numeric_limits<double>::infinity());
    // Constant on (t, next): probe the midpoint against the entry rate.
    const double mid = t + (next - t) * 0.5;
    EXPECT_EQ(trace.rate_kbps(mid), trace.rate_kbps(t + (next - t) * 0.25))
        << cls().name << " rate changed inside (" << t << ", " << next << ")";
    t = next;
  }
  EXPECT_GT(t, 2.0 * kDuration) << cls().name << " walk covered < 2 periods";
}

TEST_P(TraceCorpusClass, PeriodicWrapMatchesFirstPeriod) {
  // rate(t + k*period) == rate(t): sample both at awkward offsets several
  // periods out, where the reduction's floating-point slack matters most.
  const BandwidthTrace trace = cls().generate(kDuration, 5);
  const double period = trace.period_s();
  Rng rng(99);
  for (int i = 0; i < 400; ++i) {
    const double t = rng.uniform(0.0, period);
    for (const double k : {1.0, 3.0, 17.0}) {
      EXPECT_EQ(trace.rate_kbps(t), trace.rate_kbps(t + k * period))
          << cls().name << " t=" << t << " k=" << k;
    }
  }
  // The wrap boundary itself: just before the period the last segment's
  // rate holds; at the period the first segment's rate returns.
  EXPECT_EQ(trace.rate_kbps(period), trace.rate_kbps(0.0));
  EXPECT_EQ(trace.rate_kbps(period * 2.0), trace.rate_kbps(0.0));
}

TEST_P(TraceCorpusClass, AverageOverOnePeriodMatchesMoments) {
  const BandwidthTrace trace = cls().generate(kDuration, 8);
  const TraceMoments m = trace_moments(trace);
  // average_kbps integrates via the boundary walk; trace_moments weights
  // segments directly. Agreement ties the two code paths together.
  EXPECT_NEAR(trace.average_kbps(0.0, trace.period_s()), m.mean_kbps,
              1e-6 * m.mean_kbps);
}

TEST_P(TraceCorpusClass, ScaleTracePreservesShape) {
  const BandwidthTrace trace = cls().generate(kDuration, 2);
  const BandwidthTrace scaled = scale_trace(trace, 8.0);
  ASSERT_EQ(scaled.segments().size(), trace.segments().size());
  EXPECT_DOUBLE_EQ(scaled.period_s(), trace.period_s());
  for (std::size_t i = 0; i < trace.segments().size(); ++i) {
    EXPECT_DOUBLE_EQ(scaled.segments()[i].start_s, trace.segments()[i].start_s);
    EXPECT_DOUBLE_EQ(scaled.segments()[i].kbps, trace.segments()[i].kbps * 8.0);
  }
  const TraceMoments m = trace_moments(trace);
  const TraceMoments ms = trace_moments(scaled);
  EXPECT_NEAR(ms.mean_kbps, m.mean_kbps * 8.0, 1e-9 * ms.mean_kbps);
  EXPECT_NEAR(ms.cv, m.cv, 1e-12);  // scaling is CV-invariant
}

// --- 3. Link / one-hop PathChannel differential. ---

TEST_P(TraceCorpusClass, LinkAndOneHopPathChannelAreBitIdentical) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SCOPED_TRACE(testing::Message() << cls().name << " seed " << seed);
    const BandwidthTrace trace = cls().generate(kDuration, seed);
    Link link(trace);
    fleet::Topology topo(fleet::TopologySpec::single(trace));
    const std::shared_ptr<Channel> path = topo.path_channel(0);

    Rng rng(seed * 1303);
    double now = 0.0;
    int active = 0;
    for (int e = 0; e < 80; ++e) {
      now += rng.exponential(0.5);
      const bool add = active == 0 || rng.bernoulli(0.5);
      if (add) {
        EXPECT_EQ(link.add_flow(now), path->add_flow(now));
        ++active;
      } else {
        link.remove_flow(now);
        path->remove_flow(now);
        --active;
      }
      const double probe = now + rng.uniform(0.0, 2.0 * kDuration);
      EXPECT_EQ(link.service_at(probe), path->service_at(probe));
      const double target = link.service_at(now) + rng.uniform(1.0, 50000.0);
      EXPECT_EQ(link.time_when_service_reaches(target),
                path->time_when_service_reaches(target));
      EXPECT_EQ(link.active_flows(), path->active_flows());
    }
    while (active-- > 0) {
      now += 0.25;
      link.remove_flow(now);
      path->remove_flow(now);
    }
    link.finalize(now + 2.0);
    topo.finalize(now + 2.0);
    const fleet::LinkStats stats = topo.link_stats()[0];
    EXPECT_EQ(link.busy_s(), stats.busy_s);
    EXPECT_EQ(link.flow_seconds(), stats.flow_seconds);
    EXPECT_EQ(link.offered_kbit(), stats.offered_kbit);
    EXPECT_EQ(link.delivered_kbit(), stats.delivered_kbit);
    EXPECT_EQ(link.peak_flows(), stats.peak_flows);
  }
}

INSTANTIATE_TEST_SUITE_P(AllClasses, TraceCorpusClass,
                         testing::Range<std::size_t>(0, 4),
                         [](const testing::TestParamInfo<std::size_t>& info) {
                           std::string name =
                               trace_class_registry()[info.param].name;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// --- 4. CSV round-trip + mutation fuzz. ---

TEST(TraceCorpusCsv, RoundTripIsExactForEveryClass) {
  for (const TraceClass& tc : trace_class_registry()) {
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
      const BandwidthTrace original = tc.generate(kDuration, seed);
      const auto reloaded =
          BandwidthTrace::from_csv(original.to_csv(), original.period_s());
      ASSERT_TRUE(reloaded.ok()) << tc.name << ": " << reloaded.error();
      // %.17g round-trips doubles exactly: byte-identical segment sets.
      EXPECT_EQ(trace_bytes(*reloaded), trace_bytes(original)) << tc.name;
    }
  }
}

TEST(TraceCorpusCsv, AperiodicRoundTripDropsPeriodOnly) {
  const BandwidthTrace original = lte_trace(kDuration, 4);
  const auto reloaded = BandwidthTrace::from_csv(original.to_csv());
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded->period_s(), 0.0);
  ASSERT_EQ(reloaded->segments().size(), original.segments().size());
  for (std::size_t i = 0; i < original.segments().size(); ++i) {
    EXPECT_EQ(reloaded->segments()[i].start_s, original.segments()[i].start_s);
    EXPECT_EQ(reloaded->segments()[i].kbps, original.segments()[i].kbps);
  }
}

TEST(TraceCorpusCsv, PeriodParameterIsValidated) {
  const std::string csv = "t,kbps\n0,500\n10,900\n";
  EXPECT_FALSE(BandwidthTrace::from_csv(csv, -1.0).ok());
  EXPECT_FALSE(BandwidthTrace::from_csv(csv, 10.0).ok());  // == last start
  EXPECT_FALSE(BandwidthTrace::from_csv(csv, 5.0).ok());   // < last start
  const auto periodic = BandwidthTrace::from_csv(csv, 20.0);
  ASSERT_TRUE(periodic.ok());
  EXPECT_DOUBLE_EQ(periodic->period_s(), 20.0);
  EXPECT_DOUBLE_EQ(periodic->rate_kbps(25.0), 500.0);  // wraps to local t=5
  EXPECT_DOUBLE_EQ(periodic->rate_kbps(35.0), 900.0);  // wraps to local t=15
}

TEST(TraceCorpusCsv, MutationFuzzNeverCrashes) {
  // Seeded mutation fuzz: corrupt corpus CSVs (cell edits, line drops,
  // swaps, truncation, garbage injection) and require from_csv to either
  // parse successfully or return an error — malformed input must never
  // crash or produce an invalid trace.
  Rng rng(20260808);
  const std::string garbage_pool = "nan-inf;e+\"x,\t9";
  int parsed = 0;
  int rejected = 0;
  for (const TraceClass& tc : trace_class_registry()) {
    const std::string base = tc.generate(60.0, 1).to_csv();
    for (int i = 0; i < 250; ++i) {
      std::string mutated = base;
      const int op = static_cast<int>(rng.uniform_int(0, 4));
      switch (op) {
        case 0: {  // flip one byte to garbage
          const auto pos = static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(mutated.size() - 1)));
          mutated[pos] = garbage_pool[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(garbage_pool.size() - 1)))];
          break;
        }
        case 1: {  // drop a line
          auto lines = split_lines(mutated);
          lines.erase(lines.begin() +
                      rng.uniform_int(0, static_cast<std::int64_t>(lines.size() - 1)));
          mutated.clear();
          for (const auto& line : lines) mutated += line + "\n";
          break;
        }
        case 2: {  // swap two lines (breaks monotonic time)
          auto lines = split_lines(mutated);
          const auto a = static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(lines.size() - 1)));
          const auto b = static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(lines.size() - 1)));
          std::swap(lines[a], lines[b]);
          mutated.clear();
          for (const auto& line : lines) mutated += line + "\n";
          break;
        }
        case 3: {  // truncate mid-byte
          mutated.resize(static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(mutated.size()))));
          break;
        }
        default: {  // inject a garbage row
          mutated += format("%.3f,%s\n", rng.uniform(0.0, 100.0), "12..5e");
          break;
        }
      }
      const auto result = BandwidthTrace::from_csv(mutated);
      if (result.ok()) {
        ++parsed;
        // Whatever parsed must be a *valid* trace: positive rates,
        // strictly increasing starts from 0.
        const auto& segs = result->segments();
        ASSERT_FALSE(segs.empty());
        EXPECT_EQ(segs.front().start_s, 0.0);
        for (std::size_t s = 1; s < segs.size(); ++s) {
          EXPECT_GT(segs[s].start_s, segs[s - 1].start_s);
        }
        for (const auto& seg : segs) EXPECT_GT(seg.kbps, 0.0);
      } else {
        ++rejected;
        EXPECT_FALSE(result.error().empty());
      }
    }
  }
  // The fuzzer exercised both outcomes (not a vacuous all-reject pass).
  EXPECT_GT(parsed, 0);
  EXPECT_GT(rejected, 100);
}

}  // namespace
}  // namespace demuxabr
