#include "core/coordinated_player.h"

#include <gtest/gtest.h>

#include "core/compliance.h"
#include "experiments/scenarios.h"
#include "manifest/builder.h"
#include "media/content.h"
#include "sim/session.h"

namespace demuxabr {
namespace {

namespace ex = demuxabr::experiments;

TEST(Coordinated, UsesManifestCombinationsWhenPresent) {
  const Content content = make_drama_content();
  CoordinatedPlayer player;
  player.start(view_from_hls(build_hsub_master(content), nullptr));
  EXPECT_EQ(player.allowed().size(), 6u);
  EXPECT_EQ(player.allowed()[0].label(), "V1+A1");
}

TEST(Coordinated, CuratesClientSideOnPlainDash) {
  const Content content = make_drama_content();
  // Default device profile is a phone: 1080p V6 is excluded, leaving a
  // 5-video staircase of 7 combinations.
  CoordinatedPlayer player;
  player.start(view_from_mpd(build_dash_mpd(content)));
  EXPECT_EQ(player.allowed().size(), 7u);
  EXPECT_EQ(player.allowed().front().label(), "V1+A1");
  EXPECT_EQ(player.allowed().back().label(), "V5+A3");
}

TEST(Coordinated, TvDeviceUsesFullLadderInFallback) {
  const Content content = make_drama_content();
  CoordinatedConfig config;
  config.fallback_policy.device.screen = DeviceProfile::Screen::kTv;
  CoordinatedPlayer player(config);
  player.start(view_from_mpd(build_dash_mpd(content)));
  // 6 video + 3 audio rungs -> 8-combination staircase up to V6+A3.
  EXPECT_EQ(player.allowed().size(), 8u);
  EXPECT_EQ(player.allowed().back().label(), "V6+A3");
}

TEST(Coordinated, AlwaysAdaptsAudio) {
  // Unlike ExoPlayer-HLS, high bandwidth must reach the high audio rungs.
  auto setup = ex::bestpractice_hls(BandwidthTrace::constant(5000.0), "t");
  CoordinatedPlayer player;
  const SessionLog log = ex::run(setup, player);
  ASSERT_TRUE(log.completed);
  EXPECT_EQ(log.audio_selection.back(), "A3");
}

TEST(Coordinated, NeverSelectsOffManifestPairs) {
  for (const auto& named : ex::comparison_traces()) {
    auto setup = ex::bestpractice_dash(named.trace, named.name);
    CoordinatedPlayer player;
    const SessionLog log = ex::run(setup, player);
    const ComplianceReport report = check_compliance(log, setup.allowed);
    EXPECT_TRUE(report.compliant())
        << named.name << ": " << report.violating_chunks << " violations";
  }
}

TEST(Coordinated, KeepsBuffersBalanced) {
  auto setup = ex::bestpractice_dash(ex::varying_600_trace(), "t");
  CoordinatedPlayer player;
  const SessionLog log = ex::run(setup, player);
  ASSERT_TRUE(log.completed);
  // Compare buffer levels on a common grid: imbalance bounded by ~1 chunk.
  for (const auto& point : log.video_buffer_s.points()) {
    const double audio = log.audio_buffer_s.value_at(point.t);
    EXPECT_LE(std::abs(point.value - audio), 4.0 + 0.5) << "t=" << point.t;
  }
}

TEST(Coordinated, NoStallsOnStableLink) {
  auto setup = ex::bestpractice_dash(BandwidthTrace::constant(900.0), "t");
  CoordinatedPlayer player;
  const SessionLog log = ex::run(setup, player);
  EXPECT_TRUE(log.completed);
  EXPECT_EQ(log.stall_count(), 0u);
}

TEST(Coordinated, FewSwitchesOnVaryingLink) {
  auto setup = ex::bestpractice_dash(ex::varying_600_trace(), "t");
  CoordinatedPlayer player;
  const SessionLog log = ex::run(setup, player);
  const QoeReport report = compute_qoe(log, setup.content.ladder());
  EXPECT_LE(report.combo_switches, 6);
}

TEST(Coordinated, SharedBottleneckEstimateIsNotHalved) {
  // The aggregate estimator must see ~the full link rate even though audio
  // and video download concurrently at startup.
  auto setup = ex::bestpractice_dash(BandwidthTrace::constant(1000.0), "t");
  CoordinatedPlayer player;
  const SessionLog log = ex::run(setup, player);
  // After convergence, the logged estimate approaches 1000, not 500.
  const double late_estimate = log.bandwidth_estimate_kbps.value_at(200.0);
  EXPECT_GT(late_estimate, 800.0);
}

TEST(Coordinated, ComboPinnedPerChunkPosition) {
  auto setup = ex::bestpractice_dash(
      BandwidthTrace::random_walk(300.0, 1500.0, 2.0, 300.0, 150.0, 3), "t");
  CoordinatedPlayer player;
  const SessionLog log = ex::run(setup, player);
  // Every played chunk's pair must be one of the allowed combinations even
  // though the controller switched mid-stream.
  for (std::size_t i = 0; i < log.video_selection.size(); ++i) {
    EXPECT_TRUE(contains_combination(setup.allowed, log.video_selection[i],
                                     log.audio_selection[i]))
        << "chunk " << i;
  }
}

TEST(Coordinated, HigherBandwidthNeverHurtsQuality) {
  double previous_video = 0.0;
  for (double kbps : {500.0, 1000.0, 2000.0, 4000.0}) {
    auto setup = ex::bestpractice_dash(BandwidthTrace::constant(kbps), "t");
    CoordinatedPlayer player;
    const SessionLog log = ex::run(setup, player);
    const QoeReport report = compute_qoe(log, setup.content.ladder());
    EXPECT_GE(report.avg_video_kbps, previous_video - 1.0) << kbps;
    previous_video = report.avg_video_kbps;
  }
}

TEST(Coordinated, PolicyShapesFallbackCuration) {
  const Content content = make_drama_content();
  CoordinatedConfig music_config;
  music_config.fallback_policy.genre = ContentGenre::kMusic;
  CoordinatedPlayer music(music_config);
  music.start(view_from_mpd(build_dash_mpd(content)));
  CoordinatedConfig action_config;
  action_config.fallback_policy.genre = ContentGenre::kAction;
  CoordinatedPlayer action(action_config);
  action.start(view_from_mpd(build_dash_mpd(content)));
  // Music's lowest combination already uses a better audio rung.
  EXPECT_NE(music.allowed().front().audio_id, action.allowed().front().audio_id);
}

}  // namespace
}  // namespace demuxabr
