// Cache-aware fleets (fleet/cdn_fleet.h): CDN edge caches as first-class
// topology nodes, in four tiers:
//
//  1. Routing effect: an edge hit rides the derived client→edge prefix
//     channel, so the origin-side link of a cached chain carries strictly
//     fewer bytes than the identical cache-less run, while a cached *last*
//     hop reuses the full channel and leaves client outcomes untouched.
//  2. Determinism: fleet fingerprints with caches enabled are byte-identical
//     between the barrier and event-heap engines, and between the serial
//     whole-topology path (threads=1) and sharded runs at threads {2, 8} in
//     both full-log and streaming-metrics mode — cache state is shard-local
//     and all mutations happen inside begin_step (sim/flow_router.h).
//  3. Accounting: per-node CdnStats counters add up and residency respects
//     the configured capacity.
//  4. The paper's §1 storage axis at fleet scale: a demuxed origin catalog
//     gets more out of the same edge capacity than muxed A×V combos.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/muxed_player.h"
#include "experiments/scenarios.h"
#include "fleet/cdn_fleet.h"
#include "fleet/metrics.h"
#include "fleet/population.h"
#include "fleet/scheduler.h"
#include "fleet/topology.h"
#include "httpsim/catalog.h"
#include "players/exoplayer.h"
#include "util/strings.h"

namespace demuxabr::fleet {
namespace {

namespace ex = demuxabr::experiments;

std::unique_ptr<PlayerAdapter> make_exo() {
  return std::make_unique<ExoPlayerModel>();
}

std::unique_ptr<PlayerAdapter> make_muxed() {
  return std::make_unique<MuxedPlayer>();
}

FleetConfig base_config(int clients, std::uint64_t seed = 7) {
  FleetConfig config;
  config.client_count = clients;
  config.seed = seed;
  config.players.push_back({"exoplayer", &make_exo, 1.0});
  config.session.max_sim_time_s = 1800.0;
  return config;
}

/// K causally independent access→core chains with an edge cache on each
/// access link (the client-side hop, so hits skip the core). capacity 0 =
/// unbounded edge; regional < 0 = single-tier.
TopologySpec cached_chains(int k, double access_kbps, double core_kbps,
                           std::int64_t cache_bytes,
                           std::int64_t regional_bytes = -1) {
  TopologySpec spec;
  for (int i = 0; i < k; ++i) {
    const std::size_t access =
        spec.add_link(format("access-%d", i),
                      BandwidthTrace::constant(access_kbps + 300.0 * i));
    const std::size_t core =
        spec.add_link(format("core-%d", i), BandwidthTrace::constant(core_kbps));
    spec.add_path(format("chain-%d", i), {access, core});
    spec.links[access].cache = CacheSpec{cache_bytes, regional_bytes};
  }
  return spec;
}

// --- 1. Routing effect. ---

TEST(CacheFleet, EdgeHitsRelieveTheOriginSideLink) {
  const ex::ExperimentSetup setup =
      ex::plain_dash(ex::varying_600_trace(), "cdn-route");
  const BandwidthTrace unused = BandwidthTrace::constant(1000.0);
  FleetConfig config = base_config(8, 11);
  config.arrivals = ArrivalProcess::kDeterministic;
  config.arrival_interval_s = 2.0;

  config.topology = cached_chains(1, 2400.0, 4800.0, 0);  // unbounded edge
  const FleetResult cached =
      run_fleet(setup.content, setup.view, unused, config);

  TopologySpec plain = *config.topology;
  plain.links[0].cache.reset();
  config.topology = plain;
  const FleetResult uncached =
      run_fleet(setup.content, setup.view, unused, config);

  ASSERT_EQ(cached.cdns.size(), 1u);
  const CdnStats& cdn = cached.cdns[0];
  EXPECT_EQ(cdn.link_name, "access-0");
  EXPECT_GT(cdn.edge_hits, 0);
  EXPECT_GT(cdn.origin_fetches, 0);  // cold misses warmed the cache
  EXPECT_TRUE(uncached.cdns.empty());

  // Every edge hit skipped the core link, so the core carried strictly
  // fewer bytes than in the cache-less run; the access link carried every
  // flow either way.
  ASSERT_EQ(cached.links.size(), 2u);
  EXPECT_LT(cached.links[1].delivered_kbit, uncached.links[1].delivered_kbit);
  EXPECT_LT(cached.links[1].flow_seconds, uncached.links[1].flow_seconds);
  EXPECT_GT(cached.links[0].delivered_kbit, 0.0);
}

TEST(CacheFleet, CachedLastHopLeavesClientOutcomesUntouched) {
  // A cache on a path's *last* hop cannot shorten any route (the prefix is
  // the whole path), so the run is numerically identical to the cache-less
  // fleet — only the CdnStats plane is new.
  const ex::ExperimentSetup setup =
      ex::plain_dash(ex::varying_600_trace(), "cdn-lasthop");
  const BandwidthTrace unused = BandwidthTrace::constant(1000.0);
  FleetConfig config = base_config(6, 13);
  // Staggered arrivals: lockstep-identical clients would all miss the same
  // key in the same step before any fill lands (fills defer to the next
  // begin_step), legitimately hitting nothing.
  config.arrivals = ArrivalProcess::kDeterministic;
  config.arrival_interval_s = 4.0;

  TopologySpec spec;
  const std::size_t only =
      spec.add_link("bottleneck", BandwidthTrace::constant(3000.0));
  spec.add_path("direct", {only});
  spec.links[only].cache = CacheSpec{0, -1};
  config.topology = spec;
  const FleetResult cached =
      run_fleet(setup.content, setup.view, unused, config);

  spec.links[only].cache.reset();
  config.topology = spec;
  const FleetResult plain =
      run_fleet(setup.content, setup.view, unused, config);

  EXPECT_EQ(cached.client_digest, plain.client_digest);
  EXPECT_DOUBLE_EQ(cached.end_time_s, plain.end_time_s);
  ASSERT_EQ(cached.cdns.size(), 1u);
  EXPECT_GT(cached.cdns[0].edge_hits, 0);
}

// --- 2. Determinism. ---

TEST(CacheFleet, BarrierAndEventHeapFingerprintsIdenticalWithCaches) {
  const ex::ExperimentSetup setup =
      ex::plain_dash(ex::varying_600_trace(), "cdn-engines");
  const BandwidthTrace unused = BandwidthTrace::constant(1000.0);
  FleetConfig config = base_config(10, 17);
  config.arrivals = ArrivalProcess::kPoisson;
  config.arrival_rate_per_s = 0.4;
  config.churn.leave_probability = 0.3;
  config.churn.min_watch_s = 20.0;
  config.churn.max_watch_s = 90.0;
  // Bounded edges + a regional tier so evictions and every stats counter
  // participate in the comparison.
  const auto catalog = make_fleet_catalog(setup.content, StorageMode::kDemuxed);
  config.topology =
      cached_chains(2, 1800.0, 3600.0, catalog->total_bytes() / 6,
                    catalog->total_bytes() / 2);
  config.threads = 1;

  config.engine = Engine::kBarrier;
  const FleetResult barrier =
      run_fleet(setup.content, setup.view, unused, config);
  config.engine = Engine::kEventHeap;
  const FleetResult heap = run_fleet(setup.content, setup.view, unused, config);

  ASSERT_FALSE(barrier.cdns.empty());
  EXPECT_EQ(fleet_fingerprint(heap), fleet_fingerprint(barrier));
  EXPECT_EQ(heap.client_digest, barrier.client_digest);
}

TEST(CacheFleet, ShardedFingerprintByteIdenticalAcrossThreadCounts) {
  const ex::ExperimentSetup setup =
      ex::plain_dash(ex::varying_600_trace(), "cdn-threads");
  const BandwidthTrace unused = BandwidthTrace::constant(1000.0);
  FleetConfig config = base_config(12, 19);
  config.arrivals = ArrivalProcess::kPoisson;
  config.arrival_rate_per_s = 0.4;
  config.churn.leave_probability = 0.3;
  config.churn.min_watch_s = 20.0;
  config.churn.max_watch_s = 90.0;
  const auto catalog = make_fleet_catalog(setup.content, StorageMode::kDemuxed);
  config.topology = cached_chains(4, 1800.0, 3600.0, catalog->total_bytes() / 8);

  config.threads = 1;  // serial whole-topology reference
  const FleetResult serial =
      run_fleet(setup.content, setup.view, unused, config);
  const std::string expected = fleet_fingerprint(serial);
  ASSERT_EQ(serial.cdns.size(), 4u);

  for (const int threads : {2, 8}) {
    config.threads = threads;
    const FleetResult sharded =
        run_fleet(setup.content, setup.view, unused, config);
    EXPECT_EQ(fleet_fingerprint(sharded), expected) << "threads=" << threads;
    EXPECT_EQ(sharded.client_digest, serial.client_digest)
        << "threads=" << threads;
    // The merged cdn rows come back in ascending global link index with
    // every integer counter equal to the serial run's.
    ASSERT_EQ(sharded.cdns.size(), serial.cdns.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < serial.cdns.size(); ++i) {
      EXPECT_EQ(sharded.cdns[i].link, serial.cdns[i].link);
      EXPECT_EQ(sharded.cdns[i].edge_hits, serial.cdns[i].edge_hits);
      EXPECT_EQ(sharded.cdns[i].edge_evictions, serial.cdns[i].edge_evictions);
      EXPECT_EQ(sharded.cdns[i].edge_used_bytes, serial.cdns[i].edge_used_bytes);
    }
  }
}

TEST(CacheFleet, StreamingModeFingerprintIdenticalAcrossThreadCounts) {
  const ex::ExperimentSetup setup =
      ex::plain_dash(ex::varying_600_trace(), "cdn-streaming");
  const BandwidthTrace unused = BandwidthTrace::constant(1000.0);
  FleetConfig config = base_config(12, 29);
  config.arrivals = ArrivalProcess::kDeterministic;
  config.arrival_interval_s = 3.0;
  const auto catalog = make_fleet_catalog(setup.content, StorageMode::kDemuxed);
  config.topology = cached_chains(3, 2000.0, 4200.0, catalog->total_bytes() / 8);
  config.streaming.client_threshold = 1;  // streaming mode always on

  config.threads = 1;
  const FleetResult serial =
      run_fleet(setup.content, setup.view, unused, config);
  ASSERT_TRUE(serial.streaming.has_value());
  ASSERT_EQ(serial.cdns.size(), 3u);
  const std::string expected = fleet_fingerprint(serial);

  for (const int threads : {2, 8}) {
    config.threads = threads;
    const FleetResult sharded =
        run_fleet(setup.content, setup.view, unused, config);
    EXPECT_EQ(fleet_fingerprint(sharded), expected) << "threads=" << threads;
  }
}

// --- 3. Accounting. ---

TEST(CacheFleet, StatsAddUpAndResidencyRespectsCapacity) {
  const ex::ExperimentSetup setup =
      ex::plain_dash(ex::varying_600_trace(), "cdn-stats");
  const BandwidthTrace unused = BandwidthTrace::constant(1000.0);
  FleetConfig config = base_config(8, 23);
  const auto catalog = make_fleet_catalog(setup.content, StorageMode::kDemuxed);
  // A handful of chunks' worth: big enough to admit any single object,
  // far below the working set, so the edge must churn.
  std::int64_t max_chunk = 0;
  for (const auto& track : setup.content.ladder().video()) {
    for (int chunk = 0; chunk < setup.content.num_chunks(); ++chunk) {
      max_chunk =
          std::max(max_chunk, catalog->size_of(chunk_object_key(track.id, chunk)));
    }
  }
  ASSERT_GT(max_chunk, 0);
  const std::int64_t capacity = 4 * max_chunk;
  config.topology = cached_chains(2, 2200.0, 4400.0, capacity);

  const FleetResult result =
      run_fleet(setup.content, setup.view, unused, config);
  ASSERT_EQ(result.cdns.size(), 2u);
  for (const CdnStats& cdn : result.cdns) {
    EXPECT_GT(cdn.requests, 0);
    EXPECT_EQ(cdn.requests,
              cdn.edge_hits + cdn.regional_hits + cdn.origin_fetches);
    EXPECT_EQ(cdn.uncacheable, 0);  // demuxed players vs demuxed catalog
    EXPECT_EQ(cdn.regional_hits, 0);  // single-tier node
    EXPECT_GT(cdn.origin_bytes, 0);
    EXPECT_LE(cdn.edge_used_bytes, capacity);
    EXPECT_GE(cdn.hit_ratio(), 0.0);
    EXPECT_LE(cdn.hit_ratio(), 1.0);
    // Bounded at a tenth of the catalog: a fleet of 4 clients per chain
    // must churn the edge.
    EXPECT_GT(cdn.edge_evictions, 0u);
  }
}

TEST(CacheFleet, MuxedRequestsAgainstDemuxedCatalogAreUncacheable) {
  // Storage-mode mismatch: muxed A×V keys miss the demuxed inventory, so
  // every request is uncacheable and rides the full path untouched.
  const ex::ExperimentSetup setup =
      ex::plain_dash(ex::varying_600_trace(), "cdn-mismatch");
  const BandwidthTrace unused = BandwidthTrace::constant(1000.0);
  FleetConfig config = base_config(4, 31);
  config.players.clear();
  config.players.push_back({"muxed", &make_muxed, 1.0});
  config.cdn.storage = StorageMode::kDemuxed;
  config.topology = cached_chains(1, 2400.0, 4800.0, 0);

  const FleetResult result =
      run_fleet(setup.content, setup.view, unused, config);
  ASSERT_EQ(result.cdns.size(), 1u);
  EXPECT_EQ(result.cdns[0].requests, 0);
  EXPECT_EQ(result.cdns[0].edge_hits, 0);
  EXPECT_GT(result.cdns[0].uncacheable, 0);
}

// --- 4. The storage axis at fleet scale. ---

TEST(CacheFleet, DemuxedStorageGetsMoreOutOfTheSameEdgeCapacity) {
  // Same seeds, same ladder, same bounded edge: the muxed origin publishes
  // A×V combination objects, so the working set inflates and the same
  // capacity yields a worse byte hit ratio than demuxed storage (§1).
  const ex::ExperimentSetup setup =
      ex::plain_dash(ex::varying_600_trace(), "cdn-storage");
  const BandwidthTrace unused = BandwidthTrace::constant(1000.0);
  const auto demuxed_catalog =
      make_fleet_catalog(setup.content, StorageMode::kDemuxed);
  const std::int64_t capacity = demuxed_catalog->total_bytes() / 6;

  FleetConfig config = base_config(10, 37);
  config.arrivals = ArrivalProcess::kDeterministic;
  config.arrival_interval_s = 2.0;
  config.topology = cached_chains(2, 2000.0, 4000.0, capacity);

  const FleetResult demuxed =
      run_fleet(setup.content, setup.view, unused, config);

  config.players.clear();
  config.players.push_back({"muxed", &make_muxed, 1.0});
  config.cdn.storage = StorageMode::kMuxed;
  const FleetResult muxed =
      run_fleet(setup.content, setup.view, unused, config);

  const auto totals = [](const FleetResult& result) {
    CdnStats sum;
    for (const CdnStats& cdn : result.cdns) {
      sum.requests += cdn.requests;
      sum.edge_hits += cdn.edge_hits;
      sum.edge_hit_bytes += cdn.edge_hit_bytes;
      sum.regional_hit_bytes += cdn.regional_hit_bytes;
      sum.origin_bytes += cdn.origin_bytes;
      sum.uncacheable += cdn.uncacheable;
    }
    return sum;
  };
  const CdnStats d = totals(demuxed);
  const CdnStats m = totals(muxed);
  ASSERT_GT(d.requests, 0);
  ASSERT_GT(m.requests, 0);
  EXPECT_EQ(d.uncacheable, 0);
  EXPECT_EQ(m.uncacheable, 0);  // muxed keys against the muxed catalog
  EXPECT_GT(d.byte_hit_ratio(), m.byte_hit_ratio());
}

}  // namespace
}  // namespace demuxabr::fleet
