// The experiments harness itself: every figure factory must produce the
// setup its figure requires (protocol, manifest shape, trace statistics),
// and the table renderers must emit the paper's values.
#include <gtest/gtest.h>

#include "experiments/scenarios.h"
#include "experiments/tables.h"
#include "players/dashjs.h"

namespace demuxabr {
namespace {

namespace ex = demuxabr::experiments;

TEST(Scenarios, Fig2SetupsSwapTheAudioLadder) {
  const auto a = ex::fig2a_exo_dash_audio_b();
  EXPECT_EQ(a.view.protocol, Protocol::kDash);
  EXPECT_NE(a.content.ladder().find("B2"), nullptr);
  EXPECT_EQ(a.content.ladder().find("A2"), nullptr);
  EXPECT_DOUBLE_EQ(a.trace.rate_kbps(0.0), 900.0);

  const auto b = ex::fig2b_exo_dash_audio_c();
  EXPECT_NE(b.content.ladder().find("C3"), nullptr);
  EXPECT_DOUBLE_EQ(b.content.ladder().find("C3")->declared_kbps, 768.0);
}

TEST(Scenarios, Fig3SetupListsA3First) {
  const auto setup = ex::fig3_exo_hls_a3_first();
  EXPECT_EQ(setup.view.protocol, Protocol::kHls);
  ASSERT_FALSE(setup.view.audio_tracks.empty());
  EXPECT_EQ(setup.view.audio_tracks.front().id, "A3");
  EXPECT_EQ(setup.view.combos.size(), 6u);  // H_sub
  EXPECT_EQ(setup.allowed.size(), 6u);
  // 600 kbps average trace.
  EXPECT_NEAR(setup.trace.average_kbps(0.0, 160.0), 600.0, 1.0);
}

TEST(Scenarios, Fig3xSetupListsA1FirstAt5Mbps) {
  const auto setup = ex::fig3x_exo_hls_a1_first_5mbps();
  EXPECT_EQ(setup.view.audio_tracks.front().id, "A1");
  EXPECT_DOUBLE_EQ(setup.trace.rate_kbps(100.0), 5000.0);
}

TEST(Scenarios, Fig4SetupsUseHall) {
  const auto a = ex::fig4a_shaka_hall_1mbps();
  EXPECT_EQ(a.view.combos.size(), 18u);
  EXPECT_DOUBLE_EQ(a.trace.rate_kbps(0.0), 1000.0);

  const auto b = ex::fig4b_shaka_hall_varying();
  EXPECT_NEAR(b.trace.average_kbps(0.0, 60.0), 605.0, 5.0);
  // The high phase must clear Shaka's 16 KB / 0.125 s filter for a solo flow.
  EXPECT_GE(b.trace.rate_kbps(50.0), 16384.0 * 8.0 / 1000.0 / 0.125);
}

TEST(Scenarios, Fig5SetupIsPlainDashAt700) {
  const auto setup = ex::fig5_dashjs_700();
  EXPECT_EQ(setup.view.protocol, Protocol::kDash);
  EXPECT_FALSE(setup.view.has_combination_list);
  EXPECT_DOUBLE_EQ(setup.trace.rate_kbps(10.0), 700.0);
}

TEST(Scenarios, BestPracticeDashCarriesStaircase) {
  const auto setup = ex::bestpractice_dash(BandwidthTrace::constant(900.0), "t");
  EXPECT_TRUE(setup.view.has_combination_list);
  EXPECT_EQ(setup.view.combos.size(), 8u);  // TV staircase over Table 1
  EXPECT_EQ(setup.allowed.size(), 8u);
  for (const ComboView& combo : setup.view.combos) {
    EXPECT_TRUE(combo.components_known()) << combo.label();
  }
}

TEST(Scenarios, BestPracticeHlsRevealsPerTrackBitrates) {
  const auto setup = ex::bestpractice_hls(BandwidthTrace::constant(900.0), "t");
  EXPECT_EQ(setup.view.protocol, Protocol::kHls);
  for (const TrackView& t : setup.view.audio_tracks) {
    EXPECT_TRUE(t.bitrate_known) << t.id;
  }
}

TEST(Scenarios, SplitPathSetupUsesSeparateTraces) {
  const auto setup = ex::split_path_dash(BandwidthTrace::constant(1500.0),
                                         BandwidthTrace::constant(200.0), "t");
  ASSERT_TRUE(setup.audio_trace.has_value());
  EXPECT_DOUBLE_EQ(setup.trace.rate_kbps(0.0), 1500.0);
  EXPECT_DOUBLE_EQ(setup.audio_trace->rate_kbps(0.0), 200.0);
}

TEST(Scenarios, ComparisonTracesAreNamedAndDistinct) {
  const auto traces = ex::comparison_traces();
  EXPECT_GE(traces.size(), 7u);
  for (const auto& named : traces) {
    EXPECT_FALSE(named.name.empty());
    EXPECT_GT(named.trace.rate_kbps(0.0), 0.0);
  }
}

TEST(Tables, Table1RenderingContainsDeclaredValues) {
  const std::string table = ex::render_table1(make_drama_content());
  EXPECT_NE(table.find("V3"), std::string::npos);
  EXPECT_NE(table.find("473"), std::string::npos);   // V3 declared
  EXPECT_NE(table.find("4447"), std::string::npos);  // V6 peak
}

TEST(Tables, CombinationTableContainsTable2Rows) {
  const std::string table = ex::render_combination_table(
      "t2", all_combinations(youtube_drama_ladder()));
  EXPECT_NE(table.find("V2+A2"), std::string::npos);
  EXPECT_NE(table.find("460"), std::string::npos);   // V2+A2 peak
  EXPECT_NE(table.find("4838"), std::string::npos);  // V6+A3 peak
}

TEST(Tables, SelectionTimelineCompressesRuns) {
  SessionLog log;
  log.video_selection = {"V1", "V1", "V2", "V2", "V2"};
  log.audio_selection = {"A1", "A1", "A1", "A1", "A1"};
  EXPECT_EQ(ex::render_selection_timeline(log), "0-1:V1+A1 2-4:V2+A1 ");
}

TEST(Tables, ComparisonTableFlagsIncompleteRows) {
  ex::ComparisonRow row;
  row.player = "p";
  row.trace = "t";
  row.completed = false;
  const std::string table = ex::render_comparison_table({row});
  EXPECT_NE(table.find("INCOMPLETE"), std::string::npos);
}

TEST(Scenarios, RunIsDeterministicAcrossSetupCopies) {
  const auto s1 = ex::fig5_dashjs_700();
  const auto s2 = ex::fig5_dashjs_700();
  DashJsPlayerModel p1;
  DashJsPlayerModel p2;
  const SessionLog a = ex::run(s1, p1);
  const SessionLog b = ex::run(s2, p2);
  EXPECT_EQ(a.video_selection, b.video_selection);
  EXPECT_EQ(a.audio_selection, b.audio_selection);
  EXPECT_DOUBLE_EQ(a.end_time_s, b.end_time_s);
}

}  // namespace
}  // namespace demuxabr
