// Property tests for the indexed min-heap under the fleet event engine and
// each Link's completion registry: a long random stream of update (insert +
// decrease/increase-key), erase and pop operations must track a
// std::multimap oracle exactly — same top, same pop order, same membership.
#include "util/indexed_min_heap.h"

#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <utility>

#include "fleet/event_heap.h"
#include "net/link.h"
#include "util/rng.h"

namespace demuxabr {
namespace {

/// Oracle: (key, id) pairs ordered exactly like IndexedMinHeap::less.
class OracleHeap {
 public:
  void update(std::uint32_t id, double key) {
    erase(id);
    by_id_[id] = ordered_.insert({{key, id}, id});
  }
  void erase(std::uint32_t id) {
    const auto it = by_id_.find(id);
    if (it == by_id_.end()) return;
    ordered_.erase(it->second);
    by_id_.erase(it);
  }
  [[nodiscard]] bool empty() const { return ordered_.empty(); }
  [[nodiscard]] std::size_t size() const { return ordered_.size(); }
  [[nodiscard]] std::pair<double, std::uint32_t> top() const {
    return ordered_.begin()->first;
  }
  std::pair<double, std::uint32_t> pop() {
    const auto result = top();
    erase(result.second);
    return result;
  }
  [[nodiscard]] bool contains(std::uint32_t id) const {
    return by_id_.count(id) > 0;
  }
  [[nodiscard]] double key_of(std::uint32_t id) const {
    return by_id_.at(id)->first.first;
  }

 private:
  std::multimap<std::pair<double, std::uint32_t>, std::uint32_t> ordered_;
  std::map<std::uint32_t, decltype(ordered_)::iterator> by_id_;
};

TEST(IndexedMinHeap, RandomOpsMatchMultimapOracle) {
  IndexedMinHeap heap;
  OracleHeap oracle;
  Rng rng(20240807);
  constexpr std::uint32_t kIdSpace = 64;  // dense ids, frequent re-keys

  for (int op = 0; op < 20000; ++op) {
    const double dice = rng.uniform();
    if (dice < 0.5) {
      const auto id = static_cast<std::uint32_t>(rng.uniform_int(0, kIdSpace - 1));
      // Coarse keys on purpose: ties must resolve identically (by id).
      const double key = static_cast<double>(rng.uniform_int(0, 40));
      heap.update(id, key);
      oracle.update(id, key);
    } else if (dice < 0.75) {
      const auto id = static_cast<std::uint32_t>(rng.uniform_int(0, kIdSpace - 1));
      heap.erase(id);
      oracle.erase(id);
    } else if (!oracle.empty()) {
      const auto expected = oracle.pop();
      const IndexedMinHeap::Entry actual = heap.pop();
      ASSERT_EQ(actual.id, expected.second) << "op " << op;
      ASSERT_EQ(actual.key, expected.first) << "op " << op;
    }

    ASSERT_EQ(heap.size(), oracle.size());
    if (!oracle.empty()) {
      ASSERT_EQ(heap.top().id, oracle.top().second) << "op " << op;
      ASSERT_EQ(heap.top().key, oracle.top().first) << "op " << op;
    }
    const auto probe = static_cast<std::uint32_t>(rng.uniform_int(0, kIdSpace - 1));
    ASSERT_EQ(heap.contains(probe), oracle.contains(probe));
    if (oracle.contains(probe)) {
      ASSERT_EQ(heap.key_of(probe), oracle.key_of(probe));
    }
  }

  // Drain: full pop order must match the oracle's sorted order.
  while (!oracle.empty()) {
    const auto expected = oracle.pop();
    const IndexedMinHeap::Entry actual = heap.pop();
    ASSERT_EQ(actual.id, expected.second);
    ASSERT_EQ(actual.key, expected.first);
  }
  EXPECT_TRUE(heap.empty());
}

TEST(EventHeap, SessionsPopBeforeLinksOnTies) {
  // Link entity ids sit above all session ids, so at equal times a
  // session's own events fire before link completions surface.
  fleet::EventHeap heap(4, 1);
  Link link(BandwidthTrace::constant(1000.0));
  link.add_flow(0.0);
  link.register_completion(0, 5000.0);  // completes at t = 5
  heap.sync_link(0, link);
  heap.schedule_session(2, 5.0);

  ASSERT_FALSE(heap.empty());
  EXPECT_FALSE(heap.top().is_link);
  EXPECT_EQ(heap.top().index, 2u);
  heap.pop();
  ASSERT_FALSE(heap.empty());
  EXPECT_TRUE(heap.top().is_link);
  EXPECT_EQ(heap.top().index, 0u);
  EXPECT_DOUBLE_EQ(heap.top().t, 5.0);
}

TEST(EventHeap, LazyLinkSyncTracksEpoch) {
  fleet::EventHeap heap(2, 1);
  Link link(BandwidthTrace::constant(1000.0));
  link.add_flow(0.0);
  link.register_completion(1, 1000.0);  // t = 1 with one flow
  heap.sync_link(0, link);
  EXPECT_DOUBLE_EQ(heap.top().t, 1.0);

  // Same epoch: sync is a no-op even though we could recompute.
  heap.sync_link(0, link);
  EXPECT_DOUBLE_EQ(heap.top().t, 1.0);

  // A second flow halves the rate: epoch moves, the key is re-derived.
  link.add_flow(0.5);
  heap.sync_link(0, link);
  EXPECT_DOUBLE_EQ(heap.top().t, 1.5);  // 500 kbit left at 500 kbps

  // Unregister + remove: the link leaves the heap.
  link.unregister_completion(1);
  link.remove_flow(0.75);
  heap.sync_link(0, link);
  EXPECT_TRUE(heap.empty());
}

TEST(EventHeapStats, PopsCountEveryPop) {
  fleet::EventHeap heap(4, 0);
  heap.schedule_session(0, 1.0);
  heap.schedule_session(1, 2.0);
  heap.schedule_session(2, 3.0);
  EXPECT_EQ(heap.stats().pops, 0u);
  heap.pop();
  heap.pop();
  EXPECT_EQ(heap.stats().pops, 2u);
  // Re-keys and erases are not pops.
  heap.schedule_session(2, 4.0);
  heap.erase_session(2);
  EXPECT_EQ(heap.stats().pops, 2u);
}

TEST(EventHeapStats, SyncChecksCountEveryCallRefreshesOnlyEpochMoves) {
  fleet::EventHeap heap(2, 1);
  Link link(BandwidthTrace::constant(1000.0));
  link.add_flow(0.0);
  link.register_completion(0, 1000.0);

  // First sync always refreshes (the epoch cache starts at a sentinel).
  heap.sync_link(0, link);
  EXPECT_EQ(heap.stats().sync_checks, 1u);
  EXPECT_EQ(heap.stats().sync_refreshes, 1u);

  // Clean epoch: checks advance, refreshes don't — the lazy hit.
  heap.sync_link(0, link);
  heap.sync_link(0, link);
  EXPECT_EQ(heap.stats().sync_checks, 3u);
  EXPECT_EQ(heap.stats().sync_refreshes, 1u);

  // Population change bumps the epoch: the next check refreshes once.
  link.add_flow(0.25);
  heap.sync_link(0, link);
  heap.sync_link(0, link);
  EXPECT_EQ(heap.stats().sync_checks, 5u);
  EXPECT_EQ(heap.stats().sync_refreshes, 2u);

  // Forced sync refreshes even on a clean epoch.
  heap.sync_link(0, link, /*force=*/true);
  EXPECT_EQ(heap.stats().sync_checks, 6u);
  EXPECT_EQ(heap.stats().sync_refreshes, 3u);

  // Invariant the profile's hit rate relies on.
  EXPECT_LE(heap.stats().sync_refreshes, heap.stats().sync_checks);
}

}  // namespace
}  // namespace demuxabr
