// Leaderboard battery (experiments/leaderboard.h), in three tiers:
//
//  1. bootstrap_mean_ci: exact mean, deterministic endpoints per seed,
//     merge-order invariance (any permutation of the samples → identical
//     interval), coverage sanity on a known distribution, and edge cases
//     (empty / single sample / degenerate resamples).
//  2. build_leaderboard: canonical aggregation — shuffled sample orders and
//     permuted config subsets produce byte-identical JSON; rankings are
//     total orders (each a permutation of the players) sorted the right
//     direction per metric.
//  3. run_leaderboard end-to-end on a small grid: byte-identical
//     BENCH_leaderboard.json across threads {1, 2, 8}, the fleet axis
//     populates the fairness metric, and the CSV/markdown emitters agree
//     with the JSON on the cell grid.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "experiments/leaderboard.h"
#include "util/rng.h"

namespace demuxabr::experiments {
namespace {

/// Portable deterministic Fisher-Yates (std::shuffle's algorithm is
/// implementation-defined, so tests roll their own).
template <typename T>
void shuffle_with(std::vector<T>& items, std::uint64_t seed) {
  Rng rng(seed);
  for (std::size_t i = items.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(items[i - 1], items[j]);
  }
}

LeaderboardConfig small_config(int threads) {
  LeaderboardConfig config;
  config.classes = {"lte-handoff", "oscillating"};
  config.players = {"exoplayer", "coordinated"};
  config.replications = 2;
  config.trace_duration_s = 120.0;
  config.threads = threads;
  config.bootstrap_resamples = 50;
  config.fleet_clients = 4;
  config.fleet_replications = 1;
  return config;
}

// --- 1. bootstrap_mean_ci. ---

TEST(BootstrapCiTest, MeanIsExactAndIntervalBracketsIt) {
  const std::vector<double> samples = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0};
  const BootstrapCi ci = bootstrap_mean_ci(samples, 400, 0.95, 1);
  EXPECT_DOUBLE_EQ(ci.mean, 4.5);
  EXPECT_EQ(ci.n, 8u);
  EXPECT_LE(ci.lo, ci.mean);
  EXPECT_GE(ci.hi, ci.mean);
  EXPECT_LT(ci.lo, ci.hi);       // genuinely non-degenerate
  EXPECT_GT(ci.lo, 1.0);         // resampled means concentrate near 4.5
  EXPECT_LT(ci.hi, 8.0);
}

TEST(BootstrapCiTest, FixedSeedReproducesEndpointsExactly) {
  const std::vector<double> samples = {3.1, 4.1, 5.9, 2.6, 5.3, 5.8, 9.7, 9.3};
  const BootstrapCi a = bootstrap_mean_ci(samples, 300, 0.95, 42);
  const BootstrapCi b = bootstrap_mean_ci(samples, 300, 0.95, 42);
  EXPECT_EQ(a.lo, b.lo);
  EXPECT_EQ(a.hi, b.hi);
  const BootstrapCi c = bootstrap_mean_ci(samples, 300, 0.95, 43);
  EXPECT_TRUE(c.lo != a.lo || c.hi != a.hi);  // the seed genuinely matters
}

TEST(BootstrapCiTest, MergeOrderInvariance) {
  // Per-thread batches arrive in arbitrary order; the interval must be a
  // function of the sample multiset alone.
  std::vector<double> samples;
  Rng rng(7);
  for (int i = 0; i < 40; ++i) samples.push_back(rng.normal(10.0, 2.0));
  const BootstrapCi base = bootstrap_mean_ci(samples, 200, 0.9, 5);
  for (std::uint64_t perm = 1; perm <= 6; ++perm) {
    std::vector<double> permuted = samples;
    shuffle_with(permuted, perm);
    const BootstrapCi ci = bootstrap_mean_ci(permuted, 200, 0.9, 5);
    EXPECT_EQ(ci.mean, base.mean) << "perm " << perm;
    EXPECT_EQ(ci.lo, base.lo) << "perm " << perm;
    EXPECT_EQ(ci.hi, base.hi) << "perm " << perm;
  }
}

TEST(BootstrapCiTest, CoverageSanityOnKnownDistribution) {
  // 95% CI over n=30 normal(5, 1) samples should contain the true mean in
  // roughly 95% of trials; with 200 deterministic trials, anything in
  // [85%, 100%] passes (binomial 3-sigma is ~±4.6%).
  Rng rng(20260808);
  int covered = 0;
  const int trials = 200;
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<double> samples;
    for (int i = 0; i < 30; ++i) samples.push_back(rng.normal(5.0, 1.0));
    const BootstrapCi ci =
        bootstrap_mean_ci(samples, 200, 0.95, static_cast<std::uint64_t>(trial));
    if (ci.lo <= 5.0 && 5.0 <= ci.hi) ++covered;
  }
  EXPECT_GE(covered, static_cast<int>(0.85 * trials));
}

TEST(BootstrapCiTest, EdgeCases) {
  const BootstrapCi empty = bootstrap_mean_ci({}, 100, 0.95, 1);
  EXPECT_EQ(empty.n, 0u);
  EXPECT_EQ(empty.mean, 0.0);
  const BootstrapCi single = bootstrap_mean_ci({7.5}, 100, 0.95, 1);
  EXPECT_EQ(single.n, 1u);
  EXPECT_DOUBLE_EQ(single.mean, 7.5);
  EXPECT_DOUBLE_EQ(single.lo, 7.5);  // no spread to estimate
  EXPECT_DOUBLE_EQ(single.hi, 7.5);
  const BootstrapCi no_resamples = bootstrap_mean_ci({1.0, 3.0}, 1, 0.95, 1);
  EXPECT_DOUBLE_EQ(no_resamples.lo, 2.0);
  EXPECT_DOUBLE_EQ(no_resamples.hi, 2.0);
}

// --- 2. build_leaderboard canonicalization. ---

std::vector<LeaderboardSample> synthetic_samples() {
  std::vector<LeaderboardSample> samples;
  const std::vector<std::string> classes = {"lte-handoff", "oscillating"};
  const std::vector<std::string> players = {"exoplayer", "coordinated"};
  Rng rng(3);
  for (const std::string& c : classes) {
    for (const std::string& p : players) {
      for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        LeaderboardSample s;
        s.trace_class = c;
        s.player = p;
        s.seed = seed;
        s.completed = true;
        s.qoe = rng.uniform(0.0, 5.0);
        s.video_kbps = rng.uniform(500.0, 3000.0);
        s.stall_ratio = rng.uniform(0.0, 0.2);
        s.startup_s = rng.uniform(0.5, 3.0);
        s.imbalance_s = rng.uniform(0.0, 4.0);
        samples.push_back(s);
      }
      LeaderboardSample fleet;
      fleet.trace_class = c;
      fleet.player = p;
      fleet.seed = 1;
      fleet.is_fleet = true;
      fleet.fairness = rng.uniform(0.7, 1.0);
      samples.push_back(fleet);
    }
  }
  return samples;
}

TEST(BuildLeaderboard, ShuffledSamplesYieldByteIdenticalJson) {
  LeaderboardConfig config = small_config(1);
  const std::vector<LeaderboardSample> samples = synthetic_samples();
  const std::string base = leaderboard_json(build_leaderboard(samples, config));
  for (std::uint64_t perm = 1; perm <= 5; ++perm) {
    std::vector<LeaderboardSample> permuted = samples;
    shuffle_with(permuted, perm * 31);
    EXPECT_EQ(leaderboard_json(build_leaderboard(permuted, config)), base)
        << "perm " << perm;
  }
}

TEST(BuildLeaderboard, PermutedConfigSubsetsResolveCanonically) {
  const std::vector<LeaderboardSample> samples = synthetic_samples();
  LeaderboardConfig a = small_config(1);
  LeaderboardConfig b = small_config(1);
  std::reverse(b.classes.begin(), b.classes.end());
  std::reverse(b.players.begin(), b.players.end());
  EXPECT_EQ(leaderboard_json(build_leaderboard(samples, a)),
            leaderboard_json(build_leaderboard(samples, b)));
}

TEST(BuildLeaderboard, RankingsArePermutationsSortedByMetricDirection) {
  const LeaderboardConfig config = small_config(1);
  const Leaderboard board = build_leaderboard(synthetic_samples(), config);
  ASSERT_EQ(board.rankings.size(),
            board.classes.size() * leaderboard_metrics().size());
  for (const LeaderboardRanking& r : board.rankings) {
    const std::set<std::string> unique(r.players.begin(), r.players.end());
    EXPECT_EQ(unique.size(), board.players.size()) << r.trace_class << "/" << r.metric;
    // Adjacent pairs obey the metric direction on cell means.
    for (std::size_t j = 0; j + 1 < r.players.size(); ++j) {
      double mj = 0.0;
      double mk = 0.0;
      for (const LeaderboardCell& cell : board.cells) {
        if (cell.trace_class != r.trace_class) continue;
        const BootstrapCi* ci = nullptr;
        if (r.metric == "qoe") ci = &cell.qoe;
        else if (r.metric == "video_kbps") ci = &cell.video_kbps;
        else if (r.metric == "stall_ratio") ci = &cell.stall_ratio;
        else if (r.metric == "startup_s") ci = &cell.startup_s;
        else if (r.metric == "imbalance_s") ci = &cell.imbalance_s;
        else ci = &cell.fairness;
        if (cell.player == r.players[j]) mj = ci->mean;
        if (cell.player == r.players[j + 1]) mk = ci->mean;
      }
      const bool desc = r.metric == "qoe" || r.metric == "video_kbps" ||
                        r.metric == "fairness";
      if (desc) {
        EXPECT_GE(mj, mk) << r.trace_class << "/" << r.metric << " rank " << j;
      } else {
        EXPECT_LE(mj, mk) << r.trace_class << "/" << r.metric << " rank " << j;
      }
    }
  }
}

TEST(BuildLeaderboard, RejectsUnknownNames) {
  LeaderboardConfig config = small_config(1);
  config.classes = {"lte-handoff", "no-such-class"};
  EXPECT_THROW(build_leaderboard({}, config), std::invalid_argument);
  config = small_config(1);
  config.players = {"no-such-player"};
  EXPECT_THROW(build_leaderboard({}, config), std::invalid_argument);
}

// --- 3. End-to-end determinism + emitters. ---

TEST(LeaderboardEndToEnd, ByteIdenticalAcrossThreadCounts) {
  const std::string serial = leaderboard_json(run_leaderboard(small_config(1)));
  for (const int threads : {2, 8}) {
    EXPECT_EQ(leaderboard_json(run_leaderboard(small_config(threads))), serial)
        << "threads=" << threads;
  }
}

TEST(LeaderboardEndToEnd, GridIsFullyPopulated) {
  const Leaderboard board = run_leaderboard(small_config(1));
  ASSERT_EQ(board.cells.size(), board.classes.size() * board.players.size());
  for (const LeaderboardCell& cell : board.cells) {
    EXPECT_EQ(cell.sessions, 2u) << cell.trace_class << "/" << cell.player;
    EXPECT_EQ(cell.fleets, 1u) << cell.trace_class << "/" << cell.player;
    EXPECT_GT(cell.video_kbps.mean, 0.0);
    EXPECT_GE(cell.qoe.lo, std::min(cell.qoe.mean, cell.qoe.lo));
    EXPECT_LE(cell.qoe.lo, cell.qoe.hi);
    // The fleet axis populated Jain fairness: a real number in (0, 1].
    EXPECT_GT(cell.fairness.mean, 0.0);
    EXPECT_LE(cell.fairness.mean, 1.0 + 1e-12);
  }
}

TEST(LeaderboardEndToEnd, SamplesCarrySessionAndFleetAxes) {
  const LeaderboardConfig config = small_config(1);
  const std::vector<LeaderboardSample> samples = collect_samples(config);
  // 2 classes × 2 players × 2 session reps + 2 classes × 2 players × 1 fleet.
  std::size_t sessions = 0;
  std::size_t fleets = 0;
  for (const LeaderboardSample& s : samples) {
    (s.is_fleet ? fleets : sessions)++;
    EXPECT_TRUE(s.trace_class == "lte-handoff" || s.trace_class == "oscillating");
    EXPECT_TRUE(s.player == "exoplayer" || s.player == "coordinated");
  }
  EXPECT_EQ(sessions, 8u);
  EXPECT_EQ(fleets, 4u);
}

TEST(LeaderboardEndToEnd, CsvAndMarkdownMatchTheGrid) {
  const Leaderboard board = run_leaderboard(small_config(1));
  const std::string csv = leaderboard_csv(board);
  std::size_t csv_rows = 0;
  for (char c : csv) {
    if (c == '\n') ++csv_rows;
  }
  EXPECT_EQ(csv_rows, board.cells.size() + 1);  // header + one row per cell
  EXPECT_NE(csv.find("class,player,sessions,fleets"), std::string::npos);
  EXPECT_NE(csv.find("qoe_mean,qoe_lo,qoe_hi"), std::string::npos);

  const std::string md = leaderboard_markdown(board);
  for (const std::string& class_name : board.classes) {
    EXPECT_NE(md.find("## " + class_name), std::string::npos);
  }
  for (const std::string& player : board.players) {
    EXPECT_NE(md.find(player), std::string::npos);
  }
  EXPECT_NE(md.find("Rankings (best first):"), std::string::npos);
}

}  // namespace
}  // namespace demuxabr::experiments
