#include "util/strings.h"

#include <gtest/gtest.h>

namespace demuxabr {
namespace {

TEST(Split, BasicFields) {
  const auto out = split("a,b,c", ',');
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], "a");
  EXPECT_EQ(out[1], "b");
  EXPECT_EQ(out[2], "c");
}

TEST(Split, KeepsEmptyFields) {
  const auto out = split("a,,c,", ',');
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[1], "");
  EXPECT_EQ(out[3], "");
}

TEST(Split, EmptyInputYieldsOneEmptyField) {
  const auto out = split("", ',');
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], "");
}

TEST(SplitLines, UnixEndings) {
  const auto out = split_lines("one\ntwo\nthree\n");
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[2], "three");
}

TEST(SplitLines, WindowsEndings) {
  const auto out = split_lines("one\r\ntwo\r\n");
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], "one");
  EXPECT_EQ(out[1], "two");
}

TEST(SplitLines, NoTrailingNewline) {
  const auto out = split_lines("one\ntwo");
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[1], "two");
}

TEST(SplitLines, PreservesInteriorEmptyLines) {
  const auto out = split_lines("a\n\nb\n");
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[1], "");
}

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(trim("  hello \t"), "hello");
  EXPECT_EQ(trim("hello"), "hello");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(StartsEndsWith, Basics) {
  EXPECT_TRUE(starts_with("#EXTM3U", "#EXT"));
  EXPECT_FALSE(starts_with("#EX", "#EXT"));
  EXPECT_TRUE(ends_with("V3.m3u8", ".m3u8"));
  EXPECT_FALSE(ends_with("m3u8", "x.m3u8"));
}

TEST(ReplaceAll, MultipleOccurrences) {
  EXPECT_EQ(replace_all("a-b-c", "-", "+"), "a+b+c");
  EXPECT_EQ(replace_all("aaa", "aa", "b"), "ba");  // non-overlapping, left to right
  EXPECT_EQ(replace_all("abc", "", "x"), "abc");   // empty needle is a no-op
}

TEST(ParseInt, ValidValues) {
  EXPECT_EQ(parse_int("42").value(), 42);
  EXPECT_EQ(parse_int("-7").value(), -7);
  EXPECT_EQ(parse_int("  13 ").value(), 13);
  EXPECT_EQ(parse_int("0").value(), 0);
}

TEST(ParseInt, RejectsGarbage) {
  EXPECT_FALSE(parse_int("").has_value());
  EXPECT_FALSE(parse_int("12x").has_value());
  EXPECT_FALSE(parse_int("x12").has_value());
  EXPECT_FALSE(parse_int("1.5").has_value());
}

TEST(ParseDouble, ValidValues) {
  EXPECT_DOUBLE_EQ(parse_double("3.25").value(), 3.25);
  EXPECT_DOUBLE_EQ(parse_double("-1e3").value(), -1000.0);
  EXPECT_DOUBLE_EQ(parse_double(" 7 ").value(), 7.0);
}

TEST(ParseDouble, RejectsGarbage) {
  EXPECT_FALSE(parse_double("").has_value());
  EXPECT_FALSE(parse_double("3.5s").has_value());
  EXPECT_FALSE(parse_double("PT5S").has_value());
}

TEST(Join, WithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({"solo"}, ","), "solo");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Format, PrintfStyle) {
  EXPECT_EQ(format("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(format("%.2f", 1.005), "1.00");
  EXPECT_EQ(format("empty"), "empty");
}

TEST(ParseAttributeList, UnquotedAndQuoted) {
  const auto attrs = parse_attribute_list(
      R"(BANDWIDTH=253000,CODECS="avc1.4d401f,mp4a.40.2",RESOLUTION=256x144)");
  ASSERT_EQ(attrs.size(), 3u);
  EXPECT_EQ(attrs[0].first, "BANDWIDTH");
  EXPECT_EQ(attrs[0].second, "253000");
  EXPECT_EQ(attrs[1].first, "CODECS");
  EXPECT_EQ(attrs[1].second, "avc1.4d401f,mp4a.40.2");  // comma inside quotes kept
  EXPECT_EQ(attrs[2].second, "256x144");
}

TEST(ParseAttributeList, QuotedValueWithTrailingAttributes) {
  const auto attrs = parse_attribute_list(R"(URI="audio/A1.m3u8",DEFAULT=YES)");
  ASSERT_EQ(attrs.size(), 2u);
  EXPECT_EQ(attrs[0].second, "audio/A1.m3u8");
  EXPECT_EQ(attrs[1].second, "YES");
}

TEST(ParseAttributeList, EmptyString) {
  EXPECT_TRUE(parse_attribute_list("").empty());
}

TEST(QuoteAttribute, WrapsInQuotes) {
  EXPECT_EQ(quote_attribute("abc"), "\"abc\"");
}

}  // namespace
}  // namespace demuxabr
