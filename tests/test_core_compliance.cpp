#include "core/compliance.h"

#include <gtest/gtest.h>

#include "media/content.h"

namespace demuxabr {
namespace {

SessionLog log_with(std::vector<std::string> video, std::vector<std::string> audio) {
  SessionLog log;
  log.video_selection = std::move(video);
  log.audio_selection = std::move(audio);
  return log;
}

TEST(Compliance, AllAllowedIsCompliant) {
  const auto allowed = curated_subset(youtube_drama_ladder());
  const SessionLog log = log_with({"V1", "V2", "V3"}, {"A1", "A1", "A2"});
  const ComplianceReport report = check_compliance(log, allowed);
  EXPECT_TRUE(report.compliant());
  EXPECT_EQ(report.total_chunks, 3);
  EXPECT_DOUBLE_EQ(report.violation_fraction(), 0.0);
}

TEST(Compliance, CountsViolationsAndLabels) {
  const auto allowed = curated_subset(youtube_drama_ladder());
  // V1+A3 and V2+A3 are not in H_sub; V1+A3 appears twice but is listed once.
  const SessionLog log =
      log_with({"V1", "V1", "V2", "V3"}, {"A3", "A3", "A3", "A2"});
  const ComplianceReport report = check_compliance(log, allowed);
  EXPECT_FALSE(report.compliant());
  EXPECT_EQ(report.violating_chunks, 3);
  ASSERT_EQ(report.violating_labels.size(), 2u);
  EXPECT_EQ(report.violating_labels[0], "V1+A3");
  EXPECT_EQ(report.violating_labels[1], "V2+A3");
  EXPECT_DOUBLE_EQ(report.violation_fraction(), 0.75);
}

TEST(Compliance, SkipsNeverDownloadedChunks) {
  const auto allowed = curated_subset(youtube_drama_ladder());
  const SessionLog log = log_with({"V1", "", "V2"}, {"A1", "A1", ""});
  const ComplianceReport report = check_compliance(log, allowed);
  EXPECT_EQ(report.total_chunks, 1);
}

TEST(Compliance, EmptyLogIsTriviallyCompliant) {
  const auto allowed = curated_subset(youtube_drama_ladder());
  const ComplianceReport report = check_compliance(SessionLog{}, allowed);
  EXPECT_TRUE(report.compliant());
  EXPECT_DOUBLE_EQ(report.violation_fraction(), 0.0);
}

TEST(EnhancedManifests, MpdCarriesStaircase) {
  const Content content = make_drama_content();
  CurationPolicy policy;
  policy.device.screen = DeviceProfile::Screen::kTv;  // full 6-video ladder
  const MpdDocument mpd = build_enhanced_mpd(content, policy);
  EXPECT_EQ(mpd.allowed_combinations.size(), 8u);
  // Round-trip through XML keeps the list.
  const auto reparsed = parse_mpd(serialize_mpd(mpd));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->allowed_combinations, mpd.allowed_combinations);
}

TEST(EnhancedManifests, CuratedHlsMasterNeverListsAllCombos) {
  const Content content = make_drama_content();
  CurationPolicy policy;
  const HlsMasterPlaylist master = build_curated_hls_master(content, policy);
  EXPECT_LT(master.variants.size(), 18u);  // never H_all
  EXPECT_GE(master.variants.size(), 6u);
  EXPECT_GT(master.variants.front().average_bandwidth_bps, 0);
}

TEST(EnhancedManifests, MediaPlaylistsCarryMandatoryBitrate) {
  const Content content = make_drama_content();
  const auto playlists = build_bestpractice_media_playlists(content);
  ASSERT_EQ(playlists.size(), 9u);
  for (const auto& [id, playlist] : playlists) {
    for (const HlsSegment& segment : playlist.segments) {
      EXPECT_GT(segment.bitrate_kbps, 0.0) << id;
    }
  }
}

TEST(EnhancedManifests, ByteRangePackagingAlsoSupported) {
  const Content content = make_drama_content();
  const auto playlists =
      build_bestpractice_media_playlists(content, PackagingMode::kSingleFileByteRange);
  for (const auto& [id, playlist] : playlists) {
    EXPECT_TRUE(playlist.segments.front().has_byterange()) << id;
  }
}

}  // namespace
}  // namespace demuxabr
