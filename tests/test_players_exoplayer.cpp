#include "players/exoplayer.h"

#include <gtest/gtest.h>

#include "manifest/builder.h"
#include "media/content.h"

namespace demuxabr {
namespace {

PlayerContext context(double audio_buffer, double video_buffer, int next_audio = 0,
                      int next_video = 0, int total = 75) {
  PlayerContext ctx;
  ctx.audio_buffer_s = audio_buffer;
  ctx.video_buffer_s = video_buffer;
  ctx.next_audio_chunk = next_audio;
  ctx.next_video_chunk = next_video;
  ctx.total_chunks = total;
  return ctx;
}

ChunkCompletion transfer(std::int64_t bytes, double seconds) {
  ChunkCompletion c;
  c.bytes = bytes;
  c.start_t = 0.0;
  c.end_t = seconds;
  return c;
}

class ExoDashTest : public ::testing::Test {
 protected:
  void SetUp() override {
    content_ = make_drama_content();
    view_ = view_from_mpd(build_dash_mpd(content_));
    player_.start(view_);
  }
  void feed_rate(double kbps, int chunks = 10) {
    // 4-second transfers at the given rate.
    player_.on_chunk_complete(
        transfer(static_cast<std::int64_t>(kbps * 1000.0 / 8.0 * 4.0), 4.0), context(0, 0));
    for (int i = 1; i < chunks; ++i) {
      player_.on_chunk_complete(
          transfer(static_cast<std::int64_t>(kbps * 1000.0 / 8.0 * 4.0), 4.0),
          context(0, 0));
    }
  }
  Content content_;
  ManifestView view_;
  ExoPlayerModel player_;
};

TEST_F(ExoDashTest, BuildsPredeterminedCombinations) {
  ASSERT_EQ(player_.combinations().size(), 8u);
  EXPECT_EQ(player_.combinations()[0].label(), "V1+A1");
  EXPECT_EQ(player_.combinations()[3].label(), "V3+A2");
  EXPECT_EQ(player_.combinations()[7].label(), "V6+A3");
  EXPECT_EQ(player_.name(), "exoplayer-dash");
}

TEST_F(ExoDashTest, SelectsHighestComboUnderBandwidthFraction) {
  feed_rate(900.0);
  const auto request = player_.next_request(context(0, 0));
  ASSERT_TRUE(request.has_value());
  // 0.75 * 900 = 675 -> V3+A2 (669) fits, V4+A2 (1110) does not.
  EXPECT_EQ(player_.combinations()[player_.current_combination_index()].label(),
            "V3+A2");
}

TEST_F(ExoDashTest, ChunkLevelSyncPicksLaggingType) {
  feed_rate(900.0);
  // Video is one chunk behind audio: next request must be video.
  const auto request = player_.next_request(context(8.0, 4.0, 2, 1));
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->type, MediaType::kVideo);
  EXPECT_EQ(request->chunk_index, 1);
  // Audio behind: next request must be audio.
  const auto request2 = player_.next_request(context(4.0, 8.0, 1, 2));
  ASSERT_TRUE(request2.has_value());
  EXPECT_EQ(request2->type, MediaType::kAudio);
}

TEST_F(ExoDashTest, IdlesWhenBuffersFull) {
  EXPECT_FALSE(player_.next_request(context(31.0, 31.0)).has_value());
}

TEST_F(ExoDashTest, NoUpSwitchWithoutBufferCushion) {
  feed_rate(300.0);  // locks selection low
  (void)player_.next_request(context(0.0, 0.0));
  const std::size_t low = player_.current_combination_index();
  feed_rate(5000.0, 30);  // estimate now very high
  // Buffer below minDurationForQualityIncrease (10 s): stay put.
  (void)player_.next_request(context(5.0, 5.0, 1, 1));
  EXPECT_EQ(player_.current_combination_index(), low);
  // With >= 10 s buffered, switch up.
  (void)player_.next_request(context(12.0, 12.0, 2, 2));
  EXPECT_GT(player_.current_combination_index(), low);
}

TEST_F(ExoDashTest, NoDownSwitchWithComfortableBuffer) {
  feed_rate(5000.0, 30);
  (void)player_.next_request(context(12.0, 12.0));
  const std::size_t high = player_.current_combination_index();
  ASSERT_GT(high, 0u);
  feed_rate(300.0, 30);  // estimate collapses
  // Buffer >= maxDurationForQualityDecrease (25 s): ride it out.
  (void)player_.next_request(context(26.0, 26.0, 1, 1));
  EXPECT_EQ(player_.current_combination_index(), high);
  // Below 25 s: drop.
  (void)player_.next_request(context(10.0, 10.0, 2, 2));
  EXPECT_LT(player_.current_combination_index(), high);
}

TEST_F(ExoDashTest, RequestsTracksFromCurrentCombination) {
  feed_rate(900.0);
  const auto video_request = player_.next_request(context(0.0, 0.0));
  ASSERT_TRUE(video_request.has_value());
  EXPECT_EQ(video_request->track_id, "V3");
  const auto audio_request = player_.next_request(context(0.0, 4.0, 0, 1));
  ASSERT_TRUE(audio_request.has_value());
  EXPECT_EQ(audio_request->track_id, "A2");
}

class ExoHlsTest : public ::testing::Test {
 protected:
  Content content_ = make_drama_content();
};

TEST_F(ExoHlsTest, PinsFirstListedAudioRendition) {
  // A3 listed first (the Fig 3 setup): every combo uses A3.
  ExoPlayerModel player;
  player.start(view_from_hls(build_hsub_master(content_, {"A3", "A2", "A1"}), nullptr));
  EXPECT_EQ(player.name(), "exoplayer-hls");
  for (const ComboView& combo : player.combinations()) {
    EXPECT_EQ(combo.audio_id, "A3");
  }
}

TEST_F(ExoHlsTest, PinsLowQualityAudioWhenListedFirst) {
  // A1 first + 5 Mbps (§3.2 second experiment): audio stays A1.
  ExoPlayerModel player;
  player.start(view_from_hls(build_hsub_master(content_, {"A1", "A2", "A3"}), nullptr));
  for (const ComboView& combo : player.combinations()) {
    EXPECT_EQ(combo.audio_id, "A1");
  }
}

TEST_F(ExoHlsTest, VideoPricedAtFirstVariantAggregate) {
  ExoPlayerModel player;
  player.start(view_from_hls(build_hsub_master(content_), nullptr));
  const auto& combos = player.combinations();
  ASSERT_EQ(combos.size(), 6u);
  // V3's only H_sub variant is V3+A2 with BANDWIDTH 840 kbps -> the model
  // must price V3 at 840, an overestimate of the track's 473 kbps.
  bool found_v3 = false;
  for (const ComboView& combo : combos) {
    if (combo.video_id == "V3") {
      found_v3 = true;
      EXPECT_DOUBLE_EQ(combo.bandwidth_kbps, 840.0);
    }
  }
  EXPECT_TRUE(found_v3);
}

TEST_F(ExoHlsTest, CanProduceOffManifestPairs) {
  // With A3 pinned, selecting V1's variant yields V1+A3 — not in H_sub.
  ExoPlayerModel player;
  player.start(view_from_hls(build_hsub_master(content_, {"A3", "A2", "A1"}), nullptr));
  const auto request = player.next_request(context(0.0, 0.0));
  ASSERT_TRUE(request.has_value());
  const ComboView& combo = player.combinations()[player.current_combination_index()];
  EXPECT_EQ(combo.audio_id, "A3");
}

TEST_F(ExoHlsTest, HallUsesFirstVariantContainingEachVideo) {
  // In H_all (sorted by aggregate peak), the first variant containing V1 is
  // V1+A1 (253 kbps).
  ExoPlayerModel player;
  player.start(view_from_hls(build_hall_master(content_), nullptr));
  const auto& combos = player.combinations();
  bool found_v1 = false;
  for (const ComboView& combo : combos) {
    if (combo.video_id == "V1") {
      found_v1 = true;
      EXPECT_DOUBLE_EQ(combo.bandwidth_kbps, 253.0);
    }
  }
  EXPECT_TRUE(found_v1);
}

}  // namespace
}  // namespace demuxabr
