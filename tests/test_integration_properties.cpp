// Property-style sweeps: invariants that must hold for EVERY player model on
// EVERY standard trace (parameterized gtest over the cross product).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/compliance.h"
#include "core/coordinated_player.h"
#include "experiments/scenarios.h"
#include "manifest/builder.h"
#include "players/dashjs.h"
#include "players/exoplayer.h"
#include "players/shaka.h"

namespace demuxabr {
namespace {

namespace ex = demuxabr::experiments;

enum class PlayerKind { kExoDash, kExoHls, kShakaHls, kDashJs, kCoordinated };

const char* kind_name(PlayerKind kind) {
  switch (kind) {
    case PlayerKind::kExoDash: return "exo-dash";
    case PlayerKind::kExoHls: return "exo-hls";
    case PlayerKind::kShakaHls: return "shaka-hls";
    case PlayerKind::kDashJs: return "dashjs";
    case PlayerKind::kCoordinated: return "coordinated";
  }
  return "?";
}

struct Case {
  PlayerKind kind;
  std::size_t trace_index;
};

class PlayerTraceSweep : public ::testing::TestWithParam<Case> {
 protected:
  static ex::ExperimentSetup setup_for(PlayerKind kind, const BandwidthTrace& trace) {
    switch (kind) {
      case PlayerKind::kExoDash:
      case PlayerKind::kDashJs:
        return ex::plain_dash(trace, "sweep");
      case PlayerKind::kExoHls: {
        auto setup = ex::fig3_exo_hls_a3_first();
        setup.trace = trace;
        return setup;
      }
      case PlayerKind::kShakaHls: {
        auto setup = ex::fig4a_shaka_hall_1mbps();
        setup.trace = trace;
        return setup;
      }
      case PlayerKind::kCoordinated:
        return ex::bestpractice_dash(trace, "sweep");
    }
    return ex::plain_dash(trace, "sweep");
  }

  static std::unique_ptr<PlayerAdapter> player_for(PlayerKind kind) {
    switch (kind) {
      case PlayerKind::kExoDash:
      case PlayerKind::kExoHls:
        return std::make_unique<ExoPlayerModel>();
      case PlayerKind::kShakaHls:
        return std::make_unique<ShakaPlayerModel>();
      case PlayerKind::kDashJs:
        return std::make_unique<DashJsPlayerModel>();
      case PlayerKind::kCoordinated:
        return std::make_unique<CoordinatedPlayer>();
    }
    return nullptr;
  }
};

TEST_P(PlayerTraceSweep, SessionInvariantsHold) {
  const Case test_case = GetParam();
  const auto traces = ex::comparison_traces();
  ASSERT_LT(test_case.trace_index, traces.size());
  const auto& named = traces[test_case.trace_index];
  SCOPED_TRACE(std::string(kind_name(test_case.kind)) + " on " + named.name);

  auto setup = setup_for(test_case.kind, named.trace);
  auto player = player_for(test_case.kind);
  const SessionLog log = ex::run(setup, *player);

  // 1. The session finishes playback within the simulation budget.
  EXPECT_TRUE(log.completed);

  // 2. Every chunk of both media types was downloaded exactly once, in order.
  int next_audio = 0;
  int next_video = 0;
  for (const DownloadRecord& d : log.downloads) {
    int& next = d.type == MediaType::kAudio ? next_audio : next_video;
    ASSERT_EQ(d.chunk_index, next);
    ++next;
    // 3. Download intervals are sane and causally ordered.
    EXPECT_GT(d.end_t, d.start_t);
    EXPECT_GT(d.bytes, 0);
  }
  EXPECT_EQ(next_audio, log.total_chunks);
  EXPECT_EQ(next_video, log.total_chunks);

  // 4. Selections recorded for every chunk and refer to real tracks.
  for (std::size_t i = 0; i < log.video_selection.size(); ++i) {
    ASSERT_FALSE(log.video_selection[i].empty()) << i;
    ASSERT_FALSE(log.audio_selection[i].empty()) << i;
    EXPECT_NE(setup.content.ladder().find(log.video_selection[i]), nullptr);
    EXPECT_NE(setup.content.ladder().find(log.audio_selection[i]), nullptr);
  }

  // 5. No download ever exceeds the link capacity envelope.
  for (const DownloadRecord& d : log.downloads) {
    const double max_rate = named.trace.average_kbps(d.start_t, d.end_t) * 1.001;
    EXPECT_LE(d.throughput_kbps(), max_rate + 1.0)
        << "chunk " << d.chunk_index << " of " << media_type_name(d.type);
  }

  // 6. Buffer series stay non-negative.
  for (const auto& point : log.audio_buffer_s.points()) EXPECT_GE(point.value, -1e-9);
  for (const auto& point : log.video_buffer_s.points()) EXPECT_GE(point.value, -1e-9);

  // 7. Stalls are ordered, disjoint, within the session, and consistent
  //    with total playback-time accounting.
  double previous_end = 0.0;
  for (const StallEvent& stall : log.stalls) {
    EXPECT_GT(stall.end_t, stall.start_t);
    EXPECT_GE(stall.start_t, previous_end);
    EXPECT_LE(stall.end_t, log.end_time_s + 1e-9);
    previous_end = stall.end_t;
  }
  EXPECT_NEAR(log.end_time_s,
              log.startup_delay_s + log.content_duration_s + log.total_stall_s(), 0.05);

  // 8. Determinism: a second run gives the identical log.
  auto player2 = player_for(test_case.kind);
  const SessionLog log2 = ex::run(setup, *player2);
  ASSERT_EQ(log2.downloads.size(), log.downloads.size());
  for (std::size_t i = 0; i < log.downloads.size(); ++i) {
    EXPECT_EQ(log2.downloads[i].track_id, log.downloads[i].track_id);
    EXPECT_DOUBLE_EQ(log2.downloads[i].end_t, log.downloads[i].end_t);
  }
  EXPECT_DOUBLE_EQ(log2.end_time_s, log.end_time_s);
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  const std::size_t num_traces = ex::comparison_traces().size();
  for (PlayerKind kind : {PlayerKind::kExoDash, PlayerKind::kExoHls,
                          PlayerKind::kShakaHls, PlayerKind::kDashJs,
                          PlayerKind::kCoordinated}) {
    for (std::size_t t = 0; t < num_traces; ++t) cases.push_back({kind, t});
  }
  return cases;
}

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  std::string name = kind_name(info.param.kind);
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name + "_trace" + std::to_string(info.param.trace_index);
}

INSTANTIATE_TEST_SUITE_P(AllPlayersAllTraces, PlayerTraceSweep,
                         ::testing::ValuesIn(all_cases()), case_name);

// Chunk-duration sweep: engine invariants independent of chunking.
class ChunkDurationSweep : public ::testing::TestWithParam<double> {};

TEST_P(ChunkDurationSweep, CoordinatedPlayerCompletesCleanly) {
  const double chunk_s = GetParam();
  ex::ExperimentSetup setup = ex::bestpractice_dash(BandwidthTrace::constant(900.0), "cd");
  setup.content = ContentBuilder(youtube_drama_ladder())
                      .duration_s(120.0)
                      .chunk_duration_s(chunk_s)
                      .build();
  // Rebuild the view for the new chunking.
  DashBuildOptions options;
  CurationPolicy policy;
  options.allowed_combinations = curate_staircase(setup.content.ladder(), policy);
  const auto mpd = parse_mpd(serialize_mpd(build_dash_mpd(setup.content, options)));
  ASSERT_TRUE(mpd.ok());
  setup.view = view_from_mpd(*mpd);

  CoordinatedPlayer player;
  const SessionLog log = ex::run(setup, player);
  EXPECT_TRUE(log.completed);
  EXPECT_EQ(static_cast<int>(log.video_selection.size()), setup.content.num_chunks());
}

INSTANTIATE_TEST_SUITE_P(ChunkDurations, ChunkDurationSweep,
                         ::testing::Values(1.0, 2.0, 4.0, 6.0, 10.0));

// RTT sweep: higher RTT can only slow things down, never break invariants.
class RttSweep : public ::testing::TestWithParam<double> {};

TEST_P(RttSweep, ThroughputDegradesGracefully) {
  ex::ExperimentSetup setup = ex::bestpractice_dash(BandwidthTrace::constant(1500.0), "rtt");
  setup.rtt_s = GetParam();
  CoordinatedPlayer player;
  const SessionLog log = ex::run(setup, player);
  EXPECT_TRUE(log.completed);
  for (const DownloadRecord& d : log.downloads) {
    EXPECT_GE(d.end_t - d.start_t, GetParam() - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Rtts, RttSweep, ::testing::Values(0.0, 0.02, 0.05, 0.2, 0.5));

}  // namespace
}  // namespace demuxabr
