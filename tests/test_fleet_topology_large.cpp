// Large-N differential topology test (N = 100), split out so it can carry
// the `fleet_large` ctest label: CI's coverage job excludes it (Debug +
// instrumentation makes it slow) while the regular Release test job runs it
// with a generous timeout.
#include <gtest/gtest.h>

#include <memory>

#include "experiments/scenarios.h"
#include "experiments/sweep.h"
#include "fleet/metrics.h"
#include "fleet/scheduler.h"
#include "fleet/topology.h"
#include "players/exoplayer.h"

namespace demuxabr::fleet {
namespace {

namespace ex = demuxabr::experiments;

std::unique_ptr<PlayerAdapter> make_exo() {
  return std::make_unique<ExoPlayerModel>();
}

TEST(TopologyCrossEngineLarge, HundredClientsOverTenShards) {
  const ex::ExperimentSetup setup = ex::plain_dash(ex::varying_600_trace(), "large");

  FleetConfig config;
  config.client_count = 100;
  config.seed = 31;
  config.players.push_back({"exoplayer", &make_exo, 1.0});
  config.session.max_sim_time_s = 600.0;
  config.arrivals = ArrivalProcess::kPoisson;
  config.arrival_rate_per_s = 1.0;
  config.churn.leave_probability = 0.3;
  config.churn.min_watch_s = 30.0;
  config.churn.max_watch_s = 200.0;
  // 10 shards x 10 clients funnelling into one core: 21 links, with the
  // core undersized so cross-shard contention moves binding constraints.
  config.topology = TopologySpec::sharded(
      10, BandwidthTrace::constant(5000.0), BandwidthTrace::constant(2000.0),
      BandwidthTrace::constant(9000.0));
  config.topology->video_assignment = TopologySpec::block_assignment(10, 10);

  const BandwidthTrace unused = BandwidthTrace::constant(1000.0);
  config.engine = Engine::kBarrier;
  const FleetResult barrier = run_fleet(setup.content, setup.view, unused, config);
  config.engine = Engine::kEventHeap;
  const FleetResult heap = run_fleet(setup.content, setup.view, unused, config);

  ASSERT_EQ(barrier.clients.size(), heap.clients.size());
  for (std::size_t i = 0; i < barrier.clients.size(); ++i) {
    EXPECT_EQ(ex::log_fingerprint(barrier.clients[i].log),
              ex::log_fingerprint(heap.clients[i].log))
        << "client " << barrier.clients[i].id;
  }
  EXPECT_EQ(fleet_fingerprint(barrier), fleet_fingerprint(heap));

  ASSERT_EQ(heap.links.size(), 21u);
  for (const LinkStats& link : heap.links) {
    EXPECT_EQ(link.residual_flows, 0) << link.name;
  }
  // Block assignment put exactly 10 clients on each shard.
  const FleetMetrics metrics = compute_fleet_metrics(heap);
  ASSERT_EQ(metrics.path_groups.size(), 10u);
  for (const auto& group : metrics.path_groups) {
    EXPECT_EQ(group.clients, 10) << group.name;
  }
}

}  // namespace
}  // namespace demuxabr::fleet
