// Fleet timeline telemetry (obs/telemetry.h) + incident detection
// (obs/incidents.h), in four tiers:
//
//  1. Bin arithmetic: half-open [b·w, (b+1)·w) bins — a sample exactly on a
//     boundary lands in the higher bin; link segments split exactly at bin
//     edges; per-bin session dedup counts each session once per bin.
//  2. Merge algebra: per-shard TimelineShards combined via merge() with a
//     local→global link map equal a single shard that saw everything, and
//     the timeline fingerprint is byte-identical across engines {barrier,
//     event_heap}, thread counts {1, 2, 8} and {full, streaming} metrics
//     modes on real fleet runs.
//  3. Hysteresis: each incident family opens at `enter` sustained for
//     min_bins, closes below `exit`, and reports the peak bin.
//  4. Exporters: NDJSON/CSV/HTML golden substrings, plus the tracer-interop
//     instants detect_incidents() emits when a Tracer is installed.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "experiments/scenarios.h"
#include "fleet/metrics.h"
#include "fleet/population.h"
#include "fleet/scheduler.h"
#include "obs/incidents.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "players/exoplayer.h"
#include "util/strings.h"

namespace demuxabr::obs {
namespace {

namespace ex = demuxabr::experiments;
using fleet::FleetConfig;
using fleet::fleet_fingerprint;

TelemetryConfig enabled_config(double bin_s = 1.0) {
  TelemetryConfig config;
  config.enabled = true;
  config.bin_s = bin_s;
  return config;
}

TimelineShard make_shard(double bin_s = 1.0) {
  return TimelineShard(enabled_config(bin_s), {500.0, 1000.0},
                       {"link-a", "link-b"});
}

// --- 1. Bin arithmetic ----------------------------------------------------

TEST(TimelineShard, BoundarySampleLandsInHigherBin) {
  TimelineShard shard = make_shard();
  TimelineCursor cursor;
  shard.sample_session(cursor, 1.999999, 2.0, 3.0, false);
  TimelineCursor cursor2;
  shard.sample_session(cursor2, 2.0, 2.0, 3.0, false);  // exactly on the edge
  const FleetTimeline timeline = shard.take();
  ASSERT_GE(timeline.bin_count(), 3u);
  EXPECT_EQ(timeline.bins[1].samples, 1u);
  EXPECT_EQ(timeline.bins[2].samples, 1u);
  EXPECT_EQ(timeline.bins[0].samples, 0u);
}

TEST(TimelineShard, SessionSampleAccumulatesFixedPointSums) {
  TimelineShard shard = make_shard();
  TimelineCursor cursor;
  shard.sample_session(cursor, 0.25, 1.5, 4.0, false);
  shard.sample_session(cursor, 0.50, 2.5, 1.0, true);
  const FleetTimeline timeline = shard.take();
  ASSERT_GE(timeline.bin_count(), 1u);
  const FleetBin& bin = timeline.bins[0];
  EXPECT_EQ(bin.samples, 2u);
  EXPECT_EQ(bin.audio_level_sum_us, 4'000'000);
  EXPECT_EQ(bin.video_level_sum_us, 5'000'000);
  EXPECT_EQ(bin.imbalance_sum_us, 2'500'000 + 1'500'000);
  EXPECT_EQ(bin.audio_level_min_us, 1'500'000);
  EXPECT_EQ(bin.video_level_min_us, 1'000'000);
  // Dedup: one session sampled twice in bin 0 counts once per state.
  EXPECT_EQ(bin.active_sessions, 1u);
  EXPECT_EQ(bin.stalled_sessions, 1u);
}

TEST(TimelineShard, LinkSegmentSplitsExactlyAtBinEdges) {
  TimelineShard shard = make_shard();
  // One flow from 0.5 s to 2.5 s at 1000 kbps offered/delivered.
  shard.link_segment(0, 0.5, 2.5, 1, 1000.0, 1000.0);
  // An idle segment accrues nothing but keeps the series length.
  shard.link_segment(1, 0.0, 3.0, 0, 800.0, 0.0);
  const FleetTimeline timeline = shard.take();
  ASSERT_EQ(timeline.links.size(), 2u);
  const LinkSeries& a = timeline.links[0];
  ASSERT_GE(a.bins.size(), 3u);
  EXPECT_EQ(a.bins[0].busy_us, 500'000);
  EXPECT_EQ(a.bins[1].busy_us, 1'000'000);
  EXPECT_EQ(a.bins[2].busy_us, 500'000);
  EXPECT_EQ(a.bins[0].flow_us, 500'000);
  // offered_kbit_mil = kbps · dt · 1000: 1000 kbps for 1 s = 1e6.
  EXPECT_EQ(a.bins[1].offered_kbit_mil, 1'000'000);
  EXPECT_EQ(a.bins[1].delivered_kbit_mil, 1'000'000);
  const LinkSeries& b = timeline.links[1];
  for (const LinkBin& bin : b.bins) {
    EXPECT_EQ(bin.busy_us, 0);
    EXPECT_EQ(bin.delivered_kbit_mil, 0);
  }
}

TEST(TimelineShard, BitrateMixBucketsByLadderRung) {
  TimelineShard shard = make_shard();
  shard.video_chunk(0.1, 500.0);
  shard.video_chunk(0.2, 500.0);
  shard.video_chunk(1.7, 1000.0);
  const FleetTimeline timeline = shard.take();
  ASSERT_EQ(timeline.rung_count(), 2u);
  ASSERT_GE(timeline.bin_count(), 2u);
  EXPECT_EQ(timeline.bitrate_mix[0 * 2 + 0], 2u);  // bin 0, rung 500
  EXPECT_EQ(timeline.bitrate_mix[0 * 2 + 1], 0u);
  EXPECT_EQ(timeline.bitrate_mix[1 * 2 + 1], 1u);  // bin 1, rung 1000
}

TEST(TimelineShard, LifecycleAndCdnCountsLandInTheirBins) {
  TimelineShard shard = make_shard();
  shard.session_started(0.0);
  shard.session_started(0.9);
  shard.session_departed(1.5);
  shard.cdn_request(1, 0.2, true);
  shard.cdn_request(1, 0.3, false);
  const FleetTimeline timeline = shard.take();
  EXPECT_EQ(timeline.bins[0].started_sessions, 2u);
  EXPECT_EQ(timeline.bins[1].departed_sessions, 1u);
  ASSERT_EQ(timeline.cdns.size(), 1u);
  EXPECT_EQ(timeline.cdns[0].link, 1u);
  EXPECT_EQ(timeline.cdns[0].bins[0].hits, 1u);
  EXPECT_EQ(timeline.cdns[0].bins[0].misses, 1u);
}

// --- 2. Merge algebra -----------------------------------------------------

TEST(FleetTimeline, ShardMergeWithLinkMapEqualsSingleShard) {
  // Whole world: links {0:"core", 1:"edge"}; shard A owns link 0, shard B
  // owns link 1 (as its local link 0).
  TimelineShard whole(enabled_config(), {500.0, 1000.0}, {"core", "edge"});
  TimelineCursor wc1;
  TimelineCursor wc2;
  whole.session_started(0.0);
  whole.sample_session(wc1, 0.5, 1.0, 2.0, false);
  whole.sample_session(wc2, 1.5, 3.0, 3.0, true);
  whole.video_chunk(0.5, 500.0);
  whole.link_segment(0, 0.0, 2.0, 1, 1000.0, 1000.0);
  whole.link_segment(1, 0.5, 1.5, 2, 800.0, 800.0);
  whole.cdn_request(1, 0.7, true);

  TimelineShard shard_a(enabled_config(), {500.0, 1000.0}, {"core"});
  TimelineCursor ac;
  shard_a.session_started(0.0);
  shard_a.sample_session(ac, 0.5, 1.0, 2.0, false);
  shard_a.video_chunk(0.5, 500.0);
  shard_a.link_segment(0, 0.0, 2.0, 1, 1000.0, 1000.0);

  TimelineShard shard_b(enabled_config(), {500.0, 1000.0}, {"edge"});
  TimelineCursor bc;
  shard_b.sample_session(bc, 1.5, 3.0, 3.0, true);
  shard_b.link_segment(0, 0.5, 1.5, 2, 800.0, 800.0);
  shard_b.cdn_request(0, 0.7, true);

  FleetTimeline merged;
  merged.bin_s = 1.0;
  merged.links.resize(2);
  merged.links[0].name = "core";
  merged.links[1].name = "edge";
  const std::vector<std::size_t> map_a{0};
  const std::vector<std::size_t> map_b{1};
  merged.merge(shard_a.take(), &map_a);
  merged.merge(shard_b.take(), &map_b);
  merged.normalize();

  EXPECT_EQ(merged.fingerprint(), whole.take().fingerprint());
}

FleetConfig telemetry_fleet_config(int clients) {
  FleetConfig config;
  config.client_count = clients;
  config.seed = 9;
  config.arrivals = fleet::ArrivalProcess::kPoisson;
  config.arrival_rate_per_s = 0.5;
  config.players.push_back(
      {"exoplayer", [] { return std::make_unique<ExoPlayerModel>(); }, 1.0});
  config.churn.leave_probability = 0.2;
  config.session.max_sim_time_s = 1800.0;
  config.telemetry.enabled = true;
  return config;
}

TEST(FleetTelemetry, CrossEngineTimelineIsByteIdentical) {
  const ex::ExperimentSetup setup =
      ex::plain_dash(BandwidthTrace::constant(2500.0), "telemetry-engines");
  FleetConfig config = telemetry_fleet_config(8);
  config.engine = fleet::Engine::kBarrier;
  const fleet::FleetResult barrier =
      fleet::run_fleet(setup.content, setup.view, setup.trace, config);
  config.engine = fleet::Engine::kEventHeap;
  const fleet::FleetResult heap =
      fleet::run_fleet(setup.content, setup.view, setup.trace, config);
  ASSERT_TRUE(barrier.timeline.has_value());
  ASSERT_TRUE(heap.timeline.has_value());
  EXPECT_GT(barrier.timeline->bin_count(), 0u);
  EXPECT_EQ(barrier.timeline->fingerprint(), heap.timeline->fingerprint());
  // The timeline is part of the full fleet fingerprint too.
  EXPECT_EQ(fleet_fingerprint(barrier), fleet_fingerprint(heap));
  EXPECT_NE(fleet_fingerprint(barrier).find("telemetry bin_s_mil"),
            std::string::npos);
}

/// Three disjoint edge→core chains so the shard runner actually partitions.
fleet::TopologySpec telemetry_chains() {
  fleet::TopologySpec spec;
  for (int i = 0; i < 3; ++i) {
    const std::size_t edge = spec.add_link(
        format("edge-%d", i), BandwidthTrace::constant(2000.0 + 300.0 * i));
    const std::size_t core =
        spec.add_link(format("core-%d", i), BandwidthTrace::constant(1800.0));
    spec.add_path(format("chain-%d", i), {edge, core});
  }
  return spec;
}

TEST(FleetTelemetry, ShardMergeIsByteIdenticalAcrossThreadCounts) {
  const ex::ExperimentSetup setup =
      ex::plain_dash(BandwidthTrace::constant(2500.0), "telemetry-shards");
  FleetConfig config = telemetry_fleet_config(12);
  config.topology = telemetry_chains();

  std::vector<std::string> fingerprints;
  for (const int threads : {1, 2, 8}) {
    config.threads = threads;
    const fleet::FleetResult result =
        fleet::run_fleet(setup.content, setup.view, setup.trace, config);
    ASSERT_TRUE(result.timeline.has_value());
    EXPECT_GT(result.timeline->bin_count(), 0u);
    // Global link naming survives the merge in declaration order.
    ASSERT_EQ(result.timeline->links.size(), 6u);
    EXPECT_EQ(result.timeline->links[0].name, "edge-0");
    EXPECT_EQ(result.timeline->links[5].name, "core-2");
    fingerprints.push_back(fleet_fingerprint(result));
  }
  EXPECT_EQ(fingerprints[0], fingerprints[1]);
  EXPECT_EQ(fingerprints[0], fingerprints[2]);
}

TEST(FleetTelemetry, StreamingMetricsModeKeepsTimelineIdentical) {
  const ex::ExperimentSetup setup =
      ex::plain_dash(BandwidthTrace::constant(2500.0), "telemetry-streaming");
  FleetConfig config = telemetry_fleet_config(10);
  const fleet::FleetResult full =
      fleet::run_fleet(setup.content, setup.view, setup.trace, config);
  config.streaming.client_threshold = 0;  // force streaming aggregation
  const fleet::FleetResult streaming =
      fleet::run_fleet(setup.content, setup.view, setup.trace, config);
  ASSERT_TRUE(full.timeline.has_value());
  ASSERT_TRUE(streaming.timeline.has_value());
  EXPECT_EQ(full.timeline->fingerprint(), streaming.timeline->fingerprint());
}

TEST(FleetTelemetry, DisabledRunCarriesNoTimeline) {
  const ex::ExperimentSetup setup =
      ex::plain_dash(BandwidthTrace::constant(2500.0), "telemetry-off");
  FleetConfig config = telemetry_fleet_config(2);
  config.telemetry.enabled = false;
  const fleet::FleetResult result =
      fleet::run_fleet(setup.content, setup.view, setup.trace, config);
  EXPECT_FALSE(result.timeline.has_value());
  EXPECT_EQ(fleet_fingerprint(result).find("telemetry bin_s_mil"),
            std::string::npos);
}

// --- 3. Hysteresis --------------------------------------------------------

/// Synthetic timeline: `stalled_of` / `active` per bin drive the stall
/// series; imbalance and buffers stay calm.
FleetTimeline stall_timeline(const std::vector<std::uint64_t>& stalled_of,
                             std::uint64_t active = 10) {
  FleetTimeline timeline;
  timeline.bin_s = 1.0;
  timeline.bins.resize(stalled_of.size());
  for (std::size_t b = 0; b < stalled_of.size(); ++b) {
    timeline.bins[b].samples = active;
    timeline.bins[b].active_sessions = active;
    timeline.bins[b].stalled_sessions = stalled_of[b];
  }
  return timeline;
}

TEST(DetectIncidents, StallStormOpensAtEnterClosesBelowExit) {
  // enter = 0.3·10 = 3 stalled, exit = 0.15·10 = 1.5: bins 2..5 form one
  // episode (bin 5 holds 2 ≥ exit), closing at bin 6 (1 < 1.5).
  const FleetTimeline timeline = stall_timeline({0, 1, 4, 6, 5, 2, 1, 0});
  const std::vector<Incident> incidents = detect_incidents(timeline);
  ASSERT_EQ(incidents.size(), 1u);
  EXPECT_EQ(incidents[0].type, IncidentType::kStallStorm);
  EXPECT_EQ(incidents[0].entity, "fleet");
  EXPECT_EQ(incidents[0].start_bin, 2);
  EXPECT_EQ(incidents[0].end_bin, 5);
  EXPECT_EQ(incidents[0].peak_bin, 3);
  EXPECT_DOUBLE_EQ(incidents[0].peak, 0.6);
  EXPECT_DOUBLE_EQ(incidents[0].start_s, 2.0);
  EXPECT_DOUBLE_EQ(incidents[0].end_s, 6.0);
}

TEST(DetectIncidents, OpenEpisodeFinalizesAtTimelineEnd) {
  const FleetTimeline timeline = stall_timeline({0, 5, 6, 7});
  const std::vector<Incident> incidents = detect_incidents(timeline);
  ASSERT_EQ(incidents.size(), 1u);
  EXPECT_EQ(incidents[0].start_bin, 1);
  EXPECT_EQ(incidents[0].end_bin, 3);
  EXPECT_EQ(incidents[0].peak_bin, 3);
}

TEST(DetectIncidents, ImbalanceNeedsMinBinsSustained) {
  FleetTimeline timeline;
  timeline.bin_s = 1.0;
  timeline.bins.resize(8);
  // Mean imbalance per bin [s]: {0, 5, 5, 0, 5, 5, 5, 1}. Default
  // imbalance_min_bins = 3: the 2-bin spike never opens; bins 4..6 do
  // (closing below exit = 2 s at bin 7).
  const double imbalance_s[] = {0, 5, 5, 0, 5, 5, 5, 1};
  for (std::size_t b = 0; b < 8; ++b) {
    timeline.bins[b].samples = 4;
    timeline.bins[b].active_sessions = 4;
    timeline.bins[b].imbalance_sum_us =
        static_cast<std::int64_t>(imbalance_s[b] * 4 * 1e6);
  }
  const std::vector<Incident> incidents = detect_incidents(timeline);
  ASSERT_EQ(incidents.size(), 1u);
  EXPECT_EQ(incidents[0].type, IncidentType::kAvImbalance);
  EXPECT_EQ(incidents[0].start_bin, 4);
  EXPECT_EQ(incidents[0].end_bin, 6);
}

TEST(DetectIncidents, LinkSaturationPerLinkWithEntityName) {
  FleetTimeline timeline;
  timeline.bin_s = 1.0;
  timeline.bins.resize(4);
  for (FleetBin& bin : timeline.bins) bin.samples = 1;
  timeline.links.resize(2);
  timeline.links[0].name = "calm";
  timeline.links[1].name = "hot";
  timeline.links[0].bins.resize(4);
  timeline.links[1].bins.resize(4);
  // Busy fractions: calm stays at 0.5; hot runs 1.0 for bins 1..2 then
  // drops to 0.5 (< exit 0.80).
  for (std::size_t b = 0; b < 4; ++b) {
    timeline.links[0].bins[b].busy_us = 500'000;
    timeline.links[1].bins[b].busy_us = (b == 1 || b == 2) ? 1'000'000 : 500'000;
  }
  const std::vector<Incident> incidents = detect_incidents(timeline);
  ASSERT_EQ(incidents.size(), 1u);
  EXPECT_EQ(incidents[0].type, IncidentType::kLinkSaturation);
  EXPECT_EQ(incidents[0].entity, "hot");
  EXPECT_EQ(incidents[0].link, 1u);
  EXPECT_EQ(incidents[0].start_bin, 1);
  EXPECT_EQ(incidents[0].end_bin, 2);
  EXPECT_DOUBLE_EQ(incidents[0].peak, 1.0);
}

// --- 4. Exporters + tracer interop ---------------------------------------

TEST(TelemetryExport, NdjsonAndCsvCarryTypedRows) {
  TimelineShard shard = make_shard();
  TimelineCursor cursor;
  shard.session_started(0.0);
  shard.sample_session(cursor, 0.5, 1.0, 2.0, true);
  shard.link_segment(0, 0.0, 1.0, 1, 1000.0, 1000.0);
  shard.cdn_request(1, 0.5, true);
  const FleetTimeline timeline = shard.take();
  const std::string ndjson = timeline.to_ndjson();
  EXPECT_NE(ndjson.find("\"type\":\"fleet\""), std::string::npos);
  EXPECT_NE(ndjson.find("\"type\":\"link\""), std::string::npos);
  EXPECT_NE(ndjson.find("\"type\":\"cdn\""), std::string::npos);
  EXPECT_NE(ndjson.find("\"name\":\"link-a\""), std::string::npos);
  const std::string csv = timeline.to_csv();
  EXPECT_EQ(csv.find("bin,t_s,samples,active,stalled,started,departed"), 0u);
  EXPECT_NE(csv.find("\n0,0.000,1,1,1,1,0"), std::string::npos);
}

TEST(TelemetryReport, HtmlIsSelfContainedWithChartsAndIncidents) {
  const FleetTimeline timeline = stall_timeline({0, 4, 5, 4, 0, 0});
  const std::vector<Incident> incidents = detect_incidents(timeline);
  ASSERT_FALSE(incidents.empty());
  const std::string html =
      telemetry_report(timeline, incidents, "unit & test");
  EXPECT_EQ(html.rfind("<!doctype html>", 0), 0u);
  EXPECT_NE(html.find("unit &amp; test"), std::string::npos);  // escaped title
  EXPECT_NE(html.find("<svg"), std::string::npos);
  EXPECT_NE(html.find("stall_storm"), std::string::npos);
  EXPECT_NE(html.find("<table>"), std::string::npos);
  // Self-contained: no external fetches of any kind.
  EXPECT_EQ(html.find("http://"), std::string::npos);
  EXPECT_EQ(html.find("https://"), std::string::npos);
  EXPECT_EQ(html.find("<script"), std::string::npos);
}

TEST(TelemetryReport, EmptyIncidentListSaysSo) {
  const FleetTimeline timeline = stall_timeline({0, 0, 0});
  const std::string html = telemetry_report(timeline, {});
  EXPECT_NE(html.find("No incidents detected."), std::string::npos);
}

TEST(DetectIncidents, EmitsTracerInstantsPerIncident) {
  const FleetTimeline timeline = stall_timeline({0, 4, 5, 0});
  ScopedTracer scoped(kCatEngine);
  const std::vector<Incident> incidents = detect_incidents(timeline);
  ASSERT_EQ(incidents.size(), 1u);
  CaptureSink sink;
  scoped.get().drain_to(sink);
  ASSERT_EQ(sink.events.size(), 2u);
  EXPECT_EQ(std::string(sink.events[0].name), "incident_begin");
  EXPECT_EQ(std::string(sink.events[1].name), "incident_end");
  EXPECT_EQ(sink.events[0].kind, TraceEvent::Kind::kInstant);
  EXPECT_EQ(sink.events[0].track, kEngineTrack);
  EXPECT_DOUBLE_EQ(sink.events[0].t_s, incidents[0].start_s);
  EXPECT_DOUBLE_EQ(sink.events[1].t_s, incidents[0].end_s);
  EXPECT_NE(sink.events[0].args.find("\"type\":\"stall_storm\""),
            std::string::npos);
  EXPECT_NE(sink.events[0].args.find("\"entity\":\"fleet\""),
            std::string::npos);
}

}  // namespace
}  // namespace demuxabr::obs
