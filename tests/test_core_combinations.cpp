#include "core/allowed_combinations.h"

#include <gtest/gtest.h>

namespace demuxabr {
namespace {

CurationPolicy policy(ContentGenre genre,
                      DeviceProfile::Screen screen = DeviceProfile::Screen::kTv,
                      DeviceProfile::Sound sound = DeviceProfile::Sound::kSurround) {
  CurationPolicy p;
  p.genre = genre;
  p.device.screen = screen;
  p.device.sound = sound;
  return p;
}

TEST(CurationPolicy, AudioImportanceOrdering) {
  // §2.1: music shows value sound quality most; action movies least.
  EXPECT_GT(policy(ContentGenre::kMusic).audio_importance(),
            policy(ContentGenre::kDrama).audio_importance());
  EXPECT_GT(policy(ContentGenre::kDrama).audio_importance(),
            policy(ContentGenre::kAction).audio_importance());
}

TEST(Curation, DramaOnTvMatchesHsub) {
  // Weight 0.5 reproduces the paper's H_sub pairing exactly.
  const auto combos = curate_combinations(youtube_drama_ladder(),
                                          policy(ContentGenre::kDrama));
  ASSERT_EQ(combos.size(), 6u);
  EXPECT_EQ(combos[0].label(), "V1+A1");
  EXPECT_EQ(combos[1].label(), "V2+A1");
  EXPECT_EQ(combos[2].label(), "V3+A2");
  EXPECT_EQ(combos[3].label(), "V4+A2");
  EXPECT_EQ(combos[4].label(), "V5+A3");
  EXPECT_EQ(combos[5].label(), "V6+A3");
}

TEST(Curation, MusicSkewsAudioUp) {
  const auto drama = curate_combinations(youtube_drama_ladder(),
                                         policy(ContentGenre::kDrama));
  const auto music = curate_combinations(youtube_drama_ladder(),
                                         policy(ContentGenre::kMusic));
  const BitrateLadder ladder = youtube_drama_ladder();
  // At every video rung, music pairs an audio rung >= drama's.
  for (std::size_t i = 0; i < drama.size(); ++i) {
    EXPECT_GE(ladder.index_of(music[i].audio_id).value(),
              ladder.index_of(drama[i].audio_id).value())
        << i;
  }
  // And at the lowest video rung music already uses better-than-lowest audio.
  EXPECT_NE(music[0].audio_id, "A1");
}

TEST(Curation, ActionSkewsAudioDown) {
  const auto action = curate_combinations(youtube_drama_ladder(),
                                          policy(ContentGenre::kAction));
  // Action keeps low audio rungs longer: V3 still pairs A1.
  EXPECT_EQ(action[2].video_id, "V3");
  EXPECT_EQ(action[2].audio_id, "A1");
}

TEST(Curation, PhoneScreenDropsTallVideo) {
  const auto combos = curate_combinations(
      youtube_drama_ladder(),
      policy(ContentGenre::kDrama, DeviceProfile::Screen::kPhone));
  ASSERT_EQ(combos.size(), 5u);  // V6 (1080p) excluded
  for (const AvCombination& combo : combos) EXPECT_NE(combo.video_id, "V6");
}

TEST(Curation, MonoSoundDropsSurroundAudio) {
  const auto combos = curate_combinations(
      youtube_drama_ladder(),
      policy(ContentGenre::kMusic, DeviceProfile::Screen::kTv,
             DeviceProfile::Sound::kMono));
  // A2/A3 are 6-channel; only stereo A1 remains even for music.
  for (const AvCombination& combo : combos) EXPECT_EQ(combo.audio_id, "A1");
}

TEST(Curation, AudioRungMonotoneForEveryGenre) {
  const BitrateLadder ladder = youtube_drama_ladder();
  for (ContentGenre genre : {ContentGenre::kDrama, ContentGenre::kMusic,
                             ContentGenre::kAction, ContentGenre::kNews,
                             ContentGenre::kSports}) {
    const auto combos = curate_combinations(ladder, policy(genre));
    std::size_t previous = 0;
    for (const AvCombination& combo : combos) {
      const std::size_t rung = ladder.index_of(combo.audio_id).value();
      EXPECT_GE(rung, previous) << genre_name(genre);
      previous = rung;
    }
  }
}

TEST(Staircase, PathExpandsPairing) {
  const auto path = staircase_path({0, 0, 1, 1, 2, 2}, /*audio_first=*/true);
  // Exactly V + A - 1 = 6 + 3 - 1 = 8 steps.
  ASSERT_EQ(path.size(), 8u);
  EXPECT_EQ(path.front(), (std::pair<std::size_t, std::size_t>{0, 0}));
  EXPECT_EQ(path.back(), (std::pair<std::size_t, std::size_t>{5, 2}));
  for (std::size_t i = 1; i < path.size(); ++i) {
    EXPECT_EQ((path[i].first - path[i - 1].first) +
                  (path[i].second - path[i - 1].second),
              1u);
  }
}

TEST(Staircase, AudioFirstInsertsAudioUpgradeBeforeVideo) {
  const auto audio_first = staircase_path({0, 1}, true);
  ASSERT_EQ(audio_first.size(), 3u);
  EXPECT_EQ(audio_first[1], (std::pair<std::size_t, std::size_t>{0, 1}));
  const auto video_first = staircase_path({0, 1}, false);
  EXPECT_EQ(video_first[1], (std::pair<std::size_t, std::size_t>{1, 0}));
}

TEST(Staircase, DramaStaircaseMatchesExoPath) {
  // For the Table-1 ladder on a TV, the drama staircase coincides with
  // ExoPlayer's predetermined path (audio upgraded before video).
  const auto combos =
      curate_staircase(youtube_drama_ladder(), policy(ContentGenre::kDrama));
  ASSERT_EQ(combos.size(), 8u);
  const char* expected[] = {"V1+A1", "V2+A1", "V2+A2", "V3+A2",
                            "V4+A2", "V4+A3", "V5+A3", "V6+A3"};
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(combos[i].label(), expected[i]);
}

TEST(Staircase, ValidAndMonotone) {
  const auto combos =
      curate_staircase(youtube_drama_ladder(), policy(ContentGenre::kMusic));
  EXPECT_EQ(validate_combinations(youtube_drama_ladder(), combos), "");
}

TEST(Validate, AcceptsCuratedSubset) {
  EXPECT_EQ(validate_combinations(youtube_drama_ladder(),
                                  curated_subset(youtube_drama_ladder())),
            "");
}

TEST(Validate, RejectsEmptyList) {
  EXPECT_NE(validate_combinations(youtube_drama_ladder(), {}), "");
}

TEST(Validate, RejectsUnknownTrack) {
  auto combos = curated_subset(youtube_drama_ladder());
  combos[0].video_id = "V9";
  EXPECT_NE(validate_combinations(youtube_drama_ladder(), combos).find("unknown"),
            std::string::npos);
}

TEST(Validate, RejectsWrongBitrateSum) {
  auto combos = curated_subset(youtube_drama_ladder());
  combos[1].declared_kbps += 100;
  EXPECT_NE(validate_combinations(youtube_drama_ladder(), combos).find("declared"),
            std::string::npos);
}

TEST(Validate, RejectsQualityInversion) {
  const BitrateLadder ladder = youtube_drama_ladder();
  std::vector<AvCombination> combos = {make_combination(ladder, "V1", "A3"),
                                       make_combination(ladder, "V2", "A1")};
  EXPECT_NE(validate_combinations(ladder, combos).find("inverts"), std::string::npos);
}

TEST(DeviceProfile, CapsAreOrdered) {
  DeviceProfile phone;
  phone.screen = DeviceProfile::Screen::kPhone;
  DeviceProfile tv;
  tv.screen = DeviceProfile::Screen::kTv;
  EXPECT_LT(phone.max_video_height(), tv.max_video_height());
  DeviceProfile mono;
  mono.sound = DeviceProfile::Sound::kMono;
  DeviceProfile surround;
  surround.sound = DeviceProfile::Sound::kSurround;
  EXPECT_LT(mono.max_audio_channels(), surround.max_audio_channels());
}

class GenreSweep : public ::testing::TestWithParam<ContentGenre> {};

TEST_P(GenreSweep, CurationAlwaysValid) {
  const auto combos = curate_combinations(youtube_drama_ladder(), policy(GetParam()));
  EXPECT_EQ(validate_combinations(youtube_drama_ladder(), combos), "");
  const auto stairs = curate_staircase(youtube_drama_ladder(), policy(GetParam()));
  EXPECT_EQ(validate_combinations(youtube_drama_ladder(), stairs), "");
  EXPECT_GE(stairs.size(), combos.size());
}

INSTANTIATE_TEST_SUITE_P(Genres, GenreSweep,
                         ::testing::Values(ContentGenre::kDrama, ContentGenre::kMusic,
                                           ContentGenre::kAction, ContentGenre::kNews,
                                           ContentGenre::kSports));

}  // namespace
}  // namespace demuxabr
