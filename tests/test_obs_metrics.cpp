// Metrics-registry contract tests: thread-shard aggregation under the
// ThreadPool, exponential histogram bucketing, registry snapshots, reset
// semantics and the disabled-macro fast path.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <future>
#include <vector>

#include "util/thread_pool.h"

namespace demuxabr::obs {
namespace {

TEST(Counter, AggregatesAcrossPoolThreads) {
  Counter counter("test.pool_counter");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  {
    ThreadPool pool(kThreads);
    std::vector<std::future<void>> futures;
    for (int w = 0; w < kThreads; ++w) {
      futures.push_back(pool.submit([&counter] {
        for (std::uint64_t i = 0; i < kPerThread; ++i) counter.add(1);
      }));
    }
    for (auto& f : futures) f.get();
  }
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(Gauge, SetAndSetMax) {
  Gauge gauge("test.gauge");
  gauge.set(3.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 3.5);
  gauge.set_max(2.0);  // below: keeps the high-water mark
  EXPECT_DOUBLE_EQ(gauge.value(), 3.5);
  gauge.set_max(7.25);
  EXPECT_DOUBLE_EQ(gauge.value(), 7.25);
  gauge.reset();
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
}

TEST(HistogramTest, CountSumMinMax) {
  Histogram hist("test.hist", 1e-3, 20);
  hist.observe(0.002);
  hist.observe(0.5);
  hist.observe(0.004);
  const Histogram::Snapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_NEAR(snap.sum, 0.506, 1e-12);
  EXPECT_DOUBLE_EQ(snap.min, 0.002);
  EXPECT_DOUBLE_EQ(snap.max, 0.5);
  EXPECT_NEAR(snap.mean(), 0.506 / 3.0, 1e-12);
}

TEST(HistogramTest, ExponentialBucketBounds) {
  // first_bucket 1e-3, bucket i spans (first * 2^(i-1), first * 2^i].
  Histogram hist("test.hist_bounds", 1e-3, 8);
  const Histogram::Snapshot empty = hist.snapshot();
  ASSERT_EQ(empty.bounds.size(), 8u);
  EXPECT_NEAR(empty.bounds[0], 1e-3, 1e-15);
  EXPECT_NEAR(empty.bounds[1], 2e-3, 1e-15);
  EXPECT_NEAR(empty.bounds[6], 64e-3, 1e-12);
  EXPECT_TRUE(std::isinf(empty.bounds.back()));

  hist.observe(0.5e-3);   // <= first bound -> bucket 0
  hist.observe(1.0e-3);   // exactly the first bound -> bucket 0
  hist.observe(1.5e-3);   // (1e-3, 2e-3] -> bucket 1
  hist.observe(1.0);      // beyond the last finite bound -> overflow bucket
  const Histogram::Snapshot snap = hist.snapshot();
  EXPECT_EQ(snap.buckets[0], 2u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets.back(), 1u);
  // Conservative quantiles: cumulative counts are 2 / 3 / 4 across the
  // three occupied buckets, so p50 resolves to bucket 0's bound and p75 to
  // bucket 1's.
  EXPECT_NEAR(snap.quantile_bound(0.5), 1e-3, 1e-15);
  EXPECT_NEAR(snap.quantile_bound(0.75), 2e-3, 1e-15);
  EXPECT_TRUE(std::isinf(snap.quantile_bound(1.0)));
}

TEST(HistogramTest, AggregatesAcrossPoolThreads) {
  Histogram hist("test.hist_pool", 1e-6, 32);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  {
    ThreadPool pool(kThreads);
    std::vector<std::future<void>> futures;
    for (int w = 0; w < kThreads; ++w) {
      futures.push_back(pool.submit([&hist, w] {
        for (int i = 0; i < kPerThread; ++i) {
          hist.observe(1e-5 * static_cast<double>(w + 1));
        }
      }));
    }
    for (auto& f : futures) f.get();
  }
  const Histogram::Snapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_DOUBLE_EQ(snap.min, 1e-5);
  EXPECT_DOUBLE_EQ(snap.max, 8e-5);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t n : snap.buckets) bucket_total += n;
  EXPECT_EQ(bucket_total, snap.count);
}

TEST(Registry, GetOrCreateReturnsStableReferences) {
  MetricsRegistry& registry = MetricsRegistry::global();
  Counter& a = registry.counter("test.registry_counter");
  Counter& b = registry.counter("test.registry_counter");
  EXPECT_EQ(&a, &b);
  a.add(5);
  registry.reset();
  // Reset zeroes but never invalidates: the same object is still live.
  EXPECT_EQ(a.value(), 0u);
  a.add(2);
  EXPECT_EQ(registry.counter("test.registry_counter").value(), 2u);
  registry.reset();
}

TEST(Registry, SnapshotsContainInstrumentNames) {
  MetricsRegistry& registry = MetricsRegistry::global();
  registry.reset();
  registry.counter("test.snap_counter").add(3);
  registry.gauge("test.snap_gauge").set(1.5);
  registry.histogram("test.snap_hist").observe(0.25);

  const std::string text = registry.to_text();
  EXPECT_NE(text.find("test.snap_counter 3"), std::string::npos);
  EXPECT_NE(text.find("test.snap_gauge"), std::string::npos);
  EXPECT_NE(text.find("test.snap_hist"), std::string::npos);

  const std::string json = registry.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"test.snap_counter\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  registry.reset();
}

TEST(Registry, ScrapeJsonSchemaIsStable) {
  MetricsRegistry& registry = MetricsRegistry::global();
  registry.reset();
  registry.counter("test.scrape_b").add(1);
  registry.counter("test.scrape_a").add(2);
  registry.gauge("test.scrape_gauge").set(4.0);

  const std::string scrape = registry.scrape_json();
  // Versioned envelope wrapping the plain snapshot.
  EXPECT_EQ(scrape.rfind("{\"schema\":\"demuxabr.metrics.v1\",\"metrics\":", 0),
            0u);
  EXPECT_EQ(scrape.back(), '}');
  for (const char* key :
       {"\"counters\"", "\"gauges\"", "\"histograms\"", "\"test.scrape_a\"",
        "\"test.scrape_b\"", "\"test.scrape_gauge\""}) {
    EXPECT_NE(scrape.find(key), std::string::npos) << key;
  }
  // Key order is sorted (std::map) — stable across runs and platforms.
  EXPECT_LT(scrape.find("\"test.scrape_a\""), scrape.find("\"test.scrape_b\""));
  // The envelope adds nothing else: stripping it yields to_json() verbatim.
  const std::string prefix = "{\"schema\":\"demuxabr.metrics.v1\",\"metrics\":";
  EXPECT_EQ(scrape.substr(prefix.size(), scrape.size() - prefix.size() - 1),
            registry.to_json());
  registry.reset();
}

TEST(Macros, DisabledMacrosRecordNothing) {
  MetricsRegistry& registry = MetricsRegistry::global();
  registry.reset();
  ASSERT_FALSE(metrics_enabled());
  DMX_COUNT("test.macro_counter", 1);
  DMX_HIST("test.macro_hist", 0.5);
  // The disabled path must not even create the instruments.
  const std::string text = registry.to_text();
  EXPECT_EQ(text.find("test.macro_counter"), std::string::npos);
  EXPECT_EQ(text.find("test.macro_hist"), std::string::npos);
}

TEST(Macros, EnabledMacrosRecordAndCacheTheInstrument) {
  MetricsRegistry& registry = MetricsRegistry::global();
  registry.reset();
  {
    ScopedMetrics enable;
    for (int i = 0; i < 10; ++i) DMX_COUNT("test.macro_enabled", 2);
    DMX_GAUGE_MAX("test.macro_gauge", 4.0);
    DMX_GAUGE_MAX("test.macro_gauge", 3.0);
    DMX_HIST("test.macro_latency", 1e-4);
  }
  EXPECT_FALSE(metrics_enabled());
  EXPECT_EQ(registry.counter("test.macro_enabled").value(), 20u);
  EXPECT_DOUBLE_EQ(registry.gauge("test.macro_gauge").value(), 4.0);
  EXPECT_EQ(registry.histogram("test.macro_latency").snapshot().count, 1u);
  registry.reset();
}

}  // namespace
}  // namespace demuxabr::obs
