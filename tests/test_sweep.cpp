// ThreadPool unit tests (ordering, exception propagation, graceful shutdown
// with queued work) and the SweepRunner determinism contract: the same job
// matrix must yield byte-identical SessionLogs at 1, 2, and 8 threads, in
// job order, matching a plain serial loop.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/coordinated_player.h"
#include "core/muxed_player.h"
#include "experiments/scenarios.h"
#include "experiments/sweep.h"
#include "players/dashjs.h"
#include "players/exoplayer.h"
#include "players/shaka.h"
#include "util/thread_pool.h"

namespace demuxabr {
namespace {

namespace ex = demuxabr::experiments;

// --- ThreadPool ---

TEST(ThreadPool, ResultsComeBackThroughFuturesInSubmissionOrder) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, SingleThreadExecutesInSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::mutex mutex;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.submit([i, &order, &mutex] {
      std::lock_guard<std::mutex> lock(mutex);
      order.push_back(i);
    }));
  }
  for (auto& future : futures) future.get();
  ASSERT_EQ(order.size(), 32u);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  std::future<int> boom =
      pool.submit([]() -> int { throw std::runtime_error("task failed"); });
  std::future<int> fine = pool.submit([] { return 7; });
  EXPECT_THROW(boom.get(), std::runtime_error);
  EXPECT_EQ(fine.get(), 7);  // a thrown task must not poison the pool
}

TEST(ThreadPool, ShutdownDrainsQueuedWork) {
  std::atomic<int> executed{0};
  std::vector<std::future<void>> futures;
  ThreadPool pool(2);
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([&executed] {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      executed.fetch_add(1);
    }));
  }
  pool.shutdown();  // must run everything already queued, then join
  EXPECT_EQ(executed.load(), 64);
  for (auto& future : futures) future.get();  // none dropped, none broken
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
  ThreadPool pool(2);
  pool.shutdown();
  EXPECT_THROW(pool.submit([] { return 1; }), std::runtime_error);
}

TEST(ThreadPool, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);
  ThreadPool pool;  // default-sized pool must construct and run work
  EXPECT_GE(pool.thread_count(), 1u);
  EXPECT_EQ(pool.submit([] { return 3; }).get(), 3);
}

TEST(ThreadPool, ManyMoreThreadsThanCoresStillCompletes) {
  ThreadPool pool(8);
  std::atomic<int> executed{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&executed] { executed.fetch_add(1); }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(executed.load(), 200);
}

// --- SweepRunner ---

/// A small but diverse matrix: demuxed commercial models, the muxed
/// baseline and the coordinated family, over fixed and varying traces.
std::vector<ex::SweepJob> determinism_matrix() {
  std::vector<ex::SweepJob> jobs;
  auto add = [&jobs](const std::string& id, ex::ExperimentSetup setup,
                     ex::PlayerFactory factory) {
    ex::SweepJob job;
    job.id = id;
    job.player = id;
    job.trace = setup.id;
    job.setup = std::make_shared<const ex::ExperimentSetup>(std::move(setup));
    job.make_player = std::move(factory);
    jobs.push_back(std::move(job));
  };
  add("exo/fig2a", ex::fig2a_exo_dash_audio_b(),
      []() -> std::unique_ptr<PlayerAdapter> {
        return std::make_unique<ExoPlayerModel>();
      });
  add("shaka/fig4b", ex::fig4b_shaka_hall_varying(),
      []() -> std::unique_ptr<PlayerAdapter> {
        return std::make_unique<ShakaPlayerModel>();
      });
  add("dashjs/fig5", ex::fig5_dashjs_700(),
      []() -> std::unique_ptr<PlayerAdapter> {
        return std::make_unique<DashJsPlayerModel>();
      });
  add("muxed/fixed-700k", ex::plain_dash(BandwidthTrace::constant(700.0), "fixed-700k"),
      []() -> std::unique_ptr<PlayerAdapter> { return std::make_unique<MuxedPlayer>(); });
  add("coordinated/varying-600k",
      ex::bestpractice_dash(ex::varying_600_trace(), "varying-600k"),
      []() -> std::unique_ptr<PlayerAdapter> {
        return std::make_unique<CoordinatedPlayer>();
      });
  add("coordinated-mpc/varying-600k",
      ex::bestpractice_dash(ex::varying_600_trace(), "varying-600k"),
      []() -> std::unique_ptr<PlayerAdapter> {
        CoordinatedConfig config;
        config.algorithm = AbrAlgorithm::kMpc;
        return std::make_unique<CoordinatedPlayer>(config);
      });
  return jobs;
}

TEST(SweepRunner, SerialPathMatchesDirectLoop) {
  const std::vector<ex::SweepJob> jobs = determinism_matrix();

  // The historical serial loop, run by hand.
  std::vector<std::string> direct;
  for (const ex::SweepJob& job : jobs) {
    auto player = job.make_player();
    direct.push_back(ex::log_fingerprint(ex::run(*job.setup, *player)));
  }

  ex::SweepOptions options;
  options.threads = 1;
  const ex::SweepResult result = ex::SweepRunner(options).run(jobs);
  ASSERT_EQ(result.jobs.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(ex::log_fingerprint(result.jobs[i].log), direct[i])
        << "job " << jobs[i].id << " diverged from the serial loop";
  }
}

TEST(SweepRunner, ByteIdenticalLogsAcrossThreadCounts) {
  const std::vector<ex::SweepJob> jobs = determinism_matrix();

  ex::SweepOptions serial_options;
  serial_options.threads = 1;
  const ex::SweepResult serial = ex::SweepRunner(serial_options).run(jobs);
  ASSERT_EQ(serial.jobs.size(), jobs.size());

  for (const int threads : {2, 8}) {
    ex::SweepOptions options;
    options.threads = threads;
    const ex::SweepResult parallel = ex::SweepRunner(options).run(jobs);
    ASSERT_EQ(parallel.jobs.size(), jobs.size());
    EXPECT_EQ(parallel.summary.threads, threads);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      // Results in job order regardless of completion order…
      EXPECT_EQ(parallel.jobs[i].id, jobs[i].id);
      // …and each SessionLog byte-identical to the serial run: metrics,
      // records, selections and every time series.
      EXPECT_EQ(ex::log_fingerprint(parallel.jobs[i].log),
                ex::log_fingerprint(serial.jobs[i].log))
          << "job " << jobs[i].id << " not deterministic at threads=" << threads;
    }
  }
}

TEST(SweepRunner, SummaryAndPerJobMetricsArePopulated) {
  const std::vector<ex::SweepJob> jobs = determinism_matrix();
  ex::SweepOptions options;
  options.threads = 2;
  const ex::SweepResult result = ex::SweepRunner(options).run(jobs);

  EXPECT_EQ(result.summary.job_count, jobs.size());
  EXPECT_GT(result.summary.wall_s, 0.0);
  EXPECT_GT(result.summary.sessions_per_s, 0.0);
  EXPECT_GT(result.summary.simulated_per_wall, 0.0);

  double simulated = 0.0;
  for (const ex::SweepJobResult& job : result.jobs) {
    EXPECT_GE(job.wall_s, 0.0);
    EXPECT_TRUE(job.completed);
    EXPECT_GT(job.log.end_time_s, 0.0);
    simulated += job.log.end_time_s;
    // QoE was computed against the job's own setup.
    const QoeReport expected =
        compute_qoe(job.log, jobs[&job - result.jobs.data()].setup->content.ladder());
    EXPECT_DOUBLE_EQ(job.qoe.avg_video_kbps, expected.avg_video_kbps);
  }
  EXPECT_DOUBLE_EQ(result.summary.simulated_s, simulated);
}

TEST(SweepRunner, FingerprintDistinguishesDifferentLogs) {
  const std::vector<ex::SweepJob> jobs = determinism_matrix();
  ex::SweepOptions options;
  options.threads = 1;
  const ex::SweepResult result = ex::SweepRunner(options).run(jobs);
  // Different players / setups must not collide to one fingerprint.
  EXPECT_NE(ex::log_fingerprint(result.jobs[0].log),
            ex::log_fingerprint(result.jobs[1].log));
}

TEST(SweepRunner, ComparisonMatrixSharesSetupsAcrossJobs) {
  const std::vector<ex::SweepJob> jobs = ex::comparison_matrix();
  ASSERT_FALSE(jobs.empty());
  // 8 players x 8 traces.
  EXPECT_EQ(jobs.size(), ex::comparison_players().size() * ex::comparison_traces().size());
  // Players on the same setup kind share one ExperimentSetup object per
  // trace (no throwaway Content copies): exo-legacy and exoplayer both run
  // plain DASH.
  EXPECT_EQ(jobs[0].setup.get(), jobs[1].setup.get());
  // Shaka runs its own manifest.
  EXPECT_NE(jobs[0].setup.get(), jobs[2].setup.get());
}

}  // namespace
}  // namespace demuxabr
