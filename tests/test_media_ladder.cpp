#include "media/ladder.h"

#include <gtest/gtest.h>

namespace demuxabr {
namespace {

TEST(DramaLadder, MatchesTable1Exactly) {
  const BitrateLadder ladder = youtube_drama_ladder();
  ASSERT_EQ(ladder.audio_count(), 3u);
  ASSERT_EQ(ladder.video_count(), 6u);

  struct Expected {
    const char* id;
    double avg, peak, declared;
  };
  const Expected audio[] = {{"A1", 128, 134, 128}, {"A2", 196, 199, 196},
                            {"A3", 384, 391, 384}};
  const Expected video[] = {{"V1", 111, 119, 111},   {"V2", 246, 261, 246},
                            {"V3", 362, 641, 473},   {"V4", 734, 1190, 914},
                            {"V5", 1421, 2382, 1852}, {"V6", 2728, 4447, 3746}};
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(ladder.audio()[i].id, audio[i].id);
    EXPECT_DOUBLE_EQ(ladder.audio()[i].avg_kbps, audio[i].avg);
    EXPECT_DOUBLE_EQ(ladder.audio()[i].peak_kbps, audio[i].peak);
    EXPECT_DOUBLE_EQ(ladder.audio()[i].declared_kbps, audio[i].declared);
  }
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(ladder.video()[i].id, video[i].id);
    EXPECT_DOUBLE_EQ(ladder.video()[i].avg_kbps, video[i].avg);
    EXPECT_DOUBLE_EQ(ladder.video()[i].peak_kbps, video[i].peak);
    EXPECT_DOUBLE_EQ(ladder.video()[i].declared_kbps, video[i].declared);
  }
}

TEST(DramaLadder, Table1AudioMetadata) {
  const BitrateLadder ladder = youtube_drama_ladder();
  EXPECT_EQ(ladder.find("A1")->channels, 2);
  EXPECT_EQ(ladder.find("A1")->sample_rate_hz, 44100);
  EXPECT_EQ(ladder.find("A2")->channels, 6);
  EXPECT_EQ(ladder.find("A3")->sample_rate_hz, 48000);
}

TEST(DramaLadder, Table1VideoResolutions) {
  const BitrateLadder ladder = youtube_drama_ladder();
  EXPECT_EQ(ladder.find("V1")->height, 144);
  EXPECT_EQ(ladder.find("V3")->height, 360);
  EXPECT_EQ(ladder.find("V6")->height, 1080);
  EXPECT_EQ(ladder.find("V6")->width, 1920);
}

TEST(DramaLadder, IsValid) {
  std::string why;
  EXPECT_TRUE(youtube_drama_ladder().valid(&why)) << why;
}

TEST(AudioSets, DeclaredBitratesMatchSection32) {
  const auto b = audio_set_b();
  ASSERT_EQ(b.size(), 3u);
  EXPECT_DOUBLE_EQ(b[0].declared_kbps, 32);
  EXPECT_DOUBLE_EQ(b[1].declared_kbps, 64);
  EXPECT_DOUBLE_EQ(b[2].declared_kbps, 128);
  const auto c = audio_set_c();
  EXPECT_DOUBLE_EQ(c[0].declared_kbps, 196);
  EXPECT_DOUBLE_EQ(c[1].declared_kbps, 384);
  EXPECT_DOUBLE_EQ(c[2].declared_kbps, 768);
}

TEST(AudioSets, SwappedLaddersAreValid) {
  std::string why;
  EXPECT_TRUE(drama_with_audio_set_b().valid(&why)) << why;
  EXPECT_TRUE(drama_with_audio_set_c().valid(&why)) << why;
  EXPECT_EQ(drama_with_audio_set_b().video_count(), 6u);
  EXPECT_NE(drama_with_audio_set_b().find("B2"), nullptr);
  EXPECT_EQ(drama_with_audio_set_b().find("A2"), nullptr);
}

TEST(LadderLookup, FindAndIndexOf) {
  const BitrateLadder ladder = youtube_drama_ladder();
  EXPECT_EQ(ladder.find("V3")->id, "V3");
  EXPECT_EQ(ladder.find("missing"), nullptr);
  EXPECT_EQ(ladder.index_of("A2").value(), 1u);
  EXPECT_EQ(ladder.index_of("V6").value(), 5u);
  EXPECT_FALSE(ladder.index_of("nope").has_value());
}

TEST(LadderValidation, RejectsEmptySides) {
  BitrateLadder empty_audio({}, youtube_drama_ladder().video());
  std::string why;
  EXPECT_FALSE(empty_audio.valid(&why));
  EXPECT_NE(why.find(">=1"), std::string::npos);
}

TEST(LadderValidation, RejectsDuplicateIds) {
  auto audio = youtube_drama_ladder().audio();
  audio[1].id = "A1";
  // keep sorted-by-declared
  BitrateLadder ladder(audio, youtube_drama_ladder().video());
  std::string why;
  EXPECT_FALSE(ladder.valid(&why));
  EXPECT_NE(why.find("duplicate"), std::string::npos);
}

TEST(LadderValidation, RejectsAvgAbovePeak) {
  auto audio = youtube_drama_ladder().audio();
  audio[0].avg_kbps = audio[0].peak_kbps + 1;
  BitrateLadder ladder(audio, youtube_drama_ladder().video());
  EXPECT_FALSE(ladder.valid());
}

TEST(LadderValidation, RejectsUnsortedTracks) {
  auto video = youtube_drama_ladder().video();
  std::swap(video[0], video[1]);
  BitrateLadder ladder(youtube_drama_ladder().audio(), video);
  std::string why;
  EXPECT_FALSE(ladder.valid(&why));
  EXPECT_NE(why.find("sorted"), std::string::npos);
}

TEST(MakeLadder, GeneratesRequestedRungs) {
  const BitrateLadder ladder = make_ladder({64, 128}, {300, 800, 2000});
  EXPECT_EQ(ladder.audio_count(), 2u);
  EXPECT_EQ(ladder.video_count(), 3u);
  EXPECT_DOUBLE_EQ(ladder.video()[1].declared_kbps, 800);
  EXPECT_DOUBLE_EQ(ladder.video()[1].peak_kbps, 800 * 1.6);
  std::string why;
  EXPECT_TRUE(ladder.valid(&why)) << why;
}

}  // namespace
}  // namespace demuxabr
