// Logging contract tests: level filtering, env-var override, swappable
// thread-safe sinks, and line integrity under concurrent pool workers.
#include "util/logging.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <future>
#include <vector>

#include "util/thread_pool.h"

namespace demuxabr {
namespace {

TEST(LogLevelParse, AcceptsAllNamesCaseInsensitively) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::kTrace);
  EXPECT_EQ(parse_log_level("DEBUG"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("Info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("WARNING"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("none"), LogLevel::kOff);
}

TEST(LogLevelParse, RejectsUnknownNames) {
  EXPECT_FALSE(parse_log_level("").has_value());
  EXPECT_FALSE(parse_log_level("verbose").has_value());
  EXPECT_FALSE(parse_log_level("warn ").has_value());
}

TEST(LogLevelParse, EnvOverrideAppliesWhenValid) {
  const LogLevel before = log_level();
  ::setenv("DMX_LOG_LEVEL", "debug", 1);
  EXPECT_EQ(apply_env_log_level(), LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);

  // Invalid values are ignored and leave the level untouched.
  ::setenv("DMX_LOG_LEVEL", "bogus", 1);
  EXPECT_FALSE(apply_env_log_level().has_value());
  EXPECT_EQ(log_level(), LogLevel::kDebug);

  ::unsetenv("DMX_LOG_LEVEL");
  EXPECT_FALSE(apply_env_log_level().has_value());
  set_log_level(before);
}

TEST(LogSinkSwap, CaptureSinkReceivesFormattedLines) {
  CaptureLogSink capture;
  ScopedLogSink sink_guard(&capture);
  ScopedLogLevel level_guard(LogLevel::kInfo);

  DMX_INFO << "hello " << 42;
  ASSERT_EQ(capture.count(), 1u);
  EXPECT_TRUE(capture.contains("hello 42"));
  EXPECT_TRUE(capture.contains("[INFO]"));
  EXPECT_TRUE(capture.contains("test_util_logging.cpp"));
}

TEST(LogSinkSwap, LevelFilteringDropsBelowThreshold) {
  CaptureLogSink capture;
  ScopedLogSink sink_guard(&capture);
  ScopedLogLevel level_guard(LogLevel::kWarn);

  DMX_DEBUG << "dropped";
  DMX_INFO << "dropped too";
  DMX_WARN << "kept";
  DMX_ERROR << "also kept";
  EXPECT_EQ(capture.count(), 2u);
  EXPECT_FALSE(capture.contains("dropped"));
  EXPECT_TRUE(capture.contains("kept"));

  set_log_level(LogLevel::kOff);
  DMX_ERROR << "silenced";
  EXPECT_EQ(capture.count(), 2u);
}

TEST(LogSinkSwap, RestoresPreviousSinkOnScopeExit) {
  CaptureLogSink outer;
  ScopedLogSink outer_guard(&outer);
  {
    CaptureLogSink inner;
    ScopedLogSink inner_guard(&inner);
    EXPECT_EQ(log_sink(), &inner);
  }
  EXPECT_EQ(log_sink(), &outer);
}

TEST(LogSinkSwap, ConcurrentWritersKeepLinesIntact) {
  CaptureLogSink capture;
  ScopedLogSink sink_guard(&capture);
  ScopedLogLevel level_guard(LogLevel::kInfo);

  constexpr int kThreads = 4;
  constexpr int kLinesPerThread = 200;
  {
    ThreadPool pool(kThreads);
    std::vector<std::future<void>> futures;
    for (int w = 0; w < kThreads; ++w) {
      futures.push_back(pool.submit([w] {
        for (int i = 0; i < kLinesPerThread; ++i) {
          DMX_INFO << "worker=" << w << " line=" << i << " end";
        }
      }));
    }
    for (auto& f : futures) f.get();
  }

  const std::vector<std::string> lines = capture.lines();
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kThreads * kLinesPerThread));
  // Every line arrived whole: prefix, payload and terminator all present.
  for (const std::string& line : lines) {
    EXPECT_NE(line.find("[INFO]"), std::string::npos);
    EXPECT_NE(line.find("worker="), std::string::npos);
    EXPECT_NE(line.find(" end"), std::string::npos);
  }
}

}  // namespace
}  // namespace demuxabr
