// Parser robustness ("fuzz-lite"): deterministic mutations of valid manifest
// text must never crash or hang the parsers — they either parse to something
// or fail with an error. Also checks a set of specifically nasty inputs.
#include <gtest/gtest.h>

#include "manifest/builder.h"
#include "manifest/dash_mpd.h"
#include "manifest/hls_playlist.h"
#include "manifest/xml.h"
#include "media/content.h"
#include "util/rng.h"
#include "util/strings.h"

namespace demuxabr {
namespace {

std::string mutate(const std::string& text, Rng& rng, int edits) {
  std::string out = text;
  for (int e = 0; e < edits && !out.empty(); ++e) {
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(out.size()) - 1));
    switch (rng.uniform_int(0, 3)) {
      case 0:  // flip a character
        out[pos] = static_cast<char>(rng.uniform_int(32, 126));
        break;
      case 1:  // delete a span
        out.erase(pos, static_cast<std::size_t>(rng.uniform_int(1, 8)));
        break;
      case 2:  // duplicate a span
        out.insert(pos, out.substr(pos, static_cast<std::size_t>(rng.uniform_int(1, 8))));
        break;
      case 3:  // truncate
        out.resize(pos);
        break;
    }
  }
  return out;
}

class MutationSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MutationSweep, MpdParserNeverCrashes) {
  const Content content = make_drama_content();
  const std::string valid = serialize_mpd(build_dash_mpd(content));
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const std::string mutated = mutate(valid, rng, static_cast<int>(rng.uniform_int(1, 6)));
    const auto result = parse_mpd(mutated);  // must return, not crash
    if (result.ok()) {
      // If it parsed, the invariants of the model hold.
      EXPECT_FALSE(result->adaptation_sets.empty());
    } else {
      EXPECT_FALSE(result.error().empty());
    }
  }
}

TEST_P(MutationSweep, HlsMasterParserNeverCrashes) {
  const Content content = make_drama_content();
  const std::string valid = serialize_master(build_hall_master(content));
  Rng rng(GetParam() + 1000);
  for (int i = 0; i < 200; ++i) {
    const std::string mutated = mutate(valid, rng, static_cast<int>(rng.uniform_int(1, 6)));
    const auto result = parse_master(mutated);
    if (result.ok()) {
      EXPECT_FALSE(result->variants.empty());
      for (const HlsVariant& v : result->variants) EXPECT_GT(v.bandwidth_bps, 0);
    }
  }
}

TEST_P(MutationSweep, HlsMediaParserNeverCrashes) {
  const Content content = make_drama_content();
  HlsMediaOptions options;
  options.include_bitrate_tag = true;
  const std::string valid = serialize_media(build_hls_media(content, "V3", options));
  Rng rng(GetParam() + 2000);
  for (int i = 0; i < 200; ++i) {
    const std::string mutated = mutate(valid, rng, static_cast<int>(rng.uniform_int(1, 6)));
    const auto result = parse_media(mutated);
    if (result.ok()) {
      EXPECT_FALSE(result->segments.empty());
      for (const HlsSegment& s : result->segments) EXPECT_GT(s.duration_s, 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationSweep, ::testing::Values(1u, 7u, 42u, 1337u));

TEST(NastyInputs, EmptyAndWhitespace) {
  EXPECT_FALSE(parse_mpd("").ok());
  EXPECT_FALSE(parse_mpd("   \n\t ").ok());
  EXPECT_FALSE(parse_master("").ok());
  EXPECT_FALSE(parse_media("\n\n\n").ok());
}

TEST(NastyInputs, DeeplyNestedXml) {
  std::string xml_text = "<?xml version=\"1.0\"?>";
  for (int i = 0; i < 2000; ++i) xml_text += "<a>";
  for (int i = 0; i < 2000; ++i) xml_text += "</a>";
  // Recursion depth: must return (ok or error), not smash the stack.
  const auto result = xml::parse(xml_text);
  (void)result;
  SUCCEED();
}

TEST(NastyInputs, HugeAttributeValue) {
  std::string xml_text = "<MPD mediaPresentationDuration=\"PT1M0S\" junk=\"";
  xml_text.append(1 << 20, 'x');
  xml_text += "\"><Period><AdaptationSet contentType=\"video\">"
              "<Representation id=\"V1\" bandwidth=\"100\"/>"
              "</AdaptationSet></Period></MPD>";
  const auto result = parse_mpd(xml_text);
  EXPECT_TRUE(result.ok()) << (result.ok() ? "" : result.error());
}

TEST(NastyInputs, NegativeAndOverflowingNumbers) {
  EXPECT_FALSE(parse_master("#EXTM3U\n#EXT-X-STREAM-INF:BANDWIDTH=-5\nv.m3u8\n").ok());
  EXPECT_FALSE(parse_master("#EXTM3U\n#EXT-X-STREAM-INF:BANDWIDTH=999999999999999999999"
                            "\nv.m3u8\n")
                   .ok());
  EXPECT_FALSE(parse_media("#EXTM3U\n#EXTINF:-4.0,\ns.ts\n").ok());
}

TEST(NastyInputs, AttributeListEdgeCases) {
  // Unterminated quote, trailing comma, '=' without key.
  const auto a = parse_attribute_list("KEY=\"unterminated");
  EXPECT_FALSE(a.empty());
  const auto b = parse_attribute_list("A=1,,B=2,");
  EXPECT_GE(b.size(), 2u);
  const auto c = parse_attribute_list("=value");
  (void)c;
  SUCCEED();
}

TEST(NastyInputs, MixedLineEndings) {
  const Content content = make_drama_content();
  std::string text = serialize_master(build_hsub_master(content));
  // Convert to CRLF.
  std::string crlf;
  for (char ch : text) {
    if (ch == '\n') crlf += '\r';
    crlf += ch;
  }
  const auto result = parse_master(crlf);
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_EQ(result->variants.size(), 6u);
}

}  // namespace
}  // namespace demuxabr
