#include "util/time_series.h"

#include <gtest/gtest.h>

namespace demuxabr {
namespace {

TimeSeries make_series() {
  TimeSeries s;
  s.add(0.0, 10.0);
  s.add(5.0, 20.0);
  s.add(10.0, 5.0);
  return s;
}

TEST(TimeSeries, ValueAtUsesStepInterpolation) {
  const TimeSeries s = make_series();
  EXPECT_DOUBLE_EQ(s.value_at(0.0), 10.0);
  EXPECT_DOUBLE_EQ(s.value_at(4.999), 10.0);
  EXPECT_DOUBLE_EQ(s.value_at(5.0), 20.0);
  EXPECT_DOUBLE_EQ(s.value_at(100.0), 5.0);
}

TEST(TimeSeries, ValueBeforeFirstSampleUsesFallback) {
  const TimeSeries s = make_series();
  EXPECT_DOUBLE_EQ(s.value_at(-1.0, 42.0), 42.0);
  TimeSeries empty;
  EXPECT_DOUBLE_EQ(empty.value_at(3.0, 7.0), 7.0);
}

TEST(TimeSeries, TimeWeightedMean) {
  const TimeSeries s = make_series();
  // [0,5): 10, [5,10): 20 -> mean over [0,10) = 15.
  EXPECT_NEAR(s.time_weighted_mean(0.0, 10.0), 15.0, 1e-12);
  // [5,15): 20 for 5s, 5 for 5s -> 12.5.
  EXPECT_NEAR(s.time_weighted_mean(5.0, 15.0), 12.5, 1e-12);
}

TEST(TimeSeries, MinMaxAndChanges) {
  const TimeSeries s = make_series();
  EXPECT_DOUBLE_EQ(s.min_value(), 5.0);
  EXPECT_DOUBLE_EQ(s.max_value(), 20.0);
  EXPECT_EQ(s.change_count(), 2u);
}

TEST(TimeSeries, ChangeCountIgnoresRepeats) {
  TimeSeries s;
  s.add(0.0, 1.0);
  s.add(1.0, 1.0);
  s.add(2.0, 2.0);
  s.add(3.0, 2.0);
  EXPECT_EQ(s.change_count(), 1u);
}

TEST(TimeSeries, ResampleOntoGrid) {
  const TimeSeries s = make_series();
  const TimeSeries grid = s.resample(0.0, 10.0, 2.5);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_DOUBLE_EQ(grid.points()[0].value, 10.0);
  EXPECT_DOUBLE_EQ(grid.points()[2].value, 20.0);  // t = 5.0
  EXPECT_DOUBLE_EQ(grid.points()[4].value, 5.0);   // t = 10.0
}

TEST(TimeSeries, CsvRendering) {
  TimeSeries s;
  s.add(0.0, 1.0);
  s.add(1.5, 2.25);
  const std::string csv = s.to_csv("level");
  EXPECT_EQ(csv, "t,level\n0.000,1.000\n1.500,2.250\n");
}

TEST(TimeSeries, EmptyBehaviour) {
  TimeSeries s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.min_value(), 0.0);
  EXPECT_DOUBLE_EQ(s.max_value(), 0.0);
  EXPECT_EQ(s.change_count(), 0u);
  EXPECT_DOUBLE_EQ(s.time_weighted_mean(0.0, 10.0), 0.0);
}

}  // namespace
}  // namespace demuxabr
