#include "manifest/view.h"

#include <gtest/gtest.h>

#include "manifest/builder.h"
#include "media/content.h"

namespace demuxabr {
namespace {

class ViewTest : public ::testing::Test {
 protected:
  Content content_ = make_drama_content();
};

TEST_F(ViewTest, DashViewKnowsPerTrackBitrates) {
  const ManifestView view = view_from_mpd(build_dash_mpd(content_));
  EXPECT_EQ(view.protocol, Protocol::kDash);
  EXPECT_FALSE(view.has_combination_list);
  ASSERT_EQ(view.video_tracks.size(), 6u);
  ASSERT_EQ(view.audio_tracks.size(), 3u);
  for (const auto* tracks : {&view.video_tracks, &view.audio_tracks}) {
    for (const TrackView& t : *tracks) EXPECT_TRUE(t.bitrate_known) << t.id;
  }
  EXPECT_DOUBLE_EQ(view.find_track("V3")->declared_kbps, 473.0);
  EXPECT_DOUBLE_EQ(view.find_track("A2")->declared_kbps, 196.0);
}

TEST_F(ViewTest, DashViewDerivesTimeline) {
  const ManifestView view = view_from_mpd(build_dash_mpd(content_));
  EXPECT_EQ(view.total_chunks, 75);
  EXPECT_NEAR(view.chunk_duration_s, 4.0, 1e-9);
}

TEST_F(ViewTest, EnhancedDashViewCarriesCombinations) {
  DashBuildOptions options;
  options.allowed_combinations = curated_subset(content_.ladder());
  const ManifestView view = view_from_mpd(build_dash_mpd(content_, options));
  EXPECT_TRUE(view.has_combination_list);
  ASSERT_EQ(view.combos.size(), 6u);
  EXPECT_EQ(view.combos[2].video_id, "V3");
  EXPECT_EQ(view.combos[2].audio_id, "A2");
  EXPECT_DOUBLE_EQ(view.combos[2].bandwidth_kbps, 473.0 + 196.0);
}

TEST_F(ViewTest, HlsTopLevelViewHidesAudioBitrates) {
  // The §3.2 root cause: HLS top-level manifests carry no per-track audio
  // bitrate, so a player cannot rank the renditions.
  const ManifestView view = view_from_hls(build_hsub_master(content_), nullptr);
  EXPECT_EQ(view.protocol, Protocol::kHls);
  EXPECT_TRUE(view.has_combination_list);
  for (const TrackView& t : view.audio_tracks) {
    EXPECT_FALSE(t.bitrate_known) << t.id;
  }
  for (const TrackView& t : view.video_tracks) {
    EXPECT_FALSE(t.bitrate_known) << t.id;
  }
}

TEST_F(ViewTest, HlsViewCombosMatchVariants) {
  const ManifestView view = view_from_hls(build_hsub_master(content_), nullptr);
  ASSERT_EQ(view.combos.size(), 6u);
  EXPECT_EQ(view.combos[0].label(), "V1+A1");
  EXPECT_EQ(view.combos[2].label(), "V3+A2");
  EXPECT_DOUBLE_EQ(view.combos[2].bandwidth_kbps, 840.0);
  EXPECT_DOUBLE_EQ(view.combos[2].avg_bandwidth_kbps, 558.0);
}

TEST_F(ViewTest, HlsViewPreservesRenditionOrder) {
  const ManifestView view =
      view_from_hls(build_hsub_master(content_, {"A3", "A2", "A1"}), nullptr);
  ASSERT_EQ(view.audio_tracks.size(), 3u);
  EXPECT_EQ(view.audio_tracks[0].id, "A3");  // ExoPlayer's pinned choice
  EXPECT_EQ(view.audio_tracks[2].id, "A1");
}

TEST_F(ViewTest, MediaPlaylistsUpgradeHlsView) {
  // §4.1: reading second-level playlists reveals per-track bitrates.
  HlsMediaOptions options;
  options.include_bitrate_tag = true;
  const auto playlists = build_all_media_playlists(content_, options);
  const ManifestView view = view_from_hls(build_hsub_master(content_), &playlists);
  for (const TrackView& t : view.audio_tracks) {
    EXPECT_TRUE(t.bitrate_known) << t.id;
  }
  EXPECT_NEAR(view.find_track("A3")->declared_kbps, 391.0, 5.0);  // peak
  EXPECT_NEAR(view.find_track("A3")->avg_kbps, 384.0, 5.0);
  EXPECT_EQ(view.total_chunks, 75);
  EXPECT_NEAR(view.chunk_duration_s, 4.0, 1e-9);
}

TEST_F(ViewTest, ByteRangePlaylistsAlsoUpgradeView) {
  HlsMediaOptions options;
  options.packaging = PackagingMode::kSingleFileByteRange;
  const auto playlists = build_all_media_playlists(content_, options);
  const ManifestView view = view_from_hls(build_hall_master(content_), &playlists);
  EXPECT_TRUE(view.find_track("V5")->bitrate_known);
  EXPECT_NEAR(view.find_track("V5")->avg_kbps, 1421.0, 1421.0 * 0.02);
}

TEST_F(ViewTest, PairBandwidthFromComboList) {
  const ManifestView view = view_from_hls(build_hsub_master(content_), nullptr);
  const auto bandwidth = view.pair_bandwidth_kbps("V3", "A2");
  ASSERT_TRUE(bandwidth.has_value());
  EXPECT_DOUBLE_EQ(*bandwidth, 840.0);
  // Unlisted pair with unknown track bitrates -> nullopt.
  EXPECT_FALSE(view.pair_bandwidth_kbps("V3", "A3").has_value());
}

TEST_F(ViewTest, PairBandwidthFromTrackSumsInDash) {
  const ManifestView view = view_from_mpd(build_dash_mpd(content_));
  const auto bandwidth = view.pair_bandwidth_kbps("V3", "A3");
  ASSERT_TRUE(bandwidth.has_value());
  EXPECT_DOUBLE_EQ(*bandwidth, 473.0 + 384.0);
}

TEST_F(ViewTest, PairListed) {
  const ManifestView view = view_from_hls(build_hsub_master(content_), nullptr);
  EXPECT_TRUE(view.pair_listed("V1", "A1"));
  EXPECT_FALSE(view.pair_listed("V1", "A3"));
}

TEST_F(ViewTest, CombosSortedAscending) {
  const ManifestView view = view_from_hls(build_hall_master(content_), nullptr);
  const auto sorted = view.combos_sorted();
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    EXPECT_LE(sorted[i - 1].bandwidth_kbps, sorted[i].bandwidth_kbps);
  }
}

TEST_F(ViewTest, FindTrackMissingReturnsNull) {
  const ManifestView view = view_from_mpd(build_dash_mpd(content_));
  EXPECT_EQ(view.find_track("Z9"), nullptr);
}

TEST_F(ViewTest, HlsViewVideoResolutionFromVariants) {
  const ManifestView view = view_from_hls(build_hsub_master(content_), nullptr);
  EXPECT_EQ(view.find_track("V6")->height, 1080);
  EXPECT_EQ(view.find_track("V6")->width, 1920);
}

}  // namespace
}  // namespace demuxabr
