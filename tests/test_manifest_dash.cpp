#include "manifest/dash_mpd.h"

#include <gtest/gtest.h>

#include "manifest/builder.h"
#include "media/content.h"

namespace demuxabr {
namespace {

TEST(Iso8601, FormatsDurations) {
  EXPECT_EQ(to_iso8601_duration(300.0), "PT5M0.000S");
  EXPECT_EQ(to_iso8601_duration(12.5), "PT12.500S");
}

TEST(Iso8601, ParsesDurations) {
  EXPECT_DOUBLE_EQ(parse_iso8601_duration("PT5M0.000S").value(), 300.0);
  EXPECT_DOUBLE_EQ(parse_iso8601_duration("PT1H2M3S").value(), 3723.0);
  EXPECT_DOUBLE_EQ(parse_iso8601_duration("PT0.5S").value(), 0.5);
}

TEST(Iso8601, RejectsMalformed) {
  EXPECT_FALSE(parse_iso8601_duration("5M").has_value());
  EXPECT_FALSE(parse_iso8601_duration("PT5X").has_value());
  EXPECT_FALSE(parse_iso8601_duration("PT5").has_value());
}

TEST(Iso8601, RoundTripsArbitraryDurations) {
  for (double seconds : {0.25, 4.0, 59.999, 61.0, 300.0, 3600.0}) {
    const auto parsed = parse_iso8601_duration(to_iso8601_duration(seconds));
    ASSERT_TRUE(parsed.has_value()) << seconds;
    EXPECT_NEAR(*parsed, seconds, 0.001);
  }
}

class DashMpdTest : public ::testing::Test {
 protected:
  Content content_ = make_drama_content();
};

TEST_F(DashMpdTest, BuilderCreatesTwoAdaptationSets) {
  const MpdDocument mpd = build_dash_mpd(content_);
  ASSERT_EQ(mpd.adaptation_sets.size(), 2u);
  const MpdAdaptationSet* video = mpd.adaptation_set("video");
  const MpdAdaptationSet* audio = mpd.adaptation_set("audio");
  ASSERT_NE(video, nullptr);
  ASSERT_NE(audio, nullptr);
  EXPECT_EQ(video->representations.size(), 6u);
  EXPECT_EQ(audio->representations.size(), 3u);
}

TEST_F(DashMpdTest, DeclaredBandwidthMatchesTable1) {
  const MpdDocument mpd = build_dash_mpd(content_);
  const MpdAdaptationSet* video = mpd.adaptation_set("video");
  EXPECT_EQ(video->representations[2].id, "V3");
  EXPECT_EQ(video->representations[2].bandwidth_bps, 473000);
  const MpdAdaptationSet* audio = mpd.adaptation_set("audio");
  EXPECT_EQ(audio->representations[2].bandwidth_bps, 384000);
}

TEST_F(DashMpdTest, SerializeParseRoundTrip) {
  const MpdDocument original = build_dash_mpd(content_);
  const auto reparsed = parse_mpd(serialize_mpd(original));
  ASSERT_TRUE(reparsed.ok()) << reparsed.error();
  EXPECT_NEAR(reparsed->media_duration_s, 300.0, 0.01);
  ASSERT_EQ(reparsed->adaptation_sets.size(), 2u);
  const MpdAdaptationSet* video = reparsed->adaptation_set("video");
  ASSERT_NE(video, nullptr);
  ASSERT_EQ(video->representations.size(), 6u);
  EXPECT_EQ(video->representations[5].id, "V6");
  EXPECT_EQ(video->representations[5].bandwidth_bps, 3746000);
  EXPECT_EQ(video->representations[5].width, 1920);
  EXPECT_NEAR(video->segment_duration_s, 4.0, 1e-9);
}

TEST_F(DashMpdTest, AudioMetadataRoundTrips) {
  const auto reparsed = parse_mpd(serialize_mpd(build_dash_mpd(content_)));
  ASSERT_TRUE(reparsed.ok());
  const MpdAdaptationSet* audio = reparsed->adaptation_set("audio");
  EXPECT_EQ(audio->representations[1].audio_sampling_rate, 48000);
  EXPECT_EQ(audio->representations[1].audio_channels, 6);
}

TEST_F(DashMpdTest, AllowedCombinationsExtensionRoundTrips) {
  DashBuildOptions options;
  options.allowed_combinations = curated_subset(content_.ladder());
  const auto reparsed = parse_mpd(serialize_mpd(build_dash_mpd(content_, options)));
  ASSERT_TRUE(reparsed.ok());
  ASSERT_EQ(reparsed->allowed_combinations.size(), 6u);
  EXPECT_EQ(reparsed->allowed_combinations[0], "V1+A1");
  EXPECT_EQ(reparsed->allowed_combinations[2], "V3+A2");
}

TEST_F(DashMpdTest, PlainMpdHasNoCombinations) {
  const auto reparsed = parse_mpd(serialize_mpd(build_dash_mpd(content_)));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_TRUE(reparsed->allowed_combinations.empty());
}

TEST(DashMpdParser, RejectsNonMpdRoot) {
  EXPECT_FALSE(parse_mpd("<NotMPD/>").ok());
}

TEST(DashMpdParser, RejectsMissingPeriod) {
  EXPECT_FALSE(parse_mpd("<MPD mediaPresentationDuration=\"PT5M0S\"/>").ok());
}

TEST(DashMpdParser, RejectsRepresentationWithoutBandwidth) {
  const char* xml_text =
      "<MPD mediaPresentationDuration=\"PT1M0S\"><Period>"
      "<AdaptationSet contentType=\"video\"><Representation id=\"V1\"/>"
      "</AdaptationSet></Period></MPD>";
  const auto parsed = parse_mpd(xml_text);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().find("bandwidth"), std::string::npos);
}

TEST(DashMpdParser, RejectsEmptyAdaptationSet) {
  const char* xml_text =
      "<MPD mediaPresentationDuration=\"PT1M0S\"><Period>"
      "<AdaptationSet contentType=\"video\"/></Period></MPD>";
  EXPECT_FALSE(parse_mpd(xml_text).ok());
}

TEST(DashMpdParser, ContentTypeInferredFromMimeType) {
  const char* xml_text =
      "<MPD mediaPresentationDuration=\"PT1M0S\"><Period>"
      "<AdaptationSet mimeType=\"audio/mp4\">"
      "<Representation id=\"A1\" bandwidth=\"128000\"/>"
      "</AdaptationSet></Period></MPD>";
  const auto parsed = parse_mpd(xml_text);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed->adaptation_sets[0].content_type, "audio");
}

}  // namespace
}  // namespace demuxabr
