#include "core/mpc_abr.h"

#include <gtest/gtest.h>

#include "core/compliance.h"
#include "core/coordinated_player.h"
#include "experiments/scenarios.h"
#include "manifest/builder.h"
#include "media/content.h"

namespace demuxabr {
namespace {

namespace ex = demuxabr::experiments;

std::vector<ComboView> drama_staircase() {
  const Content content = make_drama_content();
  CurationPolicy policy;
  policy.device.screen = DeviceProfile::Screen::kTv;
  DashBuildOptions options;
  options.allowed_combinations = curate_staircase(content.ladder(), policy);
  return view_from_mpd(build_dash_mpd(content, options)).combos_sorted();
}

TEST(MpcAbr, NoEstimateMeansLowestCombination) {
  MpcJointAbr mpc(drama_staircase());
  EXPECT_EQ(mpc.decide(0.0, 0.0, 4.0), 0u);
}

TEST(MpcAbr, LowBufferForcesConservativeChoice) {
  MpcJointAbr mpc(drama_staircase());
  const std::size_t low_buffer = mpc.decide(900.0, 1.0, 4.0);
  MpcJointAbr mpc2(drama_staircase());
  const std::size_t high_buffer = mpc2.decide(900.0, 30.0, 4.0);
  EXPECT_LE(low_buffer, high_buffer);
  // At 1 s of buffer, anything that downloads slower than real time would
  // stall immediately; the plan must stay sustainable.
  EXPECT_LE(mpc.requirement_kbps(low_buffer), 0.85 * 900.0 + 1e-9);
}

TEST(MpcAbr, HighBufferUnlocksHigherQuality) {
  MpcJointAbr mpc(drama_staircase());
  const std::size_t index = mpc.decide(900.0, 30.0, 4.0);
  // With 30 s of cushion the plan can spend buffer on quality beyond the
  // strictly sustainable rung.
  EXPECT_GE(mpc.requirement_kbps(index), 600.0);
}

TEST(MpcAbr, RebufferPenaltyPreventsOverreach) {
  MpcConfig config;
  config.rebuffer_penalty_kbps = 1e9;  // effectively forbid predicted stalls
  MpcJointAbr mpc(drama_staircase(), config);
  const std::size_t index = mpc.decide(900.0, 4.0, 4.0);
  // Per-chunk download time must not exceed the chunk duration by more than
  // the buffer can absorb over the horizon.
  const double per_chunk_s = mpc.requirement_kbps(index) * 4.0 / (0.85 * 900.0);
  EXPECT_LE((per_chunk_s - 4.0) * config.horizon_chunks, 4.0 + 1e-9);
}

TEST(MpcAbr, PlanScorePenalizesSwitches) {
  MpcConfig config;
  config.switch_penalty = 10.0;
  MpcJointAbr mpc(drama_staircase(), config);
  const double stay = mpc.plan_score(2, 900.0, 20.0, 4.0, /*previous=*/2);
  const double move = mpc.plan_score(2, 900.0, 20.0, 4.0, /*previous=*/0);
  EXPECT_GT(stay, move);
}

TEST(MpcAbr, HorizonScalesQualityTerm) {
  MpcConfig short_horizon;
  short_horizon.horizon_chunks = 1;
  MpcConfig long_horizon;
  long_horizon.horizon_chunks = 10;
  MpcJointAbr a(drama_staircase(), short_horizon);
  MpcJointAbr b(drama_staircase(), long_horizon);
  EXPECT_LT(a.plan_score(3, 900.0, 20.0, 4.0, 3), b.plan_score(3, 900.0, 20.0, 4.0, 3));
}

TEST(MpcCoordinated, SessionCompletesWithoutStalls) {
  auto setup = ex::bestpractice_dash(BandwidthTrace::constant(900.0), "mpc");
  CoordinatedConfig config;
  config.algorithm = AbrAlgorithm::kMpc;
  CoordinatedPlayer player(config);
  EXPECT_EQ(player.name(), "coordinated-mpc");
  const SessionLog log = ex::run(setup, player);
  EXPECT_TRUE(log.completed);
  EXPECT_EQ(log.stall_count(), 0u);
}

TEST(MpcCoordinated, StaysOnManifest) {
  for (const char* trace_name : {"a", "b"}) {
    auto setup = ex::bestpractice_dash(
        trace_name[0] == 'a' ? ex::varying_600_trace() : BandwidthTrace::constant(1500.0),
        "mpc");
    CoordinatedConfig config;
    config.algorithm = AbrAlgorithm::kMpc;
    CoordinatedPlayer player(config);
    const SessionLog log = ex::run(setup, player);
    EXPECT_TRUE(check_compliance(log, setup.allowed).compliant()) << trace_name;
  }
}

TEST(MpcCoordinated, ReachesHigherQualityThanHysteresisOnSteadyLink) {
  auto setup = ex::bestpractice_dash(BandwidthTrace::constant(900.0), "mpc");
  CoordinatedConfig mpc_config;
  mpc_config.algorithm = AbrAlgorithm::kMpc;
  CoordinatedPlayer mpc_player(mpc_config);
  const QoeReport mpc_qoe =
      compute_qoe(ex::run(setup, mpc_player), setup.content.ladder());

  CoordinatedPlayer rate_player;
  const QoeReport rate_qoe =
      compute_qoe(ex::run(setup, rate_player), setup.content.ladder());

  EXPECT_GE(mpc_qoe.avg_video_kbps + mpc_qoe.avg_audio_kbps,
            rate_qoe.avg_video_kbps + rate_qoe.avg_audio_kbps);
}

TEST(MpcCoordinated, SurvivesBurstyTraceWithoutShakaStyleCollapse) {
  auto setup = ex::bestpractice_dash(ex::shaka_varying_600_trace(), "mpc");
  CoordinatedConfig config;
  config.algorithm = AbrAlgorithm::kMpc;
  CoordinatedPlayer player(config);
  const SessionLog log = ex::run(setup, player);
  EXPECT_TRUE(log.completed);
  EXPECT_LT(log.total_stall_s(), 20.0);  // Shaka logs 100+ s here
}

class MpcEstimateSweep : public ::testing::TestWithParam<double> {};

TEST_P(MpcEstimateSweep, DecisionIsMonotoneInEstimate) {
  // Higher estimates never pick a lower combination (same buffer state).
  std::size_t previous = 0;
  for (double estimate : {200.0, 400.0, 600.0, 900.0, 1500.0, 3000.0}) {
    MpcJointAbr mpc(drama_staircase());
    const std::size_t index = mpc.decide(estimate, GetParam(), 4.0);
    EXPECT_GE(index, previous) << estimate;
    previous = index;
  }
}

INSTANTIATE_TEST_SUITE_P(Buffers, MpcEstimateSweep,
                         ::testing::Values(2.0, 8.0, 15.0, 30.0));

}  // namespace
}  // namespace demuxabr
