#include "media/vbr_model.h"

#include <gtest/gtest.h>

#include "media/ladder.h"

namespace demuxabr {
namespace {

TEST(VbrModel, MeanMatchesTrackAverage) {
  const BitrateLadder ladder = youtube_drama_ladder();
  for (const TrackInfo& track : ladder.video()) {
    const auto chunks = generate_chunks(track, 75, 4.0);
    const ChunkStats stats = measure_chunks(chunks);
    EXPECT_NEAR(stats.avg_kbps, track.avg_kbps, track.avg_kbps * 0.005) << track.id;
  }
}

TEST(VbrModel, PeakMatchesTrackPeak) {
  const BitrateLadder ladder = youtube_drama_ladder();
  for (const TrackInfo& track : ladder.video()) {
    const auto chunks = generate_chunks(track, 75, 4.0);
    const ChunkStats stats = measure_chunks(chunks);
    EXPECT_NEAR(stats.peak_kbps, track.peak_kbps, track.peak_kbps * 0.005) << track.id;
  }
}

TEST(VbrModel, NoChunkExceedsPeak) {
  const BitrateLadder ladder = youtube_drama_ladder();
  for (const auto* list : {&ladder.audio(), &ladder.video()}) {
    for (const TrackInfo& track : *list) {
      for (const ChunkInfo& chunk : generate_chunks(track, 75, 4.0)) {
        EXPECT_LE(chunk.bitrate_kbps(), track.peak_kbps * 1.001) << track.id;
      }
    }
  }
}

TEST(VbrModel, NoChunkBelowFloor) {
  const TrackInfo track = youtube_drama_ladder().video()[3];  // V4, bursty
  VbrModelParams params;
  for (const ChunkInfo& chunk : generate_chunks(track, 200, 4.0, params)) {
    EXPECT_GE(chunk.bitrate_kbps(), track.avg_kbps * params.min_ratio * 0.999);
  }
}

TEST(VbrModel, AudioIsNearConstantBitrate) {
  const TrackInfo track = youtube_drama_ladder().audio()[0];
  const auto chunks = generate_chunks(track, 75, 4.0);
  const ChunkStats stats = measure_chunks(chunks);
  // Audio sigma is tiny: min within a few percent of avg.
  EXPECT_GT(stats.min_kbps, track.avg_kbps * 0.9);
}

TEST(VbrModel, DeterministicForSameSeed) {
  const TrackInfo track = youtube_drama_ladder().video()[2];
  const auto a = generate_chunks(track, 75, 4.0);
  const auto b = generate_chunks(track, 75, 4.0);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].size_bytes, b[i].size_bytes);
  }
}

TEST(VbrModel, DifferentSeedsProduceDifferentChunks) {
  const TrackInfo track = youtube_drama_ladder().video()[2];
  VbrModelParams p1;
  VbrModelParams p2;
  p2.seed = p1.seed + 1;
  const auto a = generate_chunks(track, 75, 4.0, p1);
  const auto b = generate_chunks(track, 75, 4.0, p2);
  int differing = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].size_bytes != b[i].size_bytes) ++differing;
  }
  EXPECT_GT(differing, 50);
}

TEST(VbrModel, TracksAreDecorrelated) {
  const BitrateLadder ladder = youtube_drama_ladder();
  const auto v3 = generate_chunks(*ladder.find("V3"), 75, 4.0);
  const auto v4 = generate_chunks(*ladder.find("V4"), 75, 4.0);
  // If tracks shared a random stream, per-chunk ratios would be constant.
  int distinct_ratios = 0;
  const double first_ratio =
      static_cast<double>(v4[0].size_bytes) / static_cast<double>(v3[0].size_bytes);
  for (std::size_t i = 1; i < v3.size(); ++i) {
    const double r =
        static_cast<double>(v4[i].size_bytes) / static_cast<double>(v3[i].size_bytes);
    if (std::abs(r - first_ratio) > 0.05) ++distinct_ratios;
  }
  EXPECT_GT(distinct_ratios, 30);
}

TEST(VbrModel, SingleChunkDegeneratesToAverage) {
  const TrackInfo track = youtube_drama_ladder().video()[0];
  const auto chunks = generate_chunks(track, 1, 4.0);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_NEAR(chunks[0].bitrate_kbps(), track.avg_kbps, 1.0);
}

TEST(VbrModel, ChunkDurationPropagates) {
  const TrackInfo track = youtube_drama_ladder().audio()[0];
  for (const ChunkInfo& chunk : generate_chunks(track, 10, 2.0)) {
    EXPECT_DOUBLE_EQ(chunk.duration_s, 2.0);
  }
}

TEST(MeasureChunks, EmptyListIsZero) {
  const ChunkStats stats = measure_chunks({});
  EXPECT_DOUBLE_EQ(stats.avg_kbps, 0.0);
  EXPECT_EQ(stats.total_bytes, 0);
}

TEST(ChunkInfo, BitrateComputation) {
  ChunkInfo chunk;
  chunk.duration_s = 4.0;
  chunk.size_bytes = 500 * 500;  // 250000 B = 2,000,000 bits over 4 s
  EXPECT_DOUBLE_EQ(chunk.bitrate_kbps(), 500.0);
}

class VbrSigmaSweep : public ::testing::TestWithParam<double> {};

TEST_P(VbrSigmaSweep, InvariantsHoldAcrossSigmas) {
  TrackInfo track = youtube_drama_ladder().video()[4];  // V5
  VbrModelParams params;
  params.video_sigma = GetParam();
  const auto chunks = generate_chunks(track, 150, 4.0, params);
  const ChunkStats stats = measure_chunks(chunks);
  EXPECT_NEAR(stats.avg_kbps, track.avg_kbps, track.avg_kbps * 0.01);
  EXPECT_LE(stats.peak_kbps, track.peak_kbps * 1.001);
  for (const ChunkInfo& c : chunks) EXPECT_GT(c.size_bytes, 0);
}

INSTANTIATE_TEST_SUITE_P(Sigmas, VbrSigmaSweep,
                         ::testing::Values(0.05, 0.2, 0.35, 0.5));

class VbrSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VbrSeedSweep, MeanAndPeakStableAcrossSeeds) {
  TrackInfo track = youtube_drama_ladder().video()[3];
  VbrModelParams params;
  params.seed = GetParam();
  const ChunkStats stats = measure_chunks(generate_chunks(track, 75, 4.0, params));
  EXPECT_NEAR(stats.avg_kbps, track.avg_kbps, track.avg_kbps * 0.01);
  EXPECT_NEAR(stats.peak_kbps, track.peak_kbps, track.peak_kbps * 0.01);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VbrSeedSweep,
                         ::testing::Values(1u, 42u, 1234u, 99999u));

}  // namespace
}  // namespace demuxabr
