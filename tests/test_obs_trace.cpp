// Tracer contract tests: macro gating, category masks, thread-shard
// emission, NDJSON structure — plus the acceptance test for the Chrome
// trace-event export: a fleet run under a ScopedTracer must produce JSON
// that parses, nests its B/E spans LIFO per (pid, tid), keeps per-track
// timestamps monotonic, and carries process_name metadata. Tracing must
// also be purely observational: the fleet fingerprint is identical with
// and without a tracer installed.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <future>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "experiments/scenarios.h"
#include "fleet/metrics.h"
#include "fleet/scheduler.h"
#include "players/exoplayer.h"
#include "util/thread_pool.h"

namespace demuxabr::obs {
namespace {

namespace ex = demuxabr::experiments;

// --- Minimal JSON parser (validation only; no external deps) -------------

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<JsonValue> items;                ///< kArray
  std::map<std::string, JsonValue> fields;     ///< kObject

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    const auto it = fields.find(key);
    return it != fields.end() ? &it->second : nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& input) : input_(input) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    if (pos_ != input_.size()) return fail("trailing characters");
    return true;
  }

  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  bool fail(const char* what) {
    if (error_.empty()) {
      error_ = std::string(what) + " at offset " + std::to_string(pos_);
    }
    return false;
  }
  void skip_ws() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_])) != 0) {
      ++pos_;
    }
  }
  bool consume(char c) {
    if (pos_ < input_.size() && input_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_value(JsonValue& out) {
    if (pos_ >= input_.size()) return fail("unexpected end");
    const char c = input_[pos_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      out.type = JsonValue::Type::kString;
      return parse_string(out.text);
    }
    if (input_.compare(pos_, 4, "true") == 0) {
      out.type = JsonValue::Type::kBool;
      out.boolean = true;
      pos_ += 4;
      return true;
    }
    if (input_.compare(pos_, 5, "false") == 0) {
      out.type = JsonValue::Type::kBool;
      pos_ += 5;
      return true;
    }
    if (input_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return true;
    }
    return parse_number(out);
  }

  bool parse_object(JsonValue& out) {
    out.type = JsonValue::Type::kObject;
    if (!consume('{')) return fail("expected '{'");
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) return false;
      out.fields.emplace(std::move(key), std::move(value));
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return fail("expected ',' or '}'");
    }
  }

  bool parse_array(JsonValue& out) {
    out.type = JsonValue::Type::kArray;
    if (!consume('[')) return fail("expected '['");
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) return false;
      out.items.push_back(std::move(value));
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return fail("expected ',' or ']'");
    }
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return fail("expected '\"'");
    while (pos_ < input_.size()) {
      const char c = input_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= input_.size()) return fail("bad escape");
        const char esc = input_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u':
            if (pos_ + 4 > input_.size()) return fail("bad \\u escape");
            out += '?';  // validation only: code point fidelity not needed
            pos_ += 4;
            break;
          default: return fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < input_.size() && (input_[pos_] == '-' || input_[pos_] == '+')) ++pos_;
    while (pos_ < input_.size() &&
           (std::isdigit(static_cast<unsigned char>(input_[pos_])) != 0 ||
            input_[pos_] == '.' || input_[pos_] == 'e' || input_[pos_] == 'E' ||
            input_[pos_] == '-' || input_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected a value");
    out.type = JsonValue::Type::kNumber;
    out.number = std::strtod(input_.c_str() + start, nullptr);
    return true;
  }

  const std::string& input_;
  std::size_t pos_ = 0;
  std::string error_;
};

// --- Tracer primitives ----------------------------------------------------

TEST(Tracer, MacroRoundTripsThroughCaptureSink) {
  ScopedTracer scoped;
  DMX_TRACE_SPAN_BEGIN(kCatDownload, 3, kLaneVideo, "download", 1.5,
                       TraceArgs().kv("chunk", 7).kv("kbps", 1200.5));
  DMX_TRACE_SPAN_END(kCatDownload, 3, kLaneVideo, "download", 2.5,
                     TraceArgs().kv("bytes", std::int64_t{4096}));
  DMX_TRACE_INSTANT(kCatAbr, 3, kLaneAbr, "abr_decision", 2.5,
                    TraceArgs().kv("track_id", "v-1200"));
  scoped.get().name_track(3, "client 3");

  CaptureSink sink;
  scoped.get().drain_to(sink);
  ASSERT_EQ(sink.events.size(), 3u);
  EXPECT_EQ(sink.events[0].kind, TraceEvent::Kind::kBegin);
  EXPECT_EQ(sink.events[0].track, 3u);
  EXPECT_EQ(sink.events[0].lane, kLaneVideo);
  EXPECT_EQ(std::string(sink.events[0].name), "download");
  EXPECT_DOUBLE_EQ(sink.events[0].t_s, 1.5);
  EXPECT_NE(sink.events[0].args.find("\"chunk\":7"), std::string::npos);
  EXPECT_EQ(sink.events[1].kind, TraceEvent::Kind::kEnd);
  EXPECT_EQ(sink.events[2].kind, TraceEvent::Kind::kInstant);
  EXPECT_NE(sink.events[2].args.find("\"track_id\":\"v-1200\""),
            std::string::npos);
  EXPECT_EQ(sink.names.at(3), "client 3");
}

TEST(Tracer, NoTracerMeansNoEmission) {
  ASSERT_EQ(tracer(), nullptr);
  // Must be a no-op (and not crash) with nothing installed.
  DMX_TRACE_INSTANT(kCatDownload, 0, kLanePlayback, "noop", 0.0, TraceArgs());
  EXPECT_EQ(tracer_if(kCatDownload), nullptr);
}

TEST(Tracer, CategoryMaskFiltersAtTheMacro) {
  ScopedTracer scoped(kCatDownload | kCatStall);
  DMX_TRACE_INSTANT(kCatDownload, 0, kLanePlayback, "kept", 1.0, TraceArgs());
  DMX_TRACE_INSTANT(kCatBuffer, 0, kLanePlayback, "filtered", 1.0, TraceArgs());
  DMX_TRACE_INSTANT(kCatEngine, 0, kLanePlayback, "filtered", 1.0, TraceArgs());
  DMX_TRACE_INSTANT(kCatStall, 0, kLanePlayback, "kept", 2.0, TraceArgs());
  EXPECT_EQ(scoped.get().event_count(), 2u);
  EXPECT_EQ(tracer_if(kCatBuffer), nullptr);
  EXPECT_NE(tracer_if(kCatStall), nullptr);
}

TEST(Tracer, ThreadShardsCollectEveryEmission) {
  ScopedTracer scoped;
  constexpr int kThreads = 6;
  constexpr int kPerThread = 2000;
  {
    ThreadPool pool(kThreads);
    std::vector<std::future<void>> futures;
    for (int w = 0; w < kThreads; ++w) {
      futures.push_back(pool.submit([w] {
        for (int i = 0; i < kPerThread; ++i) {
          DMX_TRACE_INSTANT(kCatEngine, static_cast<std::uint32_t>(w),
                            kLanePlayback, "tick", static_cast<double>(i),
                            TraceArgs());
        }
      }));
    }
    for (auto& f : futures) f.get();
  }
  EXPECT_EQ(scoped.get().event_count(),
            static_cast<std::size_t>(kThreads * kPerThread));

  // Per-track (= per emitting thread) order is preserved by the drain.
  CaptureSink sink;
  scoped.get().drain_to(sink);
  std::map<std::uint32_t, double> last_t;
  for (const TraceEvent& e : sink.events) {
    const auto it = last_t.find(e.track);
    if (it != last_t.end()) {
      EXPECT_GE(e.t_s, it->second);
    }
    last_t[e.track] = e.t_s;
  }
}

TEST(Tracer, NdjsonEmitsOneObjectPerLine) {
  ScopedTracer scoped;
  scoped.get().name_track(0, "solo");
  DMX_TRACE_SPAN_BEGIN(kCatDownload, 0, kLaneAudio, "download", 0.25,
                       TraceArgs().kv("chunk", 0));
  DMX_TRACE_SPAN_END(kCatDownload, 0, kLaneAudio, "download", 0.75, TraceArgs());

  std::ostringstream out;
  NdjsonSink sink(out);
  scoped.get().drain_to(sink);

  std::istringstream lines(out.str());
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    ++count;
    JsonValue value;
    JsonParser parser(line);
    ASSERT_TRUE(parser.parse(value)) << parser.error() << "\n" << line;
    EXPECT_EQ(value.type, JsonValue::Type::kObject);
  }
  EXPECT_EQ(count, 3);  // 1 meta line + 2 events
  EXPECT_NE(out.str().find("\"meta\":\"track_name\""), std::string::npos);
  EXPECT_NE(out.str().find("\"kind\":\"begin\""), std::string::npos);
}

// --- Chrome trace acceptance ---------------------------------------------

using FleetConfig = fleet::FleetConfig;

FleetConfig trace_fleet_config() {
  FleetConfig config;
  config.client_count = 10;
  config.seed = 11;
  config.engine = fleet::Engine::kEventHeap;
  config.arrivals = fleet::ArrivalProcess::kPoisson;
  config.arrival_rate_per_s = 0.5;
  config.churn.leave_probability = 0.3;
  config.churn.min_watch_s = 20.0;
  config.churn.max_watch_s = 60.0;
  config.players.push_back(
      {"exoplayer", [] { return std::make_unique<ExoPlayerModel>(); }, 1.0});
  config.session.max_sim_time_s = 900.0;
  return config;
}

TEST(ChromeTrace, FleetTraceParsesNestsAndStaysMonotonic) {
  const ex::ExperimentSetup setup =
      ex::plain_dash(BandwidthTrace::constant(900.0), "chrome-trace");
  const BandwidthTrace bottleneck = BandwidthTrace::constant(4000.0);

  std::string json;
  {
    ScopedTracer scoped;
    const fleet::FleetResult result =
        fleet::run_fleet(setup.content, setup.view, bottleneck,
                         trace_fleet_config());
    EXPECT_FALSE(result.clients.empty());
    std::ostringstream out;
    ChromeTraceSink sink(out);
    scoped.get().drain_to(sink);
    json = out.str();
  }

  JsonValue root;
  JsonParser parser(json);
  ASSERT_TRUE(parser.parse(root)) << parser.error();
  ASSERT_EQ(root.type, JsonValue::Type::kObject);
  const JsonValue* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->type, JsonValue::Type::kArray);
  ASSERT_FALSE(events->items.empty());

  // Validate every event and collect per-(pid, tid) streams.
  std::map<std::pair<double, double>, double> last_ts;
  std::map<std::pair<double, double>, std::vector<std::string>> open_spans;
  std::map<double, std::string> process_names;
  std::size_t span_events = 0;
  for (const JsonValue& e : events->items) {
    ASSERT_EQ(e.type, JsonValue::Type::kObject);
    const JsonValue* ph = e.find("ph");
    const JsonValue* pid = e.find("pid");
    const JsonValue* tid = e.find("tid");
    ASSERT_NE(ph, nullptr);
    ASSERT_NE(pid, nullptr);
    ASSERT_NE(tid, nullptr);

    if (ph->text == "M") {
      const JsonValue* name = e.find("name");
      ASSERT_NE(name, nullptr);
      if (name->text == "process_name") {
        const JsonValue* args = e.find("args");
        ASSERT_NE(args, nullptr);
        process_names[pid->number] = args->find("name")->text;
      }
      continue;
    }

    // Timed events: per-track timestamps must be monotonic non-decreasing.
    const JsonValue* ts = e.find("ts");
    ASSERT_NE(ts, nullptr);
    const auto key = std::make_pair(pid->number, tid->number);
    const auto it = last_ts.find(key);
    if (it != last_ts.end()) {
      EXPECT_GE(ts->number, it->second)
          << "timestamps regress on pid=" << pid->number
          << " tid=" << tid->number;
    }
    last_ts[key] = ts->number;

    // B/E spans must pair LIFO with matching names within their lane.
    const JsonValue* name = e.find("name");
    ASSERT_NE(name, nullptr);
    if (ph->text == "B") {
      open_spans[key].push_back(name->text);
      ++span_events;
    } else if (ph->text == "E") {
      auto& stack = open_spans[key];
      ASSERT_FALSE(stack.empty())
          << "E without matching B: " << name->text << " on pid=" << pid->number;
      EXPECT_EQ(stack.back(), name->text);
      stack.pop_back();
      ++span_events;
    } else {
      EXPECT_TRUE(ph->text == "i" || ph->text == "C") << ph->text;
    }
  }
  EXPECT_GT(span_events, 0u);  // download spans must actually appear

  // One named process per session and for the shared link + engine.
  ASSERT_FALSE(process_names.empty());
  EXPECT_NE(process_names.count(0.0), 0u);  // client 0
  EXPECT_NE(process_names.count(static_cast<double>(kLinkTrackBase)), 0u);
  EXPECT_NE(process_names.count(static_cast<double>(kEngineTrack)), 0u);
  EXPECT_NE(process_names[0.0].find("exoplayer"), std::string::npos);
}

TEST(ChromeTrace, TracingIsPurelyObservational) {
  const ex::ExperimentSetup setup =
      ex::plain_dash(BandwidthTrace::constant(900.0), "observational");
  const BandwidthTrace bottleneck = BandwidthTrace::constant(4000.0);
  const FleetConfig config = trace_fleet_config();

  const fleet::FleetResult untraced =
      fleet::run_fleet(setup.content, setup.view, bottleneck, config);
  std::string traced_fingerprint;
  {
    ScopedTracer scoped;
    const fleet::FleetResult traced =
        fleet::run_fleet(setup.content, setup.view, bottleneck, config);
    EXPECT_GT(scoped.get().event_count(), 0u);
    traced_fingerprint = fleet::fleet_fingerprint(traced);
  }
  EXPECT_EQ(fleet::fleet_fingerprint(untraced), traced_fingerprint);
}

}  // namespace
}  // namespace demuxabr::obs
