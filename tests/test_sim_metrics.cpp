#include "sim/metrics.h"

#include <gtest/gtest.h>

#include "media/ladder.h"

namespace demuxabr {
namespace {

SessionLog make_log() {
  SessionLog log;
  log.player_name = "test";
  log.content_duration_s = 16.0;
  log.chunk_duration_s = 4.0;
  log.total_chunks = 4;
  log.startup_delay_s = 1.0;
  log.end_time_s = 20.0;
  log.completed = true;
  log.video_selection = {"V1", "V1", "V2", "V2"};
  log.audio_selection = {"A1", "A2", "A2", "A2"};
  log.stalls.push_back({5.0, 7.5});
  return log;
}

TEST(SessionLogHelpers, TotalStall) {
  SessionLog log = make_log();
  log.stalls.push_back({10.0, 11.0});
  EXPECT_DOUBLE_EQ(log.total_stall_s(), 3.5);
  EXPECT_EQ(log.stall_count(), 2u);
}

TEST(SessionLogHelpers, CombinationLabelsFirstUseOrder) {
  const SessionLog log = make_log();
  const auto labels = log.selected_combination_labels();
  ASSERT_EQ(labels.size(), 3u);
  EXPECT_EQ(labels[0], "V1+A1");
  EXPECT_EQ(labels[1], "V1+A2");
  EXPECT_EQ(labels[2], "V2+A2");
}

TEST(SessionLogHelpers, TotalDownloadedBytes) {
  SessionLog log;
  DownloadRecord d;
  d.bytes = 100;
  log.downloads.push_back(d);
  d.bytes = 250;
  log.downloads.push_back(d);
  EXPECT_EQ(log.total_downloaded_bytes(), 350);
}

TEST(DownloadRecord, ThroughputComputation) {
  DownloadRecord d;
  d.bytes = 125000;  // 1,000,000 bits
  d.start_t = 1.0;
  d.end_t = 2.0;
  EXPECT_DOUBLE_EQ(d.throughput_kbps(), 1000.0);
  d.end_t = 1.0;  // degenerate
  EXPECT_DOUBLE_EQ(d.throughput_kbps(), 0.0);
}

TEST(Qoe, AverageBitratesAreChunkWeighted) {
  const SessionLog log = make_log();
  const QoeReport report = compute_qoe(log, youtube_drama_ladder());
  // V1=111 x2, V2=246 x2 -> 178.5; A1=128, A2=196 x3 -> 179.
  EXPECT_NEAR(report.avg_video_kbps, (111.0 * 2 + 246.0 * 2) / 4.0, 1e-9);
  EXPECT_NEAR(report.avg_audio_kbps, (128.0 + 196.0 * 3) / 4.0, 1e-9);
}

TEST(Qoe, CountsSwitchesPerComponent) {
  const SessionLog log = make_log();
  const QoeReport report = compute_qoe(log, youtube_drama_ladder());
  EXPECT_EQ(report.video_switches, 1);
  EXPECT_EQ(report.audio_switches, 1);
  EXPECT_EQ(report.combo_switches, 2);
}

TEST(Qoe, StallAccounting) {
  const SessionLog log = make_log();
  const QoeReport report = compute_qoe(log, youtube_drama_ladder());
  EXPECT_EQ(report.stall_count, 1);
  EXPECT_DOUBLE_EQ(report.total_stall_s, 2.5);
  EXPECT_DOUBLE_EQ(report.startup_delay_s, 1.0);
}

TEST(Qoe, OffManifestCounting) {
  const SessionLog log = make_log();
  const auto allowed = curated_subset(youtube_drama_ladder());
  // Allowed: V1+A1, V2+A1, V3+A2, ... -> V1+A2 and V2+A2 are violations.
  const QoeReport report = compute_qoe(log, youtube_drama_ladder(), &allowed);
  EXPECT_EQ(report.off_manifest_chunks, 3);
}

TEST(Qoe, NoAllowedListMeansZeroViolations) {
  const QoeReport report = compute_qoe(make_log(), youtube_drama_ladder(), nullptr);
  EXPECT_EQ(report.off_manifest_chunks, 0);
}

TEST(Qoe, StallsReduceScore) {
  SessionLog clean = make_log();
  clean.stalls.clear();
  SessionLog stalled = make_log();
  const auto ladder = youtube_drama_ladder();
  EXPECT_GT(compute_qoe(clean, ladder).qoe_score, compute_qoe(stalled, ladder).qoe_score);
}

TEST(Qoe, HigherBitrateRaisesScore) {
  SessionLog low = make_log();
  low.stalls.clear();
  SessionLog high = low;
  high.video_selection = {"V4", "V4", "V4", "V4"};
  const auto ladder = youtube_drama_ladder();
  EXPECT_GT(compute_qoe(high, ladder).qoe_score, compute_qoe(low, ladder).qoe_score);
}

TEST(Qoe, AudioWeightScalesAudioContribution) {
  SessionLog log = make_log();
  log.stalls.clear();
  QoeConfig heavy;
  heavy.audio_weight = 2.0;
  QoeConfig none;
  none.audio_weight = 0.0;
  const auto ladder = youtube_drama_ladder();
  EXPECT_GT(compute_qoe(log, ladder, nullptr, heavy).qoe_score,
            compute_qoe(log, ladder, nullptr, none).qoe_score);
}

TEST(Qoe, EmptyLogIsAllZero) {
  SessionLog log;
  const QoeReport report = compute_qoe(log, youtube_drama_ladder());
  EXPECT_DOUBLE_EQ(report.avg_video_kbps, 0.0);
  EXPECT_EQ(report.video_switches, 0);
  EXPECT_DOUBLE_EQ(report.qoe_score, 0.0);
}

TEST(SelectionCsv, RendersRows) {
  const std::string csv = selection_csv(make_log());
  EXPECT_NE(csv.find("chunk,video,audio,combo"), std::string::npos);
  EXPECT_NE(csv.find("0,V1,A1,V1+A1"), std::string::npos);
  EXPECT_NE(csv.find("3,V2,A2,V2+A2"), std::string::npos);
}

TEST(Summarize, MentionsKeyNumbers) {
  const SessionLog log = make_log();
  const QoeReport report = compute_qoe(log, youtube_drama_ladder());
  const std::string text = summarize(log, report);
  EXPECT_NE(text.find("player=test"), std::string::npos);
  EXPECT_NE(text.find("stalls=1"), std::string::npos);
  EXPECT_NE(text.find("V1+A1"), std::string::npos);
}

}  // namespace
}  // namespace demuxabr
