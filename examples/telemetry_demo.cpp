// telemetry_demo: fleet timeline telemetry end to end. A flash crowd of 16
// mixed-player clients shares a square-wave bottleneck whose trough leaves
// each client far below the lowest video rung, so the fleet rides through a
// genuine stall storm while the link pins at saturation. The run records the
// time-binned health series (obs/telemetry.h), extracts threshold-with-
// hysteresis incidents (obs/incidents.h), and writes all three exporters:
//
//   telemetry_timeline.ndjson  one JSON object per (bin, series) row
//   telemetry_timeline.csv     the fleet series as a flat table
//   telemetry_report.html      self-contained report (inline SVG + incidents)
//
// Exits non-zero if no incident is detected — the scenario is engineered to
// produce at least a stall storm and a link-saturation episode, so an empty
// incident list means the telemetry plumbing is broken.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/coordinated_player.h"
#include "experiments/scenarios.h"
#include "fleet/scheduler.h"
#include "obs/incidents.h"
#include "obs/telemetry.h"
#include "players/dashjs.h"
#include "players/exoplayer.h"
#include "util/csv.h"

using namespace demuxabr;
namespace ex = demuxabr::experiments;

int main() {
  // 25 s of plenty (12 Mbps shared: everyone starts and plays), then 25 s of
  // famine (2.5 Mbps / 16 clients ≈ 156 kbps each, below the lowest video
  // rung): the famine phases are the incidents.
  const ex::ExperimentSetup setup = ex::plain_dash(
      BandwidthTrace::square_wave(12000.0, 2500.0, 25.0, 25.0, true),
      "telemetry-demo");

  fleet::FleetConfig config;
  config.client_count = 16;
  config.seed = 11;
  config.arrivals = fleet::ArrivalProcess::kSimultaneous;  // flash crowd
  config.players.push_back(
      {"exoplayer", [] { return std::make_unique<ExoPlayerModel>(); }, 0.5});
  config.players.push_back(
      {"dashjs", [] { return std::make_unique<DashJsPlayerModel>(); }, 0.3});
  config.players.push_back(
      {"coordinated", [] { return std::make_unique<CoordinatedPlayer>(); }, 0.2});
  config.session.max_sim_time_s = 900.0;
  config.telemetry.enabled = true;
  config.telemetry.bin_s = 1.0;

  const fleet::FleetResult result =
      fleet::run_fleet(setup.content, setup.view, setup.trace, config);
  if (!result.timeline.has_value()) {
    std::fprintf(stderr, "FAIL: telemetry enabled but no timeline produced\n");
    return 1;
  }
  const obs::FleetTimeline& timeline = *result.timeline;
  const std::vector<obs::Incident> incidents = obs::detect_incidents(timeline);

  std::printf("=== fleet timeline: %zu bins x %.0f s, %zu links ===\n",
              timeline.bin_count(), timeline.bin_s, timeline.links.size());
  std::printf("\n=== incidents (threshold + hysteresis) ===\n");
  for (const obs::Incident& incident : incidents) {
    std::printf("  %-15s %-18s [%7.1fs, %7.1fs)  peak %.3f at bin %lld\n",
                obs::incident_type_name(incident.type), incident.entity.c_str(),
                incident.start_s, incident.end_s, incident.peak,
                static_cast<long long>(incident.peak_bin));
  }
  if (incidents.empty()) std::printf("  (none)\n");

  struct Export {
    const char* path;
    std::string payload;
  };
  const Export exports[] = {
      {"telemetry_timeline.ndjson", timeline.to_ndjson()},
      {"telemetry_timeline.csv", timeline.to_csv()},
      {"telemetry_report.html",
       obs::telemetry_report(timeline, incidents,
                             "telemetry_demo: 16-client flash crowd")},
  };
  for (const Export& e : exports) {
    const Status written = write_file(e.path, e.payload);
    if (!written.ok()) {
      std::fprintf(stderr, "FAIL: could not write %s: %s\n", e.path,
                   written.error().c_str());
      return 1;
    }
    std::printf("wrote %s (%zu bytes)\n", e.path, e.payload.size());
  }

  if (incidents.empty()) {
    std::fprintf(stderr,
                 "FAIL: contended scenario produced no incidents — telemetry "
                 "or incident detection is broken\n");
    return 1;
  }
  return 0;
}
