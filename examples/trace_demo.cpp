// trace_demo: capture a contention fleet with the observability layer on.
// Runs ~10 mixed-player clients on one shared bottleneck with the Tracer,
// the metrics registry, and the engine self-profiler all enabled, then
// writes the capture twice:
//   trace_demo.json   — Chrome trace-event JSON (open in chrome://tracing
//                       or https://ui.perfetto.dev; one "process" per
//                       session and per link, one "thread" per lane)
//   trace_demo.ndjson — one JSON object per line, greppable
// and prints the metrics snapshot plus the engine phase profile.
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "core/coordinated_player.h"
#include "experiments/scenarios.h"
#include "fleet/scheduler.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "players/dashjs.h"
#include "players/exoplayer.h"

using namespace demuxabr;
namespace ex = demuxabr::experiments;

int main() {
  // A small fleet on a 4 Mbps pipe: enough contention that download spans
  // overlap, ABR decisions react to fair-share swings, and some clients
  // stall — all of which shows up on the trace timeline.
  const ex::ExperimentSetup setup =
      ex::plain_dash(BandwidthTrace::square_wave(2500.0, 5000.0, 25.0, 25.0, true),
                     "trace-demo");

  fleet::FleetConfig config;
  config.client_count = 10;
  config.seed = 21;
  config.arrivals = fleet::ArrivalProcess::kPoisson;
  config.arrival_rate_per_s = 0.25;
  config.players.push_back(
      {"exoplayer", [] { return std::make_unique<ExoPlayerModel>(); }, 0.6});
  config.players.push_back(
      {"dashjs", [] { return std::make_unique<DashJsPlayerModel>(); }, 0.4});
  config.churn.leave_probability = 0.2;
  config.churn.min_watch_s = 30.0;
  config.churn.max_watch_s = 120.0;
  config.session.max_sim_time_s = 900.0;
  config.profile = true;  // engine phase wall-clock (purely observational)

  fleet::FleetResult result;
  obs::Tracer tracer(obs::kCatAll);
  {
    // Scoped: instrumentation macros only pay for rendering while a tracer
    // is installed and metrics are enabled.
    obs::install_tracer(&tracer);
    obs::ScopedMetrics metrics_on;
    result = fleet::run_fleet(setup.content, setup.view, setup.trace, config);
    obs::install_tracer(nullptr);
  }

  std::printf("=== traced fleet run: %d clients, %zu engine steps ===\n",
              config.client_count, result.steps);
  std::printf("captured %zu trace events\n\n", tracer.event_count());

  {
    std::ofstream chrome_out("trace_demo.json");
    obs::ChromeTraceSink sink(chrome_out);
    tracer.drain_to(sink);
  }
  {
    std::ofstream ndjson_out("trace_demo.ndjson");
    obs::NdjsonSink sink(ndjson_out);
    tracer.drain_to(sink);
  }
  std::printf("wrote trace_demo.json   (load in chrome://tracing or "
              "ui.perfetto.dev)\n");
  std::printf("wrote trace_demo.ndjson (grep-friendly, one event per line)\n");

  std::printf("\n=== engine self-profile (event-heap) ===\n%s",
              result.profile.to_table().c_str());

  std::printf("\n=== metrics registry snapshot ===\n%s",
              obs::MetricsRegistry::global().to_text().c_str());

  std::printf(
      "\nreading the timeline: each \"c<N> <player>\" process is one session\n"
      "(lanes: playback | video dl | audio dl | abr); \"link ...\" processes\n"
      "carry active-flow counters; \"engine ...\" carries event pops.\n");
  return 0;
}
