// Bandwidth-trace tooling: build each standard trace, verify its average,
// and dump a CSV snippet — useful when adding new experiment scenarios.
#include <cstdio>

#include "experiments/scenarios.h"
#include "net/bandwidth_trace.h"

using namespace demuxabr;

int main() {
  for (const auto& named : experiments::comparison_traces()) {
    const double avg = named.trace.average_kbps(0.0, 300.0);
    const double t60 = named.trace.rate_kbps(60.0);
    std::printf("%-22s avg over 300s = %7.1f kbps, rate@60s = %7.1f kbps, %zu segments%s\n",
                named.name.c_str(), avg, t60, named.trace.segments().size(),
                named.trace.period_s() > 0.0 ? " (periodic)" : "");
  }

  std::printf("\nCSV for the Fig 3 trace (first period):\n%s",
              experiments::varying_600_trace().to_csv().c_str());

  // Round-trip through CSV parsing.
  const std::string csv = experiments::shaka_varying_600_trace().to_csv();
  auto reloaded = BandwidthTrace::from_csv(csv);
  if (!reloaded.ok()) {
    std::fprintf(stderr, "trace csv reload failed: %s\n", reloaded.error().c_str());
    return 1;
  }
  std::printf("\nreloaded shaka trace avg over one period: %.1f kbps\n",
              reloaded->average_kbps(0.0, 60.0));
  return 0;
}
