// Quickstart: stream a 5-minute title with the best-practice CoordinatedPlayer
// over a time-varying link and print the QoE summary.
//
// Demonstrates the full public API path:
//   ladder -> content -> curated manifest -> parsed view -> session -> QoE.
#include <cstdio>

#include "core/compliance.h"
#include "core/coordinated_player.h"
#include "experiments/scenarios.h"
#include "experiments/tables.h"
#include "sim/session.h"

int main() {
  using namespace demuxabr;

  // 1. Content: the paper's Table 1 ladder, cut into 4 s chunks.
  const Content content = make_drama_content();
  std::printf("%s\n", experiments::render_table1(content).c_str());

  // 2. Server side: curate allowed combinations for a drama on a phone and
  //    publish them in an enhanced DASH manifest (§4.1).
  CurationPolicy policy;
  policy.genre = ContentGenre::kDrama;
  const MpdDocument mpd = build_enhanced_mpd(content, policy);
  const std::string mpd_xml = serialize_mpd(mpd);
  std::printf("generated MPD: %zu bytes, %zu allowed combinations\n\n",
              mpd_xml.size(), mpd.allowed_combinations.size());

  // 3. Client side: parse the manifest and stream over a 600 kbps-average
  //    varying link with the coordinated player (§4.2).
  auto parsed = parse_mpd(mpd_xml);
  if (!parsed.ok()) {
    std::fprintf(stderr, "manifest parse failed: %s\n", parsed.error().c_str());
    return 1;
  }
  const ManifestView view = view_from_mpd(*parsed);

  CoordinatedPlayer player;
  const Network network = Network::shared(experiments::varying_600_trace());
  const SessionLog log = run_session(content, view, network, player);

  // 4. Results.
  const QoeReport qoe = compute_qoe(log, content.ladder());
  std::printf("%s\n", summarize(log, qoe).c_str());
  std::printf("selection timeline: %s\n",
              experiments::render_selection_timeline(log).c_str());
  return log.completed ? 0 : 1;
}
