// Regenerate the raw data series behind every figure in the paper as CSV
// files (one directory per figure), ready for plotting:
//   figure_output/fig2a/selection.csv        selected avg bitrates over time
//   figure_output/fig3/buffers.csv           audio/video buffer levels
//   figure_output/fig4b/estimate.csv         bandwidth-estimate evolution
//   ... etc.
// Usage: figure_data [output_dir]   (default: ./figure_output)
#include <cstdio>
#include <filesystem>
#include <string>

#include "core/coordinated_player.h"
#include "experiments/scenarios.h"
#include "players/dashjs.h"
#include "players/exoplayer.h"
#include "players/shaka.h"
#include "util/csv.h"
#include "util/strings.h"

namespace {

using namespace demuxabr;
namespace ex = demuxabr::experiments;
namespace fs = std::filesystem;

/// Write one figure's series bundle.
void dump(const fs::path& dir, const ex::ExperimentSetup& setup, const SessionLog& log) {
  fs::create_directories(dir);
  auto save = [&](const std::string& name, const std::string& text) {
    const Status status = write_file((dir / name).string(), text);
    if (!status.ok()) std::fprintf(stderr, "warn: %s\n", status.error().c_str());
  };

  // Selected-track bitrate timelines (Figs 2, 3a, 4b, 5a).
  save("selected_video_kbps.csv", log.selected_video_kbps.to_csv("video_kbps"));
  save("selected_audio_kbps.csv", log.selected_audio_kbps.to_csv("audio_kbps"));
  // Buffer levels (Figs 3b, 5b).
  save("video_buffer_s.csv", log.video_buffer_s.resample(0, log.end_time_s, 1.0)
                                 .to_csv("video_buffer_s"));
  save("audio_buffer_s.csv", log.audio_buffer_s.resample(0, log.end_time_s, 1.0)
                                 .to_csv("audio_buffer_s"));
  // Bandwidth estimate (Fig 4).
  save("estimate_kbps.csv", log.bandwidth_estimate_kbps.resample(0, log.end_time_s, 1.0)
                                .to_csv("estimate_kbps"));
  // Per-chunk selections and stall intervals.
  save("selection.csv", selection_csv(log));
  CsvWriter stalls({"start_s", "end_s", "duration_s"});
  for (const StallEvent& stall : log.stalls) {
    stalls.cell(stall.start_t).cell(stall.end_t).cell(stall.duration_s()).end_row();
  }
  save("stalls.csv", stalls.to_string());
  // The bandwidth trace itself, for the figure's secondary axis.
  save("trace.csv", setup.trace.to_csv());

  std::printf("%-8s -> %s (%zu downloads, %zu stalls)\n", setup.id.c_str(),
              dir.string().c_str(), log.downloads.size(), log.stalls.size());
}

}  // namespace

int main(int argc, char** argv) {
  const fs::path root = argc > 1 ? argv[1] : "figure_output";

  {
    auto setup = ex::fig2a_exo_dash_audio_b();
    ExoPlayerModel player;
    dump(root / "fig2a", setup, ex::run(setup, player));
  }
  {
    auto setup = ex::fig2b_exo_dash_audio_c();
    ExoPlayerModel player;
    dump(root / "fig2b", setup, ex::run(setup, player));
  }
  {
    auto setup = ex::fig3_exo_hls_a3_first();
    ExoPlayerModel player;
    dump(root / "fig3", setup, ex::run(setup, player));
  }
  {
    auto setup = ex::fig3x_exo_hls_a1_first_5mbps();
    ExoPlayerModel player;
    dump(root / "fig3x", setup, ex::run(setup, player));
  }
  {
    auto setup = ex::fig4a_shaka_hall_1mbps();
    ShakaPlayerModel player;
    dump(root / "fig4a", setup, ex::run(setup, player));
  }
  {
    auto setup = ex::fig4b_shaka_hall_varying();
    ShakaPlayerModel player;
    dump(root / "fig4b", setup, ex::run(setup, player));
  }
  {
    auto setup = ex::fig5_dashjs_700();
    DashJsPlayerModel player;
    dump(root / "fig5", setup, ex::run(setup, player));
  }
  {
    auto setup = ex::bestpractice_dash(ex::varying_600_trace(), "bp");
    CoordinatedPlayer player;
    dump(root / "bp_varying600", setup, ex::run(setup, player));
  }
  {
    auto setup = ex::bestpractice_dash(ex::shaka_varying_600_trace(), "bp-mpc");
    CoordinatedConfig config;
    config.algorithm = AbrAlgorithm::kMpc;
    CoordinatedPlayer player(config);
    dump(root / "bp_mpc_bursty", setup, ex::run(setup, player));
  }
  std::printf("done. plot any series with your tool of choice.\n");
  return 0;
}
