// packager: the server-side pipeline as a tool (the role Bento4 plays in the
// paper's testbed). Takes a genre/device policy and writes a complete
// manifest tree to disk:
//
//   <out>/dash/manifest.mpd            plain DASH
//   <out>/dash/manifest_enhanced.mpd   + §4.1 allowed-combination descriptor
//   <out>/hls/master_all.m3u8          H_all (every combination)
//   <out>/hls/master_sub.m3u8          H_sub (curated pairing)
//   <out>/hls/master_curated.m3u8      best-practice staircase
//   <out>/hls/audio/<id>.m3u8          media playlists with EXT-X-BITRATE
//   <out>/hls/video/<id>.m3u8
//   <out>/objects.csv                  chunk object inventory (sizes)
//
// Usage: packager [out_dir] [genre] [device]
#include <cstdio>
#include <filesystem>
#include <string>

#include "core/compliance.h"
#include "httpsim/catalog.h"
#include "manifest/builder.h"
#include "media/content.h"
#include "util/csv.h"

using namespace demuxabr;
namespace fs = std::filesystem;

namespace {

bool save(const fs::path& path, const std::string& text) {
  fs::create_directories(path.parent_path());
  const Status status = write_file(path.string(), text);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.error().c_str());
    return false;
  }
  std::printf("  %-40s %6zu bytes\n", path.string().c_str(), text.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const fs::path out = argc > 1 ? argv[1] : "packaged";
  CurationPolicy policy;
  if (argc > 2) {
    const std::string genre = argv[2];
    if (genre == "music") policy.genre = ContentGenre::kMusic;
    else if (genre == "action") policy.genre = ContentGenre::kAction;
  }
  if (argc > 3 && std::string(argv[3]) == "tv") {
    policy.device.screen = DeviceProfile::Screen::kTv;
    policy.device.sound = DeviceProfile::Sound::kSurround;
  }

  const Content content = make_drama_content();
  std::printf("packaging %d chunks x %zu tracks (%s, %s)\n\n", content.num_chunks(),
              content.ladder().audio_count() + content.ladder().video_count(),
              genre_name(policy.genre), argc > 3 ? argv[3] : "phone");

  // DASH.
  if (!save(out / "dash" / "manifest.mpd", serialize_mpd(build_dash_mpd(content)))) return 1;
  if (!save(out / "dash" / "manifest_enhanced.mpd",
            serialize_mpd(build_enhanced_mpd(content, policy)))) return 1;

  // HLS masters.
  if (!save(out / "hls" / "master_all.m3u8",
            serialize_master(build_hall_master(content)))) return 1;
  if (!save(out / "hls" / "master_sub.m3u8",
            serialize_master(build_hsub_master(content)))) return 1;
  if (!save(out / "hls" / "master_curated.m3u8",
            serialize_master(build_curated_hls_master(content, policy)))) return 1;

  // HLS media playlists with the mandatory EXT-X-BITRATE tag.
  for (const auto& [id, playlist] : build_bestpractice_media_playlists(content)) {
    const TrackInfo* track = content.ladder().find(id);
    const char* kind = track->is_audio() ? "audio" : "video";
    if (!save(out / "hls" / kind / (id + ".m3u8"), serialize_media(playlist))) return 1;
  }

  // Object inventory (what an origin would store, demuxed mode).
  const ObjectCatalog catalog = build_demuxed_catalog(content);
  CsvWriter objects({"key", "bytes"});
  for (const auto* list : {&content.ladder().audio(), &content.ladder().video()}) {
    for (const TrackInfo& track : *list) {
      for (const ChunkInfo& chunk : content.chunks(track.id)) {
        objects.cell(chunk_object_key(track.id, chunk.index)).cell(chunk.size_bytes).end_row();
      }
    }
  }
  if (!save(out / "objects.csv", objects.to_string())) return 1;

  std::printf("\ntotal origin footprint: %.1f MB in %zu objects\n",
              static_cast<double>(catalog.total_bytes()) / 1e6, catalog.object_count());

  // Round-trip validation of everything we just wrote.
  const auto mpd = read_file((out / "dash" / "manifest_enhanced.mpd").string());
  if (!mpd.ok() || !parse_mpd(*mpd).ok()) {
    std::fprintf(stderr, "self-check failed: enhanced MPD does not reparse\n");
    return 1;
  }
  const auto master = read_file((out / "hls" / "master_curated.m3u8").string());
  if (!master.ok() || !parse_master(*master).ok()) {
    std::fprintf(stderr, "self-check failed: curated master does not reparse\n");
    return 1;
  }
  std::printf("self-check: all manifests reparse cleanly\n");
  return 0;
}
