// Manifest tooling walkthrough: generate the paper's three manifests (DASH
// MPD, HLS H_all, HLS H_sub), print them, parse them back, and show what a
// player can learn from each — including the §4.1 upgrade of reading
// second-level playlists with EXT-X-BITRATE tags.
#include <cstdio>

#include "core/compliance.h"
#include "manifest/builder.h"
#include "manifest/view.h"
#include "media/content.h"
#include "util/strings.h"

using namespace demuxabr;

namespace {

void print_view(const char* title, const ManifestView& view) {
  std::printf("--- view: %s (%s) ---\n", title, protocol_name(view.protocol));
  std::printf("combination list: %s (%zu combos)\n",
              view.has_combination_list ? "yes" : "no", view.combos.size());
  for (const auto* tracks : {&view.video_tracks, &view.audio_tracks}) {
    for (const TrackView& t : *tracks) {
      if (t.bitrate_known) {
        std::printf("  %-3s %-5s declared=%.0f kbps avg=%.0f kbps\n", t.id.c_str(),
                    media_type_name(t.type), t.declared_kbps, t.avg_kbps);
      } else {
        std::printf("  %-3s %-5s bitrate UNKNOWN from this manifest\n", t.id.c_str(),
                    media_type_name(t.type));
      }
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const Content content = make_drama_content();

  // DASH MPD (plain, then with the §4.1 combination extension).
  const std::string plain_mpd = serialize_mpd(build_dash_mpd(content));
  std::printf("===== DASH MPD (plain) =====\n%s\n", plain_mpd.c_str());
  auto parsed_mpd = parse_mpd(plain_mpd);
  if (!parsed_mpd.ok()) {
    std::fprintf(stderr, "MPD parse error: %s\n", parsed_mpd.error().c_str());
    return 1;
  }
  print_view("plain DASH", view_from_mpd(*parsed_mpd));

  CurationPolicy policy;
  const std::string enhanced_mpd = serialize_mpd(build_enhanced_mpd(content, policy));
  auto parsed_enhanced = parse_mpd(enhanced_mpd);
  if (!parsed_enhanced.ok()) return 1;
  print_view("enhanced DASH (allowed combinations)", view_from_mpd(*parsed_enhanced));

  // HLS H_all and H_sub master playlists.
  const std::string hall = serialize_master(build_hall_master(content));
  std::printf("===== HLS master H_all =====\n%s\n", hall.c_str());
  const std::string hsub = serialize_master(build_hsub_master(content));
  std::printf("===== HLS master H_sub =====\n%s\n", hsub.c_str());

  auto parsed_hsub = parse_master(hsub);
  if (!parsed_hsub.ok()) {
    std::fprintf(stderr, "master parse error: %s\n", parsed_hsub.error().c_str());
    return 1;
  }
  print_view("HLS H_sub, top-level only", view_from_hls(*parsed_hsub, nullptr));

  // §4.1: second-level playlists with mandatory EXT-X-BITRATE reveal
  // per-track bitrates.
  const auto media_playlists = build_bestpractice_media_playlists(content);
  std::printf("===== media playlist for V3 (EXT-X-BITRATE mandatory) =====\n");
  const std::string v3 = serialize_media(media_playlists.at("V3"));
  // Print just the head; the full playlist has one entry per chunk.
  std::size_t shown = 0;
  for (const std::string& line : split_lines(v3)) {
    std::printf("%s\n", line.c_str());
    if (++shown >= 14) break;
  }
  std::printf("... (%d segments total)\n\n", content.num_chunks());

  print_view("HLS H_sub + second-level playlists",
             view_from_hls(*parsed_hsub, &media_playlists));
  return 0;
}
