// fleet_demo: a dozen mixed-player clients contending on one shared
// bottleneck. Shows the fleet API end to end — population planning (Poisson
// arrivals, weighted player mix, churn), the shared-link scheduler, per-client
// outcomes, aggregate metrics, and the determinism fingerprint — then runs a
// small seed-replication fan-out on the thread pool and the same population
// over a sharded client → edge → core topology (per-link stats, per-edge
// fairness, bottleneck attribution).
#include <cstdio>
#include <functional>
#include <memory>
#include <string>

#include "core/coordinated_player.h"
#include "experiments/scenarios.h"
#include "fleet/scheduler.h"
#include "fleet/topology.h"
#include "players/dashjs.h"
#include "players/exoplayer.h"

using namespace demuxabr;
namespace ex = demuxabr::experiments;

int main() {
  // Paper-style workload: drama content on a 5 Mbps pipe that all clients
  // share. With ~4 concurrent viewers the fair share sits near the middle of
  // the ladder, so ABR decisions actually interact.
  const ex::ExperimentSetup setup =
      ex::plain_dash(BandwidthTrace::square_wave(3000.0, 7000.0, 20.0, 20.0, true),
                     "fleet-demo");

  fleet::FleetConfig config;
  config.client_count = 12;
  config.seed = 7;
  config.arrivals = fleet::ArrivalProcess::kPoisson;
  config.arrival_rate_per_s = 0.2;  // one viewer every ~5 s on average
  config.players.push_back(
      {"exoplayer", [] { return std::make_unique<ExoPlayerModel>(); }, 0.5});
  config.players.push_back(
      {"dashjs", [] { return std::make_unique<DashJsPlayerModel>(); }, 0.3});
  config.players.push_back(
      {"coordinated", [] { return std::make_unique<CoordinatedPlayer>(); }, 0.2});
  config.churn.leave_probability = 0.25;
  config.churn.min_watch_s = 40.0;
  config.churn.max_watch_s = 150.0;
  config.session.max_sim_time_s = 1800.0;

  std::printf("=== population plan (seed %llu) ===\n",
              static_cast<unsigned long long>(config.seed));
  for (const fleet::ClientPlan& plan : fleet::plan_population(config)) {
    if (plan.leave_at_s < 1e17) {
      std::printf("  client %2d  %-12s arrives %6.1fs  churns out at %6.1fs\n",
                  plan.id, plan.player_label.c_str(), plan.arrival_s,
                  plan.leave_at_s);
    } else {
      std::printf("  client %2d  %-12s arrives %6.1fs  watches to the end\n",
                  plan.id, plan.player_label.c_str(), plan.arrival_s);
    }
  }

  const fleet::FleetResult result =
      fleet::run_fleet(setup.content, setup.view, setup.trace, config);

  std::printf("\n=== per-client outcomes ===\n");
  for (const fleet::ClientResult& client : result.clients) {
    const TimeSeries& selected = client.log.selected_video_kbps;
    const double kbps =
        selected.empty() ? 0.0
                         : selected.time_weighted_mean(selected.front().t,
                                                       selected.back().t);
    std::printf(
        "  client %2d  %-12s avg video %6.0f kbps  stalls %zu (%5.1fs)  %s\n",
        client.id, client.player.c_str(), kbps, client.log.stall_count(),
        client.log.total_stall_s(),
        client.departed_early ? "left early"
                              : (client.log.completed ? "completed" : "capped"));
  }

  const fleet::FleetMetrics metrics = fleet::compute_fleet_metrics(result);
  std::printf("\n%s", fleet::summarize(result, metrics).c_str());

  // Determinism contract: the fingerprint hashes everything behavioural.
  const std::size_t fp =
      std::hash<std::string>{}(fleet::fleet_fingerprint(result));
  std::printf("\nfingerprint: %016zx (same seed => same value, any machine)\n", fp);

  // Seed replications fan out across the thread pool; order and content of
  // the results are independent of the thread count.
  fleet::ReplicationOptions options;
  options.replications = 3;
  options.threads = 0;  // default pool size
  std::printf("\n=== %d seed replications ===\n", options.replications);
  for (const fleet::FleetReplication& rep : fleet::run_replications(
           setup.content, setup.view, setup.trace, config, options)) {
    std::printf(
        "  seed %3llu: mean QoE %7.1f, jain(video) %.3f, stall p90 %.3f\n",
        static_cast<unsigned long long>(rep.seed), rep.metrics.mean_qoe,
        rep.metrics.jain_fairness_video, rep.metrics.stall_ratio.p90);
  }

  // The same 12 clients over a multi-link topology (DESIGN.md §9): three
  // access → edge shards of 4 clients each, funnelling into one undersized
  // core so the binding constraint moves between the edge and core layers.
  // The shared trace argument is ignored once a topology is set.
  config.topology = fleet::TopologySpec::sharded(
      3, BandwidthTrace::constant(10000.0), BandwidthTrace::constant(3600.0),
      BandwidthTrace::constant(8400.0));
  config.topology->video_assignment = fleet::TopologySpec::block_assignment(3, 4);
  const fleet::FleetResult topo_result =
      fleet::run_fleet(setup.content, setup.view, setup.trace, config);
  const fleet::FleetMetrics topo_metrics = fleet::compute_fleet_metrics(topo_result);
  std::printf("\n=== sharded topology: 3 edges x 4 clients -> 1 core ===\n%s",
              fleet::summarize(topo_result, topo_metrics).c_str());
  // Per-path bottleneck attribution: binding_s is per-hop busy time of the
  // *path* (summed over its flows' wall clock), so a path's row sums to its
  // own busy seconds, not the fleet's.
  std::printf("\n=== bottleneck attribution (binding seconds per hop) ===\n");
  for (const fleet::PathSummary& path : topo_result.paths) {
    std::printf("  %-10s", path.name.c_str());
    for (std::size_t h = 0; h < path.hop_names.size(); ++h) {
      std::printf("  %s=%.1fs", path.hop_names[h].c_str(), path.binding_s[h]);
    }
    std::printf("\n");
  }
  return 0;
}
