// Reproduce the paper's per-player experiments (§3) and the §4 comparison:
// run each player model through its figure's scenario, print the selection
// timelines and stall accounting, then sweep all players across the standard
// traces and print the comparison table.
#include <cstdio>
#include <memory>

#include "core/compliance.h"
#include "core/coordinated_player.h"
#include "experiments/scenarios.h"
#include "experiments/tables.h"
#include "players/dashjs.h"
#include "players/exoplayer.h"
#include "players/shaka.h"

namespace {

using namespace demuxabr;
namespace ex = demuxabr::experiments;

void report(const ex::ExperimentSetup& setup, const SessionLog& log) {
  const QoeReport qoe = compute_qoe(log, setup.content.ladder(),
                                    setup.allowed.empty() ? nullptr : &setup.allowed);
  std::printf("== %s: %s ==\n", setup.id.c_str(), setup.description.c_str());
  std::printf("%s", summarize(log, qoe).c_str());
  std::printf("  timeline: %s\n\n", ex::render_selection_timeline(log).c_str());
}

}  // namespace

int main() {
  // --- §3.2 ExoPlayer ---
  {
    auto setup = ex::fig2a_exo_dash_audio_b();
    ExoPlayerModel player;
    report(setup, ex::run(setup, player));
  }
  {
    auto setup = ex::fig2b_exo_dash_audio_c();
    ExoPlayerModel player;
    report(setup, ex::run(setup, player));
  }
  {
    auto setup = ex::fig3_exo_hls_a3_first();
    ExoPlayerModel player;
    report(setup, ex::run(setup, player));
  }
  {
    auto setup = ex::fig3x_exo_hls_a1_first_5mbps();
    ExoPlayerModel player;
    report(setup, ex::run(setup, player));
  }
  // --- §3.3 Shaka ---
  {
    auto setup = ex::fig4a_shaka_hall_1mbps();
    ShakaPlayerModel player;
    report(setup, ex::run(setup, player));
  }
  {
    auto setup = ex::fig4b_shaka_hall_varying();
    ShakaPlayerModel player;
    report(setup, ex::run(setup, player));
  }
  // --- §3.4 dash.js ---
  {
    auto setup = ex::fig5_dashjs_700();
    DashJsPlayerModel player;
    report(setup, ex::run(setup, player));
  }
  // --- §4 coordinated player on the same scenarios ---
  {
    auto setup = ex::bestpractice_dash(ex::varying_600_trace(), "bp-varying600");
    CoordinatedPlayer player;
    report(setup, ex::run(setup, player));
  }

  // --- Cross-player sweep over the standard traces ---
  std::vector<ex::ComparisonRow> rows;
  for (const auto& named : ex::comparison_traces()) {
    for (int which = 0; which < 4; ++which) {
      std::unique_ptr<PlayerAdapter> player;
      ex::ExperimentSetup setup;
      switch (which) {
        case 0:
          setup = ex::plain_dash(named.trace, named.name);
          player = std::make_unique<ExoPlayerModel>();
          break;
        case 1:
          setup = ex::fig4a_shaka_hall_1mbps();
          setup.trace = named.trace;
          player = std::make_unique<ShakaPlayerModel>();
          break;
        case 2:
          setup = ex::plain_dash(named.trace, named.name);
          player = std::make_unique<DashJsPlayerModel>();
          break;
        case 3:
          setup = ex::bestpractice_dash(named.trace, named.name);
          player = std::make_unique<CoordinatedPlayer>();
          break;
      }
      const SessionLog log = ex::run(setup, *player);
      ex::ComparisonRow row;
      row.player = log.player_name;
      row.trace = named.name;
      row.qoe = compute_qoe(log, setup.content.ladder(),
                            setup.allowed.empty() ? nullptr : &setup.allowed);
      row.completed = log.completed;
      rows.push_back(row);
    }
  }
  std::printf("%s\n", ex::render_comparison_table(rows).c_str());
  return 0;
}
