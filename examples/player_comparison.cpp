// Reproduce the paper's per-player experiments (§3) and the §4 comparison:
// run each player model through its figure's scenario, print the selection
// timelines and stall accounting, then sweep all players across the standard
// traces and print the comparison table.
#include <cstdio>
#include <memory>

#include "core/compliance.h"
#include "core/coordinated_player.h"
#include "experiments/scenarios.h"
#include "experiments/sweep.h"
#include "experiments/tables.h"
#include "players/dashjs.h"
#include "players/exoplayer.h"
#include "players/shaka.h"

namespace {

using namespace demuxabr;
namespace ex = demuxabr::experiments;

void report(const ex::ExperimentSetup& setup, const SessionLog& log) {
  const QoeReport qoe = compute_qoe(log, setup.content.ladder(),
                                    setup.allowed.empty() ? nullptr : &setup.allowed);
  std::printf("== %s: %s ==\n", setup.id.c_str(), setup.description.c_str());
  std::printf("%s", summarize(log, qoe).c_str());
  std::printf("  timeline: %s\n\n", ex::render_selection_timeline(log).c_str());
}

}  // namespace

int main() {
  // --- §3.2 ExoPlayer ---
  {
    auto setup = ex::fig2a_exo_dash_audio_b();
    ExoPlayerModel player;
    report(setup, ex::run(setup, player));
  }
  {
    auto setup = ex::fig2b_exo_dash_audio_c();
    ExoPlayerModel player;
    report(setup, ex::run(setup, player));
  }
  {
    auto setup = ex::fig3_exo_hls_a3_first();
    ExoPlayerModel player;
    report(setup, ex::run(setup, player));
  }
  {
    auto setup = ex::fig3x_exo_hls_a1_first_5mbps();
    ExoPlayerModel player;
    report(setup, ex::run(setup, player));
  }
  // --- §3.3 Shaka ---
  {
    auto setup = ex::fig4a_shaka_hall_1mbps();
    ShakaPlayerModel player;
    report(setup, ex::run(setup, player));
  }
  {
    auto setup = ex::fig4b_shaka_hall_varying();
    ShakaPlayerModel player;
    report(setup, ex::run(setup, player));
  }
  // --- §3.4 dash.js ---
  {
    auto setup = ex::fig5_dashjs_700();
    DashJsPlayerModel player;
    report(setup, ex::run(setup, player));
  }
  // --- §4 coordinated player on the same scenarios ---
  {
    auto setup = ex::bestpractice_dash(ex::varying_600_trace(), "bp-varying600");
    CoordinatedPlayer player;
    report(setup, ex::run(setup, player));
  }

  // --- Cross-player sweep over the standard traces (parallel fan-out via
  // --- SweepRunner; per-job results are identical at any thread count) ---
  const ex::SweepResult sweep = ex::SweepRunner().run(ex::comparison_matrix());
  std::printf("%s\n",
              ex::render_comparison_table(ex::comparison_rows(sweep)).c_str());
  std::printf("sweep: %zu sessions in %.2fs wall (%d threads, %.1f sessions/s, "
              "%.0f sim-s per wall-s)\n",
              sweep.summary.job_count, sweep.summary.wall_s, sweep.summary.threads,
              sweep.summary.sessions_per_s, sweep.summary.simulated_per_wall);
  return 0;
}
