// The §1 motivation quantified: storage footprint and CDN cache behaviour of
// muxed vs. demuxed packaging for a population of viewers.
#include <cstdio>

#include "httpsim/workload.h"
#include "media/content.h"

using namespace demuxabr;

int main() {
  const Content content = make_drama_content();

  const StorageReport storage = compare_storage(content);
  std::printf("origin storage (M=%zu video x N=%zu audio tracks):\n",
              content.ladder().video_count(), content.ladder().audio_count());
  std::printf("  demuxed: %8.1f MB in %zu objects (M + N tracks)\n",
              static_cast<double>(storage.demuxed_bytes) / 1e6, storage.demuxed_objects);
  std::printf("  muxed:   %8.1f MB in %zu objects (M x N tracks)\n",
              static_cast<double>(storage.muxed_bytes) / 1e6, storage.muxed_objects);
  std::printf("  muxed/demuxed ratio: %.2fx\n\n", storage.muxed_to_demuxed_ratio());

  for (double cache_fraction : {0.0, 0.5, 0.25}) {
    WorkloadConfig config;
    config.num_users = 200;
    config.cache_fraction = cache_fraction;
    const auto results = run_cdn_comparison(content, config);
    std::printf("viewer population: %d users, zipf %.1f, cache %s\n", config.num_users,
                config.zipf_exponent,
                cache_fraction == 0.0
                    ? "unbounded"
                    : (std::to_string(static_cast<int>(cache_fraction * 100)) +
                       "% of demuxed catalog")
                          .c_str());
    for (const WorkloadResult& r : results) {
      std::printf(
          "  %-7s: hit ratio %.3f, byte hit ratio %.3f, origin egress %.1f MB\n",
          storage_mode_name(r.mode), r.cdn.hit_ratio(), r.cdn.byte_hit_ratio(),
          static_cast<double>(r.cdn.bytes_from_origin) / 1e6);
    }
    std::printf("\n");
  }
  return 0;
}
