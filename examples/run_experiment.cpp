// run_experiment: parameterized CLI over the whole framework — pick a player
// model, a protocol/manifest flavour, and a bandwidth profile; get the QoE
// summary and (optionally) the full CSV series.
//
//   run_experiment --player coordinated --protocol dash-enhanced
//                  --trace square:300:900:8:8 --csv-out out/
//   run_experiment --player shaka --protocol hls-all --trace fixed:1000
//   run_experiment --player coordinated-mpc --trace walk:300:1500:150:7
//                  --audio-trace fixed:200 --genre music --device tv
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>

#include "core/compliance.h"
#include "core/coordinated_player.h"
#include "experiments/tables.h"
#include "manifest/builder.h"
#include "players/dashjs.h"
#include "players/exoplayer.h"
#include "players/shaka.h"
#include "sim/session.h"
#include "util/csv.h"
#include "util/strings.h"

namespace {

using namespace demuxabr;

struct Options {
  std::string player = "coordinated";
  std::string protocol = "dash-enhanced";
  std::string trace_spec = "square:300:900:8:8";
  std::string audio_trace_spec;  // empty = shared bottleneck
  double duration_s = 300.0;
  double chunk_s = 4.0;
  double rtt_s = 0.05;
  std::uint64_t seed = 42;
  std::string genre = "drama";
  std::string device = "tv";
  std::string csv_out;
  bool help = false;
};

void usage() {
  std::printf(
      "usage: run_experiment [options]\n"
      "  --player      exo | shaka | dashjs | coordinated | coordinated-mpc\n"
      "  --protocol    dash | dash-enhanced | hls-all | hls-sub | hls-curated\n"
      "  --trace       fixed:<kbps> | square:<low>:<high>:<lo_s>:<hi_s> |\n"
      "                walk:<min>:<max>:<vol>:<seed> | csv:<file>\n"
      "  --audio-trace same syntax; gives audio its own network path\n"
      "  --duration    content seconds (default 300)\n"
      "  --chunk       chunk seconds (default 4)\n"
      "  --rtt         request RTT seconds (default 0.05)\n"
      "  --seed        content VBR seed (default 42)\n"
      "  --genre       drama | music | action | news | sports\n"
      "  --device      phone | tablet | tv\n"
      "  --csv-out     directory for the full series dump\n");
}

std::optional<BandwidthTrace> parse_trace(const std::string& spec) {
  const std::vector<std::string> parts = split(spec, ':');
  auto num = [&](std::size_t i) { return parse_double(parts[i]).value_or(-1.0); };
  if (parts[0] == "fixed" && parts.size() == 2 && num(1) > 0) {
    return BandwidthTrace::constant(num(1));
  }
  if (parts[0] == "square" && parts.size() == 5 && num(1) > 0 && num(2) > 0 &&
      num(3) > 0 && num(4) > 0) {
    return BandwidthTrace::square_wave(num(1), num(2), num(3), num(4), true);
  }
  if (parts[0] == "walk" && parts.size() == 5 && num(1) > 0 && num(2) >= num(1)) {
    return BandwidthTrace::random_walk(num(1), num(2), 2.0, 300.0, num(3),
                                       static_cast<std::uint64_t>(num(4)));
  }
  if (parts[0] == "csv" && parts.size() == 2) {
    const auto text = read_file(parts[1]);
    if (!text.ok()) {
      std::fprintf(stderr, "error: %s\n", text.error().c_str());
      return std::nullopt;
    }
    auto trace = BandwidthTrace::from_csv(*text);
    if (!trace.ok()) {
      std::fprintf(stderr, "error: %s\n", trace.error().c_str());
      return std::nullopt;
    }
    return *trace;
  }
  std::fprintf(stderr, "error: bad trace spec '%s'\n", spec.c_str());
  return std::nullopt;
}

std::optional<Options> parse_args(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", arg.c_str());
        return std::nullopt;
      }
      return std::string(argv[++i]);
    };
    if (arg == "--help" || arg == "-h") {
      options.help = true;
      return options;
    }
    std::optional<std::string> v;
    if (arg == "--player" && (v = value())) options.player = *v;
    else if (arg == "--protocol" && (v = value())) options.protocol = *v;
    else if (arg == "--trace" && (v = value())) options.trace_spec = *v;
    else if (arg == "--audio-trace" && (v = value())) options.audio_trace_spec = *v;
    else if (arg == "--duration" && (v = value())) options.duration_s = parse_double(*v).value_or(300.0);
    else if (arg == "--chunk" && (v = value())) options.chunk_s = parse_double(*v).value_or(4.0);
    else if (arg == "--rtt" && (v = value())) options.rtt_s = parse_double(*v).value_or(0.05);
    else if (arg == "--seed" && (v = value())) options.seed = static_cast<std::uint64_t>(parse_int(*v).value_or(42));
    else if (arg == "--genre" && (v = value())) options.genre = *v;
    else if (arg == "--device" && (v = value())) options.device = *v;
    else if (arg == "--csv-out" && (v = value())) options.csv_out = *v;
    else {
      std::fprintf(stderr, "error: unknown argument '%s'\n", arg.c_str());
      return std::nullopt;
    }
    if (!v.has_value() && arg != "--help") return std::nullopt;
  }
  return options;
}

CurationPolicy make_policy(const Options& options) {
  CurationPolicy policy;
  if (options.genre == "music") policy.genre = ContentGenre::kMusic;
  else if (options.genre == "action") policy.genre = ContentGenre::kAction;
  else if (options.genre == "news") policy.genre = ContentGenre::kNews;
  else if (options.genre == "sports") policy.genre = ContentGenre::kSports;
  else policy.genre = ContentGenre::kDrama;
  if (options.device == "phone") policy.device.screen = DeviceProfile::Screen::kPhone;
  else if (options.device == "tablet") policy.device.screen = DeviceProfile::Screen::kTablet;
  else {
    policy.device.screen = DeviceProfile::Screen::kTv;
    policy.device.sound = DeviceProfile::Sound::kSurround;
  }
  return policy;
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = parse_args(argc, argv);
  if (!parsed.has_value()) {
    usage();
    return 2;
  }
  const Options& options = *parsed;
  if (options.help) {
    usage();
    return 0;
  }

  // Content.
  VbrModelParams vbr;
  vbr.seed = options.seed;
  const Content content = ContentBuilder(youtube_drama_ladder())
                              .duration_s(options.duration_s)
                              .chunk_duration_s(options.chunk_s)
                              .vbr_params(vbr)
                              .build();
  const CurationPolicy policy = make_policy(options);

  // Manifest & view.
  ManifestView view;
  std::vector<AvCombination> allowed;
  if (options.protocol == "dash") {
    view = view_from_mpd(build_dash_mpd(content));
  } else if (options.protocol == "dash-enhanced") {
    allowed = curate_staircase(content.ladder(), policy);
    const auto mpd = parse_mpd(serialize_mpd(build_enhanced_mpd(content, policy)));
    view = view_from_mpd(*mpd);
  } else if (options.protocol == "hls-all") {
    allowed = all_combinations(content.ladder());
    view = view_from_hls(build_hall_master(content), nullptr);
  } else if (options.protocol == "hls-sub") {
    allowed = curated_subset(content.ladder());
    view = view_from_hls(build_hsub_master(content), nullptr);
  } else if (options.protocol == "hls-curated") {
    allowed = curate_staircase(content.ladder(), policy);
    const auto playlists = build_bestpractice_media_playlists(content);
    view = view_from_hls(build_curated_hls_master(content, policy), &playlists);
  } else {
    std::fprintf(stderr, "error: unknown protocol '%s'\n", options.protocol.c_str());
    return 2;
  }

  // Player.
  std::unique_ptr<PlayerAdapter> player;
  if (options.player == "exo") {
    player = std::make_unique<ExoPlayerModel>();
  } else if (options.player == "shaka") {
    player = std::make_unique<ShakaPlayerModel>();
  } else if (options.player == "dashjs") {
    if (view.protocol != Protocol::kDash) {
      std::fprintf(stderr, "error: dashjs supports DASH protocols only\n");
      return 2;
    }
    player = std::make_unique<DashJsPlayerModel>();
  } else if (options.player == "coordinated" || options.player == "coordinated-mpc") {
    CoordinatedConfig config;
    config.fallback_policy = policy;
    if (options.player == "coordinated-mpc") config.algorithm = AbrAlgorithm::kMpc;
    if (!options.audio_trace_spec.empty()) config.per_path_estimation = true;
    player = std::make_unique<CoordinatedPlayer>(config);
  } else {
    std::fprintf(stderr, "error: unknown player '%s'\n", options.player.c_str());
    return 2;
  }

  // Network.
  const auto trace = parse_trace(options.trace_spec);
  if (!trace.has_value()) return 2;
  Network network = Network::shared(*trace, options.rtt_s);
  if (!options.audio_trace_spec.empty()) {
    const auto audio_trace = parse_trace(options.audio_trace_spec);
    if (!audio_trace.has_value()) return 2;
    network = Network::split(*trace, *audio_trace, options.rtt_s);
  }

  // Run.
  const SessionLog log = run_session(content, view, network, *player);
  const QoeReport qoe =
      compute_qoe(log, content.ladder(), allowed.empty() ? nullptr : &allowed);
  std::printf("%s", summarize(log, qoe).c_str());
  std::printf("timeline: %s\n", demuxabr::experiments::render_selection_timeline(log).c_str());
  if (!allowed.empty()) {
    const ComplianceReport compliance = check_compliance(log, allowed);
    std::printf("manifest compliance: %s (%d/%d chunks off-manifest)\n",
                compliance.compliant() ? "OK" : "VIOLATED",
                compliance.violating_chunks, compliance.total_chunks);
  }

  // Optional CSV dump.
  if (!options.csv_out.empty()) {
    namespace fs = std::filesystem;
    fs::create_directories(options.csv_out);
    const fs::path dir(options.csv_out);
    write_file((dir / "selection.csv").string(), selection_csv(log));
    write_file((dir / "video_buffer_s.csv").string(),
               log.video_buffer_s.resample(0, log.end_time_s, 1.0).to_csv("video_buffer_s"));
    write_file((dir / "audio_buffer_s.csv").string(),
               log.audio_buffer_s.resample(0, log.end_time_s, 1.0).to_csv("audio_buffer_s"));
    write_file((dir / "estimate_kbps.csv").string(),
               log.bandwidth_estimate_kbps.resample(0, log.end_time_s, 1.0)
                   .to_csv("estimate_kbps"));
    write_file((dir / "trace.csv").string(), trace->to_csv());
    std::printf("series written to %s\n", options.csv_out.c_str());
  }
  return log.completed ? 0 : 1;
}
