// Channel: the contract between a StreamingSession's flows and whatever
// carries them. A flow joins/leaves (processor-sharing population), reads
// the per-flow virtual-time service integral V(t), asks when V reaches a
// target, and files that target in a completion registry the fleet event
// engine can query per carrier instead of per flow.
//
// Two implementations exist:
//  * Link (net/link.h) — one bottleneck pipe; V(t) = ∫ cap/max(1,N).
//  * fleet::PathChannel (fleet/topology.h) — an ordered multi-link path
//    (client → edge → core); V(t) integrates the *minimum* of the per-link
//    fair shares, so a flow is throttled by whichever hop is currently the
//    binding constraint.
//
// Everything a session derives from a Channel is a pure function of state
// that only mutates at flow-population changes — the invariant that makes
// the barrier and event-heap fleet engines bit-identical (DESIGN.md §7).
#pragma once

#include <cstdint>

namespace demuxabr {

class Channel {
 public:
  virtual ~Channel() = default;

  /// Register one flow at time `now` (>= every earlier mutation time).
  /// Returns the service integral at `now` — the joining flow's v_start.
  virtual double add_flow(double now) = 0;

  /// Unregister one flow at time `now`. Removing from an idle carrier is a
  /// flow-accounting bug in the caller (double remove).
  virtual void remove_flow(double now) = 0;

  [[nodiscard]] virtual int active_flows() const = 0;

  /// Bumped on every population change; the fleet event engine uses it to
  /// detect that completion predictions keyed on this carrier went stale.
  [[nodiscard]] virtual std::uint64_t epoch() const = 0;

  /// Per-flow cumulative service [kbit] at `t` >= the last mutation time.
  /// Pure: repeated reads at any t give identical values.
  [[nodiscard]] virtual double service_at(double t) const = 0;

  /// Earliest time at which the service integral reaches `v_target`,
  /// assuming the current flow population persists. Returns the last
  /// mutation time when already served; +infinity when never.
  [[nodiscard]] virtual double time_when_service_reaches(double v_target) const = 0;

  // --- Completion registry (virtual-service targets, see net/link.h). ---
  virtual void register_completion(std::uint32_t token, double v_target_kbit) = 0;
  virtual void unregister_completion(std::uint32_t token) = 0;
  [[nodiscard]] virtual bool has_completions() const = 0;
  /// Token of the earliest finisher (smallest target, then smallest token).
  /// Only valid when has_completions().
  [[nodiscard]] virtual std::uint32_t earliest_completion_token() const = 0;
  /// Wall-clock time of the earliest registered completion; +infinity when
  /// none are registered.
  [[nodiscard]] virtual double earliest_completion_time() const = 0;

  /// Raw capacity at time t — for a path, the minimum hop capacity (the
  /// most a single unopposed flow could ever receive).
  [[nodiscard]] virtual double capacity_kbps(double t) const = 0;
};

}  // namespace demuxabr
