// Bandwidth-trace corpus: seeded *trace-class* generators behind the
// BandwidthTrace interface (ROADMAP "bandwidth-trace corpus + robustness
// leaderboard"). The paper's §3 experiments run `tc`-shaped synthetic
// patterns; "Understanding video streaming algorithms in the wild" shows
// player rankings flip across real network classes, so the corpus models
// four canonical classes — LTE-like cellular with handoff drops, flaky-wifi
// on/off bursts, long-fat high-BDP pipes with slow oscillation, and
// sawtooth oscillation — each as a family parameterized by one seed.
//
// Every generator draws its class parameters (target mean, burst rates,
// dwell scales, oscillation period…) from declared per-class ranges through
// a single Rng seeded by the caller, then renormalizes the trajectory's
// time-weighted mean onto the sampled target, so each class carries a
// *statistical envelope* — hard rate floor/ceiling, a mean band, a
// coefficient-of-variation band, a boundary-density floor and a maximum
// dwell — that holds for every seed. The envelope is a checkable contract:
// tests/test_net_trace_corpus.cpp asserts it per class over many seeds, and
// the leaderboard engine (experiments/leaderboard.h) validates every trace
// it samples before running players over it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/bandwidth_trace.h"

namespace demuxabr {

/// The statistical contract a trace class guarantees for every seed.
/// All statistics are time-weighted over one period (trace_moments()).
struct TraceEnvelope {
  double floor_kbps = 1.0;            ///< every segment rate >= floor
  double ceil_kbps = 1e9;             ///< every segment rate <= ceiling
  double mean_lo_kbps = 0.0;          ///< time-weighted mean within
  double mean_hi_kbps = 1e9;          ///< [mean_lo, mean_hi]
  double cv_lo = 0.0;                 ///< coefficient of variation within
  double cv_hi = 10.0;                ///< [cv_lo, cv_hi]
  double min_changes_per_min = 0.0;   ///< rate genuinely varies
  double max_dwell_s = 1e9;           ///< no flat stretch longer than this
};

/// Time-weighted statistics of one trace period. For an aperiodic trace the
/// final (infinite) segment is weighted by the mean of the finite segment
/// durations (1 s when it is the only segment), so the numbers stay
/// meaningful for CSV-loaded traces too.
struct TraceMoments {
  double mean_kbps = 0.0;
  double variance = 0.0;  ///< time-weighted population variance [kbps^2]
  double cv = 0.0;        ///< stddev / mean (0 when mean is 0)
  double min_kbps = 0.0;
  double max_kbps = 0.0;
  double changes_per_min = 0.0;  ///< actual rate *changes* (not boundaries)
  double max_dwell_s = 0.0;      ///< longest run of constant rate
  std::size_t segments = 0;
};

TraceMoments trace_moments(const BandwidthTrace& trace);

/// Empty string when `trace` satisfies `envelope`; otherwise a description
/// of the first violation (the tests' and leaderboard's validity gate).
std::string check_envelope(const BandwidthTrace& trace, const TraceEnvelope& envelope);

// --- The four corpus generators. Each returns a periodic trace with
// --- period == duration_s; all parameters are drawn from one Rng(seed). ---

/// LTE-like cellular: five sticky coverage states (deep fade → excellent)
/// with exponential dwells and multiplicative per-segment fading jitter,
/// punctuated by periodic *handoff drops* — sub-second collapses to tens of
/// kbps as the UE re-attaches — every ~15-35 s.
BandwidthTrace lte_trace(double duration_s, std::uint64_t seed);

/// Flaky wifi: on/off bursts. Long good-throughput bursts alternate with
/// short near-outage gaps (interference / channel contention), both with
/// exponential dwells; burst rates carry multiplicative jitter.
BandwidthTrace flaky_wifi_trace(double duration_s, std::uint64_t seed);

/// Long-fat high-BDP pipe: tens of Mbps with a *slow* sinusoidal capacity
/// oscillation (minutes-scale period) plus small discretization noise — the
/// regime where estimators see an almost-flat but drifting channel.
BandwidthTrace long_fat_trace(double duration_s, std::uint64_t seed);

/// Oscillating sawtooth: capacity ramps linearly from a low floor to k× the
/// floor over tens of seconds, then collapses back and repeats — the
/// adversarial pattern for throughput-EWMA players.
BandwidthTrace oscillating_trace(double duration_s, std::uint64_t seed);

/// One registered trace class: name, envelope contract and generator.
struct TraceClass {
  std::string name;
  std::string description;
  TraceEnvelope envelope;
  BandwidthTrace (*generate)(double duration_s, std::uint64_t seed);
};

/// All corpus classes in canonical order: lte-handoff, flaky-wifi,
/// long-fat, oscillating. The order is load-bearing: the leaderboard's
/// class axis and every ranking table iterate it.
const std::vector<TraceClass>& trace_class_registry();

/// Registry entry by name; nullptr when unknown.
const TraceClass* find_trace_class(const std::string& name);

/// Scale every segment rate by `factor` (> 0), preserving boundaries and
/// periodicity — per-capita trace scaling for fleet runs (a fleet of N
/// clients shares an N×-provisioned pipe so the per-client operating point
/// matches the single-session experiments).
BandwidthTrace scale_trace(const BandwidthTrace& trace, double factor);

}  // namespace demuxabr
