#include "net/bandwidth_trace.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

#include "util/csv.h"
#include "util/rng.h"
#include "util/strings.h"

namespace demuxabr {

BandwidthTrace::BandwidthTrace(std::vector<Segment> segments, double period_s)
    : segments_(std::move(segments)), period_s_(period_s) {
  assert(!segments_.empty());
  assert(segments_.front().start_s == 0.0);
}

BandwidthTrace BandwidthTrace::constant(double kbps) {
  // Zero is allowed: a provisioned-but-dark pipe (a topology link no flow
  // ever rides) has capacity 0 and closes its books via the 0/0
  // utilization guard. Negative capacity is always a caller bug.
  assert(kbps >= 0.0);
  return BandwidthTrace({{0.0, kbps}}, 0.0);
}

BandwidthTrace BandwidthTrace::square_wave(double low_kbps, double high_kbps,
                                           double low_duration_s, double high_duration_s,
                                           bool start_high) {
  assert(low_duration_s > 0.0 && high_duration_s > 0.0);
  std::vector<Segment> segments;
  if (start_high) {
    segments.push_back({0.0, high_kbps});
    segments.push_back({high_duration_s, low_kbps});
  } else {
    segments.push_back({0.0, low_kbps});
    segments.push_back({low_duration_s, high_kbps});
  }
  return BandwidthTrace(std::move(segments), low_duration_s + high_duration_s);
}

BandwidthTrace BandwidthTrace::steps(const std::vector<Step>& steps, bool repeat) {
  assert(!steps.empty());
  std::vector<Segment> segments;
  double t = 0.0;
  for (const Step& step : steps) {
    assert(step.duration_s > 0.0);
    segments.push_back({t, step.kbps});
    t += step.duration_s;
  }
  return BandwidthTrace(std::move(segments), repeat ? t : 0.0);
}

BandwidthTrace BandwidthTrace::random_walk(double min_kbps, double max_kbps,
                                           double step_interval_s, double total_duration_s,
                                           double volatility_kbps, std::uint64_t seed) {
  assert(min_kbps > 0.0 && max_kbps >= min_kbps);
  assert(step_interval_s > 0.0 && total_duration_s >= step_interval_s);
  Rng rng(seed);
  std::vector<Segment> segments;
  double rate = (min_kbps + max_kbps) / 2.0;
  for (double t = 0.0; t < total_duration_s; t += step_interval_s) {
    segments.push_back({t, rate});
    rate = std::clamp(rate + rng.normal(0.0, volatility_kbps), min_kbps, max_kbps);
  }
  return BandwidthTrace(std::move(segments), total_duration_s);
}

BandwidthTrace BandwidthTrace::markov(const std::vector<MarkovState>& states,
                                      const std::vector<std::vector<double>>& transitions,
                                      double total_duration_s, double jitter_fraction,
                                      std::uint64_t seed) {
  assert(!states.empty());
  assert(transitions.size() == states.size());
  for ([[maybe_unused]] const auto& row : transitions) assert(row.size() == states.size());
  assert(total_duration_s > 0.0);

  Rng rng(seed);
  std::vector<Segment> segments;
  std::size_t state = 0;
  double t = 0.0;
  while (t < total_duration_s) {
    const MarkovState& s = states[state];
    const double dwell = std::max(0.5, rng.exponential(1.0 / s.mean_dwell_s));
    const double jitter =
        1.0 + std::clamp(rng.normal(0.0, jitter_fraction), -0.9, 3.0);
    segments.push_back({t, std::max(1.0, s.rate_kbps * jitter)});
    t += dwell;
    state = rng.weighted_index(transitions[state]);
  }
  return BandwidthTrace(std::move(segments), total_duration_s);
}

BandwidthTrace BandwidthTrace::cellular(double total_duration_s, std::uint64_t seed) {
  // Five LTE-like states: deep fade, edge-of-cell, fair, good, excellent.
  const std::vector<MarkovState> states = {
      {150.0, 4.0}, {500.0, 6.0}, {1500.0, 8.0}, {4000.0, 8.0}, {9000.0, 6.0}};
  // Sticky, mostly-neighbour transitions.
  const std::vector<std::vector<double>> transitions = {
      {0.3, 0.5, 0.15, 0.05, 0.0},
      {0.2, 0.3, 0.4, 0.1, 0.0},
      {0.05, 0.25, 0.3, 0.35, 0.05},
      {0.0, 0.1, 0.3, 0.4, 0.2},
      {0.0, 0.05, 0.15, 0.4, 0.4},
  };
  return markov(states, transitions, total_duration_s, /*jitter_fraction=*/0.15, seed);
}

Result<BandwidthTrace> BandwidthTrace::from_csv(const std::string& csv_text,
                                                double period_s) {
  if (period_s < 0.0) return Error{"trace csv period must be >= 0"};
  auto doc = parse_csv(csv_text);
  if (!doc.ok()) return Error{doc.error()};
  if (doc->header.size() < 2) return Error{"trace csv needs columns t,kbps"};
  std::vector<Segment> segments;
  for (const auto& row : doc->rows) {
    const auto t = parse_double(row[0]);
    const auto kbps = parse_double(row[1]);
    if (!t.has_value() || !kbps.has_value()) return Error{"trace csv has non-numeric cell"};
    if (*kbps <= 0.0) return Error{"trace csv has non-positive rate"};
    if (!segments.empty() && *t <= segments.back().start_s) {
      return Error{"trace csv times must be strictly increasing"};
    }
    segments.push_back({*t, *kbps});
  }
  if (segments.empty()) return Error{"trace csv has no rows"};
  if (segments.front().start_s != 0.0) return Error{"trace csv must start at t=0"};
  if (period_s > 0.0 && period_s <= segments.back().start_s) {
    return Error{"trace csv period must exceed the last segment start"};
  }
  return BandwidthTrace(std::move(segments), period_s);
}

double BandwidthTrace::rate_kbps_slow(double t) const {
  assert(!segments_.empty());
  if (t < 0.0) t = 0.0;
  double local = t;
  if (period_s_ > 0.0) {
    double base = std::floor(t / period_s_) * period_s_;
    while (base + period_s_ <= t) base += period_s_;
    local = t - base;
  }
  // Mirror next_change_after's merge slack: a query landing within eps
  // below a boundary belongs to the segment that starts at that boundary.
  // Without this, a walker that stepped to `base + s.start_s` (whose local
  // reduction rounds just under s.start_s) would hold the previous
  // segment's rate across the entire next segment, and walkers with
  // different boundary sets would integrate different rate functions.
  const double eps = 1e-12 + t * 4e-16;
  if (period_s_ > 0.0 && local + eps >= period_s_) return segments_.front().kbps;
  // Last segment whose start <= local (+ slack).
  auto it = std::upper_bound(segments_.begin(), segments_.end(), local + eps,
                             [](double x, const Segment& s) { return x < s.start_s; });
  return std::prev(it)->kbps;
}

double BandwidthTrace::next_change_after_slow(double t) const {
  if (t < 0.0) t = 0.0;
  double base = 0.0;
  double local = t;
  if (period_s_ > 0.0) {
    base = std::floor(t / period_s_) * period_s_;
    // floor(t/period)*period can land a full period below t when t sits
    // exactly on a wrap boundary in floating point (t/period rounds just
    // under the integer). Renormalize so base + period > t strictly —
    // otherwise we'd return t itself and every lazy-integration walk that
    // steps boundary-to-boundary would stall there, silently truncating
    // service/utilization integrals.
    while (base + period_s_ <= t) base += period_s_;
    local = t - base;
  }
  // The merge slack needs a relative term: once t is large enough that
  // ulp(t) approaches 1e-12, a boundary passing the absolute test can still
  // round back to exactly t in `base + s.start_s`, stalling callers the
  // same way the wrap case above would.
  const double eps = 1e-12 + t * 4e-16;
  for (const Segment& s : segments_) {
    if (s.start_s > local + eps) return base + s.start_s;
  }
  if (period_s_ > 0.0) return base + period_s_;  // wraps to segment 0
  return std::numeric_limits<double>::infinity();
}

double BandwidthTrace::average_kbps(double t0, double t1) const {
  assert(t1 > t0);
  double area = 0.0;
  double t = t0;
  // Walk breakpoints; bounded iterations for safety.
  for (int guard = 0; guard < 1000000 && t < t1; ++guard) {
    const double next = std::min(t1, next_change_after(t));
    area += rate_kbps(t) * (next - t);
    t = next;
  }
  return area / (t1 - t0);
}

std::string BandwidthTrace::to_csv() const {
  std::ostringstream out;
  out << "t,kbps\n";
  // %.17g is round-trip exact for doubles: from_csv(to_csv()) reconstructs
  // every boundary and rate bit-for-bit (the corpus round-trip tests rely
  // on it; %.3f silently quantized sampled boundary times).
  for (const Segment& s : segments_) {
    out << format("%.17g,%.17g\n", s.start_s, s.kbps);
  }
  return out.str();
}

}  // namespace demuxabr
