#include "net/trace_corpus.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/rng.h"
#include "util/strings.h"

namespace demuxabr {
namespace {

/// Distinct per-class salts so the four classes draw independent parameter
/// streams from the same caller seed.
constexpr std::uint64_t kLteSalt = 0x17E1A11D0FF5ULL;
constexpr std::uint64_t kWifiSalt = 0xF1A67F1A67F1ULL;
constexpr std::uint64_t kLongFatSalt = 0x10F5B16F57ULL;
constexpr std::uint64_t kSawSalt = 0x05C111A7E5ULL;

struct RawStep {
  double duration_s;
  double kbps;
};

/// Trim the trajectory to exactly `duration_s`, renormalize its
/// time-weighted mean onto `target_mean`, clamp every rate into
/// [floor, ceil], merge equal-rate neighbours, and wrap the result in a
/// periodic BandwidthTrace (period == duration_s). The renormalization is
/// what turns "plausible trajectory" into "envelope contract": whatever the
/// dwell draws did, the mean lands on the sampled target (up to the rare
/// clamp), so the per-class mean band holds for every seed.
BandwidthTrace finish_trace(std::vector<RawStep> steps, double duration_s,
                            double target_mean, double floor_kbps, double ceil_kbps) {
  assert(!steps.empty());
  // Trim to the exact duration; fold a sub-50 ms tail into the last step so
  // no degenerate sliver segment survives.
  std::vector<RawStep> trimmed;
  double t = 0.0;
  for (RawStep& step : steps) {
    if (t >= duration_s) break;
    step.duration_s = std::min(step.duration_s, duration_s - t);
    t += step.duration_s;
    trimmed.push_back(step);
  }
  const double remainder = duration_s - t;
  if (remainder > 0.0) trimmed.back().duration_s += remainder;

  double area = 0.0;
  for (const RawStep& step : trimmed) area += step.duration_s * step.kbps;
  const double raw_mean = area / duration_s;
  const double factor = raw_mean > 0.0 ? target_mean / raw_mean : 1.0;
  for (RawStep& step : trimmed) {
    step.kbps = std::clamp(step.kbps * factor, floor_kbps, ceil_kbps);
  }

  std::vector<BandwidthTrace::Step> merged;
  for (const RawStep& step : trimmed) {
    if (!merged.empty() && merged.back().kbps == step.kbps) {
      merged.back().duration_s += step.duration_s;
    } else {
      merged.push_back({step.duration_s, step.kbps});
    }
  }
  return BandwidthTrace::steps(merged, /*repeat=*/true);
}

double clamped_exponential(Rng& rng, double mean, double lo, double hi) {
  return std::clamp(rng.exponential(1.0 / mean), lo, hi);
}

double multiplicative_jitter(Rng& rng, double stddev, double lo, double hi) {
  return std::clamp(1.0 + rng.normal(0.0, stddev), lo, hi);
}

}  // namespace

BandwidthTrace lte_trace(double duration_s, std::uint64_t seed) {
  assert(duration_s > 0.0);
  Rng rng(seed ^ kLteSalt);
  const double target_mean = rng.uniform(1800.0, 3200.0);

  // Five coverage states, sticky mostly-neighbour transitions (the canned
  // cellular() shape), with per-segment fading jitter.
  const double state_kbps[5] = {150.0, 500.0, 1500.0, 4000.0, 9000.0};
  const double state_dwell_s[5] = {3.0, 5.0, 7.0, 7.0, 5.0};
  const std::vector<std::vector<double>> transitions = {
      {0.3, 0.5, 0.15, 0.05, 0.0},
      {0.2, 0.3, 0.4, 0.1, 0.0},
      {0.05, 0.25, 0.3, 0.35, 0.05},
      {0.0, 0.1, 0.3, 0.4, 0.2},
      {0.0, 0.05, 0.15, 0.4, 0.4},
  };

  std::vector<RawStep> steps;
  std::size_t state = 2;  // start in fair coverage
  double t = 0.0;
  double next_handoff = rng.uniform(15.0, 35.0);
  while (t < duration_s) {
    if (t >= next_handoff) {
      // Handoff drop: the UE re-attaches; throughput collapses for well
      // under two seconds.
      const double drop_s = rng.uniform(0.4, 1.5);
      steps.push_back({drop_s, rng.uniform(40.0, 120.0)});
      t += drop_s;
      next_handoff = t + rng.uniform(15.0, 35.0);
      continue;
    }
    const double dwell = clamped_exponential(rng, state_dwell_s[state], 0.5, 15.0);
    const double jitter = multiplicative_jitter(rng, 0.12, 0.6, 1.6);
    steps.push_back({dwell, state_kbps[state] * jitter});
    t += dwell;
    state = rng.weighted_index(transitions[state]);
  }
  return finish_trace(std::move(steps), duration_s, target_mean, 20.0, 20000.0);
}

BandwidthTrace flaky_wifi_trace(double duration_s, std::uint64_t seed) {
  assert(duration_s > 0.0);
  Rng rng(seed ^ kWifiSalt);
  const double target_mean = rng.uniform(2500.0, 5500.0);
  const double on_kbps = rng.uniform(4000.0, 9000.0);
  const double off_kbps = rng.uniform(30.0, 90.0);
  const double on_mean_s = rng.uniform(3.0, 8.0);
  const double off_mean_s = rng.uniform(0.6, 2.0);

  std::vector<RawStep> steps;
  double t = 0.0;
  bool on = true;
  while (t < duration_s) {
    if (on) {
      const double dwell = clamped_exponential(rng, on_mean_s, 0.4, 20.0);
      steps.push_back({dwell, on_kbps * multiplicative_jitter(rng, 0.2, 0.5, 1.8)});
      t += dwell;
    } else {
      const double dwell = clamped_exponential(rng, off_mean_s, 0.2, 6.0);
      steps.push_back({dwell, off_kbps * rng.uniform(0.7, 1.3)});
      t += dwell;
    }
    on = !on;
  }
  return finish_trace(std::move(steps), duration_s, target_mean, 5.0, 30000.0);
}

BandwidthTrace long_fat_trace(double duration_s, std::uint64_t seed) {
  assert(duration_s > 0.0);
  Rng rng(seed ^ kLongFatSalt);
  const double target_mean = rng.uniform(15000.0, 35000.0);
  const double amplitude = rng.uniform(0.15, 0.35);
  const double period_s = rng.uniform(60.0, 150.0);
  const double phase = rng.uniform(0.0, 2.0 * 3.14159265358979323846);

  std::vector<RawStep> steps;
  double t = 0.0;
  while (t < duration_s) {
    const double dt = rng.uniform(2.0, 5.0);
    const double swell =
        1.0 + amplitude * std::sin(2.0 * 3.14159265358979323846 * t / period_s + phase);
    const double noise = multiplicative_jitter(rng, 0.03, 0.9, 1.1);
    steps.push_back({dt, target_mean * swell * noise});
    t += dt;
  }
  return finish_trace(std::move(steps), duration_s, target_mean, 6000.0, 60000.0);
}

BandwidthTrace oscillating_trace(double duration_s, std::uint64_t seed) {
  assert(duration_s > 0.0);
  Rng rng(seed ^ kSawSalt);
  const double target_mean = rng.uniform(800.0, 2000.0);
  const double ratio = rng.uniform(3.0, 6.0);
  const double ramp_s = rng.uniform(20.0, 50.0);
  const double step_s = rng.uniform(1.0, 3.0);
  // lo placed so the sawtooth midpoint sits at the target mean; the
  // renormalization in finish_trace() then only corrects the small
  // quantization bias of the staircase.
  const double lo = 2.0 * target_mean / (1.0 + ratio);
  const double hi = lo * ratio;
  const int ramp_steps = std::max(2, static_cast<int>(std::ceil(ramp_s / step_s)));

  std::vector<RawStep> steps;
  double t = 0.0;
  int j = 0;
  while (t < duration_s) {
    const double frac = static_cast<double>(j % ramp_steps) /
                        static_cast<double>(ramp_steps - 1);
    steps.push_back({step_s, lo + (hi - lo) * frac});
    t += step_s;
    ++j;
  }
  return finish_trace(std::move(steps), duration_s, target_mean, 80.0, 16000.0);
}

TraceMoments trace_moments(const BandwidthTrace& trace) {
  const std::vector<BandwidthTrace::Segment>& segments = trace.segments();
  assert(!segments.empty());
  TraceMoments m;
  m.segments = segments.size();

  // Per-segment weights: consecutive-start gaps, with the final segment
  // closed by the period (periodic) or by the mean finite duration
  // (aperiodic; 1 s when it is the only segment).
  std::vector<double> weights(segments.size());
  for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
    weights[i] = segments[i + 1].start_s - segments[i].start_s;
  }
  if (trace.period_s() > 0.0) {
    weights.back() = trace.period_s() - segments.back().start_s;
  } else if (segments.size() > 1) {
    double finite = 0.0;
    for (std::size_t i = 0; i + 1 < segments.size(); ++i) finite += weights[i];
    weights.back() = finite / static_cast<double>(segments.size() - 1);
  } else {
    weights.back() = 1.0;
  }

  double total_w = 0.0;
  double area = 0.0;
  m.min_kbps = segments.front().kbps;
  m.max_kbps = segments.front().kbps;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    total_w += weights[i];
    area += weights[i] * segments[i].kbps;
    m.min_kbps = std::min(m.min_kbps, segments[i].kbps);
    m.max_kbps = std::max(m.max_kbps, segments[i].kbps);
  }
  m.mean_kbps = area / total_w;
  double var_area = 0.0;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const double d = segments[i].kbps - m.mean_kbps;
    var_area += weights[i] * d * d;
  }
  m.variance = var_area / total_w;
  m.cv = m.mean_kbps > 0.0 ? std::sqrt(m.variance) / m.mean_kbps : 0.0;

  // Rate *changes* (neighbouring segments always differ after generator
  // merging, but CSV-loaded traces may repeat rates) and the longest
  // constant-rate dwell. A periodic trace also changes (or dwells) across
  // the wrap from the last segment back to the first.
  int changes = 0;
  double dwell = weights[0];
  m.max_dwell_s = 0.0;
  for (std::size_t i = 1; i < segments.size(); ++i) {
    if (segments[i].kbps != segments[i - 1].kbps) {
      ++changes;
      m.max_dwell_s = std::max(m.max_dwell_s, dwell);
      dwell = weights[i];
    } else {
      dwell += weights[i];
    }
  }
  m.max_dwell_s = std::max(m.max_dwell_s, dwell);
  if (trace.period_s() > 0.0) {
    if (segments.back().kbps != segments.front().kbps) {
      ++changes;
    } else if (segments.size() > 1) {
      // Constant run spanning the wrap: tail dwell + head dwell.
      double head = weights[0];
      for (std::size_t i = 1; i < segments.size() &&
                              segments[i].kbps == segments.front().kbps;
           ++i) {
        head += weights[i];
      }
      m.max_dwell_s = std::max(m.max_dwell_s, dwell + head);
    }
    m.changes_per_min = static_cast<double>(changes) / (trace.period_s() / 60.0);
  } else {
    m.changes_per_min = total_w > 0.0 ? static_cast<double>(changes) / (total_w / 60.0)
                                      : 0.0;
  }
  return m;
}

std::string check_envelope(const BandwidthTrace& trace, const TraceEnvelope& envelope) {
  const TraceMoments m = trace_moments(trace);
  if (m.min_kbps < envelope.floor_kbps) {
    return format("segment rate %.3f kbps below floor %.3f", m.min_kbps,
                  envelope.floor_kbps);
  }
  if (m.max_kbps > envelope.ceil_kbps) {
    return format("segment rate %.3f kbps above ceiling %.3f", m.max_kbps,
                  envelope.ceil_kbps);
  }
  if (m.mean_kbps < envelope.mean_lo_kbps || m.mean_kbps > envelope.mean_hi_kbps) {
    return format("mean %.3f kbps outside [%.3f, %.3f]", m.mean_kbps,
                  envelope.mean_lo_kbps, envelope.mean_hi_kbps);
  }
  if (m.cv < envelope.cv_lo || m.cv > envelope.cv_hi) {
    return format("coefficient of variation %.4f outside [%.4f, %.4f]", m.cv,
                  envelope.cv_lo, envelope.cv_hi);
  }
  if (m.changes_per_min < envelope.min_changes_per_min) {
    return format("%.2f rate changes/min below floor %.2f", m.changes_per_min,
                  envelope.min_changes_per_min);
  }
  if (m.max_dwell_s > envelope.max_dwell_s) {
    return format("constant dwell %.3f s exceeds cap %.3f", m.max_dwell_s,
                  envelope.max_dwell_s);
  }
  return "";
}

const std::vector<TraceClass>& trace_class_registry() {
  static const std::vector<TraceClass> registry = {
      {"lte-handoff",
       "LTE-like cellular: sticky coverage states, fading jitter, periodic "
       "sub-second handoff drops",
       {/*floor=*/20.0, /*ceil=*/20000.0, /*mean_lo=*/1500.0, /*mean_hi=*/3600.0,
        /*cv_lo=*/0.3, /*cv_hi=*/1.6, /*min_changes_per_min=*/6.0,
        /*max_dwell=*/60.0},
       &lte_trace},
      {"flaky-wifi",
       "on/off wifi bursts: long good-throughput bursts, short near-outage "
       "gaps, exponential dwells",
       {/*floor=*/5.0, /*ceil=*/30000.0, /*mean_lo=*/2100.0, /*mean_hi=*/6100.0,
        /*cv_lo=*/0.25, /*cv_hi=*/1.6, /*min_changes_per_min=*/5.0,
        /*max_dwell=*/65.0},
       &flaky_wifi_trace},
      {"long-fat",
       "high-BDP pipe: tens of Mbps, slow sinusoidal capacity oscillation, "
       "small discretization noise",
       {/*floor=*/6000.0, /*ceil=*/60000.0, /*mean_lo=*/14000.0,
        /*mean_hi=*/36500.0, /*cv_lo=*/0.05, /*cv_hi=*/0.35,
        /*min_changes_per_min=*/8.0, /*max_dwell=*/16.0},
       &long_fat_trace},
      {"oscillating",
       "sawtooth: linear ramp from a low floor to k x floor over tens of "
       "seconds, then collapse and repeat",
       {/*floor=*/80.0, /*ceil=*/16000.0, /*mean_lo=*/700.0, /*mean_hi=*/2100.0,
        /*cv_lo=*/0.18, /*cv_hi=*/0.55, /*min_changes_per_min=*/15.0,
        /*max_dwell=*/10.0},
       &oscillating_trace},
  };
  return registry;
}

const TraceClass* find_trace_class(const std::string& name) {
  for (const TraceClass& tc : trace_class_registry()) {
    if (tc.name == name) return &tc;
  }
  return nullptr;
}

BandwidthTrace scale_trace(const BandwidthTrace& trace, double factor) {
  assert(factor > 0.0);
  const std::vector<BandwidthTrace::Segment>& segments = trace.segments();
  std::vector<BandwidthTrace::Step> steps;
  steps.reserve(segments.size());
  for (std::size_t i = 0; i < segments.size(); ++i) {
    double duration;
    if (i + 1 < segments.size()) {
      duration = segments[i + 1].start_s - segments[i].start_s;
    } else if (trace.period_s() > 0.0) {
      duration = trace.period_s() - segments.back().start_s;
    } else {
      duration = 1.0;  // aperiodic tail: the last rate holds forever anyway
    }
    steps.push_back({duration, segments[i].kbps * factor});
  }
  return BandwidthTrace::steps(steps, trace.period_s() > 0.0);
}

}  // namespace demuxabr
