// Piecewise-constant bandwidth traces — the simulation stand-in for the
// paper's `tc`-shaped server-to-client links (§3.1). Fixed-rate and
// time-varying (square wave, multi-step, bounded random walk) profiles
// cover every experiment in §3; traces can also be loaded from CSV.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "util/result.h"

namespace demuxabr {

class BandwidthTrace {
 public:
  struct Segment {
    double start_s = 0.0;  ///< segment start time
    double kbps = 0.0;     ///< rate during the segment
  };

  BandwidthTrace() = default;

  /// Fixed rate forever.
  static BandwidthTrace constant(double kbps);

  /// Alternating low/high square wave, repeating forever.
  /// `start_high` selects the first phase.
  static BandwidthTrace square_wave(double low_kbps, double high_kbps,
                                    double low_duration_s, double high_duration_s,
                                    bool start_high = false);

  /// Explicit steps (duration, rate). When `repeat`, the pattern loops;
  /// otherwise the last rate holds forever.
  struct Step {
    double duration_s;
    double kbps;
  };
  static BandwidthTrace steps(const std::vector<Step>& steps, bool repeat);

  /// Bounded random walk: rate changes every `step_interval_s` by a normal
  /// perturbation with `volatility_kbps` stddev, clamped to [min, max].
  /// Generates `total_duration_s` worth of segments then repeats.
  static BandwidthTrace random_walk(double min_kbps, double max_kbps,
                                    double step_interval_s, double total_duration_s,
                                    double volatility_kbps, std::uint64_t seed);

  /// Markov-modulated trace: the link dwells in a state (exponential dwell
  /// time around `mean_dwell_s`), emitting its rate with multiplicative
  /// jitter, then transitions according to the row-stochastic matrix.
  struct MarkovState {
    double rate_kbps;
    double mean_dwell_s;
  };
  static BandwidthTrace markov(const std::vector<MarkovState>& states,
                               const std::vector<std::vector<double>>& transitions,
                               double total_duration_s, double jitter_fraction,
                               std::uint64_t seed);

  /// Canned LTE-like cellular profile (five states from deep fade to good
  /// coverage, sticky transitions), repeating after `total_duration_s`.
  static BandwidthTrace cellular(double total_duration_s, std::uint64_t seed);

  /// Load from CSV with header "t,kbps" (times ascending from 0).
  /// `period_s` > 0 makes the loaded trace periodic (it must exceed the last
  /// segment's start time); 0 keeps the historical aperiodic behavior.
  static Result<BandwidthTrace> from_csv(const std::string& csv_text,
                                         double period_s = 0.0);

  /// Rate at absolute time t (wraps when periodic). The single-segment
  /// aperiodic case (constant traces — the bulk of fleet-bench hot loops)
  /// resolves inline to the one rate every query returns anyway; anything
  /// else takes the full boundary-slack lookup.
  [[nodiscard]] double rate_kbps(double t) const {
    if (segments_.size() == 1 && period_s_ == 0.0) return segments_.front().kbps;
    return rate_kbps_slow(t);
  }

  /// The next absolute time > t at which the rate changes;
  /// +infinity when the rate never changes again. Same inline fast path as
  /// rate_kbps: a constant trace never changes again.
  [[nodiscard]] double next_change_after(double t) const {
    if (segments_.size() == 1 && period_s_ == 0.0) {
      return std::numeric_limits<double>::infinity();
    }
    return next_change_after_slow(t);
  }

  /// Mean rate over [t0, t1].
  [[nodiscard]] double average_kbps(double t0, double t1) const;

  [[nodiscard]] const std::vector<Segment>& segments() const { return segments_; }
  /// 0 = aperiodic (last segment's rate holds forever).
  [[nodiscard]] double period_s() const { return period_s_; }

  [[nodiscard]] std::string to_csv() const;

 private:
  BandwidthTrace(std::vector<Segment> segments, double period_s);

  [[nodiscard]] double rate_kbps_slow(double t) const;
  [[nodiscard]] double next_change_after_slow(double t) const;

  std::vector<Segment> segments_;  ///< ascending start times, first at 0
  double period_s_ = 0.0;
};

}  // namespace demuxabr
