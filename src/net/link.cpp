#include "net/link.h"

#include <cassert>
#include <cmath>

#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "util/logging.h"

namespace demuxabr {

void Link::advance_to(double t) {
  if (t <= clock_s_) return;
  // Walk capacity segments so both the service integral and the offered /
  // delivered capacity integrals are exact under time-varying traces. The
  // partition of this sum is anchored at population-change times and trace
  // segment boundaries only — never at engine barriers — which is what
  // keeps the integrals bit-identical across scheduling engines.
  double at = clock_s_;
  const double inv_flows =
      active_flows_ > 0 ? 1.0 / static_cast<double>(active_flows_) : 1.0;
  while (at < t) {
    const double boundary = trace_.next_change_after(at);
    const double seg_end = std::min(boundary, t);
    const double dt = seg_end - at;
    if (dt <= 0.0) break;  // defensive: a trace must advance time
    const double kbps = trace_.rate_kbps(at);
    const double offered = kbps * dt;
    offered_kbit_ += offered;
    flow_seconds_ += static_cast<double>(active_flows_) * dt;
    if (active_flows_ > 0) {
      busy_s_ += dt;
      delivered_kbit_ += offered;
      service_kbit_ += offered * inv_flows;
    }
    if (telemetry_ != nullptr) {
      // Same segment partition as the integrals above, so the binned series
      // is engine-identical whenever the flow schedule is.
      telemetry_->link_segment(telemetry_slot_, at, seg_end, active_flows_,
                               kbps, active_flows_ > 0 ? kbps : 0.0);
    }
    at = seg_end;
  }
  clock_s_ = t;
}

double Link::add_flow(double now) {
  advance_to(now);
  ++active_flows_;
  peak_flows_ = std::max(peak_flows_, active_flows_);
  ++epoch_;
  DMX_COUNT("link.flows_added", 1);
  DMX_TRACE_COUNTER(obs::kCatLink, trace_track_, "active_flows", now,
                    obs::TraceArgs().kv("flows", active_flows_));
  return service_kbit_;
}

void Link::remove_flow(double now) {
  advance_to(now);
  if (active_flows_ <= 0) {
    DMX_COUNT("link.double_removes", 1);
    assert(false && "Link::remove_flow on an idle link (double remove)");
    DMX_ERROR << "Link::remove_flow on an idle link (double remove?) — "
                 "flow accounting is corrupt; clamping at zero";
    return;
  }
  --active_flows_;
  ++epoch_;
  DMX_COUNT("link.flows_removed", 1);
  DMX_TRACE_COUNTER(obs::kCatLink, trace_track_, "active_flows", now,
                    obs::TraceArgs().kv("flows", active_flows_));
}

double Link::service_at(double t) const {
  if (t <= clock_s_) return service_kbit_;
  if (active_flows_ <= 0) return service_kbit_;  // idle: nobody is served
  double v = service_kbit_;
  double at = clock_s_;
  const double inv_flows = 1.0 / static_cast<double>(active_flows_);
  while (at < t) {
    const double boundary = trace_.next_change_after(at);
    const double seg_end = std::min(boundary, t);
    const double dt = seg_end - at;
    if (dt <= 0.0) break;
    v += trace_.rate_kbps(at) * dt * inv_flows;
    at = seg_end;
  }
  return v;
}

double Link::time_when_service_reaches(double v_target) const {
  if (v_target <= service_kbit_) return clock_s_;
  if (active_flows_ <= 0) return std::numeric_limits<double>::infinity();
  double v = service_kbit_;
  double at = clock_s_;
  const double inv_flows = 1.0 / static_cast<double>(active_flows_);
  // Walk forward one capacity segment at a time. Terminates for any trace
  // with positive average rate; the iteration cap guards against a
  // pathological all-zero tail (treated as "never").
  for (int guard = 0; guard < 1000000; ++guard) {
    const double boundary = trace_.next_change_after(at);
    const double per_flow_kbps = trace_.rate_kbps(at) * inv_flows;
    if (per_flow_kbps > 0.0) {
      const double t_hit = at + (v_target - v) / per_flow_kbps;
      if (t_hit <= boundary) return t_hit;
      if (!std::isfinite(boundary)) return t_hit;
      v += per_flow_kbps * (boundary - at);
    } else if (!std::isfinite(boundary)) {
      return std::numeric_limits<double>::infinity();
    }
    at = boundary;
  }
  return std::numeric_limits<double>::infinity();
}

}  // namespace demuxabr
