#include "net/link.h"

#include <cassert>

#include "util/logging.h"

namespace demuxabr {

void Link::remove_flow() {
  if (active_flows_ <= 0) {
    assert(false && "Link::remove_flow on an idle link (double remove)");
    DMX_ERROR << "Link::remove_flow on an idle link (double remove?) — "
                 "flow accounting is corrupt; clamping at zero";
    return;
  }
  --active_flows_;
}

}  // namespace demuxabr
