// Link and Network are header-only; this translation unit exists so the
// module has a concrete object file and the header stays self-contained.
#include "net/link.h"

namespace demuxabr {
// (intentionally empty)
}  // namespace demuxabr
