// Bottleneck link with processor-sharing among concurrent flows, plus the
// Network abstraction that lets audio and video ride either a shared
// bottleneck (the common case in §3) or two independent paths (the
// different-servers scenario §1/§4.1 calls out).
//
// Service is accounted in *virtual time* (fair-queuing style): the link
// maintains V(t), the cumulative per-flow service integral
//
//     V(t) = integral over [0, t] of capacity(u) / max(1, N(u)) du   [kbit]
//
// advanced lazily at every flow-population change. A flow that joined when
// the integral read v_start has received exactly (V(t) - v_start) kbit by
// time t, however many other flows came and went in between — so a session
// can account its bytes at *its own* events as an integral difference
// instead of integrating every interval, and a whole fleet never needs a
// global barrier just to keep byte counters honest. Because V only mutates
// at population changes (which both fleet engines execute at identical
// times), every derived quantity — delivered bytes, predicted completion
// times, utilization integrals — is a pure function of identical state in
// both engines and therefore bit-identical between them.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>

#include "net/bandwidth_trace.h"
#include "net/channel.h"
#include "obs/trace.h"
#include "util/arena.h"
#include "util/indexed_min_heap.h"

namespace demuxabr {

namespace obs {
class TimelineShard;  // obs/telemetry.h
}

/// A link carrying 0..N concurrent flows. Capacity follows a BandwidthTrace;
/// active flows share it equally (TCP-fair approximation). The simulation
/// engine registers/unregisters flows (with the current time, so the service
/// integral can advance) and reads service integrals and completion
/// predictions. This is the single-bottleneck Channel; fleet::PathChannel
/// composes several Links into a multi-hop carrier.
class Link final : public Channel {
 public:
  /// `arena` (optional, must outlive the link) backs the completion
  /// registry's storage: fleet schedulers pass their per-shard arena so
  /// registry growth in the drain loop bump-allocates instead of hitting
  /// the heap. Null (the default, all solo uses) falls back to the heap.
  explicit Link(BandwidthTrace trace, MonotonicArena* arena = nullptr)
      : trace_(std::move(trace)),
        completions_(ArenaAllocator<HeapEntry>(arena)) {}

  /// Register one flow at time `now` (>= every earlier mutation time).
  /// Returns the service integral at `now` — the joining flow's v_start.
  double add_flow(double now) override;

  /// Unregister one flow at time `now`. Removing from an idle link is a
  /// flow-accounting bug in the caller (double remove) that would corrupt
  /// processor sharing across every other flow on the link: asserts in
  /// debug builds, logs an error and clamps at zero in release.
  void remove_flow(double now) override;

  [[nodiscard]] int active_flows() const override { return active_flows_; }
  /// Highest concurrent flow count ever observed (cross-session contention
  /// headline for shared fleet links).
  [[nodiscard]] int peak_flows() const { return peak_flows_; }
  /// Bumped on every population change; the fleet event engine uses it to
  /// detect that completion predictions keyed on this link went stale.
  [[nodiscard]] std::uint64_t epoch() const override { return epoch_; }

  /// Per-flow cumulative service [kbit] at `t` >= the last mutation time.
  /// Pure: walks capacity segments from the stored integral without
  /// mutating it, so repeated reads at any t give identical values.
  [[nodiscard]] double service_at(double t) const override;

  /// Earliest time at which the service integral reaches `v_target`,
  /// assuming the current flow population persists (any population change
  /// re-predicts). Returns the last mutation time when the target has
  /// already been served; +infinity when capacity never delivers it.
  [[nodiscard]] double time_when_service_reaches(double v_target) const override;

  // --- Completion registry (virtual-service targets). ---
  //
  // Targets are *invariant* under population and capacity changes — only
  // their wall-clock translation moves. The registry is what lets a fleet
  // engine ask one O(1) question per link ("who finishes first, and when?")
  // instead of re-deriving a prediction per flow per event.

  /// Register/refresh the completion target of flow `token` (caller-chosen
  /// dense id, unique per in-flight flow on this link).
  void register_completion(std::uint32_t token, double v_target_kbit) override {
    completions_.update(token, v_target_kbit);
  }
  void unregister_completion(std::uint32_t token) override { completions_.erase(token); }
  [[nodiscard]] bool has_completions() const override { return !completions_.empty(); }
  /// Token of the earliest finisher (smallest target, then smallest token).
  [[nodiscard]] std::uint32_t earliest_completion_token() const override {
    return completions_.top().id;
  }
  /// Wall-clock time of the earliest registered completion; +infinity when
  /// none are registered.
  [[nodiscard]] double earliest_completion_time() const override {
    if (completions_.empty()) return std::numeric_limits<double>::infinity();
    return time_when_service_reaches(completions_.top().key);
  }

  /// Total capacity at time t.
  [[nodiscard]] double capacity_kbps(double t) const override {
    return trace_.rate_kbps(t);
  }

  /// Rate each active flow receives at time t (capacity when idle, so a
  /// flow about to start can be quoted).
  [[nodiscard]] double per_flow_kbps(double t) const {
    const int n = active_flows_ > 0 ? active_flows_ : 1;
    return trace_.rate_kbps(t) / static_cast<double>(n);
  }

  /// Next time > t at which capacity changes.
  [[nodiscard]] double next_change_after(double t) const {
    return trace_.next_change_after(t);
  }

  // --- Utilization accounting (integrated alongside the service curve). ---
  //
  // Advanced at the same lazy points as V(t), so busy time, flow-seconds
  // and offered/delivered capacity integrals are partitioned identically in
  // every engine that produces the same flow schedule.

  /// Advance the accounting (and service) integrals to `t` without changing
  /// the population — call once at the end of a run to close the books.
  void finalize(double t) { advance_to(t); }

  [[nodiscard]] double observed_s() const { return clock_s_; }
  [[nodiscard]] double busy_s() const { return busy_s_; }
  [[nodiscard]] double flow_seconds() const { return flow_seconds_; }
  [[nodiscard]] double offered_kbit() const { return offered_kbit_; }
  [[nodiscard]] double delivered_kbit() const { return delivered_kbit_; }

  [[nodiscard]] const BandwidthTrace& trace() const { return trace_; }

  /// Observability track id (one trace track per link). Fleet schedulers
  /// assign obs::kLinkTrackBase + link index; solo links keep the base.
  void set_trace_track(std::uint32_t track) { trace_track_ = track; }
  [[nodiscard]] std::uint32_t trace_track() const { return trace_track_; }

  /// Wire the time-binned telemetry sink (obs/telemetry.h): every lazily
  /// advanced accounting segment is also reported as slot `slot`'s series.
  /// Null (default) costs one branch per segment.
  void set_telemetry(obs::TimelineShard* telemetry, std::size_t slot) {
    telemetry_ = telemetry;
    telemetry_slot_ = slot;
  }

 private:
  /// Advance the service + accounting integrals from clock_s_ to t with the
  /// current population, walking capacity segments so time-varying traces
  /// integrate exactly.
  void advance_to(double t);

  BandwidthTrace trace_;
  int active_flows_ = 0;
  int peak_flows_ = 0;
  std::uint64_t epoch_ = 0;
  std::uint32_t trace_track_ = obs::kLinkTrackBase;
  obs::TimelineShard* telemetry_ = nullptr;
  std::size_t telemetry_slot_ = 0;

  double clock_s_ = 0.0;    ///< time up to which all integrals are advanced
  double service_kbit_ = 0.0;  ///< V(clock_s_): per-flow service integral

  double busy_s_ = 0.0;
  double flow_seconds_ = 0.0;
  double offered_kbit_ = 0.0;
  double delivered_kbit_ = 0.0;

  /// v_target [kbit] per in-flight flow token; arena-backed in fleets.
  BasicIndexedMinHeap<ArenaAllocator<HeapEntry>> completions_;
};

/// The network between client and server(s): one carrier per media type.
/// `shared` points both media types at the same Link object so concurrent
/// audio+video downloads contend (the root of Shaka's mis-estimation, §3.3).
/// A topology-aware fleet instead wires each member at a fleet::PathChannel
/// via `over`, so both media types ride a multi-hop client→edge→core path.
class FlowRouter;

struct Network {
  std::shared_ptr<Channel> video_link;
  std::shared_ptr<Channel> audio_link;
  /// Per-request startup latency (connection + request RTT).
  double rtt_s = 0.05;
  /// Optional cache-aware request router (sim/flow_router.h). Consulted at
  /// flow registration; may redirect a request onto a shorter carrier (an
  /// edge-cache hit path). Non-owning — the fleet scheduler outlives every
  /// session it wires. Null = every flow rides its default link.
  FlowRouter* router = nullptr;

  static Network shared(BandwidthTrace trace, double rtt_s = 0.05) {
    Network net;
    net.video_link = std::make_shared<Link>(std::move(trace));
    net.audio_link = net.video_link;
    net.rtt_s = rtt_s;
    return net;
  }

  static Network split(BandwidthTrace video_trace, BandwidthTrace audio_trace,
                       double rtt_s = 0.05) {
    Network net;
    net.video_link = std::make_shared<Link>(std::move(video_trace));
    net.audio_link = std::make_shared<Link>(std::move(audio_trace));
    net.rtt_s = rtt_s;
    return net;
  }

  /// Wire arbitrary carriers (e.g. topology paths). `audio` may equal
  /// `video` for the shared case.
  static Network over(std::shared_ptr<Channel> video, std::shared_ptr<Channel> audio,
                      double rtt_s = 0.05) {
    Network net;
    net.video_link = std::move(video);
    net.audio_link = std::move(audio);
    net.rtt_s = rtt_s;
    return net;
  }

  [[nodiscard]] bool is_shared() const { return video_link == audio_link; }
  [[nodiscard]] Channel& link_for(bool is_video) const {
    return is_video ? *video_link : *audio_link;
  }
};

}  // namespace demuxabr
