// Bottleneck link with processor-sharing among concurrent flows, plus the
// Network abstraction that lets audio and video ride either a shared
// bottleneck (the common case in §3) or two independent paths (the
// different-servers scenario §1/§4.1 calls out).
#pragma once

#include <algorithm>
#include <memory>

#include "net/bandwidth_trace.h"

namespace demuxabr {

/// A link carrying 0..N concurrent flows. Capacity follows a BandwidthTrace;
/// active flows share it equally (TCP-fair approximation). The simulation
/// engine registers/unregisters flows and asks for the current per-flow rate.
class Link {
 public:
  explicit Link(BandwidthTrace trace) : trace_(std::move(trace)) {}

  void add_flow() {
    ++active_flows_;
    peak_flows_ = std::max(peak_flows_, active_flows_);
  }
  /// Unregister one flow. Removing from an idle link is a flow-accounting
  /// bug in the caller (double remove) that would corrupt processor sharing
  /// across every other flow on the link: asserts in debug builds, logs an
  /// error and clamps at zero in release.
  void remove_flow();
  [[nodiscard]] int active_flows() const { return active_flows_; }
  /// Highest concurrent flow count ever observed (cross-session contention
  /// headline for shared fleet links).
  [[nodiscard]] int peak_flows() const { return peak_flows_; }

  /// Total capacity at time t.
  [[nodiscard]] double capacity_kbps(double t) const { return trace_.rate_kbps(t); }

  /// Rate each active flow receives at time t (capacity when idle, so a
  /// flow about to start can be quoted).
  [[nodiscard]] double per_flow_kbps(double t) const {
    const int n = active_flows_ > 0 ? active_flows_ : 1;
    return trace_.rate_kbps(t) / static_cast<double>(n);
  }

  /// Next time > t at which capacity changes.
  [[nodiscard]] double next_change_after(double t) const {
    return trace_.next_change_after(t);
  }

  [[nodiscard]] const BandwidthTrace& trace() const { return trace_; }

 private:
  BandwidthTrace trace_;
  int active_flows_ = 0;
  int peak_flows_ = 0;
};

/// The network between client and server(s): one link per media type.
/// `shared` points both media types at the same Link object so concurrent
/// audio+video downloads contend (the root of Shaka's mis-estimation, §3.3).
struct Network {
  std::shared_ptr<Link> video_link;
  std::shared_ptr<Link> audio_link;
  /// Per-request startup latency (connection + request RTT).
  double rtt_s = 0.05;

  static Network shared(BandwidthTrace trace, double rtt_s = 0.05) {
    Network net;
    net.video_link = std::make_shared<Link>(std::move(trace));
    net.audio_link = net.video_link;
    net.rtt_s = rtt_s;
    return net;
  }

  static Network split(BandwidthTrace video_trace, BandwidthTrace audio_trace,
                       double rtt_s = 0.05) {
    Network net;
    net.video_link = std::make_shared<Link>(std::move(video_trace));
    net.audio_link = std::make_shared<Link>(std::move(audio_trace));
    net.rtt_s = rtt_s;
    return net;
  }

  [[nodiscard]] bool is_shared() const { return video_link == audio_link; }
  [[nodiscard]] Link& link_for(bool is_video) const {
    return is_video ? *video_link : *audio_link;
  }
};

}  // namespace demuxabr
