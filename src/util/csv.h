// CSV writing (experiment logs, bench series dumps) and a tolerant reader
// (bandwidth traces from file).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"

namespace demuxabr {

/// Accumulates rows and renders/saves RFC-4180-ish CSV (quotes fields that
/// need it). Column count is fixed by the header.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  /// Begin a new row. Must complete exactly header-size cells before the next.
  CsvWriter& cell(const std::string& value);
  CsvWriter& cell(double value);
  CsvWriter& cell(std::int64_t value);
  CsvWriter& end_row();

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }
  Status save(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> pending_;
};

/// Parsed CSV document: header + data rows (all cells as strings).
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

/// Parse CSV text. Handles quoted cells and both line endings.
Result<CsvDocument> parse_csv(const std::string& text);

/// Read a whole file into a string.
Result<std::string> read_file(const std::string& path);

/// Write a string to a file (truncate).
Status write_file(const std::string& path, const std::string& content);

}  // namespace demuxabr
