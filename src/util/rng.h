// Deterministic pseudo-random number generation for reproducible simulations.
//
// All stochastic behaviour in the library (VBR chunk sizes, random-walk
// bandwidth traces, zipf request populations) flows through Rng so that a
// fixed seed yields bit-identical experiment logs across runs and platforms.
#pragma once

#include <cstdint>
#include <vector>

namespace demuxabr {

/// xoshiro256++ generator seeded via splitmix64. Not cryptographic.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (deterministic pairing).
  double normal();

  /// Normal with the given mean / standard deviation.
  double normal(double mean, double stddev);

  /// Log-normal with the given *underlying* normal mu/sigma.
  double lognormal(double mu, double sigma);

  /// Exponential with the given rate (lambda > 0).
  double exponential(double lambda);

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Sample an index in [0, weights.size()) proportionally to weights.
  std::size_t weighted_index(const std::vector<double>& weights);

 private:
  std::uint64_t state_[4];
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

/// Zipf(s) distribution over ranks {0, .., n-1}: P(k) proportional to 1/(k+1)^s.
/// Precomputes the CDF; sampling is O(log n).
class ZipfDistribution {
 public:
  ZipfDistribution(std::size_t n, double exponent);

  std::size_t sample(Rng& rng) const;
  [[nodiscard]] std::size_t size() const { return cdf_.size(); }
  /// Probability mass of rank k.
  [[nodiscard]] double pmf(std::size_t k) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace demuxabr
