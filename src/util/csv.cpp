#include "util/csv.h"

#include <cassert>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/strings.h"

namespace demuxabr {
namespace {

bool needs_quoting(const std::string& cell) {
  return cell.find_first_of(",\"\n\r") != std::string::npos;
}

std::string escape_cell(const std::string& cell) {
  if (!needs_quoting(cell)) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string format_double(double value) {
  // Trim trailing zeros for compact logs while keeping precision.
  std::string s = format("%.6f", value);
  while (!s.empty() && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s;
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header) : header_(std::move(header)) {
  assert(!header_.empty());
}

CsvWriter& CsvWriter::cell(const std::string& value) {
  assert(pending_.size() < header_.size());
  pending_.push_back(value);
  return *this;
}

CsvWriter& CsvWriter::cell(double value) { return cell(format_double(value)); }

CsvWriter& CsvWriter::cell(std::int64_t value) {
  return cell(format("%lld", static_cast<long long>(value)));
}

CsvWriter& CsvWriter::end_row() {
  assert(pending_.size() == header_.size());
  rows_.push_back(std::move(pending_));
  pending_.clear();
  return *this;
}

std::string CsvWriter::to_string() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i) out << ',';
    out << escape_cell(header_[i]);
  }
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out << ',';
      out << escape_cell(row[i]);
    }
    out << '\n';
  }
  return out.str();
}

Status CsvWriter::save(const std::string& path) const {
  return write_file(path, to_string());
}

Result<CsvDocument> parse_csv(const std::string& text) {
  CsvDocument doc;
  std::vector<std::string> row;
  std::string cell;
  bool in_quotes = false;
  bool row_has_content = false;

  auto end_cell = [&] {
    row.push_back(std::move(cell));
    cell.clear();
  };
  auto end_row = [&]() -> Status {
    end_cell();
    if (doc.header.empty()) {
      doc.header = std::move(row);
    } else {
      if (row.size() != doc.header.size()) {
        return Error{format("csv row has %zu cells, header has %zu", row.size(),
                            doc.header.size())};
      }
      doc.rows.push_back(std::move(row));
    }
    row.clear();
    row_has_content = false;
    return {};
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        row_has_content = true;
        break;
      case ',':
        end_cell();
        row_has_content = true;
        break;
      case '\r':
        break;
      case '\n': {
        if (!row_has_content && cell.empty() && row.empty()) break;  // skip blank line
        if (auto st = end_row(); !st.ok()) return Error{st.error()};
        break;
      }
      default:
        cell += c;
        row_has_content = true;
        break;
    }
  }
  if (in_quotes) return Error{"csv ends inside quoted cell"};
  if (row_has_content || !cell.empty() || !row.empty()) {
    if (auto st = end_row(); !st.ok()) return Error{st.error()};
  }
  if (doc.header.empty()) return Error{"csv is empty"};
  return doc;
}

Result<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Error{"cannot open file: " + path};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Status write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Error{"cannot open file for writing: " + path};
  out << content;
  if (!out) return Error{"write failed: " + path};
  return {};
}

}  // namespace demuxabr
