// Minimal Result<T> type for recoverable errors (parsers, file I/O).
//
// C++20 has no std::expected; this is a small subset tailored to the needs
// of this library: a value or a human-readable error message.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace demuxabr {

/// Error payload carried by a failed Result.
struct Error {
  std::string message;
};

/// A value of type T or an Error. Inspect with ok() before dereferencing.
template <typename T>
class Result {
 public:
  // Implicit construction from a value or an Error keeps call sites terse:
  //   return Error{"bad token"};   or   return parsed_value;
  Result(T value) : data_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Error error) : data_(std::move(error)) {}      // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  [[nodiscard]] T&& take() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  [[nodiscard]] const std::string& error() const {
    assert(!ok());
    return std::get<Error>(data_).message;
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Error> data_;
};

/// Result specialization for operations with no payload.
class Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error.message)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return error_.empty(); }
  explicit operator bool() const { return ok(); }
  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  std::string error_;
};

}  // namespace demuxabr
