// QuantileSketch: a mergeable streaming percentile sketch with a relative
// accuracy guarantee (DDSketch-style log-spaced buckets).
//
// Values map to geometric buckets i = ceil(log_gamma(x)) with
// gamma = (1 + alpha) / (1 - alpha); every sample in bucket i lies in
// (gamma^(i-1), gamma^i], and the bucket's representative value
// 2 * gamma^i / (gamma + 1) (the interval midpoint in log space) is within
// relative error alpha of any of them. quantile(q) therefore returns a value
// within alpha * x of the exact order statistic x at rank q * (count - 1) —
// the same rank convention as util/stats.h percentile_of, minus the linear
// interpolation (a sketch cannot see gaps between neighbouring samples).
//
// Merging adds integer bucket counts, so merge order is irrelevant: K
// per-shard sketches merged in any order equal the sketch of the pooled
// stream. That is the property the streaming fleet path leans on — shard
// results are combined in shard-id order but would be byte-identical in any
// other (DESIGN.md §10).
//
// Non-positive and sub-epsilon values share an exact zero bucket (stall
// ratios and startup delays are mostly zero in healthy fleets); count, sum,
// min and max are tracked exactly alongside the buckets.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/stats.h"

namespace demuxabr {

class QuantileSketch {
 public:
  /// `relative_error` (alpha) in (0, 1): quantile answers are within
  /// alpha * x of the exact order statistic x. Memory is one uint64 bucket
  /// per log_gamma step of the observed dynamic range (~1400 buckets for
  /// 9 decades at alpha = 0.01).
  explicit QuantileSketch(double relative_error = 0.01);

  void add(double x);

  /// Pool another sketch into this one. Both must have been built with the
  /// same relative_error (asserted): the bucket grids must line up.
  void merge(const QuantileSketch& other);

  [[nodiscard]] std::size_t count() const { return static_cast<std::size_t>(total_); }
  [[nodiscard]] bool empty() const { return total_ == 0; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return total_ > 0 ? sum_ / static_cast<double>(total_) : 0.0; }
  [[nodiscard]] double min() const { return total_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return total_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double relative_error() const { return alpha_; }

  /// Value within alpha (relatively) of the exact order statistic at rank
  /// `fraction` * (count - 1); 0.0 when empty. fraction in [0, 1].
  [[nodiscard]] double quantile(double fraction) const;

  /// The fleet-report summary shape: count/min/max/mean exact, percentiles
  /// sketch-approximate.
  [[nodiscard]] PercentileSummary summary() const;

  /// Resident bucket count (memory diagnostics).
  [[nodiscard]] std::size_t bucket_count() const { return buckets_.size(); }

 private:
  /// Values at or below this land in the exact zero bucket.
  static constexpr double kZeroEps = 1e-9;

  [[nodiscard]] int bucket_index(double x) const;
  [[nodiscard]] double bucket_value(int index) const;
  void bump(int index, std::uint64_t by);

  double alpha_;
  double gamma_;
  double inv_log_gamma_;
  std::uint64_t total_ = 0;       ///< including zero-bucket samples
  std::uint64_t zero_count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  int base_index_ = 0;            ///< logical index of buckets_[0]
  std::vector<std::uint64_t> buckets_;
};

}  // namespace demuxabr
