// Lightweight leveled logging.
//
// The simulation is single-threaded; the logger writes directly to stderr.
// Experiments default to kWarn so bench output stays parseable; tests can
// raise the level to debug a failing scenario.
#pragma once

#include <sstream>
#include <string>

namespace demuxabr {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log threshold. Messages below the threshold are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Internal sink; prefer the DMX_LOG macro below.
void log_message(LogLevel level, const char* file, int line, const std::string& message);

const char* log_level_name(LogLevel level);

namespace detail {

class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogLine() { log_message(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace demuxabr

#define DMX_LOG(level)                                      \
  if (static_cast<int>(level) < static_cast<int>(::demuxabr::log_level())) { \
  } else                                                    \
    ::demuxabr::detail::LogLine(level, __FILE__, __LINE__)

#define DMX_TRACE DMX_LOG(::demuxabr::LogLevel::kTrace)
#define DMX_DEBUG DMX_LOG(::demuxabr::LogLevel::kDebug)
#define DMX_INFO DMX_LOG(::demuxabr::LogLevel::kInfo)
#define DMX_WARN DMX_LOG(::demuxabr::LogLevel::kWarn)
#define DMX_ERROR DMX_LOG(::demuxabr::LogLevel::kError)
