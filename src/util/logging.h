// Lightweight leveled logging.
//
// Thread-safe: the level and the sink pointer are atomics, and every sink
// receives one fully formatted line per call — concurrent fleet
// replications on the ThreadPool cannot interleave bytes mid-line. The
// default sink writes each line to stderr with a single fwrite; tests swap
// in a CaptureLogSink to assert on (or silence) log output.
//
// Experiments default to kWarn so bench output stays parseable; tests can
// raise the level to debug a failing scenario, and the DMX_LOG_LEVEL
// environment variable (trace|debug|info|warn|error|off) overrides the
// default at process start.
#pragma once

#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace demuxabr {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log threshold. Messages below the threshold are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parse "trace" / "DEBUG" / "warn" ... (case-insensitive); nullopt on
/// anything else.
std::optional<LogLevel> parse_log_level(std::string_view name);

/// Re-read DMX_LOG_LEVEL from the environment and apply it when set and
/// valid; returns the applied level. Called once automatically at process
/// start; exposed for tests.
std::optional<LogLevel> apply_env_log_level();

/// Internal sink; prefer the DMX_LOG macro below.
void log_message(LogLevel level, const char* file, int line, const std::string& message);

const char* log_level_name(LogLevel level);

/// Receives fully formatted log lines (no trailing newline). Implementations
/// must be thread-safe: lines arrive concurrently from pool workers.
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void write_line(LogLevel level, const std::string& line) = 0;
};

/// Install a sink (nullptr restores the default stderr sink). The caller
/// keeps the sink alive while installed.
void set_log_sink(LogSink* sink);
LogSink* log_sink();  ///< currently installed sink, or nullptr for default

/// Buffers lines in memory — assert on log output in tests, or silence an
/// expected DMX_ERROR without losing it.
class CaptureLogSink : public LogSink {
 public:
  void write_line(LogLevel level, const std::string& line) override {
    std::lock_guard<std::mutex> lock(mutex_);
    lines_.push_back(line);
    levels_.push_back(level);
  }
  [[nodiscard]] std::vector<std::string> lines() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return lines_;
  }
  [[nodiscard]] std::size_t count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return lines_.size();
  }
  [[nodiscard]] bool contains(std::string_view needle) const;
  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    lines_.clear();
    levels_.clear();
  }

 private:
  mutable std::mutex mutex_;
  std::vector<std::string> lines_;
  std::vector<LogLevel> levels_;
};

/// RAII sink swap for tests.
class ScopedLogSink {
 public:
  explicit ScopedLogSink(LogSink* sink) : previous_(log_sink()) {
    set_log_sink(sink);
  }
  ~ScopedLogSink() { set_log_sink(previous_); }
  ScopedLogSink(const ScopedLogSink&) = delete;
  ScopedLogSink& operator=(const ScopedLogSink&) = delete;

 private:
  LogSink* previous_;
};

/// RAII level swap for tests.
class ScopedLogLevel {
 public:
  explicit ScopedLogLevel(LogLevel level) : previous_(log_level()) {
    set_log_level(level);
  }
  ~ScopedLogLevel() { set_log_level(previous_); }
  ScopedLogLevel(const ScopedLogLevel&) = delete;
  ScopedLogLevel& operator=(const ScopedLogLevel&) = delete;

 private:
  LogLevel previous_;
};

namespace detail {

class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogLine() { log_message(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace demuxabr

#define DMX_LOG(level)                                      \
  if (static_cast<int>(level) < static_cast<int>(::demuxabr::log_level())) { \
  } else                                                    \
    ::demuxabr::detail::LogLine(level, __FILE__, __LINE__)

#define DMX_TRACE DMX_LOG(::demuxabr::LogLevel::kTrace)
#define DMX_DEBUG DMX_LOG(::demuxabr::LogLevel::kDebug)
#define DMX_INFO DMX_LOG(::demuxabr::LogLevel::kInfo)
#define DMX_WARN DMX_LOG(::demuxabr::LogLevel::kWarn)
#define DMX_ERROR DMX_LOG(::demuxabr::LogLevel::kError)
