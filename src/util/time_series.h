// Time-stamped value series used throughout the session logs: buffer levels,
// bandwidth estimates, selected-track timelines (Figs 2-5 of the paper).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace demuxabr {

/// Ordered (time, value) samples. Times must be non-decreasing.
class TimeSeries {
 public:
  struct Point {
    double t;
    double value;
  };

  void add(double t, double value) { points_.push_back({t, value}); }
  void clear();

  /// Preallocate capacity for `points` samples (hot-path sessions reserve
  /// from the expected sample count so add() never reallocates mid-run).
  void reserve(std::size_t points);
  [[nodiscard]] std::size_t capacity() const { return points_.capacity(); }

  [[nodiscard]] bool empty() const { return points_.empty(); }
  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] const std::vector<Point>& points() const { return points_; }
  [[nodiscard]] const Point& front() const { return points_.front(); }
  [[nodiscard]] const Point& back() const { return points_.back(); }

  /// Step interpolation: value of the latest point with point.t <= t.
  /// Returns fallback before the first sample.
  [[nodiscard]] double value_at(double t, double fallback = 0.0) const;

  /// Time-weighted mean over [t0, t1] under step interpolation.
  [[nodiscard]] double time_weighted_mean(double t0, double t1) const;

  /// Minimum / maximum sampled value (0 when empty).
  [[nodiscard]] double min_value() const;
  [[nodiscard]] double max_value() const;

  /// Number of times the (step) value changes across consecutive samples.
  [[nodiscard]] std::size_t change_count() const;

  /// Resample onto a uniform grid [t0, t1] with the given step.
  [[nodiscard]] TimeSeries resample(double t0, double t1, double step) const;

  /// Render as a CSV fragment with the given column name.
  [[nodiscard]] std::string to_csv(const std::string& value_column) const;

 private:
  std::vector<Point> points_;
};

}  // namespace demuxabr
