// Small string helpers shared by the manifest parsers and CSV tooling.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace demuxabr {

/// Split on a single-character delimiter. Keeps empty fields.
std::vector<std::string> split(std::string_view text, char delimiter);

/// Split into lines, accepting "\n" and "\r\n" endings. Keeps empty lines.
std::vector<std::string> split_lines(std::string_view text);

/// Strip leading/trailing ASCII whitespace.
std::string_view trim(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

/// Case-sensitive replace of all occurrences.
std::string replace_all(std::string text, std::string_view from, std::string_view to);

/// Parse helpers returning nullopt on any syntax error / trailing garbage.
std::optional<std::int64_t> parse_int(std::string_view text);
std::optional<double> parse_double(std::string_view text);

/// Join pieces with a separator.
std::string join(const std::vector<std::string>& pieces, std::string_view separator);

/// printf-style formatting into std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Parse an HLS attribute list: KEY=VALUE,KEY="quoted,value",...
/// Returns pairs in file order. Quoted values have quotes removed.
std::vector<std::pair<std::string, std::string>> parse_attribute_list(std::string_view text);

/// Serialize one attribute value, quoting when HLS requires it.
std::string quote_attribute(std::string_view value);

}  // namespace demuxabr
