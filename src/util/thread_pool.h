// ThreadPool: a work-stealing task pool for fanning independent jobs
// (e.g. whole streaming-session simulations) across CPU cores.
//
// Design: one deque per worker. submit() distributes tasks round-robin
// across the deques; a worker pops from the front of its own deque and,
// when empty, steals from the *back* of a sibling's. Tasks are opaque
// callables; results and exceptions travel through the std::future that
// submit() returns.
//
// Shutdown is graceful: shutdown() (or the destructor) lets workers drain
// every task that was queued before the call, then joins them. submit()
// after shutdown() throws.
//
// The pool makes no ordering promise between tasks on different workers —
// callers that need deterministic output (SweepRunner) must key results by
// submission index, not completion order.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace demuxabr {

class ThreadPool {
 public:
  /// `thread_count` 0 selects default_thread_count() (hardware concurrency).
  explicit ThreadPool(unsigned thread_count = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Queue a callable; the returned future yields its result (or rethrows
  /// the exception it raised). Throws std::runtime_error after shutdown().
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    enqueue([task]() { (*task)(); });
    return future;
  }

  /// Drain all queued work, then stop and join every worker. Idempotent.
  void shutdown();

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// std::thread::hardware_concurrency(), never less than 1.
  [[nodiscard]] static unsigned default_thread_count();

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void enqueue(std::function<void()> task);
  bool try_pop(std::size_t worker_index, std::function<void()>& task);
  void worker_loop(std::size_t worker_index);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  /// Guards the sleep/wake protocol; pending_ is mutated under it so a
  /// worker checking the wait predicate cannot miss a wakeup.
  std::mutex sleep_mutex_;
  std::condition_variable wakeup_;
  std::atomic<std::size_t> pending_{0};  ///< queued-but-unclaimed tasks
  std::atomic<std::size_t> next_queue_{0};
  std::atomic<bool> stopping_{false};
};

}  // namespace demuxabr
