#include "util/logging.h"

#include <cstdio>

namespace demuxabr {
namespace {
LogLevel g_level = LogLevel::kWarn;
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void log_message(LogLevel level, const char* file, int line, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) return;
  // Strip directories from __FILE__ for readability.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::fprintf(stderr, "[%s] %s:%d %s\n", log_level_name(level), base, line, message.c_str());
}

}  // namespace demuxabr
