#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "util/strings.h"

namespace demuxabr {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::atomic<LogSink*> g_sink{nullptr};

/// Applies DMX_LOG_LEVEL once at process start (before main). set_log_level
/// calls afterwards override it.
[[maybe_unused]] const bool g_env_applied = [] {
  apply_env_log_level();
  return true;
}();

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

std::optional<LogLevel> parse_log_level(std::string_view name) {
  std::string lower(name);
  for (char& c : lower) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "trace") return LogLevel::kTrace;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return std::nullopt;
}

std::optional<LogLevel> apply_env_log_level() {
  const char* value = std::getenv("DMX_LOG_LEVEL");
  if (value == nullptr) return std::nullopt;
  const std::optional<LogLevel> level = parse_log_level(value);
  if (level.has_value()) set_log_level(*level);
  return level;
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void set_log_sink(LogSink* sink) {
  g_sink.store(sink, std::memory_order_release);
}

LogSink* log_sink() { return g_sink.load(std::memory_order_acquire); }

bool CaptureLogSink::contains(std::string_view needle) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::string& line : lines_) {
    if (line.find(needle) != std::string::npos) return true;
  }
  return false;
}

void log_message(LogLevel level, const char* file, int line, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  // Strip directories from __FILE__ for readability.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::string formatted =
      format("[%s] %s:%d ", log_level_name(level), base, line);
  formatted += message;

  if (LogSink* sink = g_sink.load(std::memory_order_acquire)) {
    sink->write_line(level, formatted);
    return;
  }
  // Default: one fwrite per line so concurrent writers (fleet replications
  // on the pool) never interleave bytes mid-line.
  formatted += '\n';
  std::fwrite(formatted.data(), 1, formatted.size(), stderr);
}

}  // namespace demuxabr
