#include "util/rng.h"

#include <cassert>
#include <cmath>

namespace demuxabr {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53-bit mantissa; value in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

double Rng::normal() {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  // Box-Muller. uniform() can return 0; nudge to avoid log(0).
  double u1 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_normal_ = r * std::sin(theta);
  have_spare_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double lambda) {
  assert(lambda > 0.0);
  double u = uniform();
  if (u < 1e-300) u = 1e-300;
  return -std::log(u) / lambda;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return 0;
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (x < w) return i;
    x -= w;
  }
  return weights.size() - 1;
}

ZipfDistribution::ZipfDistribution(std::size_t n, double exponent) {
  assert(n > 0);
  cdf_.reserve(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), exponent);
    cdf_.push_back(total);
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfDistribution::sample(Rng& rng) const {
  const double u = rng.uniform();
  std::size_t lo = 0;
  std::size_t hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double ZipfDistribution::pmf(std::size_t k) const {
  assert(k < cdf_.size());
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

}  // namespace demuxabr
