#include "util/strings.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace demuxabr {

std::vector<std::string> split(std::string_view text, char delimiter) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delimiter) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_lines(std::string_view text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == '\n') {
      std::string_view line = text.substr(start, i - start);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      if (i == text.size() && line.empty() && start == text.size() && !out.empty()) break;
      out.emplace_back(line);
      start = i + 1;
    }
  }
  // A trailing newline should not add a phantom empty line.
  if (!text.empty() && text.back() == '\n' && !out.empty() && out.back().empty()) out.pop_back();
  return out;
}

std::string_view trim(std::string_view text) {
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

std::string replace_all(std::string text, std::string_view from, std::string_view to) {
  if (from.empty()) return text;
  std::size_t pos = 0;
  while ((pos = text.find(from, pos)) != std::string::npos) {
    text.replace(pos, from.size(), to);
    pos += to.size();
  }
  return text;
}

std::optional<std::int64_t> parse_int(std::string_view text) {
  text = trim(text);
  if (text.empty()) return std::nullopt;
  std::string buf(text);
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return std::nullopt;
  return static_cast<std::int64_t>(v);
}

std::optional<double> parse_double(std::string_view text) {
  text = trim(text);
  if (text.empty()) return std::nullopt;
  std::string buf(text);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return std::nullopt;
  return v;
}

std::string join(const std::vector<std::string>& pieces, std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i != 0) out += separator;
    out += pieces[i];
  }
  return out;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::vector<std::pair<std::string, std::string>> parse_attribute_list(std::string_view text) {
  std::vector<std::pair<std::string, std::string>> out;
  std::size_t i = 0;
  const std::size_t n = text.size();
  while (i < n) {
    // key
    std::size_t key_start = i;
    while (i < n && text[i] != '=') ++i;
    if (i >= n) break;
    std::string key(trim(text.substr(key_start, i - key_start)));
    ++i;  // skip '='
    std::string value;
    if (i < n && text[i] == '"') {
      ++i;
      const std::size_t value_start = i;
      while (i < n && text[i] != '"') ++i;
      value.assign(text.substr(value_start, i - value_start));
      if (i < n) ++i;  // closing quote
      // skip to next comma
      while (i < n && text[i] != ',') ++i;
    } else {
      const std::size_t value_start = i;
      while (i < n && text[i] != ',') ++i;
      value.assign(trim(text.substr(value_start, i - value_start)));
    }
    if (i < n && text[i] == ',') ++i;
    out.emplace_back(std::move(key), std::move(value));
  }
  return out;
}

std::string quote_attribute(std::string_view value) {
  return "\"" + std::string(value) + "\"";
}

}  // namespace demuxabr
