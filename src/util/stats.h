// Streaming statistics primitives used by bandwidth estimators, metrics and
// benchmarks: running mean/variance, EWMA (time and sample based), sliding
// percentile (ExoPlayer-style weighted), harmonic mean window.
#pragma once

#include <cstddef>
#include <vector>

namespace demuxabr {

/// Welford running mean / variance / min / max.
class RunningStats {
 public:
  void add(double x);
  void clear();

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Classic sample-count EWMA: v <- alpha * x + (1 - alpha) * v.
class Ewma {
 public:
  explicit Ewma(double alpha) : alpha_(alpha) {}

  void add(double x);
  void reset();

  [[nodiscard]] bool empty() const { return !initialized_; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

/// Half-life weighted EWMA as used by Shaka Player's bandwidth estimator:
/// each sample carries a weight (e.g. transfer duration in seconds) and the
/// decay is expressed as a half-life over accumulated weight. The estimate is
/// bias-corrected for the initial missing mass, matching shaka.abr.Ewma.
class HalfLifeEwma {
 public:
  explicit HalfLifeEwma(double half_life);

  /// Add a sample `x` carrying `weight` units (seconds of transfer).
  void add(double weight, double x);
  void reset();

  /// Bias-corrected estimate. Memoized between mutations: the correction is
  /// a pow() per call, and the session samples the estimate every tick while
  /// new samples only arrive on transfer progress.
  [[nodiscard]] double estimate() const;
  [[nodiscard]] double total_weight() const { return total_weight_; }

 private:
  double half_life_;
  double estimate_ = 0.0;
  double total_weight_ = 0.0;
  mutable double cached_estimate_ = 0.0;
  mutable bool estimate_stale_ = true;
};

/// Sliding percentile with sample weights, modelled after ExoPlayer's
/// SlidingPercentile (DefaultBandwidthMeter): keeps at most `max_weight`
/// total weight, evicting oldest samples, and answers weighted percentile
/// queries over the retained window.
class SlidingPercentile {
 public:
  explicit SlidingPercentile(double max_weight);

  void add(double weight, double value);
  /// Weighted percentile in [0,1]; returns fallback when empty. Both the
  /// sorted view and the final answer are cached between queries and
  /// invalidated only when the window changes, so repeated readouts of the
  /// same fraction (every ExoPlayer estimate sample) cost two loads — no
  /// allocation, sort, or prefix walk.
  [[nodiscard]] double percentile(double fraction, double fallback) const;
  [[nodiscard]] bool empty() const { return count_ == 0; }
  void clear();

 private:
  struct Sample {
    double weight;
    double value;
  };
  void push_back(const Sample& sample);
  void pop_front();

  double max_weight_;
  double total_weight_ = 0.0;
  /// Power-of-two ring in insertion order (eviction pops the head).
  std::vector<Sample> ring_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  /// Sorted scratch: the window's samples, materialized in insertion order
  /// and sorted by value. Rebuilt lazily — same input sequence as sorting
  /// fresh per query, so results are identical.
  mutable std::vector<Sample> sorted_;
  mutable bool sorted_stale_ = true;
  /// Memoized answer for the last queried fraction (players query a single
  /// configured fraction, so this hits on every read between adds).
  mutable double cached_fraction_ = -1.0;
  mutable double cached_result_ = 0.0;
  mutable bool result_stale_ = true;
};

/// Fixed-size window over the last N samples with arithmetic and harmonic
/// means (dash.js ThroughputRule style).
class SlidingWindow {
 public:
  explicit SlidingWindow(std::size_t capacity);

  void add(double x);
  void clear();

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] bool full() const { return count_ == capacity_; }
  /// Arithmetic mean, memoized between adds (dash.js samples it every tick
  /// via the session's bandwidth-estimate series).
  [[nodiscard]] double mean() const;
  [[nodiscard]] double harmonic_mean() const;
  [[nodiscard]] double last() const;

 private:
  std::size_t capacity_;
  /// Fixed ring, capacity known at construction: one allocation ever. The
  /// folds walk oldest→newest so floating-point sum order matches the
  /// historical deque iteration.
  std::vector<double> ring_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  mutable double cached_mean_ = 0.0;
  mutable bool mean_stale_ = true;
};

/// Percentile of an unsorted vector (copies + sorts). fraction in [0,1].
double percentile_of(std::vector<double> values, double fraction);

/// Jain's fairness index: (Σx)² / (n·Σx²) over non-negative allocations.
/// 1.0 = perfectly fair (all equal, including all-zero), 1/n = one client
/// hogs everything. Returns 0.0 for an empty vector.
double jain_fairness(const std::vector<double>& values);

/// Order statistics of a sample in one pass: the fleet-report summary shape
/// (per-client bitrate, stall-ratio, buffer-imbalance distributions).
struct PercentileSummary {
  std::size_t count = 0;
  double min = 0.0;
  double p25 = 0.0;
  double p50 = 0.0;
  double p75 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
  double mean = 0.0;
};

/// Summarize an unsorted sample (copies + sorts once; percentiles are
/// linearly interpolated, consistent with percentile_of).
PercentileSummary summarize_percentiles(std::vector<double> values);

}  // namespace demuxabr
