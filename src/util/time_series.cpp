#include "util/time_series.h"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "util/strings.h"

namespace demuxabr {

void TimeSeries::clear() { points_.clear(); }

void TimeSeries::reserve(std::size_t points) { points_.reserve(points); }

double TimeSeries::value_at(double t, double fallback) const {
  if (points_.empty() || t < points_.front().t) return fallback;
  // Binary search for the last point with point.t <= t.
  auto it = std::upper_bound(points_.begin(), points_.end(), t,
                             [](double x, const Point& p) { return x < p.t; });
  return std::prev(it)->value;
}

double TimeSeries::time_weighted_mean(double t0, double t1) const {
  if (points_.empty() || t1 <= t0) return 0.0;
  double area = 0.0;
  double covered = 0.0;
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const double seg_start = std::max(points_[i].t, t0);
    const double seg_end =
        std::min(i + 1 < points_.size() ? points_[i + 1].t : t1, t1);
    if (seg_end <= seg_start) continue;
    area += points_[i].value * (seg_end - seg_start);
    covered += (seg_end - seg_start);
  }
  return covered > 0.0 ? area / covered : 0.0;
}

double TimeSeries::min_value() const {
  if (points_.empty()) return 0.0;
  double m = points_.front().value;
  for (const Point& p : points_) m = std::min(m, p.value);
  return m;
}

double TimeSeries::max_value() const {
  if (points_.empty()) return 0.0;
  double m = points_.front().value;
  for (const Point& p : points_) m = std::max(m, p.value);
  return m;
}

std::size_t TimeSeries::change_count() const {
  std::size_t changes = 0;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (points_[i].value != points_[i - 1].value) ++changes;
  }
  return changes;
}

TimeSeries TimeSeries::resample(double t0, double t1, double step) const {
  assert(step > 0.0);
  TimeSeries out;
  for (double t = t0; t <= t1 + 1e-9; t += step) {
    out.add(t, value_at(t, points_.empty() ? 0.0 : points_.front().value));
  }
  return out;
}

std::string TimeSeries::to_csv(const std::string& value_column) const {
  std::ostringstream out;
  out << "t," << value_column << '\n';
  for (const Point& p : points_) {
    out << format("%.3f,%.3f", p.t, p.value) << '\n';
  }
  return out.str();
}

}  // namespace demuxabr
