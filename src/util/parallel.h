// Deterministic fan-out / ordered-merge: the one parallelism recipe this
// codebase uses (replication sweeps, experiment sweeps, fleet shard
// execution). N independent jobs run on a work-stealing ThreadPool; results
// come back indexed by submission order, so completion order — the only
// nondeterministic quantity — never leaks into the output. threads <= 1
// degenerates to the plain serial loop, bit-for-bit (no pool is built).
#pragma once

#include <cstddef>
#include <future>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/thread_pool.h"

namespace demuxabr {

/// Run job(i) for i in [0, count) and return the results indexed by i.
/// `job` must be safe to invoke concurrently from pool workers (it may
/// capture shared *immutable* state); the result type must be
/// default-constructible and movable. `threads` 0 selects
/// ThreadPool::default_thread_count(); exceptions from any job propagate
/// (the first one in index order wins).
template <typename Job>
auto fan_out_ordered(std::size_t count, int threads, Job&& job)
    -> std::vector<std::invoke_result_t<Job&, std::size_t>> {
  using Result = std::invoke_result_t<Job&, std::size_t>;
  std::vector<Result> results(count);
  const int effective = threads == 0
                            ? static_cast<int>(ThreadPool::default_thread_count())
                            : threads;
  if (effective <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) results[i] = job(i);
    return results;
  }
  ThreadPool pool(static_cast<unsigned>(effective));
  std::vector<std::future<Result>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(pool.submit([&job, i] { return job(i); }));
  }
  // Collected in submission order: completion order never leaks through.
  for (std::size_t i = 0; i < count; ++i) results[i] = futures[i].get();
  return results;
}

}  // namespace demuxabr
