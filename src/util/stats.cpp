#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace demuxabr {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::clear() { *this = RunningStats{}; }

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void Ewma::add(double x) {
  if (!initialized_) {
    value_ = x;
    initialized_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
}

void Ewma::reset() {
  value_ = 0.0;
  initialized_ = false;
}

HalfLifeEwma::HalfLifeEwma(double half_life) : half_life_(half_life) {
  assert(half_life > 0.0);
}

void HalfLifeEwma::add(double weight, double x) {
  if (weight <= 0.0) return;
  const double adjusted_alpha = std::pow(0.5, weight / half_life_);
  estimate_ = x * (1.0 - adjusted_alpha) + adjusted_alpha * estimate_;
  total_weight_ += weight;
  estimate_stale_ = true;
}

void HalfLifeEwma::reset() {
  estimate_ = 0.0;
  total_weight_ = 0.0;
  estimate_stale_ = true;
}

double HalfLifeEwma::estimate() const {
  if (total_weight_ <= 0.0) return 0.0;
  if (estimate_stale_) {
    const double zero_factor = 1.0 - std::pow(0.5, total_weight_ / half_life_);
    cached_estimate_ = estimate_ / zero_factor;
    estimate_stale_ = false;
  }
  return cached_estimate_;
}

SlidingPercentile::SlidingPercentile(double max_weight) : max_weight_(max_weight) {
  assert(max_weight > 0.0);
}

void SlidingPercentile::push_back(const Sample& sample) {
  if (count_ == ring_.size()) {
    const std::size_t old_capacity = ring_.size();
    std::vector<Sample> grown(std::max<std::size_t>(8, old_capacity * 2));
    for (std::size_t i = 0; i < count_; ++i) {
      grown[i] = ring_[(head_ + i) & (old_capacity - 1)];
    }
    ring_.swap(grown);
    head_ = 0;
  }
  ring_[(head_ + count_) & (ring_.size() - 1)] = sample;
  ++count_;
}

void SlidingPercentile::pop_front() {
  head_ = (head_ + 1) & (ring_.size() - 1);
  --count_;
}

void SlidingPercentile::add(double weight, double value) {
  if (weight <= 0.0) return;
  push_back({weight, value});
  total_weight_ += weight;
  while (total_weight_ > max_weight_ && count_ > 1) {
    total_weight_ -= ring_[head_].weight;
    pop_front();
  }
  sorted_stale_ = true;
  result_stale_ = true;
}

double SlidingPercentile::percentile(double fraction, double fallback) const {
  if (count_ == 0) return fallback;
  if (!result_stale_ && fraction == cached_fraction_) return cached_result_;
  if (sorted_stale_) {
    // Materialize in insertion order before sorting — the exact input
    // sequence the historical per-query copy sorted, so the (unstable) sort
    // produces the identical permutation.
    sorted_.clear();
    for (std::size_t i = 0; i < count_; ++i) {
      sorted_.push_back(ring_[(head_ + i) & (ring_.size() - 1)]);
    }
    std::sort(sorted_.begin(), sorted_.end(),
              [](const Sample& a, const Sample& b) { return a.value < b.value; });
    sorted_stale_ = false;
  }
  const double target = std::clamp(fraction, 0.0, 1.0) * total_weight_;
  double acc = 0.0;
  double result = sorted_.back().value;
  for (const Sample& s : sorted_) {
    acc += s.weight;
    // Epsilon guards the acc == target case against accumulation error.
    if (acc + 1e-9 * total_weight_ >= target) {
      result = s.value;
      break;
    }
  }
  cached_fraction_ = fraction;
  cached_result_ = result;
  result_stale_ = false;
  return result;
}

void SlidingPercentile::clear() {
  head_ = 0;
  count_ = 0;
  total_weight_ = 0.0;
  sorted_stale_ = true;
  result_stale_ = true;
}

SlidingWindow::SlidingWindow(std::size_t capacity)
    : capacity_(capacity), ring_(capacity) {
  assert(capacity > 0);
}

void SlidingWindow::add(double x) {
  if (count_ == capacity_) {
    ring_[head_] = x;
    head_ = (head_ + 1) % capacity_;
  } else {
    ring_[(head_ + count_) % capacity_] = x;
    ++count_;
  }
  mean_stale_ = true;
}

void SlidingWindow::clear() {
  head_ = 0;
  count_ = 0;
  mean_stale_ = true;
}

double SlidingWindow::mean() const {
  if (count_ == 0) return 0.0;
  if (mean_stale_) {
    double sum = 0.0;
    for (std::size_t i = 0; i < count_; ++i) sum += ring_[(head_ + i) % capacity_];
    cached_mean_ = sum / static_cast<double>(count_);
    mean_stale_ = false;
  }
  return cached_mean_;
}

double SlidingWindow::harmonic_mean() const {
  if (count_ == 0) return 0.0;
  double denom = 0.0;
  for (std::size_t i = 0; i < count_; ++i) {
    const double x = ring_[(head_ + i) % capacity_];
    if (x <= 0.0) return 0.0;
    denom += 1.0 / x;
  }
  return static_cast<double>(count_) / denom;
}

double SlidingWindow::last() const {
  return count_ == 0 ? 0.0 : ring_[(head_ + count_ - 1) % capacity_];
}

double percentile_of(std::vector<double> values, double fraction) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double pos = std::clamp(fraction, 0.0, 1.0) * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double jain_fairness(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : values) {
    sum += x;
    sum_sq += x * x;
  }
  // All-zero allocations are equal allocations: call that fair rather than
  // dividing by zero.
  if (sum_sq <= 0.0) return 1.0;
  return sum * sum / (static_cast<double>(values.size()) * sum_sq);
}

namespace {

/// Percentile of an already-sorted sample (percentile_of's interpolation).
double sorted_percentile(const std::vector<double>& sorted, double fraction) {
  const double pos = std::clamp(fraction, 0.0, 1.0) *
                     static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

PercentileSummary summarize_percentiles(std::vector<double> values) {
  PercentileSummary summary;
  if (values.empty()) return summary;
  std::sort(values.begin(), values.end());
  summary.count = values.size();
  summary.min = values.front();
  summary.max = values.back();
  summary.p25 = sorted_percentile(values, 0.25);
  summary.p50 = sorted_percentile(values, 0.50);
  summary.p75 = sorted_percentile(values, 0.75);
  summary.p90 = sorted_percentile(values, 0.90);
  summary.p99 = sorted_percentile(values, 0.99);
  double sum = 0.0;
  for (double x : values) sum += x;
  summary.mean = sum / static_cast<double>(values.size());
  return summary;
}

}  // namespace demuxabr
