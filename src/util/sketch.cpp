#include "util/sketch.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace demuxabr {

QuantileSketch::QuantileSketch(double relative_error) : alpha_(relative_error) {
  assert(alpha_ > 0.0 && alpha_ < 1.0);
  gamma_ = (1.0 + alpha_) / (1.0 - alpha_);
  inv_log_gamma_ = 1.0 / std::log(gamma_);
}

int QuantileSketch::bucket_index(double x) const {
  return static_cast<int>(std::ceil(std::log(x) * inv_log_gamma_));
}

double QuantileSketch::bucket_value(int index) const {
  // Midpoint of (gamma^(i-1), gamma^i] in the multiplicative sense: within
  // relative error alpha of every value the bucket can hold.
  return 2.0 * std::pow(gamma_, index) / (gamma_ + 1.0);
}

void QuantileSketch::bump(int index, std::uint64_t by) {
  if (buckets_.empty()) {
    base_index_ = index;
    buckets_.push_back(by);
    return;
  }
  if (index < base_index_) {
    buckets_.insert(buckets_.begin(),
                    static_cast<std::size_t>(base_index_ - index), 0);
    base_index_ = index;
  } else if (index >= base_index_ + static_cast<int>(buckets_.size())) {
    buckets_.resize(static_cast<std::size_t>(index - base_index_) + 1, 0);
  }
  buckets_[static_cast<std::size_t>(index - base_index_)] += by;
}

void QuantileSketch::add(double x) {
  if (!std::isfinite(x) || x < 0.0) x = 0.0;
  if (total_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++total_;
  sum_ += x;
  if (x <= kZeroEps) {
    ++zero_count_;
    return;
  }
  bump(bucket_index(x), 1);
}

void QuantileSketch::merge(const QuantileSketch& other) {
  assert(alpha_ == other.alpha_ && "sketches must share a bucket grid");
  if (other.total_ == 0) return;
  if (total_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  total_ += other.total_;
  sum_ += other.sum_;
  zero_count_ += other.zero_count_;
  for (std::size_t b = 0; b < other.buckets_.size(); ++b) {
    if (other.buckets_[b] > 0) {
      bump(other.base_index_ + static_cast<int>(b), other.buckets_[b]);
    }
  }
}

double QuantileSketch::quantile(double fraction) const {
  if (total_ == 0) return 0.0;
  fraction = std::clamp(fraction, 0.0, 1.0);
  // Rank convention of percentile_of: position q * (n - 1); the bucket
  // holding the sample at floor(position) answers.
  const double rank = fraction * static_cast<double>(total_ - 1);
  double cumulative = static_cast<double>(zero_count_);
  if (cumulative > rank) return 0.0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    cumulative += static_cast<double>(buckets_[b]);
    if (cumulative > rank) {
      // Clamp to the exact extremes so q=0 / q=1 return min/max verbatim.
      return std::clamp(bucket_value(base_index_ + static_cast<int>(b)), min_, max_);
    }
  }
  return max_;
}

PercentileSummary QuantileSketch::summary() const {
  PercentileSummary s;
  s.count = count();
  if (total_ == 0) return s;
  s.min = min_;
  s.max = max_;
  s.mean = mean();
  s.p25 = quantile(0.25);
  s.p50 = quantile(0.50);
  s.p75 = quantile(0.75);
  s.p90 = quantile(0.90);
  s.p99 = quantile(0.99);
  return s;
}

}  // namespace demuxabr
