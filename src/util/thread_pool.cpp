#include "util/thread_pool.h"

#include <algorithm>
#include <stdexcept>

namespace demuxabr {

unsigned ThreadPool::default_thread_count() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned thread_count) {
  const unsigned n = thread_count > 0 ? thread_count : default_thread_count();
  queues_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::enqueue(std::function<void()> task) {
  if (stopping_.load(std::memory_order_acquire)) {
    throw std::runtime_error("ThreadPool::submit after shutdown");
  }
  WorkerQueue& queue =
      *queues_[next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size()];
  {
    std::lock_guard<std::mutex> lock(queue.mutex);
    queue.tasks.push_back(std::move(task));
  }
  {
    // Ordered against the wait predicate so a parked worker cannot miss it.
    std::lock_guard<std::mutex> sleep_lock(sleep_mutex_);
    pending_.fetch_add(1, std::memory_order_release);
  }
  wakeup_.notify_one();
}

bool ThreadPool::try_pop(std::size_t worker_index, std::function<void()>& task) {
  const std::size_t n = queues_.size();
  for (std::size_t i = 0; i < n; ++i) {
    WorkerQueue& queue = *queues_[(worker_index + i) % n];
    std::lock_guard<std::mutex> lock(queue.mutex);
    if (queue.tasks.empty()) continue;
    if (i == 0) {
      // Own queue: FIFO front (preserves submission order per worker).
      task = std::move(queue.tasks.front());
      queue.tasks.pop_front();
    } else {
      // Steal from the back of a sibling — the end its owner touches last.
      task = std::move(queue.tasks.back());
      queue.tasks.pop_back();
    }
    pending_.fetch_sub(1, std::memory_order_release);
    return true;
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  std::function<void()> task;
  for (;;) {
    if (try_pop(worker_index, task)) {
      task();
      task = nullptr;
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    wakeup_.wait(lock, [this] {
      return pending_.load(std::memory_order_acquire) > 0 ||
             stopping_.load(std::memory_order_acquire);
    });
    if (stopping_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    stopping_.store(true, std::memory_order_release);
  }
  wakeup_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

}  // namespace demuxabr
