// MonotonicArena: a chunked bump allocator for engine state whose lifetime
// is one fleet run (DESIGN.md §12). allocate() is a pointer bump; nothing
// is freed individually — the arena releases everything at destruction (or
// rewinds wholesale via reset()). The fleet scheduler owns one arena per
// shard and backs the drain loop's long-lived structures with it: the
// per-channel completion registries, the event heap, the drain scratch
// buffers and each session's pending-delivery queue. Those structures grow
// to a high-water capacity early and then only recycle their slots, so
// steady-state drain work performs zero heap allocations — any residual
// growth (a new peak in concurrent flows, a first cache delivery) is an
// arena bump, not a malloc.
//
// Deliberately NOT used for per-client blocks (sessions, players, logs):
// clients churn through a long fleet by the thousand and their memory must
// return to the heap at retirement; a monotonic arena would turn that churn
// into unbounded growth at million-client scale.
//
// Single-threaded by design, like the engine it serves: each shard's arena
// is touched only by the thread running that shard (fleet/shard.h hands one
// scheduler — and thus one arena — to each worker).
#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <new>
#include <vector>

namespace demuxabr {

class MonotonicArena {
 public:
  /// `first_chunk_bytes` sizes the initial chunk; later chunks double (and
  /// stretch further to fit any single oversized request).
  explicit MonotonicArena(std::size_t first_chunk_bytes = 4096)
      : next_chunk_bytes_(first_chunk_bytes > 0 ? first_chunk_bytes : 4096) {}

  // Containers hold raw pointers to the arena: pinning it (no copies or
  // moves) makes dangling-by-relocation impossible.
  MonotonicArena(const MonotonicArena&) = delete;
  MonotonicArena& operator=(const MonotonicArena&) = delete;

  /// Bump-allocate `bytes` aligned to `align` (a power of two). Never
  /// returns nullptr: an oversized request simply grows the next chunk.
  void* allocate(std::size_t bytes, std::size_t align) {
    assert(align > 0 && (align & (align - 1)) == 0 && "align: power of two");
    // Chunk bases come from new[] (max_align-aligned), so offset arithmetic
    // is valid for any supported alignment.
    assert(align <= alignof(std::max_align_t));
    if (bytes == 0) bytes = 1;
    const std::size_t aligned = align_up(offset_, align);
    if (active_ < chunks_.size() && aligned + bytes <= chunks_[active_].size) {
      offset_ = aligned + bytes;
      allocated_ += bytes;
      return chunks_[active_].data.get() + aligned;
    }
    return allocate_slow(bytes, align);
  }

  /// Rewind to empty without releasing chunks: the next run reuses the same
  /// memory. Everything previously allocated becomes invalid.
  void reset() {
    active_ = 0;
    offset_ = 0;
    allocated_ = 0;
  }

  /// Payload bytes handed out since construction / the last reset()
  /// (alignment padding excluded).
  [[nodiscard]] std::size_t bytes_allocated() const { return allocated_; }
  /// Total chunk bytes owned (the arena's own footprint).
  [[nodiscard]] std::size_t bytes_reserved() const { return reserved_; }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  [[nodiscard]] static std::size_t align_up(std::size_t n, std::size_t align) {
    return (n + align - 1) & ~(align - 1);
  }

  void* allocate_slow(std::size_t bytes, std::size_t align) {
    // Advance through retained chunks (after a reset) before growing. A
    // fresh chunk is aligned to max_align by operator new[], so offset 0
    // satisfies any supported alignment.
    while (active_ + 1 < chunks_.size()) {
      ++active_;
      offset_ = 0;
      const std::size_t aligned = align_up(offset_, align);
      if (aligned + bytes <= chunks_[active_].size) {
        offset_ = aligned + bytes;
        allocated_ += bytes;
        return chunks_[active_].data.get() + aligned;
      }
    }
    std::size_t chunk_bytes = next_chunk_bytes_;
    if (chunk_bytes < bytes) chunk_bytes = bytes;
    next_chunk_bytes_ = chunk_bytes * 2;
    chunks_.push_back({std::make_unique<std::byte[]>(chunk_bytes), chunk_bytes});
    reserved_ += chunk_bytes;
    active_ = chunks_.size() - 1;
    offset_ = bytes;
    allocated_ += bytes;
    return chunks_[active_].data.get();
  }

  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;  ///< chunk currently being bumped
  std::size_t offset_ = 0;  ///< bump offset within the active chunk
  std::size_t allocated_ = 0;
  std::size_t reserved_ = 0;
  std::size_t next_chunk_bytes_;
};

/// std-compatible allocator over a MonotonicArena. A null arena falls back
/// to the global heap, so a default-constructed container works everywhere
/// (solo sessions, tests) and only fleet-owned instances bind to an arena.
/// deallocate() is a no-op when arena-backed — the container's discarded
/// growth buffers stay parked in the arena until reset()/destruction, the
/// monotonic trade: a bounded amount of dead capacity for malloc-free
/// steady state.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  // All three propagate so container copy/move/swap carry the arena along
  // instead of hitting the unequal-allocator slow paths.
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;
  using is_always_equal = std::false_type;

  ArenaAllocator() noexcept = default;
  explicit ArenaAllocator(MonotonicArena* arena) noexcept : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept  // NOLINT(google-explicit-constructor)
      : arena_(other.arena()) {}

  [[nodiscard]] T* allocate(std::size_t n) {
    if (arena_ != nullptr) {
      return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
    }
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t /*n*/) noexcept {
    if (arena_ == nullptr) ::operator delete(p);
  }

  [[nodiscard]] MonotonicArena* arena() const noexcept { return arena_; }

 private:
  MonotonicArena* arena_ = nullptr;
};

template <typename T, typename U>
bool operator==(const ArenaAllocator<T>& a, const ArenaAllocator<U>& b) noexcept {
  return a.arena() == b.arena();
}
template <typename T, typename U>
bool operator!=(const ArenaAllocator<T>& a, const ArenaAllocator<U>& b) noexcept {
  return !(a == b);
}

}  // namespace demuxabr
