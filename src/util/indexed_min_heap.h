// Indexed d-ary min-heap (kArity below) over dense integer ids with
// deterministic (key, id) ordering. The index makes decrease-key/erase
// O(log n) by id — the primitive under both the fleet event heap (entries
// keyed by wall-clock event time) and each Link's completion registry
// (entries keyed by virtual-service targets, which never change when the
// flow population or capacity does).
//
// The arity and the hole-based sifts are pure layout/performance choices:
// the heap's observable behaviour — pop order, key_of, contains — is the
// total (key, id) order, identical for any internal arrangement, so
// engines built on this heap produce byte-identical results regardless.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

namespace demuxabr {

/// One heap slot: dense integer id + ordering key.
struct HeapEntry {
  std::uint32_t id = 0;
  double key = 0.0;
};

/// Allocator-parameterised heap: the fleet engine binds its instances (the
/// event heap, every channel's completion registry) to a per-shard
/// MonotonicArena via ArenaAllocator so registry growth never touches the
/// global heap; everyone else uses the plain `IndexedMinHeap` alias below.
template <typename EntryAlloc = std::allocator<HeapEntry>>
class BasicIndexedMinHeap {
 public:
  using Entry = HeapEntry;
  using PosAlloc = typename std::allocator_traits<
      EntryAlloc>::template rebind_alloc<std::int32_t>;

  BasicIndexedMinHeap() = default;
  explicit BasicIndexedMinHeap(const EntryAlloc& alloc)
      : heap_(alloc), pos_(PosAlloc(alloc)) {}

  /// Insert `id` with `key`, or re-key it if already present (moves up or
  /// down as needed). Ids should be dense: the position index grows to the
  /// largest id ever seen.
  void update(std::uint32_t id, double key) {
    ensure_slot(id);
    const std::int32_t at = pos_[id];
    if (at < 0) {
      pos_[id] = static_cast<std::int32_t>(heap_.size());
      heap_.push_back({id, key});
      sift_up(heap_.size() - 1);
    } else {
      const auto i = static_cast<std::size_t>(at);
      heap_[i].key = key;
      if (!sift_up(i)) sift_down(i);
    }
  }

  /// Remove `id` if present; no-op otherwise.
  void erase(std::uint32_t id) {
    if (id >= pos_.size() || pos_[id] < 0) return;
    const auto i = static_cast<std::size_t>(pos_[id]);
    pos_[id] = -1;
    const std::size_t last = heap_.size() - 1;
    if (i != last) {
      heap_[i] = heap_[last];
      pos_[heap_[i].id] = static_cast<std::int32_t>(i);
      heap_.pop_back();
      if (!sift_up(i)) sift_down(i);
    } else {
      heap_.pop_back();
    }
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  [[nodiscard]] const Entry& top() const {
    assert(!heap_.empty());
    return heap_.front();
  }

  Entry pop() {
    assert(!heap_.empty());
    const Entry result = heap_.front();
    erase(result.id);
    return result;
  }

  [[nodiscard]] bool contains(std::uint32_t id) const {
    return id < pos_.size() && pos_[id] >= 0;
  }

  [[nodiscard]] double key_of(std::uint32_t id) const {
    assert(contains(id));
    return heap_[static_cast<std::size_t>(pos_[id])].key;
  }

  void clear() {
    heap_.clear();
    pos_.assign(pos_.size(), -1);
  }

  void reserve(std::size_t n) {
    heap_.reserve(n);
    pos_.reserve(n);
  }

 private:
  /// Strict-weak order: key, then id. The id tiebreak makes pop order (and
  /// therefore every engine built on this heap) deterministic when several
  /// entries share a key.
  [[nodiscard]] static bool less(const Entry& a, const Entry& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.id < b.id;
  }

  void ensure_slot(std::uint32_t id) {
    if (id >= pos_.size()) pos_.resize(static_cast<std::size_t>(id) + 1, -1);
  }

  /// Branching factor. 2 measured best on the drain-loop mix (the decrease-
  /// key-heavy registry favours the shallower sift_down comparisons of a
  /// binary layout over 4-ary's cache density); any value preserves
  /// observable behaviour.
  static constexpr std::size_t kArity = 2;

  /// Hole-based sift: the displaced entry is held aside while ancestors
  /// shift down, so each level costs one entry move + one index write
  /// instead of a three-write swap. Returns true when the entry moved.
  bool sift_up(std::size_t i) {
    const Entry entry = heap_[i];
    bool moved = false;
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!less(entry, heap_[parent])) break;
      heap_[i] = heap_[parent];
      pos_[heap_[i].id] = static_cast<std::int32_t>(i);
      i = parent;
      moved = true;
    }
    if (moved) {
      heap_[i] = entry;
      pos_[entry.id] = static_cast<std::int32_t>(i);
    }
    return moved;
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    const Entry entry = heap_[i];
    bool moved = false;
    while (true) {
      const std::size_t first = kArity * i + 1;
      if (first >= n) break;
      std::size_t smallest = first;
      const std::size_t end = first + kArity < n ? first + kArity : n;
      for (std::size_t c = first + 1; c < end; ++c) {
        if (less(heap_[c], heap_[smallest])) smallest = c;
      }
      if (!less(heap_[smallest], entry)) break;
      heap_[i] = heap_[smallest];
      pos_[heap_[i].id] = static_cast<std::int32_t>(i);
      i = smallest;
      moved = true;
    }
    if (moved) {
      heap_[i] = entry;
      pos_[entry.id] = static_cast<std::int32_t>(i);
    }
  }

  std::vector<Entry, EntryAlloc> heap_;
  /// id -> heap index, -1 when absent
  std::vector<std::int32_t, PosAlloc> pos_;
};

using IndexedMinHeap = BasicIndexedMinHeap<>;

}  // namespace demuxabr
