// Indexed binary min-heap over dense integer ids with deterministic
// (key, id) ordering. The index makes decrease-key/increase-key/erase
// O(log n) by id — the primitive under both the fleet event heap (entries
// keyed by wall-clock event time) and each Link's completion registry
// (entries keyed by virtual-service targets, which never change when the
// flow population or capacity does).
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace demuxabr {

class IndexedMinHeap {
 public:
  struct Entry {
    std::uint32_t id = 0;
    double key = 0.0;
  };

  /// Insert `id` with `key`, or re-key it if already present (moves up or
  /// down as needed). Ids should be dense: the position index grows to the
  /// largest id ever seen.
  void update(std::uint32_t id, double key) {
    ensure_slot(id);
    const std::int32_t at = pos_[id];
    if (at < 0) {
      pos_[id] = static_cast<std::int32_t>(heap_.size());
      heap_.push_back({id, key});
      sift_up(heap_.size() - 1);
    } else {
      const auto i = static_cast<std::size_t>(at);
      heap_[i].key = key;
      if (!sift_up(i)) sift_down(i);
    }
  }

  /// Remove `id` if present; no-op otherwise.
  void erase(std::uint32_t id) {
    if (id >= pos_.size() || pos_[id] < 0) return;
    const auto i = static_cast<std::size_t>(pos_[id]);
    pos_[id] = -1;
    const std::size_t last = heap_.size() - 1;
    if (i != last) {
      heap_[i] = heap_[last];
      pos_[heap_[i].id] = static_cast<std::int32_t>(i);
      heap_.pop_back();
      if (!sift_up(i)) sift_down(i);
    } else {
      heap_.pop_back();
    }
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  [[nodiscard]] const Entry& top() const {
    assert(!heap_.empty());
    return heap_.front();
  }

  Entry pop() {
    assert(!heap_.empty());
    const Entry result = heap_.front();
    erase(result.id);
    return result;
  }

  [[nodiscard]] bool contains(std::uint32_t id) const {
    return id < pos_.size() && pos_[id] >= 0;
  }

  [[nodiscard]] double key_of(std::uint32_t id) const {
    assert(contains(id));
    return heap_[static_cast<std::size_t>(pos_[id])].key;
  }

  void clear() {
    heap_.clear();
    pos_.assign(pos_.size(), -1);
  }

  void reserve(std::size_t n) {
    heap_.reserve(n);
    pos_.reserve(n);
  }

 private:
  /// Strict-weak order: key, then id. The id tiebreak makes pop order (and
  /// therefore every engine built on this heap) deterministic when several
  /// entries share a key.
  [[nodiscard]] static bool less(const Entry& a, const Entry& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.id < b.id;
  }

  void ensure_slot(std::uint32_t id) {
    if (id >= pos_.size()) pos_.resize(static_cast<std::size_t>(id) + 1, -1);
  }

  /// Returns true when the entry moved.
  bool sift_up(std::size_t i) {
    bool moved = false;
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!less(heap_[i], heap_[parent])) break;
      swap_entries(i, parent);
      i = parent;
      moved = true;
    }
    return moved;
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    while (true) {
      std::size_t smallest = i;
      const std::size_t left = 2 * i + 1;
      const std::size_t right = 2 * i + 2;
      if (left < n && less(heap_[left], heap_[smallest])) smallest = left;
      if (right < n && less(heap_[right], heap_[smallest])) smallest = right;
      if (smallest == i) return;
      swap_entries(i, smallest);
      i = smallest;
    }
  }

  void swap_entries(std::size_t a, std::size_t b) {
    std::swap(heap_[a], heap_[b]);
    pos_[heap_[a].id] = static_cast<std::int32_t>(a);
    pos_[heap_[b].id] = static_cast<std::int32_t>(b);
  }

  std::vector<Entry> heap_;
  std::vector<std::int32_t> pos_;  ///< id -> heap index, -1 when absent
};

}  // namespace demuxabr
