#include "httpsim/lru_cache.h"

#include <cassert>

namespace demuxabr {

LruCache::LruCache(std::int64_t capacity_bytes) : capacity_bytes_(capacity_bytes) {
  assert(capacity_bytes >= 0);
}

bool LruCache::get(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  lru_.splice(lru_.begin(), lru_, it->second);
  return true;
}

void LruCache::put(const std::string& key, std::int64_t bytes) {
  assert(bytes >= 0);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Re-registration may change the object's size (VBR re-encode): account
    // the delta and re-run eviction so the capacity bound keeps holding. An
    // entry grown past the whole capacity evicts itself (it sits at the
    // front, so everything behind it goes first).
    lru_.splice(lru_.begin(), lru_, it->second);
    used_bytes_ += bytes - it->second->bytes;
    it->second->bytes = bytes;
    evict_until_fits(0);
    return;
  }
  if (capacity_bytes_ > 0 && bytes > capacity_bytes_) return;  // object can never fit
  evict_until_fits(bytes);
  lru_.push_front({key, bytes});
  entries_[key] = lru_.begin();
  used_bytes_ += bytes;
}

bool LruCache::contains(const std::string& key) const {
  return entries_.find(key) != entries_.end();
}

void LruCache::clear() {
  lru_.clear();
  entries_.clear();
  used_bytes_ = 0;
  evictions_ = 0;
}

void LruCache::evict_until_fits(std::int64_t incoming_bytes) {
  if (capacity_bytes_ == 0) return;  // unbounded
  while (!lru_.empty() && used_bytes_ + incoming_bytes > capacity_bytes_) {
    const Entry& victim = lru_.back();
    used_bytes_ -= victim.bytes;
    entries_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
  }
}

}  // namespace demuxabr
