#include "httpsim/workload.h"

#include <cassert>

#include "util/rng.h"

namespace demuxabr {
namespace {

struct UserChoice {
  std::string video_id;
  std::string audio_id;
};

/// Draw the per-user track choices once so both storage modes replay the
/// exact same demand.
std::vector<UserChoice> draw_users(const Content& content, const WorkloadConfig& config) {
  const BitrateLadder& ladder = content.ladder();
  Rng rng(config.seed);
  // Popularity rank: middle rungs most popular for video (index order is a
  // fine proxy for a synthetic population); audio rank 0 = most popular.
  ZipfDistribution video_dist(ladder.video_count(), config.zipf_exponent);
  ZipfDistribution audio_dist(ladder.audio_count(), config.zipf_exponent);
  std::vector<UserChoice> users;
  users.reserve(static_cast<std::size_t>(config.num_users));
  for (int u = 0; u < config.num_users; ++u) {
    UserChoice choice;
    choice.video_id = ladder.video()[video_dist.sample(rng)].id;
    choice.audio_id = ladder.audio()[audio_dist.sample(rng)].id;
    users.push_back(std::move(choice));
  }
  return users;
}

}  // namespace

WorkloadResult run_cdn_workload(const Content& content, StorageMode mode,
                                const WorkloadConfig& config) {
  const ObjectCatalog catalog = mode == StorageMode::kDemuxed
                                    ? build_demuxed_catalog(content)
                                    : build_muxed_catalog(content);
  std::int64_t capacity = 0;
  if (config.cache_fraction > 0.0) {
    capacity = static_cast<std::int64_t>(
        static_cast<double>(build_demuxed_catalog(content).total_bytes()) *
        config.cache_fraction);
  }
  CdnNode cdn(&catalog, capacity);

  const std::vector<UserChoice> users = draw_users(content, config);
  for (const UserChoice& user : users) {
    for (int chunk = 0; chunk < content.num_chunks(); ++chunk) {
      if (mode == StorageMode::kMuxed) {
        [[maybe_unused]] const auto result =
            cdn.fetch(chunk_object_key(user.video_id + "+" + user.audio_id, chunk));
        assert(result.found);
      } else {
        [[maybe_unused]] const auto video_result =
            cdn.fetch(chunk_object_key(user.video_id, chunk));
        [[maybe_unused]] const auto audio_result =
            cdn.fetch(chunk_object_key(user.audio_id, chunk));
        assert(video_result.found && audio_result.found);
      }
    }
  }

  WorkloadResult result;
  result.mode = mode;
  result.cdn = cdn.stats();
  result.origin_storage_bytes = catalog.total_bytes();
  result.origin_object_count = catalog.object_count();
  return result;
}

std::vector<WorkloadResult> run_cdn_comparison(const Content& content,
                                               const WorkloadConfig& config) {
  return {run_cdn_workload(content, StorageMode::kDemuxed, config),
          run_cdn_workload(content, StorageMode::kMuxed, config)};
}

}  // namespace demuxabr
