#include "httpsim/catalog.h"

#include "media/combination.h"
#include "util/strings.h"

namespace demuxabr {

std::string chunk_object_key(const std::string& track_or_combo, int chunk_index) {
  return format("%s/%05d", track_or_combo.c_str(), chunk_index);
}

void ObjectCatalog::add(const std::string& key, std::int64_t bytes) {
  auto [it, inserted] = objects_.emplace(key, bytes);
  if (inserted) total_bytes_ += bytes;
}

bool ObjectCatalog::contains(const std::string& key) const {
  return objects_.find(key) != objects_.end();
}

std::int64_t ObjectCatalog::size_of(const std::string& key) const {
  auto it = objects_.find(key);
  return it == objects_.end() ? -1 : it->second;
}

ObjectCatalog build_demuxed_catalog(const Content& content) {
  ObjectCatalog catalog;
  for (const auto* list : {&content.ladder().audio(), &content.ladder().video()}) {
    for (const TrackInfo& track : *list) {
      for (const ChunkInfo& chunk : content.chunks(track.id)) {
        catalog.add(chunk_object_key(track.id, chunk.index), chunk.size_bytes);
      }
    }
  }
  return catalog;
}

ObjectCatalog build_muxed_catalog(const Content& content) {
  ObjectCatalog catalog;
  for (const TrackInfo& video : content.ladder().video()) {
    for (const TrackInfo& audio : content.ladder().audio()) {
      const std::string combo = video.id + "+" + audio.id;
      const auto& video_chunks = content.chunks(video.id);
      const auto& audio_chunks = content.chunks(audio.id);
      for (std::size_t i = 0; i < video_chunks.size(); ++i) {
        catalog.add(chunk_object_key(combo, video_chunks[i].index),
                    video_chunks[i].size_bytes + audio_chunks[i].size_bytes);
      }
    }
  }
  return catalog;
}

StorageReport compare_storage(const Content& content) {
  const ObjectCatalog demuxed = build_demuxed_catalog(content);
  const ObjectCatalog muxed = build_muxed_catalog(content);
  StorageReport report;
  report.demuxed_bytes = demuxed.total_bytes();
  report.muxed_bytes = muxed.total_bytes();
  report.demuxed_objects = demuxed.object_count();
  report.muxed_objects = muxed.object_count();
  return report;
}

}  // namespace demuxabr
