// CDN edge node in front of the origin: serves chunk objects out of an LRU
// cache, filling from the origin on miss. Tracks the byte/request split
// between cache and origin — the quantity the §1 motivation compares between
// muxed and demuxed storage.
#pragma once

#include <cstdint>
#include <string>

#include "httpsim/catalog.h"
#include "httpsim/lru_cache.h"

namespace demuxabr {

struct CdnStats {
  std::int64_t requests = 0;
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t bytes_served = 0;
  std::int64_t bytes_from_cache = 0;
  std::int64_t bytes_from_origin = 0;

  [[nodiscard]] double hit_ratio() const {
    return requests > 0 ? static_cast<double>(hits) / static_cast<double>(requests) : 0.0;
  }
  [[nodiscard]] double byte_hit_ratio() const {
    return bytes_served > 0
               ? static_cast<double>(bytes_from_cache) / static_cast<double>(bytes_served)
               : 0.0;
  }
};

class CdnNode {
 public:
  /// The catalog is the origin's inventory; cache_capacity_bytes == 0 means
  /// an unbounded edge cache.
  CdnNode(const ObjectCatalog* origin, std::int64_t cache_capacity_bytes);

  struct FetchResult {
    std::int64_t bytes = 0;
    bool from_cache = false;
    bool found = true;
  };

  /// Serve one object request. Misses pull from origin and populate the
  /// cache. Unknown keys return found == false.
  FetchResult fetch(const std::string& key);

  [[nodiscard]] const CdnStats& stats() const { return stats_; }
  [[nodiscard]] const LruCache& cache() const { return cache_; }
  void reset_stats() { stats_ = CdnStats{}; }

 private:
  const ObjectCatalog* origin_;
  LruCache cache_;
  CdnStats stats_;
};

}  // namespace demuxabr
