// Byte-capacity LRU cache, the CDN edge model for the §1 cache-hit argument.
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

namespace demuxabr {

class LruCache {
 public:
  /// capacity_bytes == 0 means "unbounded".
  explicit LruCache(std::int64_t capacity_bytes);

  /// Look up (and touch) an object. True on hit.
  bool get(const std::string& key);

  /// Insert an object. An existing key is touched and re-sized to `bytes`
  /// (the delta counts against capacity, re-running eviction). Evicts
  /// least-recently-used objects until the new object fits.
  void put(const std::string& key, std::int64_t bytes);

  [[nodiscard]] bool contains(const std::string& key) const;
  [[nodiscard]] std::int64_t used_bytes() const { return used_bytes_; }
  [[nodiscard]] std::int64_t capacity_bytes() const { return capacity_bytes_; }
  [[nodiscard]] std::size_t object_count() const { return entries_.size(); }
  [[nodiscard]] std::size_t eviction_count() const { return evictions_; }

  void clear();

 private:
  struct Entry {
    std::string key;
    std::int64_t bytes;
  };

  void evict_until_fits(std::int64_t incoming_bytes);

  std::int64_t capacity_bytes_;
  std::int64_t used_bytes_ = 0;
  std::size_t evictions_ = 0;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> entries_;
};

}  // namespace demuxabr
