#include "httpsim/cdn_chain.h"

#include <cassert>

namespace demuxabr {

const char* fill_policy_name(FillPolicy policy) {
  return policy == FillPolicy::kBothTiers ? "both_tiers" : "edge_only";
}

CdnChain::CdnChain(const ObjectCatalog* origin, std::int64_t edge_capacity_bytes,
                   std::int64_t regional_capacity_bytes, FillPolicy fill)
    : origin_(origin),
      edge_(edge_capacity_bytes),
      regional_(regional_capacity_bytes),
      fill_(fill) {
  assert(origin != nullptr);
}

CdnChain::Stats CdnChain::stats() const {
  Stats out = stats_;
  out.edge_evictions = edge_.eviction_count();
  out.regional_evictions = regional_.eviction_count();
  out.fill = fill_;
  return out;
}

CdnChain::FetchResult CdnChain::fetch(const std::string& key) {
  FetchResult result;
  const std::int64_t size = origin_->size_of(key);
  if (size < 0) return result;  // kNotFound
  result.bytes = size;
  ++stats_.requests;

  if (edge_.get(key)) {
    result.served_by = ServedBy::kEdge;
    ++stats_.edge_hits;
    return result;
  }
  if (regional_.get(key)) {
    result.served_by = ServedBy::kRegional;
    ++stats_.regional_hits;
    edge_.put(key, size);
    return result;
  }
  result.served_by = ServedBy::kOrigin;
  ++stats_.origin_fetches;
  stats_.bytes_from_origin += size;
  if (fill_ == FillPolicy::kBothTiers) regional_.put(key, size);
  edge_.put(key, size);
  return result;
}

}  // namespace demuxabr
