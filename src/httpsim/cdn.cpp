#include "httpsim/cdn.h"

#include <cassert>

namespace demuxabr {

CdnNode::CdnNode(const ObjectCatalog* origin, std::int64_t cache_capacity_bytes)
    : origin_(origin), cache_(cache_capacity_bytes) {
  assert(origin != nullptr);
}

CdnNode::FetchResult CdnNode::fetch(const std::string& key) {
  FetchResult result;
  const std::int64_t size = origin_->size_of(key);
  if (size < 0) {
    result.found = false;
    result.bytes = 0;
    return result;
  }
  result.bytes = size;
  ++stats_.requests;
  stats_.bytes_served += size;
  if (cache_.get(key)) {
    result.from_cache = true;
    ++stats_.hits;
    stats_.bytes_from_cache += size;
  } else {
    result.from_cache = false;
    ++stats_.misses;
    stats_.bytes_from_origin += size;
    cache_.put(key, size);
  }
  return result;
}

}  // namespace demuxabr
