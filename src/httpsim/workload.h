// Viewer-population workload generator for the CDN experiment (§1): a pool
// of users streams the same title; each user selects one audio and one video
// track (zipf-popular over tracks, mimicking device/bandwidth diversity) and
// requests every chunk in order. In muxed mode a user requests M x N combo
// objects; in demuxed mode the audio and video objects are requested
// separately and can be shared across users who differ only in the other
// component — the paper's CDN cache-hit argument.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "httpsim/cdn.h"
#include "media/content.h"

namespace demuxabr {

struct WorkloadConfig {
  int num_users = 100;
  /// Zipf exponent over track popularity (0 = uniform).
  double zipf_exponent = 0.8;
  std::uint64_t seed = 7;
  /// Cache capacity as a fraction of the demuxed catalog size (0 = unbounded).
  double cache_fraction = 0.0;
};

struct WorkloadResult {
  StorageMode mode = StorageMode::kDemuxed;
  CdnStats cdn;
  std::int64_t origin_storage_bytes = 0;
  std::size_t origin_object_count = 0;
};

/// Run the viewer population against one CDN node in the given storage mode.
WorkloadResult run_cdn_workload(const Content& content, StorageMode mode,
                                const WorkloadConfig& config);

/// Convenience: run both modes with the same user population (same seed) and
/// return {demuxed, muxed}.
std::vector<WorkloadResult> run_cdn_comparison(const Content& content,
                                               const WorkloadConfig& config);

}  // namespace demuxabr
