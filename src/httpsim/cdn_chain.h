// Two-tier CDN hierarchy: edge cache -> regional cache -> origin. Extends
// the §1 motivation study to realistic deployments where the demuxed
// cache-reuse advantage compounds across tiers (the regional cache serves
// many edges' misses).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "httpsim/catalog.h"
#include "httpsim/cdn.h"
#include "httpsim/lru_cache.h"

namespace demuxabr {

/// What an origin fetch populates on its way down the chain. kBothTiers is
/// the classic hierarchy (regional absorbs other edges' future misses);
/// kEdgeOnly models a pull-through regional that only caches on its *own*
/// hits — cheaper regional storage, more origin egress.
enum class FillPolicy { kBothTiers, kEdgeOnly };

[[nodiscard]] const char* fill_policy_name(FillPolicy policy);

class CdnChain {
 public:
  CdnChain(const ObjectCatalog* origin, std::int64_t edge_capacity_bytes,
           std::int64_t regional_capacity_bytes,
           FillPolicy fill = FillPolicy::kBothTiers);

  enum class ServedBy { kEdge, kRegional, kOrigin, kNotFound };

  struct FetchResult {
    std::int64_t bytes = 0;
    ServedBy served_by = ServedBy::kNotFound;
  };

  /// Serve one request: edge hit, else regional hit (fills edge), else
  /// origin (fills both tiers).
  FetchResult fetch(const std::string& key);

  struct Stats {
    std::int64_t requests = 0;
    std::int64_t edge_hits = 0;
    std::int64_t regional_hits = 0;
    std::int64_t origin_fetches = 0;
    std::int64_t bytes_from_origin = 0;
    /// Churn snapshots of the tier caches (LruCache::eviction_count) and the
    /// chain's fill policy, folded in by stats() so one struct carries the
    /// whole bench row.
    std::size_t edge_evictions = 0;
    std::size_t regional_evictions = 0;
    FillPolicy fill = FillPolicy::kBothTiers;

    [[nodiscard]] double edge_hit_ratio() const {
      return requests > 0 ? static_cast<double>(edge_hits) / static_cast<double>(requests)
                          : 0.0;
    }
    [[nodiscard]] double origin_fetch_ratio() const {
      return requests > 0
                 ? static_cast<double>(origin_fetches) / static_cast<double>(requests)
                 : 0.0;
    }
  };

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] const LruCache& edge() const { return edge_; }
  [[nodiscard]] const LruCache& regional() const { return regional_; }

 private:
  const ObjectCatalog* origin_;
  LruCache edge_;
  LruCache regional_;
  FillPolicy fill_;
  Stats stats_;
};

}  // namespace demuxabr
