// Two-tier CDN hierarchy: edge cache -> regional cache -> origin. Extends
// the §1 motivation study to realistic deployments where the demuxed
// cache-reuse advantage compounds across tiers (the regional cache serves
// many edges' misses).
#pragma once

#include <cstdint>
#include <string>

#include "httpsim/catalog.h"
#include "httpsim/cdn.h"
#include "httpsim/lru_cache.h"

namespace demuxabr {

class CdnChain {
 public:
  CdnChain(const ObjectCatalog* origin, std::int64_t edge_capacity_bytes,
           std::int64_t regional_capacity_bytes);

  enum class ServedBy { kEdge, kRegional, kOrigin, kNotFound };

  struct FetchResult {
    std::int64_t bytes = 0;
    ServedBy served_by = ServedBy::kNotFound;
  };

  /// Serve one request: edge hit, else regional hit (fills edge), else
  /// origin (fills both tiers).
  FetchResult fetch(const std::string& key);

  struct Stats {
    std::int64_t requests = 0;
    std::int64_t edge_hits = 0;
    std::int64_t regional_hits = 0;
    std::int64_t origin_fetches = 0;
    std::int64_t bytes_from_origin = 0;

    [[nodiscard]] double edge_hit_ratio() const {
      return requests > 0 ? static_cast<double>(edge_hits) / static_cast<double>(requests)
                          : 0.0;
    }
    [[nodiscard]] double origin_fetch_ratio() const {
      return requests > 0
                 ? static_cast<double>(origin_fetches) / static_cast<double>(requests)
                 : 0.0;
    }
  };

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const LruCache& edge() const { return edge_; }
  [[nodiscard]] const LruCache& regional() const { return regional_; }

 private:
  const ObjectCatalog* origin_;
  LruCache edge_;
  LruCache regional_;
  Stats stats_;
};

}  // namespace demuxabr
