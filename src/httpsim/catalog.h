// Object catalogs for the storage / CDN-caching motivation of §1: the origin
// stores either demuxed objects (M video + N audio tracks) or muxed objects
// (M x N combined tracks). The catalog maps chunk-object keys to byte sizes
// and accounts total storage.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "media/content.h"

namespace demuxabr {

enum class StorageMode { kDemuxed, kMuxed };

inline const char* storage_mode_name(StorageMode mode) {
  return mode == StorageMode::kDemuxed ? "demuxed" : "muxed";
}

/// Key of one chunk object: "V3/00042" (demuxed) or "V3+A1/00042" (muxed).
std::string chunk_object_key(const std::string& track_or_combo, int chunk_index);

/// The origin server's object inventory.
class ObjectCatalog {
 public:
  /// Register an object. Duplicate keys keep the first size.
  void add(const std::string& key, std::int64_t bytes);

  [[nodiscard]] bool contains(const std::string& key) const;
  /// Size of an object; -1 when unknown.
  [[nodiscard]] std::int64_t size_of(const std::string& key) const;
  [[nodiscard]] std::int64_t total_bytes() const { return total_bytes_; }
  [[nodiscard]] std::size_t object_count() const { return objects_.size(); }

 private:
  std::map<std::string, std::int64_t> objects_;
  std::int64_t total_bytes_ = 0;
};

/// Build the demuxed catalog: one object per (track, chunk).
ObjectCatalog build_demuxed_catalog(const Content& content);

/// Build the muxed catalog: one object per (video x audio combination,
/// chunk); each object is the video chunk plus the audio chunk.
ObjectCatalog build_muxed_catalog(const Content& content);

/// Storage comparison for the §1 motivation table.
struct StorageReport {
  std::int64_t demuxed_bytes = 0;
  std::int64_t muxed_bytes = 0;
  std::size_t demuxed_objects = 0;
  std::size_t muxed_objects = 0;
  [[nodiscard]] double muxed_to_demuxed_ratio() const {
    return demuxed_bytes > 0
               ? static_cast<double>(muxed_bytes) / static_cast<double>(demuxed_bytes)
               : 0.0;
  }
};
StorageReport compare_storage(const Content& content);

}  // namespace demuxabr
