// Synthetic VBR encoder model.
//
// The paper's content is a real YouTube clip whose tracks have distinct
// average and peak bitrates (Table 1: e.g. V4 averages 734 kbps but peaks at
// 1190 kbps). We substitute a deterministic generator that produces per-chunk
// sizes whose measured average matches `avg_kbps` (within rounding) and whose
// measured peak matches `peak_kbps` exactly — the two quantities all of the
// paper's observations depend on.
#pragma once

#include <cstdint>
#include <vector>

#include "media/chunk.h"
#include "media/track.h"

namespace demuxabr {

struct VbrModelParams {
  /// Log-normal sigma of the per-chunk bitrate factor. Video defaults are
  /// burstier than audio (audio is near-CBR).
  double video_sigma = 0.35;
  double audio_sigma = 0.02;
  /// Lower clamp on chunk bitrate relative to the track average.
  double min_ratio = 0.35;
  /// RNG seed; the track id is mixed in so tracks decorrelate.
  std::uint64_t seed = 42;
};

/// Generate `num_chunks` chunk sizes for `track`, each `chunk_duration_s`
/// long. Guarantees:
///   * every chunk bitrate is in [min_ratio * avg, peak];
///   * the maximum chunk bitrate equals the track peak (one chunk is pinned);
///   * the mean chunk bitrate equals the track average within 0.5%.
std::vector<ChunkInfo> generate_chunks(const TrackInfo& track, int num_chunks,
                                       double chunk_duration_s,
                                       const VbrModelParams& params = {});

/// Measured statistics over a chunk list (used to verify Table 1).
struct ChunkStats {
  double avg_kbps = 0.0;
  double peak_kbps = 0.0;
  double min_kbps = 0.0;
  std::int64_t total_bytes = 0;
};
ChunkStats measure_chunks(const std::vector<ChunkInfo>& chunks);

}  // namespace demuxabr
