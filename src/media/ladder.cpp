#include "media/ladder.h"

#include <algorithm>

#include "util/strings.h"

namespace demuxabr {
namespace {

TrackInfo audio_track(std::string id, double avg, double peak, double declared,
                      int channels, int sample_rate_hz) {
  TrackInfo t;
  t.id = std::move(id);
  t.type = MediaType::kAudio;
  t.avg_kbps = avg;
  t.peak_kbps = peak;
  t.declared_kbps = declared;
  t.channels = channels;
  t.sample_rate_hz = sample_rate_hz;
  t.codec = "mp4a.40.2";
  return t;
}

TrackInfo video_track(std::string id, double avg, double peak, double declared,
                      int width, int height) {
  TrackInfo t;
  t.id = std::move(id);
  t.type = MediaType::kVideo;
  t.avg_kbps = avg;
  t.peak_kbps = peak;
  t.declared_kbps = declared;
  t.width = width;
  t.height = height;
  t.codec = "avc1.4d401f";
  return t;
}

bool sorted_by_declared(const std::vector<TrackInfo>& tracks) {
  return std::is_sorted(tracks.begin(), tracks.end(),
                        [](const TrackInfo& a, const TrackInfo& b) {
                          return a.declared_kbps < b.declared_kbps;
                        });
}

}  // namespace

BitrateLadder::BitrateLadder(std::vector<TrackInfo> audio, std::vector<TrackInfo> video)
    : audio_(std::move(audio)), video_(std::move(video)) {}

const TrackInfo* BitrateLadder::find(const std::string& id) const {
  for (const TrackInfo& t : audio_) {
    if (t.id == id) return &t;
  }
  for (const TrackInfo& t : video_) {
    if (t.id == id) return &t;
  }
  return nullptr;
}

std::optional<std::size_t> BitrateLadder::index_of(const std::string& id) const {
  for (std::size_t i = 0; i < audio_.size(); ++i) {
    if (audio_[i].id == id) return i;
  }
  for (std::size_t i = 0; i < video_.size(); ++i) {
    if (video_[i].id == id) return i;
  }
  return std::nullopt;
}

BitrateLadder BitrateLadder::with_audio(std::vector<TrackInfo> audio) const {
  return BitrateLadder(std::move(audio), video_);
}

bool BitrateLadder::valid(std::string* why) const {
  auto fail = [&](const std::string& msg) {
    if (why != nullptr) *why = msg;
    return false;
  };
  if (audio_.empty() || video_.empty()) return fail("ladder needs >=1 audio and >=1 video track");
  for (const auto* list : {&audio_, &video_}) {
    for (const TrackInfo& t : *list) {
      if (t.id.empty()) return fail("track with empty id");
      if (t.declared_kbps <= 0.0 || t.avg_kbps <= 0.0 || t.peak_kbps <= 0.0) {
        return fail("track " + t.id + " has non-positive bitrate");
      }
      if (t.avg_kbps > t.peak_kbps + 1e-9) {
        return fail("track " + t.id + " has avg > peak");
      }
      if (const TrackInfo* other = find(t.id); other != &t) {
        return fail("duplicate track id " + t.id);
      }
    }
  }
  for (const TrackInfo& t : audio_) {
    if (!t.is_audio()) return fail("video track in audio list: " + t.id);
  }
  for (const TrackInfo& t : video_) {
    if (!t.is_video()) return fail("audio track in video list: " + t.id);
  }
  if (!sorted_by_declared(audio_) || !sorted_by_declared(video_)) {
    return fail("tracks must be sorted by declared bitrate");
  }
  return true;
}

BitrateLadder youtube_drama_ladder() {
  // Table 1, verbatim.
  std::vector<TrackInfo> audio{
      audio_track("A1", 128, 134, 128, /*channels=*/2, /*rate=*/44100),
      audio_track("A2", 196, 199, 196, /*channels=*/6, /*rate=*/48000),
      audio_track("A3", 384, 391, 384, /*channels=*/6, /*rate=*/48000),
  };
  std::vector<TrackInfo> video{
      video_track("V1", 111, 119, 111, 256, 144),
      video_track("V2", 246, 261, 246, 426, 240),
      video_track("V3", 362, 641, 473, 640, 360),
      video_track("V4", 734, 1190, 914, 854, 480),
      video_track("V5", 1421, 2382, 1852, 1280, 720),
      video_track("V6", 2728, 4447, 3746, 1920, 1080),
  };
  return BitrateLadder(std::move(audio), std::move(video));
}

std::vector<TrackInfo> audio_set_b() {
  // §3.2: declared 32/64/128 kbps. The paper only gives declared bitrates;
  // audio is near-CBR so avg == declared and peak is 2% above.
  return {
      audio_track("B1", 32, 33, 32, 2, 44100),
      audio_track("B2", 64, 65, 64, 2, 44100),
      audio_track("B3", 128, 131, 128, 2, 44100),
  };
}

std::vector<TrackInfo> audio_set_c() {
  // §3.2: declared 196/384/768 kbps (768 = Dolby Atmos class bitrate [19]).
  return {
      audio_track("C1", 196, 200, 196, 2, 48000),
      audio_track("C2", 384, 392, 384, 6, 48000),
      audio_track("C3", 768, 783, 768, 8, 48000),
  };
}

BitrateLadder drama_with_audio_set_b() {
  return youtube_drama_ladder().with_audio(audio_set_b());
}

BitrateLadder drama_with_audio_set_c() {
  return youtube_drama_ladder().with_audio(audio_set_c());
}

BitrateLadder premium_sports_ladder() {
  std::vector<TrackInfo> audio{
      audio_track("A1", 128, 131, 128, /*channels=*/2, /*rate=*/48000),
      audio_track("A2", 384, 392, 384, /*channels=*/6, /*rate=*/48000),
      audio_track("A3", 768, 784, 768, /*channels=*/16, /*rate=*/48000),
  };
  // Sports content is motion-heavy: peak-to-average around 1.7-1.9.
  std::vector<TrackInfo> video{
      video_track("V1", 145, 260, 180, 256, 144),
      video_track("V2", 365, 640, 450, 426, 240),
      video_track("V3", 730, 1300, 900, 640, 360),
      video_track("V4", 1600, 2900, 2000, 1280, 720),
      video_track("V5", 3400, 6100, 4200, 1920, 1080),
      video_track("V6", 7200, 13000, 8900, 2560, 1440),
      video_track("V7", 13000, 23500, 16000, 3840, 2160),
  };
  return BitrateLadder(std::move(audio), std::move(video));
}

BitrateLadder make_ladder(const std::vector<double>& audio_kbps,
                          const std::vector<double>& video_kbps,
                          double video_peak_to_avg, double audio_peak_to_avg) {
  std::vector<TrackInfo> audio;
  std::vector<TrackInfo> video;
  int i = 1;
  for (double kbps : audio_kbps) {
    audio.push_back(audio_track(format("A%d", i++), kbps, kbps * audio_peak_to_avg, kbps,
                                2, 44100));
  }
  i = 1;
  for (double kbps : video_kbps) {
    // Resolution rungs are cosmetic for synthetic ladders.
    const int height = 144 * i;
    video.push_back(video_track(format("V%d", i++), kbps, kbps * video_peak_to_avg, kbps,
                                height * 16 / 9, height));
  }
  return BitrateLadder(std::move(audio), std::move(video));
}

}  // namespace demuxabr
