// Bitrate ladders: the set of demuxed audio and video tracks offered for one
// title. Includes exact reconstructions of the paper's ladders:
//   * Table 1  — YouTube drama show: 6 video tracks (V1..V6), 3 audio (A1..A3)
//   * §3.2     — audio set B (32/64/128 kbps) and audio set C (196/384/768)
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "media/track.h"

namespace demuxabr {

/// An ordered set of audio tracks plus an ordered set of video tracks.
/// Tracks are kept in increasing declared-bitrate order within each type.
class BitrateLadder {
 public:
  BitrateLadder() = default;
  BitrateLadder(std::vector<TrackInfo> audio, std::vector<TrackInfo> video);

  [[nodiscard]] const std::vector<TrackInfo>& audio() const { return audio_; }
  [[nodiscard]] const std::vector<TrackInfo>& video() const { return video_; }
  [[nodiscard]] const std::vector<TrackInfo>& tracks(MediaType type) const {
    return type == MediaType::kAudio ? audio_ : video_;
  }

  [[nodiscard]] std::size_t audio_count() const { return audio_.size(); }
  [[nodiscard]] std::size_t video_count() const { return video_.size(); }

  /// Lookup by id ("A2", "V5"); nullptr when absent.
  [[nodiscard]] const TrackInfo* find(const std::string& id) const;
  /// Index of a track within its type's ordered list; nullopt when absent.
  [[nodiscard]] std::optional<std::size_t> index_of(const std::string& id) const;

  /// Replace the audio side of the ladder (used by the §3.2 experiments that
  /// swap in audio sets B and C against the Table 1 video tracks).
  [[nodiscard]] BitrateLadder with_audio(std::vector<TrackInfo> audio) const;

  /// Validation: ids unique, bitrates positive and sorted, avg <= peak.
  [[nodiscard]] bool valid(std::string* why = nullptr) const;

 private:
  std::vector<TrackInfo> audio_;
  std::vector<TrackInfo> video_;
};

/// Table 1 of the paper, reproduced exactly (avg / peak / declared kbps,
/// channel layout, sampling rate, resolution).
BitrateLadder youtube_drama_ladder();

/// §3.2 experiment 1: low-bitrate audio set B1/B2/B3 = 32/64/128 kbps
/// (declared); combined with the Table 1 video tracks.
std::vector<TrackInfo> audio_set_b();

/// §3.2 experiment 2: high-bitrate audio set C1/C2/C3 = 196/384/768 kbps
/// (declared); combined with the Table 1 video tracks.
std::vector<TrackInfo> audio_set_c();

/// Convenience: Table 1 video tracks with audio replaced by set B / set C.
BitrateLadder drama_with_audio_set_b();
BitrateLadder drama_with_audio_set_c();

/// A premium live-sports style ladder: video up to 4K (V1..V7, 145 kbps to
/// 16 Mbps declared) and audio from stereo AAC to an object-based Atmos-like
/// 16-channel track (128/384/768 kbps — the bitrates §1 motivates with the
/// HLS authoring spec and the Dolby Atmos references). Exercises device caps
/// (phone vs TV, stereo vs surround) on a ladder wider than Table 1.
BitrateLadder premium_sports_ladder();

/// A generic synthetic ladder for tests/examples: `video_kbps` and
/// `audio_kbps` are declared bitrates; avg = declared, peak = declared * vbr.
BitrateLadder make_ladder(const std::vector<double>& audio_kbps,
                          const std::vector<double>& video_kbps,
                          double video_peak_to_avg = 1.6,
                          double audio_peak_to_avg = 1.02);

}  // namespace demuxabr
