// Content: a complete demuxed title — a bitrate ladder plus the generated
// chunk map for every track. This is the server-side ground truth; players
// only ever see manifests derived from it (manifest/*).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "media/chunk.h"
#include "media/ladder.h"
#include "media/vbr_model.h"

namespace demuxabr {

class Content {
 public:
  Content() = default;
  Content(BitrateLadder ladder, double chunk_duration_s,
          std::map<std::string, std::vector<ChunkInfo>> chunks);

  [[nodiscard]] const BitrateLadder& ladder() const { return ladder_; }
  [[nodiscard]] double chunk_duration_s() const { return chunk_duration_s_; }
  [[nodiscard]] int num_chunks() const { return num_chunks_; }
  [[nodiscard]] double duration_s() const {
    return chunk_duration_s_ * static_cast<double>(num_chunks_);
  }

  /// All chunks of one track. Track id must exist.
  [[nodiscard]] const std::vector<ChunkInfo>& chunks(const std::string& track_id) const;
  /// One chunk. Track id and index must be valid.
  [[nodiscard]] const ChunkInfo& chunk(const std::string& track_id, int index) const;

  /// Measured stats for a track's chunk list (compare against Table 1).
  [[nodiscard]] ChunkStats track_stats(const std::string& track_id) const;

  /// Total stored bytes across all tracks (demuxed storage footprint).
  [[nodiscard]] std::int64_t total_bytes() const;

 private:
  BitrateLadder ladder_;
  double chunk_duration_s_ = 0.0;
  int num_chunks_ = 0;
  std::map<std::string, std::vector<ChunkInfo>> chunks_;
};

/// Builds Content from a ladder: generates VBR chunks for every track.
class ContentBuilder {
 public:
  explicit ContentBuilder(BitrateLadder ladder);

  ContentBuilder& duration_s(double seconds);
  ContentBuilder& chunk_duration_s(double seconds);
  ContentBuilder& vbr_params(VbrModelParams params);

  [[nodiscard]] Content build() const;

 private:
  BitrateLadder ladder_;
  double duration_s_ = 300.0;       // paper: ~5 minute clip
  double chunk_duration_s_ = 4.0;
  VbrModelParams vbr_params_{};
};

/// The paper's experimental content: Table 1 ladder, ~5 minutes.
Content make_drama_content(double chunk_duration_s = 4.0, std::uint64_t seed = 42);

}  // namespace demuxabr
