#include "media/combination.h"

#include <algorithm>
#include <cassert>

namespace demuxabr {

AvCombination make_combination(const BitrateLadder& ladder, const std::string& video_id,
                               const std::string& audio_id) {
  const TrackInfo* video = ladder.find(video_id);
  const TrackInfo* audio = ladder.find(audio_id);
  assert(video != nullptr && video->is_video());
  assert(audio != nullptr && audio->is_audio());
  AvCombination combo;
  combo.video_id = video_id;
  combo.audio_id = audio_id;
  combo.avg_kbps = video->avg_kbps + audio->avg_kbps;
  combo.peak_kbps = video->peak_kbps + audio->peak_kbps;
  combo.declared_kbps = video->declared_kbps + audio->declared_kbps;
  return combo;
}

std::vector<AvCombination> all_combinations(const BitrateLadder& ladder) {
  std::vector<AvCombination> combos;
  combos.reserve(ladder.video_count() * ladder.audio_count());
  for (const TrackInfo& v : ladder.video()) {
    for (const TrackInfo& a : ladder.audio()) {
      combos.push_back(make_combination(ladder, v.id, a.id));
    }
  }
  sort_by_peak(combos);
  return combos;
}

std::vector<AvCombination> curated_subset(const BitrateLadder& ladder) {
  return proportional_pairing(ladder);
}

std::vector<AvCombination> proportional_pairing(const BitrateLadder& ladder) {
  const std::size_t num_video = ladder.video_count();
  const std::size_t num_audio = ladder.audio_count();
  assert(num_video > 0 && num_audio > 0);
  std::vector<AvCombination> combos;
  combos.reserve(num_video);
  for (std::size_t i = 0; i < num_video; ++i) {
    const std::size_t j = std::min(i * num_audio / num_video, num_audio - 1);
    combos.push_back(
        make_combination(ladder, ladder.video()[i].id, ladder.audio()[j].id));
  }
  return combos;
}

std::optional<AvCombination> find_combination(const std::vector<AvCombination>& combos,
                                              const std::string& video_id,
                                              const std::string& audio_id) {
  for (const AvCombination& c : combos) {
    if (c.video_id == video_id && c.audio_id == audio_id) return c;
  }
  return std::nullopt;
}

bool contains_combination(const std::vector<AvCombination>& combos,
                          const std::string& video_id, const std::string& audio_id) {
  return find_combination(combos, video_id, audio_id).has_value();
}

void sort_by_peak(std::vector<AvCombination>& combos) {
  std::stable_sort(combos.begin(), combos.end(),
                   [](const AvCombination& a, const AvCombination& b) {
                     return a.peak_kbps < b.peak_kbps;
                   });
}

void sort_by_declared(std::vector<AvCombination>& combos) {
  std::stable_sort(combos.begin(), combos.end(),
                   [](const AvCombination& a, const AvCombination& b) {
                     return a.declared_kbps < b.declared_kbps;
                   });
}

}  // namespace demuxabr
