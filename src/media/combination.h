// Audio/video combinations (HLS "variants"): pairs of one video track and one
// audio track with aggregate bandwidth figures. Reproduces Tables 2 and 3 of
// the paper and provides the curated subset used by manifest H_sub.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "media/ladder.h"

namespace demuxabr {

/// One allowed (video, audio) pairing with aggregate bitrates in kbps.
struct AvCombination {
  std::string video_id;
  std::string audio_id;
  double avg_kbps = 0.0;       ///< sum of track average bitrates
  double peak_kbps = 0.0;      ///< sum of track peak bitrates (HLS BANDWIDTH)
  double declared_kbps = 0.0;  ///< sum of track declared bitrates (DASH)

  [[nodiscard]] std::string label() const { return video_id + "+" + audio_id; }
  bool operator==(const AvCombination& other) const {
    return video_id == other.video_id && audio_id == other.audio_id;
  }
};

/// Build the combination of a specific video and audio track of the ladder.
/// Both ids must exist.
AvCombination make_combination(const BitrateLadder& ladder,
                               const std::string& video_id,
                               const std::string& audio_id);

/// All |V| x |A| combinations, sorted by increasing aggregate peak bitrate
/// (Table 2 order; used by manifest H_all).
std::vector<AvCombination> all_combinations(const BitrateLadder& ladder);

/// The curated subset the paper uses for H_sub (Table 3): each video track is
/// paired with one audio track, low-with-low / high-with-high, splitting the
/// video rungs evenly across the audio rungs:
///   V1+A1, V2+A1, V3+A2, V4+A2, V5+A3, V6+A3 for the Table 1 ladder.
std::vector<AvCombination> curated_subset(const BitrateLadder& ladder);

/// Generic curation: pair video rung i with audio rung floor(i * A / V).
std::vector<AvCombination> proportional_pairing(const BitrateLadder& ladder);

/// Find a combination by ids. Returns nullopt when not present.
std::optional<AvCombination> find_combination(const std::vector<AvCombination>& combos,
                                              const std::string& video_id,
                                              const std::string& audio_id);

/// True when `combos` contains the (video, audio) pair.
bool contains_combination(const std::vector<AvCombination>& combos,
                          const std::string& video_id, const std::string& audio_id);

/// Sort helpers.
void sort_by_peak(std::vector<AvCombination>& combos);
void sort_by_declared(std::vector<AvCombination>& combos);

}  // namespace demuxabr
