// Track-level media model: a track is one encoded rendition of the audio or
// the video component of a title (paper §1, Fig 1). Bitrates are carried in
// kbps to match the paper's tables.
#pragma once

#include <cstdint>
#include <string>

namespace demuxabr {

enum class MediaType { kAudio = 0, kVideo = 1 };

inline const char* media_type_name(MediaType type) {
  return type == MediaType::kAudio ? "audio" : "video";
}

/// Static description of one track (DASH Representation / HLS rendition).
struct TrackInfo {
  std::string id;           ///< e.g. "V3", "A1"
  MediaType type = MediaType::kVideo;
  double avg_kbps = 0.0;    ///< measured average bitrate
  double peak_kbps = 0.0;   ///< measured peak (max chunk) bitrate
  double declared_kbps = 0.0;  ///< manifest-declared bandwidth (DASH @bandwidth)

  // Audio-only attributes (0 when video).
  int channels = 0;
  int sample_rate_hz = 0;

  // Video-only attributes (0 when audio).
  int width = 0;
  int height = 0;

  std::string codec;        ///< RFC 6381 codec string

  [[nodiscard]] bool is_audio() const { return type == MediaType::kAudio; }
  [[nodiscard]] bool is_video() const { return type == MediaType::kVideo; }
};

}  // namespace demuxabr
