#include "media/content.h"

#include <cassert>
#include <cmath>

namespace demuxabr {

Content::Content(BitrateLadder ladder, double chunk_duration_s,
                 std::map<std::string, std::vector<ChunkInfo>> chunks)
    : ladder_(std::move(ladder)),
      chunk_duration_s_(chunk_duration_s),
      chunks_(std::move(chunks)) {
  assert(!chunks_.empty());
  num_chunks_ = static_cast<int>(chunks_.begin()->second.size());
  for ([[maybe_unused]] const auto& [id, list] : chunks_) {
    assert(static_cast<int>(list.size()) == num_chunks_);
  }
}

const std::vector<ChunkInfo>& Content::chunks(const std::string& track_id) const {
  auto it = chunks_.find(track_id);
  assert(it != chunks_.end());
  return it->second;
}

const ChunkInfo& Content::chunk(const std::string& track_id, int index) const {
  const auto& list = chunks(track_id);
  assert(index >= 0 && index < static_cast<int>(list.size()));
  return list[static_cast<std::size_t>(index)];
}

ChunkStats Content::track_stats(const std::string& track_id) const {
  return measure_chunks(chunks(track_id));
}

std::int64_t Content::total_bytes() const {
  std::int64_t total = 0;
  for (const auto& [id, list] : chunks_) {
    for (const ChunkInfo& c : list) total += c.size_bytes;
  }
  return total;
}

ContentBuilder::ContentBuilder(BitrateLadder ladder) : ladder_(std::move(ladder)) {}

ContentBuilder& ContentBuilder::duration_s(double seconds) {
  duration_s_ = seconds;
  return *this;
}

ContentBuilder& ContentBuilder::chunk_duration_s(double seconds) {
  chunk_duration_s_ = seconds;
  return *this;
}

ContentBuilder& ContentBuilder::vbr_params(VbrModelParams params) {
  vbr_params_ = params;
  return *this;
}

Content ContentBuilder::build() const {
  assert(duration_s_ > 0.0 && chunk_duration_s_ > 0.0);
  const int num_chunks =
      std::max(1, static_cast<int>(std::llround(duration_s_ / chunk_duration_s_)));
  std::map<std::string, std::vector<ChunkInfo>> chunks;
  for (const auto* list : {&ladder_.audio(), &ladder_.video()}) {
    for (const TrackInfo& track : *list) {
      chunks[track.id] = generate_chunks(track, num_chunks, chunk_duration_s_, vbr_params_);
    }
  }
  return Content(ladder_, chunk_duration_s_, std::move(chunks));
}

Content make_drama_content(double chunk_duration_s, std::uint64_t seed) {
  VbrModelParams params;
  params.seed = seed;
  return ContentBuilder(youtube_drama_ladder())
      .duration_s(300.0)
      .chunk_duration_s(chunk_duration_s)
      .vbr_params(params)
      .build();
}

}  // namespace demuxabr
