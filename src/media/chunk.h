// Chunk-level media model. Each track is cut into fixed-duration chunks;
// the per-chunk byte size encodes the (VBR) encoding of that chunk.
#pragma once

#include <cstdint>

namespace demuxabr {

/// One chunk of one track.
struct ChunkInfo {
  int index = 0;              ///< chunk position within the track (0-based)
  double duration_s = 0.0;    ///< playback duration
  std::int64_t size_bytes = 0;

  /// Effective bitrate of this chunk in kbps.
  [[nodiscard]] double bitrate_kbps() const {
    return duration_s > 0.0
               ? static_cast<double>(size_bytes) * 8.0 / 1000.0 / duration_s
               : 0.0;
  }
};

}  // namespace demuxabr
