#include "media/vbr_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/rng.h"

namespace demuxabr {
namespace {

std::uint64_t mix_track_seed(std::uint64_t seed, const TrackInfo& track) {
  std::uint64_t h = seed;
  for (char c : track.id) h = h * 1099511628211ULL + static_cast<unsigned char>(c);
  h ^= static_cast<std::uint64_t>(track.declared_kbps * 1000.0);
  return h;
}

}  // namespace

std::vector<ChunkInfo> generate_chunks(const TrackInfo& track, int num_chunks,
                                       double chunk_duration_s,
                                       const VbrModelParams& params) {
  assert(num_chunks > 0);
  assert(chunk_duration_s > 0.0);

  const double sigma = track.is_video() ? params.video_sigma : params.audio_sigma;
  const double avg = track.avg_kbps;
  const double peak = std::max(track.peak_kbps, avg);
  const double floor_kbps = std::max(1.0, avg * params.min_ratio);

  Rng rng(mix_track_seed(params.seed, track));

  // Draw log-normal bitrate factors around the average, then iteratively
  // rescale + clip so the mean converges to `avg` despite clipping at the
  // peak. A handful of iterations suffices for sigma <= 0.5.
  std::vector<double> kbps(static_cast<std::size_t>(num_chunks));
  const double mu = -0.5 * sigma * sigma;  // E[exp(N(mu, sigma))] == 1
  for (auto& k : kbps) k = avg * rng.lognormal(mu, sigma);

  for (int iter = 0; iter < 12; ++iter) {
    for (auto& k : kbps) k = std::clamp(k, floor_kbps, peak);
    double mean = 0.0;
    for (double k : kbps) mean += k;
    mean /= static_cast<double>(kbps.size());
    if (std::abs(mean - avg) / avg < 1e-4) break;
    const double scale = avg / mean;
    for (auto& k : kbps) k *= scale;
  }
  for (auto& k : kbps) k = std::clamp(k, floor_kbps, peak);

  // Pin the largest chunk to exactly the declared peak so measured peak
  // matches Table 1. To keep the mean intact, shave the surplus off the
  // other chunks proportionally.
  if (num_chunks > 1) {
    auto max_it = std::max_element(kbps.begin(), kbps.end());
    const double surplus = peak - *max_it;
    *max_it = peak;
    if (surplus > 0.0) {
      const double per_other = surplus / static_cast<double>(num_chunks - 1);
      for (auto& k : kbps) {
        if (&k != &*max_it) k = std::max(floor_kbps, k - per_other);
      }
    }
  } else {
    kbps[0] = avg;
  }

  std::vector<ChunkInfo> chunks;
  chunks.reserve(kbps.size());
  for (int i = 0; i < num_chunks; ++i) {
    ChunkInfo c;
    c.index = i;
    c.duration_s = chunk_duration_s;
    c.size_bytes = static_cast<std::int64_t>(
        std::llround(kbps[static_cast<std::size_t>(i)] * 1000.0 / 8.0 * chunk_duration_s));
    chunks.push_back(c);
  }
  return chunks;
}

ChunkStats measure_chunks(const std::vector<ChunkInfo>& chunks) {
  ChunkStats stats;
  if (chunks.empty()) return stats;
  double total_duration = 0.0;
  double min_kbps = chunks.front().bitrate_kbps();
  double max_kbps = min_kbps;
  for (const ChunkInfo& c : chunks) {
    stats.total_bytes += c.size_bytes;
    total_duration += c.duration_s;
    min_kbps = std::min(min_kbps, c.bitrate_kbps());
    max_kbps = std::max(max_kbps, c.bitrate_kbps());
  }
  stats.avg_kbps = static_cast<double>(stats.total_bytes) * 8.0 / 1000.0 / total_duration;
  stats.peak_kbps = max_kbps;
  stats.min_kbps = min_kbps;
  return stats;
}

}  // namespace demuxabr
