// PlayerAdapter: the interface every ABR player model implements.
//
// The simulation engine owns time, the network and the buffers; the player
// owns *decisions*: which (track, chunk) to download next, informed only by
// the ManifestView it was started with and by the download events it
// observes (per-delta progress samples and chunk completions). This split
// mirrors a real player's separation between its streaming engine and its
// ABR logic, and guarantees a model cannot peek at server-side ground truth.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "manifest/view.h"
#include "media/track.h"

namespace demuxabr {

/// Per-interval download progress (the engine emits one per active flow per
/// delta interval; Shaka's 16 KB / 0.125 s filter consumes these).
struct ProgressSample {
  MediaType type = MediaType::kVideo;
  double t0 = 0.0;           ///< interval start
  double t1 = 0.0;           ///< interval end
  std::int64_t bytes = 0;    ///< bytes delivered to this flow in [t0, t1]

  [[nodiscard]] double duration_s() const { return t1 - t0; }
  [[nodiscard]] double throughput_kbps() const {
    return t1 > t0 ? static_cast<double>(bytes) * 8.0 / 1000.0 / (t1 - t0) : 0.0;
  }
};

/// Emitted when a chunk finishes downloading. `start_t` includes the request
/// RTT, so throughput computed from it matches what a real player measures.
/// `track_id` views the originating request's id and is valid only for the
/// duration of the on_chunk_complete callback — copy it to retain it.
struct ChunkCompletion {
  MediaType type = MediaType::kVideo;
  std::string_view track_id;
  int chunk_index = 0;
  std::int64_t bytes = 0;
  double start_t = 0.0;
  double end_t = 0.0;

  [[nodiscard]] double duration_s() const { return end_t - start_t; }
  [[nodiscard]] double throughput_kbps() const {
    return end_t > start_t ? static_cast<double>(bytes) * 8.0 / 1000.0 / (end_t - start_t)
                           : 0.0;
  }
};

/// Client-side state snapshot handed to the player at decision points.
struct PlayerContext {
  double now = 0.0;
  double audio_buffer_s = 0.0;
  double video_buffer_s = 0.0;
  int next_audio_chunk = 0;  ///< next not-yet-downloaded audio chunk index
  int next_video_chunk = 0;
  int total_chunks = 0;
  bool audio_downloading = false;
  bool video_downloading = false;
  bool playing = false;
  double playhead_s = 0.0;

  [[nodiscard]] double buffer_s(MediaType type) const {
    return type == MediaType::kAudio ? audio_buffer_s : video_buffer_s;
  }
  [[nodiscard]] int next_chunk(MediaType type) const {
    return type == MediaType::kAudio ? next_audio_chunk : next_video_chunk;
  }
  [[nodiscard]] bool downloading(MediaType type) const {
    return type == MediaType::kAudio ? audio_downloading : video_downloading;
  }
};

/// What the player wants to download next. Chunks are fetched strictly in
/// order per media type; the player chooses the *track*.
///
/// Muxed mode (Fig 1 left side): one request fetches the combined
/// video+audio chunk object. Set `muxed`, put the video track in `track_id`
/// and the audio track in `audio_track_id`; `type` must be kVideo and both
/// media positions must be aligned (the engine asserts this). On completion
/// both buffers are filled and both positions advance.
struct DownloadRequest {
  MediaType type = MediaType::kVideo;
  std::string track_id;
  int chunk_index = 0;
  bool muxed = false;
  std::string audio_track_id;
};

class PlayerAdapter {
 public:
  virtual ~PlayerAdapter() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Called once before the session starts.
  virtual void start(const ManifestView& view) = 0;

  /// Maximum simultaneous downloads (1 = serial A/V like ExoPlayer,
  /// 2 = concurrent audio+video pipelines like Shaka / dash.js).
  [[nodiscard]] virtual int max_concurrent_downloads() const { return 1; }

  /// Ask for the next download. The engine guarantees at most one in-flight
  /// download per media type. Returning nullopt means "idle for now"
  /// (buffers full enough); the engine re-asks on the next event.
  virtual std::optional<DownloadRequest> next_request(const PlayerContext& ctx) = 0;

  /// Per-delta progress while downloading (optional).
  virtual void on_progress(const ProgressSample& sample) { (void)sample; }

  /// Consulted after each progress sample of an active download; returning
  /// true cancels that download (bytes already transferred are wasted, the
  /// chunk position is re-requested via next_request). This models request
  /// abandonment (dash.js AbandonRequestsRule). `ctx` reflects the state
  /// before cancellation.
  virtual bool should_abandon(const ProgressSample& sample, const PlayerContext& ctx) {
    (void)sample;
    (void)ctx;
    return false;
  }

  /// Chunk finished downloading (optional).
  virtual void on_chunk_complete(const ChunkCompletion& completion,
                                 const PlayerContext& ctx) {
    (void)completion;
    (void)ctx;
  }

  /// Current bandwidth estimate for logging; 0 when the model has none.
  [[nodiscard]] virtual double bandwidth_estimate_kbps() const { return 0.0; }
};

}  // namespace demuxabr
