// SessionLog: everything a streaming session records, and the QoE report
// derived from it. The log carries the exact series the paper plots:
// selected-track timelines (Figs 2, 3a, 4b, 5a), buffer levels (Figs 3b,
// 5b), bandwidth-estimate evolution (Fig 4), plus stall accounting.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "media/combination.h"
#include "media/track.h"
#include "util/time_series.h"

namespace demuxabr {

struct DownloadRecord {
  MediaType type = MediaType::kVideo;
  std::string track_id;
  int chunk_index = 0;
  std::int64_t bytes = 0;
  double start_t = 0.0;
  double end_t = 0.0;

  [[nodiscard]] double throughput_kbps() const {
    return end_t > start_t ? static_cast<double>(bytes) * 8.0 / 1000.0 / (end_t - start_t)
                           : 0.0;
  }
};

struct StallEvent {
  double start_t = 0.0;
  double end_t = 0.0;
  [[nodiscard]] double duration_s() const { return end_t - start_t; }
};

struct SeekRecord {
  double at_t = 0.0;           ///< wall-clock time of the seek
  double from_position_s = 0.0;
  double to_position_s = 0.0;  ///< snapped to a chunk boundary
};

/// Scalar aggregates a session maintains incrementally at the exact points
/// it appends to the record vectors, so every total is available in
/// minimal-log mode (million-client streaming fleets drop the vectors) and
/// bit-identical to re-deriving it from the full vectors when they exist.
struct SessionTotals {
  std::int64_t downloaded_bytes = 0;
  std::int64_t download_records = 0;  ///< components (audio+video) completed
  std::int64_t abandoned_records = 0;
  std::int64_t wasted_bytes = 0;
  double stall_s = 0.0;
  std::int64_t stall_events = 0;

  /// Selection aggregates in chunk order, mirroring compute_qoe's walk over
  /// the selection vectors: bitrate sums over *filled* slots, per-type
  /// switch counts and the |Δkbps| switch cost between consecutive fills.
  double video_kbps_sum = 0.0;
  double audio_kbps_sum = 0.0;
  int video_chunks = 0;  ///< filled video selection slots
  int audio_chunks = 0;
  int video_switches = 0;
  int audio_switches = 0;
  double switch_cost_kbps = 0.0;
  double last_video_kbps = 0.0;
  double last_audio_kbps = 0.0;

  /// Time-weighted |audio − video| buffer-level integral over the series
  /// sampling instants (left-endpoint rule — the exact arithmetic the fleet
  /// layer historically ran over the recorded series points).
  double imbalance_integral = 0.0;
  double imbalance_span_s = 0.0;
  double last_sample_t = 0.0;
  double last_abs_imbalance_s = 0.0;
  bool have_sample = false;
};

struct SessionLog {
  std::string player_name;
  double content_duration_s = 0.0;
  double chunk_duration_s = 0.0;
  int total_chunks = 0;
  /// Minimal-log mode (SessionConfig::minimal_log): the record vectors and
  /// selection vectors below stay empty; only `totals` and the scalar
  /// fields are populated. O(1) memory per session.
  bool minimal = false;

  SessionTotals totals;

  std::vector<DownloadRecord> downloads;
  /// Downloads cancelled mid-flight (request abandonment); `bytes` holds the
  /// wasted transfer.
  std::vector<DownloadRecord> abandoned;
  std::vector<StallEvent> stalls;
  std::vector<SeekRecord> seeks;
  double startup_delay_s = 0.0;
  double end_time_s = 0.0;
  bool completed = false;  ///< playhead reached content end within sim budget

  /// Per-chunk selected track ids, indexed by chunk position.
  std::vector<std::string> video_selection;
  std::vector<std::string> audio_selection;

  /// Time series (wall-clock time on the x axis).
  TimeSeries video_buffer_s;
  TimeSeries audio_buffer_s;
  TimeSeries bandwidth_estimate_kbps;
  /// Bytes actually delivered across all flows per sampling interval,
  /// expressed as kbps — the link-utilization series (compare against the
  /// trace to see idle/wasted capacity).
  TimeSeries achieved_throughput_kbps;
  TimeSeries selected_video_kbps;  ///< avg bitrate of the selected video track
  TimeSeries selected_audio_kbps;

  /// Preallocate the record vectors and time series from the session shape:
  /// `total_chunks` bounds the download/selection vectors, and the series
  /// are sized for `expected_duration_s` of samples every `delta_s`. Purely
  /// a capacity hint — logs grow past it (stalls extend wall time) without
  /// reallocation churn on the common path.
  void reserve_for(int chunks, double expected_duration_s, double delta_s);

  // Accessors answer from the record vectors in full-log mode (hand-built
  // logs in tests never touch `totals`) and from the choke-point aggregates
  // in minimal mode. For session-produced logs the two are bit-identical:
  // the totals accumulate the same values in the same order the vectors
  // record them.
  [[nodiscard]] double total_stall_s() const;
  [[nodiscard]] std::size_t stall_count() const {
    return minimal ? static_cast<std::size_t>(totals.stall_events) : stalls.size();
  }
  [[nodiscard]] std::int64_t total_downloaded_bytes() const;
  /// Bytes transferred by abandoned (cancelled) downloads.
  [[nodiscard]] std::int64_t wasted_bytes() const;
  /// Completed download records (== downloads.size() in full-log mode).
  [[nodiscard]] std::size_t download_count() const {
    return minimal ? static_cast<std::size_t>(totals.download_records)
                   : downloads.size();
  }
  [[nodiscard]] std::size_t abandoned_count() const {
    return minimal ? static_cast<std::size_t>(totals.abandoned_records)
                   : abandoned.size();
  }
  /// Time-weighted mean |audio − video| buffer level over the session
  /// (§3.4's imbalance metric); 0 when fewer than two samples were taken.
  [[nodiscard]] double mean_buffer_imbalance_s() const;
  /// Distinct combination labels selected over the session, in first-use order.
  [[nodiscard]] std::vector<std::string> selected_combination_labels() const;
};

/// Tunables of the QoE score. The linear-form score follows the common
/// formulation (e.g. MPC / Pensieve): bitrate utility minus rebuffering and
/// switching penalties, with audio weighted relative to video.
struct QoeConfig {
  double stall_penalty_per_s = 3000.0;  ///< kbps-equivalents per stall second
  double startup_penalty_per_s = 1000.0;
  double switch_penalty_kbps = 1.0;     ///< per kbps of bitrate change
  double audio_weight = 1.0;            ///< audio bitrate utility weight
};

struct QoeReport {
  double startup_delay_s = 0.0;
  double total_stall_s = 0.0;
  int stall_count = 0;
  double avg_video_kbps = 0.0;  ///< chunk-weighted average of selected tracks
  double avg_audio_kbps = 0.0;
  int video_switches = 0;
  int audio_switches = 0;
  int combo_switches = 0;
  /// Chunks whose (video, audio) pair is not in the allowed set (0 when no
  /// allowed set was given). §3.5: manifest non-conformance.
  int off_manifest_chunks = 0;
  double qoe_score = 0.0;
};

/// Compute the QoE report. `allowed` (may be nullptr) is the curated
/// combination list used to count off-manifest selections. Selected-track
/// bitrates are looked up in `ladder` (the actual track averages).
QoeReport compute_qoe(const SessionLog& log, const BitrateLadder& ladder,
                      const std::vector<AvCombination>* allowed = nullptr,
                      const QoeConfig& config = {});

/// Render the per-chunk selection table ("chunk, video, audio, combo") CSV.
std::string selection_csv(const SessionLog& log);

/// Render a compact human-readable summary block.
std::string summarize(const SessionLog& log, const QoeReport& report);

}  // namespace demuxabr
