// StreamingSession: the discrete-event client/network simulation.
//
// Owns the playback clock, the per-type prefetch buffers, and the download
// flows over the Network. Polls the PlayerAdapter for decisions, feeds it
// progress/completion events, and records a SessionLog. Deterministic:
// identical inputs yield identical logs.
//
// Model summary (DESIGN.md §4):
//  * at most one in-flight download per media type; the player's
//    max_concurrent_downloads() caps overall parallelism (1 = serial A/V,
//    2 = concurrent pipelines);
//  * each request pays an RTT before data flows; active flows on a link
//    share its capacity equally — accounted through the link's fair-share
//    service integral (net/link.h), so delivered bytes are an integral
//    difference rather than a per-interval accumulation;
//  * per-delta (default 0.125 s) progress samples are emitted per flow —
//    the granularity Shaka's estimator filters on (§3.3);
//  * playback consumes audio and video in lockstep; a stall starts when
//    either buffer underruns and ends when both recover past the resume
//    threshold (§3.4).
//
// Determinism contract (DESIGN.md §7 "Engine modes"): every quantity the
// session derives — bytes delivered, buffer levels, playhead, event
// deadlines — is computed from *anchored* state that only changes at the
// session's own events (plus link state, which only changes when a flow
// joins or leaves). Advancing the session through extra intermediate times
// (as the barrier fleet engine does at every global step) is numerically
// invisible: integrate_to() assigns values, it never accumulates per-step
// deltas. That is what lets the O(log N) event-heap fleet engine, which
// touches a session only at its own events, reproduce the barrier engine's
// logs bit for bit.
#pragma once

#include <cstdint>
#include <limits>

#include "manifest/view.h"
#include "media/content.h"
#include "net/link.h"
#include "obs/telemetry.h"
#include "sim/buffer.h"
#include "sim/metrics.h"
#include "sim/player.h"
#include "util/arena.h"

namespace demuxabr {

/// A scripted user seek: at wall-clock `at_time_s`, jump the playhead to
/// content position `to_position_s` (snapped to a chunk boundary).
struct SeekEvent {
  double at_time_s = 0.0;
  double to_position_s = 0.0;
};

struct SessionConfig {
  /// Playback starts once both buffers reach this level (or the content is
  /// fully downloaded). Default matches ExoPlayer's bufferForPlayback.
  double startup_buffer_s = 2.5;
  /// After a stall, playback resumes once both buffers recover to this
  /// (ExoPlayer's bufferForPlaybackAfterRebuffer).
  double resume_buffer_s = 5.0;
  /// Progress-sampling interval (Shaka's delta).
  double delta_s = 0.125;
  /// Hard wall on simulated time. Reaching it is itself an event: the
  /// session aborts in-flight downloads (releasing shared-link slots),
  /// closes an open stall and finishes exactly at the cap.
  double max_sim_time_s = 7200.0;
  /// Wall-clock time at which the session clock begins. Fleet scheduling
  /// sets this to the client's arrival time so every session shares the
  /// global clock (link traces are evaluated at absolute time). All logged
  /// times are then absolute; startup_delay_s stays relative to this.
  double start_time_s = 0.0;
  /// Record buffer/estimate/selection time series in the log.
  bool record_series = true;
  /// Minimal-log mode (streaming fleets, DESIGN.md §10): suppress the
  /// per-download/stall/selection vectors entirely — the log carries only
  /// SessionTotals plus scalars, so memory per session is O(1) instead of
  /// O(chunks). The totals are maintained identically in both modes; only
  /// compute_qoe's combo_switches (and seek support) need the vectors.
  bool minimal_log = false;
  /// Base id for this session's flow tokens on shared links (audio flow =
  /// base, video flow = base + 1). Tokens must be unique per link; a fleet
  /// scheduler assigns 2*client_id. Irrelevant for solo sessions.
  std::uint32_t flow_token_base = 0;
  /// Observability track id for this session's trace events. A fleet
  /// scheduler assigns the client id; solo sessions keep track 0.
  std::uint32_t trace_track = 0;
  /// Scripted seeks, ascending by at_time_s. A seek cancels in-flight
  /// downloads, flushes both buffers and rebuffers at the target position
  /// (counted as a stall while playback is paused).
  std::vector<SeekEvent> seeks;
  /// Optional arena (must outlive the session) backing the pending-delivery
  /// queue: fleet schedulers pass their per-shard arena so queue growth in
  /// the drain loop never calls malloc. Null (solo sessions) = heap.
  MonotonicArena* arena = nullptr;
  /// Time-binned fleet telemetry sink (obs/telemetry.h), owned by the fleet
  /// scheduler; the session reports buffer samples and completed video
  /// chunks into it. Null (the default) costs one predictable branch per
  /// hook site — the zero-overhead-when-disabled contract.
  obs::TimelineShard* telemetry = nullptr;
};

class StreamingSession {
 public:
  /// `content` is server-side truth (chunk sizes); `view` is what the player
  /// sees. The session keeps references; all must outlive run().
  StreamingSession(const Content& content, ManifestView view, Network network,
                   PlayerAdapter& player, SessionConfig config = {});

  /// Run to completion (or the sim-time cap) and return the log.
  /// Implemented as a loop over the stepping API below.
  SessionLog run();

  // --- Incremental stepping API (DESIGN.md "Fleet simulation") ---
  //
  // A barrier fleet engine interleaves N sessions on shared links by
  // driving each through the same phases the solo loop runs:
  //
  //   start();
  //   while (!done()) {
  //     begin_step();                     // all sessions first: link counts
  //     t = next_event_time();            // then horizons (rates now global)
  //     integrate_to(min over sessions);  // all sessions: flows + playback
  //     process_events();                 // all sessions: completions, ticks
  //   }
  //   log = finish();
  //
  // The event-heap engine instead advances a session only at its own event
  // times, in the order integrate_to(t); process_events(); begin_step() —
  // equivalent to the barrier sequence because begin_step() at the top of a
  // barrier iteration acts at the *previous* barrier's time. process_events
  // fires only when one of the session's own events is due, so a session
  // cannot observe whether it was also advanced at foreign barrier times.

  /// One-time setup: starts the player, takes the first series sample and
  /// offers the first download slots. Call before any stepping.
  void start();

  /// True once the playhead reached content end, the sim-time cap was hit,
  /// or the session was abandoned via abort_session().
  [[nodiscard]] bool done() const;

  /// Register flows whose request RTT has elapsed on their links (recording
  /// their fair-share service offsets and completion targets). Must run for
  /// every session sharing a link before any next_event_time() call so
  /// horizons see the true flow counts.
  void begin_step();

  /// Earliest time > now() at which this session's state changes character:
  /// sampling tick, RTT expiry, flow completion, buffer underrun, content
  /// end, scripted seek or the sim-time cap. Pure. Every candidate is an
  /// anchored absolute time, so repeated calls between events return the
  /// same float in any engine.
  [[nodiscard]] double next_event_time() const;

  /// next_event_time() without the link-dependent completion candidates:
  /// the event-heap engine keys sessions on this and lets each shared link
  /// announce its own earliest completion (Link::earliest_completion_time),
  /// so no per-session key ever goes stale when a link's population moves.
  [[nodiscard]] double next_local_event_time() const;

  /// Advance flows/buffers/playhead/clock to `t` (<= next_event_time())
  /// without firing events. Pure assignment of anchored values: advancing
  /// in one jump or through any intermediate times is bit-identical.
  void integrate_to(double t);

  /// Fire everything due at the current time: completions, progress samples
  /// and abandonment, series sampling, seeks, playback transitions, player
  /// polling, end-of-content detection, the sim-time cap. No-op when none
  /// of the session's own events are due (foreign barrier times).
  void process_events();

  /// integrate_to + process_events: the solo-session step.
  void advance_to(double t) {
    integrate_to(t);
    process_events();
  }

  /// Abandon the whole session (fleet churn): cancels in-flight downloads
  /// (releasing shared-link slots), closes an open stall, and marks the
  /// session done. The log keeps everything up to this point.
  void abort_session();

  /// Stamp end_time_s and surrender the log. Call once, after done().
  SessionLog finish();

  [[nodiscard]] double now() const { return now_; }
  [[nodiscard]] const SessionLog& log() const { return log_; }

 private:
  struct Flow {
    bool active = false;
    DownloadRequest request;
    std::int64_t total_bytes = 0;
    double request_t = 0.0;
    double data_start_t = 0.0;  ///< request_t + RTT
    double bytes_done = 0.0;    ///< derived from the link service integral
    std::int64_t sampled_bytes = 0;  ///< bytes already reported via samples
    double last_sample_t = 0.0;
    bool on_link = false;
    /// The carrier this flow registered on: the network's default link, or
    /// the router's pick (a cache-hit prefix channel). Valid while on_link.
    Channel* channel = nullptr;
    /// Router ticket from FlowRouter::admit, echoed via delivered() at
    /// completion; 0 = no notification owed.
    std::uint64_t route_ticket = 0;
    std::uint32_t token = 0;        ///< completion-registry id on the link
    double v_start_kbit = 0.0;      ///< link service integral at registration
    double v_target_kbit = 0.0;     ///< service integral at completion
    /// Ladder/chunk lookups resolved once at request time so the completion
    /// path never re-searches the ladder or the chunk map (hot path).
    const TrackInfo* track_info = nullptr;
    const ChunkInfo* chunk_info = nullptr;
    const TrackInfo* audio_track_info = nullptr;  ///< muxed requests only
    const ChunkInfo* audio_chunk_info = nullptr;  ///< muxed requests only
  };

  [[nodiscard]] PlayerContext make_context() const;
  [[nodiscard]] Flow& flow(MediaType type) {
    return type == MediaType::kAudio ? audio_flow_ : video_flow_;
  }
  [[nodiscard]] MediaBuffer& buffer(MediaType type) {
    return type == MediaType::kAudio ? audio_buffer_ : video_buffer_;
  }
  [[nodiscard]] int& next_chunk(MediaType type) {
    return type == MediaType::kAudio ? next_audio_chunk_ : next_video_chunk_;
  }
  [[nodiscard]] int active_flow_count() const {
    return (audio_flow_.active ? 1 : 0) + (video_flow_.active ? 1 : 0);
  }
  [[nodiscard]] Channel& link_of(const Flow& f) const {
    // Routed flows carry their channel; anything else (and pre-registration
    // states) falls back to the media type's default link.
    if (f.channel != nullptr) return *f.channel;
    return network_.link_for(f.request.type == MediaType::kVideo);
  }

  /// Anchored deadline at which `buf` would run dry if playback continues
  /// uninterrupted. Only meaningful while playing.
  [[nodiscard]] double underrun_deadline(const MediaBuffer& buf) const {
    return anchor_t_ + (buf.pushed_s() + playhead_flush_base_ - playhead_anchor_);
  }
  /// Anchored deadline at which the playhead reaches content end.
  [[nodiscard]] double content_end_deadline() const {
    return anchor_t_ + (content_duration_s_ - playhead_anchor_);
  }
  /// Re-anchor the playhead clock at the current (now_, playhead_s_).
  /// Called whenever playback starts, stops or seeks.
  void re_anchor() {
    anchor_t_ = now_;
    playhead_anchor_ = playhead_s_;
  }
  /// Total bytes delivered to this session so far (completed + aborted +
  /// in-flight). Path-independent: banked parts are event-time constants,
  /// in-flight parts come from the link service integral.
  [[nodiscard]] double lifetime_bytes() const {
    return banked_bytes_ + audio_flow_.bytes_done + video_flow_.bytes_done;
  }

  void poll_player();
  void perform_seek(const SeekEvent& seek);
  void start_flow(const DownloadRequest& request);
  void complete_flow(Flow& f);
  /// Cancel an in-flight download (request abandonment).
  void abort_flow(Flow& f);
  /// Hand queued completed downloads to the router (begin_step only).
  void flush_deliveries();
  /// Emit the pending progress sample up to t1; returns it when non-empty.
  std::optional<ProgressSample> emit_progress(Flow& f, double t1);
  void handle_playback_transitions();
  void sample_series();
  [[nodiscard]] bool all_chunks_downloaded() const;

  const Content& content_;
  ManifestView view_;
  Network network_;
  PlayerAdapter& player_;
  SessionConfig config_;

  /// Content-derived constants hoisted out of the event loop (each was a
  /// virtual-free but repeated call on every iteration).
  int total_chunks_ = 0;
  double content_duration_s_ = 0.0;

  double now_ = 0.0;
  double next_tick_ = 0.0;  ///< next progress-sampling boundary
  bool stopped_ = false;    ///< abort_session() called (churn or cap)
  bool hit_cap_ = false;    ///< stopped_ because of max_sim_time_s
  double last_series_sample_t_ = 0.0;
  double banked_bytes_ = 0.0;  ///< bytes of completed/aborted flows
  double lifetime_bytes_at_last_sample_ = 0.0;
  bool started_ = false;
  bool playing_ = false;
  double playhead_s_ = 0.0;
  /// Playhead anchor: playhead_s_ == playhead_anchor_ + (now_ - anchor_t_)
  /// while playing, playhead_anchor_ otherwise. Re-anchored only at
  /// play/pause/seek transitions — the source of path-independent buffer
  /// and deadline math.
  double anchor_t_ = 0.0;
  double playhead_anchor_ = 0.0;
  /// Playhead value when the buffers were last flushed (session start or
  /// seek): cumulative buffer consumption == playhead - this base.
  double playhead_flush_base_ = 0.0;
  double stall_start_t_ = 0.0;

  MediaBuffer audio_buffer_;
  MediaBuffer video_buffer_;
  /// Last-completed track identity per type, for switch detection. Track
  /// ids are unique per type and every completion carries a stable manifest
  /// TrackInfo pointer, so pointer inequality IS id inequality — no string
  /// compare (or stored string) on the per-chunk path.
  const TrackInfo* last_video_track_ = nullptr;
  const TrackInfo* last_audio_track_ = nullptr;
  int next_audio_chunk_ = 0;
  int next_video_chunk_ = 0;
  Flow audio_flow_;
  Flow video_flow_;
  std::size_t next_seek_ = 0;  ///< index into config_.seeks
  /// Per-bin dedup state for config_.telemetry (unused when null).
  obs::TimelineCursor telemetry_cursor_;

  /// Completed downloads owed to the router (cache fills). Queued by
  /// complete_flow, flushed at the next begin_step — deferring the mutation
  /// to the registration phase keeps router state changes in client-id
  /// order per timestamp in both fleet engines (sim/flow_router.h).
  struct PendingDelivery {
    DownloadRequest request;
    std::uint64_t ticket = 0;
  };
  /// At most two entries ever (one in-flight flow per media type between
  /// consecutive begin_steps); arena-backed in fleets, so even its one-off
  /// growth is a pointer bump. Lazily grown: cache-less fleets never queue
  /// a delivery, so the arena pays nothing per churned client there.
  std::vector<PendingDelivery, ArenaAllocator<PendingDelivery>> pending_deliveries_;

  SessionLog log_;
};

/// Convenience one-call runner.
SessionLog run_session(const Content& content, const ManifestView& view,
                       const Network& network, PlayerAdapter& player,
                       const SessionConfig& config = {});

}  // namespace demuxabr
