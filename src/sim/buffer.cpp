#include "sim/buffer.h"

#include <algorithm>

namespace demuxabr {

void MediaBuffer::push(int chunk_index, double duration_s, std::string track_id) {
  assert(duration_s > 0.0);
  assert(chunks_.empty() ? chunk_index >= end_index_ - 1 : true);
  assert(chunk_index == end_index_ || end_index_ == 0);
  chunks_.push_back({chunk_index, duration_s, std::move(track_id)});
  level_s_ += duration_s;
  end_index_ = chunk_index + 1;
}

double MediaBuffer::consume(double dt) {
  assert(dt >= 0.0);
  double consumed = 0.0;
  while (dt > 1e-12 && !chunks_.empty()) {
    BufferedChunk& front = chunks_.front();
    const double remaining = front.duration_s - front_consumed_s_;
    const double take = std::min(remaining, dt);
    front_consumed_s_ += take;
    level_s_ -= take;
    consumed += take;
    dt -= take;
    if (front.duration_s - front_consumed_s_ <= 1e-12) {
      chunks_.pop_front();
      front_consumed_s_ = 0.0;
    }
  }
  if (level_s_ < 1e-12) level_s_ = 0.0;
  return consumed;
}

void MediaBuffer::clear() {
  chunks_.clear();
  front_consumed_s_ = 0.0;
  level_s_ = 0.0;
  end_index_ = 0;
}

}  // namespace demuxabr
