#include "sim/buffer.h"

#include <algorithm>

namespace demuxabr {

void MediaBuffer::push(int chunk_index, double duration_s, std::string track_id) {
  assert(duration_s > 0.0);
  assert(chunks_.empty() ? chunk_index >= end_index_ - 1 : true);
  assert(chunk_index == end_index_ || end_index_ == 0);
  chunks_.push_back({chunk_index, duration_s, std::move(track_id)});
  pushed_s_ += duration_s;
  end_index_ = chunk_index + 1;
}

void MediaBuffer::drain_to(double consumed_s) {
  if (consumed_s <= consumed_s_) return;
  consumed_s_ = std::min(consumed_s, pushed_s_);
  // Retire chunks the playhead has fully passed. The retirement threshold
  // is a cumulative total, so which chunks are retired depends only on the
  // consumed amount, not on the drain call pattern.
  while (!chunks_.empty() &&
         consumed_s_ >= popped_s_ + chunks_.front().duration_s - 1e-12) {
    popped_s_ += chunks_.front().duration_s;
    chunks_.pop_front();
  }
}

double MediaBuffer::consume(double dt) {
  assert(dt >= 0.0);
  const double take = std::min(dt, level_s());
  drain_to(consumed_s_ + take);
  return take;
}

void MediaBuffer::clear() {
  chunks_.clear();
  popped_s_ = 0.0;
  pushed_s_ = 0.0;
  consumed_s_ = 0.0;
  end_index_ = 0;
}

}  // namespace demuxabr
