#include "sim/buffer.h"

#include <algorithm>

namespace demuxabr {

void MediaBuffer::push_back(const BufferedChunk& chunk) {
  if (count_ == ring_.size()) {
    // Grow and linearize: the old ring's live span moves to the front of the
    // doubled storage, so indexing stays a single mask.
    const std::size_t old_capacity = ring_.size();
    std::vector<BufferedChunk> grown(std::max<std::size_t>(8, old_capacity * 2));
    for (std::size_t i = 0; i < count_; ++i) {
      grown[i] = ring_[(head_ + i) & (old_capacity - 1)];
    }
    ring_.swap(grown);
    head_ = 0;
  }
  ring_[(head_ + count_) & (ring_.size() - 1)] = chunk;
  ++count_;
}

void MediaBuffer::push(int chunk_index, double duration_s) {
  assert(duration_s > 0.0);
  assert(count_ == 0 ? chunk_index >= end_index_ - 1 : true);
  assert(chunk_index == end_index_ || end_index_ == 0);
  push_back({chunk_index, duration_s});
  pushed_s_ += duration_s;
  end_index_ = chunk_index + 1;
}

double MediaBuffer::consume(double dt) {
  assert(dt >= 0.0);
  const double take = std::min(dt, level_s());
  drain_to(consumed_s_ + take);
  return take;
}

void MediaBuffer::clear() {
  head_ = 0;
  count_ = 0;
  popped_s_ = 0.0;
  pushed_s_ = 0.0;
  consumed_s_ = 0.0;
  end_index_ = 0;
}

}  // namespace demuxabr
