// FlowRouter: the session's per-request routing hook. A session normally
// registers every flow on its Network's default carrier (the client's full
// path to the origin); a router may redirect individual requests onto a
// different Channel — the cache-aware fleet (fleet/cdn_fleet.h) serves edge
// cache hits over the short client→edge hop prefix while misses ride the
// full edge→origin path.
//
// Determinism contract (why both hooks fire inside begin_step): in both
// fleet engines, at any timestamp t, all chunk completions at t fire before
// all flow registrations at t, and begin_step sweeps sessions in ascending
// client id. Sessions therefore defer delivered() notifications from
// complete_flow to their next begin_step, so every router mutation — the
// lookup/touch in admit() and the cache fill in delivered() — happens in
// client-id order per timestamp, identically in the barrier and event-heap
// engines and at any shard/thread count.
#pragma once

#include <cstdint>

#include "net/channel.h"
#include "sim/player.h"

namespace demuxabr {

/// One routing decision. A null channel means "use the default carrier".
/// The ticket is opaque router state echoed back through delivered();
/// ticket 0 means the completion needs no notification.
struct FlowRoute {
  Channel* channel = nullptr;
  std::uint64_t ticket = 0;
};

class FlowRouter {
 public:
  virtual ~FlowRouter() = default;

  /// Called when a flow is about to register on a link (its RTT elapsed,
  /// inside begin_step). `origin_route` is the session's default carrier
  /// for this request's media type.
  virtual FlowRoute admit(const DownloadRequest& request, Channel& origin_route,
                          double now) = 0;

  /// Called — deferred to the completing session's next begin_step — once
  /// the flow admitted with `ticket` fully downloaded. Aborted flows are
  /// never delivered.
  virtual void delivered(const DownloadRequest& request, std::uint64_t ticket,
                         double now) = 0;
};

}  // namespace demuxabr
