#include "sim/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/strings.h"

namespace demuxabr {

void SessionLog::reserve_for(int chunks, double expected_duration_s, double delta_s) {
  const auto chunk_slots = static_cast<std::size_t>(std::max(0, chunks));
  // Demuxed playback downloads one audio + one video record per position.
  downloads.reserve(2 * chunk_slots + 8);
  if (delta_s <= 0.0 || expected_duration_s <= 0.0) return;
  // Series gain one point per delta tick; stalls stretch wall time past the
  // content duration, so leave headroom rather than sizing exactly.
  const auto samples = static_cast<std::size_t>(
      std::min(expected_duration_s * 1.5 / delta_s + 64.0, 4.0e6));
  audio_buffer_s.reserve(samples);
  video_buffer_s.reserve(samples);
  bandwidth_estimate_kbps.reserve(samples);
  achieved_throughput_kbps.reserve(samples);
  // Selection series gain a point per request, not per tick.
  selected_video_kbps.reserve(chunk_slots + 8);
  selected_audio_kbps.reserve(2 * chunk_slots + 8);
}

std::vector<std::string> SessionLog::selected_combination_labels() const {
  std::vector<std::string> labels;
  const std::size_t n = std::min(video_selection.size(), audio_selection.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::string label = video_selection[i] + "+" + audio_selection[i];
    if (std::find(labels.begin(), labels.end(), label) == labels.end()) {
      labels.push_back(label);
    }
  }
  return labels;
}

double SessionLog::total_stall_s() const {
  if (minimal) return totals.stall_s;
  double total = 0.0;
  for (const StallEvent& s : stalls) total += s.duration_s();
  return total;
}

std::int64_t SessionLog::total_downloaded_bytes() const {
  if (minimal) return totals.downloaded_bytes;
  std::int64_t total = 0;
  for (const DownloadRecord& d : downloads) total += d.bytes;
  return total;
}

std::int64_t SessionLog::wasted_bytes() const {
  if (minimal) return totals.wasted_bytes;
  std::int64_t total = 0;
  for (const DownloadRecord& d : abandoned) total += d.bytes;
  return total;
}

double SessionLog::mean_buffer_imbalance_s() const {
  if (minimal) {
    return totals.imbalance_span_s > 0.0
               ? totals.imbalance_integral / totals.imbalance_span_s
               : 0.0;
  }
  // Left-endpoint rule over the recorded series samples (both series are
  // sampled at the same instants by the engine) — the arithmetic the
  // minimal-mode incremental integral mirrors term for term.
  const auto& audio = audio_buffer_s.points();
  const auto& video = video_buffer_s.points();
  const std::size_t n = std::min(audio.size(), video.size());
  if (n < 2) return 0.0;
  double integral = 0.0;
  double total = 0.0;
  for (std::size_t i = 1; i < n; ++i) {
    const double dt = audio[i].t - audio[i - 1].t;
    if (dt <= 0.0) continue;
    integral += std::abs(audio[i - 1].value - video[i - 1].value) * dt;
    total += dt;
  }
  return total > 0.0 ? integral / total : 0.0;
}

QoeReport compute_qoe(const SessionLog& log, const BitrateLadder& ladder,
                      const std::vector<AvCombination>* allowed, const QoeConfig& config) {
  QoeReport report;
  report.startup_delay_s = log.startup_delay_s;
  report.total_stall_s = log.total_stall_s();
  report.stall_count = static_cast<int>(log.stall_count());

  if (log.minimal) {
    // Minimal-log sessions carry the selection walk pre-aggregated
    // (SessionTotals) instead of the per-chunk vectors. Reproduce the
    // vector walk's arithmetic exactly for the sequential-download case:
    // the selection vectors would be the first `*_chunks` slots filled and
    // the tail empty (""), so empty slots contribute 0 to the bitrate sums
    // and a partially-watched session pays exactly one extra switch per
    // type at the fill boundary, costing the last selected bitrate.
    // Not supported with seeks (they overwrite earlier slots); fleets
    // don't script seeks. combo_switches needs per-slot alignment of the
    // two types and stays 0 — no fleet aggregate consumes it.
    const SessionTotals& t = log.totals;
    const int chunks = log.total_chunks;
    report.video_switches = t.video_switches;
    report.audio_switches = t.audio_switches;
    double switch_cost = t.switch_cost_kbps;
    if (t.video_chunks > 0 && t.video_chunks < chunks) {
      ++report.video_switches;
      switch_cost += t.last_video_kbps;
    }
    if (t.audio_chunks > 0 && t.audio_chunks < chunks) {
      ++report.audio_switches;
      switch_cost += t.last_audio_kbps;
    }
    if (chunks > 0) {
      report.avg_video_kbps = t.video_kbps_sum / static_cast<double>(chunks);
      report.avg_audio_kbps = t.audio_kbps_sum / static_cast<double>(chunks);
    }
    const double utility = t.video_kbps_sum + config.audio_weight * t.audio_kbps_sum;
    const double penalty = config.stall_penalty_per_s * report.total_stall_s +
                           config.startup_penalty_per_s * report.startup_delay_s +
                           config.switch_penalty_kbps * switch_cost;
    report.qoe_score =
        chunks > 0 ? (utility - penalty) / static_cast<double>(chunks) : 0.0;
    return report;
  }

  auto kbps_of = [&ladder](const std::string& id) {
    const TrackInfo* track = ladder.find(id);
    return track != nullptr ? track->avg_kbps : 0.0;
  };

  const std::size_t chunks =
      std::min(log.video_selection.size(), log.audio_selection.size());
  double video_sum = 0.0;
  double audio_sum = 0.0;
  double switch_cost = 0.0;
  for (std::size_t i = 0; i < chunks; ++i) {
    const double v = kbps_of(log.video_selection[i]);
    const double a = kbps_of(log.audio_selection[i]);
    video_sum += v;
    audio_sum += a;
    if (i > 0) {
      if (log.video_selection[i] != log.video_selection[i - 1]) {
        ++report.video_switches;
        switch_cost += std::abs(v - kbps_of(log.video_selection[i - 1]));
      }
      if (log.audio_selection[i] != log.audio_selection[i - 1]) {
        ++report.audio_switches;
        switch_cost += std::abs(a - kbps_of(log.audio_selection[i - 1]));
      }
      if (log.video_selection[i] != log.video_selection[i - 1] ||
          log.audio_selection[i] != log.audio_selection[i - 1]) {
        ++report.combo_switches;
      }
    }
    if (allowed != nullptr &&
        !contains_combination(*allowed, log.video_selection[i], log.audio_selection[i])) {
      ++report.off_manifest_chunks;
    }
  }
  if (chunks > 0) {
    report.avg_video_kbps = video_sum / static_cast<double>(chunks);
    report.avg_audio_kbps = audio_sum / static_cast<double>(chunks);
  }

  // Linear QoE: per-chunk bitrate utility minus penalties, normalized per
  // chunk so scores are comparable across content lengths.
  const double utility = video_sum + config.audio_weight * audio_sum;
  const double penalty = config.stall_penalty_per_s * report.total_stall_s +
                         config.startup_penalty_per_s * report.startup_delay_s +
                         config.switch_penalty_kbps * switch_cost;
  report.qoe_score =
      chunks > 0 ? (utility - penalty) / static_cast<double>(chunks) : 0.0;
  return report;
}

std::string selection_csv(const SessionLog& log) {
  std::ostringstream out;
  out << "chunk,video,audio,combo\n";
  const std::size_t chunks =
      std::min(log.video_selection.size(), log.audio_selection.size());
  for (std::size_t i = 0; i < chunks; ++i) {
    out << i << ',' << log.video_selection[i] << ',' << log.audio_selection[i] << ','
        << log.video_selection[i] << '+' << log.audio_selection[i] << '\n';
  }
  return out.str();
}

std::string summarize(const SessionLog& log, const QoeReport& report) {
  std::ostringstream out;
  out << format("player=%s completed=%s\n", log.player_name.c_str(),
                log.completed ? "yes" : "NO");
  out << format("  startup=%.2fs stalls=%d rebuffer=%.1fs end=%.1fs\n",
                report.startup_delay_s, report.stall_count, report.total_stall_s,
                log.end_time_s);
  out << format("  avg video=%.0f kbps avg audio=%.0f kbps\n", report.avg_video_kbps,
                report.avg_audio_kbps);
  out << format("  switches: video=%d audio=%d combo=%d off-manifest-chunks=%d\n",
                report.video_switches, report.audio_switches, report.combo_switches,
                report.off_manifest_chunks);
  out << "  combos used:";
  for (const std::string& label : log.selected_combination_labels()) out << ' ' << label;
  out << '\n';
  out << format("  qoe=%.1f\n", report.qoe_score);
  return out.str();
}

}  // namespace demuxabr
