#include "sim/session.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <limits>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/flow_router.h"
#include "util/logging.h"

namespace demuxabr {
namespace {
constexpr double kEps = 1e-9;

/// Trace lane for a download flow: concurrent audio+video flows must not
/// share a lane or Chrome's B/E nesting breaks.
std::uint8_t lane_of(MediaType type) {
  return type == MediaType::kVideo ? obs::kLaneVideo : obs::kLaneAudio;
}
}  // namespace

StreamingSession::StreamingSession(const Content& content, ManifestView view,
                                   Network network, PlayerAdapter& player,
                                   SessionConfig config)
    : content_(content),
      view_(std::move(view)),
      network_(std::move(network)),
      player_(player),
      config_(config),
      pending_deliveries_(ArenaAllocator<PendingDelivery>(config.arena)) {
  // A player must know the timeline before adapting; when the manifest view
  // lacks it (HLS top-level only), model the mandatory fetch of the first
  // media playlist by filling it in here.
  if (view_.total_chunks <= 0 || view_.chunk_duration_s <= 0.0) {
    view_.total_chunks = content_.num_chunks();
    view_.chunk_duration_s = content_.chunk_duration_s();
  }
  total_chunks_ = content_.num_chunks();
  content_duration_s_ = content_.duration_s();
  now_ = config_.start_time_s;
  anchor_t_ = config_.start_time_s;
  last_series_sample_t_ = config_.start_time_s;
  log_.content_duration_s = content_duration_s_;
  log_.chunk_duration_s = content_.chunk_duration_s();
  log_.total_chunks = total_chunks_;
  log_.minimal = config_.minimal_log;
  if (!config_.minimal_log) {
    log_.video_selection.assign(static_cast<std::size_t>(total_chunks_), "");
    log_.audio_selection.assign(static_cast<std::size_t>(total_chunks_), "");
    log_.reserve_for(total_chunks_, content_duration_s_,
                     config_.record_series ? config_.delta_s : 0.0);
  }
}

PlayerContext StreamingSession::make_context() const {
  PlayerContext ctx;
  ctx.now = now_;
  ctx.audio_buffer_s = audio_buffer_.level_s();
  ctx.video_buffer_s = video_buffer_.level_s();
  ctx.next_audio_chunk = next_audio_chunk_;
  ctx.next_video_chunk = next_video_chunk_;
  ctx.total_chunks = total_chunks_;
  ctx.audio_downloading =
      audio_flow_.active || (video_flow_.active && video_flow_.request.muxed);
  ctx.video_downloading = video_flow_.active;
  ctx.playing = playing_;
  ctx.playhead_s = playhead_s_;
  return ctx;
}

bool StreamingSession::all_chunks_downloaded() const {
  return next_audio_chunk_ >= total_chunks_ && next_video_chunk_ >= total_chunks_;
}

void StreamingSession::start_flow(const DownloadRequest& request) {
  Flow& f = flow(request.type);
  assert(!f.active);
  assert(request.chunk_index == next_chunk(request.type));
  assert(request.chunk_index < total_chunks_);
  // Resolve ladder + chunk-map lookups once per request; the progress and
  // completion paths reuse the cached pointers instead of re-searching.
  const TrackInfo* track = content_.ladder().find(request.track_id);
  assert(track != nullptr);
  assert((request.type == MediaType::kAudio) == track->is_audio());
  f.track_info = track;
  f.chunk_info = &content_.chunk(request.track_id, request.chunk_index);
  f.audio_track_info = nullptr;
  f.audio_chunk_info = nullptr;
  if (request.muxed) {
    // Muxed chunks carry both components: positions must be aligned and the
    // audio slot must be free (the muxed flow occupies both).
    assert(request.type == MediaType::kVideo);
    assert(!audio_flow_.active);
    assert(next_audio_chunk_ == next_video_chunk_);
    f.audio_track_info = content_.ladder().find(request.audio_track_id);
    assert(f.audio_track_info != nullptr && f.audio_track_info->is_audio());
    f.audio_chunk_info = &content_.chunk(request.audio_track_id, request.chunk_index);
  }

  f.active = true;
  f.request = request;
  f.total_bytes = f.chunk_info->size_bytes;
  if (request.muxed) {
    f.total_bytes += f.audio_chunk_info->size_bytes;
  }
  f.request_t = now_;
  f.data_start_t = now_ + network_.rtt_s;
  f.bytes_done = 0.0;
  f.sampled_bytes = 0;
  f.last_sample_t = f.data_start_t;
  f.on_link = false;
  f.token =
      config_.flow_token_base + (request.type == MediaType::kVideo ? 1u : 0u);
  f.v_start_kbit = 0.0;
  f.v_target_kbit = 0.0;

  if (config_.record_series) {
    if (request.type == MediaType::kVideo) {
      log_.selected_video_kbps.add(now_, track->avg_kbps);
    } else {
      log_.selected_audio_kbps.add(now_, track->avg_kbps);
    }
    if (request.muxed) {
      log_.selected_audio_kbps.add(now_, f.audio_track_info->avg_kbps);
    }
  }
  DMX_TRACE_SPAN_BEGIN(obs::kCatDownload, config_.trace_track,
                       lane_of(request.type), "download", now_,
                       obs::TraceArgs()
                           .kv("track_id", request.track_id)
                           .kv("chunk", request.chunk_index)
                           .kv("bytes", f.total_bytes)
                           .kv("muxed", request.muxed ? 1 : 0));
  DMX_DEBUG << "t=" << now_ << " request " << media_type_name(request.type) << " "
            << request.track_id << " chunk " << request.chunk_index << " ("
            << f.total_bytes << " B)";
}

std::optional<ProgressSample> StreamingSession::emit_progress(Flow& f, double t1) {
  const auto bytes_now = static_cast<std::int64_t>(f.bytes_done + 0.5);
  const std::int64_t delta_bytes = bytes_now - f.sampled_bytes;
  const double t0 = f.last_sample_t;
  if (t1 <= t0 + kEps) return std::nullopt;
  ProgressSample sample;
  sample.type = f.request.type;
  sample.t0 = t0;
  sample.t1 = t1;
  sample.bytes = delta_bytes;
  player_.on_progress(sample);
  f.sampled_bytes = bytes_now;
  f.last_sample_t = t1;
  return sample;
}

void StreamingSession::abort_flow(Flow& f) {
  assert(f.active);
  if (f.on_link) {
    Channel& link = link_of(f);
    link.remove_flow(now_);
    link.unregister_completion(f.token);
    f.on_link = false;
  }
  // Aborted flows owe the router nothing: the object never fully arrived,
  // so no cache fill happens (the request itself was counted at admit).
  f.channel = nullptr;
  f.route_ticket = 0;
  DownloadRecord record;
  record.type = f.request.type;
  record.track_id = f.request.track_id;
  record.chunk_index = f.request.chunk_index;
  record.bytes = static_cast<std::int64_t>(f.bytes_done + 0.5);
  record.start_t = f.request_t;
  record.end_t = now_;
  log_.totals.wasted_bytes += record.bytes;
  ++log_.totals.abandoned_records;
  if (!config_.minimal_log) log_.abandoned.push_back(record);
  banked_bytes_ += f.bytes_done;
  f.bytes_done = 0.0;
  f.active = false;
  DMX_COUNT("session.downloads_abandoned", 1);
  DMX_TRACE_SPAN_END(obs::kCatDownload, config_.trace_track,
                     lane_of(record.type), "download", now_,
                     obs::TraceArgs().kv("bytes", record.bytes).kv("aborted", 1));
  DMX_DEBUG << "t=" << now_ << " abandon " << media_type_name(record.type) << " "
            << record.track_id << " chunk " << record.chunk_index << " after "
            << record.bytes << " B";
}

void StreamingSession::complete_flow(Flow& f) {
  // Final (partial-interval) progress sample, then the completion event.
  emit_progress(f, now_);
  if (f.on_link) {
    Channel& link = link_of(f);
    link.remove_flow(now_);
    link.unregister_completion(f.token);
    f.on_link = false;
  }
  // Owe the router its completion notice (a cache fill); deferred to the
  // next begin_step so router mutations stay in client-id order per
  // timestamp across both fleet engines.
  if (network_.router != nullptr) {
    pending_deliveries_.push_back({f.request, f.route_ticket});
  }
  f.channel = nullptr;
  f.route_ticket = 0;
  banked_bytes_ += static_cast<double>(f.total_bytes);
  f.bytes_done = 0.0;

  // One component per record/completion; a muxed flow yields two of each.
  // Fixed-size component array + cached chunk pointers: no allocation and
  // no chunk-map lookups on this per-chunk path.
  struct Component {
    MediaType type;
    const std::string* track_id;
    const ChunkInfo* chunk;
    const TrackInfo* track;
  };
  const int chunk_index = f.request.chunk_index;
  Component components[2] = {
      {f.request.type, &f.request.track_id, f.chunk_info, f.track_info}, {}};
  int component_count = 1;
  if (f.request.muxed) {
    components[component_count++] = {MediaType::kAudio, &f.request.audio_track_id,
                                     f.audio_chunk_info, f.audio_track_info};
  }

  for (int i = 0; i < component_count; ++i) {
    const Component& component = components[i];
    buffer(component.type).push(chunk_index, component.chunk->duration_s);
    next_chunk(component.type) = chunk_index + 1;

    // Selection aggregates (SessionTotals): the same walk compute_qoe runs
    // over the selection vectors, folded in at record time so minimal-log
    // sessions keep exact bitrate sums and switch accounting.
    SessionTotals& totals = log_.totals;
    totals.downloaded_bytes += component.chunk->size_bytes;
    ++totals.download_records;
    const double kbps = component.track->avg_kbps;
    if (component.type == MediaType::kVideo) {
      if (config_.telemetry != nullptr) {
        config_.telemetry->video_chunk(now_, kbps);
      }
      if (totals.video_chunks > 0 && component.track != last_video_track_) {
        ++totals.video_switches;
        totals.switch_cost_kbps += std::abs(kbps - totals.last_video_kbps);
      }
      totals.video_kbps_sum += kbps;
      ++totals.video_chunks;
      last_video_track_ = component.track;
      totals.last_video_kbps = kbps;
    } else {
      if (totals.audio_chunks > 0 && component.track != last_audio_track_) {
        ++totals.audio_switches;
        totals.switch_cost_kbps += std::abs(kbps - totals.last_audio_kbps);
      }
      totals.audio_kbps_sum += kbps;
      ++totals.audio_chunks;
      last_audio_track_ = component.track;
      totals.last_audio_kbps = kbps;
    }

    if (!config_.minimal_log) {
      DownloadRecord record;
      record.type = component.type;
      record.track_id = *component.track_id;
      record.chunk_index = chunk_index;
      record.bytes = component.chunk->size_bytes;
      record.start_t = f.request_t;
      record.end_t = now_;
      log_.downloads.push_back(std::move(record));
      auto& selection = component.type == MediaType::kVideo ? log_.video_selection
                                                            : log_.audio_selection;
      selection[static_cast<std::size_t>(chunk_index)] = *component.track_id;
    }
  }

  const bool was_muxed = f.request.muxed;
  DMX_HIST("session.download_s", now_ - f.request_t);
  DMX_COUNT("session.chunks_completed", component_count);
  DMX_TRACE_SPAN_END(obs::kCatDownload, config_.trace_track,
                     lane_of(f.request.type), "download", now_,
                     obs::TraceArgs()
                         .kv("bytes", f.total_bytes)
                         .kv("dur_s", now_ - f.request_t));
  f.active = false;
  for (int i = 0; i < component_count; ++i) {
    const Component& component = components[i];
    ChunkCompletion completion;
    completion.type = component.type;
    completion.track_id = *component.track_id;
    completion.chunk_index = chunk_index;
    completion.bytes = component.chunk->size_bytes;
    completion.start_t = f.request_t;
    completion.end_t = now_;
    player_.on_chunk_complete(completion, make_context());
  }
  DMX_DEBUG << "t=" << now_ << " complete " << (was_muxed ? "muxed " : "")
            << *components[0].track_id << " chunk " << chunk_index;
}

void StreamingSession::perform_seek(const SeekEvent& seek) {
  // Snap the target to a chunk boundary so audio and video restart aligned.
  const double chunk_s = content_.chunk_duration_s();
  int target_chunk = static_cast<int>(seek.to_position_s / chunk_s);
  target_chunk = std::clamp(target_chunk, 0, total_chunks_ - 1);
  const double target_position = static_cast<double>(target_chunk) * chunk_s;

  SeekRecord record;
  record.at_t = now_;
  record.from_position_s = playhead_s_;
  record.to_position_s = target_position;
  // Seeks overwrite earlier selection slots, which the minimal-log
  // aggregates cannot represent; fleets never script seeks (asserted).
  assert(!config_.minimal_log && "minimal_log does not support seeks");
  log_.seeks.push_back(record);

  // Cancel in-flight downloads (wasted bytes, accounted like abandonment).
  for (Flow* f : {&audio_flow_, &video_flow_}) {
    if (f->active) {
      emit_progress(*f, now_);
      abort_flow(*f);
    }
  }
  audio_buffer_.clear();
  video_buffer_.clear();
  next_audio_chunk_ = target_chunk;
  next_video_chunk_ = target_chunk;
  playhead_s_ = target_position;
  playhead_flush_base_ = target_position;
  // Rebuffer at the new position; the gap counts as a stall when playback
  // was running (the user watches a spinner either way).
  if (started_ && playing_) {
    playing_ = false;
    stall_start_t_ = now_;
    DMX_COUNT("session.stalls", 1);
    DMX_TRACE_SPAN_BEGIN(obs::kCatStall, config_.trace_track, obs::kLanePlayback,
                         "stall", now_, obs::TraceArgs().kv("cause", "seek"));
  }
  re_anchor();
  DMX_TRACE_INSTANT(obs::kCatStall, config_.trace_track, obs::kLanePlayback,
                    "seek", now_,
                    obs::TraceArgs()
                        .kv("from_s", record.from_position_s)
                        .kv("to_s", target_position));
  DMX_DEBUG << "t=" << now_ << " seek " << record.from_position_s << " -> "
            << target_position;
}

void StreamingSession::poll_player() {
  // Offer free download slots to the player until it declines.
  for (int guard = 0; guard < 4; ++guard) {
    if (active_flow_count() >= player_.max_concurrent_downloads()) return;
    if (all_chunks_downloaded()) return;
    const PlayerContext ctx = make_context();
    std::optional<DownloadRequest> request;
    if (obs::metrics_enabled()) {
      // Wall-clock decision latency — pure observation; the simulated clock
      // never sees it.
      const auto d0 = std::chrono::steady_clock::now();
      request = player_.next_request(ctx);
      DMX_HIST("session.decision_latency_s",
               std::chrono::duration<double>(std::chrono::steady_clock::now() - d0)
                   .count());
    } else {
      request = player_.next_request(ctx);
    }
    if (!request.has_value()) return;
    assert(!flow(request->type).active && "player requested a busy media type");
    DMX_TRACE_INSTANT(obs::kCatAbr, config_.trace_track, obs::kLaneAbr,
                      "abr_decision", now_,
                      obs::TraceArgs()
                          .kv("type", media_type_name(request->type))
                          .kv("track_id", request->track_id)
                          .kv("chunk", request->chunk_index)
                          .kv("abuf_s", ctx.audio_buffer_s)
                          .kv("vbuf_s", ctx.video_buffer_s)
                          .kv("est_kbps", player_.bandwidth_estimate_kbps()));
    start_flow(*request);
  }
}

void StreamingSession::handle_playback_transitions() {
  const bool audio_done = next_audio_chunk_ >= total_chunks_;
  const bool video_done = next_video_chunk_ >= total_chunks_;
  const bool everything_downloaded = audio_done && video_done;

  if (!started_) {
    if ((audio_buffer_.level_s() >= config_.startup_buffer_s - kEps &&
         video_buffer_.level_s() >= config_.startup_buffer_s - kEps) ||
        everything_downloaded) {
      started_ = true;
      playing_ = true;
      re_anchor();
      log_.startup_delay_s = now_ - config_.start_time_s;
      DMX_COUNT("session.startups", 1);
      DMX_HIST("session.startup_delay_s", log_.startup_delay_s);
      DMX_TRACE_INSTANT(obs::kCatBuffer, config_.trace_track, obs::kLanePlayback,
                        "playback_start", now_,
                        obs::TraceArgs().kv("delay_s", log_.startup_delay_s));
      DMX_DEBUG << "t=" << now_ << " playback start";
    }
    return;
  }

  if (playing_) {
    const bool audio_underrun = audio_buffer_.empty() && !audio_done;
    const bool video_underrun = video_buffer_.empty() && !video_done;
    if (audio_underrun || video_underrun) {
      playing_ = false;
      stall_start_t_ = now_;
      re_anchor();
      DMX_COUNT("session.stalls", 1);
      DMX_TRACE_SPAN_BEGIN(
          obs::kCatStall, config_.trace_track, obs::kLanePlayback, "stall", now_,
          obs::TraceArgs().kv("cause", audio_underrun ? "audio" : "video"));
      DMX_DEBUG << "t=" << now_ << " stall (audio=" << audio_buffer_.level_s()
                << " video=" << video_buffer_.level_s() << ")";
    }
    return;
  }

  // Stalled: resume when both buffers recover (or nothing more to download).
  if ((audio_buffer_.level_s() >= config_.resume_buffer_s - kEps &&
       video_buffer_.level_s() >= config_.resume_buffer_s - kEps) ||
      everything_downloaded) {
    playing_ = true;
    re_anchor();
    log_.totals.stall_s += now_ - stall_start_t_;
    ++log_.totals.stall_events;
    if (!config_.minimal_log) log_.stalls.push_back({stall_start_t_, now_});
    DMX_HIST("session.stall_s", now_ - stall_start_t_);
    DMX_TRACE_SPAN_END(obs::kCatStall, config_.trace_track, obs::kLanePlayback,
                       "stall", now_,
                       obs::TraceArgs().kv("dur_s", now_ - stall_start_t_));
    DMX_DEBUG << "t=" << now_ << " resume after "
              << (now_ - stall_start_t_) << "s stall";
  }
}

void StreamingSession::sample_series() {
  if (config_.telemetry != nullptr) {
    // Tick instants are engine-identical, so the binned counts inherit the
    // determinism contract. stalled = started but not currently playing.
    config_.telemetry->sample_session(telemetry_cursor_, now_,
                                      audio_buffer_.level_s(),
                                      video_buffer_.level_s(),
                                      started_ && !playing_);
  }
  DMX_TRACE_COUNTER(obs::kCatBuffer, config_.trace_track, "buffer_s", now_,
                    obs::TraceArgs()
                        .kv("audio", audio_buffer_.level_s())
                        .kv("video", video_buffer_.level_s()));
  // A/V buffer-imbalance integral, folded in sample by sample with the same
  // left-endpoint arithmetic the fleet layer historically ran over the
  // recorded buffer series — so the §3.4 imbalance metric survives with the
  // series recording off (streaming fleets).
  {
    SessionTotals& totals = log_.totals;
    if (totals.have_sample) {
      const double dt = now_ - totals.last_sample_t;
      if (dt > 0.0) {
        totals.imbalance_integral += totals.last_abs_imbalance_s * dt;
        totals.imbalance_span_s += dt;
      }
    }
    totals.last_sample_t = now_;
    totals.last_abs_imbalance_s =
        std::abs(audio_buffer_.level_s() - video_buffer_.level_s());
    totals.have_sample = true;
  }
  if (!config_.record_series) return;
  log_.audio_buffer_s.add(now_, audio_buffer_.level_s());
  log_.video_buffer_s.add(now_, video_buffer_.level_s());
  log_.bandwidth_estimate_kbps.add(now_, player_.bandwidth_estimate_kbps());
  const double interval = now_ - last_series_sample_t_;
  if (interval > 0.0) {
    // Interval throughput as a difference of lifetime byte totals — each an
    // event-time constant, so the series is engine-independent.
    log_.achieved_throughput_kbps.add(
        now_, (lifetime_bytes() - lifetime_bytes_at_last_sample_) * 8.0 /
                  1000.0 / interval);
  }
  last_series_sample_t_ = now_;
  lifetime_bytes_at_last_sample_ = lifetime_bytes();
}

void StreamingSession::start() {
  player_.start(view_);
  log_.player_name = player_.name();  // after start: names can be protocol-dependent
  next_tick_ = config_.start_time_s + config_.delta_s;
  sample_series();
  poll_player();
}

bool StreamingSession::done() const {
  return log_.completed || stopped_ || now_ >= config_.max_sim_time_s;
}

void StreamingSession::begin_step() {
  // Deliveries owed from completions fire before this session's own
  // registrations, so a chunk completed at t is cached before any lookup at
  // t by this or any higher-id session (sim/flow_router.h ordering).
  flush_deliveries();
  // Register flows whose RTT phase ended: record the link's service integral
  // as the flow's zero point and file its completion target with the link.
  for (Flow* f : {&audio_flow_, &video_flow_}) {
    if (f->active && !f->on_link && now_ >= f->data_start_t) {
      Channel* channel = &network_.link_for(f->request.type == MediaType::kVideo);
      f->route_ticket = 0;
      if (network_.router != nullptr) {
        const FlowRoute route = network_.router->admit(f->request, *channel, now_);
        if (route.channel != nullptr) channel = route.channel;
        f->route_ticket = route.ticket;
      }
      f->channel = channel;
      f->v_start_kbit = channel->add_flow(now_);
      f->v_target_kbit =
          f->v_start_kbit + static_cast<double>(f->total_bytes) * 0.008;
      channel->register_completion(f->token, f->v_target_kbit);
      f->on_link = true;
    }
  }
}

void StreamingSession::flush_deliveries() {
  if (pending_deliveries_.empty()) return;
  for (const PendingDelivery& delivery : pending_deliveries_) {
    network_.router->delivered(delivery.request, delivery.ticket, now_);
  }
  pending_deliveries_.clear();
}

double StreamingSession::next_event_time() const {
  double t = next_local_event_time();
  for (const Flow* f : {&audio_flow_, &video_flow_}) {
    if (f->active && f->on_link) {
      t = std::min(t, link_of(*f).time_when_service_reaches(f->v_target_kbit));
    }
  }
  if (!(t > now_)) t = now_ + 1e-6;  // forward progress guard
  return t;
}

double StreamingSession::next_local_event_time() const {
  double t = next_tick_;
  for (const Flow* f : {&audio_flow_, &video_flow_}) {
    if (f->active && !f->on_link) t = std::min(t, f->data_start_t);
  }
  if (playing_) {
    if (next_audio_chunk_ < total_chunks_) {
      t = std::min(t, underrun_deadline(audio_buffer_));
    }
    if (next_video_chunk_ < total_chunks_) {
      t = std::min(t, underrun_deadline(video_buffer_));
    }
    t = std::min(t, content_end_deadline());
  }
  if (next_seek_ < config_.seeks.size()) {
    t = std::min(t, config_.seeks[next_seek_].at_time_s);
  }
  t = std::min(t, config_.max_sim_time_s);
  return t;
}

void StreamingSession::integrate_to(double t) {
  if (t < now_) return;
  // Assign, never accumulate: every value below is a pure function of
  // anchored state, so advancing through intermediate times (as the barrier
  // fleet engine does at every global step) leaves no numerical trace.
  for (Flow* f : {&audio_flow_, &video_flow_}) {
    if (f->active && f->on_link) {
      const double served =
          (link_of(*f).service_at(t) - f->v_start_kbit) * 125.0;
      f->bytes_done =
          std::clamp(served, 0.0, static_cast<double>(f->total_bytes));
    }
  }
  if (playing_) {
    playhead_s_ = playhead_anchor_ + (t - anchor_t_);
    const double consumed = playhead_s_ - playhead_flush_base_;
    audio_buffer_.drain_to(consumed);
    video_buffer_.drain_to(consumed);
  }
  now_ = t;
}

void StreamingSession::process_events() {
  // The sim-time cap is itself an event: abort in-flight downloads so
  // shared-link slots are released, close an open stall, and finish exactly
  // at the cap. Anything else nominally due at the cap is dropped — in every
  // engine, since the cap is an exact event-time candidate in both.
  if (now_ >= config_.max_sim_time_s && !log_.completed && !stopped_) {
    hit_cap_ = true;
    abort_session();
    return;
  }

  // Fire only when one of this session's own events is due. A barrier fleet
  // engine also calls this at other sessions' event times; bailing out here
  // keeps player-visible actions (polling, transitions) pinned to the same
  // instants the event-heap engine visits, which is what makes the two
  // engines bit-identical.
  // Per-flow due flags, computed once and reused by the firing loop below.
  // Safe to cache: completing one flow at t cannot flip the other's status —
  // V(t) is already fixed, and a target above V(t) completes strictly after
  // t no matter how the population changes at t.
  bool completion_due = false;
  bool flow_due[2] = {false, false};
  {
    int i = 0;
    for (const Flow* f : {&audio_flow_, &video_flow_}) {
      if (f->active && f->on_link &&
          link_of(*f).time_when_service_reaches(f->v_target_kbit) <= now_) {
        flow_due[i] = true;
        completion_due = true;
      }
      ++i;
    }
  }
  const bool tick_due = now_ >= next_tick_;
  const bool seek_due = next_seek_ < config_.seeks.size() &&
                        now_ >= config_.seeks[next_seek_].at_time_s;
  bool deadline_due = false;
  if (playing_) {
    if (content_end_deadline() <= now_) deadline_due = true;
    if (next_audio_chunk_ < total_chunks_ &&
        underrun_deadline(audio_buffer_) <= now_) {
      deadline_due = true;
    }
    if (next_video_chunk_ < total_chunks_ &&
        underrun_deadline(video_buffer_) <= now_) {
      deadline_due = true;
    }
  }
  if (!completion_due && !tick_due && !seek_due && !deadline_due) return;

  if (completion_due) {
    int i = 0;
    for (Flow* f : {&audio_flow_, &video_flow_}) {
      if (flow_due[i] && f->active && f->on_link) {
        f->bytes_done = static_cast<double>(f->total_bytes);
        complete_flow(*f);
      }
      ++i;
    }
  }
  if (tick_due) {
    for (Flow* f : {&audio_flow_, &video_flow_}) {
      if (f->active && f->on_link) {
        const auto sample = emit_progress(*f, now_);
        if (sample.has_value() && player_.should_abandon(*sample, make_context())) {
          abort_flow(*f);
        }
      }
    }
    sample_series();
    next_tick_ += config_.delta_s;
  }

  if (seek_due) {
    perform_seek(config_.seeks[next_seek_]);
    ++next_seek_;
  }

  handle_playback_transitions();
  poll_player();

  if (started_ && playhead_s_ + kEps >= content_duration_s_) {
    log_.completed = true;
  }
}

void StreamingSession::abort_session() {
  for (Flow* f : {&audio_flow_, &video_flow_}) {
    if (f->active) {
      emit_progress(*f, now_);
      abort_flow(*f);
    }
  }
  // Close an open stall so the log's stall accounting is complete.
  if (started_ && !playing_) {
    log_.totals.stall_s += now_ - stall_start_t_;
    ++log_.totals.stall_events;
    if (!config_.minimal_log) log_.stalls.push_back({stall_start_t_, now_});
    DMX_TRACE_SPAN_END(obs::kCatStall, config_.trace_track, obs::kLanePlayback,
                       "stall", now_,
                       obs::TraceArgs().kv("dur_s", now_ - stall_start_t_));
    playing_ = true;
  }
  stopped_ = true;
  DMX_DEBUG << "t=" << now_ << " session abandoned";
}

SessionLog StreamingSession::finish() {
  log_.end_time_s = now_;
  if (!log_.completed && hit_cap_) {
    DMX_WARN << "session hit the sim-time cap at t=" << now_ << " (playhead "
             << playhead_s_ << "/" << content_duration_s_ << ")";
  }
  return std::move(log_);
}

SessionLog StreamingSession::run() {
  start();
  while (!done()) {
    begin_step();
    advance_to(next_event_time());
  }
  return finish();
}

SessionLog run_session(const Content& content, const ManifestView& view,
                       const Network& network, PlayerAdapter& player,
                       const SessionConfig& config) {
  StreamingSession session(content, view, network, player, config);
  return session.run();
}

}  // namespace demuxabr
