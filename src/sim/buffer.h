// MediaBuffer: the client-side prefetch buffer for one media type. Chunks
// become playable only once fully downloaded; playback drains the front.
// Stalls happen when *either* the audio or the video buffer underruns
// (§3.4, Fig 5(b)) — the session engine enforces that coupling.
#pragma once

#include <cassert>
#include <deque>
#include <string>

namespace demuxabr {

class MediaBuffer {
 public:
  struct BufferedChunk {
    int chunk_index;
    double duration_s;
    std::string track_id;
  };

  /// Append a fully-downloaded chunk. Indices must arrive in order.
  void push(int chunk_index, double duration_s, std::string track_id);

  /// Consume up to dt seconds of playback; returns the amount actually
  /// consumed (less than dt only when the buffer runs dry).
  double consume(double dt);

  [[nodiscard]] double level_s() const { return level_s_; }
  [[nodiscard]] bool empty() const { return level_s_ <= 1e-9; }
  [[nodiscard]] std::size_t chunk_count() const { return chunks_.size(); }
  /// Highest buffered chunk index + 1; 0 when never filled.
  [[nodiscard]] int end_index() const { return end_index_; }

  void clear();

 private:
  std::deque<BufferedChunk> chunks_;
  double front_consumed_s_ = 0.0;  ///< already-played part of the front chunk
  double level_s_ = 0.0;
  int end_index_ = 0;
};

}  // namespace demuxabr
