// MediaBuffer: the client-side prefetch buffer for one media type. Chunks
// become playable only once fully downloaded; playback drains the front.
// Stalls happen when *either* the audio or the video buffer underruns
// (§3.4, Fig 5(b)) — the session engine enforces that coupling.
//
// Internally the level is represented as pushed_s - consumed_s, two
// cumulative totals, rather than a running decrement. `drain_to()` *sets*
// the cumulative consumed amount, so the level at a given playback position
// is one subtraction of values that do not depend on how many intermediate
// drains were issued — the path-independence the fleet engines rely on to
// produce bit-identical sessions whether a session is advanced at every
// global barrier or only at its own events.
#pragma once

#include <cassert>
#include <deque>
#include <string>

namespace demuxabr {

class MediaBuffer {
 public:
  struct BufferedChunk {
    int chunk_index;
    double duration_s;
    std::string track_id;
  };

  /// Append a fully-downloaded chunk. Indices must arrive in order.
  void push(int chunk_index, double duration_s, std::string track_id);

  /// Set cumulative consumed playback seconds (since construction or the
  /// last clear()) to `consumed_s`. Monotone: asking for less than already
  /// consumed is a no-op. Consumption past the buffered amount clamps (the
  /// media may simply be fully downloaded and drained while the other type
  /// still plays).
  void drain_to(double consumed_s);

  /// Consume up to dt seconds of playback; returns the amount actually
  /// consumed (less than dt only when the buffer runs dry). Convenience
  /// wrapper over drain_to() for callers that think in increments.
  double consume(double dt);

  [[nodiscard]] double level_s() const {
    const double level = pushed_s_ - consumed_s_;
    return level > 0.0 ? level : 0.0;
  }
  [[nodiscard]] bool empty() const { return level_s() <= 1e-9; }
  [[nodiscard]] std::size_t chunk_count() const { return chunks_.size(); }
  /// Highest buffered chunk index + 1; 0 when never filled.
  [[nodiscard]] int end_index() const { return end_index_; }
  /// Cumulative seconds pushed since construction / the last clear().
  [[nodiscard]] double pushed_s() const { return pushed_s_; }
  /// Cumulative seconds consumed since construction / the last clear().
  [[nodiscard]] double consumed_s() const { return consumed_s_; }

  void clear();

 private:
  std::deque<BufferedChunk> chunks_;
  double popped_s_ = 0.0;    ///< cumulative duration of fully-played chunks
  double pushed_s_ = 0.0;    ///< cumulative duration pushed
  double consumed_s_ = 0.0;  ///< cumulative duration played
  int end_index_ = 0;
};

}  // namespace demuxabr
