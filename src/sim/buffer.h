// MediaBuffer: the client-side prefetch buffer for one media type. Chunks
// become playable only once fully downloaded; playback drains the front.
// Stalls happen when *either* the audio or the video buffer underruns
// (§3.4, Fig 5(b)) — the session engine enforces that coupling.
//
// Internally the level is represented as pushed_s - consumed_s, two
// cumulative totals, rather than a running decrement. `drain_to()` *sets*
// the cumulative consumed amount, so the level at a given playback position
// is one subtraction of values that do not depend on how many intermediate
// drains were issued — the path-independence the fleet engines rely on to
// produce bit-identical sessions whether a session is advanced at every
// global barrier or only at its own events.
//
// Chunk storage is a power-of-two ring buffer over a plain vector: the
// steady push/pop cycle of a draining session reuses the same slots with no
// allocation (a deque would churn block allocations), and the per-chunk
// record is two scalars.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

namespace demuxabr {

class MediaBuffer {
 public:
  struct BufferedChunk {
    int chunk_index;
    double duration_s;
  };

  /// Append a fully-downloaded chunk. Indices must arrive in order.
  void push(int chunk_index, double duration_s);

  /// Set cumulative consumed playback seconds (since construction or the
  /// last clear()) to `consumed_s`. Monotone: asking for less than already
  /// consumed is a no-op. Consumption past the buffered amount clamps (the
  /// media may simply be fully downloaded and drained while the other type
  /// still plays). Inline: called twice per integrate_to, usually with no
  /// chunk crossing the retirement threshold.
  void drain_to(double consumed_s) {
    if (consumed_s <= consumed_s_) return;
    consumed_s_ = consumed_s < pushed_s_ ? consumed_s : pushed_s_;
    // Retire chunks the playhead has fully passed. The retirement threshold
    // is a cumulative total, so which chunks are retired depends only on
    // the consumed amount, not on the drain call pattern.
    while (count_ > 0 && consumed_s_ >= popped_s_ + front().duration_s - 1e-12) {
      popped_s_ += front().duration_s;
      pop_front();
    }
  }

  /// Consume up to dt seconds of playback; returns the amount actually
  /// consumed (less than dt only when the buffer runs dry). Convenience
  /// wrapper over drain_to() for callers that think in increments.
  double consume(double dt);

  [[nodiscard]] double level_s() const {
    const double level = pushed_s_ - consumed_s_;
    return level > 0.0 ? level : 0.0;
  }
  [[nodiscard]] bool empty() const { return level_s() <= 1e-9; }
  [[nodiscard]] std::size_t chunk_count() const { return count_; }
  /// Highest buffered chunk index + 1; 0 when never filled.
  [[nodiscard]] int end_index() const { return end_index_; }
  /// Cumulative seconds pushed since construction / the last clear().
  [[nodiscard]] double pushed_s() const { return pushed_s_; }
  /// Cumulative seconds consumed since construction / the last clear().
  [[nodiscard]] double consumed_s() const { return consumed_s_; }

  void clear();

 private:
  [[nodiscard]] const BufferedChunk& front() const {
    assert(count_ > 0);
    return ring_[head_];
  }
  void pop_front() {
    assert(count_ > 0);
    head_ = (head_ + 1) & (ring_.size() - 1);
    --count_;
  }
  void push_back(const BufferedChunk& chunk);

  /// Power-of-two ring: head_ indexes the oldest chunk, count_ live slots.
  std::vector<BufferedChunk> ring_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  double popped_s_ = 0.0;    ///< cumulative duration of fully-played chunks
  double pushed_s_ = 0.0;    ///< cumulative duration pushed
  double consumed_s_ = 0.0;  ///< cumulative duration played
  int end_index_ = 0;
};

}  // namespace demuxabr
