// Robustness leaderboard: every player model × trace class × seed
// replication, scored per metric with bootstrap confidence intervals — the
// fleet-scale generalization of the paper's Tables 2/3. "Understanding
// video streaming algorithms in the wild" shows player rankings flip across
// network classes, so the leaderboard never collapses classes into one
// score: it ranks players *per class per metric* and leaves cross-class
// judgment to the reader.
//
// Determinism contract: the leaderboard (and therefore leaderboard_json's
// bytes) depends only on the resolved grid + seeds — never on thread count,
// job completion order, or sample arrival order. collect_samples() tags
// every sample with its grid coordinates and build_leaderboard()
// canonically re-sorts before aggregating; bootstrap_mean_ci() sorts its
// samples before resampling. tests/test_experiments_leaderboard.cpp pins
// byte-identity across threads {1,2,8} and shuffled sample orders.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "experiments/sweep.h"
#include "net/trace_corpus.h"

namespace demuxabr::experiments {

/// Percentile-bootstrap confidence interval for a sample mean.
struct BootstrapCi {
  double mean = 0.0;
  double lo = 0.0;  ///< lower CI endpoint (== mean when n < 2)
  double hi = 0.0;
  std::size_t n = 0;  ///< sample count
};

/// Mean ± percentile-bootstrap CI of `samples`. Deterministic: the samples
/// are sorted internally before resampling, so the interval depends only on
/// the multiset of values (merge-order invariance), the resample count, the
/// confidence level and the seed.
BootstrapCi bootstrap_mean_ci(std::vector<double> samples, int resamples,
                              double confidence, std::uint64_t seed);

struct LeaderboardConfig {
  /// Trace classes to run; empty = every trace_class_registry() entry.
  /// Resolved into canonical registry order regardless of listing order.
  std::vector<std::string> classes;
  /// Player labels; empty = every comparison_players() entry. Resolved into
  /// canonical comparison order regardless of listing order.
  std::vector<std::string> players;
  int replications = 8;            ///< session seeds per (class, player)
  std::uint64_t base_seed = 1;     ///< trace seed for replication r = base_seed + r
  double trace_duration_s = 480.0; ///< corpus trace period
  /// Worker threads for sessions + fleets (0 = hardware default, 1 =
  /// serial). Never affects results or output bytes.
  int threads = 1;
  int bootstrap_resamples = 200;
  double confidence = 0.95;
  std::uint64_t bootstrap_seed = 7;
  /// Jain-fairness axis: homogeneous fleets of this many clients on a
  /// per-capita-scaled trace. 0 disables the fleet metric entirely.
  int fleet_clients = 8;
  int fleet_replications = 2;  ///< fleet seeds per (class, player)
};

/// One scored run. Session samples carry the five per-session metrics;
/// fleet samples (is_fleet) carry only the fairness metric.
struct LeaderboardSample {
  std::string trace_class;
  std::string player;
  std::uint64_t seed = 0;
  bool is_fleet = false;
  bool completed = false;
  double qoe = 0.0;
  double video_kbps = 0.0;
  double stall_ratio = 0.0;   ///< total stall / session wall time
  double startup_s = 0.0;
  double imbalance_s = 0.0;   ///< mean |audio - video| buffer
  double fairness = 0.0;      ///< Jain fairness of per-client video bitrate
};

/// Aggregated (class, player) cell: per-metric mean ± CI.
struct LeaderboardCell {
  std::string trace_class;
  std::string player;
  std::size_t sessions = 0;  ///< session samples aggregated
  std::size_t fleets = 0;    ///< fleet samples aggregated
  BootstrapCi qoe;
  BootstrapCi video_kbps;
  BootstrapCi stall_ratio;
  BootstrapCi startup_s;
  BootstrapCi imbalance_s;
  BootstrapCi fairness;  ///< n == 0 when fleets are disabled
};

/// Players ordered best-first for one metric within one class (ranked by
/// mean; ties broken by player label so rankings are total orders).
struct LeaderboardRanking {
  std::string trace_class;
  std::string metric;
  std::vector<std::string> players;
};

struct Leaderboard {
  std::vector<std::string> classes;  ///< resolved, canonical order
  std::vector<std::string> players;  ///< resolved, canonical order
  LeaderboardConfig config;          ///< as resolved (threads not serialized)
  std::vector<LeaderboardCell> cells;        ///< class-major, player-minor
  std::vector<LeaderboardRanking> rankings;  ///< class-major, metric-minor
};

/// The metric axis of every ranking table, in emission order. Lower is
/// better for stall_ratio / startup_s / imbalance_s, higher for the rest.
const std::vector<std::string>& leaderboard_metrics();

/// Run the full grid (SweepRunner sessions + homogeneous fleets) and return
/// every raw sample. Order: session samples class-major/player/seed, then
/// fleet samples likewise — but build_leaderboard() re-sorts anyway.
std::vector<LeaderboardSample> collect_samples(const LeaderboardConfig& config);

/// Aggregate samples into the leaderboard. Canonically sorts first, so any
/// permutation of `samples` yields an identical (byte-identical once
/// serialized) leaderboard.
Leaderboard build_leaderboard(std::vector<LeaderboardSample> samples,
                              const LeaderboardConfig& config);

/// collect_samples + build_leaderboard.
Leaderboard run_leaderboard(const LeaderboardConfig& config);

/// BENCH_leaderboard.json: machine-readable cells + rankings. Contains no
/// wall-clock or host fields — bytes are a pure function of the grid.
std::string leaderboard_json(const Leaderboard& board);

/// Flat CSV: one row per (class, player) with every metric's mean/lo/hi.
std::string leaderboard_csv(const Leaderboard& board);

/// Human-readable markdown: per-class metric table + per-class rankings.
std::string leaderboard_markdown(const Leaderboard& board);

}  // namespace demuxabr::experiments
