#include "experiments/tables.h"

#include <algorithm>
#include <sstream>

#include "util/strings.h"

namespace demuxabr::experiments {

std::string render_table1(const Content& content) {
  std::ostringstream out;
  out << "Track | Declared avg | Declared peak | DASH decl | Measured avg | Measured peak\n";
  out << "------+--------------+---------------+-----------+--------------+--------------\n";
  for (const auto* list : {&content.ladder().audio(), &content.ladder().video()}) {
    for (const TrackInfo& t : *list) {
      const ChunkStats stats = content.track_stats(t.id);
      out << format("%-5s | %12.0f | %13.0f | %9.0f | %12.1f | %13.1f\n",
                    t.id.c_str(), t.avg_kbps, t.peak_kbps, t.declared_kbps,
                    stats.avg_kbps, stats.peak_kbps);
    }
  }
  return out.str();
}

std::string render_combination_table(const std::string& title,
                                     const std::vector<AvCombination>& combos) {
  std::ostringstream out;
  out << title << '\n';
  out << "Combination | Average Bitrate (Kbps) | Peak Bitrate (Kbps)\n";
  out << "------------+------------------------+--------------------\n";
  for (const AvCombination& c : combos) {
    out << format("%-11s | %22.0f | %19.0f\n", c.label().c_str(), c.avg_kbps,
                  c.peak_kbps);
  }
  return out.str();
}

std::string render_comparison_table(const std::vector<ComparisonRow>& rows) {
  std::ostringstream out;
  out << "player       | trace                 | vid kbps | aud kbps | stalls | rebuf s | "
         "switches | off-mani | qoe\n";
  out << "-------------+-----------------------+----------+----------+--------+---------+-"
         "---------+----------+--------\n";
  for (const ComparisonRow& row : rows) {
    out << format("%-12s | %-21s | %8.0f | %8.0f | %6d | %7.1f | %8d | %8d | %6.1f%s\n",
                  row.player.c_str(), row.trace.c_str(), row.qoe.avg_video_kbps,
                  row.qoe.avg_audio_kbps, row.qoe.stall_count, row.qoe.total_stall_s,
                  row.qoe.combo_switches, row.qoe.off_manifest_chunks,
                  row.qoe.qoe_score, row.completed ? "" : " (INCOMPLETE)");
  }
  return out.str();
}

std::string render_selection_timeline(const SessionLog& log) {
  std::ostringstream out;
  const std::size_t chunks =
      std::min(log.video_selection.size(), log.audio_selection.size());
  std::string current;
  std::size_t run_start = 0;
  for (std::size_t i = 0; i <= chunks; ++i) {
    const std::string label =
        i < chunks ? log.video_selection[i] + "+" + log.audio_selection[i] : "";
    if (label != current) {
      if (!current.empty()) {
        out << format("%zu-%zu:%s ", run_start, i - 1, current.c_str());
      }
      current = label;
      run_start = i;
    }
  }
  return out.str();
}

}  // namespace demuxabr::experiments
