// Canned experiment setups for every figure in the paper's §3 plus the §4
// best-practice evaluation. Each factory builds the content, generates the
// real manifest text (MPD XML / m3u8), re-parses it, and derives the player
// view from the parsed form — so every experiment exercises the full
// serialize -> parse -> view pipeline, exactly like a player fetching
// manifests over HTTP.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "manifest/view.h"
#include "media/combination.h"
#include "media/content.h"
#include "net/bandwidth_trace.h"
#include "sim/metrics.h"
#include "sim/player.h"
#include "sim/session.h"

namespace demuxabr::experiments {

struct ExperimentSetup {
  std::string id;
  std::string description;
  Content content;
  ManifestView view;
  BandwidthTrace trace;
  /// When set, audio rides its own path with this trace while `trace`
  /// carries video only (§4.1: tracks stored at different servers).
  std::optional<BandwidthTrace> audio_trace;
  double rtt_s = 0.05;
  /// Ground-truth allowed combinations (for compliance accounting). Empty
  /// when the manifest does not restrict combinations.
  std::vector<AvCombination> allowed;
  SessionConfig session{};
};

/// Run a player against a setup (fresh network per run; deterministic).
SessionLog run(const ExperimentSetup& setup, PlayerAdapter& player);

// --- Traces used by the paper's experiments (§3). ---

/// Fig 3: time-varying with 600 kbps average (300/900 square, 30 s phases).
BandwidthTrace varying_600_trace();
/// Fig 4(b): time-varying with 600 kbps average whose high phase is fast
/// enough (1.2 Mbps) that solo-flow 0.125 s intervals pass Shaka's 16 KB
/// filter while shared-flow intervals do not (200 kbps x 36 s / 1.2 Mbps x
/// 24 s).
BandwidthTrace shaka_varying_600_trace();

// --- §3.2 ExoPlayer ---
/// Fig 2(a): DASH, Table-1 video + audio set B, fixed 900 kbps.
ExperimentSetup fig2a_exo_dash_audio_b();
/// Fig 2(b): DASH, Table-1 video + audio set C, fixed 900 kbps.
ExperimentSetup fig2b_exo_dash_audio_c();
/// Fig 3: HLS H_sub with A3 listed first, varying 600 kbps average.
ExperimentSetup fig3_exo_hls_a3_first();
/// §3.2 second HLS experiment: A1 listed first, fixed 5 Mbps.
ExperimentSetup fig3x_exo_hls_a1_first_5mbps();

// --- §3.3 Shaka ---
/// Fig 4(a): HLS H_all, fixed 1 Mbps.
ExperimentSetup fig4a_shaka_hall_1mbps();
/// Fig 4(b): HLS H_all, varying 600 kbps average.
ExperimentSetup fig4b_shaka_hall_varying();
/// §3.3 DASH case (all combinations recreated from the MPD), fixed 1 Mbps.
ExperimentSetup fig4c_shaka_dash_1mbps();

// --- §3.4 dash.js ---
/// Fig 5: DASH, fixed 700 kbps.
ExperimentSetup fig5_dashjs_700();

// --- §4 best-practice evaluations ---
/// DASH with the §4.1 allowed-combination extension, any trace.
ExperimentSetup bestpractice_dash(BandwidthTrace trace, const std::string& id);
/// HLS H_sub with second-level playlists readable (EXT-X-BITRATE mandatory).
ExperimentSetup bestpractice_hls(BandwidthTrace trace, const std::string& id);
/// Plain DASH (no combination list) — the client-side fallback path.
ExperimentSetup plain_dash(BandwidthTrace trace, const std::string& id);

/// §4.1 different-servers scenario: best-practice DASH manifest, video and
/// audio on separate paths with independent traces.
ExperimentSetup split_path_dash(BandwidthTrace video_trace, BandwidthTrace audio_trace,
                                const std::string& id);

/// All standard comparison traces for the §4 evaluation sweep.
struct NamedTrace {
  std::string name;
  BandwidthTrace trace;
};
std::vector<NamedTrace> comparison_traces();

}  // namespace demuxabr::experiments
