// SweepRunner: fan independent experiment sessions out across a ThreadPool.
//
// A sweep is a list of jobs, each pairing an (immutable, shareable)
// ExperimentSetup with a factory that builds a fresh PlayerAdapter per run.
// Every session is an isolated deterministic simulation — the setup is read
// only, the Network (and its mutable Link flow counters) is rebuilt per run
// by experiments::run(), and all per-session state lives in the player and
// session objects the job creates — so results are byte-identical no matter
// how many threads execute the sweep. Results always come back in job
// order; `threads = 1` bypasses the pool entirely and is bit-identical to
// the historical serial loop.
//
// Determinism contract (DESIGN.md "Parallel sweeps"): equal job lists give
// equal per-job SessionLogs for every thread count, verified by comparing
// log_fingerprint() strings in tests/test_sweep.cpp.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "experiments/scenarios.h"
#include "experiments/tables.h"
#include "sim/metrics.h"
#include "sim/player.h"

namespace demuxabr::experiments {

/// Builds a fresh player per run; must not capture mutable shared state.
using PlayerFactory = std::function<std::unique_ptr<PlayerAdapter>()>;

struct SweepJob {
  std::string id;      ///< unique label, e.g. "coordinated/varying-600k"
  std::string player;  ///< player label (comparison-table column)
  std::string trace;   ///< trace label (comparison-table column)
  std::shared_ptr<const ExperimentSetup> setup;
  PlayerFactory make_player;
};

struct SweepJobResult {
  std::string id;
  std::string player;  ///< from the job; log.player_name holds the model name
  std::string trace;
  SessionLog log;
  QoeReport qoe;  ///< populated when SweepOptions::with_qoe
  bool completed = false;
  double wall_s = 0.0;  ///< wall-clock cost of this job alone
};

struct SweepSummary {
  int threads = 1;
  std::size_t job_count = 0;
  double wall_s = 0.0;       ///< end-to-end sweep wall time
  double simulated_s = 0.0;  ///< sum of per-session simulated end times
  double sessions_per_s = 0.0;
  double simulated_per_wall = 0.0;  ///< aggregate sim-seconds per wall-second
};

struct SweepResult {
  std::vector<SweepJobResult> jobs;  ///< deterministic: submission order
  SweepSummary summary;
};

struct SweepOptions {
  /// 0 = ThreadPool::default_thread_count(); 1 = serial on the calling
  /// thread (no pool), bit-identical to the historical loop.
  int threads = 0;
  /// Compute the QoeReport per job (uses setup.content ladder + allowed set).
  bool with_qoe = true;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {});

  /// Run every job and return results in job order.
  [[nodiscard]] SweepResult run(const std::vector<SweepJob>& jobs) const;

  /// The thread count run() will actually use.
  [[nodiscard]] int resolved_threads() const;

 private:
  SweepOptions options_;
};

// --- The §4 comparison matrix (shared by bench_best_practices, bench_sweep
// --- and examples/player_comparison). ---

struct ComparisonPlayer {
  std::string label;
  PlayerFactory factory;
};

/// Every player model of the §4 evaluation, in table order: exo-legacy,
/// exoplayer, shaka, dashjs, muxed, coordinated, coordinated-mpc,
/// coordinated-bba.
const std::vector<ComparisonPlayer>& comparison_players();

/// The setup a given comparison player runs against on a trace (plain DASH
/// for commercial demuxed models, HLS H_all for Shaka, best-practice DASH
/// for the coordinated family).
ExperimentSetup comparison_setup(std::size_t player_index, const BandwidthTrace& trace,
                                 const std::string& trace_name);

/// Full §4 grid: comparison_players() x comparison_traces(). Setups are
/// built once per (setup-kind, trace) and shared across jobs — no throwaway
/// Content copies inside the sweep loop.
std::vector<SweepJob> comparison_matrix();

/// Rows for render_comparison_table(), in sweep order.
std::vector<ComparisonRow> comparison_rows(const SweepResult& result);

// --- Determinism + perf reporting helpers. ---

/// Byte-exact serialization of everything a SessionLog records (downloads,
/// abandonments, stalls, seeks, selections, every time series, metadata).
/// Two logs are byte-identical iff their fingerprints compare equal.
std::string log_fingerprint(const SessionLog& log);

/// Machine-readable perf record (BENCH_sweep.json): one entry per thread
/// configuration plus serial-relative speedups. `hardware_threads` in the
/// output is the host's real std::thread::hardware_concurrency(); `notes`
/// records configurations that were skipped (e.g. multi-thread rows on a
/// single-core host) so absent rows are never mistaken for missing data.
std::string sweep_report_json(const std::string& matrix_name,
                              const std::vector<SweepSummary>& summaries,
                              const std::vector<std::string>& notes = {});

}  // namespace demuxabr::experiments
