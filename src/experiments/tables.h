// Paper-style table rendering: Table 1 (track ladder), Tables 2/3
// (combination bitrates), plus the comparison/summary tables used by the
// best-practice benches and EXPERIMENTS.md.
#pragma once

#include <string>
#include <vector>

#include "media/combination.h"
#include "media/content.h"
#include "sim/metrics.h"

namespace demuxabr::experiments {

/// Table 1: declared avg/peak per track vs. what the synthetic content
/// actually measures (they must agree — that is the substitution contract).
std::string render_table1(const Content& content);

/// Tables 2/3: combination list with aggregate average and peak bitrates.
std::string render_combination_table(const std::string& title,
                                     const std::vector<AvCombination>& combos);

/// One row per (player, trace): the §4 comparison table.
struct ComparisonRow {
  std::string player;
  std::string trace;
  QoeReport qoe;
  bool completed = true;
};
std::string render_comparison_table(const std::vector<ComparisonRow>& rows);

/// Selected-track timeline in compact form: "0-14:V2+A1 15-60:V3+A2 ...".
std::string render_selection_timeline(const SessionLog& log);

}  // namespace demuxabr::experiments
