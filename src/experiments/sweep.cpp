#include "experiments/sweep.h"

#include <chrono>
#include <future>
#include <sstream>
#include <utility>

#include "core/coordinated_player.h"
#include "core/muxed_player.h"
#include "players/dashjs.h"
#include "players/exo_legacy.h"
#include "players/exoplayer.h"
#include "players/shaka.h"
#include "obs/metrics.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace demuxabr::experiments {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

SweepJobResult run_one(const SweepJob& job, bool with_qoe) {
  SweepJobResult result;
  result.id = job.id;
  result.player = job.player;
  result.trace = job.trace;
  const auto t0 = Clock::now();
  const std::unique_ptr<PlayerAdapter> player = job.make_player();
  result.log = run(*job.setup, *player);
  if (with_qoe) {
    result.qoe = compute_qoe(result.log, job.setup->content.ladder(),
                             job.setup->allowed.empty() ? nullptr : &job.setup->allowed);
  }
  result.completed = result.log.completed;
  result.wall_s = seconds_since(t0);
  DMX_COUNT("sweep.jobs", 1);
  DMX_HIST("sweep.job_wall_s", result.wall_s);
  return result;
}

}  // namespace

SweepRunner::SweepRunner(SweepOptions options) : options_(options) {}

int SweepRunner::resolved_threads() const {
  return options_.threads > 0 ? options_.threads
                              : static_cast<int>(ThreadPool::default_thread_count());
}

SweepResult SweepRunner::run(const std::vector<SweepJob>& jobs) const {
  SweepResult result;
  result.jobs.resize(jobs.size());
  const int threads = resolved_threads();
  const auto t0 = Clock::now();

  if (threads <= 1) {
    // Serial path: the historical loop, bit for bit — no pool, no futures.
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      result.jobs[i] = run_one(jobs[i], options_.with_qoe);
    }
  } else {
    ThreadPool pool(static_cast<unsigned>(threads));
    std::vector<std::future<SweepJobResult>> futures;
    futures.reserve(jobs.size());
    for (const SweepJob& job : jobs) {
      futures.push_back(pool.submit(
          [&job, with_qoe = options_.with_qoe] { return run_one(job, with_qoe); }));
    }
    // Futures are collected in submission order, so completion order (which
    // the pool does not promise) never leaks into the result layout.
    for (std::size_t i = 0; i < futures.size(); ++i) {
      result.jobs[i] = futures[i].get();
    }
  }

  SweepSummary& summary = result.summary;
  summary.threads = threads;
  summary.job_count = jobs.size();
  summary.wall_s = seconds_since(t0);
  for (const SweepJobResult& job : result.jobs) {
    summary.simulated_s += job.log.end_time_s;
  }
  if (summary.wall_s > 0.0) {
    summary.sessions_per_s = static_cast<double>(jobs.size()) / summary.wall_s;
    summary.simulated_per_wall = summary.simulated_s / summary.wall_s;
  }
  return result;
}

const std::vector<ComparisonPlayer>& comparison_players() {
  static const std::vector<ComparisonPlayer> players = [] {
    std::vector<ComparisonPlayer> list;
    list.push_back({"exo-legacy", []() -> std::unique_ptr<PlayerAdapter> {
                      return std::make_unique<ExoLegacyPlayerModel>();
                    }});
    list.push_back({"exoplayer", []() -> std::unique_ptr<PlayerAdapter> {
                      return std::make_unique<ExoPlayerModel>();
                    }});
    list.push_back({"shaka", []() -> std::unique_ptr<PlayerAdapter> {
                      return std::make_unique<ShakaPlayerModel>();
                    }});
    list.push_back({"dashjs", []() -> std::unique_ptr<PlayerAdapter> {
                      return std::make_unique<DashJsPlayerModel>();
                    }});
    list.push_back({"muxed", []() -> std::unique_ptr<PlayerAdapter> {
                      return std::make_unique<MuxedPlayer>();
                    }});
    list.push_back({"coordinated", []() -> std::unique_ptr<PlayerAdapter> {
                      return std::make_unique<CoordinatedPlayer>();
                    }});
    list.push_back({"coordinated-mpc", []() -> std::unique_ptr<PlayerAdapter> {
                      CoordinatedConfig config;
                      config.algorithm = AbrAlgorithm::kMpc;
                      return std::make_unique<CoordinatedPlayer>(config);
                    }});
    list.push_back({"coordinated-bba", []() -> std::unique_ptr<PlayerAdapter> {
                      CoordinatedConfig config;
                      config.algorithm = AbrAlgorithm::kBufferBased;
                      return std::make_unique<CoordinatedPlayer>(config);
                    }});
    return list;
  }();
  return players;
}

namespace {

enum class SetupKind { kPlainDash, kShakaHall, kBestPractice };

SetupKind setup_kind_for(const std::string& player_label) {
  if (player_label == "shaka") return SetupKind::kShakaHall;
  if (player_label.rfind("coordinated", 0) == 0) return SetupKind::kBestPractice;
  return SetupKind::kPlainDash;
}

ExperimentSetup build_setup(SetupKind kind, const BandwidthTrace& trace,
                            const std::string& trace_name) {
  switch (kind) {
    case SetupKind::kShakaHall: {
      ExperimentSetup setup = fig4a_shaka_hall_1mbps();
      setup.trace = trace;
      return setup;
    }
    case SetupKind::kBestPractice:
      return bestpractice_dash(trace, trace_name);
    case SetupKind::kPlainDash:
      break;
  }
  return plain_dash(trace, trace_name);
}

}  // namespace

ExperimentSetup comparison_setup(std::size_t player_index, const BandwidthTrace& trace,
                                 const std::string& trace_name) {
  const auto& players = comparison_players();
  const std::string& label = players.at(player_index).label;
  return build_setup(setup_kind_for(label), trace, trace_name);
}

std::vector<SweepJob> comparison_matrix() {
  std::vector<SweepJob> jobs;
  const auto& players = comparison_players();
  for (const NamedTrace& named : comparison_traces()) {
    // One setup per kind per trace, shared by every player that uses it —
    // the Content / manifest round-trip is built once, never per job.
    std::shared_ptr<const ExperimentSetup> shared_setups[3] = {};
    for (const ComparisonPlayer& player : players) {
      const SetupKind kind = setup_kind_for(player.label);
      auto& cached = shared_setups[static_cast<std::size_t>(kind)];
      if (cached == nullptr) {
        cached = std::make_shared<const ExperimentSetup>(
            build_setup(kind, named.trace, named.name));
      }
      SweepJob job;
      job.id = player.label + "/" + named.name;
      job.player = player.label;
      job.trace = named.name;
      job.setup = cached;
      job.make_player = player.factory;
      jobs.push_back(std::move(job));
    }
  }
  return jobs;
}

std::vector<ComparisonRow> comparison_rows(const SweepResult& result) {
  std::vector<ComparisonRow> rows;
  rows.reserve(result.jobs.size());
  for (const SweepJobResult& job : result.jobs) {
    ComparisonRow row;
    row.player = job.log.player_name;
    row.trace = job.trace;
    row.qoe = job.qoe;
    row.completed = job.completed;
    rows.push_back(std::move(row));
  }
  return rows;
}

namespace {

void fingerprint_series(std::ostringstream& out, const char* name,
                        const TimeSeries& series) {
  out << name << ":" << series.size() << "\n";
  for (const TimeSeries::Point& p : series.points()) {
    out << format("%.17g,%.17g\n", p.t, p.value);
  }
}

void fingerprint_records(std::ostringstream& out, const char* name,
                         const std::vector<DownloadRecord>& records) {
  out << name << ":" << records.size() << "\n";
  for (const DownloadRecord& r : records) {
    out << media_type_name(r.type) << "," << r.track_id << "," << r.chunk_index
        << "," << r.bytes << "," << format("%.17g,%.17g\n", r.start_t, r.end_t);
  }
}

}  // namespace

std::string log_fingerprint(const SessionLog& log) {
  std::ostringstream out;
  out << "player:" << log.player_name << "\n"
      << format("meta:%.17g,%.17g,%d\n", log.content_duration_s, log.chunk_duration_s,
                log.total_chunks)
      << format("startup:%.17g end:%.17g completed:%d\n", log.startup_delay_s,
                log.end_time_s, log.completed ? 1 : 0);
  fingerprint_records(out, "downloads", log.downloads);
  fingerprint_records(out, "abandoned", log.abandoned);
  out << "stalls:" << log.stalls.size() << "\n";
  for (const StallEvent& s : log.stalls) {
    out << format("%.17g,%.17g\n", s.start_t, s.end_t);
  }
  out << "seeks:" << log.seeks.size() << "\n";
  for (const SeekRecord& s : log.seeks) {
    out << format("%.17g,%.17g,%.17g\n", s.at_t, s.from_position_s, s.to_position_s);
  }
  out << "video_selection:";
  for (const std::string& id : log.video_selection) out << id << ";";
  out << "\naudio_selection:";
  for (const std::string& id : log.audio_selection) out << id << ";";
  out << "\n";
  fingerprint_series(out, "video_buffer_s", log.video_buffer_s);
  fingerprint_series(out, "audio_buffer_s", log.audio_buffer_s);
  fingerprint_series(out, "bandwidth_estimate_kbps", log.bandwidth_estimate_kbps);
  fingerprint_series(out, "achieved_throughput_kbps", log.achieved_throughput_kbps);
  fingerprint_series(out, "selected_video_kbps", log.selected_video_kbps);
  fingerprint_series(out, "selected_audio_kbps", log.selected_audio_kbps);
  return out.str();
}

std::string sweep_report_json(const std::string& matrix_name,
                              const std::vector<SweepSummary>& summaries,
                              const std::vector<std::string>& notes) {
  std::ostringstream out;
  out << "{\n"
      << "  \"bench\": \"sweep\",\n"
      << "  \"matrix\": \"" << matrix_name << "\",\n"
      << "  \"hardware_threads\": " << ThreadPool::default_thread_count() << ",\n";
  const SweepSummary* serial = nullptr;
  for (const SweepSummary& s : summaries) {
    if (s.threads == 1) serial = &s;
  }
  out << "  \"runs\": [\n";
  for (std::size_t i = 0; i < summaries.size(); ++i) {
    const SweepSummary& s = summaries[i];
    const double speedup =
        (serial != nullptr && s.wall_s > 0.0) ? serial->wall_s / s.wall_s : 0.0;
    out << format(
        "    {\"threads\": %d, \"jobs\": %zu, \"wall_s\": %.6f, "
        "\"sessions_per_s\": %.3f, \"simulated_s\": %.3f, "
        "\"simulated_per_wall\": %.1f, \"speedup_vs_serial\": %.3f}%s\n",
        s.threads, s.job_count, s.wall_s, s.sessions_per_s, s.simulated_s,
        s.simulated_per_wall, speedup, i + 1 < summaries.size() ? "," : "");
  }
  out << "  ]";
  if (!notes.empty()) {
    out << ",\n  \"notes\": [\n";
    for (std::size_t i = 0; i < notes.size(); ++i) {
      out << "    \"" << notes[i] << "\"" << (i + 1 < notes.size() ? ",\n" : "\n");
    }
    out << "  ]";
  }
  out << "\n}\n";
  return out.str();
}

}  // namespace demuxabr::experiments
