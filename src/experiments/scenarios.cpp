#include "experiments/scenarios.h"

#include <cassert>
#include <utility>

#include "core/compliance.h"
#include "manifest/builder.h"
#include "net/link.h"

namespace demuxabr::experiments {
namespace {

/// Serialize -> parse an MPD and build the view, asserting round-trip health.
ManifestView dash_view(const Content& content, const DashBuildOptions& options = {}) {
  const MpdDocument mpd = build_dash_mpd(content, options);
  const std::string xml_text = serialize_mpd(mpd);
  auto reparsed = parse_mpd(xml_text);
  assert(reparsed.ok());
  return view_from_mpd(*reparsed);
}

/// Serialize -> parse an HLS master (and optionally the media playlists).
ManifestView hls_view(const Content& content, const HlsMasterPlaylist& master,
                      bool with_media_playlists, bool bitrate_tags = false) {
  const std::string master_text = serialize_master(master);
  auto reparsed = parse_master(master_text);
  assert(reparsed.ok());
  if (!with_media_playlists) {
    return view_from_hls(*reparsed, nullptr);
  }
  HlsMediaOptions media_options;
  media_options.include_bitrate_tag = bitrate_tags;
  media_options.packaging =
      bitrate_tags ? PackagingMode::kSeparateFiles : PackagingMode::kSingleFileByteRange;
  std::map<std::string, HlsMediaPlaylist> playlists;
  for (auto& [id, playlist] : build_all_media_playlists(content, media_options)) {
    auto round_tripped = parse_media(serialize_media(playlist));
    assert(round_tripped.ok());
    playlists[id] = std::move(round_tripped).take();
  }
  return view_from_hls(*reparsed, &playlists);
}

/// The Table-1 drama title is the content of almost every scenario. Build it
/// once (VBR chunk generation for all 9 tracks is the expensive part) and
/// hand out copies of the cached instance; sweep loops that used to pay a
/// full rebuild per setup now pay only a small map copy.
Content drama_content() {
  static const Content cached = make_drama_content(/*chunk_duration_s=*/4.0);
  return cached;
}

}  // namespace

SessionLog run(const ExperimentSetup& setup, PlayerAdapter& player) {
  const Network network =
      setup.audio_trace.has_value()
          ? Network::split(setup.trace, *setup.audio_trace, setup.rtt_s)
          : Network::shared(setup.trace, setup.rtt_s);
  return run_session(setup.content, setup.view, network, player, setup.session);
}

BandwidthTrace varying_600_trace() {
  // Fast 8 s / 8 s alternation: the short high phase limits how much an
  // over-committed player can prefetch, reproducing the recurring stalls of
  // Fig 3 for a player pinned to the 384 kbps A3 audio track.
  return BandwidthTrace::square_wave(/*low=*/300.0, /*high=*/900.0,
                                     /*low_duration=*/8.0, /*high_duration=*/8.0,
                                     /*start_high=*/true);
}

BandwidthTrace shaka_varying_600_trace() {
  // 1.2 Mbps high phase: a solo flow moves 18.75 KB per 0.125 s interval
  // (passes Shaka's 16 KB filter) while two concurrent flows move 9.4 KB
  // each (filtered) — only high-phase solo samples reach the estimator.
  return BandwidthTrace::square_wave(/*low=*/350.0, /*high=*/1200.0,
                                     /*low_duration=*/42.0, /*high_duration=*/18.0,
                                     /*start_high=*/false);
}

ExperimentSetup fig2a_exo_dash_audio_b() {
  ExperimentSetup setup;
  setup.id = "fig2a";
  setup.description = "ExoPlayer DASH, audio set B (32/64/128), fixed 900 kbps";
  setup.content = ContentBuilder(drama_with_audio_set_b())
                      .duration_s(300.0)
                      .chunk_duration_s(4.0)
                      .build();
  setup.view = dash_view(setup.content);
  setup.trace = BandwidthTrace::constant(900.0);
  return setup;
}

ExperimentSetup fig2b_exo_dash_audio_c() {
  ExperimentSetup setup;
  setup.id = "fig2b";
  setup.description = "ExoPlayer DASH, audio set C (196/384/768), fixed 900 kbps";
  setup.content = ContentBuilder(drama_with_audio_set_c())
                      .duration_s(300.0)
                      .chunk_duration_s(4.0)
                      .build();
  setup.view = dash_view(setup.content);
  setup.trace = BandwidthTrace::constant(900.0);
  return setup;
}

ExperimentSetup fig3_exo_hls_a3_first() {
  ExperimentSetup setup;
  setup.id = "fig3";
  setup.description = "ExoPlayer HLS H_sub, A3 listed first, varying 600 kbps avg";
  setup.content = drama_content();
  // A3 first in the EXT-X-MEDIA list — the §3.2 experiment variable.
  const HlsMasterPlaylist master =
      build_hsub_master(setup.content, {"A3", "A2", "A1"});
  setup.view = hls_view(setup.content, master, /*with_media_playlists=*/false);
  setup.allowed = curated_subset(setup.content.ladder());
  setup.trace = varying_600_trace();
  return setup;
}

ExperimentSetup fig3x_exo_hls_a1_first_5mbps() {
  ExperimentSetup setup;
  setup.id = "fig3x";
  setup.description = "ExoPlayer HLS H_sub, A1 listed first, fixed 5 Mbps";
  setup.content = drama_content();
  const HlsMasterPlaylist master =
      build_hsub_master(setup.content, {"A1", "A2", "A3"});
  setup.view = hls_view(setup.content, master, /*with_media_playlists=*/false);
  setup.allowed = curated_subset(setup.content.ladder());
  setup.trace = BandwidthTrace::constant(5000.0);
  return setup;
}

ExperimentSetup fig4a_shaka_hall_1mbps() {
  ExperimentSetup setup;
  setup.id = "fig4a";
  setup.description = "Shaka HLS H_all, fixed 1 Mbps";
  setup.content = drama_content();
  const HlsMasterPlaylist master = build_hall_master(setup.content);
  setup.view = hls_view(setup.content, master, /*with_media_playlists=*/false);
  setup.allowed = all_combinations(setup.content.ladder());
  setup.trace = BandwidthTrace::constant(1000.0);
  return setup;
}

ExperimentSetup fig4b_shaka_hall_varying() {
  ExperimentSetup setup;
  setup.id = "fig4b";
  setup.description = "Shaka HLS H_all, varying 600 kbps avg";
  setup.content = drama_content();
  const HlsMasterPlaylist master = build_hall_master(setup.content);
  setup.view = hls_view(setup.content, master, /*with_media_playlists=*/false);
  setup.allowed = all_combinations(setup.content.ladder());
  setup.trace = shaka_varying_600_trace();
  return setup;
}

ExperimentSetup fig4c_shaka_dash_1mbps() {
  ExperimentSetup setup;
  setup.id = "fig4c";
  setup.description = "Shaka DASH (all combinations recreated), fixed 1 Mbps";
  setup.content = drama_content();
  setup.view = dash_view(setup.content);
  setup.trace = BandwidthTrace::constant(1000.0);
  return setup;
}

ExperimentSetup fig5_dashjs_700() {
  ExperimentSetup setup;
  setup.id = "fig5";
  setup.description = "dash.js DASH, fixed 700 kbps";
  setup.content = drama_content();
  setup.view = dash_view(setup.content);
  setup.trace = BandwidthTrace::constant(700.0);
  return setup;
}

ExperimentSetup bestpractice_dash(BandwidthTrace trace, const std::string& id) {
  ExperimentSetup setup;
  setup.id = id;
  setup.description = "best-practice DASH (combination extension), " + id;
  setup.content = drama_content();
  // Drama on a TV-class device: the whole Table 1 ladder is eligible.
  CurationPolicy policy;
  policy.device.screen = DeviceProfile::Screen::kTv;
  policy.device.sound = DeviceProfile::Sound::kSurround;
  DashBuildOptions options;
  options.allowed_combinations = curate_staircase(setup.content.ladder(), policy);
  setup.view = dash_view(setup.content, options);
  setup.allowed = options.allowed_combinations;
  setup.trace = std::move(trace);
  return setup;
}

ExperimentSetup bestpractice_hls(BandwidthTrace trace, const std::string& id) {
  ExperimentSetup setup;
  setup.id = id;
  setup.description = "best-practice HLS (curated variants, EXT-X-BITRATE), " + id;
  setup.content = drama_content();
  CurationPolicy policy;
  policy.device.screen = DeviceProfile::Screen::kTv;
  policy.device.sound = DeviceProfile::Sound::kSurround;
  const HlsMasterPlaylist master = build_curated_hls_master(setup.content, policy);
  setup.view = hls_view(setup.content, master, /*with_media_playlists=*/true,
                        /*bitrate_tags=*/true);
  setup.allowed = curate_staircase(setup.content.ladder(), policy);
  setup.trace = std::move(trace);
  return setup;
}

ExperimentSetup plain_dash(BandwidthTrace trace, const std::string& id) {
  ExperimentSetup setup;
  setup.id = id;
  setup.description = "plain DASH (no combination list), " + id;
  setup.content = drama_content();
  setup.view = dash_view(setup.content);
  setup.trace = std::move(trace);
  return setup;
}

ExperimentSetup split_path_dash(BandwidthTrace video_trace, BandwidthTrace audio_trace,
                                const std::string& id) {
  ExperimentSetup setup = bestpractice_dash(std::move(video_trace), id);
  setup.description = "best-practice DASH, split audio/video paths, " + id;
  setup.audio_trace = std::move(audio_trace);
  return setup;
}

std::vector<NamedTrace> comparison_traces() {
  std::vector<NamedTrace> traces;
  traces.push_back({"fixed-700k", BandwidthTrace::constant(700.0)});
  traces.push_back({"fixed-900k", BandwidthTrace::constant(900.0)});
  traces.push_back({"fixed-1m", BandwidthTrace::constant(1000.0)});
  traces.push_back({"fixed-5m", BandwidthTrace::constant(5000.0)});
  traces.push_back({"varying-600k", varying_600_trace()});
  traces.push_back({"varying-600k-bursty", shaka_varying_600_trace()});
  traces.push_back({"randomwalk-300-1500",
                    BandwidthTrace::random_walk(300.0, 1500.0, 2.0, 300.0, 120.0, 11)});
  traces.push_back({"cellular-lte", BandwidthTrace::cellular(300.0, 21)});
  return traces;
}

}  // namespace demuxabr::experiments
