#include "experiments/leaderboard.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <tuple>

#include "fleet/metrics.h"
#include "fleet/scheduler.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/strings.h"

namespace demuxabr::experiments {
namespace {

/// Resolve a requested subset against a canonical ordering: empty request =
/// everything; otherwise validate every name and emit the canonical order
/// (so permuted configs produce identical leaderboards).
std::vector<std::string> resolve_subset(const std::vector<std::string>& requested,
                                        const std::vector<std::string>& canonical,
                                        const char* what) {
  if (requested.empty()) return canonical;
  for (const std::string& name : requested) {
    if (std::find(canonical.begin(), canonical.end(), name) == canonical.end()) {
      throw std::invalid_argument(format("unknown %s '%s'", what, name.c_str()));
    }
  }
  std::vector<std::string> resolved;
  for (const std::string& name : canonical) {
    if (std::find(requested.begin(), requested.end(), name) != requested.end()) {
      resolved.push_back(name);
    }
  }
  return resolved;
}

std::vector<std::string> canonical_player_labels() {
  std::vector<std::string> labels;
  for (const ComparisonPlayer& p : comparison_players()) labels.push_back(p.label);
  return labels;
}

std::vector<std::string> canonical_class_names() {
  std::vector<std::string> names;
  for (const TraceClass& tc : trace_class_registry()) names.push_back(tc.name);
  return names;
}

std::size_t player_index(const std::string& label) {
  const auto& players = comparison_players();
  for (std::size_t i = 0; i < players.size(); ++i) {
    if (players[i].label == label) return i;
  }
  throw std::invalid_argument(format("unknown player '%s'", label.c_str()));
}

/// Metric direction: true = higher is better.
bool higher_is_better(const std::string& metric) {
  return metric == "qoe" || metric == "video_kbps" || metric == "fairness";
}

const BootstrapCi& cell_metric(const LeaderboardCell& cell, const std::string& metric) {
  if (metric == "qoe") return cell.qoe;
  if (metric == "video_kbps") return cell.video_kbps;
  if (metric == "stall_ratio") return cell.stall_ratio;
  if (metric == "startup_s") return cell.startup_s;
  if (metric == "imbalance_s") return cell.imbalance_s;
  assert(metric == "fairness");
  return cell.fairness;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string ci_json(const BootstrapCi& ci) {
  return format("{\"mean\": %.9g, \"lo\": %.9g, \"hi\": %.9g, \"n\": %zu}", ci.mean,
                ci.lo, ci.hi, ci.n);
}

}  // namespace

const std::vector<std::string>& leaderboard_metrics() {
  static const std::vector<std::string> metrics = {
      "qoe", "video_kbps", "stall_ratio", "startup_s", "imbalance_s", "fairness"};
  return metrics;
}

BootstrapCi bootstrap_mean_ci(std::vector<double> samples, int resamples,
                              double confidence, std::uint64_t seed) {
  BootstrapCi ci;
  ci.n = samples.size();
  if (samples.empty()) return ci;
  // Sorting first makes the interval a function of the sample *multiset*:
  // merging per-thread batches in any order yields identical endpoints.
  std::sort(samples.begin(), samples.end());
  double sum = 0.0;
  for (double v : samples) sum += v;
  ci.mean = sum / static_cast<double>(samples.size());
  if (samples.size() < 2 || resamples < 2) {
    ci.lo = ci.mean;
    ci.hi = ci.mean;
    return ci;
  }
  Rng rng(seed);
  std::vector<double> means;
  means.reserve(static_cast<std::size_t>(resamples));
  const auto n = static_cast<std::int64_t>(samples.size());
  for (int r = 0; r < resamples; ++r) {
    double s = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      s += samples[static_cast<std::size_t>(rng.uniform_int(0, n - 1))];
    }
    means.push_back(s / static_cast<double>(n));
  }
  std::sort(means.begin(), means.end());
  const double alpha = (1.0 - confidence) / 2.0;
  const auto last = static_cast<double>(means.size() - 1);
  const auto lo_idx = static_cast<std::size_t>(std::llround(alpha * last));
  const auto hi_idx = static_cast<std::size_t>(std::llround((1.0 - alpha) * last));
  ci.lo = means[lo_idx];
  ci.hi = means[hi_idx];
  return ci;
}

std::vector<LeaderboardSample> collect_samples(const LeaderboardConfig& config) {
  const std::vector<std::string> classes =
      resolve_subset(config.classes, canonical_class_names(), "trace class");
  const std::vector<std::string> players =
      resolve_subset(config.players, canonical_player_labels(), "player");
  assert(config.replications > 0);
  assert(config.trace_duration_s > 0.0);

  std::vector<LeaderboardSample> samples;

  // --- Session axis: SweepRunner over class × seed × player. ---
  std::vector<SweepJob> jobs;
  for (const std::string& class_name : classes) {
    const TraceClass* tc = find_trace_class(class_name);
    assert(tc != nullptr);
    for (int r = 0; r < config.replications; ++r) {
      const std::uint64_t seed = config.base_seed + static_cast<std::uint64_t>(r);
      const BandwidthTrace trace = tc->generate(config.trace_duration_s, seed);
      // The envelope is the corpus' validity gate: a violating trace means
      // the generator contract broke, and scoring players on it would
      // silently poison the leaderboard.
      const std::string violation = check_envelope(trace, tc->envelope);
      if (!violation.empty()) {
        throw std::logic_error(format("trace class %s seed %llu violates envelope: %s",
                                      class_name.c_str(),
                                      static_cast<unsigned long long>(seed),
                                      violation.c_str()));
      }
      const std::string trace_name =
          format("%s#%llu", class_name.c_str(), static_cast<unsigned long long>(seed));
      // One setup per setup-kind per trace would be ideal; per-player setups
      // keep this simple and the build cost is dwarfed by the sessions.
      for (const std::string& player : players) {
        const std::size_t idx = player_index(player);
        SweepJob job;
        job.id = player + "/" + trace_name;
        job.player = player;
        job.trace = class_name;
        job.setup = std::make_shared<const ExperimentSetup>(
            comparison_setup(idx, trace, trace_name));
        job.make_player = comparison_players()[idx].factory;
        jobs.push_back(std::move(job));
      }
    }
  }
  SweepOptions sweep_options;
  sweep_options.threads = config.threads;
  sweep_options.with_qoe = true;
  const SweepResult sweep = SweepRunner(sweep_options).run(jobs);
  for (std::size_t i = 0; i < sweep.jobs.size(); ++i) {
    const SweepJobResult& jr = sweep.jobs[i];
    LeaderboardSample s;
    s.trace_class = jr.trace;
    s.player = jr.player;
    const std::string& id = jr.id;
    s.seed = std::stoull(id.substr(id.rfind('#') + 1));
    s.is_fleet = false;
    s.completed = jr.completed;
    s.qoe = jr.qoe.qoe_score;
    s.video_kbps = jr.qoe.avg_video_kbps;
    s.stall_ratio =
        jr.log.end_time_s > 0.0 ? jr.log.total_stall_s() / jr.log.end_time_s : 0.0;
    s.startup_s = jr.log.startup_delay_s;
    s.imbalance_s = jr.log.mean_buffer_imbalance_s();
    samples.push_back(std::move(s));
  }

  // --- Fleet axis: homogeneous fleets per (class, player, fleet seed) on a
  // --- per-capita-scaled trace; contributes the Jain-fairness metric. ---
  if (config.fleet_clients > 0 && config.fleet_replications > 0) {
    struct FleetJob {
      std::string trace_class;
      std::string player;
      std::uint64_t seed;
    };
    std::vector<FleetJob> fleet_jobs;
    for (const std::string& class_name : classes) {
      for (int f = 0; f < config.fleet_replications; ++f) {
        const std::uint64_t seed = config.base_seed + static_cast<std::uint64_t>(f);
        for (const std::string& player : players) {
          fleet_jobs.push_back({class_name, player, seed});
        }
      }
    }
    std::vector<LeaderboardSample> fleet_samples = fan_out_ordered(
        fleet_jobs.size(), config.threads, [&](std::size_t i) -> LeaderboardSample {
          const FleetJob& job = fleet_jobs[i];
          const TraceClass* tc = find_trace_class(job.trace_class);
          assert(tc != nullptr);
          const BandwidthTrace base = tc->generate(config.trace_duration_s, job.seed);
          // Per-capita scaling: N clients share an N×-provisioned pipe so
          // the per-client operating point matches the session axis.
          const BandwidthTrace scaled =
              scale_trace(base, static_cast<double>(config.fleet_clients));
          const std::size_t idx = player_index(job.player);
          const ExperimentSetup setup =
              comparison_setup(idx, scaled, job.trace_class + "-fleet");
          fleet::FleetConfig fc;
          fc.client_count = config.fleet_clients;
          fc.seed = job.seed;
          fc.engine = fleet::Engine::kEventHeap;
          fc.threads = 1;  // parallelism lives at the job fan-out level
          fc.players.push_back(
              {job.player, comparison_players()[idx].factory, 1.0});
          fc.session = setup.session;
          fc.rtt_s = setup.rtt_s;
          const fleet::FleetResult result =
              fleet::run_fleet(setup.content, setup.view, setup.trace, fc);
          const fleet::FleetMetrics metrics = fleet::compute_fleet_metrics(result);
          LeaderboardSample s;
          s.trace_class = job.trace_class;
          s.player = job.player;
          s.seed = job.seed;
          s.is_fleet = true;
          s.completed = metrics.completed == metrics.clients;
          s.fairness = metrics.jain_fairness_video;
          return s;
        });
    samples.insert(samples.end(), std::make_move_iterator(fleet_samples.begin()),
                   std::make_move_iterator(fleet_samples.end()));
  }
  return samples;
}

Leaderboard build_leaderboard(std::vector<LeaderboardSample> samples,
                              const LeaderboardConfig& config) {
  Leaderboard board;
  board.classes = resolve_subset(config.classes, canonical_class_names(), "trace class");
  board.players = resolve_subset(config.players, canonical_player_labels(), "player");
  board.config = config;

  // Canonical re-sort: any permutation of `samples` aggregates identically.
  std::sort(samples.begin(), samples.end(),
            [](const LeaderboardSample& a, const LeaderboardSample& b) {
              return std::tie(a.trace_class, a.player, a.is_fleet, a.seed) <
                     std::tie(b.trace_class, b.player, b.is_fleet, b.seed);
            });

  for (const std::string& class_name : board.classes) {
    for (const std::string& player : board.players) {
      LeaderboardCell cell;
      cell.trace_class = class_name;
      cell.player = player;
      std::vector<double> qoe, video, stall, startup, imbalance, fairness;
      for (const LeaderboardSample& s : samples) {
        if (s.trace_class != class_name || s.player != player) continue;
        if (s.is_fleet) {
          fairness.push_back(s.fairness);
        } else {
          qoe.push_back(s.qoe);
          video.push_back(s.video_kbps);
          stall.push_back(s.stall_ratio);
          startup.push_back(s.startup_s);
          imbalance.push_back(s.imbalance_s);
        }
      }
      cell.sessions = qoe.size();
      cell.fleets = fairness.size();
      const int rs = config.bootstrap_resamples;
      const double conf = config.confidence;
      const std::uint64_t bs = config.bootstrap_seed;
      cell.qoe = bootstrap_mean_ci(std::move(qoe), rs, conf, bs);
      cell.video_kbps = bootstrap_mean_ci(std::move(video), rs, conf, bs + 1);
      cell.stall_ratio = bootstrap_mean_ci(std::move(stall), rs, conf, bs + 2);
      cell.startup_s = bootstrap_mean_ci(std::move(startup), rs, conf, bs + 3);
      cell.imbalance_s = bootstrap_mean_ci(std::move(imbalance), rs, conf, bs + 4);
      cell.fairness = bootstrap_mean_ci(std::move(fairness), rs, conf, bs + 5);
      board.cells.push_back(std::move(cell));
    }
  }

  for (const std::string& class_name : board.classes) {
    for (const std::string& metric : leaderboard_metrics()) {
      LeaderboardRanking ranking;
      ranking.trace_class = class_name;
      ranking.metric = metric;
      std::vector<const LeaderboardCell*> row;
      for (const LeaderboardCell& cell : board.cells) {
        if (cell.trace_class == class_name) row.push_back(&cell);
      }
      const bool desc = higher_is_better(metric);
      std::stable_sort(row.begin(), row.end(),
                       [&](const LeaderboardCell* a, const LeaderboardCell* b) {
                         const double ma = cell_metric(*a, metric).mean;
                         const double mb = cell_metric(*b, metric).mean;
                         if (ma != mb) return desc ? ma > mb : ma < mb;
                         return a->player < b->player;  // total order on ties
                       });
      for (const LeaderboardCell* cell : row) ranking.players.push_back(cell->player);
      board.rankings.push_back(std::move(ranking));
    }
  }
  return board;
}

Leaderboard run_leaderboard(const LeaderboardConfig& config) {
  return build_leaderboard(collect_samples(config), config);
}

std::string leaderboard_json(const Leaderboard& board) {
  std::ostringstream out;
  out << "{\n  \"bench\": \"leaderboard\",\n  \"schema_version\": 1,\n";
  out << format("  \"replications\": %d,\n", board.config.replications);
  out << format("  \"trace_duration_s\": %.9g,\n", board.config.trace_duration_s);
  out << format("  \"base_seed\": %llu,\n",
                static_cast<unsigned long long>(board.config.base_seed));
  out << format("  \"bootstrap_resamples\": %d,\n", board.config.bootstrap_resamples);
  out << format("  \"confidence\": %.9g,\n", board.config.confidence);
  out << format("  \"fleet_clients\": %d,\n", board.config.fleet_clients);
  out << format("  \"fleet_replications\": %d,\n", board.config.fleet_replications);
  out << "  \"classes\": [";
  for (std::size_t i = 0; i < board.classes.size(); ++i) {
    out << (i ? ", " : "") << "\"" << json_escape(board.classes[i]) << "\"";
  }
  out << "],\n  \"players\": [";
  for (std::size_t i = 0; i < board.players.size(); ++i) {
    out << (i ? ", " : "") << "\"" << json_escape(board.players[i]) << "\"";
  }
  out << "],\n  \"cells\": [\n";
  for (std::size_t i = 0; i < board.cells.size(); ++i) {
    const LeaderboardCell& c = board.cells[i];
    out << format("    {\"class\": \"%s\", \"player\": \"%s\", \"sessions\": %zu, "
                  "\"fleets\": %zu,\n",
                  json_escape(c.trace_class).c_str(), json_escape(c.player).c_str(),
                  c.sessions, c.fleets);
    out << "     \"qoe\": " << ci_json(c.qoe) << ",\n";
    out << "     \"video_kbps\": " << ci_json(c.video_kbps) << ",\n";
    out << "     \"stall_ratio\": " << ci_json(c.stall_ratio) << ",\n";
    out << "     \"startup_s\": " << ci_json(c.startup_s) << ",\n";
    out << "     \"imbalance_s\": " << ci_json(c.imbalance_s) << ",\n";
    out << "     \"fairness\": " << ci_json(c.fairness) << "}"
        << (i + 1 < board.cells.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"rankings\": [\n";
  for (std::size_t i = 0; i < board.rankings.size(); ++i) {
    const LeaderboardRanking& r = board.rankings[i];
    out << format("    {\"class\": \"%s\", \"metric\": \"%s\", \"players\": [",
                  json_escape(r.trace_class).c_str(), json_escape(r.metric).c_str());
    for (std::size_t j = 0; j < r.players.size(); ++j) {
      out << (j ? ", " : "") << "\"" << json_escape(r.players[j]) << "\"";
    }
    out << "]}" << (i + 1 < board.rankings.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

std::string leaderboard_csv(const Leaderboard& board) {
  std::ostringstream out;
  out << "class,player,sessions,fleets";
  for (const std::string& metric : leaderboard_metrics()) {
    out << "," << metric << "_mean," << metric << "_lo," << metric << "_hi";
  }
  out << "\n";
  for (const LeaderboardCell& c : board.cells) {
    out << c.trace_class << "," << c.player << "," << c.sessions << "," << c.fleets;
    for (const std::string& metric : leaderboard_metrics()) {
      const BootstrapCi& ci = cell_metric(c, metric);
      out << format(",%.9g,%.9g,%.9g", ci.mean, ci.lo, ci.hi);
    }
    out << "\n";
  }
  return out.str();
}

std::string leaderboard_markdown(const Leaderboard& board) {
  std::ostringstream out;
  out << "# Robustness leaderboard\n";
  for (const std::string& class_name : board.classes) {
    const TraceClass* tc = find_trace_class(class_name);
    out << "\n## " << class_name << "\n\n";
    if (tc != nullptr) out << tc->description << "\n\n";
    out << "| player | qoe | video kbps | stall ratio | startup s | imbalance s | "
           "fairness |\n";
    out << "|---|---|---|---|---|---|---|\n";
    for (const LeaderboardCell& c : board.cells) {
      if (c.trace_class != class_name) continue;
      out << "| " << c.player;
      for (const std::string& metric : leaderboard_metrics()) {
        const BootstrapCi& ci = cell_metric(c, metric);
        if (ci.n == 0) {
          out << " | -";
        } else {
          out << format(" | %.3g [%.3g, %.3g]", ci.mean, ci.lo, ci.hi);
        }
      }
      out << " |\n";
    }
    out << "\nRankings (best first):\n\n";
    for (const LeaderboardRanking& r : board.rankings) {
      if (r.trace_class != class_name) continue;
      out << "- **" << r.metric << "**: ";
      for (std::size_t j = 0; j < r.players.size(); ++j) {
        out << (j ? " > " : "") << r.players[j];
      }
      out << "\n";
    }
  }
  return out.str();
}

}  // namespace demuxabr::experiments
