#include "core/bba_abr.h"

#include <algorithm>
#include <cassert>

namespace demuxabr {

BufferBasedJointAbr::BufferBasedJointAbr(std::vector<ComboView> allowed,
                                         BbaConfig config)
    : allowed_(std::move(allowed)), config_(config) {
  assert(!allowed_.empty());
  assert(config_.reservoir_s >= 0.0 && config_.cushion_s > 0.0);
  assert(std::is_sorted(allowed_.begin(), allowed_.end(),
                        [](const ComboView& a, const ComboView& b) {
                          return a.bandwidth_kbps < b.bandwidth_kbps;
                        }));
}

double BufferBasedJointAbr::requirement_kbps(std::size_t index) const {
  const ComboView& combo = allowed_[index];
  if (config_.use_average_bandwidth && combo.avg_bandwidth_kbps > 0.0) {
    return combo.avg_bandwidth_kbps;
  }
  return combo.bandwidth_kbps;
}

double BufferBasedJointAbr::rate_map_kbps(double buffer_s) const {
  const double r_min = requirement_kbps(0);
  const double r_max = requirement_kbps(allowed_.size() - 1);
  if (buffer_s <= config_.reservoir_s) return r_min;
  if (buffer_s >= config_.reservoir_s + config_.cushion_s) return r_max;
  const double fraction = (buffer_s - config_.reservoir_s) / config_.cushion_s;
  return r_min + fraction * (r_max - r_min);
}

std::size_t BufferBasedJointAbr::decide(double min_buffer_s) {
  const double mapped = rate_map_kbps(min_buffer_s);
  // BBA hysteresis: up only when the map reaches the NEXT rung; down only
  // when it falls below the CURRENT one.
  if (current_ + 1 < allowed_.size() && mapped >= requirement_kbps(current_ + 1)) {
    // Jump as far as the map allows (covers large buffer swings).
    while (current_ + 1 < allowed_.size() &&
           mapped >= requirement_kbps(current_ + 1)) {
      ++current_;
    }
  } else if (mapped < requirement_kbps(current_)) {
    while (current_ > 0 && mapped < requirement_kbps(current_)) {
      --current_;
    }
  }
  return current_;
}

}  // namespace demuxabr
