#include "core/allowed_combinations.h"

#include <algorithm>
#include <cmath>

#include "util/strings.h"

namespace demuxabr {

const char* genre_name(ContentGenre genre) {
  switch (genre) {
    case ContentGenre::kDrama: return "drama";
    case ContentGenre::kMusic: return "music";
    case ContentGenre::kAction: return "action";
    case ContentGenre::kNews: return "news";
    case ContentGenre::kSports: return "sports";
  }
  return "?";
}

int DeviceProfile::max_video_height() const {
  switch (screen) {
    case Screen::kPhone: return 720;
    case Screen::kTablet: return 1080;
    case Screen::kTv: return 4320;
  }
  return 1080;
}

int DeviceProfile::max_audio_channels() const {
  switch (sound) {
    // Mono output gains nothing from surround tracks; stereo downmixes 5.1
    // fine but not object-based 8+ channel tracks.
    case Sound::kMono: return 2;
    case Sound::kStereo: return 6;
    case Sound::kSurround: return 16;
  }
  return 2;
}

double CurationPolicy::audio_importance() const {
  switch (genre) {
    case ContentGenre::kMusic: return 0.8;
    case ContentGenre::kDrama: return 0.5;
    case ContentGenre::kNews: return 0.35;
    case ContentGenre::kAction: return 0.3;
    case ContentGenre::kSports: return 0.3;
  }
  return 0.5;
}

std::vector<AvCombination> curate_combinations(const BitrateLadder& ladder,
                                               const CurationPolicy& policy) {
  // Device-eligible tracks.
  std::vector<const TrackInfo*> video;
  for (const TrackInfo& t : ladder.video()) {
    if (t.height <= policy.device.max_video_height()) video.push_back(&t);
  }
  if (video.empty()) video.push_back(&ladder.video().front());
  std::vector<const TrackInfo*> audio;
  for (const TrackInfo& t : ladder.audio()) {
    if (t.channels <= policy.device.max_audio_channels()) audio.push_back(&t);
  }
  if (audio.empty()) audio.push_back(&ladder.audio().front());

  const double w = policy.audio_importance();
  const auto num_video = video.size();
  const auto num_audio = audio.size();

  std::vector<AvCombination> combos;
  combos.reserve(num_video);
  std::size_t previous_audio = 0;
  for (std::size_t i = 0; i < num_video; ++i) {
    // Normalized position of this video rung in (0, 1].
    const double v_pos = (static_cast<double>(i) + 0.5) / static_cast<double>(num_video);
    // Shift the audio target by the policy weight: w == 0.5 is proportional
    // pairing (H_sub); higher w pulls audio quality up at every video rung.
    const double a_pos = std::clamp(v_pos + (w - 0.5), 0.0, 1.0);
    auto j = static_cast<std::size_t>(a_pos * static_cast<double>(num_audio));
    if (j >= num_audio) j = num_audio - 1;
    j = std::max(j, previous_audio);  // keep audio rung monotone
    previous_audio = j;
    combos.push_back(make_combination(ladder, video[i]->id, audio[j]->id));
  }
  return combos;
}

std::vector<std::pair<std::size_t, std::size_t>> staircase_path(
    const std::vector<std::size_t>& audio_for_video, bool audio_first) {
  std::vector<std::pair<std::size_t, std::size_t>> path;
  if (audio_for_video.empty()) return path;
  std::size_t audio = audio_for_video.front();
  path.emplace_back(0, audio);
  for (std::size_t i = 1; i < audio_for_video.size(); ++i) {
    const std::size_t target = std::max(audio_for_video[i], audio);
    if (audio_first) {
      while (audio < target) path.emplace_back(i - 1, ++audio);
      path.emplace_back(i, audio);
    } else {
      path.emplace_back(i, audio);
      while (audio < target) path.emplace_back(i, ++audio);
    }
  }
  return path;
}

std::vector<AvCombination> curate_staircase(const BitrateLadder& ladder,
                                            const CurationPolicy& policy) {
  const std::vector<AvCombination> pairing = curate_combinations(ladder, policy);
  // Recover the rung indices of the pairing within the *eligible* track
  // subsets so the staircase interpolates over the same tracks.
  std::vector<std::string> video_ids;
  std::vector<std::string> audio_ids;
  std::vector<std::size_t> audio_for_video;
  for (const AvCombination& c : pairing) {
    video_ids.push_back(c.video_id);
    auto it = std::find(audio_ids.begin(), audio_ids.end(), c.audio_id);
    if (it == audio_ids.end()) {
      audio_ids.push_back(c.audio_id);
      audio_for_video.push_back(audio_ids.size() - 1);
    } else {
      audio_for_video.push_back(static_cast<std::size_t>(it - audio_ids.begin()));
    }
  }
  const bool audio_first = policy.audio_importance() >= 0.5;
  std::vector<AvCombination> combos;
  for (const auto& [i, j] : staircase_path(audio_for_video, audio_first)) {
    combos.push_back(make_combination(ladder, video_ids[i], audio_ids[j]));
  }
  return combos;
}

std::string validate_combinations(const BitrateLadder& ladder,
                                  const std::vector<AvCombination>& combos) {
  if (combos.empty()) return "combination list is empty";
  std::size_t previous_video = 0;
  std::size_t previous_audio = 0;
  double previous_declared = 0.0;
  for (std::size_t i = 0; i < combos.size(); ++i) {
    const AvCombination& c = combos[i];
    const TrackInfo* video = ladder.find(c.video_id);
    const TrackInfo* audio = ladder.find(c.audio_id);
    if (video == nullptr || !video->is_video()) {
      return "unknown video track " + c.video_id;
    }
    if (audio == nullptr || !audio->is_audio()) {
      return "unknown audio track " + c.audio_id;
    }
    if (std::abs(c.declared_kbps - (video->declared_kbps + audio->declared_kbps)) > 0.5) {
      return "declared bitrate of " + c.label() + " does not match track sum";
    }
    if (std::abs(c.peak_kbps - (video->peak_kbps + audio->peak_kbps)) > 0.5) {
      return "peak bitrate of " + c.label() + " does not match track sum";
    }
    const std::size_t video_rung = *ladder.index_of(c.video_id);
    const std::size_t audio_rung = *ladder.index_of(c.audio_id);
    if (i > 0) {
      if (video_rung < previous_video || audio_rung < previous_audio) {
        return "combination " + c.label() + " inverts the quality ordering";
      }
      if (c.declared_kbps + 0.5 < previous_declared) {
        return "combination " + c.label() + " decreases aggregate bitrate";
      }
    }
    previous_video = video_rung;
    previous_audio = audio_rung;
    previous_declared = c.declared_kbps;
  }
  return "";
}

}  // namespace demuxabr
