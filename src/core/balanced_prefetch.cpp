#include "core/balanced_prefetch.h"

namespace demuxabr {

BalancedPrefetcher::BalancedPrefetcher(BalancedPrefetchConfig config) : config_(config) {}

std::optional<MediaType> BalancedPrefetcher::next_type(const PlayerContext& ctx) const {
  auto eligible = [&](MediaType type) {
    return !ctx.downloading(type) && ctx.next_chunk(type) < ctx.total_chunks &&
           ctx.buffer_s(type) < config_.buffer_target_s;
  };
  const bool audio_ok = eligible(MediaType::kAudio);
  const bool video_ok = eligible(MediaType::kVideo);
  if (!audio_ok && !video_ok) return std::nullopt;
  if (audio_ok && video_ok) {
    // Advance the lagging type; ties prefer video (its chunks are larger,
    // starting it earlier smooths the pipeline).
    return ctx.audio_buffer_s < ctx.video_buffer_s ? MediaType::kAudio
                                                   : MediaType::kVideo;
  }
  // Only one type is eligible. Fetching it is fine unless it is already
  // ahead by more than the imbalance cap AND the other type still has
  // chunks to fetch (then wait for the lagging one to free up).
  const MediaType type = audio_ok ? MediaType::kAudio : MediaType::kVideo;
  const MediaType other = audio_ok ? MediaType::kVideo : MediaType::kAudio;
  const bool other_unfinished = ctx.next_chunk(other) < ctx.total_chunks;
  if (other_unfinished &&
      ctx.buffer_s(type) - ctx.buffer_s(other) >= config_.max_imbalance_s) {
    return std::nullopt;
  }
  return type;
}

}  // namespace demuxabr
