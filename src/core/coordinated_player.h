// CoordinatedPlayer: the §4 best-practice reference player.
//
// Assembles every client-side recommendation of the paper:
//   * audio rate adaptation (never a pinned audio track);
//   * selection restricted to the allowed combinations when the manifest
//     provides them (HLS variants / DASH §4.1 extension); when it does not,
//     a client-side curation policy builds a sensible subset from per-track
//     bitrates rather than adapting audio and video independently;
//   * joint A/V adaptation — either the damped rate controller
//     (JointAbrController) or the lookahead MPC controller (MpcJointAbr,
//     the paper's §5 future-work direction);
//   * aggregate bandwidth estimation that sums concurrent audio+video
//     progress, immune to the shared-bottleneck halving that defeats
//     Shaka's estimator; optionally per-path estimation for the §4.1
//     different-servers scenario, where per-component declared bitrates
//     gate which combinations each path can carry;
//   * chunk-level balanced prefetching (BalancedPrefetcher), with the
//     combination pinned per chunk position so played pairs always come
//     from the allowed list.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/allowed_combinations.h"
#include "core/balanced_prefetch.h"
#include "core/bba_abr.h"
#include "core/joint_abr.h"
#include "core/mpc_abr.h"
#include "players/estimators.h"
#include "sim/player.h"

namespace demuxabr {

/// Prefetch scheduling mode — kIndependent exists for ablation benches: it
/// fills video to its target before touching audio, recreating the
/// unbalanced-buffer failure mode §3.4 documents.
enum class PrefetchMode { kBalanced, kIndependent };

/// Joint adaptation algorithm: damped rate control, lookahead MPC, or
/// estimate-free buffer-based (BBA) control — all over the same
/// allowed-combination ladder.
enum class AbrAlgorithm { kHysteresisRate, kMpc, kBufferBased };

struct CoordinatedConfig {
  AbrAlgorithm algorithm = AbrAlgorithm::kHysteresisRate;
  JointAbrConfig abr{};
  MpcConfig mpc{};
  BbaConfig bba{};
  BalancedPrefetchConfig prefetch{};
  PrefetchMode prefetch_mode = PrefetchMode::kBalanced;
  /// Client-side fallback curation when the manifest has no combination
  /// list (plain DASH).
  CurationPolicy fallback_policy{};
  /// Aggregate estimator half-lives.
  double fast_half_life_s = 2.0;
  double slow_half_life_s = 6.0;
  /// §4.1 split-path mode: estimate audio and video throughput separately
  /// and only select combinations whose per-component declared bitrates fit
  /// their own path. Requires per-component information in the manifest
  /// (DASH per-track @bandwidth or HLS second-level playlists).
  bool per_path_estimation = false;
};

class CoordinatedPlayer : public PlayerAdapter {
 public:
  explicit CoordinatedPlayer(CoordinatedConfig config = {});

  [[nodiscard]] std::string name() const override;
  void start(const ManifestView& view) override;
  /// Shared bottleneck: serial chunk-synchronized downloads (§4.2).
  /// Split paths: one pipeline per path, or the parallelism is wasted.
  [[nodiscard]] int max_concurrent_downloads() const override {
    return config_.per_path_estimation ? 2 : 1;
  }
  std::optional<DownloadRequest> next_request(const PlayerContext& ctx) override;
  void on_progress(const ProgressSample& sample) override;
  [[nodiscard]] double bandwidth_estimate_kbps() const override;

  [[nodiscard]] const std::vector<ComboView>& allowed() const;
  [[nodiscard]] std::size_t current_combination_index() const;
  /// Per-path estimates (0 until samples arrive); meaningful when
  /// per_path_estimation is on.
  [[nodiscard]] double path_estimate_kbps(MediaType type) const;

 private:
  std::size_t decide(const PlayerContext& ctx);
  /// Highest allowed index whose per-component requirements fit the current
  /// per-path budgets (allowed.size()-1 when split-path mode is off or no
  /// component info / estimates are available).
  [[nodiscard]] std::size_t path_feasible_cap() const;

  CoordinatedConfig config_;
  AggregateThroughputEstimator estimator_;
  AggregateThroughputEstimator video_estimator_;
  AggregateThroughputEstimator audio_estimator_;
  BalancedPrefetcher prefetcher_;
  std::unique_ptr<JointAbrController> abr_;
  std::unique_ptr<MpcJointAbr> mpc_;
  std::unique_ptr<BufferBasedJointAbr> bba_;
  double chunk_duration_s_ = 4.0;
  /// Combination pinned per chunk position: once either component of chunk k
  /// is requested, the other component uses the same combination — a switch
  /// can only happen at a chunk boundary, so every *played* (video, audio)
  /// pair is an allowed combination.
  std::map<int, std::size_t> combo_for_chunk_;
};

}  // namespace demuxabr
