// Muxed-mode baseline player (Fig 1, left side): the server stores M x N
// combined tracks and the player downloads one combined chunk per position.
//
// Joint selection is trivially built in — a variant IS a combination — and
// the audio/video buffers can never diverge. The §1 trade-off is on the
// server side: M x N storage and poorer CDN cache reuse (httpsim/workload).
// This model provides the QoE-side baseline the demuxed players are
// implicitly compared against.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/joint_abr.h"
#include "players/estimators.h"
#include "sim/player.h"

namespace demuxabr {

struct MuxedPlayerConfig {
  JointAbrConfig abr{};
  double buffer_target_s = 30.0;
  double fast_half_life_s = 2.0;
  double slow_half_life_s = 6.0;
};

class MuxedPlayer : public PlayerAdapter {
 public:
  explicit MuxedPlayer(MuxedPlayerConfig config = {});

  [[nodiscard]] std::string name() const override { return "muxed"; }
  void start(const ManifestView& view) override;
  [[nodiscard]] int max_concurrent_downloads() const override { return 1; }
  std::optional<DownloadRequest> next_request(const PlayerContext& ctx) override;
  void on_progress(const ProgressSample& sample) override;
  [[nodiscard]] double bandwidth_estimate_kbps() const override;

  [[nodiscard]] const std::vector<ComboView>& variants() const;

 private:
  MuxedPlayerConfig config_;
  AggregateThroughputEstimator estimator_;
  std::unique_ptr<JointAbrController> abr_;
};

}  // namespace demuxabr
