#include "core/joint_abr.h"

#include <algorithm>
#include <cassert>

namespace demuxabr {

JointAbrController::JointAbrController(std::vector<ComboView> allowed,
                                       JointAbrConfig config)
    : allowed_(std::move(allowed)), config_(config) {
  assert(!allowed_.empty());
  assert(std::is_sorted(allowed_.begin(), allowed_.end(),
                        [](const ComboView& a, const ComboView& b) {
                          return a.bandwidth_kbps < b.bandwidth_kbps;
                        }));
}

double JointAbrController::requirement_kbps(std::size_t i) const {
  const ComboView& combo = allowed_[i];
  if (config_.use_average_bandwidth && combo.avg_bandwidth_kbps > 0.0) {
    return combo.avg_bandwidth_kbps;
  }
  return combo.bandwidth_kbps;
}

std::size_t JointAbrController::decide(double now, double estimate_kbps,
                                       double min_buffer_s) {
  const double budget = config_.safety_factor * estimate_kbps;

  // Highest sustainable combination under the plain budget.
  std::size_t sustainable = 0;
  for (std::size_t i = 0; i < allowed_.size(); ++i) {
    if (requirement_kbps(i) <= budget) sustainable = i;
  }
  // Highest combination that also clears the up-switch margin.
  std::size_t confident = 0;
  for (std::size_t i = 0; i < allowed_.size(); ++i) {
    if (requirement_kbps(i) * config_.up_switch_margin <= budget) confident = i;
  }

  if (!initialized_) {
    // Start conservatively: sustainable under the first estimate (the
    // lowest combination when no estimate exists yet).
    current_ = estimate_kbps > 0.0 ? sustainable : 0;
    initialized_ = true;
    last_switch_t_ = now;
    return current_;
  }

  // Panic: the buffer is nearly dry — drop to sustainable immediately.
  if (min_buffer_s < config_.panic_buffer_s && sustainable < current_) {
    current_ = sustainable;
    last_switch_t_ = now;
    return current_;
  }

  const bool hold_expired = now - last_switch_t_ >= config_.min_hold_s;

  if (confident > current_) {
    // Up-switch: requires margin, buffer cushion and hold expiry.
    if (hold_expired && min_buffer_s >= config_.min_buffer_for_up_s) {
      current_ = confident;
      last_switch_t_ = now;
    }
  } else if (sustainable < current_) {
    // Down-switch: ride a comfortable buffer through estimate dips, else
    // follow the estimate down once the hold expires.
    if (min_buffer_s < config_.hold_buffer_s && hold_expired) {
      current_ = sustainable;
      last_switch_t_ = now;
    }
  }
  return current_;
}

}  // namespace demuxabr
