// Balanced audio/video prefetching (§4.2): keep the two buffers within one
// chunk of each other by always advancing the lagging media type — the
// chunk-level synchronization the paper recommends (and credits ExoPlayer's
// downloader with, §3.5).
#pragma once

#include <optional>

#include "sim/player.h"

namespace demuxabr {

struct BalancedPrefetchConfig {
  /// Stop fetching a type once its buffer reaches this level.
  double buffer_target_s = 30.0;
  /// Never let |video buffer - audio buffer| exceed this when a choice
  /// exists (one chunk duration by default; set by the player at start).
  double max_imbalance_s = 4.0;
};

class BalancedPrefetcher {
 public:
  explicit BalancedPrefetcher(BalancedPrefetchConfig config = {});

  void set_max_imbalance_s(double seconds) { config_.max_imbalance_s = seconds; }
  [[nodiscard]] const BalancedPrefetchConfig& config() const { return config_; }

  /// Which media type to fetch next; nullopt = idle (targets met, or
  /// fetching the only eligible type would worsen an already-excessive
  /// imbalance).
  [[nodiscard]] std::optional<MediaType> next_type(const PlayerContext& ctx) const;

 private:
  BalancedPrefetchConfig config_;
};

}  // namespace demuxabr
