// Manifest-compliance checking (§3.5: "some players do not conform to the
// manifest file") and server-side manifest enhancement helpers (§4.1).
#pragma once

#include <string>
#include <vector>

#include "core/allowed_combinations.h"
#include "manifest/builder.h"
#include "sim/metrics.h"

namespace demuxabr {

struct ComplianceReport {
  int total_chunks = 0;
  int violating_chunks = 0;
  /// Distinct off-manifest combination labels, first-use order.
  std::vector<std::string> violating_labels;

  [[nodiscard]] bool compliant() const { return violating_chunks == 0; }
  [[nodiscard]] double violation_fraction() const {
    return total_chunks > 0
               ? static_cast<double>(violating_chunks) / static_cast<double>(total_chunks)
               : 0.0;
  }
};

/// Check every played chunk's (video, audio) pair against the allowed list.
ComplianceReport check_compliance(const SessionLog& log,
                                  const std::vector<AvCombination>& allowed);

/// §4.1 server-side best practice for DASH: an MPD that carries the curated
/// combination list in the SupplementalProperty extension.
MpdDocument build_enhanced_mpd(const Content& content, const CurationPolicy& policy);

/// §4.1 server-side best practice for HLS: a master playlist listing ONLY
/// the curated combinations (never all of them), renditions low-to-high.
HlsMasterPlaylist build_curated_hls_master(const Content& content,
                                           const CurationPolicy& policy);

/// §4.1: media playlists with the EXT-X-BITRATE tag made mandatory.
std::map<std::string, HlsMediaPlaylist> build_bestpractice_media_playlists(
    const Content& content, PackagingMode packaging = PackagingMode::kSeparateFiles);

}  // namespace demuxabr
