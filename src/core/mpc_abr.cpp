#include "core/mpc_abr.h"

#include <algorithm>
#include <cassert>

namespace demuxabr {

MpcJointAbr::MpcJointAbr(std::vector<ComboView> allowed, MpcConfig config)
    : allowed_(std::move(allowed)), config_(config) {
  assert(!allowed_.empty());
  assert(config_.horizon_chunks > 0);
  assert(std::is_sorted(allowed_.begin(), allowed_.end(),
                        [](const ComboView& a, const ComboView& b) {
                          return a.bandwidth_kbps < b.bandwidth_kbps;
                        }));
}

double MpcJointAbr::requirement_kbps(std::size_t index) const {
  const ComboView& combo = allowed_[index];
  if (config_.use_average_bandwidth && combo.avg_bandwidth_kbps > 0.0) {
    return combo.avg_bandwidth_kbps;
  }
  return combo.bandwidth_kbps;
}

double MpcJointAbr::plan_score(std::size_t index, double estimate_kbps,
                               double buffer_s, double chunk_duration_s,
                               std::size_t previous_index) const {
  assert(index < allowed_.size());
  const double throughput = config_.throughput_discount * estimate_kbps;
  if (throughput <= 0.0) return index == 0 ? 0.0 : -1e18;

  const double requirement = requirement_kbps(index);
  // Download time of one chunk of this combination under the discounted
  // estimate. The session downloads audio and video back to back, so the
  // aggregate requirement over the aggregate pipe is the right plant model
  // for a shared bottleneck.
  const double chunk_download_s = requirement * chunk_duration_s / throughput;

  double buffer = buffer_s;
  double rebuffer_s = 0.0;
  for (int step = 0; step < config_.horizon_chunks; ++step) {
    buffer -= chunk_download_s;
    if (buffer < 0.0) {
      rebuffer_s += -buffer;
      buffer = 0.0;
    }
    buffer = std::min(buffer + chunk_duration_s, config_.max_buffer_s);
  }

  const double horizon = static_cast<double>(config_.horizon_chunks);
  const double quality = requirement;  // aggregate kbps as the quality proxy
  const double switch_cost =
      std::abs(requirement - requirement_kbps(previous_index));
  return horizon * quality - config_.rebuffer_penalty_kbps * rebuffer_s -
         config_.switch_penalty * switch_cost;
}

std::size_t MpcJointAbr::decide(double estimate_kbps, double min_buffer_s,
                                double chunk_duration_s) {
  if (estimate_kbps <= 0.0) {
    current_ = 0;
    initialized_ = true;
    return current_;
  }
  const std::size_t previous = initialized_ ? current_ : 0;
  std::size_t best = 0;
  double best_score = plan_score(0, estimate_kbps, min_buffer_s, chunk_duration_s,
                                 previous);
  for (std::size_t i = 1; i < allowed_.size(); ++i) {
    const double score =
        plan_score(i, estimate_kbps, min_buffer_s, chunk_duration_s, previous);
    if (score > best_score) {
      best_score = score;
      best = i;
    }
  }
  current_ = best;
  initialized_ = true;
  return current_;
}

}  // namespace demuxabr
