// Buffer-based joint A/V adaptation (BBA-0 style, Huang et al. [12] — one of
// the adaptation families the paper's related work surveys), lifted to the
// allowed-combination ladder: the decision variable is the combination
// index, driven purely by buffer occupancy.
//
//   buffer <= reservoir            -> lowest combination
//   buffer >= reservoir + cushion  -> highest combination
//   in between                     -> the rate map f(buffer) interpolates
//                                     linearly between R_min and R_max, with
//                                     BBA's hysteresis: switch up only when
//                                     f(buffer) crosses the NEXT rung's rate,
//                                     down only when it falls below the
//                                     CURRENT rung's.
// Needs no bandwidth estimate at all — a useful counterpoint to the rate
// and MPC controllers in the ablation benches.
#pragma once

#include <cstddef>
#include <vector>

#include "manifest/view.h"

namespace demuxabr {

struct BbaConfig {
  double reservoir_s = 8.0;
  double cushion_s = 16.0;
  /// Prefer declared AVERAGE-BANDWIDTH over peak when present.
  bool use_average_bandwidth = true;
};

class BufferBasedJointAbr {
 public:
  /// `allowed` must be sorted by ascending bandwidth.
  BufferBasedJointAbr(std::vector<ComboView> allowed, BbaConfig config = {});

  /// Decide the combination for the next chunk from the buffer level alone.
  std::size_t decide(double min_buffer_s);

  [[nodiscard]] std::size_t current_index() const { return current_; }
  [[nodiscard]] const std::vector<ComboView>& allowed() const { return allowed_; }
  [[nodiscard]] double requirement_kbps(std::size_t index) const;
  /// The rate map f(buffer) in kbps.
  [[nodiscard]] double rate_map_kbps(double buffer_s) const;

 private:
  std::vector<ComboView> allowed_;
  BbaConfig config_;
  std::size_t current_ = 0;
};

}  // namespace demuxabr
