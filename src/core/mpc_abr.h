// MPC-style joint A/V adaptation over the allowed-combination ladder.
//
// The paper's future work (§5) is to "design and implement rate adaptation
// schemes following the suggested practices"; its related work points at the
// control-theoretic MPC formulation [Yin et al., SIGCOMM'15]. This module is
// that scheme, specialized to demuxed A/V: the decision variable is the
// *combination* index (joint selection, §4.2), and the plant model is the
// coupled dual-buffer playback of the session engine.
//
// Following robust MPC practice, the controller evaluates each candidate
// combination held for a lookahead horizon of H chunks, simulating buffer
// evolution under a conservatively discounted throughput estimate, and
// maximizes
//     sum(quality) - w_rebuf * predicted_rebuffering - w_switch * |change|.
#pragma once

#include <cstddef>
#include <vector>

#include "manifest/view.h"

namespace demuxabr {

struct MpcConfig {
  int horizon_chunks = 5;
  /// Throughput discount (robustness margin against estimate error).
  double throughput_discount = 0.85;
  /// Penalty per predicted rebuffering second, in kbps-equivalents.
  double rebuffer_penalty_kbps = 3000.0;
  /// Penalty per kbps of aggregate-bitrate change between decisions.
  double switch_penalty = 1.0;
  /// Buffer level the plan must not assume beyond (prefetch cap).
  double max_buffer_s = 30.0;
  /// Prefer declared AVERAGE-BANDWIDTH over peak when present.
  bool use_average_bandwidth = true;
};

class MpcJointAbr {
 public:
  /// `allowed` must be sorted by ascending bandwidth.
  MpcJointAbr(std::vector<ComboView> allowed, MpcConfig config = {});

  /// Decide the combination for the next chunk position.
  /// `estimate_kbps` may be 0 (no estimate yet -> lowest combination).
  std::size_t decide(double estimate_kbps, double min_buffer_s,
                     double chunk_duration_s);

  [[nodiscard]] std::size_t current_index() const { return current_; }
  [[nodiscard]] const std::vector<ComboView>& allowed() const { return allowed_; }
  [[nodiscard]] double requirement_kbps(std::size_t index) const;

  /// Exposed for tests: the objective value of holding combination `index`
  /// for the horizon from the given state.
  [[nodiscard]] double plan_score(std::size_t index, double estimate_kbps,
                                  double buffer_s, double chunk_duration_s,
                                  std::size_t previous_index) const;

 private:
  std::vector<ComboView> allowed_;
  MpcConfig config_;
  std::size_t current_ = 0;
  bool initialized_ = false;
};

}  // namespace demuxabr
