#include "core/muxed_player.h"

#include <algorithm>
#include <cassert>

namespace demuxabr {

MuxedPlayer::MuxedPlayer(MuxedPlayerConfig config)
    : config_(config),
      estimator_(config.fast_half_life_s, config.slow_half_life_s) {}

void MuxedPlayer::start(const ManifestView& view) {
  estimator_ = AggregateThroughputEstimator(config_.fast_half_life_s,
                                            config_.slow_half_life_s);
  std::vector<ComboView> variants;
  if (view.has_combination_list) {
    variants = view.combos_sorted();
  } else {
    // A muxed origin stores every pairing; recreate them from per-track
    // declarations (the same M x N grid the storage model accounts).
    for (const TrackView& video : view.video_tracks) {
      for (const TrackView& audio : view.audio_tracks) {
        assert(video.bitrate_known && audio.bitrate_known);
        ComboView combo;
        combo.video_id = video.id;
        combo.audio_id = audio.id;
        combo.video_kbps = video.declared_kbps;
        combo.audio_kbps = audio.declared_kbps;
        combo.bandwidth_kbps = video.declared_kbps + audio.declared_kbps;
        combo.avg_bandwidth_kbps = combo.bandwidth_kbps;
        variants.push_back(std::move(combo));
      }
    }
    std::stable_sort(variants.begin(), variants.end(),
                     [](const ComboView& a, const ComboView& b) {
                       return a.bandwidth_kbps < b.bandwidth_kbps;
                     });
  }
  assert(!variants.empty());
  abr_ = std::make_unique<JointAbrController>(std::move(variants), config_.abr);
}

std::optional<DownloadRequest> MuxedPlayer::next_request(const PlayerContext& ctx) {
  assert(abr_ != nullptr && "start() not called");
  // Positions advance in lockstep; either buffer level works as the gate.
  if (ctx.video_downloading || ctx.audio_downloading) return std::nullopt;
  if (ctx.next_video_chunk >= ctx.total_chunks) return std::nullopt;
  if (ctx.video_buffer_s >= config_.buffer_target_s) return std::nullopt;

  const double min_buffer = std::min(ctx.audio_buffer_s, ctx.video_buffer_s);
  const std::size_t index =
      abr_->decide(ctx.now, estimator_.estimate_kbps(), min_buffer);
  const ComboView& combo = abr_->allowed()[index];

  DownloadRequest request;
  request.type = MediaType::kVideo;
  request.muxed = true;
  request.track_id = combo.video_id;
  request.audio_track_id = combo.audio_id;
  request.chunk_index = ctx.next_video_chunk;
  return request;
}

void MuxedPlayer::on_progress(const ProgressSample& sample) {
  estimator_.on_progress(sample);
}

double MuxedPlayer::bandwidth_estimate_kbps() const {
  return estimator_.estimate_kbps();
}

const std::vector<ComboView>& MuxedPlayer::variants() const {
  assert(abr_ != nullptr);
  return abr_->allowed();
}

}  // namespace demuxabr
