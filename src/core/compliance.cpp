#include "core/compliance.h"

#include <algorithm>

namespace demuxabr {

ComplianceReport check_compliance(const SessionLog& log,
                                  const std::vector<AvCombination>& allowed) {
  ComplianceReport report;
  const std::size_t chunks =
      std::min(log.video_selection.size(), log.audio_selection.size());
  for (std::size_t i = 0; i < chunks; ++i) {
    const std::string& video = log.video_selection[i];
    const std::string& audio = log.audio_selection[i];
    if (video.empty() || audio.empty()) continue;  // never downloaded
    ++report.total_chunks;
    if (!contains_combination(allowed, video, audio)) {
      ++report.violating_chunks;
      const std::string label = video + "+" + audio;
      if (std::find(report.violating_labels.begin(), report.violating_labels.end(),
                    label) == report.violating_labels.end()) {
        report.violating_labels.push_back(label);
      }
    }
  }
  return report;
}

MpdDocument build_enhanced_mpd(const Content& content, const CurationPolicy& policy) {
  DashBuildOptions options;
  // The server publishes the full staircase: still curated (no undesirable
  // pairings) but with single-step granularity for smoother adaptation.
  options.allowed_combinations = curate_staircase(content.ladder(), policy);
  return build_dash_mpd(content, options);
}

HlsMasterPlaylist build_curated_hls_master(const Content& content,
                                           const CurationPolicy& policy) {
  HlsMasterOptions options;
  options.combos = curate_staircase(content.ladder(), policy);
  options.include_average_bandwidth = true;
  return build_hls_master(content, options);
}

std::map<std::string, HlsMediaPlaylist> build_bestpractice_media_playlists(
    const Content& content, PackagingMode packaging) {
  HlsMediaOptions options;
  options.packaging = packaging;
  options.include_bitrate_tag = true;  // §4.1: "should be made mandatory"
  return build_all_media_playlists(content, options);
}

}  // namespace demuxabr
