// Joint audio/video adaptation over the allowed-combination ladder (§4.2).
//
// Implements the paper's recommendations directly:
//   * audio and video are selected together, as one combination index;
//   * only combinations from the allowed list are considered;
//   * switches are damped (hold time, up-switch margin, buffer gates) so
//     neither audio nor video flutters the way Shaka's memoryless rate rule
//     does (§3.3).
#pragma once

#include <cstddef>
#include <vector>

#include "manifest/view.h"

namespace demuxabr {

struct JointAbrConfig {
  /// Fraction of the estimate considered spendable.
  double safety_factor = 0.85;
  /// Up-switches additionally require estimate * safety >= margin * need.
  double up_switch_margin = 1.15;
  /// Minimum time between voluntary switches.
  double min_hold_s = 8.0;
  /// Up-switches require at least this much buffer (min of A/V).
  double min_buffer_for_up_s = 10.0;
  /// Below this buffer, drop immediately to the sustainable combination.
  double panic_buffer_s = 4.0;
  /// With this much buffer, ride out a temporary estimate dip (no down).
  double hold_buffer_s = 20.0;
  /// Prefer declared AVERAGE-BANDWIDTH over peak BANDWIDTH when present.
  bool use_average_bandwidth = true;
};

class JointAbrController {
 public:
  /// `allowed` must be sorted by ascending bandwidth.
  JointAbrController(std::vector<ComboView> allowed, JointAbrConfig config = {});

  /// Decide the combination for the next chunk. Deterministic in its inputs.
  std::size_t decide(double now, double estimate_kbps, double min_buffer_s);

  [[nodiscard]] std::size_t current_index() const { return current_; }
  [[nodiscard]] const ComboView& current() const { return allowed_[current_]; }
  [[nodiscard]] const std::vector<ComboView>& allowed() const { return allowed_; }

  /// Bandwidth requirement used for combination i (average when declared).
  [[nodiscard]] double requirement_kbps(std::size_t i) const;

 private:
  std::vector<ComboView> allowed_;
  JointAbrConfig config_;
  std::size_t current_ = 0;
  bool initialized_ = false;
  double last_switch_t_ = -1e18;
};

}  // namespace demuxabr
