#include "core/coordinated_player.h"

#include <algorithm>
#include <cassert>

namespace demuxabr {
namespace {

/// Client-side fallback: build a curated combination ladder from per-track
/// declared bitrates when the manifest does not restrict combinations.
std::vector<ComboView> curate_from_view(const ManifestView& view,
                                        const CurationPolicy& policy) {
  std::vector<TrackView> video = view.video_tracks;
  std::vector<TrackView> audio = view.audio_tracks;
  auto by_bitrate = [](const TrackView& a, const TrackView& b) {
    return a.declared_kbps < b.declared_kbps;
  };
  std::stable_sort(video.begin(), video.end(), by_bitrate);
  std::stable_sort(audio.begin(), audio.end(), by_bitrate);

  // Device screen filter (heights are known for DASH video tracks).
  std::vector<TrackView> eligible_video;
  for (const TrackView& t : video) {
    if (t.height == 0 || t.height <= policy.device.max_video_height()) {
      eligible_video.push_back(t);
    }
  }
  if (eligible_video.empty()) eligible_video.push_back(video.front());

  // Proportional pairing shaped by the policy weight, expanded into a full
  // staircase (one component changes per step) for finer granularity.
  const double w = policy.audio_importance();
  std::vector<std::size_t> audio_for_video;
  std::size_t previous_audio = 0;
  for (std::size_t i = 0; i < eligible_video.size(); ++i) {
    const double v_pos =
        (static_cast<double>(i) + 0.5) / static_cast<double>(eligible_video.size());
    const double a_pos = std::clamp(v_pos + (w - 0.5), 0.0, 1.0);
    auto j = static_cast<std::size_t>(a_pos * static_cast<double>(audio.size()));
    if (j >= audio.size()) j = audio.size() - 1;
    j = std::max(j, previous_audio);
    previous_audio = j;
    audio_for_video.push_back(j);
  }

  std::vector<ComboView> combos;
  for (const auto& [i, j] : staircase_path(audio_for_video, w >= 0.5)) {
    ComboView combo;
    combo.video_id = eligible_video[i].id;
    combo.audio_id = audio[j].id;
    combo.video_kbps = eligible_video[i].declared_kbps;
    combo.audio_kbps = audio[j].declared_kbps;
    combo.bandwidth_kbps = eligible_video[i].declared_kbps + audio[j].declared_kbps;
    combo.avg_bandwidth_kbps =
        (eligible_video[i].avg_kbps > 0.0 ? eligible_video[i].avg_kbps
                                          : eligible_video[i].declared_kbps) +
        (audio[j].avg_kbps > 0.0 ? audio[j].avg_kbps : audio[j].declared_kbps);
    combos.push_back(std::move(combo));
  }
  return combos;
}

}  // namespace

CoordinatedPlayer::CoordinatedPlayer(CoordinatedConfig config)
    : config_(config),
      estimator_(config.fast_half_life_s, config.slow_half_life_s),
      video_estimator_(config.fast_half_life_s, config.slow_half_life_s),
      audio_estimator_(config.fast_half_life_s, config.slow_half_life_s),
      prefetcher_(config.prefetch) {}

std::string CoordinatedPlayer::name() const {
  switch (config_.algorithm) {
    case AbrAlgorithm::kMpc: return "coordinated-mpc";
    case AbrAlgorithm::kBufferBased: return "coordinated-bba";
    case AbrAlgorithm::kHysteresisRate: break;
  }
  return "coordinated";
}

void CoordinatedPlayer::start(const ManifestView& view) {
  const auto half_lives = std::pair{config_.fast_half_life_s, config_.slow_half_life_s};
  estimator_ = AggregateThroughputEstimator(half_lives.first, half_lives.second);
  video_estimator_ = AggregateThroughputEstimator(half_lives.first, half_lives.second);
  audio_estimator_ = AggregateThroughputEstimator(half_lives.first, half_lives.second);
  combo_for_chunk_.clear();

  std::vector<ComboView> allowed;
  if (view.has_combination_list) {
    // §4.2: select ONLY from the allowed combinations.
    allowed = view.combos_sorted();
  } else {
    // Plain DASH: curate client-side instead of free-pairing.
    allowed = curate_from_view(view, config_.fallback_policy);
  }
  assert(!allowed.empty());
  abr_.reset();
  mpc_.reset();
  bba_.reset();
  switch (config_.algorithm) {
    case AbrAlgorithm::kMpc:
      mpc_ = std::make_unique<MpcJointAbr>(std::move(allowed), config_.mpc);
      break;
    case AbrAlgorithm::kBufferBased:
      bba_ = std::make_unique<BufferBasedJointAbr>(std::move(allowed), config_.bba);
      break;
    case AbrAlgorithm::kHysteresisRate:
      abr_ = std::make_unique<JointAbrController>(std::move(allowed), config_.abr);
      break;
  }
  if (view.chunk_duration_s > 0.0) {
    chunk_duration_s_ = view.chunk_duration_s;
    prefetcher_.set_max_imbalance_s(view.chunk_duration_s);
  }
}

std::size_t CoordinatedPlayer::path_feasible_cap() const {
  const std::vector<ComboView>& combos = allowed();
  std::size_t cap = combos.size() - 1;
  if (!config_.per_path_estimation) return cap;
  const double video_budget = 0.85 * video_estimator_.estimate_kbps();
  const double audio_budget = 0.85 * audio_estimator_.estimate_kbps();
  if (video_budget <= 0.0 || audio_budget <= 0.0) return cap;
  // Highest combination whose per-component requirements fit their paths.
  // Combinations without component info are only gated by the controller's
  // total-budget check.
  std::size_t feasible = 0;
  bool any = false;
  for (std::size_t i = 0; i < combos.size(); ++i) {
    if (!combos[i].components_known()) continue;
    if (combos[i].video_kbps <= video_budget && combos[i].audio_kbps <= audio_budget) {
      feasible = i;
      any = true;
    }
  }
  return any ? feasible : 0;
}

std::size_t CoordinatedPlayer::decide(const PlayerContext& ctx) {
  const double min_buffer = std::min(ctx.audio_buffer_s, ctx.video_buffer_s);
  // Split-path mode: total capacity is the sum of the paths; shared mode:
  // the aggregate estimator already measures the one pipe.
  const double estimate =
      config_.per_path_estimation
          ? video_estimator_.estimate_kbps() + audio_estimator_.estimate_kbps()
          : estimator_.estimate_kbps();
  std::size_t index;
  if (mpc_ != nullptr) {
    index = mpc_->decide(estimate, min_buffer, chunk_duration_s_);
  } else if (bba_ != nullptr) {
    index = bba_->decide(min_buffer);
  } else {
    index = abr_->decide(ctx.now, estimate, min_buffer);
  }
  // Per-path feasibility cap (§4.1). The allowed list is a monotone
  // staircase, so clamping by index clamps both components.
  index = std::min(index, path_feasible_cap());
  return index;
}

std::optional<DownloadRequest> CoordinatedPlayer::next_request(const PlayerContext& ctx) {
  assert((abr_ != nullptr || mpc_ != nullptr || bba_ != nullptr) &&
         "start() not called");
  std::optional<MediaType> type;
  if (config_.prefetch_mode == PrefetchMode::kBalanced) {
    type = prefetcher_.next_type(ctx);
  } else {
    // Ablation: greedy video-first scheduling with no balance constraint.
    for (MediaType candidate : {MediaType::kVideo, MediaType::kAudio}) {
      if (!ctx.downloading(candidate) && ctx.next_chunk(candidate) < ctx.total_chunks &&
          ctx.buffer_s(candidate) < prefetcher_.config().buffer_target_s) {
        type = candidate;
        break;
      }
    }
  }
  if (!type.has_value()) return std::nullopt;

  // The combination is pinned per chunk position (§4.2 joint selection):
  // decided when the first component of the pair is requested, reused for
  // the second, so played pairs always come from the allowed list.
  const int chunk = ctx.next_chunk(*type);
  std::size_t index;
  if (auto it = combo_for_chunk_.find(chunk); it != combo_for_chunk_.end()) {
    index = it->second;
  } else {
    index = decide(ctx);
    combo_for_chunk_[chunk] = index;
    // Chunks behind the playhead can never be requested again; drop them.
    combo_for_chunk_.erase(combo_for_chunk_.begin(),
                           combo_for_chunk_.lower_bound(chunk - 4));
  }
  const ComboView& combo = allowed()[index];

  DownloadRequest request;
  request.type = *type;
  request.track_id = *type == MediaType::kVideo ? combo.video_id : combo.audio_id;
  request.chunk_index = chunk;
  return request;
}

void CoordinatedPlayer::on_progress(const ProgressSample& sample) {
  estimator_.on_progress(sample);
  if (sample.type == MediaType::kVideo) {
    video_estimator_.on_progress(sample);
  } else {
    audio_estimator_.on_progress(sample);
  }
}

double CoordinatedPlayer::bandwidth_estimate_kbps() const {
  if (config_.per_path_estimation) {
    return video_estimator_.estimate_kbps() + audio_estimator_.estimate_kbps();
  }
  return estimator_.estimate_kbps();
}

double CoordinatedPlayer::path_estimate_kbps(MediaType type) const {
  return type == MediaType::kVideo ? video_estimator_.estimate_kbps()
                                   : audio_estimator_.estimate_kbps();
}

const std::vector<ComboView>& CoordinatedPlayer::allowed() const {
  if (mpc_ != nullptr) return mpc_->allowed();
  if (bba_ != nullptr) return bba_->allowed();
  assert(abr_ != nullptr);
  return abr_->allowed();
}

std::size_t CoordinatedPlayer::current_combination_index() const {
  if (mpc_ != nullptr) return mpc_->current_index();
  if (bba_ != nullptr) return bba_->current_index();
  assert(abr_ != nullptr);
  return abr_->current_index();
}

}  // namespace demuxabr
