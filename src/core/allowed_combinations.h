// Server-side curation of allowed audio/video combinations (§2.1, §4.1).
//
// The paper argues the origin — which knows the content type, the device
// class and the business rules — should pick the combinations and ship them
// to the client (HLS master playlist variants; the SupplementalProperty
// extension for DASH). This module implements that curation: a policy maps
// (genre, device) to an audio-importance weight, and the weight shapes which
// audio rung each video rung is paired with (music shows pair high audio
// with low/medium video; action content the opposite — the §2.1 examples).
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "media/combination.h"
#include "media/ladder.h"

namespace demuxabr {

enum class ContentGenre { kDrama, kMusic, kAction, kNews, kSports };

const char* genre_name(ContentGenre genre);

struct DeviceProfile {
  enum class Screen { kPhone, kTablet, kTv };
  enum class Sound { kMono, kStereo, kSurround };

  Screen screen = Screen::kPhone;
  Sound sound = Sound::kStereo;

  /// Highest useful video height for this screen (taller tracks are excluded).
  [[nodiscard]] int max_video_height() const;
  /// Highest useful audio channel count for this sound system.
  [[nodiscard]] int max_audio_channels() const;
};

struct CurationPolicy {
  ContentGenre genre = ContentGenre::kDrama;
  DeviceProfile device{};

  /// Relative importance of audio quality in [0, 1]. 0.5 pairs the rungs
  /// proportionally (the paper's H_sub); music skews high, action low.
  [[nodiscard]] double audio_importance() const;
};

/// Curate the allowed combinations for a ladder under a policy. Guarantees:
///   * one combination per eligible video rung (device-filtered);
///   * the audio rung is non-decreasing in the video rung (no inversions
///     such as high video + lowest audio next to low video + highest audio);
///   * every eligible audio track appears in at least one combination when
///     the weight makes that reachable.
std::vector<AvCombination> curate_combinations(const BitrateLadder& ladder,
                                               const CurationPolicy& policy);

/// Index staircase: expand a per-video-rung audio pairing (audio rung j for
/// video rung i, non-decreasing) into a full upgrade path where adjacent
/// combinations differ in exactly one component. `audio_first` controls
/// whether an audio upgrade is inserted before (true) or after (false) the
/// accompanying video upgrade.
std::vector<std::pair<std::size_t, std::size_t>> staircase_path(
    const std::vector<std::size_t>& audio_for_video, bool audio_first);

/// Curate a full staircase ladder (|V| + extra audio-step combinations):
/// the pairing of curate_combinations() plus the intermediate single-step
/// combinations, giving the client finer adaptation granularity. Policies
/// with audio_importance >= 0.5 upgrade audio before video at each step.
std::vector<AvCombination> curate_staircase(const BitrateLadder& ladder,
                                            const CurationPolicy& policy);

/// Validate a combination list against a ladder: ids exist, bitrate sums
/// correct, monotone (sorted by declared aggregate with non-decreasing audio
/// and video rungs). Returns an empty string when valid, else the reason.
std::string validate_combinations(const BitrateLadder& ladder,
                                  const std::vector<AvCombination>& combos);

}  // namespace demuxabr
