// BOLA (Buffer Occupancy based Lyapunov Algorithm) [Spiteri et al.,
// INFOCOM'16], parameterized the way dash.js's BolaRule does it. Used by the
// DashJsPlayerModel's DYNAMIC rule (§3.4).
#pragma once

#include <cstddef>
#include <vector>

namespace demuxabr {

class Bola {
 public:
  /// `bitrates_kbps` must be ascending; `stable_buffer_s` is dash.js's
  /// stableBufferTime (default 12 s).
  Bola(std::vector<double> bitrates_kbps, double stable_buffer_s);

  /// Track index maximizing the BOLA objective
  ///   (Vp * (utility_m + gp) - buffer) / bitrate_m
  /// at the given buffer level. Always returns a valid index; the caller's
  /// scheduler is responsible for pausing downloads when the buffer exceeds
  /// its target (dash.js splits the two concerns the same way).
  [[nodiscard]] std::size_t choose(double buffer_s) const;

  /// True when BOLA would rather wait than download (objective <= 0 for
  /// every track — buffer beyond the pivot).
  [[nodiscard]] bool prefers_waiting(double buffer_s) const;

  [[nodiscard]] double buffer_target_s() const { return buffer_target_s_; }
  [[nodiscard]] double gp() const { return gp_; }
  [[nodiscard]] double vp() const { return vp_; }
  [[nodiscard]] const std::vector<double>& utilities() const { return utilities_; }

 private:
  [[nodiscard]] double score(std::size_t index, double buffer_s) const;

  std::vector<double> bitrates_kbps_;
  std::vector<double> utilities_;  ///< ln(b_m / b_0) shifted so min is 1
  double buffer_target_s_ = 0.0;
  double gp_ = 0.0;
  double vp_ = 0.0;
};

}  // namespace demuxabr
