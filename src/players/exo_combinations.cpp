#include "players/exo_combinations.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace demuxabr {
namespace {

/// Normalized log-midpoint switch points for one renderer's bitrates.
std::vector<double> switch_points(const std::vector<double>& kbps) {
  std::vector<double> points;
  if (kbps.size() < 2) return points;
  std::vector<double> logs;
  logs.reserve(kbps.size());
  for (double k : kbps) {
    assert(k > 0.0);
    logs.push_back(std::log(k));
  }
  const double total = logs.back() - logs.front();
  points.reserve(kbps.size() - 1);
  for (std::size_t k = 0; k + 1 < logs.size(); ++k) {
    const double midpoint = (logs[k] + logs[k + 1]) / 2.0;
    points.push_back(total == 0.0 ? 1.0 : (midpoint - logs.front()) / total);
  }
  return points;
}

struct Upgrade {
  double point;
  bool is_video;
};

}  // namespace

std::vector<std::pair<std::size_t, std::size_t>> exo_allocation_path(
    const std::vector<double>& video_kbps, const std::vector<double>& audio_kbps) {
  assert(!video_kbps.empty() && !audio_kbps.empty());
  assert(std::is_sorted(video_kbps.begin(), video_kbps.end()));
  assert(std::is_sorted(audio_kbps.begin(), audio_kbps.end()));

  std::vector<Upgrade> upgrades;
  for (double p : switch_points(video_kbps)) upgrades.push_back({p, true});
  for (double p : switch_points(audio_kbps)) upgrades.push_back({p, false});
  // Ascending switch points; ties upgrade video first (renderer order).
  std::stable_sort(upgrades.begin(), upgrades.end(),
                   [](const Upgrade& a, const Upgrade& b) {
                     if (a.point != b.point) return a.point < b.point;
                     return a.is_video && !b.is_video;
                   });

  std::vector<std::pair<std::size_t, std::size_t>> path;
  std::size_t video = 0;
  std::size_t audio = 0;
  path.emplace_back(video, audio);
  for (const Upgrade& upgrade : upgrades) {
    if (upgrade.is_video) {
      ++video;
    } else {
      ++audio;
    }
    path.emplace_back(video, audio);
  }
  assert(video == video_kbps.size() - 1 && audio == audio_kbps.size() - 1);
  return path;
}

std::vector<AvCombination> exo_predetermined_combinations(const BitrateLadder& ladder) {
  std::vector<double> video_kbps;
  std::vector<double> audio_kbps;
  for (const TrackInfo& t : ladder.video()) video_kbps.push_back(t.declared_kbps);
  for (const TrackInfo& t : ladder.audio()) audio_kbps.push_back(t.declared_kbps);

  std::vector<AvCombination> combos;
  for (const auto& [v, a] : exo_allocation_path(video_kbps, audio_kbps)) {
    combos.push_back(
        make_combination(ladder, ladder.video()[v].id, ladder.audio()[a].id));
  }
  return combos;
}

std::vector<ComboView> exo_predetermined_combinations(const ManifestView& view) {
  // Sort the view's tracks by declared bitrate (manifest order may differ).
  std::vector<TrackView> video = view.video_tracks;
  std::vector<TrackView> audio = view.audio_tracks;
  auto by_bitrate = [](const TrackView& a, const TrackView& b) {
    return a.declared_kbps < b.declared_kbps;
  };
  std::stable_sort(video.begin(), video.end(), by_bitrate);
  std::stable_sort(audio.begin(), audio.end(), by_bitrate);

  std::vector<double> video_kbps;
  std::vector<double> audio_kbps;
  for (const TrackView& t : video) video_kbps.push_back(t.declared_kbps);
  for (const TrackView& t : audio) audio_kbps.push_back(t.declared_kbps);

  std::vector<ComboView> combos;
  for (const auto& [v, a] : exo_allocation_path(video_kbps, audio_kbps)) {
    ComboView combo;
    combo.video_id = video[v].id;
    combo.audio_id = audio[a].id;
    combo.video_kbps = video[v].declared_kbps;
    combo.audio_kbps = audio[a].declared_kbps;
    combo.bandwidth_kbps = video[v].declared_kbps + audio[a].declared_kbps;
    combo.avg_bandwidth_kbps = combo.bandwidth_kbps;
    combos.push_back(std::move(combo));
  }
  return combos;
}

}  // namespace demuxabr
