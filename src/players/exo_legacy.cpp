#include "players/exo_legacy.h"

#include <algorithm>
#include <cassert>

namespace demuxabr {

ExoLegacyPlayerModel::ExoLegacyPlayerModel(ExoLegacyConfig config)
    : config_(config), meter_(config.meter) {}

void ExoLegacyPlayerModel::start(const ManifestView& view) {
  video_ids_.clear();
  video_kbps_.clear();
  current_ = 0;
  selection_initialized_ = false;

  assert(!view.audio_tracks.empty());
  const std::size_t audio_index =
      std::min(config_.fixed_audio_index, view.audio_tracks.size() - 1);
  audio_id_ = view.audio_tracks[audio_index].id;

  // Video ladder: per-track declared bitrates under DASH; the first
  // variant's aggregate BANDWIDTH under HLS (the same overestimation as the
  // v2.10 model — that code path predates it).
  struct VideoEntry {
    std::string id;
    double kbps;
  };
  std::vector<VideoEntry> entries;
  for (const TrackView& video : view.video_tracks) {
    double kbps = video.declared_kbps;
    if (!video.bitrate_known) {
      for (const ComboView& combo : view.combos) {
        if (combo.video_id == video.id) {
          kbps = combo.bandwidth_kbps;
          break;
        }
      }
    }
    if (kbps <= 0.0) continue;
    entries.push_back({video.id, kbps});
  }
  assert(!entries.empty());
  std::stable_sort(entries.begin(), entries.end(),
                   [](const VideoEntry& a, const VideoEntry& b) {
                     return a.kbps < b.kbps;
                   });
  for (const VideoEntry& entry : entries) {
    video_ids_.push_back(entry.id);
    video_kbps_.push_back(entry.kbps);
  }
}

void ExoLegacyPlayerModel::update_selection(const PlayerContext& ctx) {
  const double allocatable = config_.bandwidth_fraction * meter_.estimate_kbps();
  std::size_t ideal = 0;
  for (std::size_t i = 0; i < video_kbps_.size(); ++i) {
    if (video_kbps_[i] <= allocatable) ideal = i;
  }
  if (!selection_initialized_) {
    current_ = ideal;
    selection_initialized_ = true;
    return;
  }
  const double buffered = std::min(ctx.audio_buffer_s, ctx.video_buffer_s);
  if (ideal > current_) {
    if (buffered >= config_.min_duration_for_quality_increase_s) current_ = ideal;
  } else if (ideal < current_) {
    if (buffered < config_.max_duration_for_quality_decrease_s) current_ = ideal;
  }
}

std::optional<DownloadRequest> ExoLegacyPlayerModel::next_request(
    const PlayerContext& ctx) {
  // Same chunk-level A/V download synchronization as the v2.10 model.
  struct Candidate {
    MediaType type;
    int next_chunk;
    double buffer;
  };
  // Fixed array, one slot per media type: this per-poll decision must stay
  // off the heap (it runs inside the fleet engines' drain loop).
  Candidate candidates[2];
  int candidate_count = 0;
  for (MediaType type : {MediaType::kVideo, MediaType::kAudio}) {
    if (ctx.downloading(type)) continue;
    if (ctx.next_chunk(type) >= ctx.total_chunks) continue;
    if (ctx.buffer_s(type) >= config_.max_buffer_s) continue;
    candidates[candidate_count++] = {type, ctx.next_chunk(type), ctx.buffer_s(type)};
  }
  if (candidate_count == 0) return std::nullopt;
  // The historical stable_sort over {video, audio}: audio wins only when
  // strictly behind (earlier chunk, or same chunk with less buffer).
  const Candidate& chosen =
      candidate_count == 2 && (candidates[1].next_chunk < candidates[0].next_chunk ||
                               (candidates[1].next_chunk == candidates[0].next_chunk &&
                                candidates[1].buffer < candidates[0].buffer))
          ? candidates[1]
          : candidates[0];

  DownloadRequest request;
  request.type = chosen.type;
  request.chunk_index = chosen.next_chunk;
  if (chosen.type == MediaType::kAudio) {
    request.track_id = audio_id_;  // pinned, never adapted
  } else {
    update_selection(ctx);
    request.track_id = video_ids_[current_];
  }
  return request;
}

void ExoLegacyPlayerModel::on_chunk_complete(const ChunkCompletion& completion,
                                             const PlayerContext& ctx) {
  (void)ctx;
  meter_.on_transfer_end(completion.bytes, completion.duration_s());
}

double ExoLegacyPlayerModel::bandwidth_estimate_kbps() const {
  return meter_.estimate_kbps();
}

}  // namespace demuxabr
